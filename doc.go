// Package smbm is a library and simulation toolkit for shared-memory
// buffer management with heterogeneous packet processing, reproducing
//
//	P. Eugster, K. Kogan, S. Nikolenko, A. Sirotkin.
//	"Shared Memory Buffer Management for Heterogeneous Packet
//	Processing", ICDCS 2014.
//
// The paper studies admission-control policies for a shared-memory switch
// in two generalizations of the classical model: packets with
// heterogeneous required processing (maximize transmitted packets) and
// packets with heterogeneous intrinsic values (maximize transmitted
// value). This package exposes:
//
//   - the slotted switch simulator for both models (NewSwitch, Step,
//     Drain);
//   - all buffer management policies analyzed in the paper, including the
//     2-competitive Longest-Work-Drop (LWD) and the conjectured
//     constant-competitive Maximal-Ratio-Drop (MRD);
//   - the OPT reference proxies and an exact offline optimum for tiny
//     instances;
//   - MMPP traffic generation, trace recording and replay;
//   - the evaluation harness regenerating every panel of the paper's
//     Fig. 5 and every lower-bound theorem.
//
// # Quickstart
//
//	cfg := smbm.Config{
//	    Model:    smbm.ModelProcessing,
//	    Ports:    4,
//	    Buffer:   64,
//	    MaxLabel: 6,
//	    Speedup:  1,
//	    PortWork: []int{1, 2, 3, 6}, // firewall, SSL, DPI, IPsec
//	}
//	sw, err := smbm.NewSwitch(cfg, smbm.LWD())
//	if err != nil { ... }
//	err = sw.Step([]smbm.Packet{smbm.WorkPacket(3, 6), smbm.WorkPacket(0, 1)})
//	sw.Drain()
//	fmt.Println(sw.Stats().Transmitted)
//
// See the examples directory for complete programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology.
package smbm
