# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race vet lint chaos smbsimd-smoke bench bench-json bench-assert panels lowerbounds arch faults obs-demo report examples clean

all: build vet lint test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: gofmt hygiene plus the smblint suite (determinism,
# seeding, wall-clock, hot-path allocation, concurrency fence, cursor
# sticky-error and doc contracts — see DESIGN.md §11; the
# compiler-diagnostic escapecheck/hotcall layer is §16). Runs a full
# build first so escapecheck replays -m=2 diagnostics from a warm build
# cache. Fails on any diagnostic.
lint: build
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) run ./cmd/smblint ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-sensitive harness packages and
# the shared-state providers they drive, including the sharded runtime
# and its daemon.
test-race:
	$(GO) test -race ./internal/sim/... ./internal/faults/... ./internal/cli/... ./internal/traffic/... ./internal/adversary/... ./internal/lease ./internal/shard ./internal/obs ./cmd/smbsimd

# Sharded-runtime smoke (DESIGN.md §17): the shard and daemon suites
# under the race detector — SPSC rings, pool manager, stream lifecycle,
# SIGTERM drain, mid-stream disconnect — then the seeded in-process
# loadgen selftest at 1 and 4 shards, where every shard must be
# bit-identical to its single-threaded sim.RunTrace oracle. The -race
# selftest run keeps the wall-clock numbers honest about what the
# detector costs; scaling assertions (-minscale) are left to operators
# who know their core count.
smbsimd-smoke:
	$(GO) test -race ./internal/shard ./internal/obs ./cmd/smbsimd
	$(GO) run -race ./cmd/smbsimd -selftest -shards 4 -slots 5000 -reps 2

# Crash-chaos harness for the lease ledger: fork real worker
# subprocesses, SIGKILL them mid-cell, truncate their journals at random
# byte offsets, restart them, and require the merged sweep to be
# bit-identical to a single-process run (DESIGN.md §13). Replay a
# schedule with SMBM_CHAOS_SEED=<n> make chaos.
chaos:
	$(GO) test ./internal/lease/chaostest -count=1 -v -run TestChaos

# Full benchmark pass (tables, figures, substrates, ablations).
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable performance snapshot: per-policy engine micro-benches
# (ns/slot, allocs/op) and per-panel sweep-cell costs (cells/sec). See
# DESIGN.md §9 for methodology. BENCH_pr8.json (unified engine + combined
# model, DESIGN.md §15) sits next to BENCH_pr7.json (batched arrival
# phase) and BENCH_baseline.json (per-packet seed) so the speedups are
# diffable.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_pr8.json

# Fast overhead gate: re-measure the per-policy micro-benchmarks and
# fail if any policy's steady state (observability detached) allocates.
bench-assert:
	$(GO) run ./cmd/benchjson -benchtime 100ms -assert-zero-allocs -out /dev/null

# Regenerate the paper's evaluation artifacts.
panels:
	$(GO) run ./cmd/smbsim

lowerbounds:
	$(GO) run ./cmd/lowerbound

arch:
	$(GO) run ./cmd/smbsim -experiment arch

faults:
	$(GO) run ./cmd/smbsim -experiment faults

# Observability demo: one small panel with decision counters, the last
# 32 decision events per replay dumped to stderr, and the pprof/expvar
# endpoint live on localhost:6060 for the duration (DESIGN.md §12).
obs-demo:
	$(GO) run ./cmd/smbsim -experiment fig5.1 -slots 2000 -seeds 1 \
		-obs -trace-events 32 -pprof localhost:6060

# Regenerate EXPERIMENTS.md from a fresh evaluation run.
report:
	$(GO) run ./cmd/report > EXPERIMENTS.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heteroservices
	$(GO) run ./examples/valuetiers
	$(GO) run ./examples/adversarial
	$(GO) run ./examples/theorem7

clean:
	$(GO) clean ./...
