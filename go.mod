module smbm

go 1.22
