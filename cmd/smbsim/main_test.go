package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// binary builds the smbsim binary once per test run and returns its
// path; the SIGINT tests drive the real executable because signal
// delivery, exit codes and stderr messaging are process-level behavior
// no in-process test can see.
var binary = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "smbsim-e2e-")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "smbsim")
	cmd := exec.Command("go", "build", "-o", path, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", &buildError{out: out, err: err}
	}
	return path, nil
})

// buildError carries the compiler output of a failed test-binary build.
type buildError struct {
	out []byte
	err error
}

func (e *buildError) Error() string { return e.err.Error() + "\n" + string(e.out) }

// sweepArgs is the shared shape of the interrupted and oracle runs:
// big enough (~0.3s per cell, 14 cells) that SIGINT reliably lands
// mid-sweep, small enough to keep the test under a few seconds.
func sweepArgs(extra ...string) []string {
	args := []string{"-experiment", "fig5.1", "-slots", "15000", "-seeds", "2", "-workers", "2", "-csv"}
	return append(args, extra...)
}

// waitForCellRecord polls the checkpoint journal until it holds at
// least one complete cell record beyond the fingerprint header —
// i.e. a second newline-terminated line — so the SIGINT lands after
// some work is durably journaled but before the sweep finishes.
func waitForCellRecord(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		raw, err := os.ReadFile(path)
		if err == nil && bytes.Count(raw, []byte("\n")) >= 2 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("no checkpoint cell record appeared in %s within the deadline", path)
}

// TestSIGINTPartialThenResumeBitIdentical covers the graceful-interrupt
// contract end to end: a checkpointed run killed with SIGINT mid-sweep
// must exit with code 2 and announce partial results and the resume
// path on stderr; a second run on the same journal must complete and
// print output bit-identical to an uninterrupted run.
func TestSIGINTPartialThenResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second subprocess test; skipped with -short")
	}
	bin, err := binary()
	if err != nil {
		t.Fatalf("building smbsim: %v", err)
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")

	// The oracle: the same sweep, uninterrupted, no journal.
	var oracleOut bytes.Buffer
	oracle := exec.Command(bin, sweepArgs()...)
	oracle.Stdout = &oracleOut
	oracle.Stderr = os.Stderr
	if err := oracle.Run(); err != nil {
		t.Fatalf("oracle run: %v", err)
	}

	// Interrupted run: SIGINT after the first cell record lands.
	var out, errOut bytes.Buffer
	interrupted := exec.Command(bin, sweepArgs("-checkpoint", ckpt)...)
	interrupted.Stdout = &out
	interrupted.Stderr = &errOut
	if err := interrupted.Start(); err != nil {
		t.Fatalf("starting interrupted run: %v", err)
	}
	waitForCellRecord(t, ckpt)
	if err := interrupted.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("sending SIGINT: %v", err)
	}
	err = interrupted.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("interrupted run: want *exec.ExitError, got %v\nstderr: %s", err, errOut.String())
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("interrupted run exited %d, want 2\nstderr: %s", code, errOut.String())
	}
	if s := errOut.String(); !strings.Contains(s, "interrupted; partial results printed above") {
		t.Fatalf("stderr missing the partial-results notice:\n%s", s)
	}
	if s := errOut.String(); !strings.Contains(s, "-checkpoint "+ckpt) {
		t.Fatalf("stderr missing the resume hint:\n%s", s)
	}

	// Resume: same flags, same journal — must finish clean and match
	// the oracle byte for byte.
	var resumeOut bytes.Buffer
	resume := exec.Command(bin, sweepArgs("-checkpoint", ckpt)...)
	resume.Stdout = &resumeOut
	resume.Stderr = os.Stderr
	if err := resume.Run(); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if resumeOut.String() != oracleOut.String() {
		t.Fatalf("resumed output differs from uninterrupted oracle:\n got:\n%s\nwant:\n%s", resumeOut.String(), oracleOut.String())
	}
}

// TestSIGINTLedgerResumeHint checks the distributed variant of the
// interrupt path: a leased worker killed with SIGINT must exit 2 and
// point the operator at the ledger, and a fresh worker on the same
// ledger must finish the grid.
func TestSIGINTLedgerResumeHint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second subprocess test; skipped with -short")
	}
	bin, err := binary()
	if err != nil {
		t.Fatalf("building smbsim: %v", err)
	}

	ledger := t.TempDir()
	args := sweepArgs("-ledger", ledger, "-worker", "-worker-id", "w1", "-lease-ttl", "1s")

	var errOut bytes.Buffer
	worker := exec.Command(bin, args...)
	worker.Stdout = &bytes.Buffer{}
	worker.Stderr = &errOut
	if err := worker.Start(); err != nil {
		t.Fatalf("starting worker: %v", err)
	}
	// Let it lease and start computing, then interrupt mid-sweep.
	waitForCellRecord(t, filepath.Join(ledger, "w1.jsonl"))
	time.Sleep(150 * time.Millisecond)
	if err := worker.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("sending SIGINT: %v", err)
	}
	err = worker.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("interrupted worker: want exit 2, got %v\nstderr: %s", err, errOut.String())
	}
	if s := errOut.String(); !strings.Contains(s, "-ledger "+ledger) {
		t.Fatalf("stderr missing the ledger resume hint:\n%s", s)
	}

	// A successor under a new identity picks the grid up and finishes.
	var out bytes.Buffer
	successor := exec.Command(bin, sweepArgs("-ledger", ledger, "-worker", "-worker-id", "w2", "-lease-ttl", "1s")...)
	successor.Stdout = &out
	successor.Stderr = os.Stderr
	if err := successor.Run(); err != nil {
		t.Fatalf("successor worker: %v", err)
	}
	if s := out.String(); !strings.Contains(s, "worker w2 done") {
		t.Fatalf("successor summary missing:\n%s", s)
	}
}
