// Command smbsim regenerates the paper's simulation study (Fig. 5): for
// each panel it sweeps the panel's parameter (k, B or speedup C) over
// MMPP traffic and prints the mean empirical competitive ratio of every
// policy against the OPT proxy (a single priority queue with n·C cores).
// The "arch" experiment additionally compares the shared-memory switch
// against the Fig. 1 single-queue architecture.
//
// Usage:
//
//	smbsim                          # run all nine panels at default scale
//	smbsim -experiment fig5.1       # one panel
//	smbsim -experiment arch         # architecture comparison
//	smbsim -slots 2000000 -seeds 5  # paper-scale run
//	smbsim -plot                    # append ASCII charts
//	smbsim -csv > panels.csv        # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"smbm/internal/cli"
	"smbm/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to run (fig5.1 ... fig5.9, arch, latency); empty runs the nine panels")
		slots      = flag.Int("slots", 0, "trace length per replication (default 4000; paper uses 2000000)")
		seeds      = flag.Int("seeds", 0, "replications per point (default 3)")
		sources    = flag.Int("sources", 0, "MMPP on-off sources (default 100; paper uses 500)")
		flushEvery = flag.Int("flush", 0, "slots between periodic flushouts (default 1000)")
		seed       = flag.Int64("seed", 0, "base RNG seed (default 1)")
		workers    = flag.Int("workers", 0, "parallel simulation workers (default GOMAXPROCS)")
		asPlot     = flag.Bool("plot", false, "render each panel as an ASCII chart as well")
		asCSV      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		specPath   = flag.String("spec", "", "run a custom JSON experiment spec instead of the paper's panels")
	)
	flag.Parse()

	opts := cli.PanelOptions{
		Experiment: *experiment,
		Opts: experiments.Options{
			Slots:       *slots,
			Seeds:       *seeds,
			Sources:     *sources,
			FlushEvery:  *flushEvery,
			BaseSeed:    *seed,
			Parallelism: *workers,
		},
		Plot: *asPlot,
		CSV:  *asCSV,
	}
	var err error
	if *specPath != "" {
		var f *os.File
		if f, err = os.Open(*specPath); err == nil {
			err = cli.RunSpec(os.Stdout, f, opts)
			f.Close()
		}
	} else {
		err = cli.Panels(os.Stdout, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smbsim:", err)
		os.Exit(1)
	}
}
