// Command smbsim regenerates the paper's simulation study (Fig. 5): for
// each panel it sweeps the panel's parameter (k, B or speedup C) over
// MMPP traffic and prints the mean empirical competitive ratio of every
// policy against the OPT proxy (a single priority queue with n·C cores).
// The "arch" experiment additionally compares the shared-memory switch
// against the Fig. 1 single-queue architecture, and the "faults"
// experiment measures graceful degradation under the canonical fault
// mix.
//
// Usage:
//
//	smbsim                          # run all nine panels at default scale
//	smbsim -experiment fig5.1       # one panel
//	smbsim -experiment arch         # architecture comparison
//	smbsim -experiment faults       # fault-degradation comparison
//	smbsim -scale paper             # paper scale: 2·10⁶ slots, 500 sources
//	smbsim -slots 2000000 -seeds 5  # custom scale
//	smbsim -plot                    # append ASCII charts
//	smbsim -csv > panels.csv        # machine-readable output
//
// Robustness flags for long runs:
//
//	smbsim -checkpoint run.ckpt     # journal cells; re-run to resume
//	smbsim -cell-timeout 5m         # fail runaway cells, keep the rest
//	smbsim -faults "blackout;squeeze:b=32"  # inject faults into a sweep
//
// Distributed sweeps share one lease ledger directory (any shared
// filesystem) among several smbsim processes; workers crash-safely
// divide each sweep's (x, seed) cells and the merged result is
// bit-identical to a single-process run:
//
//	smbsim -ledger run.ledger -worker &     # as many workers as you like,
//	smbsim -ledger run.ledger -worker &     # on as many machines as you like
//	smbsim -ledger run.ledger -coordinator  # waits, merges, renders tables
//	smbsim -ledger run.ledger               # or: compute AND render in one
//	smbsim -ledger run.ledger -lease-ttl 30s -cell-retries 5
//
// SIGINT cancels the run gracefully: completed points are printed as a
// partial table and the process exits with code 2, so a checkpointed
// run can be resumed later.
//
// Observability flags:
//
//	smbsim -obs                     # append per-policy decision counters
//	smbsim -trace-events 64         # ring-buffer the last 64 decision events
//	                                # per replay and dump them (implies -obs)
//	smbsim -trace-out events.txt    # trace dump destination (default stderr)
//	smbsim -pprof localhost:6060    # serve net/http/pprof and expvar; sweep
//	                                # progress appears at /debug/vars under
//	                                # "smbsim.progress"
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"
	"sync"

	"smbm/internal/cli"
	"smbm/internal/experiments"
	"smbm/internal/faults"
	"smbm/internal/sim"
)

// Exit codes: 0 success, 1 failure, 2 interrupted (partial results
// printed, resumable via -checkpoint).
const (
	exitFailure     = 1
	exitInterrupted = 2
)

// progressVar publishes the latest sweep progress through expvar as a
// JSON object, so a long run can be watched with
// `curl host:port/debug/vars`. Results payloads are dropped before
// publication: only the counters travel.
type progressVar struct {
	mu     sync.Mutex
	seen   bool
	latest sim.SweepProgress
}

// Update records one progress notification (called from the sweep's
// fold goroutine).
func (v *progressVar) Update(p sim.SweepProgress) {
	v.mu.Lock()
	defer v.mu.Unlock()
	p.Results = nil
	p.Err = nil
	v.seen = true
	v.latest = p
}

// String renders the published JSON (expvar.Var contract).
func (v *progressVar) String() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.seen {
		return `{"state":"idle"}`
	}
	p := v.latest
	return fmt.Sprintf(
		`{"state":"running","sweep":%q,"x_label":%q,"x":%d,"seed_index":%d,"done":%d,"failed":%d,"skipped":%d,"total":%d,"checkpoint_lag":%d}`,
		p.Sweep, p.XLabel, p.X, p.SeedIndex, p.Done, p.Failed, p.Skipped, p.Total, p.CheckpointLag)
}

// startNonce is drawn once per process start. Hostname plus pid alone
// is not unique per incarnation: a worker restarted after pid reuse —
// routine in pid-namespaced containers, where every worker can be
// pid 1 on its own host-named node twin — would silently reopen the
// previous incarnation's journal while that identity may still hold
// live leases elsewhere in the fleet. Eight random hex digits make the
// derived identity unique per incarnation; lease.Open's live-writer
// lock then catches whatever collisions remain (e.g. an explicit
// -worker-id used twice).
var startNonce = sync.OnceValue(func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// No randomness source: fall back to the bare hostname-pid
		// identity rather than failing startup.
		return ""
	}
	return hex.EncodeToString(b[:])
})

// defaultWorkerID derives a ledger identity that is unique per live
// process incarnation — hostname, pid and a per-start nonce, sanitized
// to the ledger's worker-ID alphabet — so a fleet launched without
// -worker-id just works, even across restarts that reuse a pid.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	clean := make([]byte, 0, len(host))
	for i := 0; i < len(host); i++ {
		c := host[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			clean = append(clean, c)
		default:
			clean = append(clean, '-')
		}
	}
	id := strings.Trim(string(clean), ".-_")
	if id == "" {
		id = "worker"
	}
	if nonce := startNonce(); nonce != "" {
		return fmt.Sprintf("%s-%d-%s", id, os.Getpid(), nonce)
	}
	return fmt.Sprintf("%s-%d", id, os.Getpid())
}

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment to run (fig5.1 ... fig5.9, arch, latency, faults); empty runs the nine panels")
		scale       = flag.String("scale", "", `option preset: "laptop" (default) or "paper" (2000000 slots, 500 sources, streamed in O(1) trace memory per worker); explicit flags override the preset`)
		slots       = flag.Int("slots", 0, "trace length per replication (default 4000; paper uses 2000000)")
		seeds       = flag.Int("seeds", 0, "replications per point (default 3)")
		sources     = flag.Int("sources", 0, "MMPP on-off sources (default 100; paper uses 500)")
		flushEvery  = flag.Int("flush", 0, "slots between periodic flushouts (default 1000)")
		seed        = flag.Int64("seed", 0, "base RNG seed (default 1)")
		workers     = flag.Int("workers", 0, "parallel simulation workers (default GOMAXPROCS)")
		asPlot      = flag.Bool("plot", false, "render each panel as an ASCII chart as well")
		asCSV       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		specPath    = flag.String("spec", "", "run a custom JSON experiment spec instead of the paper's panels")
		faultSpec   = flag.String("faults", "", `inject a fault plan into every sweep cell, e.g. "blackout;squeeze:b=32:period=500:dur=100" (see internal/faults)`)
		cellTimeout = flag.Duration("cell-timeout", 0, "per-cell deadline; a timed-out cell fails without killing the sweep (0 = unbounded)")
		checkpoint  = flag.String("checkpoint", "", "journal completed sweep cells to this file and resume from it on re-runs")
		ledger      = flag.String("ledger", "", "distributed mode: share sweep cells with other smbsim processes through the crash-safe lease ledger in this directory (conflicts with -checkpoint)")
		workerMode  = flag.Bool("worker", false, "fleet worker: compute leased cells and print one summary line per sweep instead of tables (requires -ledger)")
		coordinator = flag.Bool("coordinator", false, "fleet coordinator: compute nothing, wait for the workers to finish each sweep, render the merged tables (requires -ledger)")
		workerID    = flag.String("worker-id", "", "ledger identity of this process (default <hostname>-<pid>-<nonce>, unique per start); two live processes must never share one")
		leaseTTL    = flag.Duration("lease-ttl", 0, "lease expiry: how long a crashed or hung worker holds a cell before others reclaim it (default 1m)")
		cellRetries = flag.Int("cell-retries", 0, "failed attempts per cell before it is reported degraded (default 3; negative = no retries)")
		obsFlag     = flag.Bool("obs", false, "record per-policy decision counters and append them to each report")
		traceEvents = flag.Int("trace-events", 0, "ring-buffer the last N decision events per replay and dump them after each cell (implies -obs)")
		traceOut    = flag.String("trace-out", "", "write -trace-events dumps to this file instead of stderr")
		pprofAddr   = flag.String("pprof", "", `serve net/http/pprof and expvar on this address (e.g. "localhost:6060")`)
	)
	flag.Parse()

	// Resolve the scale preset first, then let explicit flags override
	// its fields.
	scaleOpts, scaleErr := experiments.ScaleOptions(*scale)
	if scaleErr != nil {
		fmt.Fprintln(os.Stderr, "smbsim:", scaleErr)
		os.Exit(exitFailure)
	}
	if *slots != 0 {
		scaleOpts.Slots = *slots
	}
	if *seeds != 0 {
		scaleOpts.Seeds = *seeds
	}
	if *sources != 0 {
		scaleOpts.Sources = *sources
	}
	if *flushEvery != 0 {
		scaleOpts.FlushEvery = *flushEvery
	}
	if *seed != 0 {
		scaleOpts.BaseSeed = *seed
	}
	scaleOpts.Parallelism = *workers

	fail := func(msg string) {
		fmt.Fprintln(os.Stderr, "smbsim:", msg)
		os.Exit(exitFailure)
	}
	if (*workerMode || *coordinator) && *ledger == "" {
		fail("-worker and -coordinator require -ledger")
	}
	if *workerMode && *coordinator {
		fail("-worker and -coordinator are mutually exclusive")
	}
	if *ledger != "" && *checkpoint != "" {
		fail("-ledger and -checkpoint are mutually exclusive; the ledger subsumes checkpointing")
	}

	opts := cli.PanelOptions{
		Experiment:  *experiment,
		Opts:        scaleOpts,
		Plot:        *asPlot,
		CSV:         *asCSV,
		CellTimeout: *cellTimeout,
		Checkpoint:  *checkpoint,
		Ledger:      *ledger,
		LeaseTTL:    *leaseTTL,
		CellRetries: *cellRetries,
		WorkerMode:  *workerMode,
		Coordinator: *coordinator,
		Obs:         *obsFlag,
		TraceEvents: *traceEvents,
	}
	if *ledger != "" {
		opts.LedgerWorker = *workerID
		if opts.LedgerWorker == "" {
			opts.LedgerWorker = defaultWorkerID()
		}
	}
	if *traceEvents > 0 {
		opts.TraceWriter = os.Stderr
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "smbsim:", err)
				os.Exit(exitFailure)
			}
			defer f.Close()
			opts.TraceWriter = f
		}
	}

	// The progress variable is published unconditionally (expvar costs
	// nothing unscraped); -pprof starts the server that exposes it along
	// with the standard pprof profiles.
	progress := new(progressVar)
	expvar.Publish("smbsim.progress", progress)
	opts.Progress = progress.Update
	if *pprofAddr != "" {
		go func() {
			// The default mux already carries /debug/pprof (imported
			// above) and /debug/vars (expvar). A dead debug server must
			// not kill the run.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "smbsim: pprof server:", err)
			}
		}()
	}

	if *faultSpec != "" {
		fs, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smbsim:", err)
			os.Exit(exitFailure)
		}
		opts.Faults = fs
	}

	// SIGINT cancels the context; sweeps return their completed points
	// as partial tables instead of discarding hours of work.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	if *specPath != "" {
		var f *os.File
		if f, err = os.Open(*specPath); err == nil {
			err = cli.RunSpec(ctx, os.Stdout, f, opts)
			f.Close()
		}
	} else {
		err = cli.Panels(ctx, os.Stdout, opts)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "smbsim: interrupted; partial results printed above")
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "smbsim: re-run with -checkpoint %s to resume\n", *checkpoint)
			}
			if *ledger != "" {
				fmt.Fprintf(os.Stderr, "smbsim: re-run with -ledger %s to resume; cells this process was running become reclaimable after the lease TTL\n", *ledger)
			}
			stop() // restore default SIGINT behaviour for the exit path
			os.Exit(exitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "smbsim:", err)
		os.Exit(exitFailure)
	}
}
