// Command smbsim regenerates the paper's simulation study (Fig. 5): for
// each panel it sweeps the panel's parameter (k, B or speedup C) over
// MMPP traffic and prints the mean empirical competitive ratio of every
// policy against the OPT proxy (a single priority queue with n·C cores).
// The "arch" experiment additionally compares the shared-memory switch
// against the Fig. 1 single-queue architecture, and the "faults"
// experiment measures graceful degradation under the canonical fault
// mix.
//
// Usage:
//
//	smbsim                          # run all nine panels at default scale
//	smbsim -experiment fig5.1       # one panel
//	smbsim -experiment arch         # architecture comparison
//	smbsim -experiment faults       # fault-degradation comparison
//	smbsim -scale paper             # paper scale: 2·10⁶ slots, 500 sources
//	smbsim -slots 2000000 -seeds 5  # custom scale
//	smbsim -plot                    # append ASCII charts
//	smbsim -csv > panels.csv        # machine-readable output
//
// Robustness flags for long runs:
//
//	smbsim -checkpoint run.ckpt     # journal cells; re-run to resume
//	smbsim -cell-timeout 5m         # fail runaway cells, keep the rest
//	smbsim -faults "blackout;squeeze:b=32"  # inject faults into a sweep
//
// SIGINT cancels the run gracefully: completed points are printed as a
// partial table and the process exits with code 2, so a checkpointed
// run can be resumed later.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"smbm/internal/cli"
	"smbm/internal/experiments"
	"smbm/internal/faults"
)

// Exit codes: 0 success, 1 failure, 2 interrupted (partial results
// printed, resumable via -checkpoint).
const (
	exitFailure     = 1
	exitInterrupted = 2
)

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment to run (fig5.1 ... fig5.9, arch, latency, faults); empty runs the nine panels")
		scale       = flag.String("scale", "", `option preset: "laptop" (default) or "paper" (2000000 slots, 500 sources, streamed in O(1) trace memory per worker); explicit flags override the preset`)
		slots       = flag.Int("slots", 0, "trace length per replication (default 4000; paper uses 2000000)")
		seeds       = flag.Int("seeds", 0, "replications per point (default 3)")
		sources     = flag.Int("sources", 0, "MMPP on-off sources (default 100; paper uses 500)")
		flushEvery  = flag.Int("flush", 0, "slots between periodic flushouts (default 1000)")
		seed        = flag.Int64("seed", 0, "base RNG seed (default 1)")
		workers     = flag.Int("workers", 0, "parallel simulation workers (default GOMAXPROCS)")
		asPlot      = flag.Bool("plot", false, "render each panel as an ASCII chart as well")
		asCSV       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		specPath    = flag.String("spec", "", "run a custom JSON experiment spec instead of the paper's panels")
		faultSpec   = flag.String("faults", "", `inject a fault plan into every sweep cell, e.g. "blackout;squeeze:b=32:period=500:dur=100" (see internal/faults)`)
		cellTimeout = flag.Duration("cell-timeout", 0, "per-cell deadline; a timed-out cell fails without killing the sweep (0 = unbounded)")
		checkpoint  = flag.String("checkpoint", "", "journal completed sweep cells to this file and resume from it on re-runs")
	)
	flag.Parse()

	// Resolve the scale preset first, then let explicit flags override
	// its fields.
	scaleOpts, scaleErr := experiments.ScaleOptions(*scale)
	if scaleErr != nil {
		fmt.Fprintln(os.Stderr, "smbsim:", scaleErr)
		os.Exit(exitFailure)
	}
	if *slots != 0 {
		scaleOpts.Slots = *slots
	}
	if *seeds != 0 {
		scaleOpts.Seeds = *seeds
	}
	if *sources != 0 {
		scaleOpts.Sources = *sources
	}
	if *flushEvery != 0 {
		scaleOpts.FlushEvery = *flushEvery
	}
	if *seed != 0 {
		scaleOpts.BaseSeed = *seed
	}
	scaleOpts.Parallelism = *workers

	opts := cli.PanelOptions{
		Experiment:  *experiment,
		Opts:        scaleOpts,
		Plot:        *asPlot,
		CSV:         *asCSV,
		CellTimeout: *cellTimeout,
		Checkpoint:  *checkpoint,
	}
	if *faultSpec != "" {
		fs, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smbsim:", err)
			os.Exit(exitFailure)
		}
		opts.Faults = fs
	}

	// SIGINT cancels the context; sweeps return their completed points
	// as partial tables instead of discarding hours of work.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	if *specPath != "" {
		var f *os.File
		if f, err = os.Open(*specPath); err == nil {
			err = cli.RunSpec(ctx, os.Stdout, f, opts)
			f.Close()
		}
	} else {
		err = cli.Panels(ctx, os.Stdout, opts)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "smbsim: interrupted; partial results printed above")
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "smbsim: re-run with -checkpoint %s to resume\n", *checkpoint)
			}
			stop() // restore default SIGINT behaviour for the exit path
			os.Exit(exitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "smbsim:", err)
		os.Exit(exitFailure)
	}
}
