// Command smblint runs the repository's static-analysis suite
// (internal/lint/suite) over go package patterns and reports every
// contract violation in file:line:col form, exiting non-zero when any
// diagnostic is produced. It is the multichecker behind `make lint`
// and the CI lint job:
//
//	go run ./cmd/smblint ./...          # whole module
//	go run ./cmd/smblint -run detmap ./internal/sim/...
//	go run ./cmd/smblint -list          # roster + docs
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load or internal
// error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smbm/internal/lint"
	"smbm/internal/lint/suite"
)

// main parses flags and delegates to run.
func main() {
	os.Exit(run(os.Args[1:]))
}

// run executes the driver and returns the process exit code.
func run(args []string) int {
	flags := flag.NewFlagSet("smblint", flag.ContinueOnError)
	runFilter := flags.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flags.Bool("list", false, "list the analyzer roster and exit")
	flags.Usage = func() {
		fmt.Fprintf(flags.Output(), "usage: smblint [-run a,b] [-list] [packages]\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runFilter != "" {
		var err error
		analyzers, err = filterAnalyzers(analyzers, *runFilter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smblint:", err)
			return 2
		}
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smblint:", err)
		return 2
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "smblint:", err)
				return 2
			}
			all = append(all, diags...)
		}
	}
	lint.SortDiagnostics(all)
	for _, d := range all {
		fmt.Println(d)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "smblint: %d violation(s)\n", len(all))
		return 1
	}
	return 0
}

// filterAnalyzers selects the named analyzers from the roster.
func filterAnalyzers(all []*lint.Analyzer, names string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return out, nil
}
