// Command lowerbound executes the paper's lower-bound constructions
// (Theorems 1–6, 9–11) and reports, per theorem, the measured ratio of
// the proof's scripted OPT strategy to the attacked policy alongside the
// proof's finite-parameter prediction and the stated asymptotic bound.
//
// Usage:
//
//	lowerbound                 # run every construction at defaults
//	lowerbound -theorem 4      # run one construction
//	lowerbound -theorem 4 -k 400 -B 8000   # override parameters
package main

import (
	"flag"
	"fmt"
	"os"

	"smbm/internal/adversary"
	"smbm/internal/cli"
)

func main() {
	var (
		theorem = flag.String("theorem", "", "theorem number to run (1-6, 9-11); empty runs all")
		k       = flag.Int("k", 0, "override the maximum work/value label k")
		b       = flag.Int("B", 0, "override the buffer size B")
		rounds  = flag.Int("rounds", 0, "override the number of measured rounds")
		warmup  = flag.Int("warmup", 0, "override the number of warm-up rounds")
	)
	flag.Parse()

	err := cli.LowerBounds(os.Stdout, cli.LowerBoundOptions{
		Theorem: *theorem,
		Params:  adversary.Params{K: *k, B: *b, Rounds: *rounds, Warmup: *warmup},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}
