// Command benchjson runs the repository's canonical performance
// benchmarks in-process and writes a machine-readable baseline
// (BENCH_baseline.json by default):
//
//   - per-policy engine micro-benchmarks: ns and allocations per
//     congested slot of Switch.Step for every roster policy in all
//     three models (steady state must be allocation-free);
//   - per-panel sweep-cell benchmarks: ns per (x, seed) cell and
//     cells/sec for the Fig. 5 panels, each cell running the full
//     policy roster plus the OPT proxy exactly as a sweep does;
//   - trace-memory measurements: resident arrival bytes per slot for a
//     materialized trace versus a streamed provider cursor, the number
//     that certifies the streaming pipeline's O(1)-in-slots memory.
//
// Regenerate with: make bench-json. Comparing two baselines (before and
// after an engine change, or across machines) is the supported workflow;
// absolute numbers are machine-dependent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"smbm/internal/core"
	"smbm/internal/experiments"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/traffic"
)

// Micro is one per-policy engine measurement. An "op" replays a fixed
// congested trace of microSlots slots through one switch.
type Micro struct {
	Policy       string  `json:"policy"`        // policy name
	NsPerOp      int64   `json:"ns_per_op"`     // mean ns per replay op
	AllocsPerOp  int64   `json:"allocs_per_op"` // heap allocations per op
	NsPerSlot    float64 `json:"ns_per_slot"`   // NsPerOp / microSlots
	SlotsPerSec  float64 `json:"slots_per_sec"` // simulated slots per second
	BytesPerOp   int64   `json:"bytes_per_op"`  // heap bytes per op
	ReplaysTimed int     `json:"replays_timed"` // replays inside the timed window
}

// Panel is one sweep-cell measurement: the cost of building and running
// the panel's middle-x cell (full roster + OPT proxy) once.
type Panel struct {
	Panel       string  `json:"panel"`         // panel id (figure name)
	X           int     `json:"x"`             // swept-parameter value of the timed cell
	Policies    int     `json:"policies"`      // roster size including the OPT proxy
	NsPerCell   int64   `json:"ns_per_cell"`   // mean ns to run one cell
	CellsPerSec float64 `json:"cells_per_sec"` // cells per second
	CellsTimed  int     `json:"cells_timed"`   // cells inside the timed window
}

// TraceMemory reports the resident arrival memory of one provider mode:
// the heap bytes held alive by the arrivals while a replay is under way
// (a whole materialized trace, or one streaming cursor mid-stream),
// normalized per slot. The streamed figure should be orders of
// magnitude below the materialized one and independent of Slots.
type TraceMemory struct {
	Mode          string  `json:"mode"`           // "materialized" or "streamed"
	Slots         int     `json:"slots"`          // trace length in slots
	ResidentBytes int64   `json:"resident_bytes"` // heap bytes held mid-replay
	BytesPerSlot  float64 `json:"bytes_per_slot"` // ResidentBytes / Slots
}

// Baseline is the whole artifact.
type Baseline struct {
	Generated   string        `json:"generated"`        // RFC 3339 timestamp
	GoVersion   string        `json:"go_version"`       // runtime.Version()
	GOOS        string        `json:"goos"`             // build OS
	GOARCH      string        `json:"goarch"`           // build architecture
	NumCPU      int           `json:"num_cpu"`          // logical CPUs
	BenchTime   string        `json:"bench_time"`       // timed window per measurement
	MicroSlots  int           `json:"micro_slots"`      // slots per micro replay op
	MicroProc   []Micro       `json:"micro_processing"` // processing-model policy rows
	MicroValue  []Micro       `json:"micro_value"`      // value-model policy rows
	MicroComb   []Micro       `json:"micro_combined"`   // combined-model policy rows
	Panels      []Panel       `json:"panels"`           // sweep-cell rows
	TraceMemory []TraceMemory `json:"trace_memory"`     // arrival-memory rows
}

const (
	microSlots = 256
	microBurst = 8
)

// microTrace builds a saturating deterministic burst sequence for the
// config: 8 uniform arrivals per slot, far above service capacity, so
// admission (and push-out, for those policies) fires constantly.
func microTrace(cfg core.Config) traffic.Trace {
	rng := rand.New(rand.NewSource(1))
	tr := make(traffic.Trace, microSlots)
	for s := range tr {
		bs := make([]pkt.Packet, microBurst)
		for i := range bs {
			port := rng.Intn(cfg.Ports)
			switch cfg.Model {
			case core.ModelValue:
				bs[i] = pkt.NewValue(port, 1+rng.Intn(cfg.MaxLabel))
			case core.ModelCombined:
				bs[i] = pkt.NewWorkValue(port, cfg.PortWork[port], 1+rng.Intn(cfg.MaxLabel))
			default:
				bs[i] = pkt.NewWork(port, cfg.PortWork[port])
			}
		}
		tr[s] = bs
	}
	return tr
}

// microBench measures one policy on one config. The switch is warmed
// with one full replay before timing so growth allocations (deque
// reservations, multiset arrays) are excluded: what remains is the
// steady state, which must be allocation-free.
func microBench(cfg core.Config, pol core.Policy) (Micro, error) {
	tr := microTrace(cfg)
	sw, err := core.New(cfg, pol)
	if err != nil {
		return Micro{}, err
	}
	replay := func() error {
		for _, burst := range tr {
			if err := sw.Step(burst); err != nil {
				return err
			}
		}
		sw.Drain()
		sw.Reset()
		return nil
	}
	if err := replay(); err != nil { // warm-up
		return Micro{}, err
	}
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := replay(); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return Micro{}, runErr
	}
	ns := res.NsPerOp()
	return Micro{
		Policy:       pol.Name(),
		NsPerOp:      ns,
		AllocsPerOp:  res.AllocsPerOp(),
		NsPerSlot:    float64(ns) / microSlots,
		SlotsPerSec:  1e9 * microSlots / float64(ns),
		BytesPerOp:   res.AllocedBytesPerOp(),
		ReplaysTimed: res.N,
	}, nil
}

// panelBench measures one Fig. 5 panel's middle-x cell, Build included,
// mirroring the top-level BenchmarkFig5_* harness so numbers are
// comparable with `go test -bench Fig5`.
func panelBench(id string) (Panel, error) {
	opts := experiments.Options{
		Slots:      2000,
		Seeds:      1,
		Sources:    100,
		FlushEvery: 1000,
		BaseSeed:   1,
	}
	sweep, err := experiments.Panel(id, opts)
	if err != nil {
		return Panel{}, err
	}
	mid := sweep.Xs[len(sweep.Xs)/2]
	var (
		runErr   error
		policies int
	)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst, err := sweep.Build(mid, opts.BaseSeed)
			if err != nil {
				runErr = err
				b.FailNow()
			}
			results, err := inst.Run()
			if err != nil {
				runErr = err
				b.FailNow()
			}
			policies = len(results)
		}
	})
	if runErr != nil {
		return Panel{}, runErr
	}
	ns := res.NsPerOp()
	return Panel{
		Panel:       id,
		X:           mid,
		Policies:    policies,
		NsPerCell:   ns,
		CellsPerSec: 1e9 / float64(ns),
		CellsTimed:  res.N,
	}, nil
}

// memSlots is the trace length of the trace-memory measurement — long
// enough that the materialized trace dwarfs every fixed overhead, short
// enough to stay fast.
const memSlots = 200_000

// heapAlloc returns the live heap after a full collection.
func heapAlloc() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// heapDelta clamps a heap-growth measurement at zero (GC noise can
// shrink unrelated allocations between the two readings).
func heapDelta(before, after int64) int64 {
	if after < before {
		return 0
	}
	return after - before
}

// traceMemory measures the resident arrival bytes of a materialized
// trace versus a streaming MMPP cursor halfway through the same
// stream, on the standard 16-port processing workload.
func traceMemory() ([]TraceMemory, error) {
	mcfg := traffic.MMPPConfig{
		Sources:      100,
		POnOff:       0.1,
		POffOn:       0.01,
		Label:        traffic.LabelWorkByPort,
		Ports:        16,
		MaxLabel:     16,
		PortWork:     core.ContiguousWorks(16),
		PortAffinity: true,
		Seed:         1,
	}
	mcfg.LambdaOn = mcfg.LambdaForRate(2.5 * 16)

	row := func(mode string, resident int64) TraceMemory {
		return TraceMemory{
			Mode:          mode,
			Slots:         memSlots,
			ResidentBytes: resident,
			BytesPerSlot:  float64(resident) / memSlots,
		}
	}

	// Materialized: the whole trace resident at once.
	gen, err := traffic.NewMMPP(mcfg)
	if err != nil {
		return nil, err
	}
	before := heapAlloc()
	tr := traffic.Record(gen, memSlots)
	materialized := heapDelta(before, heapAlloc())
	runtime.KeepAlive(tr)
	tr = nil
	_ = tr

	// Streamed: one open cursor mid-stream.
	prov, err := traffic.NewMMPPProvider(mcfg, memSlots)
	if err != nil {
		return nil, err
	}
	before = heapAlloc()
	cur, err := prov.Open()
	if err != nil {
		return nil, err
	}
	for t := 0; t < memSlots/2; t++ {
		cur.Next()
	}
	streamed := heapDelta(before, heapAlloc())
	runtime.KeepAlive(cur)
	if err := cur.Err(); err != nil {
		cur.Close()
		return nil, err
	}
	cur.Close()

	return []TraceMemory{row("materialized", materialized), row("streamed", streamed)}, nil
}

// assertZeroAllocs returns an error naming every policy whose steady
// state allocates — the regression gate CI runs on the micro rows.
func assertZeroAllocs(base *Baseline) error {
	var bad []string
	for _, m := range base.MicroProc {
		if m.AllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("processing/%s (%d allocs/op)", m.Policy, m.AllocsPerOp))
		}
	}
	for _, m := range base.MicroValue {
		if m.AllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("value/%s (%d allocs/op)", m.Policy, m.AllocsPerOp))
		}
	}
	for _, m := range base.MicroComb {
		if m.AllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("combined/%s (%d allocs/op)", m.Policy, m.AllocsPerOp))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("steady state allocates: %s", strings.Join(bad, ", "))
	}
	return nil
}

func run(out string, benchtime time.Duration, zeroAllocs bool) error {
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		return err
	}
	base := Baseline{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		BenchTime:  benchtime.String(),
		MicroSlots: microSlots,
	}

	procCfg := core.Config{
		Model: core.ModelProcessing, Ports: 16, Buffer: 128, MaxLabel: 16,
		Speedup: 1, PortWork: core.ContiguousWorks(16),
	}
	for _, p := range append(policy.ForProcessing(), policy.Experimental()...) {
		m, err := microBench(procCfg, p)
		if err != nil {
			return fmt.Errorf("micro %s: %w", p.Name(), err)
		}
		base.MicroProc = append(base.MicroProc, m)
		fmt.Fprintf(os.Stderr, "micro processing %-7s %8.0f ns/slot %3d allocs/op\n", p.Name(), m.NsPerSlot, m.AllocsPerOp)
	}
	valCfg := core.Config{
		Model: core.ModelValue, Ports: 16, Buffer: 128, MaxLabel: 16, Speedup: 1,
	}
	for _, p := range append(policy.ForValueUniform(), policy.ValueExperimental()...) {
		m, err := microBench(valCfg, p)
		if err != nil {
			return fmt.Errorf("micro %s: %w", p.Name(), err)
		}
		base.MicroValue = append(base.MicroValue, m)
		fmt.Fprintf(os.Stderr, "micro value      %-7s %8.0f ns/slot %3d allocs/op\n", p.Name(), m.NsPerSlot, m.AllocsPerOp)
	}
	combCfg := core.Config{
		Model: core.ModelCombined, Ports: 16, Buffer: 128, MaxLabel: 16,
		Speedup: 1, PortWork: core.ContiguousWorks(16),
	}
	for _, p := range policy.ForCombined() {
		m, err := microBench(combCfg, p)
		if err != nil {
			return fmt.Errorf("micro %s: %w", p.Name(), err)
		}
		base.MicroComb = append(base.MicroComb, m)
		fmt.Fprintf(os.Stderr, "micro combined   %-7s %8.0f ns/slot %3d allocs/op\n", p.Name(), m.NsPerSlot, m.AllocsPerOp)
	}
	if zeroAllocs {
		// Gate before the (slow) panel benchmarks: a CI failure should
		// report in seconds, not after the full baseline.
		if err := assertZeroAllocs(&base); err != nil {
			return err
		}
	}

	for _, id := range experiments.PanelIDs() {
		p, err := panelBench(id)
		if err != nil {
			return fmt.Errorf("panel %s: %w", id, err)
		}
		base.Panels = append(base.Panels, p)
		fmt.Fprintf(os.Stderr, "panel %-7s x=%-4d %10.3f ms/cell  %6.2f cells/sec\n", p.Panel, p.X, float64(p.NsPerCell)/1e6, p.CellsPerSec)
	}

	tms, err := traceMemory()
	if err != nil {
		return fmt.Errorf("trace memory: %w", err)
	}
	base.TraceMemory = tms
	for _, tm := range tms {
		fmt.Fprintf(os.Stderr, "trace memory %-13s %10d bytes  %8.2f bytes/slot\n", tm.Mode, tm.ResidentBytes, tm.BytesPerSlot)
	}

	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

func main() {
	testing.Init()
	out := flag.String("out", "BENCH_baseline.json", "output path ('-' for stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "minimum measuring time per benchmark")
	zeroAllocs := flag.Bool("assert-zero-allocs", false, "fail (exit 1) if any policy's steady-state micro-benchmark allocates")
	pprofAddr := flag.String("pprof", "", `serve net/http/pprof on this address (e.g. "localhost:6060") while benchmarking`)
	flag.Parse()
	if *pprofAddr != "" {
		go func() {
			// A dead debug server must not kill the benchmark run.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: pprof server:", err)
			}
		}()
	}
	if err := run(*out, *benchtime, *zeroAllocs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
