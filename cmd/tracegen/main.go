// Command tracegen generates, inspects and replays the synthetic MMPP
// traces of the simulation study.
//
// Usage:
//
//	tracegen -slots 10000 -ports 16 -mode work > trace.txt
//	tracegen -stats < trace.txt
//	tracegen -replay LWD -ports 16 -mode work -buffer 256 < trace.txt
//	tracegen -replay LWD -ports 16 -mode work -in trace.txt   # streamed
//
// With -in, -stats and -replay stream the trace from the file instead
// of materializing stdin, so arbitrarily long traces are processed in
// O(peak burst) memory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"smbm/internal/cli"
)

func main() {
	var (
		slots    = flag.Int("slots", 10000, "trace length in slots")
		ports    = flag.Int("ports", 16, "number of output ports")
		maxLabel = flag.Int("k", 0, "max work/value label (default: ports)")
		sources  = flag.Int("sources", 100, "MMPP on-off sources")
		rate     = flag.Float64("rate", 0, "mean packets per slot (default: 1.5x ports)")
		mode     = flag.String("mode", "work", `labeling: "work" (processing model, contiguous works), "value" (uniform values), "value-by-port", "work-value" (combined model)`)
		affinity = flag.Bool("affinity", true, "pin each source to one port")
		seed     = flag.Int64("seed", 1, "RNG seed")
		binFmt   = flag.Bool("binary", false, "emit the compact binary trace format")
		stats    = flag.Bool("stats", false, "read a trace from stdin and print summary statistics instead")
		replay   = flag.String("replay", "", "read a trace from stdin and replay it under the named policy")
		buffer   = flag.Int("buffer", 0, "buffer size for -replay (default 2x ports)")
		flush    = flag.Int("flush", 0, "flushout period for -replay (0 = final drain only)")
		input    = flag.String("in", "", "stream the trace from this file instead of reading stdin (-stats, -replay)")
	)
	flag.Parse()

	var err error
	switch {
	case *stats:
		r := io.Reader(os.Stdin)
		if *input != "" {
			f, ferr := os.Open(*input)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", ferr)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		err = cli.Stats(os.Stdout, r)
	case *replay != "":
		err = cli.Replay(os.Stdout, os.Stdin, cli.ReplayOptions{
			Policy:   *replay,
			Ports:    *ports,
			MaxLabel: *maxLabel,
			Buffer:   *buffer,
			Flush:    *flush,
			Mode:     *mode,
			Input:    *input,
		})
	default:
		err = cli.Generate(os.Stdout, cli.GenerateOptions{
			Slots:    *slots,
			Ports:    *ports,
			MaxLabel: *maxLabel,
			Sources:  *sources,
			Rate:     *rate,
			Mode:     *mode,
			Affinity: *affinity,
			Seed:     *seed,
			Binary:   *binFmt,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
