// Command report regenerates EXPERIMENTS.md: it runs the full evaluation
// (lower-bound constructions, the nine Fig. 5 panels, the architecture
// comparison) at the committed default scale and writes the
// paper-vs-measured document to stdout.
//
// Usage:
//
//	report > EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"

	"smbm/internal/experiments"
	"smbm/internal/report"
)

func main() {
	var (
		slots   = flag.Int("slots", 0, "trace length per replication (default 4000)")
		seeds   = flag.Int("seeds", 0, "replications per point (default 3)")
		sources = flag.Int("sources", 0, "MMPP sources (default 100)")
	)
	flag.Parse()

	err := report.Generate(os.Stdout, experiments.Options{
		Slots:   *slots,
		Seeds:   *seeds,
		Sources: *sources,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}
