// Command conjecture runs randomized worst-case hunts against the exact
// offline optimum on tiny instances — the empirical side of the paper's
// theoretical claims:
//
//   - Theorem 7 (LWD ≤ 2): the hunt is a falsification attempt; it has
//     never found anything above the witnessed 1.11 at this scale.
//   - The MRD open problem ("is constant competitiveness achievable?"):
//     the hunt reports the largest certified ratio it can construct.
//
// Usage:
//
//	conjecture                    # hunt LWD and MRD at defaults
//	conjecture -policy LQD -trials 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"smbm/internal/cli"
)

func main() {
	var (
		policyName = flag.String("policy", "", "single policy to hunt (default: LWD and MRD)")
		trials     = flag.Int("trials", 500, "random starting instances")
		climb      = flag.Int("climb", 50, "hill-climb steps per improvement")
		slots      = flag.Int("slots", 6, "trace length (exact-solver capped)")
		seed       = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	opts := cli.ConjectureOptions{
		Trials: *trials,
		Climb:  *climb,
		Slots:  *slots,
		Seed:   *seed,
	}
	if *policyName != "" {
		opts.Policies = []string{*policyName}
	}
	if err := cli.Conjecture(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "conjecture:", err)
		os.Exit(1)
	}
}
