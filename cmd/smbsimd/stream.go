package main

import (
	"bufio"
	"net"

	"smbm/internal/traffic"
)

// streamOpen wraps one stream connection in the traffic binary-framing
// cursor ("SMBT1\n" magic, slot-count header, 8-byte records). The
// returned slot count is the length the client announced; the cursor
// fails mid-stream if the client disconnects or sends a malformed
// record, which the stream loop turns into a clean cut at the last
// complete slot.
func streamOpen(conn net.Conn) (traffic.Cursor, int, error) {
	return traffic.StreamBinary(bufio.NewReader(conn))
}
