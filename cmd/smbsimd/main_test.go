package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"smbm/internal/core"
	"smbm/internal/obs"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/shard"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

// binary builds the smbsimd binary once per test run; the lifecycle
// tests drive the real executable because signal delivery, socket
// teardown and exit codes are process-level behavior.
var binary = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "smbsimd-e2e-")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "smbsimd")
	cmd := exec.Command("go", "build", "-o", path, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", &buildError{out: out, err: err}
	}
	return path, nil
})

// buildError carries the compiler output of a failed test-binary build.
type buildError struct {
	out []byte
	err error
}

func (e *buildError) Error() string { return e.err.Error() + "\n" + string(e.out) }

// e2eConfig is the switch shape every daemon test runs: small enough to
// drop packets (so the oracle differential exercises the policy), big
// enough to spread across shards.
func e2eConfig() core.Config {
	return core.Config{
		Model:    core.ModelProcessing,
		Ports:    8,
		Buffer:   32,
		MaxLabel: 4,
		Speedup:  1,
		PortWork: []int{1, 1, 2, 2, 3, 3, 4, 4},
	}
}

// e2eTrace is a deterministic dense trace: every slot carries exactly
// two packets, so slot boundaries are visible in the record stream and
// byte offsets of the binary framing are exact (header 10 bytes, then
// 16 bytes per slot).
func e2eTrace(cfg core.Config, slots int) traffic.Trace {
	tr := make(traffic.Trace, slots)
	for t := 0; t < slots; t++ {
		a, b := t%cfg.Ports, (t*3)%cfg.Ports
		tr[t] = []pkt.Packet{
			{Port: a, Work: cfg.PortWork[a], Value: 1},
			{Port: b, Work: cfg.PortWork[b], Value: 1},
		}
	}
	return tr
}

// daemonProc wraps a running smbsimd subprocess with its parsed stream
// and admin addresses.
type daemonProc struct {
	cmd        *exec.Cmd
	stdout     *bufio.Reader
	stdoutRest bytes.Buffer
	streamAddr string
	httpAddr   string
}

// startDaemon launches smbsimd with the given extra flags and parses
// the stream and http listen lines off its stdout.
func startDaemon(t *testing.T, snapshotPath string, shards int) *daemonProc {
	t.Helper()
	bin, err := binary()
	if err != nil {
		t.Fatalf("building smbsimd: %v", err)
	}
	cfg := e2eConfig()
	args := []string{
		"-ports", fmt.Sprint(cfg.Ports), "-buffer", fmt.Sprint(cfg.Buffer),
		"-k", fmt.Sprint(cfg.MaxLabel), "-works", "1,1,2,2,3,3,4,4",
		"-policy", "LQD", "-shards", fmt.Sprint(shards),
		"-listen", "tcp:127.0.0.1:0", "-http", "127.0.0.1:0",
		"-snapshot", snapshotPath,
	}
	cmd := exec.Command(bin, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting smbsimd: %v", err)
	}
	d := &daemonProc{cmd: cmd, stdout: bufio.NewReader(out)}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	for d.streamAddr == "" || d.httpAddr == "" {
		line, err := d.stdout.ReadString('\n')
		if err != nil {
			t.Fatalf("reading daemon stdout: %v (so far: %q)", err, line)
		}
		switch {
		case strings.HasPrefix(line, "smbsimd: listening on tcp:"):
			fields := strings.Fields(line)
			d.streamAddr = strings.TrimPrefix(fields[3], "tcp:")
		case strings.HasPrefix(line, "smbsimd: http listening on "):
			fields := strings.Fields(line)
			d.httpAddr = fields[len(fields)-1]
		}
	}
	return d
}

// terminate sends SIGTERM and asserts a clean exit-0 shutdown,
// returning the remaining stdout (the shutdown notice; the snapshot
// goes to the -snapshot file).
func (d *daemonProc) terminate(t *testing.T) string {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	rest, _ := io.ReadAll(d.stdout)
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
	}
	return string(rest)
}

// stream writes the trace over one connection in the binary framing,
// half-closes the write side, and decodes the daemon's JSON response.
func (d *daemonProc) stream(t *testing.T, tr traffic.Trace) *streamResponse {
	t.Helper()
	conn, err := net.Dial("tcp", d.streamAddr)
	if err != nil {
		t.Fatalf("dialing daemon: %v", err)
	}
	defer conn.Close()
	if err := tr.WriteBinary(conn); err != nil {
		t.Fatalf("writing trace: %v", err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatalf("half-close: %v", err)
	}
	var resp streamResponse
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &resp
}

// checkResponseOracle replays each shard's traffic partition through
// the single-threaded harness and requires the daemon's results to be
// bit-identical.
func checkResponseOracle(t *testing.T, resp *streamResponse, tr traffic.Trace, pol func() core.Policy) {
	t.Helper()
	cfg := e2eConfig()
	parts := shard.PartitionPorts(cfg.Ports, resp.Shards)
	if len(resp.Results) != resp.Shards {
		t.Fatalf("response has %d results for %d shards", len(resp.Results), resp.Shards)
	}
	for i, res := range resp.Results {
		scfg := shard.ShardConfig(cfg, parts, i)
		local := shard.FilterTrace(tr, parts[i])
		sw, err := core.New(scfg, pol())
		if err != nil {
			t.Fatalf("oracle switch: %v", err)
		}
		rec := obs.NewRecorder(scfg.Ports, 0)
		sw.SetRecorder(rec)
		stats, err := sim.RunTrace(sw, local, 0)
		if err != nil {
			t.Fatalf("oracle run: %v", err)
		}
		if diff := shard.DiffResult(res, stats, sw.PortCounters(), rec.SaveCounts(nil)); diff != "" {
			t.Fatalf("shard %d oracle differential: %s", i, diff)
		}
	}
}

// adminGet fetches an admin endpoint body.
func (d *daemonProc) adminGet(t *testing.T, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + d.httpAddr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestDaemonStreamPolicySwapSIGTERM covers the daemon lifecycle end to
// end: stream a trace, verify the bit-exact response against the
// oracle, swap the policy over the admin surface, stream again under
// the new policy, then SIGTERM — the daemon must drain, flush a valid
// obs snapshot to the -snapshot file, and exit 0.
func TestDaemonStreamPolicySwapSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test; skipped with -short")
	}
	snap := filepath.Join(t.TempDir(), "final.obs.json")
	d := startDaemon(t, snap, 3)
	tr := e2eTrace(e2eConfig(), 300)

	resp := d.stream(t, tr)
	if resp.Aborted || resp.Error != "" {
		t.Fatalf("stream aborted: %+v", resp)
	}
	if resp.ProcessedSlots != len(tr) || resp.RequestedSlots != len(tr) {
		t.Fatalf("processed %d/%d slots, want %d", resp.ProcessedSlots, resp.RequestedSlots, len(tr))
	}
	if resp.Policy != "LQD" {
		t.Fatalf("policy = %q, want LQD", resp.Policy)
	}
	checkResponseOracle(t, resp, tr, func() core.Policy { return policy.LQD{} })

	// /results serves the same bit-exact outcome.
	code, body := d.adminGet(t, "/results")
	if code != http.StatusOK {
		t.Fatalf("/results = %d: %s", code, body)
	}
	var served streamResponse
	if err := json.Unmarshal([]byte(body), &served); err != nil {
		t.Fatalf("/results JSON: %v", err)
	}
	checkResponseOracle(t, &served, tr, func() core.Policy { return policy.LQD{} })

	// Live policy swap between streams, then a stream under the new
	// policy checks against the new policy's oracle.
	swapResp, err := http.Post("http://"+d.httpAddr+"/policy?name=LWD", "", nil)
	if err != nil {
		t.Fatalf("POST /policy: %v", err)
	}
	swapBody, _ := io.ReadAll(swapResp.Body)
	swapResp.Body.Close()
	if swapResp.StatusCode != http.StatusOK {
		t.Fatalf("POST /policy = %d: %s", swapResp.StatusCode, swapBody)
	}
	if code, body := d.adminGet(t, "/policy"); code != http.StatusOK || !strings.Contains(body, "LWD") {
		t.Fatalf("GET /policy = %d %q after swap", code, body)
	}
	resp2 := d.stream(t, tr)
	if resp2.Aborted || resp2.Policy != "LWD" {
		t.Fatalf("second stream: aborted=%v policy=%q", resp2.Aborted, resp2.Policy)
	}
	checkResponseOracle(t, resp2, tr, func() core.Policy { return policy.LWD{} })

	if code, body := d.adminGet(t, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	rest := d.terminate(t)
	if !strings.Contains(rest, "shutting down") {
		t.Fatalf("stdout missing shutdown notice: %q", rest)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("reading snapshot: %v", err)
	}
	var s obs.Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if s.Ports != e2eConfig().Ports {
		t.Fatalf("snapshot ports = %d", s.Ports)
	}
	// The snapshot reflects the last finished stream: its admit total
	// must equal the sum of the per-shard admit lanes in the response.
	var wantAdmits uint64
	for _, res := range resp2.Results {
		for p := 0; p < len(res.Ports); p++ {
			wantAdmits += res.Counts[p*int(obs.NumKinds)+int(obs.KindAdmit)]
		}
	}
	if s.Totals.Admits != wantAdmits {
		t.Fatalf("snapshot admits = %d, want %d", s.Totals.Admits, wantAdmits)
	}
}

// TestDaemonMidStreamDisconnect cuts the client mid-record: the daemon
// must abort the stream at its last complete slot, publish consistent
// results (bit-identical to the oracle over the processed prefix), and
// keep serving — a follow-up full stream on a fresh connection must
// run clean.
func TestDaemonMidStreamDisconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test; skipped with -short")
	}
	snap := filepath.Join(t.TempDir(), "final.obs.json")
	d := startDaemon(t, snap, 2)
	cfg := e2eConfig()
	tr := e2eTrace(cfg, 50)

	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatalf("encoding trace: %v", err)
	}
	// Header is 10 bytes (6 magic + 4 slot count), each slot is two
	// 8-byte records. Send 10 complete slots plus 3 bytes of slot 10's
	// first record: the cursor fails with an unexpected EOF, and the
	// daemon — which discards the burst of any slot it cannot prove
	// complete — cuts at slot 9's boundary, having processed 9 slots.
	cut := 10 + 10*16 + 3
	conn, err := net.Dial("tcp", d.streamAddr)
	if err != nil {
		t.Fatalf("dialing daemon: %v", err)
	}
	if _, err := conn.Write(buf.Bytes()[:cut]); err != nil {
		t.Fatalf("writing partial stream: %v", err)
	}
	conn.Close()

	// The response went to a closed socket; fetch it from /results.
	var resp streamResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := d.adminGet(t, "/results")
		if code == http.StatusOK {
			if err := json.Unmarshal([]byte(body), &resp); err != nil {
				t.Fatalf("/results JSON: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/results never became available; last = %d %s", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !resp.Aborted || resp.Error == "" {
		t.Fatalf("disconnected stream not aborted: %+v", resp)
	}
	if resp.RequestedSlots != len(tr) || resp.ProcessedSlots != 9 {
		t.Fatalf("processed %d/%d slots, want 9/%d", resp.ProcessedSlots, resp.RequestedSlots, len(tr))
	}
	checkResponseOracle(t, &resp, tr[:resp.ProcessedSlots], func() core.Policy { return policy.LQD{} })

	// The runtime survived the cut: a full stream still runs clean and
	// matches its oracle from a fresh slate.
	resp2 := d.stream(t, tr)
	if resp2.Aborted || resp2.Error != "" {
		t.Fatalf("post-disconnect stream aborted: %+v", resp2)
	}
	if resp2.ProcessedSlots != len(tr) {
		t.Fatalf("post-disconnect stream processed %d slots", resp2.ProcessedSlots)
	}
	checkResponseOracle(t, resp2, tr, func() core.Policy { return policy.LQD{} })

	d.terminate(t)
}

// TestSelftestSmoke runs the in-process loadgen subcommand end to end
// at a small scale: it must report a bit-identical oracle differential
// for both shard counts and exit 0.
func TestSelftestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test; skipped with -short")
	}
	bin, err := binary()
	if err != nil {
		t.Fatalf("building smbsimd: %v", err)
	}
	cmd := exec.Command(bin, "-selftest", "-shards", "4", "-ports", "16", "-buffer", "64",
		"-slots", "2000", "-reps", "1", "-seed", "7")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("selftest failed: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "oracle differential: 1/1 shards bit-identical") ||
		!strings.Contains(s, "oracle differential: 4/4 shards bit-identical") ||
		!strings.Contains(s, "scaling ") {
		t.Fatalf("selftest output missing expected lines:\n%s", s)
	}
}
