package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"smbm/internal/core"
	"smbm/internal/obs"
	"smbm/internal/shard"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

// selftestOptions parameterizes the in-process loadgen benchmark.
type selftestOptions struct {
	cfg      core.Config
	policy   string
	factory  func() core.Policy
	shards   int
	ringCap  int
	slots    int
	sources  int
	seed     int64
	reps     int
	minScale float64
}

// labelMode picks the MMPP labeling matching the engine model.
func labelMode(m core.Model) traffic.LabelMode {
	switch m {
	case core.ModelValue:
		return traffic.LabelValueUniform
	case core.ModelCombined:
		return traffic.LabelWorkValue
	default:
		return traffic.LabelWorkByPort
	}
}

// runSelftest materializes one seeded global MMPP trace, replays it
// through the sharded runtime at 1 shard and at o.shards shards with
// one producer goroutine per shard, reports the admission-throughput
// scaling, and verifies every shard of both runs bit-identical against
// the single-threaded sim.RunTrace oracle on the same traffic
// partition. With o.minScale > 0 a scaling factor below it is an
// error.
func runSelftest(out io.Writer, o selftestOptions) error {
	if o.shards < 1 {
		return fmt.Errorf("selftest: -shards %d < 1", o.shards)
	}
	if o.reps < 1 {
		o.reps = 1
	}
	sources := o.sources
	if sources <= 0 {
		sources = 2 * o.cfg.Ports
	}
	mc := traffic.MMPPConfig{
		Sources:  sources,
		LambdaOn: 1.0,
		POnOff:   0.05,
		POffOn:   0.2,
		Label:    labelMode(o.cfg.Model),
		Ports:    o.cfg.Ports,
		MaxLabel: o.cfg.MaxLabel,
		PortWork: o.cfg.PortWork,
		Seed:     o.seed,
	}
	g, err := traffic.NewMMPP(mc)
	if err != nil {
		return fmt.Errorf("selftest: %w", err)
	}
	tr := traffic.Record(g, o.slots)
	var packets int64
	for _, burst := range tr {
		packets += int64(len(burst))
	}
	fmt.Fprintf(out, "smbsimd selftest: policy=%s model=%s ports=%d B=%d k=%d slots=%d packets=%d cores=%d\n",
		o.policy, o.cfg.Model, o.cfg.Ports, o.cfg.Buffer, o.cfg.MaxLabel, o.slots, packets, runtime.NumCPU())

	rate1, err := measure(out, o, 1, tr, packets)
	if err != nil {
		return err
	}
	if o.shards == 1 {
		return nil
	}
	rateN, err := measure(out, o, o.shards, tr, packets)
	if err != nil {
		return err
	}
	scaling := rateN / rate1
	fmt.Fprintf(out, "smbsimd selftest: scaling %.2fx from 1 to %d shards\n", scaling, o.shards)
	if o.minScale > 0 && scaling < o.minScale {
		return fmt.Errorf("selftest: scaling %.2fx below required %.2fx", scaling, o.minScale)
	}
	return nil
}

// measure times o.reps replays of the trace through an n-shard runtime
// (one producer goroutine per shard over the pre-partitioned trace,
// so generation cost stays off the timed consumers), returns the best
// admission rate in packets/second, and checks the final replay's
// results against the oracle.
func measure(out io.Writer, o selftestOptions, n int, tr traffic.Trace, packets int64) (float64, error) {
	rt, err := shard.NewRuntime(o.cfg, n, o.factory, shard.Options{RingCap: o.ringCap})
	if err != nil {
		return 0, fmt.Errorf("selftest: %w", err)
	}
	locals := make([]traffic.Trace, n)
	for i := range locals {
		locals[i] = shard.FilterTrace(tr, rt.Partition(i))
	}
	rt.Start()
	defer rt.Stop()

	var best float64
	results := make([]shard.Result, n)
	errs := make([]error, n)
	for rep := 0; rep < o.reps; rep++ {
		if err := rt.BeginStream(); err != nil {
			return 0, fmt.Errorf("selftest: %w", err)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			f := rt.Feeder(i)
			local := locals[i]
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for slot, burst := range local {
					for _, p := range burst {
						f.Arrive(int64(slot), p)
					}
				}
				results[i], errs[i] = f.Finish(int64(len(local)))
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		rt.EndStream()
		for i, err := range errs {
			if err != nil {
				return 0, fmt.Errorf("selftest: shard %d: %w", i, err)
			}
		}
		if rate := float64(packets) / elapsed.Seconds(); rate > best {
			best = rate
		}
	}

	// Differential oracle over the final replay: every shard must be
	// bit-identical to the single-threaded harness on its partition.
	for i := 0; i < n; i++ {
		cfg := rt.ShardConfig(i)
		sw, err := core.New(cfg, o.factory())
		if err != nil {
			return 0, fmt.Errorf("selftest: oracle shard %d: %w", i, err)
		}
		rec := obs.NewRecorder(cfg.Ports, 0)
		sw.SetRecorder(rec)
		stats, err := sim.RunTrace(sw, locals[i], 0)
		if err != nil {
			return 0, fmt.Errorf("selftest: oracle shard %d: %w", i, err)
		}
		if diff := shard.DiffResult(results[i], stats, sw.PortCounters(), rec.SaveCounts(nil)); diff != "" {
			return 0, fmt.Errorf("selftest: oracle differential failed: %s", diff)
		}
	}
	fmt.Fprintf(out, "smbsimd selftest: shards=%d best=%.0f pkt/s over %d reps, oracle differential: %d/%d shards bit-identical\n",
		n, best, o.reps, n, n)
	return best, nil
}
