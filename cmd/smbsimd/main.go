// Command smbsimd is the long-running sharded switch daemon: N shards,
// each owning a contiguous partition of the output ports and stepping
// a private deterministic core.Switch behind a lock-free SPSC ingress
// ring (see internal/shard). Clients stream arrivals over a unix or
// TCP socket in the traffic binary framing ("SMBT1\n"); the daemon
// makes admission decisions under a live-switchable policy from the
// roster and answers each stream with the bit-exact per-shard results.
//
// The deterministic engine is the daemon's differential oracle: each
// shard's Stats, per-port counters and obs slab are bit-identical to a
// single-threaded sim.RunTrace replay of the shard's traffic
// partition. `smbsimd -selftest` drives a seeded in-process loadgen
// through that differential at 1 and N shards and reports the
// admission-throughput scaling.
//
// Usage:
//
//	smbsimd -listen unix:/tmp/smbsimd.sock            # serve streams
//	smbsimd -listen tcp:127.0.0.1:9090 -shards 4
//	smbsimd -http 127.0.0.1:0                         # expvar, pprof, admin
//	smbsimd -selftest -shards 4 -slots 20000          # scaling benchmark
//	smbsimd -selftest -minscale 2.5                   # fail below 2.5x
//
// The admin server (standard library mux) exposes /debug/vars (expvar,
// including "smbsimd" live counters), /debug/pprof, GET /results (the
// last stream's bit-exact results), GET /policy and POST
// /policy?name=NAME (live policy swap between streams), and
// GET /healthz.
//
// SIGTERM and SIGINT shut down gracefully: the active stream (if any)
// is cut at its last complete slot, every shard drains its ring and
// buffer, the final obs snapshot is flushed to -snapshot (default
// stdout), and the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"smbm/internal/core"
	"smbm/internal/obs"
	"smbm/internal/policy"
	"smbm/internal/shard"
)

// exitFailure is the only non-zero exit code: configuration or runtime
// failure. Graceful signal shutdown exits 0.
const exitFailure = 1

// parseModel maps the -model flag to the engine's model enum.
func parseModel(s string) (core.Model, error) {
	switch s {
	case "proc", "processing":
		return core.ModelProcessing, nil
	case "value":
		return core.ModelValue, nil
	case "combined":
		return core.ModelCombined, nil
	}
	return 0, fmt.Errorf("unknown model %q (want proc, value or combined)", s)
}

// parseWorks maps the -works flag to a PortWork configuration: "" for
// unit work, "contiguous" for 1..k (requires ports == k), "uniform:W"
// for W on every port, or a comma-separated list of length ports.
func parseWorks(s string, ports, maxLabel int) ([]int, error) {
	switch {
	case s == "":
		return nil, nil
	case s == "contiguous":
		if ports != maxLabel {
			return nil, fmt.Errorf("-works contiguous needs ports == k, got %d != %d", ports, maxLabel)
		}
		return core.ContiguousWorks(maxLabel), nil
	case strings.HasPrefix(s, "uniform:"):
		w, err := strconv.Atoi(strings.TrimPrefix(s, "uniform:"))
		if err != nil {
			return nil, fmt.Errorf("-works %q: %v", s, err)
		}
		return core.UniformWorks(ports, w), nil
	}
	fields := strings.Split(s, ",")
	if len(fields) != ports {
		return nil, fmt.Errorf("-works lists %d ports, config has %d", len(fields), ports)
	}
	works := make([]int, len(fields))
	for i, f := range fields {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("-works %q: %v", s, err)
		}
		works[i] = w
	}
	return works, nil
}

// lookupPolicy resolves a roster policy by name within a model. The
// returned factory builds a fresh instance per shard.
func lookupPolicy(model core.Model, name string) (func() core.Policy, error) {
	var probe core.Policy
	switch model {
	case core.ModelProcessing:
		probe = policy.ByName(name)
	case core.ModelValue:
		probe = policy.ValueByName(name)
	default:
		probe = policy.CombinedByName(name)
	}
	if probe == nil {
		return nil, fmt.Errorf("no %s-model policy named %q", model, name)
	}
	factory := func() core.Policy {
		switch model {
		case core.ModelProcessing:
			return policy.ByName(name)
		case core.ModelValue:
			return policy.ValueByName(name)
		default:
			return policy.CombinedByName(name)
		}
	}
	return factory, nil
}

// splitListen parses a -listen spec "unix:/path" or "tcp:host:port".
func splitListen(spec string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(spec, "unix:"):
		return "unix", strings.TrimPrefix(spec, "unix:"), nil
	case strings.HasPrefix(spec, "tcp:"):
		return "tcp", strings.TrimPrefix(spec, "tcp:"), nil
	}
	return "", "", fmt.Errorf("bad -listen %q (want unix:/path or tcp:host:port)", spec)
}

func main() {
	var (
		model    = flag.String("model", "proc", "switch model: proc, value or combined")
		ports    = flag.Int("ports", 16, "output ports n")
		buffer   = flag.Int("buffer", 64, "shared buffer size B (>= ports)")
		maxLabel = flag.Int("k", 4, "per-packet work/value bound k (<= 255)")
		speedup  = flag.Int("speedup", 1, "cores per output queue C")
		works    = flag.String("works", "", `per-port work: "" (unit), "contiguous", "uniform:W", or a comma list`)
		polName  = flag.String("policy", "LQD", "admission policy name from the model's roster")
		shardsN  = flag.Int("shards", 1, "switch shards (each owns a contiguous port partition)")
		ringCap  = flag.Int("ring", 1<<14, "per-shard ingress-ring capacity (entries)")
		listen   = flag.String("listen", "", `stream listener, "unix:/path" or "tcp:host:port"`)
		httpAddr = flag.String("http", "", `admin/debug address for expvar, pprof, /policy, /results (e.g. "127.0.0.1:6060")`)
		snapshot = flag.String("snapshot", "", "write the final obs snapshot JSON here on shutdown (default stdout)")
		selftest = flag.Bool("selftest", false, "run the seeded in-process loadgen scaling benchmark and exit")
		slots    = flag.Int("slots", 20000, "selftest: trace length in slots")
		sources  = flag.Int("sources", 0, "selftest: MMPP on-off sources (default 2*ports)")
		seed     = flag.Int64("seed", 1, "selftest: trace seed")
		reps     = flag.Int("reps", 3, "selftest: timed repetitions per shard count (best rate wins)")
		minScale = flag.Float64("minscale", 0, "selftest: fail unless throughput scales by at least this factor from 1 shard to -shards (0 disables)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "smbsimd:", err)
		os.Exit(exitFailure)
	}

	m, err := parseModel(*model)
	if err != nil {
		fail(err)
	}
	pw, err := parseWorks(*works, *ports, *maxLabel)
	if err != nil {
		fail(err)
	}
	cfg := core.Config{
		Model:    m,
		Ports:    *ports,
		Buffer:   *buffer,
		MaxLabel: *maxLabel,
		Speedup:  *speedup,
		PortWork: pw,
	}
	factory, err := lookupPolicy(m, *polName)
	if err != nil {
		fail(err)
	}

	if *selftest {
		err := runSelftest(os.Stdout, selftestOptions{
			cfg:      cfg,
			policy:   *polName,
			factory:  factory,
			shards:   *shardsN,
			ringCap:  *ringCap,
			slots:    *slots,
			sources:  *sources,
			seed:     *seed,
			reps:     *reps,
			minScale: *minScale,
		})
		if err != nil {
			fail(err)
		}
		return
	}

	if *listen == "" {
		fail(errors.New("need -listen (or -selftest)"))
	}
	network, addr, err := splitListen(*listen)
	if err != nil {
		fail(err)
	}

	rt, err := shard.NewRuntime(cfg, *shardsN, factory, shard.Options{RingCap: *ringCap})
	if err != nil {
		fail(err)
	}
	d := &daemon{rt: rt, policyModel: m}
	d.policyName.Store(*polName)
	rt.Start()

	expvar.Publish("smbsimd", expvar.Func(d.expvars))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if network == "unix" {
		// A stale socket file from a previous run would fail the bind.
		os.Remove(addr)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("smbsimd: listening on %s:%s shards=%d policy=%s\n", network, ln.Addr().String(), rt.Shards(), *polName)

	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fail(err)
		}
		http.HandleFunc("/healthz", d.handleHealthz)
		http.HandleFunc("/results", d.handleResults)
		http.HandleFunc("/policy", d.handlePolicy)
		fmt.Printf("smbsimd: http listening on %s\n", hln.Addr().String())
		go func() {
			if err := http.Serve(hln, nil); err != nil {
				// The listener closes during shutdown; that is not a
				// failure worth reporting.
				_ = err
			}
		}()
		defer hln.Close()
	}

	// The accept loop runs in its own goroutine so the main goroutine
	// can own the shutdown sequence.
	go d.serve(ctx, ln)

	<-ctx.Done()
	stop() // restore default signal behaviour for a second signal
	fmt.Println("smbsimd: shutting down")
	ln.Close()
	d.shutdown()
	if network == "unix" {
		os.Remove(addr)
	}
	if err := d.writeSnapshot(*snapshot); err != nil {
		fail(err)
	}
}

// daemon ties the shard runtime to its socket and admin surfaces.
type daemon struct {
	rt          *shard.Runtime
	policyModel core.Model
	// policyName is the active roster policy, readable from admin
	// handlers while a stream runs.
	policyName syncedString
	// streamMu serializes streams: one client at a time drives the
	// runtime's producer side. It also serializes shutdown against an
	// active stream.
	streamMu sync.Mutex
	// lastMu guards lastResponse, the bit-exact outcome of the most
	// recently finished (or aborted) stream, served at /results.
	lastMu       sync.Mutex
	lastResponse *streamResponse
}

// syncedString is a tiny mutex-guarded string cell.
type syncedString struct {
	mu sync.Mutex
	s  string
}

// Store sets the string.
func (a *syncedString) Store(s string) { a.mu.Lock(); a.s = s; a.mu.Unlock() }

// Load reads the string.
func (a *syncedString) Load() string { a.mu.Lock(); defer a.mu.Unlock(); return a.s }

// streamResponse is the JSON answer to one arrival stream, and the
// payload served at /results.
type streamResponse struct {
	// Policy is the roster policy the stream ran under.
	Policy string `json:"policy"`
	// Shards is the shard count.
	Shards int `json:"shards"`
	// RequestedSlots is the slot count announced in the stream header.
	RequestedSlots int `json:"requested_slots"`
	// ProcessedSlots counts the complete slots actually ingested; it
	// falls short of RequestedSlots when the client disconnected
	// mid-stream or shutdown interrupted the stream.
	ProcessedSlots int `json:"processed_slots"`
	// Aborted reports a mid-stream cut (disconnect or shutdown). Shard
	// state is still consistent: every shard stepped exactly
	// ProcessedSlots slots and drained.
	Aborted bool `json:"aborted"`
	// Error carries the abort cause, "" on success.
	Error string `json:"error,omitempty"`
	// Results are the bit-exact per-shard outcomes; each is
	// reproducible by a single-threaded replay of the shard's traffic
	// partition.
	Results []shard.Result `json:"results"`
}

// serve accepts and handles one stream connection at a time until the
// listener closes.
func (d *daemon) serve(ctx context.Context, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		d.handleConn(ctx, conn)
	}
}

// handleConn ingests one arrival stream and answers with the bit-exact
// results. A mid-stream failure (client disconnect, malformed frame,
// shutdown) cuts the stream at its last complete slot: the shards
// still drain and publish consistent results, retrievable at /results.
func (d *daemon) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	d.streamMu.Lock()
	defer d.streamMu.Unlock()
	if ctx.Err() != nil {
		return
	}

	cur, slots, err := streamOpen(conn)
	if err != nil {
		fmt.Fprintf(conn, `{"error":%q}`+"\n", err.Error())
		return
	}
	defer cur.Close()

	if err := d.rt.BeginStream(); err != nil {
		fmt.Fprintf(conn, `{"error":%q}`+"\n", err.Error())
		return
	}
	processed := 0
	var abortErr error
	for t := 0; t < slots; t++ {
		if ctx.Err() != nil {
			abortErr = ctx.Err()
			break
		}
		burst := cur.Next()
		if err := cur.Err(); err != nil {
			abortErr = err
			break
		}
		ok := true
		for _, p := range burst {
			if err := d.rt.Ingest(int64(t), p); err != nil {
				abortErr = err
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		d.rt.Advance(int64(t) + 1)
		processed++
	}
	if abortErr == nil {
		// The in-loop check runs right after every Next, so a non-nil
		// sticky error here is unreachable; the check closes the
		// cursor contract anyway.
		abortErr = cur.Err()
	}
	results, ferr := d.rt.Finish(int64(processed))
	if abortErr == nil {
		abortErr = ferr
	}

	resp := &streamResponse{
		Policy:         d.policyName.Load(),
		Shards:         d.rt.Shards(),
		RequestedSlots: slots,
		ProcessedSlots: processed,
		Aborted:        processed < slots || abortErr != nil,
		Results:        results,
	}
	if abortErr != nil {
		resp.Error = abortErr.Error()
	}
	d.lastMu.Lock()
	d.lastResponse = resp
	d.lastMu.Unlock()
	// The client may be gone on the abort path; a failed write is fine.
	enc := json.NewEncoder(conn)
	_ = enc.Encode(resp)
}

// shutdown waits out any active stream (the stream loop observes the
// cancelled context and cuts at the next slot boundary), then stops
// the shard goroutines.
func (d *daemon) shutdown() {
	d.streamMu.Lock()
	defer d.streamMu.Unlock()
	d.rt.Stop()
}

// writeSnapshot flushes the final aggregated obs snapshot (all shards,
// global port numbering) to path, or stdout when path is empty.
func (d *daemon) writeSnapshot(path string) error {
	snap := d.obsSnapshot()
	out := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// obsSnapshot aggregates every shard's mirror into one snapshot over
// the global port space.
func (d *daemon) obsSnapshot() *obs.Snapshot {
	total := &obs.Snapshot{
		Ports:   d.rt.Config().Ports,
		PerPort: make([]obs.KindCounts, d.rt.Config().Ports),
	}
	for i := 0; i < d.rt.Shards(); i++ {
		part := d.rt.Partition(i)
		s := d.rt.Shard(i).Mirror().Snapshot()
		for lp, kc := range s.PerPort {
			total.PerPort[part.Lo+lp] = kc
			total.Totals.Accumulate(kc)
		}
	}
	return total
}

// expvars renders the daemon's live counters for /debug/vars.
func (d *daemon) expvars() any {
	live := d.rt.LiveTotal()
	return map[string]any{
		"policy":    d.policyName.Load(),
		"shards":    d.rt.Shards(),
		"streaming": d.rt.Streaming(),
		"live":      live,
		"staging": map[string]int64{
			"budget_cap":  d.rt.Budget().Cap(),
			"budget_free": d.rt.Budget().Free(),
			"emergencies": d.rt.Budget().Emergencies(),
		},
	}
}

// handleHealthz answers liveness probes.
func (d *daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleResults serves the last stream's bit-exact results.
func (d *daemon) handleResults(w http.ResponseWriter, r *http.Request) {
	d.lastMu.Lock()
	resp := d.lastResponse
	d.lastMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if resp == nil {
		http.Error(w, `{"error":"no stream finished yet"}`, http.StatusNotFound)
		return
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// handlePolicy reports (GET) or swaps (POST ?name=) the live policy.
// Swaps apply between streams only; a swap during an active stream is
// rejected so every stream's results stay reproducible under exactly
// one policy.
func (d *daemon) handlePolicy(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		fmt.Fprintf(w, `{"policy":%q}`+"\n", d.policyName.Load())
	case http.MethodPost:
		name := r.URL.Query().Get("name")
		factory, err := lookupPolicy(d.policyModel, name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The runtime's producer side is single-driver: take the stream
		// lock so the swap cannot race an arriving stream. A held lock
		// means a stream is active - reject rather than block the admin
		// surface behind it.
		if !d.streamMu.TryLock() {
			http.Error(w, "a stream is active; policy swaps apply between streams", http.StatusConflict)
			return
		}
		defer d.streamMu.Unlock()
		if err := d.rt.SetPolicy(factory); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		d.policyName.Store(name)
		fmt.Fprintf(w, `{"policy":%q}`+"\n", name)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
