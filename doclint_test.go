package smbm_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryExportedSymbolIsDocumented walks the whole module and fails
// on any exported declaration without a doc comment — the "doc comments
// on every public item" deliverable, enforced mechanically.
func TestEveryExportedSymbolIsDocumented(t *testing.T) {
	var missing []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					missing = append(missing, loc(path, fset, d.Pos(), "func "+d.Name.Name))
				}
			case *ast.GenDecl:
				groupDocumented := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDocumented && s.Doc == nil && s.Comment == nil {
							missing = append(missing, loc(path, fset, s.Pos(), "type "+s.Name.Name))
						}
						// Exported struct fields need comments too.
						if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
							for _, f := range st.Fields.List {
								for _, n := range f.Names {
									if n.IsExported() && f.Doc == nil && f.Comment == nil {
										missing = append(missing, loc(path, fset, n.Pos(), s.Name.Name+"."+n.Name))
									}
								}
							}
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && !groupDocumented && s.Doc == nil && s.Comment == nil {
								missing = append(missing, loc(path, fset, n.Pos(), "value "+n.Name))
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("%d exported symbols lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

func loc(path string, fset *token.FileSet, pos token.Pos, what string) string {
	p := fset.Position(pos)
	return path + ":" + itoa(p.Line) + ": " + what
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
