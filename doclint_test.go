package smbm_test

import (
	"strings"
	"testing"

	"smbm/internal/lint"
	"smbm/internal/lint/exporteddoc"
)

// TestEveryExportedSymbolIsDocumented walks the whole module and fails
// on any exported declaration without a doc comment — the "doc comments
// on every public item" deliverable, enforced mechanically. The walker
// lives in the exporteddoc analyzer (internal/lint/exporteddoc), which
// `make lint` also runs; this test is the thin in-tree wrapper so the
// contract holds under plain `go test ./...` too.
func TestEveryExportedSymbolIsDocumented(t *testing.T) {
	pkgs, err := lint.LoadSyntax(".")
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzer(exporteddoc.Analyzer, pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			missing = append(missing, d.String())
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d exported symbols lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}
