package smbm_test

import (
	"math"
	"testing"

	"smbm"
)

// TestEndToEndWorkflow drives the whole public surface the way a
// downstream user would: generate traffic, compare the full roster,
// replay the winner against the exact optimum on a shrunk instance,
// check the lower bounds, and run the proof harness — one coherent
// session, no internals.
func TestEndToEndWorkflow(t *testing.T) {
	// 1. A switch configuration for four services.
	cfg := smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    4,
		Buffer:   96,
		MaxLabel: 8,
		Speedup:  1,
		PortWork: []int{1, 2, 4, 8},
	}

	// 2. Bursty traffic at ~2.4x capacity (capacity = 1+1/2+1/4+1/8).
	mmpp := smbm.MMPPConfig{
		Sources:      40,
		POnOff:       0.1,
		POffOn:       0.01,
		Label:        smbm.LabelWorkByPort,
		Ports:        cfg.Ports,
		MaxLabel:     cfg.MaxLabel,
		PortWork:     cfg.PortWork,
		PortAffinity: true,
		Seed:         11,
	}
	mmpp.LambdaOn = mmpp.LambdaForRate(4.5)
	gen, err := smbm.NewMMPP(mmpp)
	if err != nil {
		t.Fatal(err)
	}
	trace := smbm.RecordTrace(gen, 4000)

	// 3. Rank the full roster.
	results, err := smbm.Compare(cfg, smbm.ProcessingPolicies(), trace, 1000)
	if err != nil {
		t.Fatal(err)
	}
	best, bestRatio := "", math.Inf(1)
	for _, r := range results {
		if r.Ratio < bestRatio {
			best, bestRatio = r.Policy, r.Ratio
		}
	}
	if best != "LWD" {
		t.Errorf("best policy on this workload is %s (%.3f), expected LWD", best, bestRatio)
	}

	// 4. Sanity-check the winner against the true optimum on a tiny
	// instance.
	tiny := smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    3,
		Buffer:   4,
		MaxLabel: 3,
		Speedup:  1,
		PortWork: smbm.ContiguousWorks(3),
	}
	tinyTrace := smbm.Trace{
		{smbm.WorkPacket(2, 3), smbm.WorkPacket(0, 1), smbm.WorkPacket(0, 1)},
		{smbm.WorkPacket(1, 2), smbm.WorkPacket(0, 1)},
	}
	exact, err := smbm.ExactOptimum(tiny, tinyTrace)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := smbm.NewSwitch(tiny, smbm.LWD())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := smbm.RunTrace(sw, tinyTrace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if 2*stats.Transmitted < exact {
		t.Errorf("LWD %d vs exact %d violates Theorem 7", stats.Transmitted, exact)
	}

	// 5. The proof harness certifies the same bound mechanically.
	rep, err := smbm.CheckTheorem7Mapping(tiny, smbm.Greedy(), tinyTrace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxCharge > 2 {
		t.Errorf("mapping charged %d > 2", rep.MaxCharge)
	}

	// 6. The per-port counters expose the fairness story.
	pc := sw.PortCounters()
	if len(pc) != tiny.Ports {
		t.Fatalf("port counters %d", len(pc))
	}

	// 7. The single-queue baseline is constructible through the facade.
	sq, err := smbm.NewSingleQueue(smbm.SingleQueueConfig{
		Buffer: 16, MaxWork: 4, Cores: 2, Order: smbm.OrderPQ, PushOut: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smbm.RunTrace(sq, smbm.Trace{{smbm.WorkPacket(0, 3)}}, 0); err != nil {
		t.Fatal(err)
	}
	if sq.Stats().Transmitted != 1 {
		t.Errorf("single queue transmitted %d", sq.Stats().Transmitted)
	}
}
