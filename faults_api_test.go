package smbm_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"smbm"
)

func faultsCfg() smbm.Config {
	return smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    4,
		Buffer:   12,
		MaxLabel: 4,
		Speedup:  1,
		PortWork: []int{1, 2, 3, 4},
	}
}

func faultsTrace(slots int, seed int64) smbm.Trace {
	rng := rand.New(rand.NewSource(seed))
	works := []int{1, 2, 3, 4}
	tr := make(smbm.Trace, slots)
	for t := range tr {
		n := rng.Intn(6)
		burst := make([]smbm.Packet, 0, n)
		for j := 0; j < n; j++ {
			p := rng.Intn(len(works))
			burst = append(burst, smbm.WorkPacket(p, works[p]))
		}
		tr[t] = burst
	}
	return tr
}

func TestFaultInjectorFacade(t *testing.T) {
	cfg := faultsCfg()
	spec, err := smbm.ParseFaultSpec("blackout:period=100:dur=50")
	if err != nil {
		t.Fatal(err)
	}
	spec.Horizon = 300
	sw, err := smbm.NewSwitch(cfg, smbm.LWD())
	if err != nil {
		t.Fatal(err)
	}
	in, err := smbm.NewFaultInjector(sw, spec, cfg.Ports, 7)
	if err != nil {
		t.Fatal(err)
	}
	events := in.Schedule()
	if len(events) != 3 {
		t.Fatalf("%d events, want 3 blackout windows over 300 slots", len(events))
	}
	for _, e := range events {
		if e.Kind != smbm.FaultPortBlackout {
			t.Errorf("event kind %v, want blackout", e.Kind)
		}
	}
	tr := faultsTrace(300, 5)
	s1, err := smbm.RunTrace(in, tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	in.Reset()
	s2, err := smbm.RunTrace(in, tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("faulted facade run not reproducible")
	}
}

func TestDegradationReport(t *testing.T) {
	cfg := faultsCfg()
	tr := faultsTrace(600, 11)
	spec := smbm.CanonicalFaultMix(cfg.Ports, cfg.Buffer, cfg.Speedup, 0) // Horizon defaults to the trace
	policies := []smbm.Policy{smbm.LWD(), smbm.Greedy()}
	rows, err := smbm.DegradationReport(cfg, policies, tr, 200, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Policy == "" || r.Nominal <= 0 || r.Faulted <= 0 || r.Penalty <= 0 {
			t.Errorf("degenerate degradation row %+v", r)
		}
	}
	if rows[0].Policy != "LWD" || rows[1].Policy != "Greedy" {
		t.Errorf("row order %s, %s", rows[0].Policy, rows[1].Policy)
	}
}

func TestParseFaultSpecFacadeRejectsGarbage(t *testing.T) {
	if _, err := smbm.ParseFaultSpec("nope"); err == nil ||
		!strings.Contains(err.Error(), "unknown fault kind") {
		t.Errorf("got %v, want unknown-kind error", err)
	}
}
