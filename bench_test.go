// Benchmark harness: one benchmark per evaluation artifact of the paper.
//
//   - BenchmarkFig5_* regenerate one seeded cell of the corresponding
//     Fig. 5 panel per iteration (full panels with tables come from
//     cmd/smbsim; these track the cost and report the measured
//     competitive ratio as a custom metric "ratio").
//   - BenchmarkTheorem* execute the lower-bound constructions
//     (cmd/lowerbound prints the full table) and report the measured
//     ratio alongside ns/op.
//
// Run with: go test -bench=. -benchmem
package smbm_test

import (
	"testing"

	"smbm"
	"smbm/internal/adversary"
	"smbm/internal/experiments"
)

// benchPanel runs one cell (the panel's middle x, one seed) per
// iteration and reports the named policy's empirical competitive ratio.
func benchPanel(b *testing.B, id, reportPolicy string) {
	b.Helper()
	opts := experiments.Options{
		Slots:      2000,
		Seeds:      1,
		Sources:    100,
		FlushEvery: 1000,
		BaseSeed:   1,
	}
	sweep, err := experiments.Panel(id, opts)
	if err != nil {
		b.Fatal(err)
	}
	mid := sweep.Xs[len(sweep.Xs)/2]
	var lastRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := sweep.Build(mid, opts.BaseSeed)
		if err != nil {
			b.Fatal(err)
		}
		results, err := inst.Run()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Policy == reportPolicy {
				lastRatio = r.Ratio
			}
		}
	}
	b.ReportMetric(lastRatio, "ratio")
}

func BenchmarkFig5_1_ProcessingVsK(b *testing.B)  { benchPanel(b, "fig5.1", "LWD") }
func BenchmarkFig5_2_ProcessingVsB(b *testing.B)  { benchPanel(b, "fig5.2", "LWD") }
func BenchmarkFig5_3_ProcessingVsC(b *testing.B)  { benchPanel(b, "fig5.3", "LWD") }
func BenchmarkFig5_4_ValueVsK(b *testing.B)       { benchPanel(b, "fig5.4", "MRD") }
func BenchmarkFig5_5_ValueVsB(b *testing.B)       { benchPanel(b, "fig5.5", "MRD") }
func BenchmarkFig5_6_ValueVsC(b *testing.B)       { benchPanel(b, "fig5.6", "MVD") }
func BenchmarkFig5_7_ValueByPortVsK(b *testing.B) { benchPanel(b, "fig5.7", "MRD") }
func BenchmarkFig5_8_ValueByPortVsB(b *testing.B) { benchPanel(b, "fig5.8", "MRD") }
func BenchmarkFig5_9_ValueByPortVsC(b *testing.B) { benchPanel(b, "fig5.9", "MRD") }

// benchTheorem executes one lower-bound construction per iteration,
// reporting the measured adversarial ratio.
func benchTheorem(b *testing.B, id string, p adversary.Params) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		c, err := adversary.ByID(id, p)
		if err != nil {
			b.Fatal(err)
		}
		o, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = o.Ratio
	}
	b.ReportMetric(last, "ratio")
}

func BenchmarkTheorem1_NHST(b *testing.B) {
	benchTheorem(b, "thm1", adversary.Params{K: 8, B: 400, Rounds: 1, Warmup: 1})
}

func BenchmarkTheorem2_NEST(b *testing.B) {
	benchTheorem(b, "thm2", adversary.Params{K: 8, B: 400, Rounds: 1, Warmup: 1})
}

func BenchmarkTheorem3_NHDT(b *testing.B) {
	benchTheorem(b, "thm3", adversary.Params{K: 32, B: 1024, Rounds: 1, Warmup: 1})
}

func BenchmarkTheorem4_LQD(b *testing.B) {
	benchTheorem(b, "thm4", adversary.Params{K: 36, B: 720, Rounds: 1, Warmup: 1})
}

func BenchmarkTheorem5_BPD(b *testing.B) {
	benchTheorem(b, "thm5", adversary.Params{K: 8, Rounds: 1, Warmup: 1})
}

func BenchmarkTheorem6_LWD(b *testing.B) {
	benchTheorem(b, "thm6", adversary.Params{K: 6, B: 600, Rounds: 1, Warmup: 1})
}

func BenchmarkTheorem9_ValueLQD(b *testing.B) {
	benchTheorem(b, "thm9", adversary.Params{K: 27, B: 540, Rounds: 1, Warmup: 1})
}

func BenchmarkTheorem10_MVD(b *testing.B) {
	benchTheorem(b, "thm10", adversary.Params{K: 8, B: 64, Rounds: 1, Warmup: 1})
}

func BenchmarkTheorem11_MRD(b *testing.B) {
	benchTheorem(b, "thm11", adversary.Params{K: 6, B: 600, Rounds: 1, Warmup: 1})
}

// BenchmarkArchComparison regenerates the Fig. 1 architecture table
// (single queue vs shared memory) once per iteration and reports the
// shared-memory LWD ratio against the single-queue PQ winner.
func BenchmarkArchComparison(b *testing.B) {
	var lwdRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Architectures(experiments.Options{
			Slots:      1500,
			Seeds:      1,
			Sources:    50,
			FlushEvery: 500,
			BaseSeed:   1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "SM-LWD" {
				lwdRatio = r.Ratio
			}
		}
	}
	b.ReportMetric(lwdRatio, "ratio-vs-1Q-PQ")
}

// BenchmarkEngineSlotThroughput measures raw simulator speed: packets
// pushed through a congested LWD switch per second.
func BenchmarkEngineSlotThroughput(b *testing.B) {
	cfg := smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    16,
		Buffer:   256,
		MaxLabel: 16,
		Speedup:  1,
		PortWork: smbm.ContiguousWorks(16),
	}
	mmpp := smbm.MMPPConfig{
		Sources:      100,
		POnOff:       0.1,
		POffOn:       0.01,
		Label:        smbm.LabelWorkByPort,
		Ports:        16,
		MaxLabel:     16,
		PortWork:     cfg.PortWork,
		PortAffinity: true,
		Seed:         1,
	}
	mmpp.LambdaOn = mmpp.LambdaForRate(10)
	gen, err := smbm.NewMMPP(mmpp)
	if err != nil {
		b.Fatal(err)
	}
	trace := smbm.RecordTrace(gen, 2000)
	sw, err := smbm.NewSwitch(cfg, smbm.LWD())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, burst := range trace {
			if err := sw.Step(burst); err != nil {
				b.Fatal(err)
			}
		}
		sw.Drain()
		sw.Reset()
	}
	b.SetBytes(0)
	b.ReportMetric(float64(trace.Packets()), "pkts/op")
}
