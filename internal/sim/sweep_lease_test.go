package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// leaseTestSweep returns testSweep configured for leased mode.
func leaseTestSweep(dir, worker string) *Sweep {
	s := testSweep()
	s.Ledger = dir
	s.LedgerWorker = worker
	s.LeaseTTL = time.Minute
	return s
}

// stripHarness zeroes the fields that legitimately differ between a
// leased and a plain run — harness-level observations that never enter
// the merged points.
func stripHarness(r *SweepResult) *SweepResult {
	cp := *r
	cp.Warnings = nil
	cp.Lease = nil
	return &cp
}

func TestLeasedMatchesPlainRun(t *testing.T) {
	plain, err := testSweep().Run()
	if err != nil {
		t.Fatal(err)
	}
	leased, err := leaseTestSweep(t.TempDir(), "w0").Run()
	if err != nil {
		t.Fatal(err)
	}
	if leased.Lease == nil {
		t.Fatal("leased run has no lease counters")
	}
	want, _ := json.Marshal(stripHarness(plain))
	got, _ := json.Marshal(stripHarness(leased))
	if string(got) != string(want) {
		t.Fatalf("leased result differs from plain run:\n got %s\nwant %s", got, want)
	}
}

func TestLeasedTwoWorkersShareTheGrid(t *testing.T) {
	dir := t.TempDir()
	var wg sync.WaitGroup
	results := make([]*SweepResult, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := leaseTestSweep(dir, fmt.Sprintf("w%d", i))
			s.Parallelism = 2
			results[i], errs[i] = s.Run()
		}(i)
	}
	wg.Wait()
	plain, err := testSweep().Run()
	if err != nil {
		t.Fatal(err)
	}
	var totalCompletes uint64
	for i, r := range results {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if r.Partial {
			t.Fatalf("worker %d: partial", i)
		}
		// Every worker merges the full grid, so both see the same —
		// single-process — result.
		want, _ := json.Marshal(stripHarness(plain))
		got, _ := json.Marshal(stripHarness(r))
		if string(got) != string(want) {
			t.Fatalf("worker %d result differs from plain run:\n got %s\nwant %s", i, got, want)
		}
		totalCompletes += r.Lease.Completes
	}
	// Execution is at-least-once (a lease race can duplicate a cell);
	// the merge is what must be exactly-once, which the bit-identity
	// check above already proves. Here just check both workers actually
	// shared the grid rather than one running it all twice.
	if want := uint64(len(plain.Points) * 3); totalCompletes < want {
		t.Fatalf("workers completed %d cells total, want at least %d", totalCompletes, want)
	}
	for i, r := range results {
		if r.Lease.Completes == 0 {
			t.Logf("worker %d completed no cells (legal but unexpected on this grid)", i)
		}
	}
}

func TestLeasedResumesAfterAbandonedRun(t *testing.T) {
	dir := t.TempDir()

	// First incarnation completes part of the grid and stops: cancel
	// after the first completion.
	ctx, cancel := context.WithCancel(context.Background())
	first := leaseTestSweep(dir, "w0")
	first.Parallelism = 1
	var firstDone int
	first.Progress = func(p SweepProgress) {
		if p.Err == nil {
			firstDone++
			cancel()
		}
	}
	res1, err := first.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}
	if !res1.Partial || firstDone == 0 {
		t.Fatalf("interrupted run: partial=%v done=%d", res1.Partial, firstDone)
	}

	// A fresh incarnation finishes the rest and merges to the full,
	// bit-identical result.
	second := leaseTestSweep(dir, "w0")
	res2, err := second.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Partial {
		t.Fatal("resumed run still partial")
	}
	plain, err := testSweep().Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(stripHarness(plain))
	got, _ := json.Marshal(stripHarness(res2))
	if string(got) != string(want) {
		t.Fatalf("resumed result differs from plain run:\n got %s\nwant %s", got, want)
	}
	if res2.Lease.Completes >= uint64(len(testSweep().Xs)*3) {
		t.Fatalf("second run re-ran everything (%d completes); cells from the first run were not merged", res2.Lease.Completes)
	}
}

func TestLeasedTransientFailureRetries(t *testing.T) {
	var failures atomic.Int32
	s := leaseTestSweep(t.TempDir(), "w0")
	build := s.Build
	s.Build = func(x int, seed int64) (Instance, error) {
		// The first attempt at x=4 fails; the retry succeeds.
		if x == 4 && failures.CompareAndSwap(0, 1) {
			return Instance{}, errors.New("transient build failure")
		}
		return build(x, seed)
	}
	res, err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "transient build failure") {
		t.Fatalf("err = %v, want the transient failure reported", err)
	}
	if res.Partial {
		t.Fatal("partial despite successful retry")
	}
	if res.Lease.Abandons != 1 {
		t.Fatalf("abandons = %d, want 1", res.Lease.Abandons)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points %d, want 3 (retry completed the cell)", len(res.Points))
	}
}

func TestLeasedDegradedCellStillRendersPartialTables(t *testing.T) {
	s := leaseTestSweep(t.TempDir(), "w0")
	s.CellRetries = -1 // no retries: first failure degrades
	build := s.Build
	s.Build = func(x int, seed int64) (Instance, error) {
		if x == 4 {
			return Instance{}, errors.New("permanent failure")
		}
		return build(x, seed)
	}
	res, err := s.Run()
	if err == nil {
		t.Fatal("want cell errors reported")
	}
	if !res.Partial {
		t.Fatal("degraded run must be partial")
	}
	// x=4 is omitted; the other points still render.
	if len(res.Points) != 2 {
		t.Fatalf("points %d, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.X == 4 {
			t.Fatal("degraded x=4 leaked into the points")
		}
	}
	var degradedWarnings int
	for _, w := range res.Warnings {
		if strings.Contains(w, "degraded") {
			degradedWarnings++
		}
	}
	if degradedWarnings != 3 {
		t.Fatalf("degraded warnings = %d (%q), want 3 (one per seed)", degradedWarnings, res.Warnings)
	}
	if res.Table() == "" {
		t.Fatal("partial table did not render")
	}
}

func TestLeasedRefusesCheckpointCombo(t *testing.T) {
	s := leaseTestSweep(t.TempDir(), "w0")
	s.Checkpoint = filepath.Join(t.TempDir(), "ckpt.jsonl")
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "Ledger") {
		t.Fatalf("err = %v, want the Checkpoint+Ledger combination refused", err)
	}
}

// TestLeasedProgressSerializedDelivery pins the Sweep.Progress
// contract in leased mode: deliveries are serialized even though N
// worker goroutines produce cell outcomes, so a callback may mutate
// its own unsynchronized state. The callback here does exactly that —
// a plain counter and map, which the race detector would flag on any
// concurrent delivery — and asserts the delivered Done counter is
// monotone in delivery order.
func TestLeasedProgressSerializedDelivery(t *testing.T) {
	s := leaseTestSweep(t.TempDir(), "w0")
	s.Parallelism = 4
	deliveries := 0
	lastDone := 0
	seen := map[[2]int]int{}
	s.Progress = func(p SweepProgress) {
		deliveries++
		seen[[2]int{p.X, p.SeedIndex}]++
		if p.Done < lastDone {
			t.Errorf("Done went backwards: %d after %d", p.Done, lastDone)
		}
		lastDone = p.Done
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := len(s.Xs) * s.Seeds
	if deliveries < total {
		t.Fatalf("got %d progress deliveries, want at least %d", deliveries, total)
	}
	if len(seen) != total {
		t.Fatalf("progress covered %d distinct cells, want %d", len(seen), total)
	}
	// Execution is at-least-once (a lease race can duplicate a cell),
	// so Done can exceed the grid size; monotone delivery — asserted in
	// the callback — guarantees the last delivery carries the maximum.
	if lastDone < total {
		t.Fatalf("final delivered Done = %d, want at least %d", lastDone, total)
	}
	if res.Partial {
		t.Fatalf("single-worker leased run came back partial")
	}
}
