// Differential tests for the optimized engine: a deliberately naive
// reference switch (refSwitch, below) replays the same fixed-seed traces
// through the same policies and must produce bit-identical Stats and
// per-port counters.
//
// Two independent slow paths are exercised at once:
//
//   - refSwitch recomputes every View query from first principles (raw
//     slices, per-call scans) instead of the incremental mirrors and
//     argmax caches the production core.Switch maintains;
//   - refSwitch implements only core.View, not core.FastView, so every
//     policy falls back to its retained plain-View reference scan
//     instead of its slice-based fast path.
//
// The production switch additionally runs with CheckInvariants enabled,
// so its incremental state is also cross-checked against recomputation
// every slot. The fault-injected variants wrap both engines in identical
// deterministic fault schedules (slowdown, blackout, squeeze, burst
// amplification), pinning equivalence off the nominal point too.
//
// This file is package sim_test (external) so it can import
// internal/faults, which itself imports package sim.
package sim_test

import (
	"fmt"
	"testing"

	"smbm/internal/core"
	"smbm/internal/faults"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

// refSwitch is an old-style reference implementation of the switch
// engine: no incremental mirrors, no caches, every query a fresh scan.
// It intentionally mirrors the seed engine's semantics statement by
// statement so any divergence in the optimized engine is a real bug,
// not a modeling difference.
type refSwitch struct {
	cfg    core.Config
	policy core.Policy
	works  []int

	occ  int
	slot int64

	// FIFO disciplines (processing and combined models): queues[i]
	// holds the arrival slot of each buffered packet in FIFO order;
	// holRes[i] is the head-of-line residual.
	queues [][]int64
	holRes []int

	// Combined model: qvals[i] mirrors queues[i] with each packet's
	// intrinsic value, in the same FIFO order.
	qvals [][]int

	// Value model: vals[i] is the unordered multiset of buffered values.
	vals [][]int

	speedOv  []int
	bufLimit int

	stats   core.Stats
	perPort []core.PortCounters
}

var (
	_ sim.System         = (*refSwitch)(nil)
	_ sim.BoundedDrainer = (*refSwitch)(nil)
	_ core.View          = (*refSwitch)(nil)
	_ faults.Throttled   = (*refSwitch)(nil)
	_ faults.Squeezed    = (*refSwitch)(nil)
)

func newRefSwitch(t *testing.T, cfg core.Config, p core.Policy) *refSwitch {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	works := cfg.PortWork
	if cfg.Model == core.ModelValue || works == nil {
		works = core.UniformWorks(cfg.Ports, 1)
	}
	r := &refSwitch{
		cfg:     cfg,
		policy:  p,
		works:   works,
		perPort: make([]core.PortCounters, cfg.Ports),
	}
	if cfg.Model == core.ModelValue {
		r.vals = make([][]int, cfg.Ports)
	} else {
		r.queues = make([][]int64, cfg.Ports)
		r.holRes = make([]int, cfg.Ports)
		if cfg.Model == core.ModelCombined {
			r.qvals = make([][]int, cfg.Ports)
		}
	}
	return r
}

// --- plain View (slow-path queries only) ---------------------------------

func (r *refSwitch) Model() core.Model { return r.cfg.Model }
func (r *refSwitch) Ports() int        { return r.cfg.Ports }
func (r *refSwitch) MaxLabel() int     { return r.cfg.MaxLabel }
func (r *refSwitch) Occupancy() int    { return r.occ }

func (r *refSwitch) Buffer() int {
	if r.bufLimit > 0 && r.bufLimit < r.cfg.Buffer {
		return r.bufLimit
	}
	return r.cfg.Buffer
}

func (r *refSwitch) Free() int {
	if free := r.Buffer() - r.occ; free > 0 {
		return free
	}
	return 0
}

func (r *refSwitch) QueueLen(i int) int {
	if r.cfg.Model == core.ModelValue {
		return len(r.vals[i])
	}
	return len(r.queues[i])
}

func (r *refSwitch) PortWork(i int) int { return r.works[i] }

func (r *refSwitch) QueueWork(i int) int {
	if r.cfg.Model == core.ModelValue {
		return len(r.vals[i])
	}
	if len(r.queues[i]) == 0 {
		return 0
	}
	return (len(r.queues[i])-1)*r.works[i] + r.holRes[i]
}

func (r *refSwitch) buffered(i int) []int {
	if r.cfg.Model == core.ModelCombined {
		return r.qvals[i]
	}
	return r.vals[i]
}

func (r *refSwitch) QueueMinValue(i int) int {
	if r.cfg.Model == core.ModelProcessing {
		if len(r.queues[i]) == 0 {
			return 0
		}
		return 1
	}
	vs := r.buffered(i)
	if len(vs) == 0 {
		return 0
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func (r *refSwitch) QueueMaxValue(i int) int {
	if r.cfg.Model == core.ModelProcessing {
		if len(r.queues[i]) == 0 {
			return 0
		}
		return 1
	}
	vs := r.buffered(i)
	if len(vs) == 0 {
		return 0
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func (r *refSwitch) QueueValueSum(i int) int64 {
	if r.cfg.Model == core.ModelProcessing {
		return int64(len(r.queues[i]))
	}
	var s int64
	for _, v := range r.buffered(i) {
		s += int64(v)
	}
	return s
}

// --- fault-injection capabilities ----------------------------------------

func (r *refSwitch) SetPortSpeedup(i, c int) {
	if r.speedOv == nil {
		if c < 0 {
			return
		}
		r.speedOv = make([]int, r.cfg.Ports)
		for j := range r.speedOv {
			r.speedOv[j] = -1
		}
	}
	r.speedOv[i] = c
}

func (r *refSwitch) ResetSpeedups() {
	for i := range r.speedOv {
		r.speedOv[i] = -1
	}
}

func (r *refSwitch) SetBufferLimit(b int) {
	if b <= 0 {
		r.bufLimit = 0
		return
	}
	r.bufLimit = b
}

func (r *refSwitch) effSpeedup(i int) int {
	if r.speedOv != nil && r.speedOv[i] >= 0 {
		return r.speedOv[i]
	}
	return r.cfg.Speedup
}

// --- simulation ----------------------------------------------------------

func (r *refSwitch) Name() string { return "ref(" + r.policy.Name() + ")" }

func (r *refSwitch) Stats() core.Stats { return r.stats }

func (r *refSwitch) arrive(p pkt.Packet) error {
	if err := p.Validate(r.cfg.Ports, r.cfg.MaxLabel); err != nil {
		return err
	}
	if r.cfg.Model != core.ModelValue && p.Work != r.works[p.Port] {
		return fmt.Errorf("ref: packet work %d does not match port %d configuration %d", p.Work, p.Port, r.works[p.Port])
	}
	r.stats.Arrived++
	r.perPort[p.Port].Arrived++
	d := r.policy.Admit(r, p)
	if !d.Accept {
		r.stats.Dropped++
		r.perPort[p.Port].Dropped++
		return nil
	}
	if d.Push {
		if err := r.evict(d.Victim); err != nil {
			return fmt.Errorf("ref: policy %s: %w", r.policy.Name(), err)
		}
	}
	limit := r.Buffer()
	if d.Push {
		limit = r.cfg.Buffer
	}
	if r.occ >= limit {
		return fmt.Errorf("ref: policy %s accepted into a full buffer (occ=%d, B=%d)", r.policy.Name(), r.occ, limit)
	}
	// insert
	i := p.Port
	if r.cfg.Model == core.ModelValue {
		r.vals[i] = append(r.vals[i], p.Value)
	} else {
		r.queues[i] = append(r.queues[i], r.slot)
		if len(r.queues[i]) == 1 {
			r.holRes[i] = r.works[i]
		}
		if r.cfg.Model == core.ModelCombined {
			r.qvals[i] = append(r.qvals[i], p.Value)
		}
	}
	r.occ++
	r.stats.Accepted++
	r.perPort[i].Accepted++
	if r.occ > r.stats.MaxOccupancy {
		r.stats.MaxOccupancy = r.occ
	}
	return nil
}

func (r *refSwitch) evict(victim int) error {
	if victim < 0 || victim >= r.cfg.Ports {
		return fmt.Errorf("push-out victim %d out of range", victim)
	}
	if r.QueueLen(victim) == 0 {
		return fmt.Errorf("push-out from empty queue %d", victim)
	}
	if r.cfg.Model != core.ModelValue {
		q := r.queues[victim]
		r.queues[victim] = q[:len(q)-1]
		if len(r.queues[victim]) == 0 {
			r.holRes[victim] = 0
		}
		if r.cfg.Model == core.ModelCombined {
			r.qvals[victim] = r.qvals[victim][:len(r.qvals[victim])-1]
		}
	} else {
		// Remove one instance of the minimum value: the multiset
		// equivalent of the production engine's PopMin.
		vs := r.vals[victim]
		mi := 0
		for j, v := range vs {
			if v < vs[mi] {
				mi = j
			}
		}
		r.vals[victim] = append(vs[:mi], vs[mi+1:]...)
	}
	r.occ--
	r.stats.PushedOut++
	r.perPort[victim].PushedOut++
	return nil
}

func (r *refSwitch) transmit() {
	if r.cfg.Model != core.ModelValue {
		for i := 0; i < r.cfg.Ports; i++ {
			budget := r.effSpeedup(i)
			for budget > 0 && len(r.queues[i]) > 0 {
				use := budget
				if r.holRes[i] < use {
					use = r.holRes[i]
				}
				r.holRes[i] -= use
				budget -= use
				r.stats.CyclesUsed += int64(use)
				if r.holRes[i] > 0 {
					break
				}
				arrivedAt := r.queues[i][0]
				r.queues[i] = r.queues[i][1:]
				val := int64(1)
				if r.cfg.Model == core.ModelCombined {
					val = int64(r.qvals[i][0])
					r.qvals[i] = r.qvals[i][1:]
				}
				r.occ--
				lat := r.slot - arrivedAt
				r.stats.Transmitted++
				r.stats.TransmittedValue += val
				r.stats.TransmittedWork += int64(r.works[i])
				r.stats.LatencySlots += lat
				pc := &r.perPort[i]
				pc.Transmitted++
				pc.TransmittedValue += val
				pc.LatencySlots += lat
				if lat > pc.MaxLatency {
					pc.MaxLatency = lat
				}
				if len(r.queues[i]) > 0 {
					r.holRes[i] = r.works[i]
				}
			}
		}
	} else {
		for i := 0; i < r.cfg.Ports; i++ {
			pops := r.effSpeedup(i)
			if l := len(r.vals[i]); pops > l {
				pops = l
			}
			for c := 0; c < pops; c++ {
				// Remove one instance of the maximum value (PopMax).
				vs := r.vals[i]
				mi := 0
				for j, v := range vs {
					if v > vs[mi] {
						mi = j
					}
				}
				v := vs[mi]
				r.vals[i] = append(vs[:mi], vs[mi+1:]...)
				r.occ--
				r.stats.Transmitted++
				r.stats.TransmittedValue += int64(v)
				r.stats.TransmittedWork++
				r.stats.CyclesUsed++
				r.perPort[i].Transmitted++
				r.perPort[i].TransmittedValue += int64(v)
			}
		}
	}
	r.slot++
	r.stats.Slots++
}

func (r *refSwitch) Step(arrivals []pkt.Packet) error {
	for _, p := range arrivals {
		if err := r.arrive(p); err != nil {
			return err
		}
	}
	r.transmit()
	return nil
}

func (r *refSwitch) Drain() int {
	var slots int
	for r.occ > 0 {
		r.transmit()
		slots++
	}
	return slots
}

func (r *refSwitch) DrainMax(max int) (int, bool) {
	var slots int
	for r.occ > 0 {
		if slots >= max {
			return slots, false
		}
		r.transmit()
		slots++
	}
	return slots, true
}

func (r *refSwitch) Reset() {
	r.occ = 0
	r.slot = 0
	r.stats = core.Stats{}
	r.speedOv = nil
	r.bufLimit = 0
	for i := range r.perPort {
		r.perPort[i] = core.PortCounters{}
	}
	for i := range r.queues {
		r.queues[i] = nil
		r.holRes[i] = 0
	}
	for i := range r.qvals {
		r.qvals[i] = nil
	}
	for i := range r.vals {
		r.vals[i] = nil
	}
}

// --- the differential harness --------------------------------------------

// diffRun replays tr through the optimized engine (with CheckInvariants
// on) and the naive reference engine, optionally wrapping both in
// identical fault injectors, and requires bit-identical Stats and
// per-port counters.
func diffRun(t *testing.T, cfg core.Config, pol core.Policy, tr traffic.Trace, spec faults.Spec, seed int64) {
	t.Helper()
	fastCfg := cfg
	fastCfg.CheckInvariants = true
	fast, err := core.New(fastCfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefSwitch(t, cfg, pol)

	var sysF, sysR sim.System = fast, ref
	if !spec.Empty() {
		if sysF, err = faults.New(fast, spec, cfg.Ports, seed); err != nil {
			t.Fatal(err)
		}
		if sysR, err = faults.New(ref, spec, cfg.Ports, seed); err != nil {
			t.Fatal(err)
		}
	}
	const flushEvery = 64
	sf, err := sim.RunTrace(sysF, tr, flushEvery)
	if err != nil {
		t.Fatalf("optimized engine: %v", err)
	}
	sr, err := sim.RunTrace(sysR, tr, flushEvery)
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	if sf != sr {
		t.Errorf("%s: stats diverged\n fast: %+v\n  ref: %+v", pol.Name(), sf, sr)
	}
	pf := fast.PortCounters()
	for i := range pf {
		if pf[i] != ref.perPort[i] {
			t.Errorf("%s: port %d counters diverged\n fast: %+v\n  ref: %+v", pol.Name(), i, pf[i], ref.perPort[i])
		}
	}
}

// diffTrace renders a deterministic overloaded MMPP trace.
func diffTrace(t *testing.T, mc traffic.MMPPConfig, slots int) traffic.Trace {
	t.Helper()
	gen, err := traffic.NewMMPP(mc)
	if err != nil {
		t.Fatal(err)
	}
	return traffic.Record(gen, slots)
}

// procSetup is the canonical heterogeneous-work differential cell: small
// shared buffer under ~2x overload so admission, push-out and transmission
// churn constantly.
func procSetup(t *testing.T, seed int64, slots int) (core.Config, traffic.Trace) {
	t.Helper()
	cfg := core.Config{
		Model:    core.ModelProcessing,
		Ports:    4,
		Buffer:   12,
		MaxLabel: 4,
		Speedup:  2,
		PortWork: core.ContiguousWorks(4),
	}
	tr := diffTrace(t, traffic.MMPPConfig{
		Sources:      40,
		LambdaOn:     0.35,
		POnOff:       0.2,
		POffOn:       0.3,
		Label:        traffic.LabelWorkByPort,
		Ports:        cfg.Ports,
		MaxLabel:     cfg.MaxLabel,
		PortWork:     cfg.PortWork,
		PortAffinity: true,
		Seed:         seed,
	}, slots)
	return cfg, tr
}

// valSetup is the value-model differential cell (uniform values).
func valSetup(t *testing.T, seed int64, slots int) (core.Config, traffic.Trace) {
	t.Helper()
	cfg := core.Config{
		Model:    core.ModelValue,
		Ports:    4,
		Buffer:   12,
		MaxLabel: 6,
		Speedup:  1,
	}
	tr := diffTrace(t, traffic.MMPPConfig{
		Sources:      40,
		LambdaOn:     0.35,
		POnOff:       0.2,
		POffOn:       0.3,
		Label:        traffic.LabelValueUniform,
		Ports:        cfg.Ports,
		MaxLabel:     cfg.MaxLabel,
		PortAffinity: true,
		Seed:         seed,
	}, slots)
	return cfg, tr
}

// TestDifferentialProcessing replays fixed-seed heterogeneous-work traces
// through the full processing-model roster on both engines.
func TestDifferentialProcessing(t *testing.T) {
	pols := append(policy.ForProcessing(), policy.Experimental()...)
	for _, seed := range []int64{1, 2, 3} {
		cfg, tr := procSetup(t, seed, 300)
		for _, p := range pols {
			p := p
			t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
				diffRun(t, cfg, p, tr, faults.Spec{}, seed)
			})
		}
	}
}

// TestDifferentialValue replays fixed-seed value-model traces through the
// value roster (including the shared length-based policies) on both
// engines, in both the uniform-value and value-by-port labelings.
func TestDifferentialValue(t *testing.T) {
	t.Run("uniform", func(t *testing.T) {
		pols := append(policy.ForValueUniform(), policy.ValueExperimental()...)
		for _, seed := range []int64{1, 2, 3} {
			cfg, tr := valSetup(t, seed, 300)
			for _, p := range pols {
				p := p
				t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
					diffRun(t, cfg, p, tr, faults.Spec{}, seed)
				})
			}
		}
	})
	t.Run("by-port", func(t *testing.T) {
		// Value determined by port (panels 7-9) adds NHSTV; needs
		// Ports == MaxLabel.
		cfg := core.Config{Model: core.ModelValue, Ports: 4, Buffer: 12, MaxLabel: 4, Speedup: 1}
		for _, seed := range []int64{1, 2} {
			tr := diffTrace(t, traffic.MMPPConfig{
				Sources:      40,
				LambdaOn:     0.35,
				POnOff:       0.2,
				POffOn:       0.3,
				Label:        traffic.LabelValueByPort,
				Ports:        cfg.Ports,
				MaxLabel:     cfg.MaxLabel,
				PortAffinity: true,
				Seed:         seed,
			}, 300)
			for _, p := range policy.ForValueByPort() {
				p := p
				t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
					diffRun(t, cfg, p, tr, faults.Spec{}, seed)
				})
			}
		}
	})
}

// denseFaults is a fault mix with short periods so a 400-slot trace sees
// many windows of every kind, including overlaps.
func denseFaults(slots int) faults.Spec {
	return faults.Spec{
		Horizon: int64(slots),
		Faults: []faults.Fault{
			{Kind: faults.CoreSlowdown, Port: -1, Value: 1, Period: 60, Duration: 25},
			{Kind: faults.PortBlackout, Port: -1, Period: 90, Duration: 15},
			{Kind: faults.BufferSqueeze, Value: 4, Period: 80, Duration: 30},
			{Kind: faults.BurstAmplify, Value: 2, Period: 70, Duration: 20},
		},
	}
}

// combSetup is the combined work×value differential cell: FIFO queues
// with heterogeneous works, packets also carrying uniform values.
func combSetup(t *testing.T, seed int64, slots int) (core.Config, traffic.Trace) {
	t.Helper()
	cfg := core.Config{
		Model:    core.ModelCombined,
		Ports:    4,
		Buffer:   12,
		MaxLabel: 6,
		Speedup:  2,
		PortWork: core.ContiguousWorks(4),
	}
	tr := diffTrace(t, traffic.MMPPConfig{
		Sources:      40,
		LambdaOn:     0.35,
		POnOff:       0.2,
		POffOn:       0.3,
		Label:        traffic.LabelWorkValue,
		Ports:        cfg.Ports,
		MaxLabel:     cfg.MaxLabel,
		PortWork:     cfg.PortWork,
		PortAffinity: true,
		Seed:         seed,
	}, slots)
	return cfg, tr
}

// TestDifferentialCombined replays fixed-seed work×value traces through
// the combined roster on both engines.
func TestDifferentialCombined(t *testing.T) {
	pols := policy.ForCombined()
	for _, seed := range []int64{1, 2, 3} {
		cfg, tr := combSetup(t, seed, 300)
		for _, p := range pols {
			p := p
			t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
				diffRun(t, cfg, p, tr, faults.Spec{}, seed)
			})
		}
	}
}

// TestDifferentialUnderFaults pins engine equivalence off the nominal
// point: both engines wrapped in identical deterministic fault schedules
// (slowdown, blackout, squeeze, burst amplification) must still agree
// bit for bit.
func TestDifferentialUnderFaults(t *testing.T) {
	const slots = 400
	spec := denseFaults(slots)

	t.Run("processing", func(t *testing.T) {
		pols := []core.Policy{policy.LQD{}, policy.LWD{}, policy.NHST{}, policy.NHDT{}, policy.Greedy{}}
		for _, seed := range []int64{11, 12} {
			cfg, tr := procSetup(t, seed, slots)
			for _, p := range pols {
				p := p
				t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
					diffRun(t, cfg, p, tr, spec, seed)
				})
			}
		}
	})
	t.Run("value", func(t *testing.T) {
		pols := []core.Policy{policy.VLQD{}, policy.MRD{}, policy.MVD{}, policy.TVD{}}
		for _, seed := range []int64{11, 12} {
			cfg, tr := valSetup(t, seed, slots)
			for _, p := range pols {
				p := p
				t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
					diffRun(t, cfg, p, tr, spec, seed)
				})
			}
		}
	})
	t.Run("combined", func(t *testing.T) {
		pols := []core.Policy{policy.LQD{}, policy.LWD{}, policy.MRD{}, policy.RVD{}}
		for _, seed := range []int64{11, 12} {
			cfg, tr := combSetup(t, seed, slots)
			for _, p := range pols {
				p := p
				t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
					diffRun(t, cfg, p, tr, spec, seed)
				})
			}
		}
	})
	t.Run("canonical-mix", func(t *testing.T) {
		// The production fault panel's exact mix, over a horizon long
		// enough to contain its windows.
		const longSlots = 1200
		cfg, tr := procSetup(t, 21, longSlots)
		mix := faults.CanonicalMix(cfg.Ports, cfg.Buffer, cfg.Speedup, int64(longSlots))
		for _, p := range []core.Policy{policy.LQD{}, policy.LWD{}} {
			p := p
			t.Run(p.Name(), func(t *testing.T) {
				diffRun(t, cfg, p, tr, mix, 21)
			})
		}
	})
}
