package sim

// Checkpoint journaling for sweeps: each completed (x, seed) cell is
// appended to a file as one JSON line, so a paper-scale multi-hour run
// that crashes or is interrupted can resume where it left off instead
// of starting over. The journal is keyed by sweep name, so one file can
// serve a whole multi-panel run.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"smbm/internal/core"
)

// cellKey identifies one sweep cell by swept value and seed index.
type cellKey struct {
	x         int
	seedIndex int
}

// checkpointResult is the serialized form of one Result. The empirical
// ratio is recomputed on load because JSON cannot encode +Inf.
type checkpointResult struct {
	Policy        string     `json:"policy"`
	Throughput    int64      `json:"throughput"`
	OptThroughput int64      `json:"opt_throughput"`
	Stats         core.Stats `json:"stats"`
}

// checkpointRecord is one journal line: a completed cell.
type checkpointRecord struct {
	Sweep     string             `json:"sweep"`
	X         int                `json:"x"`
	SeedIndex int                `json:"seed_index"`
	Results   []checkpointResult `json:"results"`
}

// loadCheckpoint reads the journal at path and returns the completed
// cells recorded for the named sweep. A missing file is an empty
// journal.
//
// Only a malformed *final* line is tolerated: that is the signature of a
// torn write from a crash mid-append (the journal is opened O_APPEND and
// each record is one line), and every intact line before it still
// counts. A malformed line with more data after it is genuine corruption
// — silently resuming past it would re-run some cells and trust the rest
// of a damaged file — so it is reported as an error naming the line.
func loadCheckpoint(path, sweep string) (map[cellKey][]Result, error) {
	done := map[cellKey][]Result{}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return done, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo, badLine := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if badLine != 0 {
			return nil, fmt.Errorf("sim: checkpoint %s: malformed record at line %d followed by more data: journal is corrupt, not torn; refusing to resume (move the file aside to start over)", path, badLine)
		}
		// The journal is shared across sweeps: probe-decode only the key
		// field first so foreign records are skipped without paying for
		// their full Results payload.
		var probe struct {
			Sweep string `json:"sweep"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			badLine = lineNo // tolerated iff this turns out to be the final line
			continue
		}
		if probe.Sweep != sweep {
			continue
		}
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			badLine = lineNo
			continue
		}
		rs := make([]Result, len(rec.Results))
		for i, cr := range rec.Results {
			rs[i] = Result{
				Policy:        cr.Policy,
				Throughput:    cr.Throughput,
				OptThroughput: cr.OptThroughput,
				Ratio:         ratio(cr.OptThroughput, cr.Throughput),
				Stats:         cr.Stats,
			}
		}
		done[cellKey{rec.X, rec.SeedIndex}] = rs
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	return done, nil
}

// appendCheckpoint journals one completed cell as a JSON line.
func appendCheckpoint(w io.Writer, sweep string, x, seedIndex int, results []Result) error {
	rec := checkpointRecord{
		Sweep:     sweep,
		X:         x,
		SeedIndex: seedIndex,
		Results:   make([]checkpointResult, len(results)),
	}
	for i, r := range results {
		rec.Results[i] = checkpointResult{
			Policy:        r.Policy,
			Throughput:    r.Throughput,
			OptThroughput: r.OptThroughput,
			Stats:         r.Stats,
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.Write(line); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	return nil
}
