package sim

// Checkpoint journaling for sweeps: each completed (x, seed) cell is
// appended to a file as one JSON line, so a paper-scale multi-hour run
// that crashes or is interrupted can resume where it left off instead
// of starting over. The journal is keyed by sweep name, so one file can
// serve a whole multi-panel run.
//
// Every journal opens with a fingerprint header line per sweep — the
// sweep's identity (XLabel, an FNV-1a digest of the Xs, Seeds,
// BaseSeed) plus the Build-supplied cell-config digest (B, C, speedup,
// policy roster, fault spec). Resuming under a header that does not
// match the current sweep fails loudly, naming the differing field:
// silently merging cells journaled under different flags into fresh
// results was the bug this header exists to prevent. Legacy journals
// without a header still resume, with a warning, and are upgraded in
// place.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"smbm/internal/core"
	"smbm/internal/obs"
)

// cellKey identifies one sweep cell by swept value and seed index.
type cellKey struct {
	x         int
	seedIndex int
}

// checkpointHeaderV is the fingerprint-header schema version this build
// writes and understands.
const checkpointHeaderV = 1

// checkpointHeader is the journal's per-sweep fingerprint line. The
// header_v field doubles as the record discriminator: cell records
// never carry it, so the probe decode tells the two apart without
// paying for full payloads.
type checkpointHeader struct {
	// Sweep keys the header to its sweep (journals are shared).
	Sweep string `json:"sweep"`
	// HeaderV is the schema version (checkpointHeaderV).
	HeaderV int `json:"header_v"`
	// XLabel echoes Sweep.XLabel.
	XLabel string `json:"x_label"`
	// XsHash is the FNV-1a digest of the swept values (count + values).
	XsHash string `json:"xs_hash"`
	// Seeds echoes Sweep.Seeds.
	Seeds int `json:"seeds"`
	// BaseSeed echoes Sweep.BaseSeed.
	BaseSeed int64 `json:"base_seed"`
	// Config is the Build-supplied cell-config digest
	// (Sweep.ConfigDigest): everything baked into the cells that the
	// sweep struct itself cannot see — B, C, speedup, policy roster,
	// fault spec.
	Config string `json:"config,omitempty"`
}

// header renders the sweep's expected fingerprint.
func (s *Sweep) header() checkpointHeader {
	return checkpointHeader{
		Sweep:    s.Name,
		HeaderV:  checkpointHeaderV,
		XLabel:   s.XLabel,
		XsHash:   xsDigest(s.Xs),
		Seeds:    s.Seeds,
		BaseSeed: s.BaseSeed,
		Config:   s.ConfigDigest,
	}
}

// xsDigest hashes the swept values (count, then each value) with
// FNV-1a, rendering a compact hex fingerprint.
func xsDigest(xs []int) string {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(xs)))
	h.Write(b[:])
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], uint64(x))
		h.Write(b[:])
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// diff compares the expected header h against a journaled one and
// returns an error naming the first differing field, or nil when the
// journal matches the current sweep.
func (h checkpointHeader) diff(got checkpointHeader) error {
	if got.HeaderV != h.HeaderV {
		return fmt.Errorf("header version: journal v%d, this build writes v%d", got.HeaderV, h.HeaderV)
	}
	for _, f := range []struct{ name, journal, sweep string }{
		{"x_label", got.XLabel, h.XLabel},
		{"xs", got.XsHash, h.XsHash},
		{"seeds", strconv.Itoa(got.Seeds), strconv.Itoa(h.Seeds)},
		{"base_seed", strconv.FormatInt(got.BaseSeed, 10), strconv.FormatInt(h.BaseSeed, 10)},
		{"config", got.Config, h.Config},
	} {
		if f.journal != f.sweep {
			return fmt.Errorf("%s: journal has %q, sweep has %q", f.name, f.journal, f.sweep)
		}
	}
	return nil
}

// checkpointResult is the serialized form of one Result. The empirical
// ratio is recomputed on load because JSON cannot encode +Inf.
type checkpointResult struct {
	Policy        string        `json:"policy"`
	Throughput    int64         `json:"throughput"`
	OptThroughput int64         `json:"opt_throughput"`
	Stats         core.Stats    `json:"stats"`
	Obs           *obs.Snapshot `json:"obs,omitempty"`
}

// checkpointRecord is one journal line: a completed cell.
type checkpointRecord struct {
	Sweep     string             `json:"sweep"`
	X         int                `json:"x"`
	SeedIndex int                `json:"seed_index"`
	Results   []checkpointResult `json:"results"`
}

// ckptJournal is what loadCheckpoint recovered from one journal file
// for one sweep.
type ckptJournal struct {
	// done maps completed cells to their results.
	done map[cellKey][]Result
	// hasHeader reports that a matching fingerprint header was found
	// for the sweep; journals without one are legacy and resumed on
	// trust.
	hasHeader bool
	// torn reports that a partial final line (a crash torn write) was
	// dropped; validSize is then the byte length of the intact prefix,
	// which the caller truncates to before appending.
	torn      bool
	validSize int64
}

// loadCheckpoint reads the journal at path and returns the completed
// cells recorded for the sweep expect describes, verifying any
// fingerprint header for that sweep against expect field by field. A
// missing file is an empty journal.
//
// Only a malformed *final* line is tolerated: that is the signature of a
// torn write from a crash mid-append (the journal is opened O_APPEND and
// each record is one line), and every intact line before it still
// counts. A malformed line with more data after it is genuine corruption
// — silently resuming past it would re-run some cells and trust the rest
// of a damaged file — so it is reported as an error naming the line.
func loadCheckpoint(path string, expect checkpointHeader) (ckptJournal, error) {
	j := ckptJournal{done: map[cellKey][]Result{}}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return j, nil
	}
	if err != nil {
		return j, fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo, badLine := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			if badLine == 0 {
				j.validSize++
			}
			continue
		}
		if badLine != 0 {
			return j, fmt.Errorf("sim: checkpoint %s: malformed record at line %d followed by more data: journal is corrupt, not torn; refusing to resume (move the file aside to start over)", path, badLine)
		}
		// The journal is shared across sweeps: probe-decode only the
		// discriminating fields first, so foreign records are skipped
		// without paying for their full Results payload.
		var probe struct {
			Sweep   string `json:"sweep"`
			HeaderV int    `json:"header_v"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			badLine = lineNo // tolerated iff this turns out to be the final line
			continue
		}
		if probe.Sweep != expect.Sweep {
			j.validSize += int64(len(line)) + 1
			continue
		}
		if probe.HeaderV != 0 {
			var got checkpointHeader
			if err := json.Unmarshal(line, &got); err != nil {
				badLine = lineNo
				continue
			}
			if err := expect.diff(got); err != nil {
				return j, fmt.Errorf("sim: checkpoint %s: sweep %q configuration changed since the journal was written — %w; finish with the original flags or move the file aside to start over", path, expect.Sweep, err)
			}
			j.hasHeader = true
			j.validSize += int64(len(line)) + 1
			continue
		}
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			badLine = lineNo
			continue
		}
		rs := make([]Result, len(rec.Results))
		for i, cr := range rec.Results {
			rs[i] = Result{
				Policy:        cr.Policy,
				Throughput:    cr.Throughput,
				OptThroughput: cr.OptThroughput,
				Ratio:         ratio(cr.OptThroughput, cr.Throughput),
				Stats:         cr.Stats,
				Obs:           cr.Obs,
			}
		}
		j.done[cellKey{rec.X, rec.SeedIndex}] = rs
		j.validSize += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return j, fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	j.torn = badLine != 0
	return j, nil
}

// toCheckpointResults converts in-memory results to their serialized
// form (shared by the checkpoint journal and the lease ledger).
func toCheckpointResults(results []Result) []checkpointResult {
	out := make([]checkpointResult, len(results))
	for i, r := range results {
		out[i] = checkpointResult{
			Policy:        r.Policy,
			Throughput:    r.Throughput,
			OptThroughput: r.OptThroughput,
			Stats:         r.Stats,
			Obs:           r.Obs,
		}
	}
	return out
}

// fromCheckpointResults rehydrates serialized results, recomputing the
// empirical ratio (JSON cannot encode +Inf).
func fromCheckpointResults(crs []checkpointResult) []Result {
	out := make([]Result, len(crs))
	for i, cr := range crs {
		out[i] = Result{
			Policy:        cr.Policy,
			Throughput:    cr.Throughput,
			OptThroughput: cr.OptThroughput,
			Ratio:         ratio(cr.OptThroughput, cr.Throughput),
			Stats:         cr.Stats,
			Obs:           cr.Obs,
		}
	}
	return out
}

// encodeCellResults serializes one cell's per-policy results as the
// opaque payload carried by lease-ledger complete records.
func encodeCellResults(results []Result) (json.RawMessage, error) {
	raw, err := json.Marshal(toCheckpointResults(results))
	if err != nil {
		return nil, fmt.Errorf("sim: cell results: %w", err)
	}
	return raw, nil
}

// decodeCellResults rehydrates a lease-ledger complete payload.
func decodeCellResults(raw json.RawMessage) ([]Result, error) {
	var crs []checkpointResult
	if err := json.Unmarshal(raw, &crs); err != nil {
		return nil, fmt.Errorf("sim: cell results: %w", err)
	}
	return fromCheckpointResults(crs), nil
}

// appendHeader journals the sweep's fingerprint header as a JSON line.
func appendHeader(w io.Writer, h checkpointHeader) error {
	return appendLine(w, h)
}

// appendCheckpoint journals one completed cell as a JSON line.
func appendCheckpoint(w io.Writer, sweep string, x, seedIndex int, results []Result) error {
	return appendLine(w, checkpointRecord{
		Sweep:     sweep,
		X:         x,
		SeedIndex: seedIndex,
		Results:   toCheckpointResults(results),
	})
}

// appendLine marshals v and writes it as one newline-terminated record.
// A failed write reports the exact partial-write position: a worker
// losing its disk mid-record can then say precisely how much of the
// record made it into the journal, and the torn-tail recovery on the
// next resume drops exactly that fragment.
func appendLine(w io.Writer, v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	line = append(line, '\n')
	if n, err := w.Write(line); err != nil {
		return fmt.Errorf("sim: checkpoint: wrote %d of %d bytes of record: %w", n, len(line), err)
	}
	return nil
}

// upgradeCheckpoint rewrites a legacy (headerless) journal with h
// prepended, atomically: the new content is written to a temp file in
// the same directory, fsynced, and renamed over the original. A crash
// at any point leaves either the old journal or the upgraded one —
// never the half-written hybrid an in-place rewrite could produce.
func upgradeCheckpoint(path string, h checkpointHeader) error {
	orig, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("sim: checkpoint %s: upgrading legacy journal: %w", path, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".upgrade-*")
	if err != nil {
		return fmt.Errorf("sim: checkpoint %s: upgrading legacy journal: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	fail := func(e error) error {
		tmp.Close()
		return fmt.Errorf("sim: checkpoint %s: upgrading legacy journal: %w", path, e)
	}
	if err := appendHeader(tmp, h); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(orig); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fail(err)
	}
	return nil
}
