// Package sim is the experiment harness: it drives switch systems over
// traces with periodic flushouts, compares policies against the OPT
// proxy, and runs seeded parameter sweeps on a bounded worker pool to
// regenerate the paper's evaluation series.
package sim

import (
	"context"
	"fmt"
	"math"

	"smbm/internal/core"
	"smbm/internal/opt"
	"smbm/internal/pkt"
	"smbm/internal/traffic"
)

// System is anything that can simulate a slotted run: a core.Switch
// driven by a policy, or one of the OPT proxies.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Step runs one slot: the given arrivals, then one transmission
	// phase.
	Step(arrivals []pkt.Packet) error
	// Drain transmits without arrivals until empty and returns the
	// number of slots consumed.
	Drain() int
	// Stats snapshots the accumulated counters.
	Stats() core.Stats
	// Reset restores the initial empty state.
	Reset()
}

// BoundedDrainer is optionally implemented by Systems whose drain can
// be capped: DrainMax transmits without arrivals for at most max slots
// and reports whether the buffer actually emptied. RunTrace uses it to
// turn a System that never drains (a simulation bug, or a blackout
// fault left active) into an error instead of an infinite loop.
type BoundedDrainer interface {
	// DrainMax drains for at most max slots, returning the slots used
	// and whether the system emptied.
	DrainMax(max int) (int, bool)
}

var (
	_ System = (*core.Switch)(nil)
	_ System = (*opt.SPQProc)(nil)
	_ System = (*opt.SPQVal)(nil)

	_ BoundedDrainer = (*core.Switch)(nil)
	_ BoundedDrainer = (*opt.SPQProc)(nil)
	_ BoundedDrainer = (*opt.SPQVal)(nil)
)

// DefaultDrainMax is the per-drain slot cap applied when RunOptions
// leaves DrainMax zero. Any correct System empties in at most
// B·MaxLabel slots, orders of magnitude below this cap, so hitting it
// indicates a misbehaving System rather than a slow one.
const DefaultDrainMax = 1 << 20

// RunOptions tunes RunTraceContext beyond the trace itself.
type RunOptions struct {
	// FlushEvery drains the buffer every so many slots (0 = only the
	// final drain).
	FlushEvery int
	// DrainMax caps the slots any single drain may consume: 0 applies
	// DefaultDrainMax, a negative value disables the bound entirely
	// (only safe for Systems known to terminate).
	DrainMax int
	// CheckEvery is the slot interval between context-cancellation
	// checks (0 = every 64 slots).
	CheckEvery int
}

// RunTrace drives sys over the trace, draining the buffer every
// flushEvery slots (0 disables periodic flushouts) and once more at the
// end, so buffered inventory never biases throughput comparisons.
// Drains are bounded by DefaultDrainMax; see RunTraceContext for
// cancellation and custom bounds.
func RunTrace(sys System, tr traffic.Trace, flushEvery int) (core.Stats, error) {
	return RunTraceContext(context.Background(), sys, tr, RunOptions{FlushEvery: flushEvery})
}

// RunTraceContext is RunTrace with cancellation and configurable
// drain bounds: it aborts between slots once ctx is done (returning
// ctx.Err wrapped with the system and slot), and errors out if any
// drain exceeds the (defaulted) DrainMax cap instead of looping
// forever on a System that never empties.
func RunTraceContext(ctx context.Context, sys System, tr traffic.Trace, o RunOptions) (core.Stats, error) {
	checkEvery := o.CheckEvery
	if checkEvery <= 0 {
		checkEvery = 64
	}
	for t, burst := range tr {
		if t%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return core.Stats{}, fmt.Errorf("sim: %s at slot %d: %w", sys.Name(), t, err)
			}
		}
		if err := sys.Step(burst); err != nil {
			return core.Stats{}, fmt.Errorf("sim: %s at slot %d: %w", sys.Name(), t, err)
		}
		if o.FlushEvery > 0 && (t+1)%o.FlushEvery == 0 {
			if err := drain(sys, o.DrainMax); err != nil {
				return core.Stats{}, fmt.Errorf("sim: %s at slot %d: %w", sys.Name(), t, err)
			}
		}
	}
	if err := drain(sys, o.DrainMax); err != nil {
		return core.Stats{}, fmt.Errorf("sim: %s: %w", sys.Name(), err)
	}
	return sys.Stats(), nil
}

// drain empties sys, bounding the drain via BoundedDrainer when the
// system supports it (max 0 = DefaultDrainMax, negative = unbounded).
func drain(sys System, max int) error {
	if max < 0 {
		sys.Drain()
		return nil
	}
	if max == 0 {
		max = DefaultDrainMax
	}
	bd, ok := sys.(BoundedDrainer)
	if !ok {
		// No bounded drain available; fall back to the plain drain and
		// trust the System's own termination argument.
		sys.Drain()
		return nil
	}
	slots, drained := bd.DrainMax(max)
	if !drained {
		return fmt.Errorf("drain did not empty the buffer within %d slots (misbehaving System?)", slots)
	}
	return nil
}

// NewOptProxy builds the paper's OPT proxy matching the configuration's
// model: a single priority queue with Ports·Speedup cores.
func NewOptProxy(cfg core.Config) (System, error) {
	if cfg.Model == core.ModelValue {
		return opt.NewSPQVal(cfg)
	}
	return opt.NewSPQProc(cfg)
}

// Instance is one simulation cell: a switch configuration, the competing
// policies, and a trace they all see.
type Instance struct {
	// Cfg is the shared switch configuration.
	Cfg core.Config
	// Policies compete on the trace.
	Policies []core.Policy
	// Trace is the arrival sequence all systems replay.
	Trace traffic.Trace
	// FlushEvery drains all systems every so many slots (0 = only at
	// the end).
	FlushEvery int
	// DrainMax caps the slots any single drain may consume (0 =
	// DefaultDrainMax, negative = unbounded).
	DrainMax int
	// Wrap, when non-nil, wraps every system — the OPT proxy and each
	// policy switch — before it runs, e.g. with a fault injector
	// (internal/faults). The wrapper must be deterministic so every
	// system sees the same degradations.
	Wrap func(System) (System, error)
}

// Result reports one policy's performance on an instance.
type Result struct {
	// Policy is the policy name.
	Policy string
	// Throughput is the model objective achieved by the policy.
	Throughput int64
	// OptThroughput is the OPT proxy's objective on the same trace.
	OptThroughput int64
	// Ratio is OptThroughput/Throughput, the empirical competitive
	// ratio (+Inf when the policy transmitted nothing but OPT did).
	Ratio float64
	// Stats carries the policy run's full counters.
	Stats core.Stats
}

// Run executes the instance: the OPT proxy once, then every policy on
// the same trace.
func (inst Instance) Run() ([]Result, error) {
	return inst.RunContext(context.Background())
}

// RunContext is Run with cancellation: the run aborts between slots
// once ctx is done, returning an error wrapping ctx.Err.
func (inst Instance) RunContext(ctx context.Context) ([]Result, error) {
	var sc Scratch
	return inst.RunScratch(ctx, &sc)
}

// Scratch caches the systems an instance run builds — the OPT proxy and
// one switch reused across the competing policies — keyed by the switch
// configuration. A sweep worker that replays many (x, seed) cells with
// the same Config (the common case: only the trace seed varies) then
// reuses warmed buffers instead of reallocating every queue for every
// cell. Systems are Reset before reuse, so results are identical to
// building fresh ones; a configuration change simply rebuilds. Not safe
// for concurrent use: keep one Scratch per goroutine.
type Scratch struct {
	key string
	opt System
	sw  *core.Switch
}

// fingerprint renders cfg into a cache key (Config carries a slice, so
// it is not comparable directly).
func fingerprint(cfg core.Config) string {
	return fmt.Sprintf("%v|%d|%d|%d|%d|%v|%t",
		cfg.Model, cfg.Ports, cfg.Buffer, cfg.MaxLabel, cfg.Speedup, cfg.PortWork, cfg.CheckInvariants)
}

// RunScratch is RunContext reusing systems cached in sc across calls
// that share a configuration. A fresh Scratch reproduces RunContext
// exactly (RunContext is implemented on top of it).
func (inst Instance) RunScratch(ctx context.Context, sc *Scratch) ([]Result, error) {
	opts := RunOptions{FlushEvery: inst.FlushEvery, DrainMax: inst.DrainMax}
	if key := fingerprint(inst.Cfg); sc.key != key {
		sc.key, sc.opt, sc.sw = key, nil, nil
	}
	if sc.opt == nil {
		optSys, err := NewOptProxy(inst.Cfg)
		if err != nil {
			return nil, err
		}
		sc.opt = optSys
	} else {
		// Reset at acquire time, not release time: a panic or error in a
		// previous cell may have left the system mid-run.
		sc.opt.Reset()
	}
	wrapped, err := inst.wrap(sc.opt)
	if err != nil {
		return nil, err
	}
	optStats, err := RunTraceContext(ctx, wrapped, inst.Trace, opts)
	if err != nil {
		return nil, err
	}
	optThroughput := optStats.Throughput(inst.Cfg.Model)

	results := make([]Result, 0, len(inst.Policies))
	for _, p := range inst.Policies {
		if sc.sw == nil {
			sw, err := core.New(inst.Cfg, p)
			if err != nil {
				return nil, err
			}
			sc.sw = sw
		} else {
			sc.sw.Reset()
			if err := sc.sw.SetPolicy(p); err != nil {
				return nil, err
			}
		}
		sys, err := inst.wrap(sc.sw)
		if err != nil {
			return nil, err
		}
		stats, err := RunTraceContext(ctx, sys, inst.Trace, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, Result{
			Policy:        p.Name(),
			Throughput:    stats.Throughput(inst.Cfg.Model),
			OptThroughput: optThroughput,
			Ratio:         ratio(optThroughput, stats.Throughput(inst.Cfg.Model)),
			Stats:         stats,
		})
	}
	return results, nil
}

// wrap applies the instance's Wrap hook when set.
func (inst Instance) wrap(sys System) (System, error) {
	if inst.Wrap == nil {
		return sys, nil
	}
	wrapped, err := inst.Wrap(sys)
	if err != nil {
		return nil, fmt.Errorf("sim: wrapping %s: %w", sys.Name(), err)
	}
	return wrapped, nil
}

// ratio returns o/a with the conventions of competitive analysis: 1 when
// both are zero (the policy kept pace), +Inf when only the policy is
// zero.
func ratio(o, a int64) float64 {
	switch {
	case a > 0:
		return float64(o) / float64(a)
	case o == 0:
		return 1
	default:
		return math.Inf(1)
	}
}
