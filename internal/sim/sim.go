// Package sim is the experiment harness: it drives switch systems over
// arrival streams with periodic flushouts, compares policies against
// the OPT proxy, and runs seeded parameter sweeps on a bounded worker
// pool to regenerate the paper's evaluation series.
//
// Arrivals flow through traffic.Provider: every replay opens its own
// cursor over a re-derivable source (a seeded generator spec, a trace
// file, or a materialized trace), so per-replay arrival memory is
// independent of the trace length for generator- and file-backed
// providers — the property that makes the paper's 2·10⁶-slot runs fit
// on ordinary machines. Within one instance run the stream is
// additionally memoized under a byte budget (Instance.MemoBytes), so
// the OPT proxy and the policy replays share one generation pass when
// the trace fits; over-budget traces keep streaming.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"smbm/internal/core"
	"smbm/internal/obs"
	"smbm/internal/opt"
	"smbm/internal/pkt"
	"smbm/internal/traffic"
)

// System is anything that can simulate a slotted run: a core.Switch
// driven by a policy, or one of the OPT proxies.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Step runs one slot: the given arrivals, then one transmission
	// phase.
	Step(arrivals []pkt.Packet) error
	// Drain transmits without arrivals until empty and returns the
	// number of slots consumed.
	Drain() int
	// Stats snapshots the accumulated counters.
	Stats() core.Stats
	// Reset restores the initial empty state.
	Reset()
}

// BoundedDrainer is optionally implemented by Systems whose drain can
// be capped: DrainMax transmits without arrivals for at most max slots
// and reports whether the buffer actually emptied. RunTrace uses it to
// turn a System that never drains (a simulation bug, or a blackout
// fault left active) into an error instead of an infinite loop.
type BoundedDrainer interface {
	// DrainMax drains for at most max slots, returning the slots used
	// and whether the system emptied.
	DrainMax(max int) (int, bool)
}

var (
	_ System = (*core.Switch)(nil)
	_ System = (*opt.SPQProc)(nil)
	_ System = (*opt.SPQVal)(nil)

	_ BoundedDrainer = (*core.Switch)(nil)
	_ BoundedDrainer = (*opt.SPQProc)(nil)
	_ BoundedDrainer = (*opt.SPQVal)(nil)
)

// DefaultDrainMax is the absolute per-drain slot ceiling, applied when
// neither the caller nor a configuration-derived bound (DrainBound)
// tightens it. Any correct System empties in at most B·MaxLabel slots,
// orders of magnitude below this cap, so hitting it indicates a
// misbehaving System rather than a slow one.
const DefaultDrainMax = 1 << 20

// drainSlack pads the configuration-derived drain bound so boundary
// effects (a head-of-line packet mid-service at the drain's start,
// fault overrides cleared one slot late) can never trip the bound on a
// correct System.
const drainSlack = 64

// DrainBound returns the drain-slot budget implied by cfg: a full
// buffer of B packets, each needing at most MaxLabel work, empties in
// at most B·MaxLabel slots even on a single unit-speed core, so the
// bound is B·MaxLabel plus slack — far tighter than DefaultDrainMax
// for realistic configurations, which turns a wedged System into a
// prompt error instead of a 2²⁰-slot spin. DefaultDrainMax remains the
// absolute ceiling for degenerate configurations (zero or huge
// products).
func DrainBound(cfg core.Config) int {
	b := cfg.Buffer * cfg.MaxLabel
	if cfg.Buffer > 0 && cfg.MaxLabel > 0 && b/cfg.Buffer != cfg.MaxLabel {
		return DefaultDrainMax // product overflowed
	}
	if b <= 0 || b > DefaultDrainMax-drainSlack {
		return DefaultDrainMax
	}
	return b + drainSlack
}

// RunOptions tunes RunTraceContext beyond the arrival stream itself.
type RunOptions struct {
	// FlushEvery drains the buffer every so many slots (0 = only the
	// final drain).
	FlushEvery int
	// DrainMax caps the slots any single drain may consume: 0 applies
	// DefaultDrainMax, a negative value disables the bound entirely
	// (only safe for Systems known to terminate). Instance runs derive
	// a tighter default from the configuration via DrainBound.
	DrainMax int
	// CheckEvery is the slot interval between context-cancellation and
	// cursor-failure checks (0 = every 64 slots).
	CheckEvery int
}

// RunTrace drives sys over the arrival stream, draining the buffer
// every flushEvery slots (0 disables periodic flushouts) and once more
// at the end, so buffered inventory never biases throughput
// comparisons. A materialized traffic.Trace is itself a Provider, so
// existing call sites pass traces unchanged. Drains are bounded by
// DefaultDrainMax; see RunTraceContext for cancellation and custom
// bounds.
func RunTrace(sys System, src traffic.Provider, flushEvery int) (core.Stats, error) {
	return RunTraceContext(context.Background(), sys, src, RunOptions{FlushEvery: flushEvery})
}

// RunTraceContext is RunTrace with cancellation and configurable drain
// bounds: it opens one cursor over src and pulls slots from it, aborts
// between slots once ctx is done (returning ctx.Err wrapped with the
// system and slot), propagates cursor stream failures, and errors out
// if any drain exceeds the (defaulted) DrainMax cap instead of looping
// forever on a System that never empties.
func RunTraceContext(ctx context.Context, sys System, src traffic.Provider, o RunOptions) (core.Stats, error) {
	checkEvery := o.CheckEvery
	if checkEvery <= 0 {
		checkEvery = 64
	}
	cur, err := src.Open()
	if err != nil {
		return core.Stats{}, fmt.Errorf("sim: %s: opening arrivals: %w", sys.Name(), err)
	}
	defer cur.Close()
	slots := src.Slots()
	for t := 0; t < slots; t++ {
		if t%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return core.Stats{}, fmt.Errorf("sim: %s at slot %d: %w", sys.Name(), t, err)
			}
			if err := cur.Err(); err != nil {
				return core.Stats{}, fmt.Errorf("sim: %s at slot %d: arrivals: %w", sys.Name(), t, err)
			}
		}
		if err := sys.Step(cur.Next()); err != nil {
			return core.Stats{}, fmt.Errorf("sim: %s at slot %d: %w", sys.Name(), t, err)
		}
		if o.FlushEvery > 0 && (t+1)%o.FlushEvery == 0 {
			if err := drain(sys, o.DrainMax); err != nil {
				return core.Stats{}, fmt.Errorf("sim: %s at slot %d: %w", sys.Name(), t, err)
			}
		}
	}
	if err := cur.Err(); err != nil {
		return core.Stats{}, fmt.Errorf("sim: %s: arrivals: %w", sys.Name(), err)
	}
	if err := drain(sys, o.DrainMax); err != nil {
		return core.Stats{}, fmt.Errorf("sim: %s: %w", sys.Name(), err)
	}
	return sys.Stats(), nil
}

// drain empties sys, bounding the drain via BoundedDrainer when the
// system supports it (max 0 = DefaultDrainMax, negative = unbounded).
func drain(sys System, max int) error {
	if max < 0 {
		sys.Drain()
		return nil
	}
	if max == 0 {
		max = DefaultDrainMax
	}
	bd, ok := sys.(BoundedDrainer)
	if !ok {
		// No bounded drain available; fall back to the plain drain and
		// trust the System's own termination argument.
		sys.Drain()
		return nil
	}
	slots, drained := bd.DrainMax(max)
	if !drained {
		return fmt.Errorf("drain did not empty the buffer within %d slots (misbehaving System?)", slots)
	}
	return nil
}

// NewOptProxy builds the paper's OPT proxy matching the configuration's
// model: a single priority queue with Ports·Speedup cores.
func NewOptProxy(cfg core.Config) (System, error) {
	switch cfg.Model {
	case core.ModelValue:
		return opt.NewSPQVal(cfg)
	case core.ModelCombined:
		return opt.NewSPQComb(cfg)
	default:
		return opt.NewSPQProc(cfg)
	}
}

// Instance is one simulation cell: a switch configuration, the competing
// policies, and the arrival stream they all replay.
type Instance struct {
	// Cfg is the shared switch configuration.
	Cfg core.Config
	// Policies compete on the arrival stream.
	Policies []core.Policy
	// Provider supplies the arrivals. Every replay — the OPT proxy and
	// each policy — opens its own cursor, so runs are bit-identical
	// and share no mutable state; a seeded generator spec
	// (traffic.MMPPProvider) or trace file (traffic.FileProvider)
	// keeps per-replay memory independent of the slot count. A
	// materialized traffic.Trace is itself a Provider.
	Provider traffic.Provider
	// FlushEvery drains all systems every so many slots (0 = only at
	// the end).
	FlushEvery int
	// DrainMax caps the slots any single drain may consume (0 = the
	// configuration-derived DrainBound, negative = unbounded).
	DrainMax int
	// Parallelism fans the OPT proxy and the per-policy replays out
	// over a bounded worker pool (0 or 1 = sequential). Because every
	// replay opens its own cursor, results are bit-identical to the
	// sequential order either way.
	Parallelism int
	// Wrap, when non-nil, wraps every system — the OPT proxy and each
	// policy switch — before it runs, e.g. with a fault injector
	// (internal/faults). The wrapper must be deterministic so every
	// system sees the same degradations.
	Wrap func(System) (System, error)
	// Obs, when non-nil, attaches a fresh obs.Recorder to every policy
	// replay (recorders attach through obs.Target, so fault-injector
	// wrappers are instrumented too) and snapshots it into Result.Obs.
	// Obs.TraceEvents > 0 additionally rings the last that many decision
	// events per replay. The OPT proxies are not instrumented. A nil Obs
	// keeps the engine in its zero-overhead detached state.
	Obs *obs.Options
	// MemoBytes bounds the in-memory arrival cache one run may build to
	// amortize stream generation across its replays (traffic.Memoize):
	// the first replay records the stream and later replays play it
	// back, which removes the dominant per-replay cost of generator
	// regeneration in multi-policy cells while staying bit-identical.
	// 0 applies DefaultMemoBytes; negative disables caching so every
	// replay regenerates (the bounded-memory streaming behavior, which
	// also remains the fallback for any stream over budget).
	MemoBytes int
}

// DefaultMemoBytes is the per-run arrival-cache budget applied when
// Instance.MemoBytes is zero: generous enough to cover every Fig. 5
// panel cell at report scale, small enough that paper-scale traces
// (2·10⁶ slots) fall back to streaming regeneration.
const DefaultMemoBytes = 32 << 20

// provider returns the arrival stream for one run, memoized per the
// instance's MemoBytes budget. Called once per run so the cache spans
// exactly that run's replays (the OPT proxy plus every policy), never
// leaking memory across cells.
func (inst Instance) provider() traffic.Provider {
	budget := inst.MemoBytes
	if budget == 0 {
		budget = DefaultMemoBytes
	}
	return traffic.Memoize(inst.Provider, budget)
}

// Result reports one policy's performance on an instance.
type Result struct {
	// Policy is the policy name.
	Policy string
	// Throughput is the model objective achieved by the policy.
	Throughput int64
	// OptThroughput is the OPT proxy's objective on the same trace.
	OptThroughput int64
	// Ratio is OptThroughput/Throughput, the empirical competitive
	// ratio (+Inf when the policy transmitted nothing but OPT did).
	Ratio float64
	// Stats carries the policy run's full counters.
	Stats core.Stats
	// Obs carries the replay's decision counters (and traced events when
	// tracing was enabled); nil unless Instance.Obs was set.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// Run executes the instance: the OPT proxy once, then every policy on
// the same arrival stream.
func (inst Instance) Run() ([]Result, error) {
	return inst.RunContext(context.Background())
}

// RunContext is Run with cancellation: the run aborts between slots
// once ctx is done, returning an error wrapping ctx.Err.
func (inst Instance) RunContext(ctx context.Context) ([]Result, error) {
	var sc Scratch
	return inst.RunScratch(ctx, &sc)
}

// Scratch caches the systems an instance run builds — the OPT proxy and
// one switch reused across the competing policies — keyed by the switch
// configuration. A sweep worker that replays many (x, seed) cells with
// the same Config (the common case: only the trace seed varies) then
// reuses warmed buffers instead of reallocating every queue for every
// cell. Systems are Reset before reuse, so results are identical to
// building fresh ones; a configuration change simply rebuilds. Not safe
// for concurrent use: keep one Scratch per goroutine (parallel instance
// runs build their own per-replay systems and bypass it).
type Scratch struct {
	key string
	opt System
	sw  *core.Switch
}

// fingerprint renders cfg into a cache key (Config carries a slice, so
// it is not comparable directly).
func fingerprint(cfg core.Config) string {
	return fmt.Sprintf("%v|%d|%d|%d|%d|%v|%t",
		cfg.Model, cfg.Ports, cfg.Buffer, cfg.MaxLabel, cfg.Speedup, cfg.PortWork, cfg.CheckInvariants)
}

// runOptions resolves the per-replay RunOptions for the instance,
// deriving the drain bound from the configuration when unset.
func (inst Instance) runOptions() RunOptions {
	opts := RunOptions{FlushEvery: inst.FlushEvery, DrainMax: inst.DrainMax}
	if opts.DrainMax == 0 {
		opts.DrainMax = DrainBound(inst.Cfg)
	}
	return opts
}

// RunScratch is RunContext reusing systems cached in sc across calls
// that share a configuration. A fresh Scratch reproduces RunContext
// exactly (RunContext is implemented on top of it). With Parallelism
// above one the replays fan out over their own freshly built systems
// instead, leaving sc untouched.
func (inst Instance) RunScratch(ctx context.Context, sc *Scratch) ([]Result, error) {
	if inst.Parallelism > 1 {
		return inst.runParallel(ctx)
	}
	opts := inst.runOptions()
	src := inst.provider()
	if key := fingerprint(inst.Cfg); sc.key != key {
		sc.key, sc.opt, sc.sw = key, nil, nil
	}
	if sc.opt == nil {
		optSys, err := NewOptProxy(inst.Cfg)
		if err != nil {
			return nil, err
		}
		sc.opt = optSys
	} else {
		// Reset at acquire time, not release time: a panic or error in a
		// previous cell may have left the system mid-run.
		sc.opt.Reset()
	}
	wrapped, err := inst.wrap(sc.opt)
	if err != nil {
		return nil, err
	}
	optStats, err := RunTraceContext(ctx, wrapped, src, opts)
	if err != nil {
		return nil, err
	}
	optThroughput := optStats.Throughput(inst.Cfg.Model)

	results := make([]Result, 0, len(inst.Policies))
	for _, p := range inst.Policies {
		if sc.sw == nil {
			sw, err := core.New(inst.Cfg, p)
			if err != nil {
				return nil, err
			}
			sc.sw = sw
		} else {
			sc.sw.Reset()
			if err := sc.sw.SetPolicy(p); err != nil {
				return nil, err
			}
		}
		sys, err := inst.wrap(sc.sw)
		if err != nil {
			return nil, err
		}
		rec := inst.newRecorder()
		attached := attachRecorder(sys, rec)
		stats, err := RunTraceContext(ctx, sys, src, opts)
		if attached {
			// Detach before reuse or error return: the cached switch must
			// not carry a recorder into the next cell.
			sys.(obs.Target).SetRecorder(nil)
		}
		if err != nil {
			return nil, err
		}
		throughput := stats.Throughput(inst.Cfg.Model)
		res := Result{
			Policy:        p.Name(),
			Throughput:    throughput,
			OptThroughput: optThroughput,
			Ratio:         ratio(optThroughput, throughput),
			Stats:         stats,
		}
		if attached {
			res.Obs = rec.Snapshot()
		}
		results = append(results, res)
	}
	return results, nil
}

// newRecorder builds the per-replay recorder implied by inst.Obs, or
// nil when observability is disabled.
func (inst Instance) newRecorder() *obs.Recorder {
	if inst.Obs == nil {
		return nil
	}
	return obs.NewRecorder(inst.Cfg.Ports, inst.Obs.TraceEvents)
}

// attachRecorder attaches rec to sys when both sides are capable,
// reporting whether an attachment happened so the caller can detach
// and snapshot.
func attachRecorder(sys System, rec *obs.Recorder) bool {
	if rec == nil {
		return false
	}
	t, ok := sys.(obs.Target)
	if !ok {
		return false
	}
	t.SetRecorder(rec)
	return true
}

// runParallel fans the OPT proxy and the per-policy replays out over a
// bounded worker pool. Every replay builds its own system and opens
// its own cursor over the Provider, so nothing mutable is shared and
// the results are bit-identical to the sequential path; the fan-out is
// how a paper-scale cell (long trace, full roster) uses the sweep's
// worker budget when there are fewer cells than workers.
func (inst Instance) runParallel(ctx context.Context) ([]Result, error) {
	opts := inst.runOptions()
	src := inst.provider()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Replay 0 is the OPT proxy; replay 1+i is policy i.
	n := len(inst.Policies) + 1
	stats := make([]core.Stats, n)
	snaps := make([]*obs.Snapshot, n)
	errs := make([]error, n)
	build := func(i int) (System, error) {
		if i == 0 {
			return NewOptProxy(inst.Cfg)
		}
		return core.New(inst.Cfg, inst.Policies[i-1])
	}

	sem := make(chan struct{}, inst.Parallelism)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				errs[i] = ctx.Err()
				return
			}
			sys, err := build(i)
			if err == nil {
				sys, err = inst.wrap(sys)
			}
			if err == nil {
				var rec *obs.Recorder
				if i > 0 { // the OPT proxy is not instrumented
					rec = inst.newRecorder()
				}
				attached := attachRecorder(sys, rec)
				stats[i], err = RunTraceContext(ctx, sys, src, opts)
				if attached && err == nil {
					snaps[i] = rec.Snapshot()
				}
			}
			if err != nil {
				errs[i] = err
				cancel() // stop the sibling replays promptly
			}
		}(i)
	}
	wg.Wait()

	// Deterministic error selection: a genuine failure beats the
	// cancellation noise it induced in sibling replays.
	var firstErr error
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	optThroughput := stats[0].Throughput(inst.Cfg.Model)
	results := make([]Result, 0, len(inst.Policies))
	for i, p := range inst.Policies {
		st := stats[i+1]
		throughput := st.Throughput(inst.Cfg.Model)
		results = append(results, Result{
			Policy:        p.Name(),
			Throughput:    throughput,
			OptThroughput: optThroughput,
			Ratio:         ratio(optThroughput, throughput),
			Stats:         st,
			Obs:           snaps[i+1],
		})
	}
	return results, nil
}

// wrap applies the instance's Wrap hook when set.
func (inst Instance) wrap(sys System) (System, error) {
	if inst.Wrap == nil {
		return sys, nil
	}
	wrapped, err := inst.Wrap(sys)
	if err != nil {
		return nil, fmt.Errorf("sim: wrapping %s: %w", sys.Name(), err)
	}
	return wrapped, nil
}

// ratio returns o/a with the conventions of competitive analysis: 1 when
// both are zero (the policy kept pace), +Inf when only the policy is
// zero.
func ratio(o, a int64) float64 {
	switch {
	case a > 0:
		return float64(o) / float64(a)
	case o == 0:
		return 1
	default:
		return math.Inf(1)
	}
}
