// Package sim is the experiment harness: it drives switch systems over
// traces with periodic flushouts, compares policies against the OPT
// proxy, and runs seeded parameter sweeps on a bounded worker pool to
// regenerate the paper's evaluation series.
package sim

import (
	"fmt"
	"math"

	"smbm/internal/core"
	"smbm/internal/opt"
	"smbm/internal/pkt"
	"smbm/internal/traffic"
)

// System is anything that can simulate a slotted run: a core.Switch
// driven by a policy, or one of the OPT proxies.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Step runs one slot: the given arrivals, then one transmission
	// phase.
	Step(arrivals []pkt.Packet) error
	// Drain transmits without arrivals until empty and returns the
	// number of slots consumed.
	Drain() int
	// Stats snapshots the accumulated counters.
	Stats() core.Stats
	// Reset restores the initial empty state.
	Reset()
}

var (
	_ System = (*core.Switch)(nil)
	_ System = (*opt.SPQProc)(nil)
	_ System = (*opt.SPQVal)(nil)
)

// RunTrace drives sys over the trace, draining the buffer every
// flushEvery slots (0 disables periodic flushouts) and once more at the
// end, so buffered inventory never biases throughput comparisons.
func RunTrace(sys System, tr traffic.Trace, flushEvery int) (core.Stats, error) {
	for t, burst := range tr {
		if err := sys.Step(burst); err != nil {
			return core.Stats{}, fmt.Errorf("sim: %s at slot %d: %w", sys.Name(), t, err)
		}
		if flushEvery > 0 && (t+1)%flushEvery == 0 {
			sys.Drain()
		}
	}
	sys.Drain()
	return sys.Stats(), nil
}

// NewOptProxy builds the paper's OPT proxy matching the configuration's
// model: a single priority queue with Ports·Speedup cores.
func NewOptProxy(cfg core.Config) (System, error) {
	if cfg.Model == core.ModelValue {
		return opt.NewSPQVal(cfg)
	}
	return opt.NewSPQProc(cfg)
}

// Instance is one simulation cell: a switch configuration, the competing
// policies, and a trace they all see.
type Instance struct {
	// Cfg is the shared switch configuration.
	Cfg core.Config
	// Policies compete on the trace.
	Policies []core.Policy
	// Trace is the arrival sequence all systems replay.
	Trace traffic.Trace
	// FlushEvery drains all systems every so many slots (0 = only at
	// the end).
	FlushEvery int
}

// Result reports one policy's performance on an instance.
type Result struct {
	// Policy is the policy name.
	Policy string
	// Throughput is the model objective achieved by the policy.
	Throughput int64
	// OptThroughput is the OPT proxy's objective on the same trace.
	OptThroughput int64
	// Ratio is OptThroughput/Throughput, the empirical competitive
	// ratio (+Inf when the policy transmitted nothing but OPT did).
	Ratio float64
	// Stats carries the policy run's full counters.
	Stats core.Stats
}

// Run executes the instance: the OPT proxy once, then every policy on
// the same trace.
func (inst Instance) Run() ([]Result, error) {
	optSys, err := NewOptProxy(inst.Cfg)
	if err != nil {
		return nil, err
	}
	optStats, err := RunTrace(optSys, inst.Trace, inst.FlushEvery)
	if err != nil {
		return nil, err
	}
	optThroughput := optStats.Throughput(inst.Cfg.Model)

	results := make([]Result, 0, len(inst.Policies))
	for _, p := range inst.Policies {
		sw, err := core.New(inst.Cfg, p)
		if err != nil {
			return nil, err
		}
		stats, err := RunTrace(sw, inst.Trace, inst.FlushEvery)
		if err != nil {
			return nil, err
		}
		results = append(results, Result{
			Policy:        p.Name(),
			Throughput:    stats.Throughput(inst.Cfg.Model),
			OptThroughput: optThroughput,
			Ratio:         ratio(optThroughput, stats.Throughput(inst.Cfg.Model)),
			Stats:         stats,
		})
	}
	return results, nil
}

// ratio returns o/a with the conventions of competitive analysis: 1 when
// both are zero (the policy kept pace), +Inf when only the policy is
// zero.
func ratio(o, a int64) float64 {
	switch {
	case a > 0:
		return float64(o) / float64(a)
	case o == 0:
		return 1
	default:
		return math.Inf(1)
	}
}
