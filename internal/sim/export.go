package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"smbm/internal/plot"
)

// Plot renders the sweep's mean-ratio series as an ASCII line chart —
// the terminal rendition of the corresponding Fig. 5 panel.
func (r *SweepResult) Plot() string {
	xs := make([]int, len(r.Points))
	for i, p := range r.Points {
		xs[i] = p.X
	}
	series := make(map[string][]float64, len(r.Policies))
	for _, name := range r.Policies {
		ys := make([]float64, len(r.Points))
		for i, p := range r.Points {
			if s, ok := p.Ratio[name]; ok {
				ys[i] = s.Mean
			} else {
				// A point missing the policy must not render as a fake
				// 1.000-adjacent zero: NaN samples are skipped by the
				// chart, leaving a gap in that series.
				ys[i] = math.NaN()
			}
		}
		series[name] = ys
	}
	c := plot.Chart{
		Title:  fmt.Sprintf("%s: mean competitive ratio vs %s", r.Name, r.XLabel),
		XLabel: r.XLabel,
	}
	return c.Render(xs, series, r.Policies)
}

// CSV serializes the sweep: one row per swept value with mean and std
// columns per policy, for external plotting.
func (r *SweepResult) CSV() string {
	var b strings.Builder
	b.WriteString(r.XLabel)
	for _, name := range r.Policies {
		fmt.Fprintf(&b, ",%s_mean,%s_std", name, name)
	}
	b.WriteByte('\n')
	for _, p := range r.Points {
		b.WriteString(strconv.Itoa(p.X))
		for _, name := range r.Policies {
			if s, ok := p.Ratio[name]; ok {
				fmt.Fprintf(&b, ",%.6f,%.6f", s.Mean, s.Std)
			} else {
				// Explicit placeholders instead of a fabricated
				// 0.000000 summary for a policy this point never ran.
				b.WriteString(",NaN,NaN")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
