// Differential tests for the observability layer: every replay runs
// with a Recorder attached AND the policy wrapped in a counting shim
// that re-derives the same counters independently, from the plain View
// at decision time. The two bookkeepings — the engine's instrumentation
// sites and the shim's first-principles recomputation — must agree
// exactly, and both must reconcile with the engine's own Stats and
// per-port counters, nominal and under dense fault schedules.
//
// This file is package sim_test (external) so it can reuse the
// differential harness helpers (procSetup, valSetup, denseFaults) and
// import internal/faults.
package sim_test

import (
	"fmt"
	"testing"

	"smbm/internal/core"
	"smbm/internal/faults"
	"smbm/internal/obs"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

// countingPolicy wraps a policy and recomputes, from the pre-decision
// View, exactly the counters the engine's instrumentation records: a
// second, independent implementation of the bookkeeping. Wrapping also
// hides the policy's FastView fast path, so the recomputation reads
// only plain View queries.
type countingPolicy struct {
	core.Policy
	admits, drops, pushouts []uint64
	poWork, poValue         []uint64
}

func newCountingPolicy(p core.Policy, ports int) *countingPolicy {
	return &countingPolicy{
		Policy:   p,
		admits:   make([]uint64, ports),
		drops:    make([]uint64, ports),
		pushouts: make([]uint64, ports),
		poWork:   make([]uint64, ports),
		poValue:  make([]uint64, ports),
	}
}

// Admit delegates the decision and then mirrors the engine's recording
// semantics against the still-unmutated View: in the FIFO disciplines
// (processing and combined) the evicted tail's residual work is the
// whole queue work when the victim queue holds one packet (head-of-line
// progress included), one port-work quantum otherwise; in the value
// model the evicted value is the victim queue's minimum. The combined
// model's evicted tail value is invisible to the plain View (it exposes
// only min/max/sum aggregates), so the shim cannot recompute
// PushedOutValue there; obsRun copies it from the recorder like
// HOLTransmits.
func (c *countingPolicy) Admit(v core.View, p pkt.Packet) core.Decision {
	d := c.Policy.Admit(v, p)
	if !d.Accept {
		c.drops[p.Port]++
		return d
	}
	c.admits[p.Port]++
	if d.Push {
		c.pushouts[d.Victim]++
		if v.Model() == core.ModelValue {
			c.poWork[d.Victim]++
			c.poValue[d.Victim] += uint64(v.QueueMinValue(d.Victim))
		} else {
			if v.QueueLen(d.Victim) == 1 {
				c.poWork[d.Victim] += uint64(v.QueueWork(d.Victim))
			} else {
				c.poWork[d.Victim] += uint64(v.PortWork(d.Victim))
			}
			if v.Model() == core.ModelProcessing {
				c.poValue[d.Victim]++
			}
		}
	}
	return d
}

// obsRun replays tr once through an instrumented switch running the
// counting shim, then cross-checks three independent bookkeepings: the
// Recorder's snapshot, the shim's recomputation, and the engine's
// Stats/PortCounters. After the final drain the snapshot must also
// balance (admits = push-outs + transmits on every port).
func obsRun(t *testing.T, cfg core.Config, pol core.Policy, tr traffic.Trace, spec faults.Spec, seed int64) {
	t.Helper()
	cp := newCountingPolicy(pol, cfg.Ports)
	chkCfg := cfg
	chkCfg.CheckInvariants = true
	sw, err := core.New(chkCfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	var sys sim.System = sw
	if !spec.Empty() {
		if sys, err = faults.New(sw, spec, cfg.Ports, seed); err != nil {
			t.Fatal(err)
		}
	}
	rec := obs.NewRecorder(cfg.Ports, 0)
	// One attach at the outermost system instruments the whole stack:
	// the injector propagates the recorder to the wrapped switch.
	sys.(obs.Target).SetRecorder(rec)

	stats, err := sim.RunTrace(sys, tr, 64)
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	pcs := sw.PortCounters()
	for i := 0; i < cfg.Ports; i++ {
		c := snap.PerPort[i]
		ref := obs.KindCounts{
			Admits:         cp.admits[i],
			TailDrops:      cp.drops[i],
			PushOuts:       cp.pushouts[i],
			PushedOutWork:  cp.poWork[i],
			PushedOutValue: cp.poValue[i],
			HOLTransmits:   c.HOLTransmits, // shim cannot see transmissions
			FaultEvents:    c.FaultEvents,  // nor fault windows
		}
		if cfg.Model == core.ModelCombined {
			ref.PushedOutValue = c.PushedOutValue // tail value invisible to the plain View
		}
		if c != ref {
			t.Errorf("%s: port %d counters diverged from recomputation\n  rec: %+v\n  ref: %+v", pol.Name(), i, c, ref)
		}
		if c.Admits != uint64(pcs[i].Accepted) || c.TailDrops != uint64(pcs[i].Dropped) ||
			c.PushOuts != uint64(pcs[i].PushedOut) || c.HOLTransmits != uint64(pcs[i].Transmitted) {
			t.Errorf("%s: port %d counters diverged from engine PortCounters\n  rec: %+v\n  eng: %+v", pol.Name(), i, c, pcs[i])
		}
	}
	if snap.Totals.Admits != uint64(stats.Accepted) ||
		snap.Totals.TailDrops != uint64(stats.Dropped) ||
		snap.Totals.PushOuts != uint64(stats.PushedOut) ||
		snap.Totals.HOLTransmits != uint64(stats.Transmitted) {
		t.Errorf("%s: totals diverged from Stats\n  rec: %+v\n  stats: %+v", pol.Name(), snap.Totals, stats)
	}
	if p := snap.Balanced(); p != -1 {
		t.Errorf("%s: port %d unbalanced after final drain: %+v", pol.Name(), p, snap.PerPort[p])
	}
	if spec.Empty() && snap.Totals.FaultEvents != 0 {
		t.Errorf("%s: nominal run recorded %d fault events", pol.Name(), snap.Totals.FaultEvents)
	}
	if !spec.Empty() && snap.Totals.FaultEvents == 0 {
		t.Errorf("%s: faulted run recorded no fault events", pol.Name())
	}
}

// obsRosters returns every model's full roster paired with its
// differential cell builder.
func obsRosters() []struct {
	name  string
	pols  []core.Policy
	setup func(*testing.T, int64, int) (core.Config, traffic.Trace)
} {
	return []struct {
		name  string
		pols  []core.Policy
		setup func(*testing.T, int64, int) (core.Config, traffic.Trace)
	}{
		{"processing", append(policy.ForProcessing(), policy.Experimental()...), procSetup},
		{"value", append(policy.ForValueUniform(), policy.ValueExperimental()...), valSetup},
		{"combined", policy.ForCombined(), combSetup},
	}
}

// TestObsDifferentialNominal cross-checks the recorder against the
// counting shim and the engine's own counters for every roster policy
// of every model on the nominal (fault-free) differential cells.
func TestObsDifferentialNominal(t *testing.T) {
	for _, r := range obsRosters() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			for _, seed := range []int64{1, 2} {
				cfg, tr := r.setup(t, seed, 300)
				for _, p := range r.pols {
					p := p
					t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
						obsRun(t, cfg, p, tr, faults.Spec{}, seed)
					})
				}
			}
		})
	}
}

// TestObsDifferentialUnderFaults repeats the cross-check with the dense
// fault mix wrapped around the instrumented switch, pinning that the
// recorder stays consistent through blackout, slowdown, squeeze and
// burst-amplification windows, and that fault-window activations are
// counted.
func TestObsDifferentialUnderFaults(t *testing.T) {
	const slots = 400
	spec := denseFaults(slots)
	for _, r := range obsRosters() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			for _, seed := range []int64{11, 12} {
				cfg, tr := r.setup(t, seed, slots)
				for _, p := range r.pols {
					p := p
					t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
						obsRun(t, cfg, p, tr, spec, seed)
					})
				}
			}
		})
	}
}

// TestObsRecorderDetachRestoresZeroState pins the sim harness contract
// the overhead budget rests on: after a replay with observability
// enabled, running the same Instance with Obs nil attaches no recorder,
// and Result.Obs stays nil.
func TestObsRecorderDetachRestoresZeroState(t *testing.T) {
	cfg, tr := procSetup(t, 1, 120)
	inst := sim.Instance{
		Cfg:        cfg,
		Policies:   []core.Policy{policy.LQD{}},
		Provider:   tr,
		FlushEvery: 64,
		Obs:        &obs.Options{},
	}
	withObs, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if withObs[0].Obs == nil || withObs[0].Obs.Totals.Admits == 0 {
		t.Fatalf("instrumented run produced no snapshot: %+v", withObs[0].Obs)
	}
	inst.Obs = nil
	without, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range without {
		if r.Obs != nil {
			t.Errorf("%s: Obs snapshot present on an uninstrumented run", r.Policy)
		}
	}
	// The replays themselves must be identical either way.
	if withObs[0].Throughput != without[0].Throughput {
		t.Errorf("observability changed throughput: %d vs %d", withObs[0].Throughput, without[0].Throughput)
	}
}
