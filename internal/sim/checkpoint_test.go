package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smbm/internal/core"
)

// ckptLine renders one valid journal line via the production encoder.
func ckptLine(t *testing.T, sweep string, x, si int) string {
	t.Helper()
	var b strings.Builder
	res := []Result{{Policy: "Greedy", Throughput: 10, OptThroughput: 12, Stats: core.Stats{Arrived: 20}}}
	if err := appendCheckpoint(&b, sweep, x, si, res); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func writeCkpt(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckpointToleratesTornFinalLine pins the crash-resume contract: a
// partial record at the very end of the journal — the signature of a
// write torn by a crash mid-append — is dropped, and every intact line
// before it still counts.
func TestCheckpointToleratesTornFinalLine(t *testing.T) {
	intact := ckptLine(t, "s", 1, 0) + ckptLine(t, "s", 1, 1)
	path := writeCkpt(t, intact+`{"sweep":"s","x":2,"seed_ind`)
	j, err := loadCheckpoint(path, checkpointHeader{Sweep: "s"})
	if err != nil {
		t.Fatalf("torn final line rejected: %v", err)
	}
	if len(j.done) != 2 {
		t.Fatalf("recovered %d cells, want 2", len(j.done))
	}
	for _, key := range []cellKey{{1, 0}, {1, 1}} {
		if _, ok := j.done[key]; !ok {
			t.Errorf("intact cell %+v lost", key)
		}
	}
	// The empirical ratio is recomputed on load (JSON cannot carry +Inf).
	if got := j.done[cellKey{1, 0}][0].Ratio; got != 1.2 {
		t.Errorf("recomputed ratio = %v, want 1.2", got)
	}
	// The torn tail is reported with the intact prefix length, so the
	// sweep can truncate before appending.
	if !j.torn {
		t.Error("torn tail not flagged")
	}
	if want := int64(len(intact)); j.validSize != want {
		t.Errorf("validSize = %d, want %d", j.validSize, want)
	}
}

// TestCheckpointRejectsMidFileCorruption asserts the bugfix this PR
// makes: a malformed line with more data after it is corruption, not a
// torn tail, and silently truncating there would drop completed work.
// The loader must fail and name the offending line.
func TestCheckpointRejectsMidFileCorruption(t *testing.T) {
	path := writeCkpt(t, ckptLine(t, "s", 1, 0)+"GARBAGE not json\n"+ckptLine(t, "s", 1, 1))
	_, err := loadCheckpoint(path, checkpointHeader{Sweep: "s"})
	if err == nil {
		t.Fatal("mid-file corruption loaded without error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name line 2", err)
	}

	// The sweep surfaces the same failure instead of starting a run that
	// would re-journal over a damaged file.
	s := testSweep()
	s.Checkpoint = path
	s.Name = "s"
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("sweep on corrupt journal: got %v, want line-2 corruption error", err)
	}
}

// TestCheckpointSkipsForeignRecordsWithoutFullDecode asserts that
// records of other sweeps are skipped on the cheap probe path: even a
// foreign record whose payload does not match the full schema must not
// disturb the load, because only its sweep key is examined.
func TestCheckpointSkipsForeignRecordsWithoutFullDecode(t *testing.T) {
	foreign := `{"sweep":"other","x":true,"results":"not-an-array"}` + "\n"
	path := writeCkpt(t, ckptLine(t, "s", 1, 0)+foreign+ckptLine(t, "s", 2, 0))
	j, err := loadCheckpoint(path, checkpointHeader{Sweep: "s"})
	if err != nil {
		t.Fatalf("foreign record broke the load: %v", err)
	}
	if len(j.done) != 2 {
		t.Fatalf("recovered %d cells, want 2", len(j.done))
	}
}

// TestCheckpointMissingFileIsEmpty pins the first-run behaviour.
func TestCheckpointMissingFileIsEmpty(t *testing.T) {
	j, err := loadCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt"), checkpointHeader{Sweep: "s"})
	if err != nil {
		t.Fatalf("missing journal errored: %v", err)
	}
	if len(j.done) != 0 {
		t.Fatalf("missing journal recovered %d cells", len(j.done))
	}
	if j.hasHeader || j.torn {
		t.Fatalf("missing journal reported header=%v torn=%v", j.hasHeader, j.torn)
	}
}
