package sim

// Regression tests for non-finite ratio rendering and series alignment:
// a failed or degenerate cell (OPT throughput 0, or a policy missing
// from a partial point) must surface as "nan"/"inf"/"-inf" and NaN
// placeholders, never as a fabricated 0.000-adjacent number.

import (
	"math"
	"strings"
	"testing"

	"smbm/internal/metrics"
	"smbm/internal/obs"
)

func TestFormatRatioNonFinite(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1.5, "1.500"},
		{math.NaN(), "nan"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
	}
	for _, tc := range cases {
		if got := formatRatio(tc.v); got != tc.want {
			t.Errorf("formatRatio(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

// formatResult is a hand-built two-point partial result: policy B is
// missing from the second point, and policy A's second point carries a
// non-finite mean.
func formatResult() *SweepResult {
	return &SweepResult{
		Name:     "fmt",
		XLabel:   "x",
		Policies: []string{"A", "B"},
		Points: []PointResult{
			{
				X: 1,
				Ratio: map[string]metrics.Summary{
					"A": {Mean: 1.25, Std: 0.5, N: 2},
					"B": {Mean: 1.5, N: 1},
				},
			},
			{
				X: 2,
				Ratio: map[string]metrics.Summary{
					"A": {Mean: math.Inf(1), N: 2, Std: math.NaN()},
				},
			},
		},
	}
}

// TestSweepTableNonFinite pins the rendering: an infinite mean renders
// as a bare "inf" with no ±std garbage appended, and a finite
// multi-seed mean keeps its ±std suffix.
func TestSweepTableNonFinite(t *testing.T) {
	table := formatResult().Table()
	if !strings.Contains(table, "1.250±0.50") {
		t.Errorf("finite multi-seed cell lost its ±std:\n%s", table)
	}
	if !strings.Contains(table, "inf") {
		t.Errorf("infinite mean not rendered:\n%s", table)
	}
	if strings.Contains(table, "inf±") || strings.Contains(table, "NaN±") {
		t.Errorf("non-finite mean rendered with a ±std suffix:\n%s", table)
	}
}

// TestSweepSeriesPlaceholders pins series alignment: the returned xs
// cover every point, a point missing the policy yields NaN (not a
// dropped sample), and a policy absent everywhere returns (nil, nil).
func TestSweepSeriesPlaceholders(t *testing.T) {
	r := formatResult()
	xs, means := r.Series("B")
	if len(xs) != 2 || len(means) != 2 {
		t.Fatalf("series B: %d xs, %d means, want 2 and 2", len(xs), len(means))
	}
	if xs[0] != 1 || xs[1] != 2 {
		t.Errorf("series B xs = %v, want [1 2]", xs)
	}
	if means[0] != 1.5 {
		t.Errorf("series B means[0] = %v, want 1.5", means[0])
	}
	if !math.IsNaN(means[1]) {
		t.Errorf("series B means[1] = %v, want NaN placeholder", means[1])
	}
	if xs, means := r.Series("absent"); xs != nil || means != nil {
		t.Errorf("series for an absent policy = (%v, %v), want (nil, nil)", xs, means)
	}
}

// TestSweepCSVPlaceholders pins the export side of the same contract:
// the missing policy exports explicit NaN columns.
func TestSweepCSVPlaceholders(t *testing.T) {
	csv := formatResult().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), csv)
	}
	if lines[0] != "x,A_mean,A_std,B_mean,B_std" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "2,") || !strings.HasSuffix(lines[2], ",NaN,NaN") {
		t.Errorf("missing policy did not export NaN placeholders: %q", lines[2])
	}
}

// TestSweepObsTable pins the decision-counter table: roster order,
// empty when nothing was recorded.
func TestSweepObsTable(t *testing.T) {
	r := formatResult()
	if got := r.ObsTable(); got != "" {
		t.Errorf("ObsTable without counters = %q, want empty", got)
	}
	r.Obs = map[string]obs.KindCounts{
		"B": {Admits: 7, TailDrops: 2, HOLTransmits: 7},
		"A": {Admits: 10, PushOuts: 3, PushedOutWork: 9, PushedOutValue: 3, HOLTransmits: 7, FaultEvents: 1},
	}
	table := r.ObsTable()
	ai, bi := strings.Index(table, "A "), strings.Index(table, "B ")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("ObsTable rows not in roster order:\n%s", table)
	}
	for _, want := range []string{"admits", "po-work", "faults", "10", "9"} {
		if !strings.Contains(table, want) {
			t.Errorf("ObsTable missing %q:\n%s", want, table)
		}
	}
}
