// In-tree equivalents of cmd/benchjson's micro workload (a congested
// 16-port switch over a fixed 256-slot, 8-packets/slot trace driven
// through Step+Drain+Reset), so `go test -bench BenchmarkMicro` can
// profile the batched arrival hot path without the JSON harness.
package sim_test

import (
	"math/rand"
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/policy"
)

func microTraceB(cfg core.Config, slots, burst int) [][]pkt.Packet {
	rng := rand.New(rand.NewSource(1))
	tr := make([][]pkt.Packet, slots)
	for s := range tr {
		bs := make([]pkt.Packet, burst)
		for i := range bs {
			port := rng.Intn(cfg.Ports)
			if cfg.Model == core.ModelValue {
				bs[i] = pkt.NewValue(port, 1+rng.Intn(cfg.MaxLabel))
			} else {
				bs[i] = pkt.NewWork(port, cfg.PortWork[port])
			}
		}
		tr[s] = bs
	}
	return tr
}

func benchMicro(b *testing.B, pol core.Policy) {
	cfg := core.Config{
		Model: core.ModelProcessing, Ports: 16, Buffer: 128, MaxLabel: 16,
		Speedup: 1, PortWork: core.ContiguousWorks(16),
	}
	tr := microTraceB(cfg, 256, 8)
	sw := core.MustNew(cfg, pol)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, burst := range tr {
			if err := sw.Step(burst); err != nil {
				b.Fatal(err)
			}
		}
		sw.Drain()
		sw.Reset()
	}
}

func BenchmarkMicroLQD(b *testing.B)    { benchMicro(b, policy.LQD{}) }
func BenchmarkMicroGreedy(b *testing.B) { benchMicro(b, policy.Greedy{}) }
func BenchmarkMicroNHST(b *testing.B)   { benchMicro(b, policy.NHST{}) }
