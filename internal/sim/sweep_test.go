package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/traffic"
)

// buildCell returns a deterministic tiny instance whose trace depends on
// x and seed, exercising the sweep plumbing end to end.
func buildCell(x int, seed int64) (Instance, error) {
	cfg := core.Config{
		Model:    core.ModelProcessing,
		Ports:    2,
		Buffer:   4,
		MaxLabel: 2,
		Speedup:  1,
		PortWork: []int{1, 2},
	}
	burst := pkt.Concat(
		pkt.Burst(pkt.NewWork(0, 1), x+int(seed%3)),
		pkt.Burst(pkt.NewWork(1, 2), x),
	)
	return Instance{
		Cfg:      cfg,
		Policies: []core.Policy{policy.Greedy{}, policy.LWD{}},
		Provider: traffic.Slots(burst, nil),
	}, nil
}

func testSweep() *Sweep {
	return &Sweep{
		Name:     "test",
		XLabel:   "x",
		Xs:       []int{2, 4, 8},
		Seeds:    3,
		BaseSeed: 1,
		Build:    buildCell,
	}
}

func TestSweepRun(t *testing.T) {
	res, err := testSweep().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points %d, want 3", len(res.Points))
	}
	if !reflect.DeepEqual(res.Policies, []string{"Greedy", "LWD"}) {
		t.Errorf("policies %v", res.Policies)
	}
	for i, p := range res.Points {
		if p.X != testSweep().Xs[i] {
			t.Errorf("point %d X=%d", i, p.X)
		}
		for _, name := range res.Policies {
			s, ok := p.Ratio[name]
			if !ok || s.N != 3 {
				t.Errorf("point %d policy %s: summary %+v", i, name, s)
			}
			if s.Mean < 1.0-1e-9 {
				// The OPT proxy can in principle be edged out on tiny
				// instances, but not on these saturating bursts.
				t.Errorf("point %d %s mean ratio %v < 1", i, name, s.Mean)
			}
		}
		if p.OptThroughput.N != 3 {
			t.Errorf("opt summary %+v", p.OptThroughput)
		}
	}
}

func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	serial := testSweep()
	serial.Parallelism = 1
	parallel := testSweep()
	parallel.Parallelism = 8
	r1, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := parallel.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("sweep results depend on parallelism")
	}
}

func TestSweepValidation(t *testing.T) {
	s := testSweep()
	s.Xs = nil
	if _, err := s.Run(); err == nil {
		t.Error("empty Xs accepted")
	}
	s = testSweep()
	s.Seeds = 0
	if _, err := s.Run(); err == nil {
		t.Error("zero seeds accepted")
	}
	s = testSweep()
	s.Build = nil
	if _, err := s.Run(); err == nil {
		t.Error("nil Build accepted")
	}
}

func TestSweepPropagatesBuildErrors(t *testing.T) {
	s := testSweep()
	boom := errors.New("boom")
	s.Build = func(x int, seed int64) (Instance, error) { return Instance{}, boom }
	if _, err := s.Run(); err == nil || !errors.Is(err, boom) {
		t.Errorf("got %v, want wrapped boom", err)
	}
}

func TestSweepTableAndSeries(t *testing.T) {
	res, err := testSweep().Run()
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	if !strings.Contains(table, "LWD") || !strings.Contains(table, "Greedy") {
		t.Errorf("table missing policies:\n%s", table)
	}
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 2+3 {
		t.Errorf("table has %d lines:\n%s", len(lines), table)
	}
	xs, means := res.Series("LWD")
	if len(xs) != 3 || len(means) != 3 {
		t.Fatalf("series lengths %d/%d", len(xs), len(means))
	}
	if xs[0] != 2 || xs[2] != 8 {
		t.Errorf("series xs %v", xs)
	}
	if _, m := res.Series("nope"); m != nil {
		t.Error("unknown policy yielded a series")
	}
	best := res.BestPolicy()
	if len(best) != 3 {
		t.Fatalf("best %v", best)
	}
	for _, b := range best {
		if b != "Greedy" && b != "LWD" {
			t.Errorf("unknown best policy %q", b)
		}
	}
}
