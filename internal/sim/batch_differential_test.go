// Differential tests for the batched arrival phase: every roster policy
// replays the same fixed-seed traces through core.Switch twice — once
// through the transactional ArriveBatch path (what Step drives, using
// the policy's AdmitBatch kernel when it has one) and once through the
// per-packet Arrive reference path — and the two runs must agree bit
// for bit on Stats, per-port counters, obs decision counters and traced
// events. The fault-injected variants pin the equivalence off the
// nominal point, where buffer squeezes force Free() == 0 mid-burst and
// burst amplification stretches the batches.
//
// Together with differential_test.go (optimized engine vs naive
// reference) this closes the triangle: per-packet == reference and
// batched == per-packet, so batched == reference.
package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"smbm/internal/core"
	"smbm/internal/faults"
	"smbm/internal/obs"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

// perPacketSwitch drives a core.Switch through the per-packet reference
// path: its Step calls ArriveBurst (one atomic Arrive per packet)
// instead of the batched ArriveBatch that core.Switch.Step uses.
type perPacketSwitch struct {
	*core.Switch
}

func (s perPacketSwitch) Step(arrivals []pkt.Packet) error {
	if err := s.ArriveBurst(arrivals); err != nil {
		return err
	}
	s.Transmit()
	return nil
}

var (
	_ sim.System         = perPacketSwitch{}
	_ sim.BoundedDrainer = perPacketSwitch{}
	_ faults.Throttled   = perPacketSwitch{}
	_ faults.Squeezed    = perPacketSwitch{}
)

// batchDiffRun replays tr through the batched and per-packet arrival
// paths of two identically configured switches (CheckInvariants on,
// recorders with tracing attached) and requires bit-identical Stats,
// per-port counters and obs snapshots.
func batchDiffRun(t *testing.T, cfg core.Config, pol core.Policy, tr traffic.Trace, spec faults.Spec, seed int64) {
	t.Helper()
	cfg.CheckInvariants = true

	batched, err := core.New(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	perPkt, err := core.New(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	const traceCap = 512
	recB := obs.NewRecorder(cfg.Ports, traceCap)
	recP := obs.NewRecorder(cfg.Ports, traceCap)
	batched.SetRecorder(recB)
	perPkt.SetRecorder(recP)

	var sysB, sysP sim.System = batched, perPacketSwitch{perPkt}
	if !spec.Empty() {
		if sysB, err = faults.New(sysB, spec, cfg.Ports, seed); err != nil {
			t.Fatal(err)
		}
		if sysP, err = faults.New(sysP, spec, cfg.Ports, seed); err != nil {
			t.Fatal(err)
		}
	}
	const flushEvery = 64
	sb, err := sim.RunTrace(sysB, tr, flushEvery)
	if err != nil {
		t.Fatalf("batched path: %v", err)
	}
	sp, err := sim.RunTrace(sysP, tr, flushEvery)
	if err != nil {
		t.Fatalf("per-packet path: %v", err)
	}
	if sb != sp {
		t.Errorf("%s: stats diverged\n batched: %+v\n per-pkt: %+v", pol.Name(), sb, sp)
	}
	pb, pp := batched.PortCounters(), perPkt.PortCounters()
	for i := range pb {
		if pb[i] != pp[i] {
			t.Errorf("%s: port %d counters diverged\n batched: %+v\n per-pkt: %+v", pol.Name(), i, pb[i], pp[i])
		}
	}
	ob, op := recB.Snapshot(), recP.Snapshot()
	if !reflect.DeepEqual(ob, op) {
		t.Errorf("%s: obs snapshots diverged\n batched: %+v\n per-pkt: %+v", pol.Name(), ob, op)
	}
}

// batchRoster enumerates every roster policy for one model, mirroring
// the panels: the full processing roster plus experimental, or the
// value roster (uniform + by-port + experimental).
func batchRosterProcessing() []core.Policy {
	return append(policy.ForProcessing(), policy.Experimental()...)
}

// TestBatchDifferentialProcessing drives the full processing-model
// roster through batched vs per-packet arrivals, nominal and under a
// dense fault mix.
func TestBatchDifferentialProcessing(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg, tr := procSetup(t, seed, 300)
		for _, p := range batchRosterProcessing() {
			p := p
			t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
				batchDiffRun(t, cfg, p, tr, faults.Spec{}, seed)
			})
		}
	}
	t.Run("faulted", func(t *testing.T) {
		const slots = 400
		spec := denseFaults(slots)
		for _, seed := range []int64{11, 12} {
			cfg, tr := procSetup(t, seed, slots)
			for _, p := range batchRosterProcessing() {
				p := p
				t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
					batchDiffRun(t, cfg, p, tr, spec, seed)
				})
			}
		}
	})
}

// TestBatchDifferentialValue drives the value-model rosters (uniform
// values, value-by-port, and the experimental set) through batched vs
// per-packet arrivals, nominal and under a dense fault mix.
func TestBatchDifferentialValue(t *testing.T) {
	t.Run("uniform", func(t *testing.T) {
		pols := append(policy.ForValueUniform(), policy.ValueExperimental()...)
		for _, seed := range []int64{1, 2, 3} {
			cfg, tr := valSetup(t, seed, 300)
			for _, p := range pols {
				p := p
				t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
					batchDiffRun(t, cfg, p, tr, faults.Spec{}, seed)
				})
			}
		}
	})
	t.Run("by-port", func(t *testing.T) {
		cfg := core.Config{Model: core.ModelValue, Ports: 4, Buffer: 12, MaxLabel: 4, Speedup: 1}
		for _, seed := range []int64{1, 2} {
			tr := diffTrace(t, traffic.MMPPConfig{
				Sources:      40,
				LambdaOn:     0.35,
				POnOff:       0.2,
				POffOn:       0.3,
				Label:        traffic.LabelValueByPort,
				Ports:        cfg.Ports,
				MaxLabel:     cfg.MaxLabel,
				PortAffinity: true,
				Seed:         seed,
			}, 300)
			for _, p := range policy.ForValueByPort() {
				p := p
				t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
					batchDiffRun(t, cfg, p, tr, faults.Spec{}, seed)
				})
			}
		}
	})
	t.Run("faulted", func(t *testing.T) {
		const slots = 400
		spec := denseFaults(slots)
		pols := append(policy.ForValueUniform(), policy.ValueExperimental()...)
		for _, seed := range []int64{11, 12} {
			cfg, tr := valSetup(t, seed, slots)
			for _, p := range pols {
				p := p
				t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
					batchDiffRun(t, cfg, p, tr, spec, seed)
				})
			}
		}
	})
}

// TestBatchDifferentialCombined drives the combined work×value roster
// through batched vs per-packet arrivals, nominal and under a dense
// fault mix.
func TestBatchDifferentialCombined(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg, tr := combSetup(t, seed, 300)
		for _, p := range policy.ForCombined() {
			p := p
			t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
				batchDiffRun(t, cfg, p, tr, faults.Spec{}, seed)
			})
		}
	}
	t.Run("faulted", func(t *testing.T) {
		const slots = 400
		spec := denseFaults(slots)
		for _, seed := range []int64{11, 12} {
			cfg, tr := combSetup(t, seed, slots)
			for _, p := range policy.ForCombined() {
				p := p
				t.Run(fmt.Sprintf("%s/seed%d", p.Name(), seed), func(t *testing.T) {
					batchDiffRun(t, cfg, p, tr, spec, seed)
				})
			}
		}
	})
}
