package sim

import (
	"math"
	"testing"

	"smbm/internal/core"
)

// TestDrainBound pins the configuration-derived drain budget: the
// nominal bound is B·MaxLabel plus slack, degenerate or overflowing
// shapes fall back to the DefaultDrainMax ceiling, and the bound never
// exceeds that ceiling.
func TestDrainBound(t *testing.T) {
	cases := []struct {
		name   string
		buffer int
		label  int
		want   int
	}{
		{"nominal", 12, 4, 12*4 + drainSlack},
		{"tiny", 1, 1, 1 + drainSlack},
		{"zero-buffer", 0, 4, DefaultDrainMax},
		{"zero-label", 12, 0, DefaultDrainMax},
		{"near-ceiling", DefaultDrainMax, 1, DefaultDrainMax},
		{"overflow", math.MaxInt / 2, 8, DefaultDrainMax},
	}
	for _, c := range cases {
		cfg := core.Config{Buffer: c.buffer, MaxLabel: c.label}
		if got := DrainBound(cfg); got != c.want {
			t.Errorf("%s: DrainBound(B=%d, L=%d) = %d, want %d",
				c.name, c.buffer, c.label, got, c.want)
		}
		if got := DrainBound(cfg); got > DefaultDrainMax {
			t.Errorf("%s: bound %d exceeds ceiling", c.name, got)
		}
	}
}

// TestInstanceUsesDrainBound checks runOptions derives the tighter
// default while an explicit DrainMax wins.
func TestInstanceUsesDrainBound(t *testing.T) {
	cfg := core.Config{
		Model:    core.ModelProcessing,
		Ports:    2,
		Buffer:   4,
		MaxLabel: 2,
		Speedup:  1,
		PortWork: []int{1, 2},
	}
	inst := Instance{Cfg: cfg}
	if got := inst.runOptions().DrainMax; got != DrainBound(cfg) {
		t.Errorf("derived DrainMax %d, want %d", got, DrainBound(cfg))
	}
	inst.DrainMax = 7
	if got := inst.runOptions().DrainMax; got != 7 {
		t.Errorf("explicit DrainMax %d, want 7", got)
	}
}
