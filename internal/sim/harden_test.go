package sim

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/traffic"
)

// stuckSystem is a deliberately misbehaving System whose buffer never
// empties: DrainMax always reports failure while packets are buffered.
type stuckSystem struct{ occ int }

func (s *stuckSystem) Name() string                     { return "stuck" }
func (s *stuckSystem) Step(arrivals []pkt.Packet) error { s.occ += len(arrivals); return nil }
func (s *stuckSystem) Drain() int                       { return 0 }
func (s *stuckSystem) Stats() core.Stats                { return core.Stats{} }
func (s *stuckSystem) Reset()                           { s.occ = 0 }
func (s *stuckSystem) DrainMax(max int) (int, bool)     { return max, s.occ == 0 }

func TestRunTraceBoundsDrains(t *testing.T) {
	tr := traffic.Slots([]pkt.Packet{pkt.NewWork(0, 1)})
	if _, err := RunTrace(&stuckSystem{}, tr, 0); err == nil ||
		!strings.Contains(err.Error(), "drain did not empty") {
		t.Errorf("non-draining system: got %v, want drain-bound error", err)
	}
	// An empty stuck system drains trivially.
	if _, err := RunTrace(&stuckSystem{}, traffic.Slots(nil), 0); err != nil {
		t.Errorf("empty system: %v", err)
	}
	// A negative DrainMax disables the bound and trusts the System.
	if _, err := RunTraceContext(context.Background(), &stuckSystem{}, tr,
		RunOptions{DrainMax: -1}); err != nil {
		t.Errorf("unbounded drain: %v", err)
	}
}

func TestRunTraceContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := traffic.Slots(nil, nil)
	_, err := RunTraceContext(ctx, &stuckSystem{}, tr, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "stuck at slot 0") {
		t.Errorf("error %v does not name the system and slot", err)
	}
}

func TestSweepConfinesPanics(t *testing.T) {
	s := testSweep()
	s.Build = func(x int, seed int64) (Instance, error) {
		if x == 4 {
			panic("injected test panic")
		}
		return buildCell(x, seed)
	}
	res, err := s.Run()
	if err == nil {
		t.Fatal("panicking cells reported no error")
	}
	if res == nil {
		t.Fatal("panicking cells discarded the completed points")
	}
	if !res.Partial {
		t.Error("result not marked partial")
	}
	// The healthy swept values still completed with all seeds.
	if len(res.Points) != 2 || res.Points[0].X != 2 || res.Points[1].X != 8 {
		t.Fatalf("points %+v, want x=2 and x=8", res.Points)
	}
	for _, p := range res.Points {
		if n := p.Ratio["LWD"].N; n != 3 {
			t.Errorf("x=%d has %d replications, want 3", p.X, n)
		}
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v carries no *CellError", err)
	}
	if ce.X != 4 || ce.Sweep != "test" || ce.XLabel != "x" {
		t.Errorf("cell identity %+v, want sweep test x=4", ce)
	}
	if ce.Seed != s.cellSeed(1, ce.SeedIndex) {
		t.Errorf("cell seed %d does not match the derivation", ce.Seed)
	}
	if len(ce.Stack) == 0 {
		t.Error("panic CellError has no stack")
	}
	msg := err.Error()
	if !strings.Contains(msg, `sweep "test" cell x=4`) || !strings.Contains(msg, "injected test panic") {
		t.Errorf("error message %q does not name the cell and panic", msg)
	}
}

func TestSweepCancellationReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := testSweep()
	s.Parallelism = 1
	var builds int32
	s.Build = func(x int, seed int64) (Instance, error) {
		// Cells run in order under Parallelism=1; cancel while building
		// the fourth cell, after all three x=2 replications completed.
		if atomic.AddInt32(&builds, 1) == 4 {
			cancel()
		}
		return buildCell(x, seed)
	}
	res, err := s.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	var ce *CellError
	if errors.As(err, &ce) {
		t.Errorf("cancellation surfaced as cell failure: %v", ce)
	}
	if res == nil || !res.Partial {
		t.Fatalf("result %+v, want partial", res)
	}
	if len(res.Points) != 1 || res.Points[0].X != 2 {
		t.Fatalf("points %+v, want only x=2", res.Points)
	}
	if n := res.Points[0].Ratio["Greedy"].N; n != 3 {
		t.Errorf("x=2 has %d replications, want 3", n)
	}
}

func TestSweepCellTimeout(t *testing.T) {
	s := testSweep()
	s.CellTimeout = time.Nanosecond // every cell blows its deadline
	res, err := s.Run()
	if err == nil {
		t.Fatal("blown deadlines reported no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v, want wrapped DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "cell deadline") {
		t.Errorf("error %v does not mention the cell deadline", err)
	}
	if res == nil || !res.Partial || len(res.Points) != 0 {
		t.Errorf("result %+v, want empty partial", res)
	}
}

func TestSweepValidatesDuplicatesAndParallelism(t *testing.T) {
	s := testSweep()
	s.Xs = []int{2, 4, 2}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate Xs: got %v", err)
	}
	s = testSweep()
	s.Parallelism = -3
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "Parallelism") {
		t.Errorf("negative parallelism: got %v", err)
	}
}

func TestSweepCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	var builds int32
	counting := func(x int, seed int64) (Instance, error) {
		atomic.AddInt32(&builds, 1)
		return buildCell(x, seed)
	}

	clean, err := testSweep().Run()
	if err != nil {
		t.Fatal(err)
	}

	s := testSweep()
	s.Checkpoint = path
	s.Build = counting
	first, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&builds); got != 9 {
		t.Fatalf("first run built %d cells, want 9", got)
	}
	if !reflect.DeepEqual(first, clean) {
		t.Error("checkpointed run differs from plain run")
	}

	// A re-run against the same journal skips every cell.
	s = testSweep()
	s.Checkpoint = path
	s.Build = counting
	second, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&builds); got != 9 {
		t.Fatalf("resumed run rebuilt cells: %d total builds, want 9", got)
	}
	if !reflect.DeepEqual(second, clean) {
		t.Error("resumed result differs from plain run")
	}
}

func TestSweepCheckpointResumesInterruptedRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var builds int32
	s := testSweep()
	s.Parallelism = 1
	s.Checkpoint = path
	s.Build = func(x int, seed int64) (Instance, error) {
		if atomic.AddInt32(&builds, 1) == 4 {
			cancel()
		}
		return buildCell(x, seed)
	}
	res, err := s.RunContext(ctx)
	if !errors.Is(err, context.Canceled) || res == nil || !res.Partial {
		t.Fatalf("interrupted run: res=%+v err=%v", res, err)
	}

	// Resume: only the six cells the interruption lost are rebuilt.
	var resumedBuilds int32
	s = testSweep()
	s.Checkpoint = path
	s.Build = func(x int, seed int64) (Instance, error) {
		atomic.AddInt32(&resumedBuilds, 1)
		return buildCell(x, seed)
	}
	resumed, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&resumedBuilds); got != 6 {
		t.Errorf("resume rebuilt %d cells, want 6", got)
	}
	if resumed.Partial {
		t.Error("resumed run still partial")
	}
	clean, err := testSweep().Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, clean) {
		t.Error("resumed result differs from an uninterrupted run")
	}
}

func TestSweepCheckpointIgnoresOtherSweeps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.ckpt")
	s := testSweep()
	s.Checkpoint = path
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// A differently named sweep sharing the journal rebuilds everything.
	var builds int32
	other := testSweep()
	other.Name = "other"
	other.Checkpoint = path
	other.Build = func(x int, seed int64) (Instance, error) {
		atomic.AddInt32(&builds, 1)
		return buildCell(x, seed)
	}
	if _, err := other.Run(); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&builds); got != 9 {
		t.Errorf("other sweep built %d cells, want 9", got)
	}
}
