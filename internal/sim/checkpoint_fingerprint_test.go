package sim

// Regression tests for the checkpoint fingerprint header: resuming a
// journal after any sweep-configuration change must fail loudly and
// name the differing field, legacy headerless journals must resume with
// a warning and be upgraded in place, and a header torn by a crash
// mid-append must be recovered like any other torn final record.

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ckptSweep builds the standard test sweep journaling to a fresh file,
// with a representative cell-config digest.
func ckptSweep(t *testing.T, path string) *Sweep {
	t.Helper()
	s := testSweep()
	s.Checkpoint = path
	s.ConfigDigest = "model=processing;B=4;C=1;policies=Greedy,LWD"
	return s
}

// TestCheckpointResumeRejectsChangedConfig pins the headline bugfix:
// after a checkpointed run completes, re-running with any sweep
// parameter changed must refuse to resume, naming the differing field
// instead of silently merging cells journaled under different flags.
func TestCheckpointResumeRejectsChangedConfig(t *testing.T) {
	cases := []struct {
		field  string
		mutate func(*Sweep)
	}{
		{"x_label", func(s *Sweep) { s.XLabel = "B" }},
		{"xs", func(s *Sweep) { s.Xs = []int{2, 4} }},
		{"seeds", func(s *Sweep) { s.Seeds = 5 }},
		{"base_seed", func(s *Sweep) { s.BaseSeed = 99 }},
		{"config", func(s *Sweep) { s.ConfigDigest += ";faults=blackout" }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.field, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ckpt")
			if _, err := ckptSweep(t, path).Run(); err != nil {
				t.Fatal(err)
			}
			s := ckptSweep(t, path)
			tc.mutate(s)
			_, err := s.Run()
			if err == nil {
				t.Fatalf("resume with changed %s succeeded", tc.field)
			}
			if !strings.Contains(err.Error(), "configuration changed") {
				t.Errorf("error %q does not say the configuration changed", err)
			}
			if !strings.Contains(err.Error(), tc.field+":") {
				t.Errorf("error %q does not name the differing field %q", err, tc.field)
			}
		})
	}
}

// TestCheckpointResumeMatchingConfigIsClean asserts the happy path: an
// unchanged re-run resumes every cell without warnings and produces a
// full result.
func TestCheckpointResumeMatchingConfigIsClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := ckptSweep(t, path).Run(); err != nil {
		t.Fatal(err)
	}
	res, err := ckptSweep(t, path).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("clean resume warned: %q", res.Warnings)
	}
	if len(res.Points) != 3 || res.Partial {
		t.Errorf("resumed result incomplete: %d points, partial=%v", len(res.Points), res.Partial)
	}
}

// journalHasHeader reports whether the journal at path contains a
// fingerprint header line for the test sweep. The upgrade path appends
// the header (the journal is open O_APPEND), so position is not part of
// the contract — presence is.
func journalHasHeader(t *testing.T, path string) bool {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"sweep":"test"`) && strings.Contains(line, `"header_v":1`) {
			return true
		}
	}
	return false
}

// TestCheckpointLegacyJournalWarnsAndUpgrades pins backward
// compatibility: a journal written before the fingerprint header
// existed (cell records only) still resumes — with a loud warning that
// its cells cannot be verified — and gains a header so the next resume
// is fully checked.
func TestCheckpointLegacyJournalWarnsAndUpgrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	var b strings.Builder
	legacy := []Result{
		{Policy: "Greedy", Throughput: 5, OptThroughput: 10, Ratio: 2},
		{Policy: "LWD", Throughput: 8, OptThroughput: 10, Ratio: 1.25},
	}
	if err := appendCheckpoint(&b, "test", 2, 0, legacy); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := ckptSweep(t, path).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "legacy journal") {
		t.Errorf("legacy resume warnings = %q, want one legacy-journal warning", res.Warnings)
	}
	if !journalHasHeader(t, path) {
		t.Error("journal not upgraded with a fingerprint header")
	}

	// The upgraded journal now resumes with the full check and no
	// warning — and a changed config is caught.
	res, err = ckptSweep(t, path).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("upgraded resume warned: %q", res.Warnings)
	}
	changed := ckptSweep(t, path)
	changed.Seeds = 7
	if _, err := changed.Run(); err == nil || !strings.Contains(err.Error(), "seeds:") {
		t.Errorf("upgraded journal did not catch a seeds change: %v", err)
	}
}

// TestCheckpointTornHeaderIsRecovered covers the crash window between
// creating a journal and finishing its header write: the partial header
// is a torn final record, so the sweep drops it, starts the journal
// over, and writes a fresh header.
func TestCheckpointTornHeaderIsRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, []byte(`{"sweep":"test","header_v":1,"x_la`), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ckptSweep(t, path).Run()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "torn") {
			found = true
		}
	}
	if !found {
		t.Errorf("torn header dropped silently; warnings = %q", res.Warnings)
	}
	if !journalHasHeader(t, path) {
		t.Error("recovered journal has no fingerprint header")
	}
	// The rewritten journal is intact: an unchanged re-run is clean.
	res, err = ckptSweep(t, path).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("re-run after torn-header recovery warned: %q", res.Warnings)
	}
}

// TestCheckpointForeignHeaderIgnored pins the shared-journal contract:
// another sweep's header — even one with a wildly different
// configuration — must not disturb this sweep's resume.
func TestCheckpointForeignHeaderIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	var b strings.Builder
	foreign := checkpointHeader{
		Sweep: "other", HeaderV: checkpointHeaderV, XLabel: "B",
		XsHash: "deadbeef", Seeds: 9, BaseSeed: 7, Config: "B=999",
	}
	if err := appendHeader(&b, foreign); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ckptSweep(t, path).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("foreign header caused warnings: %q", res.Warnings)
	}
	if _, err := ckptSweep(t, path).Run(); err != nil {
		t.Errorf("resume alongside a foreign header failed: %v", err)
	}
}
