// Streaming-pipeline differential tests: every Provider shape — seeded
// MMPP regeneration, file-backed text and binary streaming, and the
// materialized-trace adapter — must drive an Instance to bit-identical
// results, with and without fault injection; and the parallel replay
// fan-out must reproduce the sequential order exactly. Together these
// pin the ISSUE 3 acceptance criterion: streamed runs reproduce
// materialized runs' Stats and per-port counters on fixed seeds.
package sim_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"smbm/internal/core"
	"smbm/internal/faults"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

// streamCell is one differential configuration: a switch config, its
// MMPP spec, and the roster to race.
type streamCell struct {
	name     string
	cfg      core.Config
	mcfg     traffic.MMPPConfig
	policies []core.Policy
}

// streamCells builds the processing-, value- and combined-model cells
// at one seed.
func streamCells(seed int64) []streamCell {
	procCfg := core.Config{
		Model:    core.ModelProcessing,
		Ports:    4,
		Buffer:   12,
		MaxLabel: 4,
		Speedup:  2,
		PortWork: core.ContiguousWorks(4),
	}
	valCfg := core.Config{
		Model:    core.ModelValue,
		Ports:    4,
		Buffer:   12,
		MaxLabel: 6,
		Speedup:  1,
	}
	combCfg := core.Config{
		Model:    core.ModelCombined,
		Ports:    4,
		Buffer:   12,
		MaxLabel: 6,
		Speedup:  2,
		PortWork: core.ContiguousWorks(4),
	}
	return []streamCell{
		{
			name: "processing",
			cfg:  procCfg,
			mcfg: traffic.MMPPConfig{
				Sources:      40,
				LambdaOn:     0.35,
				POnOff:       0.2,
				POffOn:       0.3,
				Label:        traffic.LabelWorkByPort,
				Ports:        procCfg.Ports,
				MaxLabel:     procCfg.MaxLabel,
				PortWork:     procCfg.PortWork,
				PortAffinity: true,
				Seed:         seed,
			},
			policies: []core.Policy{policy.LWD{}, policy.LQD{}, policy.Greedy{}, policy.NHDT{}},
		},
		{
			name: "value",
			cfg:  valCfg,
			mcfg: traffic.MMPPConfig{
				Sources:      40,
				LambdaOn:     0.35,
				POnOff:       0.2,
				POffOn:       0.3,
				Label:        traffic.LabelValueUniform,
				Ports:        valCfg.Ports,
				MaxLabel:     valCfg.MaxLabel,
				PortAffinity: true,
				Seed:         seed,
			},
			policies: []core.Policy{policy.MRD{}, policy.MVD{}, policy.VLQD{}},
		},
		{
			name: "combined",
			cfg:  combCfg,
			mcfg: traffic.MMPPConfig{
				Sources:      40,
				LambdaOn:     0.35,
				POnOff:       0.2,
				POffOn:       0.3,
				Label:        traffic.LabelWorkValue,
				Ports:        combCfg.Ports,
				MaxLabel:     combCfg.MaxLabel,
				PortWork:     combCfg.PortWork,
				PortAffinity: true,
				Seed:         seed,
			},
			policies: []core.Policy{policy.LWD{}, policy.MRD{}, policy.RVD{}},
		},
	}
}

// writeTraceFile materializes tr into a temp file in the given format
// and returns its path.
func writeTraceFile(t *testing.T, tr traffic.Trace, binary bool) string {
	t.Helper()
	name := "trace.txt"
	if binary {
		name = "trace.bin"
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if binary {
		err = tr.WriteBinary(f)
	} else {
		err = tr.Write(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// providerShapes returns every Provider implementation over the same
// fixed-seed stream: the materialized trace (the reference), the seeded
// regenerating spec, and the two file-backed streaming formats.
func providerShapes(t *testing.T, mcfg traffic.MMPPConfig, slots int) map[string]traffic.Provider {
	t.Helper()
	gen, err := traffic.NewMMPP(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := traffic.Record(gen, slots)
	mmpp, err := traffic.NewMMPPProvider(mcfg, slots)
	if err != nil {
		t.Fatal(err)
	}
	text, err := traffic.OpenFile(writeTraceFile(t, tr, false))
	if err != nil {
		t.Fatal(err)
	}
	bin, err := traffic.OpenFile(writeTraceFile(t, tr, true))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]traffic.Provider{
		"materialized": tr,
		"mmpp-spec":    mmpp,
		"file-text":    text,
		"file-binary":  bin,
	}
}

// runShape executes one Instance over the given provider and returns
// its results.
func runShape(t *testing.T, cell streamCell, src traffic.Provider, wrap func(sim.System) (sim.System, error), parallelism int) []sim.Result {
	t.Helper()
	inst := sim.Instance{
		Cfg:         cell.cfg,
		Policies:    cell.policies,
		Provider:    src,
		FlushEvery:  64,
		Parallelism: parallelism,
		Wrap:        wrap,
	}
	res, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireSameResults asserts two result slices are bit-identical,
// Stats included.
func requireSameResults(t *testing.T, label string, got, want []sim.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: result %d diverged\n got: %+v\nwant: %+v", label, i, got[i], want[i])
		}
	}
}

// TestStreamedMatchesMaterialized is the tentpole differential: every
// streaming Provider shape must reproduce the materialized run exactly —
// same Stats, same ratios — on fixed seeds, nominal and faulted.
func TestStreamedMatchesMaterialized(t *testing.T) {
	const slots = 400
	for _, seed := range []int64{1, 2} {
		for _, cell := range streamCells(seed) {
			cell := cell
			t.Run(fmt.Sprintf("%s/seed%d", cell.name, seed), func(t *testing.T) {
				shapes := providerShapes(t, cell.mcfg, slots)
				for _, faulted := range []bool{false, true} {
					var wrap func(sim.System) (sim.System, error)
					label := "nominal"
					if faulted {
						label = "faulted"
						wrap = faults.Wrapper(denseFaults(slots), cell.cfg.Ports, seed)
					}
					want := runShape(t, cell, shapes["materialized"], wrap, 0)
					for name, src := range shapes {
						if name == "materialized" {
							continue
						}
						got := runShape(t, cell, src, wrap, 0)
						requireSameResults(t, label+"/"+name, got, want)
					}
				}
			})
		}
	}
}

// TestStreamedPortCountersMatch descends below Stats: the per-port
// counters of a switch driven from a streaming cursor must match the
// materialized replay port for port.
func TestStreamedPortCountersMatch(t *testing.T) {
	const slots = 400
	for _, cell := range streamCells(5) {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			shapes := providerShapes(t, cell.mcfg, slots)
			pol := cell.policies[0]
			run := func(src traffic.Provider) (core.Stats, []core.PortCounters) {
				sw, err := core.New(cell.cfg, pol)
				if err != nil {
					t.Fatal(err)
				}
				st, err := sim.RunTrace(sw, src, 64)
				if err != nil {
					t.Fatal(err)
				}
				return st, sw.PortCounters()
			}
			wantStats, wantPorts := run(shapes["materialized"])
			for name, src := range shapes {
				if name == "materialized" {
					continue
				}
				gotStats, gotPorts := run(src)
				if gotStats != wantStats {
					t.Errorf("%s: stats diverged\n got: %+v\nwant: %+v", name, gotStats, wantStats)
				}
				for i := range wantPorts {
					if gotPorts[i] != wantPorts[i] {
						t.Errorf("%s: port %d counters diverged\n got: %+v\nwant: %+v", name, i, gotPorts[i], wantPorts[i])
					}
				}
			}
		})
	}
}

// TestParallelMatchesSequential pins the intra-cell fan-out: an
// Instance run with Parallelism > 1 must produce exactly the sequential
// results, nominal and faulted, across provider shapes.
func TestParallelMatchesSequential(t *testing.T) {
	const slots = 300
	for _, cell := range streamCells(9) {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			shapes := providerShapes(t, cell.mcfg, slots)
			for _, faulted := range []bool{false, true} {
				var wrap func(sim.System) (sim.System, error)
				label := "nominal"
				if faulted {
					label = "faulted"
					wrap = faults.Wrapper(denseFaults(slots), cell.cfg.Ports, 9)
				}
				for name, src := range shapes {
					seq := runShape(t, cell, src, wrap, 0)
					par := runShape(t, cell, src, wrap, 4)
					requireSameResults(t, label+"/"+name, par, seq)
				}
			}
		})
	}
}

// TestSweepIntraCellSplit runs a one-cell sweep with a large worker
// budget — the shape that triggers the intra-cell split — and checks
// the aggregates equal a plain sequential run of the same cell.
func TestSweepIntraCellSplit(t *testing.T) {
	cell := streamCells(3)[0]
	prov, err := traffic.NewMMPPProvider(cell.mcfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	build := func(x int, seed int64) (sim.Instance, error) {
		return sim.Instance{
			Cfg:        cell.cfg,
			Policies:   cell.policies,
			Provider:   prov,
			FlushEvery: 64,
		}, nil
	}
	sweep := &sim.Sweep{
		Name:        "intra-split",
		XLabel:      "x",
		Xs:          []int{1},
		Seeds:       1,
		BaseSeed:    3,
		Build:       build,
		Parallelism: 8, // 1 cell, 8 workers: the cell gets the budget
	}
	res, err := sweep.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := build(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("%d points, want 1", len(res.Points))
	}
	for _, w := range want {
		got, ok := res.Points[0].Ratio[w.Policy]
		if !ok {
			t.Fatalf("policy %s missing from sweep point", w.Policy)
		}
		if got.Mean != w.Ratio {
			t.Errorf("%s: sweep ratio %v, sequential %v", w.Policy, got.Mean, w.Ratio)
		}
	}
}

// TestRunTraceReportsCursorFailure wires a corrupt stream into the
// harness: a file truncated mid-record must fail the run, not silently
// emit a shorter trace.
func TestRunTraceReportsCursorFailure(t *testing.T) {
	gen, err := traffic.NewMMPP(streamCells(1)[0].mcfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := traffic.Record(gen, 200)
	path := writeTraceFile(t, tr, true)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record, leaving a partial 8-byte record at the tail.
	cut := len(raw) - len(raw)/3
	cut -= (cut - 10) % 8
	cut += 3
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := traffic.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cell := streamCells(1)[0]
	sw, err := core.New(cell.cfg, cell.policies[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunTrace(sw, src, 64); err == nil {
		t.Fatal("truncated stream did not fail the run")
	}
}
