package sim_test

import (
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/policy"
)

// FuzzArriveBatchDifferential fuzzes the batched-vs-per-packet
// equivalence directly: a byte stream is decoded into arbitrary bursts
// (the high bit ends a slot) and replayed through two identically
// configured switches, one stepping via the transactional ArriveBatch
// (policy kernels active) and one via the per-packet Arrive reference,
// both with invariant checking on. Stats must agree after every slot
// and per-port counters at the end. The roster byte picks the policy,
// covering every processing-, value- and combined-model kernel
// (combined takes precedence over valueModel when both bools are set).
func FuzzArriveBatchDifferential(f *testing.F) {
	f.Add(uint8(0), []byte{1, 2, 3, 0x84, 5, 6, 0x81}, false, false)
	f.Add(uint8(4), []byte{9, 9, 9, 9, 0x89, 9, 9, 0x80}, false, false)
	f.Add(uint8(3), []byte{7, 1, 0xff, 2, 2, 2, 0x82}, true, false)
	f.Add(uint8(6), []byte{0x80, 0x80, 13, 21, 34, 0x85}, true, false)
	f.Add(uint8(5), []byte{3, 1, 4, 0x81, 5, 9, 2, 0x86}, false, true)
	f.Add(uint8(6), []byte{0x8f, 7, 7, 7, 0x80, 1, 0x82}, true, true)
	f.Fuzz(func(t *testing.T, polIdx uint8, stream []byte, valueModel, combined bool) {
		var pol core.Policy
		var cfg core.Config
		switch {
		case combined:
			pols := policy.ForCombined()
			pol = pols[int(polIdx)%len(pols)]
			cfg = core.Config{
				Model: core.ModelCombined, Ports: 3, Buffer: 5,
				MaxLabel: 4, Speedup: 2, PortWork: []int{1, 2, 3},
				CheckInvariants: true,
			}
		case valueModel:
			pols := append(policy.ForValueUniform(), policy.NHSTV{}, policy.TVD{})
			pol = pols[int(polIdx)%len(pols)]
			cfg = core.Config{
				Model: core.ModelValue, Ports: 3, Buffer: 5,
				MaxLabel: 4, Speedup: 1, CheckInvariants: true,
			}
		default:
			pols := append(policy.ForProcessing(),
				policy.NHDTW{}, policy.StaticThreshold{T: []int{3, 2, 1}})
			pol = pols[int(polIdx)%len(pols)]
			cfg = core.Config{
				Model: core.ModelProcessing, Ports: 3, Buffer: 5,
				MaxLabel: 4, Speedup: 2, PortWork: []int{1, 2, 3},
				CheckInvariants: true,
			}
		}
		batched := core.MustNew(cfg, pol)
		perPkt := core.MustNew(cfg, pol)

		var burst []pkt.Packet
		flush := func() {
			if errB, errP := batched.ArriveBatch(burst), perPkt.ArriveBurst(burst); errB != nil || errP != nil {
				t.Fatalf("%s: arrival errors: batched=%v per-packet=%v", pol.Name(), errB, errP)
			}
			batched.Transmit()
			perPkt.Transmit()
			if sb, sp := batched.Stats(), perPkt.Stats(); sb != sp {
				t.Fatalf("%s: stats diverged\n batched: %+v\n per-pkt: %+v", pol.Name(), sb, sp)
			}
			burst = burst[:0]
		}
		for _, b := range stream {
			port := int(b) % cfg.Ports
			switch {
			case combined:
				burst = append(burst, pkt.NewWorkValue(port, cfg.PortWork[port], 1+int(b>>2)%cfg.MaxLabel))
			case valueModel:
				burst = append(burst, pkt.NewValue(port, 1+int(b>>2)%cfg.MaxLabel))
			default:
				burst = append(burst, pkt.NewWork(port, cfg.PortWork[port]))
			}
			if b&0x80 != 0 {
				flush()
			}
		}
		flush()

		pb, pp := batched.PortCounters(), perPkt.PortCounters()
		for i := range pb {
			if pb[i] != pp[i] {
				t.Fatalf("%s: port %d counters diverged\n batched: %+v\n per-pkt: %+v", pol.Name(), i, pb[i], pp[i])
			}
		}
	})
}
