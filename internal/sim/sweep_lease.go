package sim

// Distributed sweeps: with Sweep.Ledger set, the (x, seed) grid is
// divided among worker processes through the crash-safe lease ledger
// (internal/lease) instead of an in-process job queue. Each worker
// acquires cells under fencing tokens, heartbeats while running them,
// journals completions durably, and finally merges the whole ledger —
// its own cells and everyone else's — through the same fold as a
// single-process run, so the merged SweepResult is bit-identical to
// running the sweep in one process.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"smbm/internal/lease"
)

// leaseFingerprint renders the sweep's identity as a ledger
// fingerprint, mirroring the checkpoint journal header field for field.
func (s *Sweep) leaseFingerprint() lease.Fingerprint {
	h := s.header()
	return lease.Fingerprint{
		Sweep:    h.Sweep,
		XLabel:   h.XLabel,
		XsHash:   h.XsHash,
		Seeds:    h.Seeds,
		BaseSeed: h.BaseSeed,
		Config:   h.Config,
	}
}

// runLeased executes the sweep as one worker of a distributed run (see
// Sweep.Ledger). Robustness semantics, on top of RunContext's:
//
//   - Cells completed by any worker — this run, a previous incarnation,
//     a process on another machine — are merged, not re-run.
//   - A cell failure consumes one attempt and releases the cell for
//     retry by any worker; a cell whose failures exhaust CellRetries is
//     reported degraded (a warning plus Partial), and the rest of the
//     grid still folds into valid partial tables.
//   - Canceling ctx stops acquiring; running cells abort and their
//     leases are left to expire, so other workers reclaim them after
//     LeaseTTL without the interruption consuming an attempt.
func (s *Sweep) runLeased(ctx context.Context) (*SweepResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.Checkpoint != "" {
		return nil, fmt.Errorf("sim: sweep %q sets both Checkpoint and Ledger; the ledger subsumes checkpointing — drop one", s.Name)
	}
	led, err := lease.Open(lease.Options{
		Dir:         s.Ledger,
		Worker:      s.LedgerWorker,
		Fingerprint: s.leaseFingerprint(),
		TTL:         s.LeaseTTL,
		Retries:     s.CellRetries,
	})
	if err != nil {
		return nil, err
	}
	defer led.Close()

	// The cell list in grid order: Acquire spreads workers across it,
	// Merge partitions it, and xIndex maps a leased cell back to its
	// grid position.
	cells := make([]lease.Cell, 0, len(s.Xs)*s.Seeds)
	xIndex := make(map[int]int, len(s.Xs))
	for xi, x := range s.Xs {
		xIndex[x] = xi
		for si := 0; si < s.Seeds; si++ {
			cells = append(cells, lease.Cell{X: x, SeedIndex: si})
		}
	}
	total := len(cells)

	workers := s.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	// A ledger failure (disk gone, corrupt file) stops this worker's
	// acquisition loop without canceling the caller's ctx.
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()

	var mu sync.Mutex
	var cellErrs []*CellError
	var ledgerErr error
	runDone, failed := 0, 0
	abort := func(err error) {
		mu.Lock()
		if ledgerErr == nil {
			ledgerErr = err
		}
		mu.Unlock()
		stopRun()
	}
	// progressMu serializes Progress deliveries: Sweep.Progress promises
	// the callback never runs concurrently with itself, and the leased
	// path has N worker goroutines reaching cell outcomes. Holding the
	// lock across both the snapshot and the callback also keeps the
	// delivered Done/Failed counters monotone in delivery order.
	var progressMu sync.Mutex
	notify := func(c lease.Cell, err error, results []Result) {
		if s.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		mu.Lock()
		p := SweepProgress{
			Sweep: s.Name, XLabel: s.XLabel,
			X: c.X, SeedIndex: c.SeedIndex,
			Done: runDone, Failed: failed, Total: total,
			Err:     err,
			Results: results,
		}
		mu.Unlock()
		s.Progress(p)
	}

	if s.LedgerObserver {
		// Coordinator: no compute, just wait for the fleet to converge.
		if err := led.Wait(ctx, cells); err != nil {
			return nil, err
		}
		workers = 0
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc Scratch
			for {
				ls, status, err := led.Acquire(runCtx, cells)
				if err != nil {
					if runCtx.Err() == nil {
						abort(err)
					}
					return
				}
				if status == lease.StatusDone {
					return
				}
				// Heartbeats keep the lease alive for as long as the
				// cell actually runs; a renewal failure is advisory (the
				// lease lapses and another worker reclaims the cell).
				stopHB := led.Heartbeat(runCtx, ls)
				res, runErr := s.runCell(runCtx, &sc, xIndex[ls.Cell.X], ls.Cell.SeedIndex, 1)
				stopHB()
				if runErr != nil {
					if runCtx.Err() != nil && errors.Is(runErr, runCtx.Err()) {
						// Interrupted, not failed: leave the lease to
						// expire without consuming an attempt.
						return
					}
					var ce *CellError
					if !errors.As(runErr, &ce) {
						ce = &CellError{Sweep: s.Name, XLabel: s.XLabel, X: ls.Cell.X,
							SeedIndex: ls.Cell.SeedIndex, Seed: s.cellSeed(xIndex[ls.Cell.X], ls.Cell.SeedIndex), Err: runErr}
					}
					mu.Lock()
					cellErrs = append(cellErrs, ce)
					failed++
					mu.Unlock()
					if err := led.Abandon(ls, ce.Error()); err != nil {
						abort(err)
						return
					}
					notify(ls.Cell, ce, nil)
					continue
				}
				payload, err := encodeCellResults(res)
				if err == nil {
					err = led.Complete(ls, payload)
				}
				if err != nil {
					abort(err)
					return
				}
				mu.Lock()
				runDone++
				mu.Unlock()
				notify(ls.Cell, nil, res)
			}
		}()
	}
	wg.Wait()

	// Merge the whole ledger — every worker's cells — and fold through
	// the same deterministic path as a single-process run.
	done, degraded, err := led.Merge(cells)
	if err != nil {
		return nil, err
	}
	grid := make([][][]Result, len(s.Xs))
	okGrid := make([][]bool, len(s.Xs))
	for xi := range s.Xs {
		grid[xi] = make([][]Result, s.Seeds)
		okGrid[xi] = make([]bool, s.Seeds)
	}
	completed := 0
	//smb:nondet-ok payloads land at their cell's fixed grid position, so iteration order cannot reach results
	for c, payload := range done {
		res, err := decodeCellResults(payload)
		if err != nil {
			return nil, fmt.Errorf("sim: ledger %s: cell %s: %w", s.Ledger, c, err)
		}
		grid[xIndex[c.X]][c.SeedIndex] = res
		okGrid[xIndex[c.X]][c.SeedIndex] = true
		completed++
	}
	var warnings []string
	for _, d := range degraded {
		w := fmt.Sprintf("ledger %s: cell %s degraded after %d failed attempts", s.Ledger, d.Cell, d.Attempts)
		if d.LastError != "" {
			w += ": last error: " + d.LastError
		}
		warnings = append(warnings, w)
	}

	out := &SweepResult{Name: s.Name, XLabel: s.XLabel, Partial: completed < total, Warnings: warnings}
	s.fold(out, grid, okGrid)
	counts := led.Counters()
	out.Lease = &counts

	// Deterministic error order: by cell position, not scheduling.
	sort.Slice(cellErrs, func(i, j int) bool {
		if cellErrs[i].X != cellErrs[j].X {
			return cellErrs[i].X < cellErrs[j].X
		}
		return cellErrs[i].SeedIndex < cellErrs[j].SeedIndex
	})
	errs := make([]error, 0, len(cellErrs)+2)
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	for _, ce := range cellErrs {
		errs = append(errs, ce)
	}
	mu.Lock()
	if ledgerErr != nil {
		errs = append(errs, ledgerErr)
	}
	mu.Unlock()
	return out, errors.Join(errs...)
}
