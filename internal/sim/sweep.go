package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"smbm/internal/metrics"
	"smbm/internal/tablefmt"
)

// Sweep describes a one-dimensional parameter sweep replicated over
// seeds: the x-axis of one evaluation panel.
type Sweep struct {
	// Name identifies the experiment ("fig5.1").
	Name string
	// XLabel names the swept parameter ("k", "B", "C").
	XLabel string
	// Xs are the swept values.
	Xs []int
	// Seeds is the number of independent replications per point.
	Seeds int
	// BaseSeed derives per-replication seeds deterministically.
	BaseSeed int64
	// Build constructs the instance for one (x, seed) cell. It must be
	// safe for concurrent use.
	Build func(x int, seed int64) (Instance, error)
	// Parallelism bounds concurrent cells (default: GOMAXPROCS).
	Parallelism int
}

// PointResult aggregates one swept value across seeds.
type PointResult struct {
	// X is the swept parameter value.
	X int
	// Ratio maps policy name to its competitive-ratio summary across
	// seeds.
	Ratio map[string]metrics.Summary
	// Throughput maps policy name to its raw objective summary.
	Throughput map[string]metrics.Summary
	// OptThroughput summarizes the OPT proxy's objective.
	OptThroughput metrics.Summary
}

// SweepResult is a completed sweep.
type SweepResult struct {
	// Name and XLabel echo the sweep.
	Name, XLabel string
	// Policies is the policy order for rendering (taken from the first
	// cell).
	Policies []string
	// Points holds one aggregate per swept value, in Xs order.
	Points []PointResult
}

// Run executes all (x, seed) cells on a bounded worker pool and folds
// replications in deterministic order.
func (s *Sweep) Run() (*SweepResult, error) {
	if len(s.Xs) == 0 {
		return nil, fmt.Errorf("sim: sweep %q has no x values", s.Name)
	}
	if s.Seeds < 1 {
		return nil, fmt.Errorf("sim: sweep %q needs at least one seed", s.Name)
	}
	if s.Build == nil {
		return nil, fmt.Errorf("sim: sweep %q has no Build function", s.Name)
	}
	workers := s.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type cell struct{ xi, si int }
	type outcome struct {
		cell
		results []Result
		err     error
	}

	jobs := make(chan cell)
	outcomes := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				seed := s.BaseSeed + int64(c.xi)*1_000_003 + int64(c.si)*7_919
				inst, err := s.Build(s.Xs[c.xi], seed)
				if err != nil {
					outcomes <- outcome{cell: c, err: err}
					continue
				}
				res, err := inst.Run()
				outcomes <- outcome{cell: c, results: res, err: err}
			}
		}()
	}
	go func() {
		for xi := range s.Xs {
			for si := 0; si < s.Seeds; si++ {
				jobs <- cell{xi, si}
			}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	// Collect into a fixed grid first so the Welford fold order is
	// deterministic regardless of scheduling.
	grid := make([][][]Result, len(s.Xs))
	for i := range grid {
		grid[i] = make([][]Result, s.Seeds)
	}
	var firstErr error
	for o := range outcomes {
		if o.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("sim: sweep %q %s=%d seed %d: %w", s.Name, s.XLabel, s.Xs[o.xi], o.si, o.err)
			}
			continue
		}
		grid[o.xi][o.si] = o.results
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := &SweepResult{Name: s.Name, XLabel: s.XLabel}
	for xi, x := range s.Xs {
		ratios := make(map[string]*metrics.Welford)
		thrs := make(map[string]*metrics.Welford)
		var optW metrics.Welford
		for si := 0; si < s.Seeds; si++ {
			for _, r := range grid[xi][si] {
				if ratios[r.Policy] == nil {
					ratios[r.Policy] = &metrics.Welford{}
					thrs[r.Policy] = &metrics.Welford{}
				}
				ratios[r.Policy].Add(r.Ratio)
				thrs[r.Policy].Add(float64(r.Throughput))
			}
			if len(grid[xi][si]) > 0 {
				optW.Add(float64(grid[xi][si][0].OptThroughput))
			}
		}
		if out.Policies == nil {
			for _, r := range grid[xi][0] {
				out.Policies = append(out.Policies, r.Policy)
			}
		}
		pr := PointResult{
			X:             x,
			Ratio:         make(map[string]metrics.Summary, len(ratios)),
			Throughput:    make(map[string]metrics.Summary, len(thrs)),
			OptThroughput: optW.Summary(),
		}
		for name, w := range ratios {
			pr.Ratio[name] = w.Summary()
		}
		for name, w := range thrs {
			pr.Throughput[name] = w.Summary()
		}
		out.Points = append(out.Points, pr)
	}
	return out, nil
}

// Table renders the sweep as an aligned text table: one row per swept
// value, one column per policy holding the mean competitive ratio
// (± std when more than one seed ran).
func (r *SweepResult) Table() string {
	headers := append([]string{r.XLabel}, r.Policies...)
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		row := make([]string, 0, len(headers))
		row = append(row, strconv.Itoa(p.X))
		for _, name := range r.Policies {
			s := p.Ratio[name]
			cell := formatRatio(s.Mean)
			if s.N > 1 && !math.IsInf(s.Mean, 0) {
				cell += fmt.Sprintf("±%.2f", s.Std)
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return tablefmt.Render(headers, rows)
}

// Series returns (x, mean ratio) pairs for one policy, convenient for
// plotting or asserting trends in tests.
func (r *SweepResult) Series(policy string) (xs []int, means []float64) {
	for _, p := range r.Points {
		if s, ok := p.Ratio[policy]; ok {
			xs = append(xs, p.X)
			means = append(means, s.Mean)
		}
	}
	return xs, means
}

// BestPolicy returns the policy with the lowest mean ratio at each point.
func (r *SweepResult) BestPolicy() []string {
	out := make([]string, len(r.Points))
	for i, p := range r.Points {
		names := make([]string, 0, len(p.Ratio))
		for name := range p.Ratio {
			names = append(names, name)
		}
		sort.Strings(names) // deterministic tie-break
		best, bestMean := "", math.Inf(1)
		for _, name := range names {
			if m := p.Ratio[name].Mean; m < bestMean {
				best, bestMean = name, m
			}
		}
		out[i] = best
	}
	return out
}

func formatRatio(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}
