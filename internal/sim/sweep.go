package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"smbm/internal/metrics"
	"smbm/internal/obs"
	"smbm/internal/tablefmt"
)

// Sweep describes a one-dimensional parameter sweep replicated over
// seeds: the x-axis of one evaluation panel.
type Sweep struct {
	// Name identifies the experiment ("fig5.1").
	Name string
	// XLabel names the swept parameter ("k", "B", "C").
	XLabel string
	// Xs are the swept values.
	Xs []int
	// Seeds is the number of independent replications per point.
	Seeds int
	// BaseSeed derives per-replication seeds deterministically.
	BaseSeed int64
	// Build constructs the instance for one (x, seed) cell. It must be
	// safe for concurrent use.
	Build func(x int, seed int64) (Instance, error)
	// Parallelism bounds concurrent cells (default: GOMAXPROCS).
	Parallelism int
	// CellTimeout bounds each (x, seed) cell's wall-clock run (0 =
	// unbounded). A timed-out cell fails with a CellError naming the
	// cell; the remaining cells keep running.
	CellTimeout time.Duration
	// Checkpoint, when non-empty, journals every completed cell to
	// this file as a JSON line and, on a later run, skips cells already
	// journaled — making paper-scale sweeps resumable after a crash or
	// SIGINT. The journal is keyed by sweep Name, so several sweeps can
	// share one file. Each sweep writes one fingerprint header line
	// (XLabel, Xs digest, Seeds, BaseSeed, ConfigDigest); resuming
	// under changed flags fails loudly naming the differing field.
	Checkpoint string
	// ConfigDigest canonically renders everything Build bakes into a
	// cell that the sweep struct cannot see — B, C, speedup, policy
	// roster, fault spec, trace shape. It rides in the checkpoint
	// fingerprint so a resume after a flag change is refused instead of
	// silently merging stale cells. Leave empty to fingerprint the
	// sweep identity only.
	ConfigDigest string
	// Ledger, when non-empty, runs the sweep through the crash-safe
	// work-leasing ledger in this directory (internal/lease) instead of
	// the single-process pool: several worker processes — each with a
	// distinct LedgerWorker identity — divide the grid cell by cell,
	// surviving worker crashes, hangs and restarts. Mutually exclusive
	// with Checkpoint: the ledger subsumes it (every completed cell is
	// journaled durably and a re-run resumes from the ledger).
	Ledger string
	// LedgerWorker is this process's unique worker identity in the
	// ledger; required when Ledger is set. Two live processes must never
	// share one.
	LedgerWorker string
	// LeaseTTL bounds how long a crashed or hung worker holds a cell
	// before any other worker may reclaim it (0 = lease.DefaultTTL).
	// Healthy workers renew well inside the TTL, so it only needs to
	// exceed heartbeat jitter, not cell runtime.
	LeaseTTL time.Duration
	// CellRetries is the per-cell retry budget for leased runs: a cell
	// whose failed attempts exceed it is reported degraded and omitted
	// from the grid, so partial tables still render (0 =
	// lease.DefaultRetries, negative = no retries).
	CellRetries int
	// LedgerObserver, in leased mode, makes this process a coordinator:
	// it claims no cells, waits for the worker fleet to finish the grid,
	// and merges the ledger into the final result.
	LedgerObserver bool
	// Progress, when non-nil, is called after every cell outcome
	// (completed or failed) with a running progress snapshot — the hook
	// smbsim's expvar publication and per-cell trace dumping hang off.
	// Deliveries are serialized no matter how the sweep executes: a
	// single-process run calls it from the fold goroutine, and a leased
	// run (Ledger set) serializes delivery across its worker
	// goroutines, so the callback may touch state of its own without
	// synchronization. It must be fast — a slow callback stalls cell
	// completion — and must not retain Results beyond the call.
	Progress func(SweepProgress)
	// Obs, when non-nil, is copied into every built instance that does
	// not configure observability itself, attaching decision-counter
	// recorders (and, when TraceEvents > 0, event tracers) to every
	// policy replay of every cell.
	Obs *obs.Options
}

// SweepProgress is the point-in-time view of a running sweep delivered
// to Sweep.Progress after each cell outcome.
type SweepProgress struct {
	// Sweep and XLabel echo the sweep identity.
	Sweep, XLabel string
	// X and SeedIndex identify the cell this notification is about.
	X, SeedIndex int
	// Done counts cells completed by this run so far; Failed counts
	// confined cell failures; Skipped counts cells resumed from the
	// checkpoint journal; Total is the full grid size.
	Done, Failed, Skipped, Total int
	// CheckpointLag counts completed cells whose journal append failed
	// (0 when journaling is off or healthy): a growing lag means a
	// crash would lose that many cells.
	CheckpointLag int
	// Err is the cell's failure (a *CellError), nil when it completed.
	Err error
	// Results are the completed cell's per-policy results (nil on
	// failure). Shared with the sweep's own grid: read, don't mutate.
	Results []Result
}

// CellError is a failure confined to one (x, seed) sweep cell: a Build
// or Run error, a blown per-cell deadline, or a recovered worker panic.
// The sweep keeps running the remaining cells and reports the failure —
// carrying the full cell identity so the offending replication can be
// reproduced in isolation.
type CellError struct {
	// Sweep and XLabel echo the sweep identity.
	Sweep, XLabel string
	// X is the swept value of the failed cell.
	X int
	// SeedIndex is the replication index, Seed the derived RNG seed.
	SeedIndex int
	// Seed is the exact seed passed to Build, for standalone replay.
	Seed int64
	// Stack holds the goroutine stack when the cell panicked (nil for
	// ordinary errors).
	Stack []byte
	// Err is the underlying failure.
	Err error
}

// Error implements error, naming the failed cell.
func (e *CellError) Error() string {
	return fmt.Sprintf("sim: sweep %q cell %s=%d seed[%d]=%d: %v",
		e.Sweep, e.XLabel, e.X, e.SeedIndex, e.Seed, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is / errors.As.
func (e *CellError) Unwrap() error { return e.Err }

// PointResult aggregates one swept value across seeds.
type PointResult struct {
	// X is the swept parameter value.
	X int
	// Ratio maps policy name to its competitive-ratio summary across
	// seeds.
	Ratio map[string]metrics.Summary
	// Throughput maps policy name to its raw objective summary.
	Throughput map[string]metrics.Summary
	// OptThroughput summarizes the OPT proxy's objective.
	OptThroughput metrics.Summary
}

// SweepResult is a completed — or gracefully interrupted — sweep.
type SweepResult struct {
	// Name and XLabel echo the sweep.
	Name, XLabel string
	// Policies is the policy order for rendering (taken from the first
	// completed cell).
	Policies []string
	// Points holds one aggregate per swept value, in Xs order. On a
	// partial run, swept values with no completed cell are omitted and
	// per-point Summary.N reports how many replications made it.
	Points []PointResult
	// Partial reports that not every (x, seed) cell completed — the
	// run was canceled or some cells failed. The Points present are
	// still valid aggregates of the completed cells.
	Partial bool
	// Obs aggregates the per-policy decision counters across every
	// completed cell, keyed by policy name; nil unless the instances
	// attached recorders (Sweep.Obs / Instance.Obs).
	Obs map[string]obs.KindCounts `json:"obs,omitempty"`
	// Warnings carries non-fatal anomalies the run noticed — a legacy
	// checkpoint journal without a fingerprint header, a torn record
	// dropped on resume, a degraded cell — for the caller to surface.
	Warnings []string `json:"warnings,omitempty"`
	// Lease aggregates this process's lease-ledger activity when the
	// sweep ran in leased (distributed) mode; nil otherwise. Like
	// Warnings these are harness-level observations: they never affect
	// the merged Points, which stay bit-identical to a single-process
	// run.
	Lease *obs.LeaseCounts `json:"lease,omitempty"`
}

// Run executes all (x, seed) cells on a bounded worker pool and folds
// replications in deterministic order. It is RunContext without
// cancellation.
func (s *Sweep) Run() (*SweepResult, error) {
	return s.RunContext(context.Background())
}

// cellSeed derives the deterministic RNG seed for cell (xi, si).
func (s *Sweep) cellSeed(xi, si int) int64 {
	return s.BaseSeed + int64(xi)*1_000_003 + int64(si)*7_919
}

// validate rejects malformed sweeps up front with clear errors.
func (s *Sweep) validate() error {
	if len(s.Xs) == 0 {
		return fmt.Errorf("sim: sweep %q has no x values", s.Name)
	}
	seen := make(map[int]bool, len(s.Xs))
	for _, x := range s.Xs {
		if seen[x] {
			return fmt.Errorf("sim: sweep %q has duplicate x value %d", s.Name, x)
		}
		seen[x] = true
	}
	if s.Seeds < 1 {
		return fmt.Errorf("sim: sweep %q needs at least one seed", s.Name)
	}
	if s.Build == nil {
		return fmt.Errorf("sim: sweep %q has no Build function", s.Name)
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("sim: sweep %q has negative Parallelism %d", s.Name, s.Parallelism)
	}
	return nil
}

// runCell executes one (x, seed) cell, converting failures — including
// worker panics and blown per-cell deadlines — into a *CellError that
// names the cell, so one bad replication cannot kill a multi-hour run.
// intra is the cell's share of the sweep's worker budget for fanning
// its replays out in parallel; a Build that sets Parallelism itself
// wins over the split.
func (s *Sweep) runCell(ctx context.Context, sc *Scratch, xi, si, intra int) (res []Result, err error) {
	x, seed := s.Xs[xi], s.cellSeed(xi, si)
	fail := func(e error) *CellError {
		return &CellError{Sweep: s.Name, XLabel: s.XLabel, X: x, SeedIndex: si, Seed: seed, Err: e}
	}
	defer func() {
		if r := recover(); r != nil {
			ce := fail(fmt.Errorf("panic: %v", r))
			ce.Stack = debug.Stack()
			res, err = nil, ce
		}
	}()
	cellCtx := ctx
	if s.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, s.CellTimeout)
		defer cancel()
	}
	inst, err := s.Build(x, seed)
	if err != nil {
		return nil, fail(err)
	}
	if intra > 1 && inst.Parallelism == 0 {
		inst.Parallelism = intra
	}
	if s.Obs != nil && inst.Obs == nil {
		inst.Obs = s.Obs
	}
	res, err = inst.RunScratch(cellCtx, sc)
	if err != nil {
		if ctx.Err() == nil && cellCtx.Err() != nil {
			err = fmt.Errorf("cell deadline %v exceeded: %w", s.CellTimeout, err)
		}
		return nil, fail(err)
	}
	return res, nil
}

// RunContext executes all (x, seed) cells on a bounded worker pool and
// folds replications in deterministic order. Robustness semantics:
//
//   - A cell failure (Build/Run error, blown CellTimeout, or worker
//     panic) is confined to that cell: the remaining cells complete and
//     the failures come back joined in the returned error, each a
//     *CellError naming its (x, seed) cell.
//   - Canceling ctx stops dispatching new cells; cells already running
//     abort at their next slot boundary. The completed cells are
//     returned as a Partial SweepResult alongside ctx's error, instead
//     of being discarded.
//   - With Checkpoint set, completed cells are journaled (fsynced per
//     cell) and a re-run with the same file resumes, skipping journaled
//     cells. A journal append failure aborts the run — losing the disk
//     under a resumable sweep must not silently turn it into a
//     non-resumable one — surfacing the partial-write position.
//   - With Ledger set, the run is delegated to the distributed
//     work-leasing path (runLeased); see the Ledger field.
//
// Whenever the returned SweepResult is non-nil its Points are valid
// aggregates of every completed cell, even when err is non-nil.
func (s *Sweep) RunContext(ctx context.Context) (*SweepResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.Ledger != "" {
		return s.runLeased(ctx)
	}
	workers := s.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// An unrecoverable harness failure mid-run (a journal append error)
	// stops dispatching without canceling the caller's ctx; runCtx is
	// what workers and the dispatcher watch.
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()

	// Resume: prefill the grid from the checkpoint journal — verifying
	// its fingerprint header against the current sweep — and open it
	// for appending new cells.
	var journal *os.File
	var warnings []string
	done := map[cellKey][]Result{}
	if s.Checkpoint != "" {
		j, err := loadCheckpoint(s.Checkpoint, s.header())
		if err != nil {
			return nil, err
		}
		done = j.done
		if j.torn {
			// Drop the torn tail before appending, so the journal stays
			// one-record-per-line for the next resume.
			if err := os.Truncate(s.Checkpoint, j.validSize); err != nil {
				return nil, fmt.Errorf("sim: checkpoint %s: dropping torn final record: %w", s.Checkpoint, err)
			}
			warnings = append(warnings, fmt.Sprintf(
				"checkpoint %s: dropped a torn final record (crash mid-append); %d intact cells resumed", s.Checkpoint, len(done)))
		}
		if !j.hasHeader {
			if _, statErr := os.Stat(s.Checkpoint); statErr == nil {
				// Legacy journal: upgrade it by rewriting to a temp file
				// with the header prepended, fsyncing, and renaming over
				// the original — atomic, so a crash mid-upgrade leaves
				// either the old journal or the new one, never a
				// half-written hybrid.
				if len(done) > 0 {
					warnings = append(warnings, fmt.Sprintf(
						"checkpoint %s: legacy journal has no fingerprint header; cannot verify that its %d cells match the current configuration — resuming on trust", s.Checkpoint, len(done)))
				}
				if err := upgradeCheckpoint(s.Checkpoint, s.header()); err != nil {
					return nil, err
				}
				j.hasHeader = true
			}
		}
		if journal, err = os.OpenFile(s.Checkpoint, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: %w", s.Checkpoint, err)
		}
		defer journal.Close()
		if !j.hasHeader {
			// Fresh journal: the header is simply its first record.
			if err := appendHeader(journal, s.header()); err != nil {
				return nil, err
			}
		}
	}

	type cell struct{ xi, si int }
	type outcome struct {
		cell
		results []Result
		err     error
	}

	// The grid gives the Welford fold a deterministic order regardless
	// of scheduling; okGrid marks which cells actually completed.
	grid := make([][][]Result, len(s.Xs))
	okGrid := make([][]bool, len(s.Xs))
	completed, total := 0, len(s.Xs)*s.Seeds
	var todo []cell
	for xi := range s.Xs {
		grid[xi] = make([][]Result, s.Seeds)
		okGrid[xi] = make([]bool, s.Seeds)
		for si := 0; si < s.Seeds; si++ {
			if res, ok := done[cellKey{s.Xs[xi], si}]; ok {
				grid[xi][si], okGrid[xi][si] = res, true
				completed++
				continue
			}
			todo = append(todo, cell{xi, si})
		}
	}

	// Budget split: with fewer pending cells than workers (the
	// paper-scale shape — one long cell per panel point), spend the
	// spare workers inside the cells, fanning each cell's OPT proxy and
	// per-policy replays out in parallel. Results stay bit-identical
	// because every replay opens its own cursor over the cell's
	// Provider.
	cellWorkers, intra := workers, 1
	if n := len(todo); n > 0 && n < workers {
		cellWorkers = n
		intra = workers / n
	}

	jobs := make(chan cell)
	outcomes := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < cellWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Scratch per worker: cells sharing a configuration
			// reuse its systems; runCell resets them before each use.
			var sc Scratch
			for c := range jobs {
				if runCtx.Err() != nil {
					outcomes <- outcome{cell: c, err: runCtx.Err()}
					continue
				}
				res, err := s.runCell(runCtx, &sc, c.xi, c.si, intra)
				outcomes <- outcome{cell: c, results: res, err: err}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, c := range todo {
			select {
			case jobs <- c:
			case <-runCtx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	var cellErrs []*CellError
	var journalErr error
	skipped := completed
	runDone, failed, journalLag := 0, 0, 0
	notify := func(o outcome, err error) {
		if s.Progress == nil {
			return
		}
		s.Progress(SweepProgress{
			Sweep: s.Name, XLabel: s.XLabel,
			X: s.Xs[o.xi], SeedIndex: o.si,
			Done: runDone, Failed: failed, Skipped: skipped, Total: total,
			CheckpointLag: journalLag,
			Err:           err,
			Results:       o.results,
		})
	}
	for o := range outcomes {
		if o.err != nil {
			// A cancellation-induced abort — the caller's ctx or the
			// internal journal-failure stop — is an interruption, not a
			// cell failure: the cell simply did not complete.
			if runCtx.Err() != nil && errors.Is(o.err, runCtx.Err()) {
				continue
			}
			var ce *CellError
			if !errors.As(o.err, &ce) {
				ce = &CellError{Sweep: s.Name, XLabel: s.XLabel, X: s.Xs[o.xi],
					SeedIndex: o.si, Seed: s.cellSeed(o.xi, o.si), Err: o.err}
			}
			cellErrs = append(cellErrs, ce)
			failed++
			notify(outcome{cell: o.cell}, ce)
			continue
		}
		grid[o.xi][o.si], okGrid[o.xi][o.si] = o.results, true
		completed++
		runDone++
		if journal != nil && journalErr == nil {
			err := appendCheckpoint(journal, s.Name, s.Xs[o.xi], o.si, o.results)
			if err == nil {
				// fsync-on-complete: an acknowledged cell survives a
				// crash or power loss immediately after.
				if serr := journal.Sync(); serr != nil {
					err = fmt.Errorf("sim: checkpoint %s: fsync after cell: %w", s.Checkpoint, serr)
				}
			}
			if err != nil {
				journalErr = err
				journalLag++
				// Keep folding outcomes already in flight, but stop
				// dispatching: burning hours of compute that cannot be
				// journaled under a sweep the caller asked to be
				// resumable is worse than failing loudly now.
				stopRun()
			}
		} else if journal != nil {
			journalLag++
		}
		notify(o, nil)
	}

	out := &SweepResult{Name: s.Name, XLabel: s.XLabel, Partial: completed < total, Warnings: warnings}
	s.fold(out, grid, okGrid)

	// Deterministic error order: by cell position, not scheduling.
	sort.Slice(cellErrs, func(i, j int) bool {
		if cellErrs[i].X != cellErrs[j].X {
			return cellErrs[i].X < cellErrs[j].X
		}
		return cellErrs[i].SeedIndex < cellErrs[j].SeedIndex
	})
	errs := make([]error, 0, len(cellErrs)+2)
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	for _, ce := range cellErrs {
		errs = append(errs, ce)
	}
	if journalErr != nil {
		errs = append(errs, journalErr)
	}
	return out, errors.Join(errs...)
}

// fold aggregates the completed cells of the (Xs × Seeds) grid into
// out: per-point Welford summaries in deterministic grid order, the
// policy roster from the first completed cell, and the accumulated
// decision counters. okGrid marks which grid cells completed; swept
// values with no completed cell are omitted from out.Points. Both the
// single-process pool and the leased (distributed) path fold through
// this one function, which is what makes a merged multi-worker result
// bit-identical to a single-process run.
func (s *Sweep) fold(out *SweepResult, grid [][][]Result, okGrid [][]bool) {
	for xi, x := range s.Xs {
		var any bool
		for si := 0; si < s.Seeds; si++ {
			if okGrid[xi][si] {
				any = true
				break
			}
		}
		if !any {
			continue // no completed cell for this swept value
		}
		ratios := make(map[string]*metrics.Welford)
		thrs := make(map[string]*metrics.Welford)
		var optW metrics.Welford
		for si := 0; si < s.Seeds; si++ {
			for _, r := range grid[xi][si] {
				if ratios[r.Policy] == nil {
					ratios[r.Policy] = &metrics.Welford{}
					thrs[r.Policy] = &metrics.Welford{}
				}
				ratios[r.Policy].Add(r.Ratio)
				thrs[r.Policy].Add(float64(r.Throughput))
				if r.Obs != nil {
					if out.Obs == nil {
						out.Obs = make(map[string]obs.KindCounts)
					}
					c := out.Obs[r.Policy]
					c.Accumulate(r.Obs.Totals)
					out.Obs[r.Policy] = c
				}
			}
			if len(grid[xi][si]) > 0 {
				optW.Add(float64(grid[xi][si][0].OptThroughput))
			}
		}
		if out.Policies == nil {
			for si := 0; si < s.Seeds; si++ {
				if len(grid[xi][si]) > 0 {
					for _, r := range grid[xi][si] {
						out.Policies = append(out.Policies, r.Policy)
					}
					break
				}
			}
		}
		pr := PointResult{
			X:             x,
			Ratio:         make(map[string]metrics.Summary, len(ratios)),
			Throughput:    make(map[string]metrics.Summary, len(thrs)),
			OptThroughput: optW.Summary(),
		}
		//smb:nondet-ok summaries land in a map keyed by the same name, so iteration order cannot reach results
		for name, w := range ratios {
			pr.Ratio[name] = w.Summary()
		}
		//smb:nondet-ok summaries land in a map keyed by the same name, so iteration order cannot reach results
		for name, w := range thrs {
			pr.Throughput[name] = w.Summary()
		}
		out.Points = append(out.Points, pr)
	}
}

// Table renders the sweep as an aligned text table: one row per swept
// value, one column per policy holding the mean competitive ratio
// (± std when more than one seed ran).
func (r *SweepResult) Table() string {
	headers := append([]string{r.XLabel}, r.Policies...)
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		row := make([]string, 0, len(headers))
		row = append(row, strconv.Itoa(p.X))
		for _, name := range r.Policies {
			s := p.Ratio[name]
			cell := formatRatio(s.Mean)
			if s.N > 1 && !math.IsInf(s.Mean, 0) && !math.IsNaN(s.Mean) {
				cell += fmt.Sprintf("±%.2f", s.Std)
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return tablefmt.Render(headers, rows)
}

// Series returns (x, mean ratio) pairs for one policy, convenient for
// plotting or asserting trends in tests. The xs always cover every
// point of the result: a point missing the policy yields a NaN
// placeholder instead of being silently dropped, so series of
// different policies stay aligned for plot and export consumers
// (internal/plot skips NaN samples when rendering). A policy absent
// from every point returns (nil, nil).
func (r *SweepResult) Series(policy string) (xs []int, means []float64) {
	var present bool
	for _, p := range r.Points {
		xs = append(xs, p.X)
		if s, ok := p.Ratio[policy]; ok {
			means = append(means, s.Mean)
			present = true
		} else {
			means = append(means, math.NaN())
		}
	}
	if !present {
		return nil, nil
	}
	return xs, means
}

// BestPolicy returns the policy with the lowest mean ratio at each point.
func (r *SweepResult) BestPolicy() []string {
	out := make([]string, len(r.Points))
	for i, p := range r.Points {
		names := make([]string, 0, len(p.Ratio))
		for name := range p.Ratio {
			names = append(names, name)
		}
		sort.Strings(names) // deterministic tie-break
		best, bestMean := "", math.Inf(1)
		for _, name := range names {
			if m := p.Ratio[name].Mean; m < bestMean {
				best, bestMean = name, m
			}
		}
		out[i] = best
	}
	return out
}

// formatRatio renders a ratio cell, normalizing the non-finite cases:
// strconv would render NaN as "NaN" and -Inf as a misleading numeric
// "-Inf" mid-table, so both are spelled out like "inf" already was.
func formatRatio(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// ObsTable renders the aggregated decision counters as an aligned text
// table — one row per policy in roster order, one column per counter
// lane — or "" when no counters were recorded.
func (r *SweepResult) ObsTable() string {
	if len(r.Obs) == 0 {
		return ""
	}
	headers := []string{"policy", "admits", "drops", "pushouts", "po-work", "po-value", "transmits", "faults"}
	rows := make([][]string, 0, len(r.Obs))
	for _, name := range r.Policies {
		c, ok := r.Obs[name]
		if !ok {
			continue
		}
		rows = append(rows, []string{
			name,
			strconv.FormatUint(c.Admits, 10),
			strconv.FormatUint(c.TailDrops, 10),
			strconv.FormatUint(c.PushOuts, 10),
			strconv.FormatUint(c.PushedOutWork, 10),
			strconv.FormatUint(c.PushedOutValue, 10),
			strconv.FormatUint(c.HOLTransmits, 10),
			strconv.FormatUint(c.FaultEvents, 10),
		})
	}
	return tablefmt.Render(headers, rows)
}

// LeaseTable renders this process's lease-ledger counters as a one-row
// aligned text table, or "" when the sweep did not run in leased mode.
func (r *SweepResult) LeaseTable() string {
	if r.Lease == nil {
		return ""
	}
	headers := []string{"leases", "renewals", "completes", "abandons", "conflicts", "reclaims", "waits"}
	row := []string{
		strconv.FormatUint(r.Lease.Leases, 10),
		strconv.FormatUint(r.Lease.Renewals, 10),
		strconv.FormatUint(r.Lease.Completes, 10),
		strconv.FormatUint(r.Lease.Abandons, 10),
		strconv.FormatUint(r.Lease.Conflicts, 10),
		strconv.FormatUint(r.Lease.Reclaims, 10),
		strconv.FormatUint(r.Lease.Waits, 10),
	}
	return tablefmt.Render(headers, [][]string{row})
}
