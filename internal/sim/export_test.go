package sim

import (
	"strings"
	"testing"
)

func TestSweepCSV(t *testing.T) {
	res, err := testSweep().Run()
	if err != nil {
		t.Fatal(err)
	}
	csv := res.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 1+3 {
		t.Fatalf("%d csv lines:\n%s", len(lines), csv)
	}
	if lines[0] != "x,Greedy_mean,Greedy_std,LWD_mean,LWD_std" {
		t.Errorf("header %q", lines[0])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 4 {
			t.Errorf("row %q has %d commas", line, got)
		}
	}
	if !strings.HasPrefix(lines[1], "2,") {
		t.Errorf("first row %q", lines[1])
	}
}

func TestSweepPlot(t *testing.T) {
	res, err := testSweep().Run()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Plot()
	for _, want := range []string{"test: mean competitive ratio vs x", "* Greedy", "o LWD", "2 .. x = 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}
