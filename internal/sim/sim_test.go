package sim

import (
	"errors"
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/traffic"
)

func procCfg() core.Config {
	return core.Config{
		Model:    core.ModelProcessing,
		Ports:    3,
		Buffer:   6,
		MaxLabel: 3,
		Speedup:  1,
		PortWork: []int{1, 2, 3},
	}
}

func valCfg() core.Config {
	return core.Config{
		Model:    core.ModelValue,
		Ports:    3,
		Buffer:   6,
		MaxLabel: 5,
		Speedup:  1,
	}
}

func TestRunTraceDrainsAtEnd(t *testing.T) {
	sw := core.MustNew(procCfg(), policy.Greedy{})
	tr := traffic.Slots(pkt.Burst(pkt.NewWork(2, 3), 4))
	stats, err := RunTrace(sw, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmitted != 4 {
		t.Errorf("transmitted %d, want 4 (final drain)", stats.Transmitted)
	}
}

func TestRunTracePeriodicFlush(t *testing.T) {
	// Work-3 packets arriving every slot into a length-4 trace. With
	// flushEvery=2 the system drains mid-run, so the heavy queue never
	// exceeds what two slots can deposit.
	sw := core.MustNew(procCfg(), policy.Greedy{})
	tr := traffic.Slots(
		[]pkt.Packet{pkt.NewWork(2, 3)},
		[]pkt.Packet{pkt.NewWork(2, 3)},
		[]pkt.Packet{pkt.NewWork(2, 3)},
		[]pkt.Packet{pkt.NewWork(2, 3)},
	)
	stats, err := RunTrace(sw, tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmitted != 4 {
		t.Errorf("transmitted %d, want 4", stats.Transmitted)
	}
	// The flush slots show up in the slot counter: 4 trace slots plus
	// drain slots.
	if stats.Slots <= 4 {
		t.Errorf("slots %d, want > 4 (flush drains count)", stats.Slots)
	}
}

func TestRunTraceSurfacesErrors(t *testing.T) {
	bad := core.PolicyFunc{PolicyName: "bad", Func: func(core.View, pkt.Packet) core.Decision {
		return core.Accept() // even when full
	}}
	sw := core.MustNew(procCfg(), bad)
	tr := traffic.Slots(pkt.Burst(pkt.NewWork(0, 1), 10))
	if _, err := RunTrace(sw, tr, 0); err == nil {
		t.Error("policy error did not surface")
	}
}

func TestNewOptProxyMatchesModel(t *testing.T) {
	p, err := NewOptProxy(procCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(interface{ Occupancy() int }); !ok {
		t.Error("processing proxy lacks Occupancy")
	}
	v, err := NewOptProxy(valCfg())
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "OPT(SPQ)" {
		t.Errorf("proxy name %q", v.Name())
	}
	if _, err := NewOptProxy(core.Config{}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestInstanceRunProcessing(t *testing.T) {
	inst := Instance{
		Cfg:      procCfg(),
		Policies: []core.Policy{policy.Greedy{}, policy.LWD{}},
		Provider: traffic.Slots(
			pkt.Concat(pkt.Burst(pkt.NewWork(0, 1), 8), pkt.Burst(pkt.NewWork(2, 3), 8)),
			nil, nil,
		),
	}
	results, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Throughput <= 0 {
			t.Errorf("%s throughput %d", r.Policy, r.Throughput)
		}
		if r.Ratio < 1.0-1e-9 && r.OptThroughput >= r.Throughput {
			t.Errorf("%s ratio %v below 1 with opt >= alg", r.Policy, r.Ratio)
		}
		if r.OptThroughput != results[0].OptThroughput {
			t.Error("policies compared against different OPT runs")
		}
	}
}

func TestInstanceRunValueModel(t *testing.T) {
	inst := Instance{
		Cfg:      valCfg(),
		Policies: []core.Policy{policy.MRD{}},
		Provider: traffic.Slots(
			pkt.Concat(pkt.Burst(pkt.NewValue(0, 5), 4), pkt.Burst(pkt.NewValue(1, 1), 8)),
		),
	}
	results, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Throughput == 0 || results[0].OptThroughput == 0 {
		t.Errorf("zero throughput: %+v", results[0])
	}
}

func TestInstanceRunPropagatesErrors(t *testing.T) {
	inst := Instance{
		Cfg:      core.Config{}, // invalid
		Policies: []core.Policy{policy.Greedy{}},
	}
	_, runErr := inst.Run()
	if runErr == nil {
		t.Error("invalid config did not error")
	}
	if !errors.Is(runErr, core.ErrBadConfig) {
		t.Error("error does not wrap ErrBadConfig")
	}
}

func TestRatioConventions(t *testing.T) {
	cases := []struct {
		o, a int64
		want float64
	}{
		{10, 5, 2},
		{0, 0, 1},
		{5, 5, 1},
	}
	for _, c := range cases {
		if got := ratio(c.o, c.a); got != c.want {
			t.Errorf("ratio(%d, %d) = %v, want %v", c.o, c.a, got, c.want)
		}
	}
	if got := ratio(3, 0); !isInf(got) {
		t.Errorf("ratio(3, 0) = %v, want +Inf", got)
	}
}

func isInf(f float64) bool { return f > 1e300 }
