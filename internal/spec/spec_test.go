package spec

import (
	"strings"
	"testing"
)

const minimal = `{
  "name": "my-sweep",
  "model": "processing",
  "sweep": "B",
  "values": [32, 64],
  "k": 8,
  "policies": ["LWD", "LQD"],
  "slots": 400,
  "seeds": 1,
  "traffic": {"sources": 20, "load": 2.0}
}`

func TestLoadMinimal(t *testing.T) {
	e, err := Load(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "my-sweep" || e.Sweep != "B" || len(e.Values) != 2 {
		t.Errorf("parsed %+v", e)
	}
}

func TestLoadRejections(t *testing.T) {
	cases := []struct {
		name, json string
	}{
		{"unknown field", `{"name":"x","model":"processing","sweep":"B","values":[1],"bogus":1}`},
		{"missing name", `{"model":"processing","sweep":"B","values":[8]}`},
		{"bad model", `{"name":"x","model":"quantum","sweep":"B","values":[8]}`},
		{"bad sweep", `{"name":"x","model":"processing","sweep":"q","values":[8]}`},
		{"no values", `{"name":"x","model":"processing","sweep":"B","values":[]}`},
		{"nonpositive value", `{"name":"x","model":"processing","sweep":"B","values":[0]}`},
		{"unknown policy", `{"name":"x","model":"processing","sweep":"B","values":[8],"policies":["NOPE"]}`},
		{"value policy in processing", `{"name":"x","model":"processing","sweep":"B","values":[8],"policies":["MRD"]}`},
		{"portwork in value model", `{"name":"x","model":"value","sweep":"B","values":[8],"port_work":[1,2]}`},
		{"sweep k with portwork", `{"name":"x","model":"processing","sweep":"k","values":[8],"port_work":[1,2]}`},
		{"load and rate", `{"name":"x","model":"processing","sweep":"B","values":[8],"traffic":{"load":2,"rate":5}}`},
		{"bad value label", `{"name":"x","model":"value","sweep":"B","values":[8],"label":"nope"}`},
		{"not json", `hello`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(c.json)); err == nil {
				t.Errorf("accepted: %s", c.json)
			}
		})
	}
}

func TestRunProcessingSpec(t *testing.T) {
	e, err := Load(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := e.ToSweep()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points %d", len(res.Points))
	}
	if len(res.Policies) != 2 || res.Policies[0] != "LWD" {
		t.Errorf("policies %v", res.Policies)
	}
	// The larger buffer must not be more congested.
	if res.Points[1].Ratio["LWD"].Mean > res.Points[0].Ratio["LWD"].Mean*1.2 {
		t.Errorf("ratio grew with buffer: %+v", res.Points)
	}
}

func TestRunValueSpec(t *testing.T) {
	const valueSpec = `{
	  "name": "tiers",
	  "model": "value",
	  "sweep": "C",
	  "values": [1, 2],
	  "k": 8,
	  "B": 64,
	  "label": "by-port",
	  "policies": ["MRD", "MVD", "NHSTV"],
	  "slots": 400,
	  "seeds": 1,
	  "traffic": {"sources": 20, "rate": 20}
	}`
	e, err := Load(strings.NewReader(valueSpec))
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := e.ToSweep()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 3 {
		t.Errorf("policies %v", res.Policies)
	}
	for _, p := range res.Points {
		for name, s := range p.Ratio {
			if s.Mean < 1.0-1e-6 {
				t.Errorf("C=%d %s ratio %v < 1", p.X, name, s.Mean)
			}
		}
	}
}

func TestDefaultRoster(t *testing.T) {
	e, err := Load(strings.NewReader(`{
	  "name": "full", "model": "processing", "sweep": "C", "values": [1],
	  "k": 4, "B": 16, "slots": 100, "seeds": 1, "traffic": {"sources": 5}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := e.ToSweep()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 8 {
		t.Errorf("default roster %v", res.Policies)
	}
}

func TestParams(t *testing.T) {
	e := &Experiment{Sweep: "C"}
	k, b, c := e.params(5)
	if k != 16 || b != 200 || c != 5 {
		t.Errorf("params = %d %d %d", k, b, c)
	}
	e = &Experiment{Sweep: "k", B: 99}
	k, b, c = e.params(7)
	if k != 7 || b != 99 || c != 1 {
		t.Errorf("params = %d %d %d", k, b, c)
	}
}
