// Package spec lets users define custom parameter-sweep experiments in
// JSON and run them through the same harness as the paper's panels
// (cmd/smbsim -spec experiment.json).
//
// A minimal spec:
//
//	{
//	  "name": "my-sweep",
//	  "model": "processing",
//	  "sweep": "B",
//	  "values": [64, 128, 256],
//	  "k": 16,
//	  "policies": ["LWD", "LQD"],
//	  "traffic": {"load": 2.0}
//	}
package spec

import (
	"encoding/json"
	"fmt"
	"io"

	"smbm/internal/core"
	"smbm/internal/hmath"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

// Traffic shapes the MMPP workload of a spec.
type Traffic struct {
	// Sources is the number of on-off sources (default 100).
	Sources int `json:"sources"`
	// Load is the offered load as a multiple of service capacity
	// (default 2.0). Mutually exclusive with Rate.
	Load float64 `json:"load"`
	// Rate is an absolute mean packets/slot; overrides Load when set.
	Rate float64 `json:"rate"`
	// POnOff and POffOn are the per-slot phase-flip probabilities
	// (defaults 0.1 and 0.01).
	POnOff float64 `json:"p_on_off"`
	// POffOn is the off-to-on flip probability (see POnOff).
	POffOn float64 `json:"p_off_on"`
	// Affinity pins each source to one port (default true).
	Affinity *bool `json:"affinity"`
	// PortZipf skews port popularity (Zipf exponent; 0 = uniform).
	PortZipf float64 `json:"port_zipf"`
}

// Experiment is a JSON-definable sweep.
type Experiment struct {
	// Name labels the report.
	Name string `json:"name"`
	// Model is "processing" or "value".
	Model string `json:"model"`
	// Sweep names the swept parameter: "k", "B" or "C".
	Sweep string `json:"sweep"`
	// Values are the swept values.
	Values []int `json:"values"`
	// K, B and C fix the non-swept parameters (defaults: k=16, B=200,
	// C=1). In the value model ports = k.
	K int `json:"k"`
	// B is the shared buffer size (see K).
	B int `json:"B"`
	// C is the per-port service capacity (see K).
	C int `json:"C"`
	// PortWork optionally overrides the contiguous 1..k works
	// (processing model; its length fixes the port count).
	PortWork []int `json:"port_work"`
	// Label selects value-model labeling: "uniform" (default) or
	// "by-port".
	Label string `json:"label"`
	// Policies are resolved by name; empty means the model's full
	// roster.
	Policies []string `json:"policies"`
	// Traffic shapes the workload.
	Traffic Traffic `json:"traffic"`
	// Slots, Seeds, FlushEvery and BaseSeed scale the runs (defaults
	// 4000 / 3 / 1000 / 1).
	Slots int `json:"slots"`
	// Seeds is the number of independent replications (see Slots).
	Seeds int `json:"seeds"`
	// FlushEvery bounds deferred-work backlogs (see Slots).
	FlushEvery int `json:"flush_every"`
	// BaseSeed offsets every replication's seed (see Slots).
	BaseSeed int64 `json:"base_seed"`
}

// Load parses a spec from JSON, rejecting unknown fields.
func Load(r io.Reader) (*Experiment, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var e Experiment
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

func (e *Experiment) validate() error {
	switch {
	case e.Name == "":
		return fmt.Errorf("spec: missing name")
	case e.Model != "processing" && e.Model != "value" && e.Model != "combined":
		return fmt.Errorf("spec: model must be \"processing\", \"value\" or \"combined\", got %q", e.Model)
	case e.Sweep != "k" && e.Sweep != "B" && e.Sweep != "C":
		return fmt.Errorf("spec: sweep must be \"k\", \"B\" or \"C\", got %q", e.Sweep)
	case len(e.Values) == 0:
		return fmt.Errorf("spec: no sweep values")
	case e.Model == "value" && e.PortWork != nil:
		return fmt.Errorf("spec: port_work is a processing-model field")
	case e.Model == "value" && e.Label != "" && e.Label != "uniform" && e.Label != "by-port":
		return fmt.Errorf("spec: label must be \"uniform\" or \"by-port\", got %q", e.Label)
	case e.Model == "combined" && e.Label != "":
		return fmt.Errorf("spec: label is a value-model field")
	case e.Sweep == "k" && e.PortWork != nil:
		return fmt.Errorf("spec: cannot sweep k with explicit port_work")
	case e.Traffic.Load != 0 && e.Traffic.Rate != 0:
		return fmt.Errorf("spec: traffic.load and traffic.rate are mutually exclusive")
	}
	for _, v := range e.Values {
		if v < 1 {
			return fmt.Errorf("spec: sweep value %d < 1", v)
		}
	}
	if _, err := e.resolvePolicies(); err != nil {
		return err
	}
	return nil
}

// resolvePolicies maps names to policies for the spec's model.
func (e *Experiment) resolvePolicies() ([]core.Policy, error) {
	roster := policy.ForProcessing()
	byName := policy.ByName
	switch e.Model {
	case "value":
		roster = policy.ForValueByPort()
		byName = policy.ValueByName
	case "combined":
		roster = policy.ForCombined()
		byName = policy.CombinedByName
	}
	if len(e.Policies) == 0 {
		return roster, nil
	}
	out := make([]core.Policy, 0, len(e.Policies))
	for _, name := range e.Policies {
		p := byName(name)
		if p == nil {
			return nil, fmt.Errorf("spec: unknown %s-model policy %q", e.Model, name)
		}
		out = append(out, p)
	}
	return out, nil
}

// params resolves the (k, B, C) triple for one swept value.
func (e *Experiment) params(x int) (k, b, c int) {
	k, b, c = e.K, e.B, e.C
	if k == 0 {
		k = 16
	}
	if b == 0 {
		b = 200
	}
	if c == 0 {
		c = 1
	}
	switch e.Sweep {
	case "k":
		k = x
	case "B":
		b = x
	case "C":
		c = x
	}
	return k, b, c
}

// ToSweep compiles the spec into a runnable sweep.
func (e *Experiment) ToSweep() (*sim.Sweep, error) {
	policies, err := e.resolvePolicies()
	if err != nil {
		return nil, err
	}
	slots, seeds, flush, baseSeed := e.Slots, e.Seeds, e.FlushEvery, e.BaseSeed
	if slots == 0 {
		slots = 4000
	}
	if seeds == 0 {
		seeds = 3
	}
	if flush == 0 {
		flush = 1000
	}
	if baseSeed == 0 {
		baseSeed = 1
	}
	// The whole spec re-marshaled is its own canonical cell-config
	// digest: struct field order is fixed, so equal specs render equal
	// strings for the checkpoint fingerprint.
	digest, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("spec: digest: %w", err)
	}
	return &sim.Sweep{
		Name:         e.Name,
		XLabel:       e.Sweep,
		Xs:           e.Values,
		Seeds:        seeds,
		BaseSeed:     baseSeed,
		ConfigDigest: string(digest),
		Build: func(x int, seed int64) (sim.Instance, error) {
			k, b, c := e.params(x)
			cfg, mcfg, err := e.buildConfigs(k, b, c, seed)
			if err != nil {
				return sim.Instance{}, err
			}
			prov, err := traffic.NewMMPPProvider(mcfg, slots)
			if err != nil {
				return sim.Instance{}, err
			}
			return sim.Instance{
				Cfg:        cfg,
				Policies:   policies,
				Provider:   prov,
				FlushEvery: flush,
			}, nil
		},
	}, nil
}

// buildConfigs assembles the switch and traffic configurations for one
// cell.
func (e *Experiment) buildConfigs(k, b, c int, seed int64) (core.Config, traffic.MMPPConfig, error) {
	t := e.Traffic
	if t.Sources == 0 {
		t.Sources = 100
	}
	if t.POnOff == 0 {
		t.POnOff = 0.1
	}
	if t.POffOn == 0 {
		t.POffOn = 0.01
	}
	affinity := true
	if t.Affinity != nil {
		affinity = *t.Affinity
	}
	load := t.Load
	if load == 0 && t.Rate == 0 {
		load = 2.0
	}

	var cfg core.Config
	mcfg := traffic.MMPPConfig{
		Sources:      t.Sources,
		POnOff:       t.POnOff,
		POffOn:       t.POffOn,
		MaxLabel:     k,
		PortAffinity: affinity,
		PortZipf:     t.PortZipf,
		Seed:         seed,
	}
	var capacity float64
	if e.Model == "processing" || e.Model == "combined" {
		works := e.PortWork
		if works == nil {
			works = core.ContiguousWorks(k)
		}
		model, label := core.ModelProcessing, traffic.LabelWorkByPort
		if e.Model == "combined" {
			model, label = core.ModelCombined, traffic.LabelWorkValue
		}
		cfg = core.Config{
			Model:    model,
			Ports:    len(works),
			Buffer:   b,
			MaxLabel: k,
			Speedup:  c,
			PortWork: works,
		}
		mcfg.Label = label
		mcfg.Ports = len(works)
		mcfg.PortWork = works
		capacity = float64(c) * hmath.InverseWorkSum(works)
	} else {
		cfg = core.Config{
			Model:    core.ModelValue,
			Ports:    k,
			Buffer:   b,
			MaxLabel: k,
			Speedup:  c,
		}
		mcfg.Label = traffic.LabelValueUniform
		if e.Label == "by-port" {
			mcfg.Label = traffic.LabelValueByPort
		}
		mcfg.Ports = k
		capacity = float64(c) * float64(k)
	}
	rate := t.Rate
	if rate == 0 {
		rate = load * capacity
	}
	mcfg.LambdaOn = mcfg.LambdaForRate(rate)
	return cfg, mcfg, nil
}
