package opt

import (
	"fmt"
	"sort"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

// SPQComb is the combined-model OPT proxy: one shared priority queue
// over the whole buffer with n·C cores, ordered by value density —
// intrinsic value per remaining processing cycle. Each slot every core
// applies one cycle to a distinct densest packet, crediting the
// packet's value on completion; push-out admission evicts a
// least-dense packet when a strictly denser one arrives to a full
// buffer. It generalizes both parents: under unit works density is the
// value (SPQVal's order), under unit values it is 1/residual
// (SPQProc's smallest-work-first order).
//
// State is a 2D histogram res[v][r] counting buffered packets of value
// v and residual work r — both bounded by MaxLabel — walked in a
// density order precomputed at construction, so a transmission phase
// costs O(k² + cores) regardless of occupancy.
type SPQComb struct {
	cfg   core.Config
	cores int
	res   [][]int64  // res[v][r], both 1-based
	order []combCell // all (v, r) cells, densest first
	occ   int
	slot  int64
	stats core.Stats

	// Fault-injection overrides; see SPQProc.
	speedOv  []int
	bufLimit int
}

// combCell is one (value, residual) histogram bucket.
type combCell struct{ v, r int }

// NewSPQComb builds the proxy for the given switch configuration.
func NewSPQComb(cfg core.Config) (*SPQComb, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model != core.ModelCombined {
		return nil, fmt.Errorf("%w: SPQComb requires the combined model", core.ErrBadConfig)
	}
	k := cfg.MaxLabel
	res := make([][]int64, k+1)
	for v := 1; v <= k; v++ {
		res[v] = make([]int64, k+1)
	}
	order := make([]combCell, 0, k*k)
	for v := 1; v <= k; v++ {
		for r := 1; r <= k; r++ {
			order = append(order, combCell{v, r})
		}
	}
	// Densest first (v/r descending, compared by cross-multiplying);
	// ties prefer the higher value, then the smaller residual, so equal
	// densities complete sooner rather than later.
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if d := a.v*b.r - b.v*a.r; d != 0 {
			return d > 0
		}
		if a.v != b.v {
			return a.v > b.v
		}
		return a.r < b.r
	})
	return &SPQComb{
		cfg:   cfg,
		cores: cfg.Ports * cfg.Speedup,
		res:   res,
		order: order,
	}, nil
}

// Name implements the sim.System contract.
func (s *SPQComb) Name() string { return "OPT(SPQ)" }

// Stats returns accumulated counters. TransmittedWork and latency are
// not tracked by the proxy and stay zero.
func (s *SPQComb) Stats() core.Stats { return s.stats }

// Occupancy returns the buffered packet count.
func (s *SPQComb) Occupancy() int { return s.occ }

// SetPortSpeedup overrides port i's contribution to the proxy's core
// budget; see SPQProc.SetPortSpeedup.
func (s *SPQComb) SetPortSpeedup(i, c int) {
	s.speedOv = setPortSpeedup(s.speedOv, s.cfg.Ports, i, c)
}

// ResetSpeedups clears all per-port speedup overrides.
func (s *SPQComb) ResetSpeedups() { resetSpeedups(s.speedOv) }

// SetBufferLimit transiently caps the proxy's effective buffer at b
// packets; b <= 0 restores the configured B.
func (s *SPQComb) SetBufferLimit(b int) { s.bufLimit = clampLimit(b) }

// coreBudget returns the aggregate cores per slot under any active
// overrides.
func (s *SPQComb) coreBudget() int {
	return coreBudget(s.speedOv, s.cfg.Ports, s.cfg.Speedup)
}

// effBuffer returns the effective buffer under any active squeeze.
func (s *SPQComb) effBuffer() int { return effBuffer(s.bufLimit, s.cfg.Buffer) }

// Arrive admits p greedily with push-out of a least-dense packet.
func (s *SPQComb) Arrive(p pkt.Packet) error {
	if err := p.Validate(s.cfg.Ports, s.cfg.MaxLabel); err != nil {
		return err
	}
	s.stats.Arrived++
	if s.occ >= s.effBuffer() {
		// The sparsest occupied cell is the last one in density order.
		worst := combCell{}
		for i := len(s.order) - 1; i >= 0; i-- {
			c := s.order[i]
			if s.res[c.v][c.r] > 0 {
				worst = c
				break
			}
		}
		// Evict only for a strictly denser arrival: v/w > worst.v/worst.r.
		if worst.v == 0 || p.Value*worst.r <= worst.v*p.Work {
			s.stats.Dropped++
			return nil
		}
		s.res[worst.v][worst.r]--
		s.occ--
		s.stats.PushedOut++
	}
	s.res[p.Value][p.Work]++
	s.occ++
	s.stats.Accepted++
	if s.occ > s.stats.MaxOccupancy {
		s.stats.MaxOccupancy = s.occ
	}
	return nil
}

// Step runs one slot: arrivals then transmission.
func (s *SPQComb) Step(arrivals []pkt.Packet) error {
	for _, p := range arrivals {
		if err := s.Arrive(p); err != nil {
			return err
		}
	}
	s.Transmit()
	return nil
}

// Transmit applies one cycle to each of the min(occupancy, cores)
// densest packets, crediting values of the packets that complete.
func (s *SPQComb) Transmit() {
	budget := int64(s.coreBudget())
	for _, c := range s.order {
		if budget <= 0 {
			break
		}
		n := s.res[c.v][c.r]
		if n == 0 {
			continue
		}
		if n > budget {
			n = budget
		}
		budget -= n
		s.res[c.v][c.r] -= n
		s.stats.CyclesUsed += n
		if c.r == 1 {
			s.occ -= int(n)
			s.stats.Transmitted += n
			s.stats.TransmittedValue += n * int64(c.v)
		} else {
			// (v, r-1) is strictly denser than (v, r), so it was already
			// passed earlier in the order: the moved packets cannot
			// receive a second cycle this slot.
			s.res[c.v][c.r-1] += n
		}
	}
	s.slot++
	s.stats.Slots++
}

// Drain transmits with no arrivals until empty, returning slots used.
// See SPQProc.Drain for the blackout caveat.
func (s *SPQComb) Drain() int {
	var slots int
	for s.occ > 0 {
		s.Transmit()
		slots++
	}
	return slots
}

// DrainMax is Drain bounded to at most max transmission phases,
// returning the slots used and whether the proxy actually emptied.
func (s *SPQComb) DrainMax(max int) (int, bool) {
	var slots int
	for s.occ > 0 {
		if slots >= max {
			return slots, false
		}
		s.Transmit()
		slots++
	}
	return slots, true
}

// Reset clears all buffered packets, statistics and fault overrides.
func (s *SPQComb) Reset() {
	for v := 1; v < len(s.res); v++ {
		for r := range s.res[v] {
			s.res[v][r] = 0
		}
	}
	s.occ = 0
	s.slot = 0
	s.stats = core.Stats{}
	s.speedOv = nil
	s.bufLimit = 0
}
