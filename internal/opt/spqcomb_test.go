package opt

import (
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

func combCfg() core.Config {
	return core.Config{
		Model:    core.ModelCombined,
		Ports:    3,
		Buffer:   4,
		MaxLabel: 4,
		Speedup:  1,
		PortWork: []int{1, 2, 3},
	}
}

func TestNewSPQCombRejectsWrongModel(t *testing.T) {
	if _, err := NewSPQComb(procCfg()); err == nil {
		t.Error("SPQComb accepted a processing-model config")
	}
	if _, err := NewSPQComb(valCfg()); err == nil {
		t.Error("SPQComb accepted a value-model config")
	}
}

// TestSPQCombAdmission pins the density push-out rule: a full buffer of
// sparse packets (value 1, work 4) makes way for a strictly denser
// arrival, but an equal- or lower-density one is dropped.
func TestSPQCombAdmission(t *testing.T) {
	s, err := NewSPQComb(combCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Arrive(pkt.NewWorkValue(2, 4, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Density 1/4 arrival against density-1/4 residents: dropped.
	if err := s.Arrive(pkt.NewWorkValue(2, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Dropped != 1 || st.PushedOut != 0 {
		t.Fatalf("equal density: dropped %d pushed %d, want 1/0", st.Dropped, st.PushedOut)
	}
	// Density 3/1 arrival: evicts a sparse resident.
	if err := s.Arrive(pkt.NewWorkValue(0, 1, 3)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PushedOut != 1 || st.Accepted != 5 || st.MaxOccupancy != 4 {
		t.Errorf("pushed %d accepted %d maxocc %d, want 1/5/4", st.PushedOut, st.Accepted, st.MaxOccupancy)
	}
}

// TestSPQCombTransmitDensestFirst pins the service order: with a budget
// of 3 cores per slot, the value-3 work-1 packet and progress on the
// dense work-2 packets precede the sparse work-4 one.
func TestSPQCombTransmitDensestFirst(t *testing.T) {
	cfg := combCfg()
	cfg.Speedup = 1 // 3 ports * 1 = 3 cores
	s, err := NewSPQComb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []pkt.Packet{
		pkt.NewWorkValue(0, 1, 3), // density 3
		pkt.NewWorkValue(1, 2, 4), // density 2
		pkt.NewWorkValue(2, 4, 1), // density 1/4
	} {
		if err := s.Arrive(p); err != nil {
			t.Fatal(err)
		}
	}
	s.Transmit()
	// Slot 1: cycle to (3,1) -> transmit value 3; cycle to (4,2) -> (4,1);
	// third cycle to the now-densest (4,1)? No: (4,1) was already passed
	// in the order this slot, so the remaining cycle goes to (1,4) -> (1,3).
	st := s.Stats()
	if st.Transmitted != 1 || st.TransmittedValue != 3 || st.CyclesUsed != 3 {
		t.Fatalf("slot 1: transmitted %d value %d cycles %d, want 1/3/3", st.Transmitted, st.TransmittedValue, st.CyclesUsed)
	}
	s.Transmit()
	// Slot 2: (4,1) completes crediting 4; (1,3) gets a cycle -> (1,2);
	// no third occupied cell remains un-served.
	st = s.Stats()
	if st.Transmitted != 2 || st.TransmittedValue != 7 {
		t.Fatalf("slot 2: transmitted %d value %d, want 2/7", st.Transmitted, st.TransmittedValue)
	}
	if n := s.Drain(); n != 2 {
		t.Errorf("drained in %d slots, want 2", n)
	}
	st = s.Stats()
	if st.Transmitted != 3 || st.TransmittedValue != 8 || s.Occupancy() != 0 {
		t.Errorf("final: transmitted %d value %d occ %d, want 3/8/0", st.Transmitted, st.TransmittedValue, s.Occupancy())
	}
}

// TestSPQCombDegeneracies: under unit works SPQComb serves and evicts
// exactly like SPQVal (largest value first, evict the minimum), and
// under unit values exactly like SPQProc (smallest residual first,
// evict the largest).
func TestSPQCombDegeneracies(t *testing.T) {
	t.Run("unit-works", func(t *testing.T) {
		cfg := core.Config{
			Model: core.ModelCombined, Ports: 3, Buffer: 3, MaxLabel: 5,
			Speedup: 1, PortWork: []int{1, 1, 1},
		}
		vcfg := cfg
		vcfg.Model = core.ModelValue
		vcfg.PortWork = nil
		comb, err := NewSPQComb(cfg)
		if err != nil {
			t.Fatal(err)
		}
		val, err := NewSPQVal(vcfg)
		if err != nil {
			t.Fatal(err)
		}
		vals := []int{2, 5, 1, 4, 4, 3, 5, 1, 2}
		for i, v := range vals {
			if err := comb.Arrive(pkt.NewWorkValue(i%3, 1, v)); err != nil {
				t.Fatal(err)
			}
			if err := val.Arrive(pkt.NewValue(i%3, v)); err != nil {
				t.Fatal(err)
			}
			if i%4 == 3 {
				comb.Transmit()
				val.Transmit()
			}
		}
		comb.Drain()
		val.Drain()
		sc, sv := comb.Stats(), val.Stats()
		if sc.TransmittedValue != sv.TransmittedValue || sc.Dropped != sv.Dropped || sc.PushedOut != sv.PushedOut {
			t.Errorf("diverged from SPQVal\n comb: %+v\n  val: %+v", sc, sv)
		}
	})
	t.Run("unit-values", func(t *testing.T) {
		cfg := core.Config{
			Model: core.ModelCombined, Ports: 3, Buffer: 3, MaxLabel: 3,
			Speedup: 1, PortWork: []int{1, 2, 3},
		}
		pcfg := cfg
		pcfg.Model = core.ModelProcessing
		comb, err := NewSPQComb(cfg)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := NewSPQProc(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		ports := []int{2, 1, 0, 2, 2, 1, 0, 1, 2}
		for i, q := range ports {
			w := pcfg.PortWork[q]
			if err := comb.Arrive(pkt.NewWorkValue(q, w, 1)); err != nil {
				t.Fatal(err)
			}
			if err := proc.Arrive(pkt.NewWork(q, w)); err != nil {
				t.Fatal(err)
			}
			if i%4 == 3 {
				comb.Transmit()
				proc.Transmit()
			}
		}
		comb.Drain()
		proc.Drain()
		sc, sp := comb.Stats(), proc.Stats()
		if sc.Transmitted != sp.Transmitted || sc.Dropped != sp.Dropped ||
			sc.PushedOut != sp.PushedOut || sc.CyclesUsed != sp.CyclesUsed {
			t.Errorf("diverged from SPQProc\n comb: %+v\n proc: %+v", sc, sp)
		}
	})
}
