package opt

import (
	"fmt"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

// Exact search limits. The exhaustive optimum branches on every
// accept/drop decision; these caps keep the memoized state space small
// enough for tests.
const (
	maxExactPorts    = 4
	maxExactBuffer   = 8
	maxExactLabel    = 8
	maxExactSlots    = 12
	maxExactArrivals = 26
)

// ExactProcessing returns the maximum number of packets any offline
// algorithm can transmit on the given per-slot arrival trace, including a
// full drain after the last slot. Offline OPT never benefits from
// push-out (it can simply not admit a packet it would later evict), so
// the search branches only on accept/drop per arrival.
//
// Only tiny instances are supported; an error is returned when the
// instance exceeds the documented caps.
func ExactProcessing(cfg core.Config, trace [][]pkt.Packet) (int64, error) {
	if err := checkExact(cfg, trace, core.ModelProcessing); err != nil {
		return 0, err
	}
	works := make([]int, cfg.Ports)
	for i := range works {
		works[i] = 1
	}
	if cfg.PortWork != nil {
		copy(works, cfg.PortWork)
	}
	e := &exactProc{cfg: cfg, works: works, trace: trace, memo: make(map[string]int64)}
	// State: per queue, (length, head-of-line residual).
	st := make([]byte, 2*cfg.Ports)
	return e.best(0, 0, st, 0), nil
}

type exactProc struct {
	cfg   core.Config
	works []int
	trace [][]pkt.Packet
	memo  map[string]int64
}

// best returns the maximum future transmissions from the decision point
// just before arrival idx of slot.
func (e *exactProc) best(slot, idx int, st []byte, occ int) int64 {
	if slot == len(e.trace) {
		return e.drain(st)
	}
	key := fmt.Sprintf("%d.%d.%s", slot, idx, st)
	if v, ok := e.memo[key]; ok {
		return v
	}
	var out int64
	if idx < len(e.trace[slot]) {
		p := e.trace[slot][idx]
		// Option 1: drop.
		out = e.best(slot, idx+1, st, occ)
		// Option 2: accept, if there is room.
		if occ < e.cfg.Buffer {
			st2 := append([]byte(nil), st...)
			q := p.Port
			st2[2*q]++
			if st2[2*q] == 1 {
				st2[2*q+1] = byte(e.works[q])
			}
			if got := e.best(slot, idx+1, st2, occ+1); got > out {
				out = got
			}
		}
	} else {
		st2 := append([]byte(nil), st...)
		sent := e.transmit(st2)
		out = sent + e.best(slot+1, 0, st2, occ-int(sent))
	}
	e.memo[key] = out
	return out
}

// transmit applies one transmission phase in place and returns the number
// of packets completed.
func (e *exactProc) transmit(st []byte) int64 {
	var sent int64
	for q := 0; q < e.cfg.Ports; q++ {
		budget := e.cfg.Speedup
		for budget > 0 && st[2*q] > 0 {
			hol := int(st[2*q+1])
			use := min(budget, hol)
			hol -= use
			budget -= use
			if hol > 0 {
				st[2*q+1] = byte(hol)
				break
			}
			st[2*q]--
			sent++
			if st[2*q] > 0 {
				st[2*q+1] = byte(e.works[q])
			} else {
				st[2*q+1] = 0
			}
		}
	}
	return sent
}

func (e *exactProc) drain(st []byte) int64 {
	st2 := append([]byte(nil), st...)
	var sent int64
	for {
		got := e.transmit(st2)
		sent += got
		if got == 0 {
			empty := true
			for q := 0; q < e.cfg.Ports; q++ {
				if st2[2*q] > 0 {
					empty = false
					break
				}
			}
			if empty {
				return sent
			}
		}
	}
}

// ExactValue returns the maximum total value any offline algorithm can
// transmit on the given per-slot arrival trace, including a full drain.
// Same caps and push-out argument as ExactProcessing.
func ExactValue(cfg core.Config, trace [][]pkt.Packet) (int64, error) {
	if err := checkExact(cfg, trace, core.ModelValue); err != nil {
		return 0, err
	}
	e := &exactVal{cfg: cfg, trace: trace, memo: make(map[string]int64)}
	// State: per queue, count of each value 1..k.
	st := make([]byte, cfg.Ports*cfg.MaxLabel)
	return e.best(0, 0, st, 0), nil
}

type exactVal struct {
	cfg   core.Config
	trace [][]pkt.Packet
	memo  map[string]int64
}

func (e *exactVal) best(slot, idx int, st []byte, occ int) int64 {
	if slot == len(e.trace) {
		return e.drain(st)
	}
	key := fmt.Sprintf("%d.%d.%s", slot, idx, st)
	if v, ok := e.memo[key]; ok {
		return v
	}
	var out int64
	if idx < len(e.trace[slot]) {
		p := e.trace[slot][idx]
		out = e.best(slot, idx+1, st, occ)
		if occ < e.cfg.Buffer {
			st2 := append([]byte(nil), st...)
			st2[p.Port*e.cfg.MaxLabel+p.Value-1]++
			if got := e.best(slot, idx+1, st2, occ+1); got > out {
				out = got
			}
		}
	} else {
		st2 := append([]byte(nil), st...)
		sent, cnt := e.transmit(st2)
		out = sent + e.best(slot+1, 0, st2, occ-cnt)
	}
	e.memo[key] = out
	return out
}

// transmit pops up to Speedup maximum values from each queue, returning
// (total value, packet count).
func (e *exactVal) transmit(st []byte) (int64, int) {
	var (
		value int64
		count int
	)
	k := e.cfg.MaxLabel
	for q := 0; q < e.cfg.Ports; q++ {
		budget := e.cfg.Speedup
		for v := k; v >= 1 && budget > 0; v-- {
			idx := q*k + v - 1
			for st[idx] > 0 && budget > 0 {
				st[idx]--
				value += int64(v)
				count++
				budget--
			}
		}
	}
	return value, count
}

func (e *exactVal) drain(st []byte) int64 {
	st2 := append([]byte(nil), st...)
	var total int64
	for {
		v, c := e.transmit(st2)
		total += v
		if c == 0 {
			return total
		}
	}
}

func checkExact(cfg core.Config, trace [][]pkt.Packet, want core.Model) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Model != want {
		return fmt.Errorf("%w: exact solver model mismatch: have %v, want %v", core.ErrBadConfig, cfg.Model, want)
	}
	if cfg.Ports > maxExactPorts || cfg.Buffer > maxExactBuffer || cfg.MaxLabel > maxExactLabel || len(trace) > maxExactSlots {
		return fmt.Errorf("opt: instance too large for exact search (ports<=%d, B<=%d, k<=%d, slots<=%d)",
			maxExactPorts, maxExactBuffer, maxExactLabel, maxExactSlots)
	}
	var arrivals int
	for _, slot := range trace {
		arrivals += len(slot)
		for _, p := range slot {
			if err := p.Validate(cfg.Ports, cfg.MaxLabel); err != nil {
				return err
			}
		}
	}
	if arrivals > maxExactArrivals {
		return fmt.Errorf("opt: %d arrivals exceed exact search cap %d", arrivals, maxExactArrivals)
	}
	return nil
}
