package opt

import (
	"testing"

	"smbm/internal/pkt"
)

func TestSPQProcSpeedupOverrides(t *testing.T) {
	s, err := NewSPQProc(procCfg()) // 3 ports, speedup 1: 3 cores
	if err != nil {
		t.Fatal(err)
	}
	if got := s.coreBudget(); got != 3 {
		t.Fatalf("nominal budget %d, want 3", got)
	}
	s.SetPortSpeedup(0, 0)
	if got := s.coreBudget(); got != 2 {
		t.Errorf("budget with one port dark %d, want 2", got)
	}
	s.SetPortSpeedup(1, 0)
	s.SetPortSpeedup(2, 0)
	// All cores dark: nothing transmits, DrainMax reports the stall.
	if err := s.Step([]pkt.Packet{pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if tx := s.Stats().Transmitted; tx != 0 {
		t.Errorf("blacked-out proxy transmitted %d", tx)
	}
	if _, drained := s.DrainMax(8); drained {
		t.Error("drain under total blackout claimed to empty")
	}
	s.ResetSpeedups()
	if got := s.coreBudget(); got != 3 {
		t.Errorf("reset budget %d, want 3", got)
	}
	if _, drained := s.DrainMax(8); !drained {
		t.Error("restored proxy did not drain")
	}
}

func TestSPQProcBufferSqueeze(t *testing.T) {
	s, err := NewSPQProc(procCfg()) // B = 4
	if err != nil {
		t.Fatal(err)
	}
	s.SetBufferLimit(2)
	for i := 0; i < 4; i++ {
		if err := s.Arrive(pkt.NewWork(2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if occ := s.Occupancy(); occ != 2 {
		t.Errorf("squeezed occupancy %d, want 2", occ)
	}
	// A smaller packet still pushes out under the squeezed bound.
	if err := s.Arrive(pkt.NewWork(0, 1)); err != nil {
		t.Fatal(err)
	}
	if po := s.Stats().PushedOut; po != 1 {
		t.Errorf("pushed out %d, want 1", po)
	}
	if occ := s.Occupancy(); occ != 2 {
		t.Errorf("occupancy after push-out %d, want 2", occ)
	}
	s.SetBufferLimit(0)
	for i := 0; i < 2; i++ {
		if err := s.Arrive(pkt.NewWork(2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if occ := s.Occupancy(); occ != 4 {
		t.Errorf("restored occupancy %d, want 4", occ)
	}
}

func TestSPQValOverrides(t *testing.T) {
	s, err := NewSPQVal(valCfg()) // 3 ports, speedup 1, B = 4
	if err != nil {
		t.Fatal(err)
	}
	s.SetPortSpeedup(0, 0)
	s.SetPortSpeedup(1, 0)
	s.SetPortSpeedup(2, 0)
	if err := s.Step([]pkt.Packet{pkt.NewValue(0, 5), pkt.NewValue(1, 4)}); err != nil {
		t.Fatal(err)
	}
	if tx := s.Stats().Transmitted; tx != 0 {
		t.Errorf("blacked-out proxy transmitted %d", tx)
	}
	if _, drained := s.DrainMax(8); drained {
		t.Error("drain under total blackout claimed to empty")
	}
	s.ResetSpeedups()
	if _, drained := s.DrainMax(8); !drained {
		t.Error("restored proxy did not drain")
	}

	s.SetBufferLimit(1)
	if err := s.Arrive(pkt.NewValue(0, 2)); err != nil {
		t.Fatal(err)
	}
	// The buffer reads full at the squeezed limit: a cheaper packet
	// drops, a dearer one pushes out.
	if err := s.Arrive(pkt.NewValue(0, 1)); err != nil {
		t.Fatal(err)
	}
	if d := s.Stats().Dropped; d != 1 {
		t.Errorf("dropped %d, want 1", d)
	}
	if err := s.Arrive(pkt.NewValue(0, 5)); err != nil {
		t.Fatal(err)
	}
	if po := s.Stats().PushedOut; po != 1 {
		t.Errorf("pushed out %d, want 1", po)
	}
	if occ := s.Occupancy(); occ != 1 {
		t.Errorf("squeezed occupancy %d, want 1", occ)
	}
}
