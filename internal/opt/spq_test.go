package opt

import (
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

func procCfg() core.Config {
	return core.Config{
		Model:    core.ModelProcessing,
		Ports:    3,
		Buffer:   4,
		MaxLabel: 3,
		Speedup:  1,
		PortWork: []int{1, 2, 3},
	}
}

func valCfg() core.Config {
	return core.Config{
		Model:    core.ModelValue,
		Ports:    3,
		Buffer:   4,
		MaxLabel: 5,
		Speedup:  1,
	}
}

func TestNewSPQRejectsWrongModel(t *testing.T) {
	if _, err := NewSPQProc(valCfg()); err == nil {
		t.Error("SPQProc accepted a value-model config")
	}
	if _, err := NewSPQVal(procCfg()); err == nil {
		t.Error("SPQVal accepted a processing-model config")
	}
	if _, err := NewSPQProc(core.Config{}); err == nil {
		t.Error("SPQProc accepted a zero config")
	}
}

func TestSPQProcAdmission(t *testing.T) {
	s, err := NewSPQProc(procCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fill with four work-3 packets, then offer a work-1: the largest
	// residual must make way.
	for i := 0; i < 4; i++ {
		if err := s.Arrive(pkt.NewWork(2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Arrive(pkt.NewWork(0, 1)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PushedOut != 1 || st.Accepted != 5 {
		t.Errorf("pushed %d accepted %d, want 1/5", st.PushedOut, st.Accepted)
	}
	if s.Occupancy() != 4 {
		t.Errorf("occupancy %d, want 4", s.Occupancy())
	}
	// A work-3 packet cannot displace anything now (worst residual 3).
	if err := s.Arrive(pkt.NewWork(2, 3)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Dropped; got != 1 {
		t.Errorf("dropped %d, want 1", got)
	}
}

func TestSPQProcServesSmallestFirst(t *testing.T) {
	// 3 cores (3 ports x speedup 1); packets of works 1, 2, 3, 3.
	s, err := NewSPQProc(procCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{3, 1, 2, 3} {
		if err := s.Arrive(pkt.NewWork(w-1, w)); err != nil {
			t.Fatal(err)
		}
	}
	s.Transmit()
	// Cores serve residuals {1,2,3}; the work-1 packet completes.
	if got := s.Stats().Transmitted; got != 1 {
		t.Errorf("transmitted %d, want 1", got)
	}
	s.Transmit()
	// Residuals were {1,2,3}: the former work-2 completes.
	if got := s.Stats().Transmitted; got != 2 {
		t.Errorf("transmitted %d, want 2", got)
	}
	if got := s.Drain(); got != 2 {
		t.Errorf("drain took %d slots, want 2", got)
	}
	if got := s.Stats().Transmitted; got != 4 {
		t.Errorf("total transmitted %d, want 4", got)
	}
}

func TestSPQProcOneCyclePerPacketPerSlot(t *testing.T) {
	// 4 packets of work 2, 3 cores: a packet cannot absorb two cycles
	// in one slot, so slot 1 completes nothing.
	s, err := NewSPQProc(procCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Arrive(pkt.NewWork(1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	s.Transmit()
	if got := s.Stats().Transmitted; got != 0 {
		t.Errorf("slot 1 transmitted %d, want 0", got)
	}
	if got := s.Stats().CyclesUsed; got != 3 {
		t.Errorf("cycles used %d, want 3", got)
	}
	s.Transmit()
	// Residuals now {1,1,1,2}: three cores finish the three 1s.
	if got := s.Stats().Transmitted; got != 3 {
		t.Errorf("slot 2 transmitted %d, want 3", got)
	}
}

func TestSPQProcReset(t *testing.T) {
	s, err := NewSPQProc(procCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step([]pkt.Packet{pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Occupancy() != 0 || s.Stats().Arrived != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestSPQValAdmissionAndOrder(t *testing.T) {
	s, err := NewSPQVal(valCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{2, 4, 1, 3} {
		if err := s.Arrive(pkt.NewValue(0, v)); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer full; a 5 displaces the 1, another 1 is dropped.
	if err := s.Arrive(pkt.NewValue(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Arrive(pkt.NewValue(1, 1)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PushedOut != 1 || st.Dropped != 1 {
		t.Errorf("pushed %d dropped %d, want 1/1", st.PushedOut, st.Dropped)
	}
	// 3 cores: the top three values {5,4,3} go first.
	s.Transmit()
	if got := s.Stats().TransmittedValue; got != 12 {
		t.Errorf("slot 1 value %d, want 12", got)
	}
	if got := s.Drain(); got != 1 {
		t.Errorf("drain took %d slots, want 1", got)
	}
	if got := s.Stats().TransmittedValue; got != 14 {
		t.Errorf("total value %d, want 14", got)
	}
}

func TestSPQValReset(t *testing.T) {
	s, err := NewSPQVal(valCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step([]pkt.Packet{pkt.NewValue(0, 3)}); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Occupancy() != 0 || s.Stats().Arrived != 0 {
		t.Error("Reset did not clear state")
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestSPQRejectsInvalidPackets(t *testing.T) {
	s, err := NewSPQProc(procCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Arrive(pkt.NewWork(9, 1)); err == nil {
		t.Error("invalid port accepted")
	}
	v, err := NewSPQVal(valCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Arrive(pkt.NewValue(0, 99)); err == nil {
		t.Error("invalid value accepted")
	}
}
