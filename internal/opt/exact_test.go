package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/traffic"
)

func tinyProcCfg() core.Config {
	return core.Config{
		Model:    core.ModelProcessing,
		Ports:    3,
		Buffer:   4,
		MaxLabel: 3,
		Speedup:  1,
		PortWork: []int{1, 2, 3},
	}
}

func tinyValCfg() core.Config {
	return core.Config{
		Model:    core.ModelValue,
		Ports:    3,
		Buffer:   4,
		MaxLabel: 4,
		Speedup:  1,
	}
}

func TestExactProcessingHandComputed(t *testing.T) {
	cfg := tinyProcCfg()

	t.Run("everything fits", func(t *testing.T) {
		tr := traffic.Slots([]pkt.Packet{pkt.NewWork(0, 1), pkt.NewWork(1, 2)})
		got, err := ExactProcessing(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got != 2 {
			t.Errorf("got %d, want 2", got)
		}
	})

	t.Run("overload picks the cheap packets", func(t *testing.T) {
		// 6 unit-work packets into B=4, one slot, then drain: OPT
		// transmits 1 during the slot and 3 more from the buffer.
		tr := traffic.Slots(pkt.Burst(pkt.NewWork(0, 1), 6))
		got, err := ExactProcessing(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got != 4 {
			t.Errorf("got %d, want 4 (buffer bound)", got)
		}
	})

	t.Run("declining expensive packets pays off", func(t *testing.T) {
		// Ports {1,3}, B=2. Slot 0 offers two work-3 packets; slots
		// 1..5 offer one work-1 packet each. Greedy hoards both 3s,
		// which serialize in one FIFO queue and keep the buffer full
		// through slots 1-2: it ends with 2 threes + 3 ones = 5.
		// The optimum declines one 3 and collects all five 1s: 6.
		small := core.Config{
			Model: core.ModelProcessing, Ports: 2, Buffer: 2,
			MaxLabel: 3, Speedup: 1, PortWork: []int{1, 3},
		}
		tr := traffic.Slots(
			pkt.Burst(pkt.NewWork(1, 3), 2),
			[]pkt.Packet{pkt.NewWork(0, 1)},
			[]pkt.Packet{pkt.NewWork(0, 1)},
			[]pkt.Packet{pkt.NewWork(0, 1)},
			[]pkt.Packet{pkt.NewWork(0, 1)},
			[]pkt.Packet{pkt.NewWork(0, 1)},
		)
		got, err := ExactProcessing(small, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got != 6 {
			t.Errorf("exact = %d, want 6", got)
		}
		if greedy := runPolicy(t, small, policy.Greedy{}, tr); greedy != 5 {
			t.Errorf("greedy = %d, want 5", greedy)
		}
	})
}

func TestExactValueHandComputed(t *testing.T) {
	cfg := tinyValCfg()
	// One slot: values 4,3,2,1,1 offered into B=4. OPT keeps {4,3,2,1},
	// transmits 4 in slot 0 (one queue... all to port 0: PQ pops 4),
	// drains 3+2+1.
	tr := traffic.Slots([]pkt.Packet{
		pkt.NewValue(0, 4), pkt.NewValue(0, 3), pkt.NewValue(0, 2),
		pkt.NewValue(0, 1), pkt.NewValue(0, 1),
	})
	got, err := ExactValue(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("got %d, want 10", got)
	}
	// Spreading over ports transmits in parallel but value is capped by
	// the buffer anyway.
	tr = traffic.Slots([]pkt.Packet{
		pkt.NewValue(0, 4), pkt.NewValue(1, 4), pkt.NewValue(2, 4),
		pkt.NewValue(0, 4), pkt.NewValue(1, 4),
	})
	got, err = ExactValue(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Errorf("got %d, want 16 (4 of the five 4s fit)", got)
	}
}

func TestExactCaps(t *testing.T) {
	big := tinyProcCfg()
	big.Ports = 5
	big.PortWork = []int{1, 1, 1, 1, 1}
	big.Buffer = 8
	if _, err := ExactProcessing(big, nil); err == nil {
		t.Error("ports over cap accepted")
	}
	cfg := tinyProcCfg()
	long := make(traffic.Trace, maxExactSlots+1)
	if _, err := ExactProcessing(cfg, long); err == nil {
		t.Error("slots over cap accepted")
	}
	dense := traffic.Slots(pkt.Burst(pkt.NewWork(0, 1), maxExactArrivals+1))
	if _, err := ExactProcessing(cfg, dense); err == nil {
		t.Error("arrivals over cap accepted")
	}
	if _, err := ExactProcessing(tinyValCfg(), nil); err == nil {
		t.Error("model mismatch accepted")
	}
	if _, err := ExactValue(tinyProcCfg(), nil); err == nil {
		t.Error("model mismatch accepted")
	}
	bad := traffic.Slots([]pkt.Packet{pkt.NewWork(9, 1)})
	if _, err := ExactProcessing(cfg, bad); err == nil {
		t.Error("invalid packet accepted")
	}
}

// randomTinyTrace builds a small random trace legal for cfg.
func randomTinyTrace(rng *rand.Rand, cfg core.Config, slots, maxBurst int) traffic.Trace {
	tr := make(traffic.Trace, slots)
	for s := range tr {
		burst := make([]pkt.Packet, rng.Intn(maxBurst+1))
		for i := range burst {
			port := rng.Intn(cfg.Ports)
			if cfg.Model == core.ModelValue {
				burst[i] = pkt.NewValue(port, 1+rng.Intn(cfg.MaxLabel))
			} else {
				burst[i] = pkt.NewWork(port, cfg.PortWork[port])
			}
		}
		tr[s] = burst
	}
	return tr
}

// runPolicy drives one policy over the trace with a final drain and
// returns its objective.
func runPolicy(t *testing.T, cfg core.Config, p core.Policy, tr traffic.Trace) int64 {
	t.Helper()
	sw := core.MustNew(cfg, p)
	for _, burst := range tr {
		if err := sw.Step(burst); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
	sw.Drain()
	return sw.Stats().Throughput(cfg.Model)
}

// TestQuickExactDominatesOnlinePolicies: the offline optimum is an upper
// bound for every online policy on every instance.
func TestQuickExactDominatesOnlinePolicies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := tinyProcCfg()
		tr := randomTinyTrace(rng, cfg, 4, 4)
		exact, err := ExactProcessing(cfg, tr)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, p := range policy.ForProcessing() {
			if got := runPolicy(t, cfg, p, tr); got > exact {
				t.Logf("%s transmitted %d > exact %d", p.Name(), got, exact)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(120)); err != nil {
		t.Error(err)
	}
}

// TestSPQProxyIsNotAStrictUpperBound pins down a subtle methodology
// fact: the paper's OPT proxy (single priority queue, smallest-first,
// n·C cores) is NOT a strict upper bound on the shared-memory offline
// optimum. Smallest-first transmission is suboptimal with multiple
// cores: on this instance, investing a cycle in a work-2 packet instead
// of completing a second work-1 packet lets the buffer flush three
// packets at once one slot later, freeing space for the final burst.
// The paper phrases the proxy's superiority as an empirical observation
// under congestion ("it may perform even better than optimal"), not a
// theorem; this test documents the gap so nobody "fixes" the harness
// into asserting dominance.
func TestSPQProxyIsNotAStrictUpperBound(t *testing.T) {
	cfg := tinyProcCfg()
	tr := traffic.Slots(
		[]pkt.Packet{pkt.NewWork(2, 3)},
		[]pkt.Packet{pkt.NewWork(0, 1), pkt.NewWork(1, 2), pkt.NewWork(1, 2), pkt.NewWork(0, 1)},
		[]pkt.Packet{pkt.NewWork(2, 3)},
		[]pkt.Packet{pkt.NewWork(0, 1), pkt.NewWork(0, 1), pkt.NewWork(1, 2)},
	)
	exact, err := ExactProcessing(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	spq, err := NewSPQProc(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, burst := range tr {
		if err := spq.Step(burst); err != nil {
			t.Fatal(err)
		}
	}
	spq.Drain()
	if got := spq.Stats().Transmitted; got != 7 || exact != 8 {
		t.Errorf("SPQ = %d (want 7), exact = %d (want 8)", got, exact)
	}
}

// TestQuickLWDTwoCompetitive is Theorem 7 as an executable invariant:
// on every instance, LWD transmits at least half of the true offline
// optimum.
func TestQuickLWDTwoCompetitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := tinyProcCfg()
		tr := randomTinyTrace(rng, cfg, 5, 4)
		exact, err := ExactProcessing(cfg, tr)
		if err != nil {
			t.Log(err)
			return false
		}
		lwd := runPolicy(t, cfg, policy.LWD{}, tr)
		if 2*lwd < exact {
			t.Logf("LWD %d vs exact %d violates 2-competitiveness", lwd, exact)
			return false
		}
		return true
	}
	if err := quick.Check(f, qcfg(200)); err != nil {
		t.Error(err)
	}
}

// TestQuickValueExactDominates mirrors the sandwich in the value model.
func TestQuickValueExactDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := tinyValCfg()
		tr := randomTinyTrace(rng, cfg, 4, 4)
		exact, err := ExactValue(cfg, tr)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, p := range policy.ForValueByPort() {
			if got := runPolicy(t, cfg, p, tr); got > exact {
				t.Logf("%s value %d > exact %d", p.Name(), got, exact)
				return false
			}
		}
		spq, err := NewSPQVal(cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, burst := range tr {
			if err := spq.Step(burst); err != nil {
				t.Log(err)
				return false
			}
		}
		spq.Drain()
		if spq.Stats().TransmittedValue < exact {
			t.Logf("SPQ %d < exact %d", spq.Stats().TransmittedValue, exact)
			return false
		}
		return true
	}
	if err := quick.Check(f, qcfg(120)); err != nil {
		t.Error(err)
	}
}

// qcfg returns a deterministic quick.Config so property tests are
// reproducible run to run.
func qcfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(7))}
}
