package opt

import (
	"math/rand"
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

func BenchmarkSPQProcStep(b *testing.B) {
	cfg := core.Config{
		Model: core.ModelProcessing, Ports: 16, Buffer: 256,
		MaxLabel: 16, Speedup: 1, PortWork: core.ContiguousWorks(16),
	}
	s, err := NewSPQProc(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	burst := make([]pkt.Packet, 32)
	for i := range burst {
		port := rng.Intn(16)
		burst[i] = pkt.NewWork(port, port+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(burst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPQValStep(b *testing.B) {
	cfg := core.Config{Model: core.ModelValue, Ports: 16, Buffer: 256, MaxLabel: 16, Speedup: 1}
	s, err := NewSPQVal(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	burst := make([]pkt.Packet, 32)
	for i := range burst {
		burst[i] = pkt.NewValue(rng.Intn(16), 1+rng.Intn(16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(burst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactProcessing tracks the exhaustive solver's cost on a
// cap-sized instance (it guards the property-test budget).
func BenchmarkExactProcessing(b *testing.B) {
	cfg := core.Config{
		Model: core.ModelProcessing, Ports: 3, Buffer: 4,
		MaxLabel: 3, Speedup: 1, PortWork: []int{1, 2, 3},
	}
	rng := rand.New(rand.NewSource(1))
	tr := randomTinyTrace(rng, cfg, 5, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExactProcessing(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactValue(b *testing.B) {
	cfg := core.Config{Model: core.ModelValue, Ports: 3, Buffer: 4, MaxLabel: 4, Speedup: 1}
	rng := rand.New(rand.NewSource(1))
	tr := randomTinyTrace(rng, cfg, 5, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExactValue(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}
