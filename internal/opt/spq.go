// Package opt provides the reference algorithms the paper compares
// against:
//
//   - SPQProc / SPQVal: the simulation study's OPT proxy — a single
//     priority queue over the whole buffer with n·C cores, processing
//     smallest-work-first (processing model) or largest-value-first
//     (value model) with greedy push-out admission. Optimal in the
//     single-queue model, hence an upper bound on the shared-memory OPT.
//   - ExactProcessing / ExactValue: exhaustive offline optimum for tiny
//     instances, used by tests to validate competitive bounds as
//     executable invariants.
package opt

import (
	"fmt"

	"smbm/internal/bmset"
	"smbm/internal/core"
	"smbm/internal/pkt"
)

// SPQProc is the processing-model OPT proxy: one shared priority queue
// ordered by residual work, n·C cores each applying one cycle per slot to
// a distinct smallest-residual packet, and push-out admission evicting
// the largest residual when a smaller packet arrives to a full buffer.
type SPQProc struct {
	cfg   core.Config
	cores int
	res   []int64 // res[r] = packets with residual work r, 1-based
	occ   int
	slot  int64
	stats core.Stats
}

// NewSPQProc builds the proxy for the given switch configuration.
func NewSPQProc(cfg core.Config) (*SPQProc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model != core.ModelProcessing {
		return nil, fmt.Errorf("%w: SPQProc requires the processing model", core.ErrBadConfig)
	}
	return &SPQProc{
		cfg:   cfg,
		cores: cfg.Ports * cfg.Speedup,
		res:   make([]int64, cfg.MaxLabel+1),
	}, nil
}

// Name implements the sim.System contract.
func (s *SPQProc) Name() string { return "OPT(SPQ)" }

// Stats returns accumulated counters. TransmittedWork and latency are not
// tracked by the proxy and stay zero.
func (s *SPQProc) Stats() core.Stats { return s.stats }

// Occupancy returns the buffered packet count.
func (s *SPQProc) Occupancy() int { return s.occ }

// Arrive admits p greedily with push-out of the largest residual.
func (s *SPQProc) Arrive(p pkt.Packet) error {
	if err := p.Validate(s.cfg.Ports, s.cfg.MaxLabel); err != nil {
		return err
	}
	s.stats.Arrived++
	if s.occ >= s.cfg.Buffer {
		// Evict the largest residual if strictly larger than the arrival.
		worst := 0
		for r := s.cfg.MaxLabel; r >= 1; r-- {
			if s.res[r] > 0 {
				worst = r
				break
			}
		}
		if worst <= p.Work {
			s.stats.Dropped++
			return nil
		}
		s.res[worst]--
		s.occ--
		s.stats.PushedOut++
	}
	s.res[p.Work]++
	s.occ++
	s.stats.Accepted++
	if s.occ > s.stats.MaxOccupancy {
		s.stats.MaxOccupancy = s.occ
	}
	return nil
}

// Step runs one slot: arrivals then transmission.
func (s *SPQProc) Step(arrivals []pkt.Packet) error {
	for _, p := range arrivals {
		if err := s.Arrive(p); err != nil {
			return err
		}
	}
	s.Transmit()
	return nil
}

// Transmit applies one cycle to each of the min(occupancy, cores)
// smallest-residual packets.
func (s *SPQProc) Transmit() {
	budget := int64(s.cores)
	for r := 1; r <= s.cfg.MaxLabel && budget > 0; r++ {
		n := s.res[r]
		if n == 0 {
			continue
		}
		if n > budget {
			n = budget
		}
		budget -= n
		s.res[r] -= n
		s.stats.CyclesUsed += n
		if r == 1 {
			s.occ -= int(n)
			s.stats.Transmitted += n
			s.stats.TransmittedValue += n
		} else {
			// r-1 < r was already served this slot, so these packets
			// cannot receive a second cycle now.
			s.res[r-1] += n
		}
	}
	s.slot++
	s.stats.Slots++
}

// Drain transmits with no arrivals until empty, returning slots used.
func (s *SPQProc) Drain() int {
	var slots int
	for s.occ > 0 {
		s.Transmit()
		slots++
	}
	return slots
}

// Reset clears all buffered packets and statistics.
func (s *SPQProc) Reset() {
	for i := range s.res {
		s.res[i] = 0
	}
	s.occ = 0
	s.slot = 0
	s.stats = core.Stats{}
}

// SPQVal is the value-model OPT proxy: one shared priority queue ordered
// by value, n·C transmissions of the most valuable packets per slot, and
// push-out admission evicting the minimum value.
type SPQVal struct {
	cfg   core.Config
	cores int
	vals  *bmset.Set
	slot  int64
	stats core.Stats
}

// NewSPQVal builds the proxy for the given switch configuration.
func NewSPQVal(cfg core.Config) (*SPQVal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model != core.ModelValue {
		return nil, fmt.Errorf("%w: SPQVal requires the value model", core.ErrBadConfig)
	}
	return &SPQVal{
		cfg:   cfg,
		cores: cfg.Ports * cfg.Speedup,
		vals:  bmset.New(cfg.MaxLabel),
	}, nil
}

// Name implements the sim.System contract.
func (s *SPQVal) Name() string { return "OPT(SPQ)" }

// Stats returns accumulated counters.
func (s *SPQVal) Stats() core.Stats { return s.stats }

// Occupancy returns the buffered packet count.
func (s *SPQVal) Occupancy() int { return s.vals.Len() }

// Arrive admits p greedily with push-out of the minimum value.
func (s *SPQVal) Arrive(p pkt.Packet) error {
	if err := p.Validate(s.cfg.Ports, s.cfg.MaxLabel); err != nil {
		return err
	}
	s.stats.Arrived++
	if s.vals.Len() >= s.cfg.Buffer {
		if s.vals.Min() >= p.Value {
			s.stats.Dropped++
			return nil
		}
		s.vals.PopMin()
		s.stats.PushedOut++
	}
	s.vals.Add(p.Value)
	s.stats.Accepted++
	if n := s.vals.Len(); n > s.stats.MaxOccupancy {
		s.stats.MaxOccupancy = n
	}
	return nil
}

// Step runs one slot: arrivals then transmission.
func (s *SPQVal) Step(arrivals []pkt.Packet) error {
	for _, p := range arrivals {
		if err := s.Arrive(p); err != nil {
			return err
		}
	}
	s.Transmit()
	return nil
}

// Transmit sends the min(occupancy, cores) most valuable packets.
func (s *SPQVal) Transmit() {
	for c := 0; c < s.cores && !s.vals.Empty(); c++ {
		v := s.vals.PopMax()
		s.stats.Transmitted++
		s.stats.TransmittedValue += int64(v)
		s.stats.CyclesUsed++
	}
	s.slot++
	s.stats.Slots++
}

// Drain transmits with no arrivals until empty, returning slots used.
func (s *SPQVal) Drain() int {
	var slots int
	for !s.vals.Empty() {
		s.Transmit()
		slots++
	}
	return slots
}

// Reset clears all buffered packets and statistics.
func (s *SPQVal) Reset() {
	s.vals.Clear()
	s.slot = 0
	s.stats = core.Stats{}
}
