// Package opt provides the reference algorithms the paper compares
// against:
//
//   - SPQProc / SPQVal / SPQComb: the simulation study's OPT proxy — a
//     single priority queue over the whole buffer with n·C cores,
//     processing smallest-work-first (processing model),
//     largest-value-first (value model) or densest-first, value per
//     remaining cycle (combined model), with greedy push-out admission.
//     Optimal in the single-queue model, hence an upper bound on the
//     shared-memory OPT.
//   - ExactProcessing / ExactValue: exhaustive offline optimum for tiny
//     instances, used by tests to validate competitive bounds as
//     executable invariants.
package opt

import (
	"fmt"

	"smbm/internal/bmset"
	"smbm/internal/core"
	"smbm/internal/pkt"
)

// SPQProc is the processing-model OPT proxy: one shared priority queue
// ordered by residual work, n·C cores each applying one cycle per slot to
// a distinct smallest-residual packet, and push-out admission evicting
// the largest residual when a smaller packet arrives to a full buffer.
type SPQProc struct {
	cfg   core.Config
	cores int
	res   []int64 // res[r] = packets with residual work r, 1-based
	occ   int
	hi    int // upper bound on the largest non-empty residual (lazily tightened)
	slot  int64
	stats core.Stats

	// Fault-injection overrides, mirroring core.Switch: speedOv holds
	// per-port speedup overrides (negative = nominal) that shrink the
	// proxy's aggregate core budget, bufLimit transiently caps the
	// effective buffer.
	speedOv  []int
	bufLimit int
}

// NewSPQProc builds the proxy for the given switch configuration.
func NewSPQProc(cfg core.Config) (*SPQProc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model != core.ModelProcessing {
		return nil, fmt.Errorf("%w: SPQProc requires the processing model", core.ErrBadConfig)
	}
	return &SPQProc{
		cfg:   cfg,
		cores: cfg.Ports * cfg.Speedup,
		res:   make([]int64, cfg.MaxLabel+1),
	}, nil
}

// Name implements the sim.System contract.
func (s *SPQProc) Name() string { return "OPT(SPQ)" }

// Stats returns accumulated counters. TransmittedWork and latency are not
// tracked by the proxy and stay zero.
func (s *SPQProc) Stats() core.Stats { return s.stats }

// Occupancy returns the buffered packet count.
func (s *SPQProc) Occupancy() int { return s.occ }

// SetPortSpeedup overrides port i's contribution to the proxy's core
// budget (c == 0 removes it, negative restores the configured Speedup),
// so the OPT proxy degrades by exactly the capacity a faulted
// shared-memory switch loses.
func (s *SPQProc) SetPortSpeedup(i, c int) {
	s.speedOv = setPortSpeedup(s.speedOv, s.cfg.Ports, i, c)
}

// ResetSpeedups clears all per-port speedup overrides.
func (s *SPQProc) ResetSpeedups() { resetSpeedups(s.speedOv) }

// SetBufferLimit transiently caps the proxy's effective buffer at b
// packets; b <= 0 restores the configured B.
func (s *SPQProc) SetBufferLimit(b int) { s.bufLimit = clampLimit(b) }

// coreBudget returns the aggregate cores per slot under any active
// overrides.
func (s *SPQProc) coreBudget() int {
	return coreBudget(s.speedOv, s.cfg.Ports, s.cfg.Speedup)
}

// effBuffer returns the effective buffer under any active squeeze.
func (s *SPQProc) effBuffer() int { return effBuffer(s.bufLimit, s.cfg.Buffer) }

// Arrive admits p greedily with push-out of the largest residual.
func (s *SPQProc) Arrive(p pkt.Packet) error {
	if err := p.Validate(s.cfg.Ports, s.cfg.MaxLabel); err != nil {
		return err
	}
	s.stats.Arrived++
	if s.occ >= s.effBuffer() {
		// Evict the largest residual if strictly larger than the arrival.
		// hi bounds the scan: buckets above it are empty by invariant, so
		// the scan starts where the last one left off instead of at
		// MaxLabel, and tightens hi for the next congested arrival.
		worst := 0
		for r := s.hi; r >= 1; r-- {
			if s.res[r] > 0 {
				worst = r
				break
			}
		}
		s.hi = worst
		if worst <= p.Work {
			s.stats.Dropped++
			return nil
		}
		s.res[worst]--
		s.occ--
		s.stats.PushedOut++
	}
	s.res[p.Work]++
	if p.Work > s.hi {
		s.hi = p.Work
	}
	s.occ++
	s.stats.Accepted++
	if s.occ > s.stats.MaxOccupancy {
		s.stats.MaxOccupancy = s.occ
	}
	return nil
}

// Step runs one slot: arrivals then transmission.
func (s *SPQProc) Step(arrivals []pkt.Packet) error {
	for _, p := range arrivals {
		if err := s.Arrive(p); err != nil {
			return err
		}
	}
	s.Transmit()
	return nil
}

// Transmit applies one cycle to each of the min(occupancy, cores)
// smallest-residual packets.
func (s *SPQProc) Transmit() {
	budget := int64(s.coreBudget())
	// Cycles only move packets to smaller residuals, so hi stays a valid
	// upper bound and the scan never visits the empty buckets above it.
	for r := 1; r <= s.hi && budget > 0; r++ {
		n := s.res[r]
		if n == 0 {
			continue
		}
		if n > budget {
			n = budget
		}
		budget -= n
		s.res[r] -= n
		s.stats.CyclesUsed += n
		if r == 1 {
			s.occ -= int(n)
			s.stats.Transmitted += n
			s.stats.TransmittedValue += n
		} else {
			// r-1 < r was already served this slot, so these packets
			// cannot receive a second cycle now.
			s.res[r-1] += n
		}
	}
	s.slot++
	s.stats.Slots++
}

// Drain transmits with no arrivals until empty, returning slots used.
// Like core.Switch.Drain it cannot terminate while every port is
// blacked out; fault injectors clear overrides before draining.
func (s *SPQProc) Drain() int {
	var slots int
	for s.occ > 0 {
		s.Transmit()
		slots++
	}
	return slots
}

// DrainMax is Drain bounded to at most max transmission phases,
// returning the slots used and whether the proxy actually emptied.
func (s *SPQProc) DrainMax(max int) (int, bool) {
	var slots int
	for s.occ > 0 {
		if slots >= max {
			return slots, false
		}
		s.Transmit()
		slots++
	}
	return slots, true
}

// Reset clears all buffered packets, statistics and fault overrides.
func (s *SPQProc) Reset() {
	for i := range s.res {
		s.res[i] = 0
	}
	s.occ = 0
	s.hi = 0
	s.slot = 0
	s.stats = core.Stats{}
	s.speedOv = nil
	s.bufLimit = 0
}

// --- shared fault-override helpers ---------------------------------------

// setPortSpeedup records an override for port i in ov (allocating it
// lazily for n ports), returning the possibly-new slice. c < 0 restores
// nominal.
func setPortSpeedup(ov []int, n, i, c int) []int {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("opt: SetPortSpeedup port %d out of [0,%d)", i, n))
	}
	if ov == nil {
		if c < 0 {
			return nil
		}
		ov = make([]int, n)
		for j := range ov {
			ov[j] = -1
		}
	}
	ov[i] = c
	return ov
}

// resetSpeedups restores every entry of ov to nominal.
func resetSpeedups(ov []int) {
	for i := range ov {
		ov[i] = -1
	}
}

// coreBudget sums per-port effective speedups under overrides ov.
func coreBudget(ov []int, ports, speedup int) int {
	if ov == nil {
		return ports * speedup
	}
	var total int
	for i := 0; i < ports; i++ {
		if ov[i] >= 0 {
			total += ov[i]
		} else {
			total += speedup
		}
	}
	return total
}

// clampLimit normalizes a buffer-limit argument (<= 0 means "none").
func clampLimit(b int) int {
	if b <= 0 {
		return 0
	}
	return b
}

// effBuffer applies limit to the configured buffer.
func effBuffer(limit, buffer int) int {
	if limit > 0 && limit < buffer {
		return limit
	}
	return buffer
}

// SPQVal is the value-model OPT proxy: one shared priority queue ordered
// by value, n·C transmissions of the most valuable packets per slot, and
// push-out admission evicting the minimum value.
type SPQVal struct {
	cfg   core.Config
	cores int
	vals  *bmset.Set
	slot  int64
	stats core.Stats

	// Fault-injection overrides; see SPQProc.
	speedOv  []int
	bufLimit int
}

// NewSPQVal builds the proxy for the given switch configuration.
func NewSPQVal(cfg core.Config) (*SPQVal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model != core.ModelValue {
		return nil, fmt.Errorf("%w: SPQVal requires the value model", core.ErrBadConfig)
	}
	return &SPQVal{
		cfg:   cfg,
		cores: cfg.Ports * cfg.Speedup,
		vals:  bmset.New(cfg.MaxLabel),
	}, nil
}

// Name implements the sim.System contract.
func (s *SPQVal) Name() string { return "OPT(SPQ)" }

// Stats returns accumulated counters.
func (s *SPQVal) Stats() core.Stats { return s.stats }

// Occupancy returns the buffered packet count.
func (s *SPQVal) Occupancy() int { return s.vals.Len() }

// SetPortSpeedup overrides port i's contribution to the proxy's
// transmission budget; see SPQProc.SetPortSpeedup.
func (s *SPQVal) SetPortSpeedup(i, c int) {
	s.speedOv = setPortSpeedup(s.speedOv, s.cfg.Ports, i, c)
}

// ResetSpeedups clears all per-port speedup overrides.
func (s *SPQVal) ResetSpeedups() { resetSpeedups(s.speedOv) }

// SetBufferLimit transiently caps the proxy's effective buffer at b
// packets; b <= 0 restores the configured B.
func (s *SPQVal) SetBufferLimit(b int) { s.bufLimit = clampLimit(b) }

// coreBudget returns per-slot transmissions under any active overrides.
func (s *SPQVal) coreBudget() int {
	return coreBudget(s.speedOv, s.cfg.Ports, s.cfg.Speedup)
}

// effBuffer returns the effective buffer under any active squeeze.
func (s *SPQVal) effBuffer() int { return effBuffer(s.bufLimit, s.cfg.Buffer) }

// Arrive admits p greedily with push-out of the minimum value.
func (s *SPQVal) Arrive(p pkt.Packet) error {
	if err := p.Validate(s.cfg.Ports, s.cfg.MaxLabel); err != nil {
		return err
	}
	s.stats.Arrived++
	if s.vals.Len() >= s.effBuffer() {
		if s.vals.Min() >= p.Value {
			s.stats.Dropped++
			return nil
		}
		s.vals.PopMin()
		s.stats.PushedOut++
	}
	s.vals.Add(p.Value)
	s.stats.Accepted++
	if n := s.vals.Len(); n > s.stats.MaxOccupancy {
		s.stats.MaxOccupancy = n
	}
	return nil
}

// Step runs one slot: arrivals then transmission.
func (s *SPQVal) Step(arrivals []pkt.Packet) error {
	for _, p := range arrivals {
		if err := s.Arrive(p); err != nil {
			return err
		}
	}
	s.Transmit()
	return nil
}

// Transmit sends the min(occupancy, cores) most valuable packets.
func (s *SPQVal) Transmit() {
	// coreBudget is O(n) under active overrides and cannot change
	// mid-phase: hoist it, pop the exact count, batch the counters.
	pops := s.coreBudget()
	if n := s.vals.Len(); pops > n {
		pops = n
	}
	var sum int64
	for c := 0; c < pops; c++ {
		sum += int64(s.vals.PopMax())
	}
	p64 := int64(pops)
	s.stats.Transmitted += p64
	s.stats.TransmittedValue += sum
	s.stats.CyclesUsed += p64
	s.slot++
	s.stats.Slots++
}

// Drain transmits with no arrivals until empty, returning slots used.
// See SPQProc.Drain for the blackout caveat.
func (s *SPQVal) Drain() int {
	var slots int
	for !s.vals.Empty() {
		s.Transmit()
		slots++
	}
	return slots
}

// DrainMax is Drain bounded to at most max transmission phases,
// returning the slots used and whether the proxy actually emptied.
func (s *SPQVal) DrainMax(max int) (int, bool) {
	var slots int
	for !s.vals.Empty() {
		if slots >= max {
			return slots, false
		}
		s.Transmit()
		slots++
	}
	return slots, true
}

// Reset clears all buffered packets, statistics and fault overrides.
func (s *SPQVal) Reset() {
	s.vals.Clear()
	s.slot = 0
	s.stats = core.Stats{}
	s.speedOv = nil
	s.bufLimit = 0
}
