package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	got := Render([]string{"name", "ratio"}, [][]string{
		{"LWD", "1.355"},
		{"Greedy", "2.960"},
	})
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator: %q", lines[1])
	}
	// Numeric column is right-aligned: both data cells end at the same
	// column.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned rows:\n%s", got)
	}
}

func TestRenderHandlesRaggedRows(t *testing.T) {
	got := Render([]string{"a", "b", "c"}, [][]string{
		{"1"},
		{"1", "2", "3", "4 (extra, truncated)"},
	})
	for _, line := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		if strings.Contains(line, "extra") {
			t.Errorf("extra cell leaked: %q", line)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	if got := Render(nil, nil); got != "" {
		t.Errorf("Render(nil) = %q", got)
	}
	got := Render([]string{"x"}, nil)
	if !strings.Contains(got, "x") {
		t.Errorf("header-only table: %q", got)
	}
}

func TestAlignment(t *testing.T) {
	// Text column left-aligned, numeric right-aligned.
	got := Render([]string{"policy", "v"}, [][]string{
		{"A", "1"},
		{"LongName", "10000"},
	})
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if !strings.HasPrefix(lines[2], "A ") {
		t.Errorf("text cell not left-aligned: %q", lines[2])
	}
	if !strings.HasSuffix(lines[2], "    1") {
		t.Errorf("numeric cell not right-aligned: %q", lines[2])
	}
}

func TestNumericLike(t *testing.T) {
	for _, s := range []string{"1.5", "-2", "1.00±0.05", "12%", "3e-4", ""} {
		if !numericLike(s) {
			t.Errorf("numericLike(%q) = false", s)
		}
	}
	for _, s := range []string{"LWD", "n/a", "1.5x faster?"} {
		if numericLike(s) {
			t.Errorf("numericLike(%q) = true", s)
		}
	}
}
