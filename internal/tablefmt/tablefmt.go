// Package tablefmt renders aligned plain-text tables for the CLIs and
// benchmark reports.
package tablefmt

import "strings"

// Render formats headers and rows as an aligned table with a separator
// line under the header. Columns containing only numeric-looking cells
// are right-aligned; others are left-aligned. Rows shorter than the
// header are padded with empty cells; longer rows are truncated.
func Render(headers []string, rows [][]string) string {
	cols := len(headers)
	if cols == 0 {
		return ""
	}
	norm := make([][]string, 0, len(rows)+1)
	norm = append(norm, headers)
	for _, row := range rows {
		r := make([]string, cols)
		copy(r, row)
		norm = append(norm, r)
	}

	widths := make([]int, cols)
	rightAlign := make([]bool, cols)
	for c := 0; c < cols; c++ {
		rightAlign[c] = true
		for r, row := range norm {
			if w := len(row[c]); w > widths[c] {
				widths[c] = w
			}
			if r > 0 && row[c] != "" && !numericLike(row[c]) {
				rightAlign[c] = false
			}
		}
	}

	var b strings.Builder
	writeRow := func(row []string) {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			pad := widths[c] - len(cell)
			if rightAlign[c] {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				if c < cols-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(norm[0])
	sep := make([]string, cols)
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	writeRow(sep)
	for _, row := range norm[1:] {
		writeRow(row)
	}
	return b.String()
}

// numericLike reports whether s looks like a number (possibly signed,
// decimal, percentage, or with a ± suffix part).
func numericLike(s string) bool {
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case strings.ContainsRune("+-.eE%±x ", r):
		default:
			return false
		}
	}
	return true
}
