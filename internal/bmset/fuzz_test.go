package bmset

import (
	"sort"
	"testing"
)

// refMultiset is the obviously correct reference model: a sorted slice.
type refMultiset []int

func (r *refMultiset) add(v int) {
	i := sort.SearchInts(*r, v)
	*r = append(*r, 0)
	copy((*r)[i+1:], (*r)[i:])
	(*r)[i] = v
}

func (r *refMultiset) removeAt(i int) int {
	v := (*r)[i]
	*r = append((*r)[:i], (*r)[i+1:]...)
	return v
}

func (r refMultiset) sum() int64 {
	var t int64
	for _, v := range r {
		t += int64(v)
	}
	return t
}

func (r refMultiset) countLE(v int) int { return sort.SearchInts(r, v+1) }

func (r refMultiset) sumLE(v int) int64 {
	var t int64
	for _, x := range r {
		if x <= v {
			t += int64(x)
		}
	}
	return t
}

// FuzzSetVsSortedSlice interprets the fuzz input as a program over the
// multiset and replays it against a sorted-slice model, cross-checking
// every query — including the cached-extreme paths that this PR made
// incremental (Min/Max validity across Add/Remove/Pop churn).
//
// The first byte picks the bound k in [1,16]; each following byte is an
// operation: op = b % 8 (0-1 Add, 2 PopMin, 3 PopMax, 4 Remove, 5 Kth,
// 6 CountLE/SumLE, 7 Clear), with the value/rank derived from b / 8.
func FuzzSetVsSortedSlice(f *testing.F) {
	f.Add([]byte{4, 0, 8, 16, 2, 3, 0, 5, 6})              // add/pop churn, k=5
	f.Add([]byte{0, 0, 0, 0, 2, 2})                        // k=1 degenerate
	f.Add([]byte{15, 0, 9, 17, 25, 33, 4, 4, 3, 2, 7, 0})  // removes then clear
	f.Add([]byte{7, 1, 9, 17, 25, 5, 13, 21, 6, 14, 22})   // ranks and prefixes
	f.Add([]byte{11, 0, 8, 3, 0, 8, 2, 0, 8, 4, 12, 5, 6}) // extreme-cache churn
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) == 0 {
			return
		}
		k := int(program[0]%16) + 1
		s := New(k)
		var ref refMultiset
		for step, b := range program[1:] {
			op, arg := int(b%8), int(b/8)
			switch op {
			case 0, 1:
				v := arg%k + 1
				s.Add(v)
				ref.add(v)
			case 2:
				if len(ref) == 0 {
					continue
				}
				if got, want := s.PopMin(), ref.removeAt(0); got != want {
					t.Fatalf("step %d: PopMin = %d, want %d", step, got, want)
				}
			case 3:
				if len(ref) == 0 {
					continue
				}
				if got, want := s.PopMax(), ref.removeAt(len(ref)-1); got != want {
					t.Fatalf("step %d: PopMax = %d, want %d", step, got, want)
				}
			case 4:
				if len(ref) == 0 {
					continue
				}
				v := ref[arg%len(ref)] // always present
				s.Remove(v)
				ref.removeAt(sort.SearchInts(ref, v))
			case 5:
				if len(ref) == 0 {
					continue
				}
				j := arg%len(ref) + 1
				if got, want := s.Kth(j), ref[j-1]; got != want {
					t.Fatalf("step %d: Kth(%d) = %d, want %d", step, j, got, want)
				}
			case 6:
				v := arg%(k+2) - 1 // exercise out-of-range values too
				if got, want := s.CountLE(v), ref.countLE(v); got != want {
					t.Fatalf("step %d: CountLE(%d) = %d, want %d", step, v, got, want)
				}
				if got, want := s.SumLE(v), ref.sumLE(v); got != want {
					t.Fatalf("step %d: SumLE(%d) = %d, want %d", step, v, got, want)
				}
			case 7:
				s.Clear()
				ref = ref[:0]
			}
			// Full observable state after every operation.
			if s.Len() != len(ref) {
				t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), len(ref))
			}
			if s.Empty() != (len(ref) == 0) {
				t.Fatalf("step %d: Empty = %v with %d elements", step, s.Empty(), len(ref))
			}
			if got, want := s.Sum(), ref.sum(); got != want {
				t.Fatalf("step %d: Sum = %d, want %d", step, got, want)
			}
			if len(ref) > 0 {
				if got, want := s.Min(), ref[0]; got != want {
					t.Fatalf("step %d: Min = %d, want %d", step, got, want)
				}
				if got, want := s.Max(), ref[len(ref)-1]; got != want {
					t.Fatalf("step %d: Max = %d, want %d", step, got, want)
				}
			}
			for v := 1; v <= k; v++ {
				want := ref.countLE(v) - ref.countLE(v-1)
				if got := s.CountOf(v); got != want {
					t.Fatalf("step %d: CountOf(%d) = %d, want %d", step, v, got, want)
				}
			}
		}
		// Final full-order comparison.
		vals := s.Values()
		if len(vals) != len(ref) {
			t.Fatalf("final Values len %d, want %d", len(vals), len(ref))
		}
		for i, want := range ref {
			if vals[i] != want {
				t.Fatalf("final Values[%d] = %d, want %d", i, vals[i], want)
			}
		}
	})
}
