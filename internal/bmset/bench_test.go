package bmset

import (
	"math/rand"
	"testing"
)

// naiveSet is the O(k)-scan bucket implementation the Fenwick version
// replaces; kept here as the ablation baseline.
type naiveSet struct {
	count []int
	size  int
	total int64
}

func newNaive(k int) *naiveSet { return &naiveSet{count: make([]int, k+1)} }

func (s *naiveSet) Add(v int) { s.count[v]++; s.size++; s.total += int64(v) }

func (s *naiveSet) PopMin() int {
	for v := 1; v < len(s.count); v++ {
		if s.count[v] > 0 {
			s.count[v]--
			s.size--
			s.total -= int64(v)
			return v
		}
	}
	panic("empty")
}

func (s *naiveSet) PopMax() int {
	for v := len(s.count) - 1; v >= 1; v-- {
		if s.count[v] > 0 {
			s.count[v]--
			s.size--
			s.total -= int64(v)
			return v
		}
	}
	panic("empty")
}

// opsMix drives a queue-like workload: mostly adds and max-pops with
// occasional min-pops (push-outs).
func opsMix(b *testing.B, add func(int), popMin, popMax func() int, size func() int, k int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch {
		case size() == 0 || i%3 == 0:
			add(1 + rng.Intn(k))
		case i%7 == 0:
			popMin()
		default:
			popMax()
		}
	}
}

func BenchmarkFenwickSetK64(b *testing.B) {
	s := New(64)
	opsMix(b, s.Add, s.PopMin, s.PopMax, s.Len, 64)
}

func BenchmarkNaiveSetK64(b *testing.B) {
	s := newNaive(64)
	opsMix(b, s.Add, s.PopMin, s.PopMax, func() int { return s.size }, 64)
}

func BenchmarkFenwickSetK1024(b *testing.B) {
	s := New(1024)
	opsMix(b, s.Add, s.PopMin, s.PopMax, s.Len, 1024)
}

func BenchmarkNaiveSetK1024(b *testing.B) {
	s := newNaive(1024)
	opsMix(b, s.Add, s.PopMin, s.PopMax, func() int { return s.size }, 1024)
}

func BenchmarkKth(b *testing.B) {
	s := New(256)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		s.Add(1 + rng.Intn(256))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Kth(1 + i%s.Len())
	}
}
