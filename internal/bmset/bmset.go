// Package bmset implements a bounded multiset of integer values in [1,k]
// backed by two Fenwick (binary indexed) trees: one over element counts and
// one over value sums. It is the storage for value-model output queues,
// which the paper treats as priority queues: transmission pops the maximum
// value, push-out pops the minimum, and the MRD policy needs |Q| and the
// value sum of Q to compute |Q|/avg(Q).
//
// Add, Remove, PopMin, PopMax, Kth and prefix queries are O(log k). A
// direct multiplicity array alongside the Fenwick trees makes CountOf
// O(1) and lets Min and Max cache their result: extremes are maintained
// incrementally on every mutation and only fall back to an O(log k)
// order-statistics descent when the extreme bucket itself empties. This
// matters because the value-model admission policies (LQD, MVD, MRD)
// consult every queue's minimum on every congested arrival — the single
// hottest query in the paper-scale sweeps.
package bmset

import "fmt"

// Set is a multiset of values in [1,k]. The zero value is unusable; use
// New.
type Set struct {
	k     int
	count []int64 // Fenwick over multiplicities, 1-based
	sum   []int64 // Fenwick over value·multiplicity, 1-based
	mult  []int32 // direct multiplicities, 1-based
	size  int
	total int64 // sum of all elements

	// Cached extremes: valid only when the corresponding flag is set.
	// Maintained O(1) on Add and on removals that leave the extreme
	// bucket non-empty; recomputed lazily via Kth otherwise.
	minv, maxv   int
	minOK, maxOK bool
}

// New returns an empty multiset accepting values in [1,k].
func New(k int) *Set {
	if k < 1 {
		panic(fmt.Sprintf("bmset: bound k=%d must be >= 1", k))
	}
	return &Set{
		k:     k,
		count: make([]int64, k+1),
		sum:   make([]int64, k+1),
		mult:  make([]int32, k+1),
	}
}

// Bound returns k, the inclusive upper bound on stored values.
func (s *Set) Bound() int { return s.k }

// Len returns the number of stored elements (with multiplicity).
func (s *Set) Len() int { return s.size }

// Empty reports whether the set holds no elements.
func (s *Set) Empty() bool { return s.size == 0 }

// Sum returns the sum of all stored elements.
func (s *Set) Sum() int64 { return s.total }

// Avg returns the average stored value, or 0 for an empty set.
func (s *Set) Avg() float64 {
	if s.size == 0 {
		return 0
	}
	return float64(s.total) / float64(s.size)
}

// Add inserts one copy of v.
//
//smb:hotpath
func (s *Set) Add(v int) {
	//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
	s.check(v)
	s.update(v, 1)
	if s.size == 1 {
		s.minv, s.maxv = v, v
		s.minOK, s.maxOK = true, true
		return
	}
	if s.minOK && v < s.minv {
		s.minv = v
	}
	if s.maxOK && v > s.maxv {
		s.maxv = v
	}
}

// Remove deletes one copy of v. It panics if v is not present: removing an
// absent element indicates a simulator bug.
//
//smb:hotpath
func (s *Set) Remove(v int) {
	//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
	s.check(v)
	if s.mult[v] == 0 {
		//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
		panic(fmt.Sprintf("bmset: Remove(%d) not present", v))
	}
	s.remove(v)
}

// remove deletes one present copy of v, maintaining the cached extremes.
//
//smb:hotpath
func (s *Set) remove(v int) {
	s.update(v, -1)
	if s.mult[v] > 0 {
		return // the extreme buckets are unchanged
	}
	if s.minOK && v == s.minv {
		s.minOK = false
	}
	if s.maxOK && v == s.maxv {
		s.maxOK = false
	}
}

// CountOf returns the multiplicity of v.
func (s *Set) CountOf(v int) int {
	s.check(v)
	return int(s.mult[v])
}

// CountLE returns the number of elements with value <= v. Values below 1
// yield 0; values above k count everything.
func (s *Set) CountLE(v int) int {
	if v < 1 {
		return 0
	}
	if v > s.k {
		v = s.k
	}
	return int(s.prefixCount(v))
}

// SumLE returns the sum of elements with value <= v.
func (s *Set) SumLE(v int) int64 {
	if v < 1 {
		return 0
	}
	if v > s.k {
		v = s.k
	}
	return s.prefixSum(v)
}

// Min returns the smallest stored value. It panics on an empty set.
// Amortized O(1): the cached minimum is reused until its bucket empties.
//
//smb:hotpath
func (s *Set) Min() int {
	if s.size == 0 {
		//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
		panic("bmset: Min on empty set")
	}
	if !s.minOK {
		s.minv = s.Kth(1)
		s.minOK = true
	}
	return s.minv
}

// Max returns the largest stored value. It panics on an empty set.
// Amortized O(1), mirroring Min.
//
//smb:hotpath
func (s *Set) Max() int {
	if s.size == 0 {
		//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
		panic("bmset: Max on empty set")
	}
	if !s.maxOK {
		s.maxv = s.Kth(s.size)
		s.maxOK = true
	}
	return s.maxv
}

// PopMin removes and returns the smallest stored value.
//
//smb:hotpath
func (s *Set) PopMin() int {
	v := s.Min()
	s.remove(v)
	return v
}

// PopMax removes and returns the largest stored value.
//
//smb:hotpath
func (s *Set) PopMax() int {
	v := s.Max()
	s.remove(v)
	return v
}

// Kth returns the k-th smallest element, 1-based (Kth(1) == Min,
// Kth(Len()) == Max). It panics if j is out of [1, Len()].
//
// The implementation descends the Fenwick tree: classic O(log k) order
// statistics.
//
//smb:hotpath
func (s *Set) Kth(j int) int {
	if j < 1 || j > s.size {
		//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
		panic(fmt.Sprintf("bmset: Kth(%d) out of range [1,%d]", j, s.size))
	}
	var (
		pos    int
		remain = int64(j)
	)
	// highestBit is the largest power of two <= k.
	highestBit := 1
	for highestBit<<1 <= s.k {
		highestBit <<= 1
	}
	for step := highestBit; step > 0; step >>= 1 {
		next := pos + step
		if next <= s.k && s.count[next] < remain {
			pos = next
			remain -= s.count[next]
		}
	}
	return pos + 1
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.count {
		s.count[i] = 0
		s.sum[i] = 0
		s.mult[i] = 0
	}
	s.size = 0
	s.total = 0
	s.minOK, s.maxOK = false, false
}

// Values returns all stored elements in ascending order (with
// multiplicity). Intended for tests and debugging; O(k + n).
func (s *Set) Values() []int {
	out := make([]int, 0, s.size)
	for v := 1; v <= s.k; v++ {
		for c := s.mult[v]; c > 0; c-- {
			out = append(out, v)
		}
	}
	return out
}

//smb:hotpath
func (s *Set) check(v int) {
	if v < 1 || v > s.k {
		//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
		panic(fmt.Sprintf("bmset: value %d out of range [1,%d]", v, s.k))
	}
}

//smb:hotpath
func (s *Set) update(v int, delta int64) {
	for i := v; i <= s.k; i += i & (-i) {
		s.count[i] += delta
		s.sum[i] += delta * int64(v)
	}
	s.mult[v] += int32(delta)
	s.size += int(delta)
	s.total += delta * int64(v)
}

func (s *Set) prefixCount(v int) int64 {
	var t int64
	for i := v; i > 0; i -= i & (-i) {
		t += s.count[i]
	}
	return t
}

func (s *Set) prefixSum(v int) int64 {
	var t int64
	for i := v; i > 0; i -= i & (-i) {
		t += s.sum[i]
	}
	return t
}
