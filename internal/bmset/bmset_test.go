package bmset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestEmptySet(t *testing.T) {
	s := New(10)
	if !s.Empty() || s.Len() != 0 || s.Sum() != 0 {
		t.Errorf("fresh set: Empty=%v Len=%d Sum=%d", s.Empty(), s.Len(), s.Sum())
	}
	if got := s.Avg(); got != 0 {
		t.Errorf("Avg() on empty = %v, want 0", got)
	}
	if got := s.CountLE(10); got != 0 {
		t.Errorf("CountLE(10) on empty = %d, want 0", got)
	}
}

func TestAddRemoveCounts(t *testing.T) {
	s := New(5)
	s.Add(3)
	s.Add(3)
	s.Add(1)
	if got := s.CountOf(3); got != 2 {
		t.Errorf("CountOf(3) = %d, want 2", got)
	}
	if got := s.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3", got)
	}
	if got := s.Sum(); got != 7 {
		t.Errorf("Sum() = %d, want 7", got)
	}
	s.Remove(3)
	if got := s.CountOf(3); got != 1 {
		t.Errorf("after Remove: CountOf(3) = %d, want 1", got)
	}
	if got := s.Sum(); got != 4 {
		t.Errorf("after Remove: Sum() = %d, want 4", got)
	}
}

func TestMinMaxPop(t *testing.T) {
	s := New(9)
	for _, v := range []int{5, 2, 9, 2, 7} {
		s.Add(v)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min() = %d, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max() = %d, want 9", got)
	}
	if got := s.PopMin(); got != 2 {
		t.Errorf("PopMin() = %d, want 2", got)
	}
	if got := s.PopMin(); got != 2 {
		t.Errorf("second PopMin() = %d, want 2", got)
	}
	if got := s.PopMax(); got != 9 {
		t.Errorf("PopMax() = %d, want 9", got)
	}
	if got := s.Values(); len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Errorf("Values() = %v, want [5 7]", got)
	}
}

func TestKthOrderStatistics(t *testing.T) {
	s := New(8)
	vals := []int{4, 1, 8, 4, 6, 1, 1}
	for _, v := range vals {
		s.Add(v)
	}
	sort.Ints(vals)
	for j := 1; j <= len(vals); j++ {
		if got := s.Kth(j); got != vals[j-1] {
			t.Errorf("Kth(%d) = %d, want %d", j, got, vals[j-1])
		}
	}
}

func TestPrefixQueries(t *testing.T) {
	s := New(6)
	for _, v := range []int{1, 3, 3, 6} {
		s.Add(v)
	}
	cases := []struct {
		v         int
		count     int
		sum       int64
		nameSuits string
	}{
		{0, 0, 0, "below range"},
		{1, 1, 1, "exactly min"},
		{3, 3, 7, "middle"},
		{6, 4, 13, "max"},
		{99, 4, 13, "above range clamps"},
	}
	for _, c := range cases {
		if got := s.CountLE(c.v); got != c.count {
			t.Errorf("CountLE(%d) = %d, want %d (%s)", c.v, got, c.count, c.nameSuits)
		}
		if got := s.SumLE(c.v); got != c.sum {
			t.Errorf("SumLE(%d) = %d, want %d (%s)", c.v, got, c.sum, c.nameSuits)
		}
	}
}

func TestClearReuse(t *testing.T) {
	s := New(4)
	s.Add(2)
	s.Add(4)
	s.Clear()
	if !s.Empty() || s.Sum() != 0 {
		t.Errorf("after Clear: Empty=%v Sum=%d", s.Empty(), s.Sum())
	}
	s.Add(1)
	if got := s.Min(); got != 1 {
		t.Errorf("Min() after Clear+Add = %d, want 1", got)
	}
}

func TestPanics(t *testing.T) {
	for name, op := range map[string]func(*Set){
		"Add out of range":     func(s *Set) { s.Add(11) },
		"Add zero":             func(s *Set) { s.Add(0) },
		"Remove absent":        func(s *Set) { s.Remove(5) },
		"Min empty":            func(s *Set) { s.Min() },
		"Max empty":            func(s *Set) { s.Max() },
		"Kth out of range":     func(s *Set) { s.Kth(1) },
		"CountOf out of range": func(s *Set) { s.CountOf(-1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			op(New(10))
		})
	}
}

// reference is a naive multiset used to validate Set under random ops.
type reference struct{ vals []int }

func (r *reference) add(v int) { r.vals = append(r.vals, v); sort.Ints(r.vals) }
func (r *reference) popMin() int {
	v := r.vals[0]
	r.vals = r.vals[1:]
	return v
}
func (r *reference) popMax() int {
	v := r.vals[len(r.vals)-1]
	r.vals = r.vals[:len(r.vals)-1]
	return v
}
func (r *reference) sum() int64 {
	var t int64
	for _, v := range r.vals {
		t += int64(v)
	}
	return t
}
func (r *reference) countLE(x int) int {
	n := 0
	for _, v := range r.vals {
		if v <= x {
			n++
		}
	}
	return n
}

// TestQuickMatchesReference compares the Fenwick implementation with the
// naive reference over random operation sequences.
func TestQuickMatchesReference(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		const k = 12
		rng := rand.New(rand.NewSource(seed))
		s := New(k)
		var ref reference
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // bias toward Add so the set grows
				v := 1 + rng.Intn(k)
				s.Add(v)
				ref.add(v)
			case 2:
				if len(ref.vals) == 0 {
					continue
				}
				if s.PopMin() != ref.popMin() {
					return false
				}
			case 3:
				if len(ref.vals) == 0 {
					continue
				}
				if s.PopMax() != ref.popMax() {
					return false
				}
			}
			if s.Len() != len(ref.vals) || s.Sum() != ref.sum() {
				return false
			}
			probe := 1 + rng.Intn(k)
			if s.CountLE(probe) != ref.countLE(probe) {
				return false
			}
			if len(ref.vals) > 0 {
				j := 1 + rng.Intn(len(ref.vals))
				if s.Kth(j) != ref.vals[j-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(150)); err != nil {
		t.Error(err)
	}
}

func TestLargeBoundKthDescent(t *testing.T) {
	// Exercise the highestBit descent with a non-power-of-two bound.
	s := New(1000)
	for v := 1; v <= 1000; v += 7 {
		s.Add(v)
	}
	want := make([]int, 0, 143)
	for v := 1; v <= 1000; v += 7 {
		want = append(want, v)
	}
	for j, w := range want {
		if got := s.Kth(j + 1); got != w {
			t.Fatalf("Kth(%d) = %d, want %d", j+1, got, w)
		}
	}
}

// qcfg returns a deterministic quick.Config so property tests are
// reproducible run to run.
func qcfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(7))}
}
