// Package hmath provides the small pieces of analytic machinery the
// paper's policies and bounds are phrased in: harmonic numbers and the
// Euler–Mascheroni constant.
package hmath

import "math"

// EulerGamma is the Euler–Mascheroni constant γ appearing in the BPD
// lower bound H_k >= ln k + γ (Theorem 5).
const EulerGamma = 0.57721566490153286060651209008240243

// harmonicTableSize bounds the precomputed H_n table. Covers every port
// count the simulator sweeps (and then some) so the NHDT/NHDTW admission
// hot path, which evaluates H_m per arriving packet, costs one array
// load instead of an O(n) summation.
const harmonicTableSize = 1 << 11

// harmonicTable[i] = H_i for i < harmonicTableSize. Each entry is
// computed by the same backward summation as the slow path, so table
// lookups are bit-identical to the values Harmonic returned before the
// table existed (differential tests depend on this).
var harmonicTable = func() [harmonicTableSize]float64 {
	var t [harmonicTableSize]float64
	for n := 1; n < harmonicTableSize; n++ {
		var h float64
		for i := n; i >= 1; i-- {
			h += 1 / float64(i)
		}
		t[n] = h
	}
	return t
}()

// Harmonic returns H_n = 1 + 1/2 + ... + 1/n, with H_0 = 0. Values are
// served from a precomputed table for small n (O(1), the admission-path
// case), computed by direct summation for mid-range n, and by the
// asymptotic expansion for large n; the switch points keep absolute
// error below 1e-12 and the function O(1) for huge n.
//
//smb:hotpath
func Harmonic(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n < harmonicTableSize {
		return harmonicTable[n]
	}
	if n <= 1<<16 {
		// Sum smallest terms first to bound floating-point error.
		var h float64
		for i := n; i >= 1; i-- {
			h += 1 / float64(i)
		}
		return h
	}
	// H_n ~ ln n + γ + 1/(2n) − 1/(12n²) + 1/(120n⁴)
	fn := float64(n)
	return math.Log(fn) + EulerGamma + 1/(2*fn) - 1/(12*fn*fn) + 1/(120*fn*fn*fn*fn)
}

// HarmonicRange returns 1/a + 1/(a+1) + ... + 1/b (zero when a > b), the
// β_{k,m}-style partial harmonic sums used in the LQD and NHDT lower
// bounds.
func HarmonicRange(a, b int) float64 {
	if a < 1 {
		a = 1
	}
	if a > b {
		return 0
	}
	var h float64
	for i := b; i >= a; i-- {
		h += 1 / float64(i)
	}
	return h
}

// InverseWorkSum returns Z = Σ 1/w over the given per-port works, the
// normalizer of the NHST thresholds.
func InverseWorkSum(works []int) float64 {
	var z float64
	for _, w := range works {
		z += 1 / float64(w)
	}
	return z
}
