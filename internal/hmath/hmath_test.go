package hmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHarmonicSmall(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0},
		{-3, 0},
		{1, 1},
		{2, 1.5},
		{3, 1 + 0.5 + 1.0/3},
		{10, 2.9289682539682538},
	}
	for _, c := range cases {
		if got := Harmonic(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestHarmonicAsymptoticAgreesWithSummation(t *testing.T) {
	// The asymptotic branch starts above 1<<16; compare both methods in
	// a region where direct summation is still exact enough.
	n := 1 << 17
	var direct float64
	for i := n; i >= 1; i-- {
		direct += 1 / float64(i)
	}
	if got := Harmonic(n); math.Abs(got-direct) > 1e-9 {
		t.Errorf("Harmonic(%d) = %.12f, direct sum %.12f", n, got, direct)
	}
}

func TestHarmonicMonotone(t *testing.T) {
	f := func(a uint16) bool {
		n := int(a%10000) + 1
		return Harmonic(n+1) > Harmonic(n)
	}
	if err := quick.Check(f, qcfg(100)); err != nil {
		t.Error(err)
	}
}

func TestHarmonicRange(t *testing.T) {
	if got, want := HarmonicRange(1, 10), Harmonic(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("HarmonicRange(1,10) = %v, want H_10 = %v", got, want)
	}
	if got, want := HarmonicRange(4, 10), Harmonic(10)-Harmonic(3); math.Abs(got-want) > 1e-12 {
		t.Errorf("HarmonicRange(4,10) = %v, want %v", got, want)
	}
	if got := HarmonicRange(5, 4); got != 0 {
		t.Errorf("HarmonicRange(5,4) = %v, want 0", got)
	}
	if got, want := HarmonicRange(-2, 3), Harmonic(3); math.Abs(got-want) > 1e-12 {
		t.Errorf("HarmonicRange(-2,3) = %v, want %v", got, want)
	}
}

func TestInverseWorkSum(t *testing.T) {
	if got := InverseWorkSum(nil); got != 0 {
		t.Errorf("InverseWorkSum(nil) = %v, want 0", got)
	}
	works := []int{1, 2, 4}
	if got, want := InverseWorkSum(works), 1.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("InverseWorkSum(%v) = %v, want %v", works, got, want)
	}
}

func TestEulerGammaRelation(t *testing.T) {
	// H_n − ln n → γ; at n = 10⁶ the difference from γ is ~5e-7.
	n := 1 << 20
	if got := Harmonic(n) - math.Log(float64(n)); math.Abs(got-EulerGamma) > 1e-6 {
		t.Errorf("H_n − ln n = %v, want ≈ γ = %v", got, EulerGamma)
	}
}

// qcfg returns a deterministic quick.Config so property tests are
// reproducible run to run.
func qcfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(7))}
}
