package lease

// Merge-on-read: every scan folds all worker files into one State,
// applying the fencing rules documented in the package comment. Scans
// are cheap relative to cell runtimes (cells are whole simulation
// replications), so the ledger trades read amplification for having no
// coordinator, no locks and no shared mutable state.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Phase is a cell's lifecycle position in the merged ledger view.
type Phase int

// The cell phases, in lifecycle order.
const (
	// PhaseFree means no live lease holds the cell: it has never been
	// claimed, or every claim expired or was abandoned within budget.
	PhaseFree Phase = iota
	// PhaseLeased means a live (unexpired) lease holds the cell.
	PhaseLeased
	// PhaseCompleted means a complete record exists for the cell.
	PhaseCompleted
	// PhaseDegraded means the cell's failed attempts exhausted the
	// retry budget without a completion.
	PhaseDegraded
)

// String names the phase for diagnostics.
func (p Phase) String() string {
	switch p {
	case PhaseFree:
		return "free"
	case PhaseLeased:
		return "leased"
	case PhaseCompleted:
		return "completed"
	case PhaseDegraded:
		return "degraded"
	}
	return "phase?"
}

// tokenState folds every lease/abandon record of one (cell, token)
// pair. The token's winner is the lexicographically smallest worker
// that wrote a lease under it; only the winner's deadlines count, so a
// losing racer's records can neither extend nor shorten the lease.
type tokenState struct {
	winner     string
	deadlineMS int64
	abandoned  bool
}

// CellState is the merged view of one cell after a scan.
type CellState struct {
	// Completed reports a complete record exists; Results then holds
	// the payload of the newest-token completion (ties broken by
	// smallest worker ID).
	Completed bool
	// Results is the winning completion's opaque payload.
	Results json.RawMessage
	// CompleteToken and CompleteWorker identify the winning completion.
	CompleteToken uint64
	// CompleteWorker is the worker that wrote the winning completion.
	CompleteWorker string
	// Holder is the live lease holder ("" when none): the winner of the
	// newest token, when that token is neither abandoned nor expired.
	Holder string
	// HolderToken is the live lease's fencing token.
	HolderToken uint64
	// HolderDeadlineMS is the live lease's expiry (Unix milliseconds).
	HolderDeadlineMS int64
	// Failed counts terminally failed attempts: tokens that were
	// abandoned, or whose winner's deadline passed without completion.
	Failed int
	// TopExpired reports that the newest token failed by expiry rather
	// than abandonment — the signature of a crashed or hung worker, and
	// what distinguishes a reclaim from an ordinary retry.
	TopExpired bool
	// LastError is the most recent abandon reason, for degradation
	// reports.
	LastError string
	// NextToken is the fencing token a new claimant must write.
	NextToken uint64
	// NextAttempt is the 1-based attempt number a new claim represents.
	NextAttempt int

	tokens map[uint64]*tokenState
}

// State is a point-in-time merged view of every ledger file.
type State struct {
	// Cells maps each cell that has at least one record to its state.
	Cells map[Cell]CellState
	// NowMS is the scan's clock reading (Unix milliseconds); phases are
	// relative to it.
	NowMS int64
}

// Cell returns c's merged state; a cell without records is free at
// token 1, attempt 1.
func (st *State) Cell(c Cell) CellState {
	if cs, ok := st.Cells[c]; ok {
		return cs
	}
	return CellState{NextToken: 1, NextAttempt: 1}
}

// Phase classifies c under the given retry budget.
func (st *State) Phase(c Cell, retries int) Phase {
	cs := st.Cell(c)
	switch {
	case cs.Completed:
		return PhaseCompleted
	case cs.Failed > retries:
		return PhaseDegraded
	case cs.Holder != "":
		return PhaseLeased
	}
	return PhaseFree
}

// fileScan is what scanning one ledger file recovers.
type fileScan struct {
	records   []record
	hasHeader bool // a matching-sweep header was seen
	torn      bool // a malformed final line was dropped
	validSize int64
}

// scanFile reads one ledger file, returning every record for fp's sweep
// and verifying any matching-sweep header against fp. Only a malformed
// *final* line is tolerated (a torn write from a crash or truncation);
// a malformed line followed by more data is corruption and errors
// loudly, because resuming past it would silently re-run or trust
// damaged work.
func scanFile(path string, fp Fingerprint) (fileScan, error) {
	var fs fileScan
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return fs, nil
	}
	if err != nil {
		return fs, fmt.Errorf("lease: %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo, badLine := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			if badLine == 0 {
				fs.validSize++
			}
			continue
		}
		if badLine != 0 {
			return fs, fmt.Errorf("lease: %s: malformed record at line %d followed by more data: ledger file is corrupt, not torn; move it aside to recover", path, badLine)
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			badLine = lineNo // tolerated iff this is the final line
			continue
		}
		fs.validSize += int64(len(line)) + 1
		if rec.Sweep != fp.Sweep {
			continue
		}
		switch rec.Kind {
		case KindHeader:
			if rec.Header == nil {
				return fs, fmt.Errorf("lease: %s:%d: header record without a fingerprint", path, lineNo)
			}
			if err := fp.diff(*rec.Header); err != nil {
				return fs, fmt.Errorf("lease: %s: sweep %q configuration changed since the ledger was written — %w; finish with the original flags or move the ledger aside to start over", path, fp.Sweep, err)
			}
			fs.hasHeader = true
		case KindLease, KindComplete, KindAbandon:
			fs.records = append(fs.records, rec)
		default:
			return fs, fmt.Errorf("lease: %s:%d: unknown record kind %q (written by a newer build?); refusing to scan past it", path, lineNo, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return fs, fmt.Errorf("lease: %s: %w", path, err)
	}
	fs.torn = badLine != 0
	return fs, nil
}

// ledgerFiles lists the ledger directory's journal files in
// deterministic (sorted) order.
func ledgerFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lease: %s: %w", dir, err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ledgerExt) {
			continue
		}
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	sort.Strings(paths)
	return paths, nil
}

// scanDir merges every ledger file in dir into one State as of nowMS.
func scanDir(dir string, fp Fingerprint, nowMS int64) (*State, error) {
	paths, err := ledgerFiles(dir)
	if err != nil {
		return nil, err
	}
	st := &State{Cells: map[Cell]CellState{}, NowMS: nowMS}
	for _, path := range paths {
		fs, err := scanFile(path, fp)
		if err != nil {
			return nil, err
		}
		for _, rec := range fs.records {
			st.fold(rec)
		}
	}
	for c, cs := range st.Cells {
		cs.finalize(nowMS)
		st.Cells[c] = cs
	}
	return st, nil
}

// fold accumulates one record into the per-cell token groups.
func (st *State) fold(rec record) {
	c := rec.cell()
	cs := st.Cells[c]
	if cs.tokens == nil {
		cs.tokens = map[uint64]*tokenState{}
	}
	if rec.Token >= cs.NextToken {
		cs.NextToken = rec.Token + 1
	}
	switch rec.Kind {
	case KindLease:
		ts := cs.tokens[rec.Token]
		if ts == nil {
			ts = &tokenState{}
			cs.tokens[rec.Token] = ts
		}
		switch {
		case ts.winner == "" || rec.Worker < ts.winner:
			// New (or lexicographically smaller) claimant takes the
			// token; only its deadlines count from here on.
			ts.winner, ts.deadlineMS = rec.Worker, rec.DeadlineMS
		case rec.Worker == ts.winner && rec.DeadlineMS > ts.deadlineMS:
			ts.deadlineMS = rec.DeadlineMS // heartbeat renewal
		}
	case KindAbandon:
		ts := cs.tokens[rec.Token]
		if ts == nil {
			ts = &tokenState{}
			cs.tokens[rec.Token] = ts
		}
		ts.abandoned = true
		if rec.Error != "" {
			cs.LastError = rec.Error
		}
	case KindComplete:
		better := !cs.Completed ||
			rec.Token > cs.CompleteToken ||
			(rec.Token == cs.CompleteToken && rec.Worker < cs.CompleteWorker)
		if better {
			cs.Completed = true
			cs.CompleteToken = rec.Token
			cs.CompleteWorker = rec.Worker
			cs.Results = rec.Results
		}
	}
	st.Cells[c] = cs
}

// finalize derives the holder, failure counts and next claim values
// from the folded token groups, applying the newest-token-authoritative
// rule as of nowMS.
func (cs *CellState) finalize(nowMS int64) {
	if cs.NextToken == 0 {
		cs.NextToken = 1
	}
	var top uint64
	for tok := range cs.tokens {
		if tok > top {
			top = tok
		}
	}
	for tok, ts := range cs.tokens {
		live := !ts.abandoned && ts.deadlineMS >= nowMS
		if tok == top && live {
			cs.Holder = ts.winner
			cs.HolderToken = tok
			cs.HolderDeadlineMS = ts.deadlineMS
			continue
		}
		cs.Failed++
		if tok == top {
			cs.TopExpired = !ts.abandoned
		}
	}
	cs.NextAttempt = cs.Failed + 1
	cs.tokens = nil
}
