// Package chaostest is the crash-chaos harness for the lease ledger
// (internal/lease) and the leased sweep path (internal/sim): its tests
// fork real worker subprocesses (the test binary re-executing itself),
// SIGKILL them at seeded random points mid-cell, truncate their ledger
// journals at random byte offsets to simulate torn crash writes, restart
// them under the same identities, and finally assert that the merged
// sweep result is bit-identical to a single-process run of the same
// configuration — the deterministic engine is the oracle, so any
// duplicated, lost or clobbered cell shows up as a byte diff.
//
// Run it via `make chaos` (or `go test ./internal/lease/chaostest`);
// the CI chaos-smoke job runs exactly that. The kill/truncate schedule
// derives from SMBM_CHAOS_SEED (default 1), so a failing schedule can
// be replayed.
package chaostest
