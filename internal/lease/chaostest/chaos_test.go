package chaostest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"smbm/internal/experiments"
	"smbm/internal/sim"
)

// Environment contract between the orchestrating test and the worker
// subprocesses it forks (the test binary re-executing itself).
const (
	envRole   = "SMBM_CHAOS_ROLE"
	envLedger = "SMBM_CHAOS_LEDGER"
	envWorker = "SMBM_CHAOS_WORKER"
	envSeed   = "SMBM_CHAOS_SEED"
)

// Chaos sweep shape: fig5.1 scaled so one cell runs long enough
// (~0.3s) that a SIGKILL reliably lands mid-cell, on a grid small
// enough (7 xs × 2 seeds) that the whole dance stays well under the CI
// job's 90s budget.
const (
	chaosSlots   = 15000
	chaosSeeds   = 2
	chaosTTL     = 1500 * time.Millisecond
	chaosRetries = 6
	chaosWorkers = 3
	chaosKills   = 2
)

// chaosSweep builds the sweep both the oracle and every worker run.
func chaosSweep(t *testing.T) *sim.Sweep {
	t.Helper()
	o := experiments.Defaults()
	o.Slots = chaosSlots
	o.Seeds = chaosSeeds
	s, err := experiments.Panel("fig5.1", o)
	if err != nil {
		t.Fatal(err)
	}
	s.Parallelism = 2
	return s
}

// canonical renders a result for bit-identity comparison, zeroing the
// harness-level fields (warnings, lease counters) that legitimately
// differ between a distributed and a single-process run.
func canonical(t *testing.T, r *sim.SweepResult) string {
	t.Helper()
	cp := *r
	cp.Warnings = nil
	cp.Lease = nil
	raw, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestChaosWorkerProcess is the worker half of the harness: it runs
// only when re-executed by TestChaosConvergesBitIdentical with the
// chaos environment set, and simply runs the chaos sweep as one leased
// worker until the grid is done.
func TestChaosWorkerProcess(t *testing.T) {
	if os.Getenv(envRole) != "worker" {
		t.Skip("runs only as a chaos-harness subprocess")
	}
	s := chaosSweep(t)
	s.Ledger = os.Getenv(envLedger)
	s.LedgerWorker = os.Getenv(envWorker)
	s.LeaseTTL = chaosTTL
	s.CellRetries = chaosRetries
	res, err := s.Run()
	if err != nil {
		t.Fatalf("worker %s: %v", s.LedgerWorker, err)
	}
	if res.Partial {
		t.Fatalf("worker %s: grid still partial after StatusDone", s.LedgerWorker)
	}
}

// worker is one forked subprocess and its captured output.
type worker struct {
	id   string
	cmd  *exec.Cmd
	out  *bytes.Buffer
	done chan error
}

// spawnWorker forks the test binary as chaos worker id on dir.
func spawnWorker(t *testing.T, dir, id string) *worker {
	t.Helper()
	w := &worker{id: id, out: &bytes.Buffer{}, done: make(chan error, 1)}
	w.cmd = exec.Command(os.Args[0], "-test.run=^TestChaosWorkerProcess$", "-test.count=1")
	w.cmd.Stdout = w.out
	w.cmd.Stderr = w.out
	w.cmd.Env = append(os.Environ(),
		envRole+"=worker",
		envLedger+"="+dir,
		envWorker+"="+id,
	)
	if err := w.cmd.Start(); err != nil {
		t.Fatalf("spawning worker %s: %v", id, err)
	}
	go func() { w.done <- w.cmd.Wait() }()
	return w
}

// TestChaosConvergesBitIdentical is the harness: 3 workers, 2 seeded
// SIGKILLs mid-cell, journal truncation at random offsets, worker
// restarts under the same identities — and the merged result must be
// bit-identical to the single-process oracle, with every cell
// completed exactly once in the merge.
func TestChaosConvergesBitIdentical(t *testing.T) {
	if os.Getenv(envRole) != "" {
		t.Skip("chaos subprocess")
	}
	if testing.Short() {
		t.Skip("multi-second subprocess harness; skipped with -short")
	}

	seed := int64(1)
	if v := os.Getenv(envSeed); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("%s=%q: %v", envSeed, v, err)
		}
		seed = parsed
	}
	t.Logf("kill/truncate schedule seed: %d (set %s to replay)", seed, envSeed)
	rng := rand.New(rand.NewSource(seed))

	// The oracle: the same sweep, one process, no ledger.
	oracleRes, err := chaosSweep(t).Run()
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	oracle := canonical(t, oracleRes)

	dir := t.TempDir()
	workers := make([]*worker, chaosWorkers)
	for i := range workers {
		workers[i] = spawnWorker(t, dir, fmt.Sprintf("w%d", i+1))
	}

	// Seeded chaos: SIGKILL a worker mid-cell, tear its journal at a
	// random byte offset (the crash artifact the torn-tail recovery
	// exists for), and restart it under the same identity.
	for kill := 0; kill < chaosKills; kill++ {
		time.Sleep(time.Duration(150+rng.Intn(350)) * time.Millisecond)
		v := rng.Intn(len(workers))
		w := workers[v]
		select {
		case err := <-w.done:
			t.Logf("kill %d: worker %s had already exited (%v); restarting it anyway", kill+1, w.id, err)
		default:
			if err := w.cmd.Process.Kill(); err != nil {
				t.Fatalf("kill %d: SIGKILL %s: %v", kill+1, w.id, err)
			}
			<-w.done
			t.Logf("kill %d: SIGKILLed worker %s", kill+1, w.id)
		}
		path := filepath.Join(dir, w.id+".jsonl")
		if fi, err := os.Stat(path); err == nil && fi.Size() > 1 {
			cut := 1 + rng.Int63n(fi.Size()-1)
			if err := os.Truncate(path, cut); err != nil {
				t.Fatalf("truncating %s to %d: %v", path, cut, err)
			}
			t.Logf("kill %d: truncated %s from %d to %d bytes", kill+1, path, fi.Size(), cut)
		}
		workers[v] = spawnWorker(t, dir, w.id)
	}

	// Every (possibly restarted) worker must converge and exit clean.
	deadline := time.After(60 * time.Second)
	for _, w := range workers {
		select {
		case err := <-w.done:
			if err != nil {
				t.Fatalf("worker %s failed: %v\n%s", w.id, err, w.out.String())
			}
		case <-deadline:
			t.Fatalf("worker %s did not converge within the deadline\n%s", w.id, w.out.String())
		}
	}

	// Merge as a pure observer and compare against the oracle.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	m := chaosSweep(t)
	m.Ledger = dir
	m.LedgerWorker = "merge"
	m.LedgerObserver = true
	m.LeaseTTL = chaosTTL
	m.CellRetries = chaosRetries
	merged, err := m.RunContext(ctx)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged.Partial {
		t.Fatalf("merged result is partial; warnings: %q", merged.Warnings)
	}
	// Every cell completed exactly once in the merge: the full grid is
	// present and every per-point summary folded exactly Seeds
	// replications.
	if len(merged.Points) != len(m.Xs) {
		t.Fatalf("merged %d points, want %d", len(merged.Points), len(m.Xs))
	}
	for _, p := range merged.Points {
		for _, name := range merged.Policies {
			if n := p.Ratio[name].N; n != chaosSeeds {
				t.Fatalf("x=%d policy %s folded %d replications, want exactly %d", p.X, name, n, chaosSeeds)
			}
		}
		if p.OptThroughput.N != chaosSeeds {
			t.Fatalf("x=%d OPT folded %d replications, want exactly %d", p.X, p.OptThroughput.N, chaosSeeds)
		}
	}
	if got := canonical(t, merged); got != oracle {
		t.Fatalf("merged result differs from single-process oracle:\n got %s\nwant %s", got, oracle)
	}
}
