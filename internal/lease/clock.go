package lease

import "time"

// wallNow is the ledger's default clock. It is the only wall-clock read
// in the package: lease deadlines and expiry are wall-clock by design
// (a crashed worker's lease must expire in real time, across machines),
// and everything else — the deterministic engine above, the scan logic
// here — consumes time only through the injected clock so tests can
// drive expiry synthetically.
//
//smb:leaseclock lease deadlines and expiry are wall-clock by design; everything else injects the clock
func wallNow() time.Time { return time.Now() }
