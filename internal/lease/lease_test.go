package lease

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock injected through Options.clock so
// expiry tests never sleep.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.UnixMilli(1_000_000_000)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testFP() Fingerprint {
	return Fingerprint{Sweep: "t", XLabel: "k", XsHash: "abc", Seeds: 2, BaseSeed: 42, Config: "cfg"}
}

func openWorker(t *testing.T, dir, worker string, clk *fakeClock, ttl time.Duration, retries int) *Ledger {
	t.Helper()
	o := Options{Dir: dir, Worker: worker, Fingerprint: testFP(), TTL: ttl, Retries: retries}
	if clk != nil {
		o.clock = clk.now
	}
	l, err := Open(o)
	if err != nil {
		t.Fatalf("Open(%s): %v", worker, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func payload(s string) json.RawMessage {
	return json.RawMessage(fmt.Sprintf("%q", s))
}

func TestSingleWorkerLifecycle(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	l := openWorker(t, dir, "a", clk, time.Minute, 3)
	cells := []Cell{{X: 1, SeedIndex: 0}, {X: 1, SeedIndex: 1}, {X: 2, SeedIndex: 0}}
	ctx := context.Background()

	for range cells {
		ls, st, err := l.Acquire(ctx, cells)
		if err != nil || st != StatusAcquired {
			t.Fatalf("Acquire = %v, %v, %v", ls, st, err)
		}
		if ls.Token != 1 || ls.Attempt != 1 {
			t.Fatalf("first claim got token %d attempt %d, want 1/1", ls.Token, ls.Attempt)
		}
		if err := l.Complete(ls, payload(ls.Cell.String())); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	if _, st, err := l.Acquire(ctx, cells); err != nil || st != StatusDone {
		t.Fatalf("Acquire after all complete = %v, %v, want StatusDone", st, err)
	}
	done, degraded, err := l.Merge(cells)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if len(done) != len(cells) || len(degraded) != 0 {
		t.Fatalf("Merge: %d done %d degraded, want %d/0", len(done), len(degraded), len(cells))
	}
	for _, c := range cells {
		if string(done[c]) != string(payload(c.String())) {
			t.Fatalf("cell %s payload = %s", c, done[c])
		}
	}
	counts := l.Counters()
	if counts.Leases != 3 || counts.Completes != 3 {
		t.Fatalf("counters = %+v, want 3 leases / 3 completes", counts)
	}
}

func TestExpiryReclaim(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	cells := []Cell{{X: 1, SeedIndex: 0}}
	ctx := context.Background()

	// Worker a claims the cell and "crashes": no complete, no renewal.
	a := openWorker(t, dir, "a", clk, time.Minute, 3)
	lsA, _, err := a.Acquire(ctx, cells)
	if err != nil {
		t.Fatalf("a.Acquire: %v", err)
	}

	// While the lease is live, b sees the cell leased and cannot claim
	// it; Acquire would block, so check the phase directly.
	b := openWorker(t, dir, "b", clk, time.Minute, 3)
	st, err := b.Scan()
	if err != nil {
		t.Fatalf("b.Scan: %v", err)
	}
	if p := st.Phase(cells[0], b.Retries()); p != PhaseLeased {
		t.Fatalf("phase while lease live = %v, want leased", p)
	}

	// Past the TTL the lease expires and b reclaims under token 2.
	clk.advance(2 * time.Minute)
	lsB, status, err := b.Acquire(ctx, cells)
	if err != nil || status != StatusAcquired {
		t.Fatalf("b.Acquire after expiry = %v, %v", status, err)
	}
	if lsB.Token != lsA.Token+1 {
		t.Fatalf("reclaim token = %d, want %d", lsB.Token, lsA.Token+1)
	}
	if lsB.Attempt != 2 {
		t.Fatalf("reclaim attempt = %d, want 2 (expiry consumed one)", lsB.Attempt)
	}
	if c := b.Counters(); c.Reclaims != 1 {
		t.Fatalf("b counters = %+v, want 1 reclaim", c)
	}
	if err := b.Complete(lsB, payload("b")); err != nil {
		t.Fatalf("b.Complete: %v", err)
	}
	done, _, err := b.Merge(cells)
	if err != nil || string(done[cells[0]]) != string(payload("b")) {
		t.Fatalf("Merge after reclaim = %s, %v", done[cells[0]], err)
	}
}

func TestZombieCannotClobberNewerComplete(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	cells := []Cell{{X: 7, SeedIndex: 0}}
	ctx := context.Background()

	a := openWorker(t, dir, "a", clk, time.Minute, 3)
	lsA, _, err := a.Acquire(ctx, cells)
	if err != nil {
		t.Fatalf("a.Acquire: %v", err)
	}

	// a hangs past its TTL; b reclaims and completes under token 2.
	clk.advance(2 * time.Minute)
	b := openWorker(t, dir, "b", clk, time.Minute, 3)
	lsB, _, err := b.Acquire(ctx, cells)
	if err != nil {
		t.Fatalf("b.Acquire: %v", err)
	}
	if err := b.Complete(lsB, payload("fresh")); err != nil {
		t.Fatalf("b.Complete: %v", err)
	}

	// The zombie wakes up and completes under its stale token. The
	// append succeeds (appends always do) but merge must keep b's
	// newer-token completion authoritative.
	if err := a.Complete(lsA, payload("stale")); err != nil {
		t.Fatalf("zombie Complete: %v", err)
	}
	done, _, err := b.Merge(cells)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if string(done[cells[0]]) != string(payload("fresh")) {
		t.Fatalf("merge kept %s, want the newer-token completion", done[cells[0]])
	}
}

func TestSameTokenRaceResolvesToSmallestWorker(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	cells := []Cell{{X: 3, SeedIndex: 0}}

	// Simulate the race window directly: both workers scanned the same
	// state (token 1 free) and both append a token-1 lease before
	// either verifies.
	a := openWorker(t, dir, "a", clk, time.Minute, 3)
	b := openWorker(t, dir, "b", clk, time.Minute, 3)
	ls := Lease{Cell: cells[0], Token: 1, Attempt: 1}
	if _, err := b.appendLease(ls); err != nil {
		t.Fatalf("b.appendLease: %v", err)
	}
	if _, err := a.appendLease(ls); err != nil {
		t.Fatalf("a.appendLease: %v", err)
	}
	for _, l := range []*Ledger{a, b} {
		st, err := l.Scan()
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		cs := st.Cell(cells[0])
		if cs.Holder != "a" || cs.HolderToken != 1 {
			t.Fatalf("%s sees holder %q token %d, want a/1", l.Worker(), cs.Holder, cs.HolderToken)
		}
	}
}

func TestAbandonRetryAndDegradation(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	cells := []Cell{{X: 1, SeedIndex: 0}}
	ctx := context.Background()
	l := openWorker(t, dir, "a", clk, time.Minute, 1) // one retry: 2 attempts total

	ls, _, err := l.Acquire(ctx, cells)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := l.Abandon(ls, "boom 1"); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	ls2, status, err := l.Acquire(ctx, cells)
	if err != nil || status != StatusAcquired {
		t.Fatalf("re-Acquire = %v, %v", status, err)
	}
	if ls2.Token != 2 || ls2.Attempt != 2 {
		t.Fatalf("retry claim = token %d attempt %d, want 2/2", ls2.Token, ls2.Attempt)
	}
	if err := l.Abandon(ls2, "boom 2"); err != nil {
		t.Fatalf("Abandon 2: %v", err)
	}

	// Two failures against a budget of one retry: degraded, and Acquire
	// reports the sweep done rather than retrying forever.
	if _, status, err := l.Acquire(ctx, cells); err != nil || status != StatusDone {
		t.Fatalf("Acquire on degraded cell = %v, %v, want StatusDone", status, err)
	}
	done, degraded, err := l.Merge(cells)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if len(done) != 0 || len(degraded) != 1 {
		t.Fatalf("Merge = %d done %d degraded, want 0/1", len(done), len(degraded))
	}
	d := degraded[0]
	if d.Cell != cells[0] || d.Attempts != 2 || d.LastError != "boom 2" {
		t.Fatalf("degraded = %+v", d)
	}
}

func TestFingerprintMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	openWorker(t, dir, "a", clk, time.Minute, 3)

	o := Options{Dir: dir, Worker: "b", Fingerprint: testFP(), clock: clk.now}
	o.Fingerprint.Seeds = 5
	if _, err := Open(o); err == nil || !strings.Contains(err.Error(), "seeds") {
		t.Fatalf("Open with changed seeds = %v, want error naming the field", err)
	}
}

func TestTornTailToleratedAndOwnFileTruncated(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	cells := []Cell{{X: 1, SeedIndex: 0}, {X: 2, SeedIndex: 0}}
	ctx := context.Background()

	a := openWorker(t, dir, "a", clk, time.Minute, 3)
	ls, _, err := a.Acquire(ctx, cells)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := a.Complete(ls, payload("ok")); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	a.Close()

	// Tear the final record: a crash mid-append leaves a partial line.
	path := filepath.Join(dir, "a"+ledgerExt)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	// Another worker's scan tolerates the torn tail and still sees the
	// intact records before it.
	b := openWorker(t, dir, "b", clk, time.Minute, 3)
	st, err := b.Scan()
	if err != nil {
		t.Fatalf("Scan over torn file: %v", err)
	}
	if cs := st.Cell(cells[0]); cs.Holder != "a" {
		t.Fatalf("intact lease before the tear lost: %+v", cs)
	}

	// The owner restarting truncates its own torn tail and appends
	// cleanly from there.
	a2 := openWorker(t, dir, "a", clk, time.Minute, 3)
	if _, err := a2.Scan(); err != nil {
		t.Fatalf("Scan after owner reopen: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("own-file reopen left a malformed line: %q", line)
		}
	}
}

func TestMidFileCorruptionIsHardError(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := openWorker(t, dir, "a", clk, time.Minute, 3)
	ls := Lease{Cell: Cell{X: 1}, Token: 1, Attempt: 1}
	if _, err := a.appendLease(ls); err != nil {
		t.Fatal(err)
	}
	a.Close()

	path := filepath.Join(dir, "a"+ledgerExt)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage followed by a valid record: corruption, not a torn tail.
	if _, err := f.WriteString("{garbage\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"abandon","v":1,"sweep":"t","x":1,"seed_index":0,"worker":"a","token":1}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = Open(Options{Dir: dir, Worker: "b", Fingerprint: testFP(), clock: clk.now})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Open over mid-file corruption = %v, want corruption error", err)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	dir := t.TempDir()
	cells := []Cell{{X: 1, SeedIndex: 0}}
	ctx := context.Background()

	// Real clock: a short TTL with heartbeats at TTL/3 must hold the
	// lease across several TTLs of wall time.
	a := openWorker(t, dir, "a", nil, 60*time.Millisecond, 3)
	ls, _, err := a.Acquire(ctx, cells)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	stop := a.Heartbeat(ctx, ls)
	time.Sleep(200 * time.Millisecond)
	b := openWorker(t, dir, "b", nil, 60*time.Millisecond, 3)
	st, err := b.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if cs := st.Cell(cells[0]); cs.Holder != "a" {
		t.Fatalf("lease lapsed despite heartbeats: holder %q", cs.Holder)
	}
	if err := stop(); err != nil {
		t.Fatalf("heartbeat reported: %v", err)
	}
	if c := a.Counters(); c.Renewals == 0 {
		t.Fatalf("no renewals recorded: %+v", c)
	}
	if err := a.Complete(ls, payload("ok")); err != nil {
		t.Fatalf("Complete: %v", err)
	}
}

func TestAcquireBlocksWhileLeasedElsewhere(t *testing.T) {
	dir := t.TempDir()
	cells := []Cell{{X: 1, SeedIndex: 0}}
	ctx := context.Background()

	a := openWorker(t, dir, "a", nil, time.Minute, 3)
	lsA, _, err := a.Acquire(ctx, cells)
	if err != nil {
		t.Fatalf("a.Acquire: %v", err)
	}

	// b blocks while a holds the only cell, then returns StatusDone
	// once a completes it.
	b := openWorker(t, dir, "b", nil, time.Minute, 3)
	got := make(chan error, 1)
	go func() {
		_, status, err := b.Acquire(ctx, cells)
		if err == nil && status != StatusDone {
			err = fmt.Errorf("b acquired a held cell (status %v)", status)
		}
		got <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := a.Complete(lsA, payload("a")); err != nil {
		t.Fatalf("a.Complete: %v", err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("b.Acquire never returned after the cell completed")
	}
	if c := b.Counters(); c.Waits == 0 {
		t.Fatalf("b never waited: %+v", c)
	}
}

func TestWorkerIDValidation(t *testing.T) {
	for _, bad := range []string{"", "../evil", "a b", ".hidden", "-dash"} {
		if _, err := Open(Options{Dir: t.TempDir(), Worker: bad, Fingerprint: testFP()}); err == nil {
			t.Fatalf("Open accepted worker ID %q", bad)
		}
	}
}

func TestIntraProcessHeldSet(t *testing.T) {
	dir := t.TempDir()
	cells := []Cell{{X: 1, SeedIndex: 0}}
	ctx := context.Background()
	l := openWorker(t, dir, "a", nil, time.Minute, 3)

	ls, _, err := l.Acquire(ctx, cells)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// A sibling goroutine of the same process must not claim the same
	// cell under the same token; with one cell it blocks until the
	// first completes.
	got := make(chan Status, 1)
	go func() {
		_, status, _ := l.Acquire(ctx, cells)
		got <- status
	}()
	time.Sleep(30 * time.Millisecond)
	if err := l.Complete(ls, payload("ok")); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	select {
	case status := <-got:
		if status != StatusDone {
			t.Fatalf("sibling got status %v, want StatusDone", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sibling Acquire never returned")
	}
}

// TestOpenRejectsSecondLiveWriter pins the live-writer lock: two live
// processes (here, two handles — flock binds to the open file
// description, so the in-process case exercises the same kernel path)
// must never append to one journal. The second opener under the same
// identity hard-fails while the first is live, and succeeds once the
// first closes — so a crashed or exited worker's identity stays
// reusable.
func TestOpenRejectsSecondLiveWriter(t *testing.T) {
	dir := t.TempDir()
	first := openWorker(t, dir, "dup", nil, time.Minute, 3)

	_, err := Open(Options{Dir: dir, Worker: "dup", Fingerprint: testFP()})
	if err == nil {
		t.Fatalf("second Open under a live identity succeeded")
	}
	if !strings.Contains(err.Error(), "live writer") {
		t.Fatalf("second Open error does not name the live writer: %v", err)
	}
	// A different identity in the same ledger is unaffected.
	other := openWorker(t, dir, "dup2", nil, time.Minute, 3)
	other.Close()

	if err := first.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	reopened, err := Open(Options{Dir: dir, Worker: "dup", Fingerprint: testFP()})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	reopened.Close()
}
