package lease

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"syscall"
	"time"

	"smbm/internal/obs"
)

// ledgerExt is the worker journal file suffix.
const ledgerExt = ".jsonl"

// Backoff envelope for lease contention and leased-elsewhere waits:
// capped exponential with ±50% seeded jitter, so a fleet of workers
// that collide never retries in lockstep.
const (
	backoffBase = 25 * time.Millisecond
	backoffCap  = 2 * time.Second
)

// Defaults for zero Options fields.
const (
	// DefaultTTL is the default lease expiry: long enough that a
	// healthy worker's heartbeats (every TTL/3) always land, short
	// enough that a crashed worker's cells are reclaimed promptly.
	DefaultTTL = time.Minute
	// DefaultRetries is the default per-cell retry budget: a cell is
	// degraded after 1+DefaultRetries failed attempts.
	DefaultRetries = 3
)

// workerIDRx constrains worker IDs to safe file-name material.
var workerIDRx = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// Options configures Open.
type Options struct {
	// Dir is the shared ledger directory (created if absent).
	Dir string
	// Worker is this process's unique ledger identity; it names the
	// worker's journal file, so two live workers must never share one.
	Worker string
	// Fingerprint pins the ledger to one sweep configuration.
	Fingerprint Fingerprint
	// TTL is the lease expiry horizon (0 = DefaultTTL).
	TTL time.Duration
	// Retries is the per-cell retry budget: a cell is degraded once its
	// failed attempts exceed Retries (0 = DefaultRetries; negative
	// means no retries at all).
	Retries int

	// clock overrides wall time in tests.
	clock func() time.Time
}

// Lease is one acquired cell claim.
type Lease struct {
	// Cell is the claimed cell.
	Cell Cell
	// Token is the claim's fencing token.
	Token uint64
	// Attempt is the 1-based attempt number this claim represents.
	Attempt int
}

// Status reports how an Acquire call resolved.
type Status int

// Acquire outcomes.
const (
	// StatusAcquired means the returned Lease is held.
	StatusAcquired Status = iota
	// StatusDone means every cell is completed or degraded: there is no
	// work left in this sweep for any worker.
	StatusDone
)

// Ledger is one worker's handle on a shared lease ledger. The handle is
// safe for concurrent use by the worker's own goroutines (appends are
// serialized and an in-process held-set keeps them off each other's
// cells); the cross-process protocol needs no locks at all.
type Ledger struct {
	dir     string
	worker  string
	fp      Fingerprint
	ttl     time.Duration
	retries int
	clock   func() time.Time

	mu     sync.Mutex
	f      *os.File
	rng    *rand.Rand
	held   map[Cell]bool
	counts obs.LeaseCounts
}

// Open joins (or creates) the ledger at o.Dir as worker o.Worker. If
// the worker's journal file already exists — a restart under the same
// identity — its headers are verified against the fingerprint and a
// torn final line (the crash artifact of the previous incarnation) is
// truncated away; the single-writer discipline makes that safe.
//
// Open enforces that discipline: it takes an exclusive flock on the
// journal and hard-fails if another live process already holds it, so
// two workers that end up with the same identity (pid reuse after a
// restart, a copy-pasted -worker-id) are detected at startup instead
// of silently interleaving appends — and instead of the second opener
// truncating what it mistakes for the first one's torn tail. The lock
// dies with the process, so a crashed worker's identity is reusable
// immediately.
func Open(o Options) (*Ledger, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("lease: ledger directory is empty")
	}
	if !workerIDRx.MatchString(o.Worker) {
		return nil, fmt.Errorf("lease: worker ID %q must match %s", o.Worker, workerIDRx)
	}
	if o.Fingerprint.Sweep == "" {
		return nil, fmt.Errorf("lease: fingerprint has no sweep name")
	}
	l := &Ledger{
		dir:     o.Dir,
		worker:  o.Worker,
		fp:      o.Fingerprint,
		ttl:     o.TTL,
		retries: o.Retries,
		clock:   o.clock,
		held:    map[Cell]bool{},
	}
	if l.ttl == 0 {
		l.ttl = DefaultTTL
	}
	if l.retries == 0 {
		l.retries = DefaultRetries
	} else if l.retries < 0 {
		l.retries = 0
	}
	if l.clock == nil {
		l.clock = wallNow
	}
	// Jitter only de-synchronizes colliding workers, so a seed derived
	// from the worker's identity is both deterministic per worker and
	// distinct across the fleet.
	h := fnv.New64a()
	h.Write([]byte(o.Worker))
	l.rng = rand.New(rand.NewSource(int64(h.Sum64())))

	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lease: %s: %w", o.Dir, err)
	}
	// Verify every existing journal's headers before writing anything:
	// a worker started with different flags must be refused loudly, not
	// leave its own conflicting header behind.
	if _, err := scanDir(o.Dir, o.Fingerprint, 0); err != nil {
		return nil, err
	}
	path := filepath.Join(o.Dir, o.Worker+ledgerExt)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lease: %s: %w", path, err)
	}
	l.f = f
	// The flock must precede the torn-tail scan: a "torn" final line on
	// a locked journal is another live writer's in-flight append, not a
	// crash artifact, and truncating it would corrupt their journal.
	if err := syscall.Flock(int(l.f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		l.f.Close()
		return nil, fmt.Errorf("lease: %s: worker ID %q already has a live writer (%v); two live processes must never share an identity", path, o.Worker, err)
	}
	fs, err := scanFile(path, o.Fingerprint)
	if err != nil {
		l.f.Close()
		return nil, err
	}
	if fs.torn {
		// Our own file, our own torn tail: drop it so the journal stays
		// one-record-per-line before we append.
		if err := l.f.Truncate(fs.validSize); err != nil {
			l.f.Close()
			return nil, fmt.Errorf("lease: %s: dropping torn final record: %w", path, err)
		}
	}
	if !fs.hasHeader {
		fp := o.Fingerprint
		if err := l.append(record{Kind: KindHeader, V: recordV, Sweep: fp.Sweep, Header: &fp}); err != nil {
			l.f.Close()
			return nil, err
		}
	}
	return l, nil
}

// Close releases the worker's journal file and with it the live-writer
// lock, making the identity reusable. Held leases are left to expire;
// call Abandon first for a prompt release.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Worker returns the ledger handle's worker identity.
func (l *Ledger) Worker() string { return l.worker }

// TTL returns the lease expiry horizon.
func (l *Ledger) TTL() time.Duration { return l.ttl }

// Retries returns the per-cell retry budget.
func (l *Ledger) Retries() int { return l.retries }

// Counters snapshots this process's lease activity.
func (l *Ledger) Counters() obs.LeaseCounts {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts
}

// nowMS reads the (injectable) clock as Unix milliseconds.
func (l *Ledger) nowMS() int64 { return l.clock().UnixMilli() }

// Scan returns the merged point-in-time view of the whole ledger.
func (l *Ledger) Scan() (*State, error) {
	return scanDir(l.dir, l.fp, l.nowMS())
}

// append serializes rec as one journal line. A short write reports the
// exact position so a worker losing its disk mid-record can say what
// made it into the ledger.
func (l *Ledger) append(rec record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("lease: %w", err)
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if n, err := l.f.Write(line); err != nil {
		return fmt.Errorf("lease: %s: wrote %d of %d bytes of %s record: %w", l.f.Name(), n, len(line), rec.Kind, err)
	}
	return nil
}

// cellRecord assembles a cell record for ls.
func (l *Ledger) cellRecord(kind string, ls Lease) record {
	return record{
		Kind: kind, V: recordV, Sweep: l.fp.Sweep,
		X: ls.Cell.X, SeedIndex: ls.Cell.SeedIndex,
		Worker: l.worker, Token: ls.Token, Attempt: ls.Attempt,
	}
}

// appendLease journals a claim (or renewal) of ls expiring one TTL from
// now, and returns the deadline written.
func (l *Ledger) appendLease(ls Lease) (int64, error) {
	rec := l.cellRecord(KindLease, ls)
	rec.DeadlineMS = l.nowMS() + l.ttl.Milliseconds()
	return rec.DeadlineMS, l.append(rec)
}

// hold marks c as claimed by this process (so sibling goroutines skip
// it) and reports whether the mark was newly taken.
func (l *Ledger) hold(c Cell) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.held[c] {
		return false
	}
	l.held[c] = true
	return true
}

// release clears the in-process hold on c.
func (l *Ledger) release(c Cell) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.held, c)
}

// bump advances one counter lane under the lock.
func (l *Ledger) bump(f func(*obs.LeaseCounts)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f(&l.counts)
}

// pause sleeps for roughly d (±50% seeded jitter), or returns early
// with ctx's error.
func (l *Ledger) pause(ctx context.Context, d time.Duration) error {
	l.mu.Lock()
	jittered := d/2 + time.Duration(l.rng.Int63n(int64(d)))
	l.mu.Unlock()
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Acquire claims one free cell from cells, blocking — with capped
// exponential backoff — while every pending cell is leased elsewhere,
// until a claim wins, every cell is completed or degraded (StatusDone),
// or ctx ends. The claim protocol is optimistic: append a lease record
// under the next fencing token, then re-scan to verify this worker won
// the token; a lost race backs off and tries another cell.
func (l *Ledger) Acquire(ctx context.Context, cells []Cell) (Lease, Status, error) {
	delay := backoffBase
	for {
		if err := ctx.Err(); err != nil {
			return Lease{}, StatusAcquired, err
		}
		st, err := l.Scan()
		if err != nil {
			return Lease{}, StatusAcquired, err
		}
		var free []Cell
		pending := false
		for _, c := range cells {
			switch st.Phase(c, l.retries) {
			case PhaseCompleted, PhaseDegraded:
			case PhaseLeased:
				pending = true
			case PhaseFree:
				if l.isHeld(c) {
					pending = true // a sibling goroutine is on it
					continue
				}
				free = append(free, c)
			}
		}
		if len(free) == 0 {
			if !pending {
				return Lease{}, StatusDone, nil
			}
			l.bump(func(c *obs.LeaseCounts) { c.Waits++ })
			if err := l.pause(ctx, delay); err != nil {
				return Lease{}, StatusAcquired, err
			}
			delay = nextDelay(delay)
			continue
		}
		// Start each worker at a different point of the free list so a
		// fleet spreads out instead of stampeding the first free cell.
		c := free[int(workerHash(l.worker)%uint64(len(free)))]
		cs := st.Cell(c)
		ls := Lease{Cell: c, Token: cs.NextToken, Attempt: cs.NextAttempt}
		if !l.hold(c) {
			continue // a sibling goroutine claimed it since the scan
		}
		if _, err := l.appendLease(ls); err != nil {
			l.release(c)
			return Lease{}, StatusAcquired, err
		}
		verify, err := l.Scan()
		if err != nil {
			l.release(c)
			return Lease{}, StatusAcquired, err
		}
		got := verify.Cell(c)
		if got.Holder == l.worker && got.HolderToken == ls.Token {
			l.bump(func(cnt *obs.LeaseCounts) {
				cnt.Leases++
				if cs.TopExpired {
					cnt.Reclaims++
				}
			})
			return ls, StatusAcquired, nil
		}
		// Lost the fencing race; our same-token record is shadowed by
		// the winner and never counts as a failed attempt.
		l.release(c)
		l.bump(func(cnt *obs.LeaseCounts) { cnt.Conflicts++ })
		if err := l.pause(ctx, delay); err != nil {
			return Lease{}, StatusAcquired, err
		}
		delay = nextDelay(delay)
	}
}

// isHeld reports whether this process already holds c.
func (l *Ledger) isHeld(c Cell) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.held[c]
}

// nextDelay doubles the backoff up to the cap.
func nextDelay(d time.Duration) time.Duration {
	if d *= 2; d > backoffCap {
		return backoffCap
	}
	return d
}

// workerHash spreads workers across the free list deterministically.
func workerHash(worker string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(worker))
	return h.Sum64()
}

// Renew extends ls by one TTL from now (a heartbeat).
func (l *Ledger) Renew(ls Lease) error {
	if _, err := l.appendLease(ls); err != nil {
		return err
	}
	l.bump(func(c *obs.LeaseCounts) { c.Renewals++ })
	return nil
}

// Heartbeat renews ls every TTL/3 until the returned stop function is
// called or ctx ends. stop reports the first renewal failure, which the
// caller can fold into the cell's outcome; a worker whose renewals fail
// simply loses the lease to reclamation, so the failure is advisory.
func (l *Ledger) Heartbeat(ctx context.Context, ls Lease) (stop func() error) {
	interval := l.ttl / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(errc)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				if err := l.Renew(ls); err != nil {
					errc <- err
					return
				}
			}
		}
	}()
	var once sync.Once
	return func() error {
		once.Do(func() { close(done) })
		return <-errc
	}
}

// Complete journals ls's results and fsyncs the journal before
// returning, so an acknowledged completion survives a crash or power
// loss immediately after: fsync-on-complete is what upgrades the
// O_APPEND discipline from torn-write-safe to durable.
func (l *Ledger) Complete(ls Lease, results json.RawMessage) error {
	rec := l.cellRecord(KindComplete, ls)
	rec.Results = results
	if err := l.append(rec); err != nil {
		return err
	}
	l.mu.Lock()
	err := l.f.Sync()
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("lease: %s: fsync after complete: %w", l.f.Name(), err)
	}
	l.release(ls.Cell)
	l.bump(func(c *obs.LeaseCounts) { c.Completes++ })
	return nil
}

// Abandon releases ls because the cell failed, making it immediately
// retryable (by any worker) and consuming one attempt.
func (l *Ledger) Abandon(ls Lease, reason string) error {
	rec := l.cellRecord(KindAbandon, ls)
	rec.Error = reason
	if err := l.append(rec); err != nil {
		return err
	}
	l.release(ls.Cell)
	l.bump(func(c *obs.LeaseCounts) { c.Abandons++ })
	return nil
}

// Wait blocks — with the same capped backoff as Acquire — until every
// cell is completed or degraded, or ctx ends. It is the coordinator's
// half of a fleet run: a process that contributes no compute but wants
// to merge and render once the workers converge.
func (l *Ledger) Wait(ctx context.Context, cells []Cell) error {
	delay := backoffBase
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		st, err := l.Scan()
		if err != nil {
			return err
		}
		pending := false
		for _, c := range cells {
			if p := st.Phase(c, l.retries); p == PhaseFree || p == PhaseLeased {
				pending = true
				break
			}
		}
		if !pending {
			return nil
		}
		l.bump(func(c *obs.LeaseCounts) { c.Waits++ })
		if err := l.pause(ctx, delay); err != nil {
			return err
		}
		delay = nextDelay(delay)
	}
}

// Degraded describes one cell that exhausted its retry budget.
type Degraded struct {
	// Cell is the degraded cell.
	Cell Cell
	// Attempts is how many attempts failed.
	Attempts int
	// LastError is the most recent abandon reason ("" when every
	// attempt died by expiry).
	LastError string
}

// Merge scans the ledger and splits cells into completed payloads and
// degraded cells, in the caller's cell order. Cells still pending
// (free or leased) appear in neither — callers that want a total
// partition should Acquire until StatusDone first.
func (l *Ledger) Merge(cells []Cell) (map[Cell]json.RawMessage, []Degraded, error) {
	st, err := l.Scan()
	if err != nil {
		return nil, nil, err
	}
	done := make(map[Cell]json.RawMessage)
	var degraded []Degraded
	for _, c := range cells {
		cs := st.Cell(c)
		switch st.Phase(c, l.retries) {
		case PhaseCompleted:
			done[c] = cs.Results
		case PhaseDegraded:
			degraded = append(degraded, Degraded{Cell: c, Attempts: cs.Failed, LastError: cs.LastError})
		}
	}
	return done, degraded, nil
}
