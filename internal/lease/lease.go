// Package lease is the crash-safe work-leasing ledger behind
// distributed sweeps: several worker processes — on one machine or a
// fleet — divide the (x, seed) cells of one deterministic sweep among
// themselves through append-only journal files in a shared directory,
// surviving worker crashes, hangs, zombies and torn writes without ever
// completing a cell twice in the merged result.
//
// # Ledger layout
//
// A ledger is a directory. Every worker owns exactly one file in it,
// <worker>.jsonl, opened O_APPEND and written only by that worker — the
// single-writer discipline that makes torn-write recovery trivial: a
// malformed line can only be the file's final line (a crash or
// truncation mid-append), so every reader skips a torn tail and treats
// a malformed line followed by more data as real corruption. Readers
// merge all files on every scan; no locks, no server, any shared
// filesystem works.
//
// # Record grammar
//
// Each line is one JSON record discriminated by "kind":
//
//	header    the sweep fingerprint (identity + config digest), written
//	          once per sweep per file; scans verify every matching-sweep
//	          header field by field and refuse mismatches loudly.
//	lease     worker W claims cell (x, seed_index) with fencing token T
//	          until deadline_ms; re-appended with a fresh deadline on
//	          every heartbeat renewal.
//	complete  worker W finished the cell under token T; results carries
//	          the serialized per-policy results. fsynced before the
//	          worker moves on.
//	abandon   worker W gave the cell up under token T (the cell failed);
//	          error says why. The cell becomes retryable immediately.
//
// # Fencing rules
//
// Fencing tokens are per-cell and monotonically increasing: a claimant
// always writes max(observed token)+1. Two workers that race from the
// same scan therefore write the *same* token, and the conflict resolves
// deterministically — the lexicographically smallest worker ID wins the
// token — which both sides discover on their post-append verification
// scan; the loser backs off (capped exponential backoff with seeded
// jitter) and re-acquires elsewhere. On merge the newest fencing token
// is authoritative: a zombie worker completing under a stale token can
// never clobber a cell completed under a newer one.
//
// The execution guarantee is deliberately at-least-once, exactly-once
// merge: append-only files provide no atomic claim primitive, so in a
// narrow window (claimant A appends and verifies before claimant B's
// same-token append becomes visible) both workers can run the same
// cell. The merge stays exactly-once regardless — one complete record
// wins per cell (newest token, then smallest worker) — and because the
// sweep engine is deterministic, duplicate completions carry
// bit-identical results, so a duplicated execution costs wasted work,
// never a wrong table. The chaos harness checks exactly that property
// against a single-process oracle.
//
// # Liveness
//
// A lease whose deadline passes without renewal or completion is
// expired: any worker may reclaim the cell under the next token. Every
// expiry or abandonment consumes one attempt; a cell whose failed
// attempts exceed the configured retry budget is degraded — reported,
// skipped by workers, and omitted from the merged grid so partial
// tables still render (the graceful-degradation contract).
//
// Wall-clock reads are confined to the //smb:leaseclock-annotated clock
// in clock.go; the smblint leaseclock analyzer enforces that this
// package — the only one allowed to observe real time outside the
// reporting layers — does so nowhere else.
package lease

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Cell identifies one unit of leased work: one (x, seedIndex) sweep
// cell, keyed exactly like the checkpoint journal.
type Cell struct {
	// X is the swept parameter value.
	X int
	// SeedIndex is the replication index.
	SeedIndex int
}

// String renders the cell for errors and warnings.
func (c Cell) String() string {
	return "x=" + strconv.Itoa(c.X) + " seed[" + strconv.Itoa(c.SeedIndex) + "]"
}

// Fingerprint pins a ledger to one sweep configuration: the sweep's
// identity plus the caller-supplied config digest. Every worker writes
// it as a header record; every scan verifies matching-sweep headers
// field by field, so a worker started with different flags fails loudly
// instead of silently mixing incompatible cells into one grid.
type Fingerprint struct {
	// Sweep names the sweep ("fig5.1"); ledger directories are shared
	// across sweeps, so every record carries it.
	Sweep string `json:"sweep"`
	// XLabel echoes the sweep's swept-parameter label.
	XLabel string `json:"x_label"`
	// XsHash digests the swept values.
	XsHash string `json:"xs_hash"`
	// Seeds is the number of replications per point.
	Seeds int `json:"seeds"`
	// BaseSeed derives per-replication seeds.
	BaseSeed int64 `json:"base_seed"`
	// Config is the caller's cell-config digest (B, C, policy roster,
	// fault spec — everything the sweep struct cannot see).
	Config string `json:"config,omitempty"`
}

// diff compares the expected fingerprint against a journaled one and
// returns an error naming the first differing field, or nil on match.
func (f Fingerprint) diff(got Fingerprint) error {
	for _, c := range []struct{ name, journal, want string }{
		{"x_label", got.XLabel, f.XLabel},
		{"xs", got.XsHash, f.XsHash},
		{"seeds", strconv.Itoa(got.Seeds), strconv.Itoa(f.Seeds)},
		{"base_seed", strconv.FormatInt(got.BaseSeed, 10), strconv.FormatInt(f.BaseSeed, 10)},
		{"config", got.Config, f.Config},
	} {
		if c.journal != c.want {
			return fmt.Errorf("%s: ledger has %q, sweep has %q", c.name, c.journal, c.want)
		}
	}
	return nil
}

// Record kinds (the "kind" discriminator of every ledger line).
const (
	// KindHeader is the per-sweep fingerprint record.
	KindHeader = "header"
	// KindLease claims (or renews) a cell under a fencing token.
	KindLease = "lease"
	// KindComplete journals a finished cell's results.
	KindComplete = "complete"
	// KindAbandon releases a failed cell for retry.
	KindAbandon = "abandon"
)

// recordV is the ledger schema version this build writes and accepts.
const recordV = 1

// record is one ledger line; which fields are meaningful depends on
// Kind. Unknown kinds are a hard scan error: silently skipping records
// written by a newer build could resurrect work that build had fenced
// off.
type record struct {
	// Kind discriminates the record (KindHeader, KindLease, …).
	Kind string `json:"kind"`
	// V is the schema version (recordV).
	V int `json:"v"`
	// Sweep keys the record to its sweep (ledgers are shared).
	Sweep string `json:"sweep"`

	// Header carries the fingerprint on KindHeader records.
	Header *Fingerprint `json:"header,omitempty"`

	// X and SeedIndex identify the cell on cell records.
	X int `json:"x"`
	// SeedIndex is the cell's replication index.
	SeedIndex int `json:"seed_index"`
	// Worker is the writing worker's ID.
	Worker string `json:"worker,omitempty"`
	// Token is the cell's fencing token.
	Token uint64 `json:"token,omitempty"`
	// Attempt is the 1-based attempt number this token represents.
	Attempt int `json:"attempt,omitempty"`
	// DeadlineMS is the lease expiry as Unix milliseconds (KindLease).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Results is the opaque serialized cell payload (KindComplete).
	Results json.RawMessage `json:"results,omitempty"`
	// Error says why the cell was given up (KindAbandon).
	Error string `json:"error,omitempty"`
}

// cell returns the record's cell key.
func (r record) cell() Cell { return Cell{X: r.X, SeedIndex: r.SeedIndex} }
