// Package pkt defines the unit-sized packet model shared by both switch
// models of the paper: packets labeled with an output port and either a
// required amount of processing work (Section III) or an intrinsic value
// (Section IV).
package pkt

import (
	"errors"
	"fmt"
)

// Packet is a unit-sized packet. Which "heterogeneity" dimensions are
// meaningful depends on the model:
//
//   - processing model: Work ∈ [1,k] is the required processing in cycles,
//     Value is 1;
//   - value model: Value ∈ [1,k] is the intrinsic value, Work is 1;
//   - combined model: both Work (fixed per port) and Value are drawn
//     from [1,k].
//
// Port is the destination output port, 0-based.
type Packet struct {
	// Port is the destination output port, 0-based.
	Port int
	// Work is the required processing in cycles (processing model).
	Work int
	// Value is the intrinsic value (value model).
	Value int
}

// New returns a packet with the given port and unit work and value.
func New(port int) Packet {
	return Packet{Port: port, Work: 1, Value: 1}
}

// NewWork returns a processing-model packet: unit value, the given work.
func NewWork(port, work int) Packet {
	return Packet{Port: port, Work: work, Value: 1}
}

// NewValue returns a value-model packet: unit work, the given value.
func NewValue(port, value int) Packet {
	return Packet{Port: port, Work: 1, Value: value}
}

// NewWorkValue returns a combined-model packet carrying both a required
// work and an intrinsic value.
func NewWorkValue(port, work, value int) Packet {
	return Packet{Port: port, Work: work, Value: value}
}

// String implements fmt.Stringer in the paper's boxed notation, e.g.
// "[w=3 -> 2]" for a packet with work 3 destined to port 2. Combined
// work×value packets render both labels.
func (p Packet) String() string {
	if p.Value > 1 && p.Work > 1 {
		return fmt.Sprintf("[w=%d v=%d -> %d]", p.Work, p.Value, p.Port)
	}
	if p.Value > 1 {
		return fmt.Sprintf("[v=%d -> %d]", p.Value, p.Port)
	}
	return fmt.Sprintf("[w=%d -> %d]", p.Work, p.Port)
}

// Validate reports whether the packet is well-formed for a switch with
// ports output ports and the per-packet bound maxLabel (k) on work and
// value.
//
//smb:hotpath
func (p Packet) Validate(ports, maxLabel int) error {
	switch {
	case p.Port < 0 || p.Port >= ports:
		//smb:alloc-ok validation failure path, never taken by well-formed input
		return fmt.Errorf("pkt: port %d out of range [0,%d)", p.Port, ports)
	case p.Work < 1 || p.Work > maxLabel:
		//smb:alloc-ok validation failure path, never taken by well-formed input
		return fmt.Errorf("pkt: work %d out of range [1,%d]", p.Work, maxLabel)
	case p.Value < 1 || p.Value > maxLabel:
		//smb:alloc-ok validation failure path, never taken by well-formed input
		return fmt.Errorf("pkt: value %d out of range [1,%d]", p.Value, maxLabel)
	}
	return nil
}

// ErrEmptyBurst is returned by burst constructors invoked with a
// non-positive count.
var ErrEmptyBurst = errors.New("pkt: burst count must be positive")

// Burst returns h copies of p, the paper's "h × [w]" notation.
func Burst(p Packet, h int) []Packet {
	if h <= 0 {
		return nil
	}
	out := make([]Packet, h)
	for i := range out {
		out[i] = p
	}
	return out
}

// Concat concatenates bursts preserving arrival order.
func Concat(bursts ...[]Packet) []Packet {
	var total int
	for _, b := range bursts {
		total += len(b)
	}
	out := make([]Packet, 0, total)
	for _, b := range bursts {
		out = append(out, b...)
	}
	return out
}

// TotalValue sums the values of the given packets.
func TotalValue(ps []Packet) int {
	var sum int
	for _, p := range ps {
		sum += p.Value
	}
	return sum
}

// TotalWork sums the required work of the given packets.
func TotalWork(ps []Packet) int {
	var sum int
	for _, p := range ps {
		sum += p.Work
	}
	return sum
}
