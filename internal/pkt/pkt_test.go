package pkt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	cases := []struct {
		name string
		got  Packet
		want Packet
	}{
		{"New", New(3), Packet{Port: 3, Work: 1, Value: 1}},
		{"NewWork", NewWork(2, 5), Packet{Port: 2, Work: 5, Value: 1}},
		{"NewValue", NewValue(1, 7), Packet{Port: 1, Work: 1, Value: 7}},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %+v, want %+v", c.name, c.got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	if got := NewWork(2, 3).String(); got != "[w=3 -> 2]" {
		t.Errorf("work packet String() = %q", got)
	}
	if got := NewValue(0, 4).String(); got != "[v=4 -> 0]" {
		t.Errorf("value packet String() = %q", got)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		p       Packet
		ports   int
		max     int
		wantErr bool
	}{
		{"valid", NewWork(0, 3), 4, 6, false},
		{"valid max", NewWork(3, 6), 4, 6, false},
		{"port negative", Packet{Port: -1, Work: 1, Value: 1}, 4, 6, true},
		{"port too big", NewWork(4, 1), 4, 6, true},
		{"work zero", Packet{Port: 0, Work: 0, Value: 1}, 4, 6, true},
		{"work too big", NewWork(0, 7), 4, 6, true},
		{"value zero", Packet{Port: 0, Work: 1, Value: 0}, 4, 6, true},
		{"value too big", NewValue(0, 7), 4, 6, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate(c.ports, c.max)
			if (err != nil) != c.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, c.wantErr)
			}
		})
	}
}

func TestBurst(t *testing.T) {
	b := Burst(NewWork(1, 2), 5)
	if len(b) != 5 {
		t.Fatalf("len = %d, want 5", len(b))
	}
	for _, p := range b {
		if p != NewWork(1, 2) {
			t.Errorf("burst element %+v differs", p)
		}
	}
	if got := Burst(New(0), 0); got != nil {
		t.Errorf("Burst with h=0 = %v, want nil", got)
	}
	if got := Burst(New(0), -3); got != nil {
		t.Errorf("Burst with h<0 = %v, want nil", got)
	}
}

func TestConcat(t *testing.T) {
	a := Burst(New(0), 2)
	b := Burst(New(1), 3)
	all := Concat(a, b, nil)
	if len(all) != 5 {
		t.Fatalf("len = %d, want 5", len(all))
	}
	if all[0].Port != 0 || all[4].Port != 1 {
		t.Errorf("order not preserved: %v", all)
	}
}

func TestTotals(t *testing.T) {
	ps := []Packet{NewWork(0, 2), NewWork(1, 3), NewValue(2, 7)}
	if got := TotalWork(ps); got != 6 {
		t.Errorf("TotalWork = %d, want 6", got)
	}
	if got := TotalValue(ps); got != 9 {
		t.Errorf("TotalValue = %d, want 9", got)
	}
}

func TestQuickBurstTotals(t *testing.T) {
	f := func(port, work uint8, h uint8) bool {
		p := NewWork(int(port), 1+int(work%16))
		n := int(h % 64)
		b := Burst(p, n)
		return TotalWork(b) == n*p.Work && TotalValue(b) == n
	}
	if err := quick.Check(f, qcfg(100)); err != nil {
		t.Error(err)
	}
}

// qcfg returns a deterministic quick.Config so property tests are
// reproducible run to run.
func qcfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(7))}
}
