package traffic

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"smbm/internal/pkt"
)

// binaryMagic opens the v1 binary trace format: a fixed 8-byte record
// per packet (little-endian uint32 slot, uint16 port, uint8 work, uint8
// value) after a header with the slot count. Roughly 3x smaller and an
// order of magnitude faster to parse than the text format — intended for
// the paper-scale 2·10⁶-slot traces.
var binaryMagic = []byte("SMBT1\n")

// binary format caps: the fixed-width record bounds ports and labels.
const (
	maxBinaryPort  = 1<<16 - 1
	maxBinaryLabel = 1<<8 - 1
)

// WriteBinary serializes the trace in the binary format.
func (tr Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(tr))); err != nil {
		return err
	}
	var rec [8]byte
	for t, slot := range tr {
		for _, p := range slot {
			if p.Port < 0 || p.Port > maxBinaryPort || p.Work < 0 || p.Work > maxBinaryLabel || p.Value < 0 || p.Value > maxBinaryLabel {
				return fmt.Errorf("traffic: packet %v exceeds the binary format's field widths", p)
			}
			binary.LittleEndian.PutUint32(rec[0:], uint32(t))
			binary.LittleEndian.PutUint16(rec[4:], uint16(p.Port))
			rec[6] = byte(p.Work)
			rec[7] = byte(p.Value)
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinaryTrace parses the binary format produced by WriteBinary.
func ReadBinaryTrace(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("traffic: reading binary magic: %w", err)
	}
	if string(magic) != string(binaryMagic) {
		return nil, fmt.Errorf("traffic: bad binary magic %q", magic)
	}
	var slots uint32
	if err := binary.Read(br, binary.LittleEndian, &slots); err != nil {
		return nil, fmt.Errorf("traffic: reading slot count: %w", err)
	}
	tr := make(Trace, slots)
	var rec [8]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				return tr, nil
			}
			return nil, fmt.Errorf("traffic: reading record: %w", err)
		}
		t := binary.LittleEndian.Uint32(rec[0:])
		if t >= slots {
			return nil, fmt.Errorf("traffic: record slot %d out of [0,%d)", t, slots)
		}
		tr[t] = append(tr[t], pkt.Packet{
			Port:  int(binary.LittleEndian.Uint16(rec[4:])),
			Work:  int(rec[6]),
			Value: int(rec[7]),
		})
	}
}

// ReadAnyTrace sniffs the input and parses either the text or the binary
// format.
func ReadAnyTrace(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == string(binaryMagic) {
		return ReadBinaryTrace(br)
	}
	return ReadTrace(br)
}
