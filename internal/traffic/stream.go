package traffic

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"smbm/internal/pkt"
)

// Streaming readers for the two trace serializations. Unlike ReadTrace
// and ReadBinaryTrace, which materialize the whole trace, these cursors
// hold one slot's packets at a time, so replaying a 2·10⁶-slot file
// costs O(peak burst) memory. The price is an ordering requirement:
// records must be grouped by non-decreasing slot — exactly the order
// Write and WriteBinary emit — and an out-of-order record is a stream
// error rather than a backward insert.

// StreamText opens a streaming cursor over the v1 text format,
// returning the cursor and the declared slot count. The reader is
// consumed as the cursor advances; it is not closed (wrap with a
// FileProvider for managed file lifetimes).
func StreamText(r io.Reader) (Cursor, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, 0, err
		}
		return nil, 0, fmt.Errorf("traffic: empty trace input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, traceHeader) {
		return nil, 0, fmt.Errorf("traffic: bad trace header %q", header)
	}
	var slots int
	if _, err := fmt.Sscanf(header[len(traceHeader):], " slots=%d", &slots); err != nil {
		return nil, 0, fmt.Errorf("traffic: bad trace header %q: %v", header, err)
	}
	if slots < 0 {
		return nil, 0, fmt.Errorf("traffic: negative slot count %d", slots)
	}
	return &textStream{sc: sc, slots: slots, line: 1, pendingSlot: -1}, slots, nil
}

// textStream is the text-format streaming cursor.
type textStream struct {
	sc    *bufio.Scanner
	slots int
	line  int
	cur   int // next slot Next will emit

	pendingSlot int // slot of the stashed look-ahead record (-1 = none)
	pending     pkt.Packet

	err error
}

// fail records the first stream error; the cursor emits empty bursts
// from here on.
func (s *textStream) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// readRecord scans forward to the next packet record, returning its
// slot. ok is false at end of stream or on error.
func (s *textStream) readRecord() (slot int, p pkt.Packet, ok bool) {
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			s.fail(fmt.Errorf("traffic: line %d: want 4 fields, got %d", s.line, len(fields)))
			return 0, pkt.Packet{}, false
		}
		var nums [4]int
		for i, f := range fields {
			n, err := strconv.Atoi(f)
			if err != nil {
				s.fail(fmt.Errorf("traffic: line %d: %v", s.line, err))
				return 0, pkt.Packet{}, false
			}
			nums[i] = n
		}
		t := nums[0]
		if t < 0 || t >= s.slots {
			s.fail(fmt.Errorf("traffic: line %d: slot %d out of [0,%d)", s.line, t, s.slots))
			return 0, pkt.Packet{}, false
		}
		return t, pkt.Packet{Port: nums[1], Work: nums[2], Value: nums[3]}, true
	}
	if err := s.sc.Err(); err != nil {
		s.fail(err)
	}
	return 0, pkt.Packet{}, false
}

// Next implements Source: the packets of the next slot, in file order.
func (s *textStream) Next() []pkt.Packet {
	if s.err != nil || s.cur >= s.slots {
		return nil
	}
	t := s.cur
	s.cur++
	var out []pkt.Packet
	if s.pendingSlot >= 0 {
		if s.pendingSlot > t {
			return nil // stashed record belongs to a later slot
		}
		out = append(out, s.pending)
		s.pendingSlot = -1
	}
	for {
		slot, p, ok := s.readRecord()
		if !ok {
			return out
		}
		switch {
		case slot == t:
			out = append(out, p)
		case slot > t:
			s.pendingSlot, s.pending = slot, p
			return out
		default:
			s.fail(fmt.Errorf("traffic: line %d: slot %d after slot %d (streaming requires non-decreasing slots)", s.line, slot, t))
			return nil
		}
	}
}

// Err implements Cursor.
func (s *textStream) Err() error { return s.err }

// Close implements Cursor: the cursor owns no resources.
func (s *textStream) Close() error { return nil }

// StreamBinary opens a streaming cursor over the v1 binary format,
// returning the cursor and the declared slot count. Like StreamText,
// records must be grouped by non-decreasing slot.
func StreamBinary(r io.Reader) (Cursor, int, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("traffic: reading binary magic: %w", err)
	}
	if string(magic) != string(binaryMagic) {
		return nil, 0, fmt.Errorf("traffic: bad binary magic %q", magic)
	}
	var slots uint32
	if err := binary.Read(br, binary.LittleEndian, &slots); err != nil {
		return nil, 0, fmt.Errorf("traffic: reading slot count: %w", err)
	}
	return &binaryStream{br: br, slots: int(slots), pendingSlot: -1}, int(slots), nil
}

// binaryStream is the binary-format streaming cursor.
type binaryStream struct {
	br    *bufio.Reader
	slots int
	cur   int

	pendingSlot int
	pending     pkt.Packet

	err error
}

// fail records the first stream error.
func (s *binaryStream) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// readRecord reads the next fixed-width record. ok is false at end of
// stream or on error.
func (s *binaryStream) readRecord() (slot int, p pkt.Packet, ok bool) {
	var rec [8]byte
	if _, err := io.ReadFull(s.br, rec[:]); err != nil {
		if err != io.EOF {
			s.fail(fmt.Errorf("traffic: reading record: %w", err))
		}
		return 0, pkt.Packet{}, false
	}
	t := int(binary.LittleEndian.Uint32(rec[0:]))
	if t >= s.slots {
		s.fail(fmt.Errorf("traffic: record slot %d out of [0,%d)", t, s.slots))
		return 0, pkt.Packet{}, false
	}
	return t, pkt.Packet{
		Port:  int(binary.LittleEndian.Uint16(rec[4:])),
		Work:  int(rec[6]),
		Value: int(rec[7]),
	}, true
}

// Next implements Source.
func (s *binaryStream) Next() []pkt.Packet {
	if s.err != nil || s.cur >= s.slots {
		return nil
	}
	t := s.cur
	s.cur++
	var out []pkt.Packet
	if s.pendingSlot >= 0 {
		if s.pendingSlot > t {
			return nil
		}
		out = append(out, s.pending)
		s.pendingSlot = -1
	}
	for {
		slot, p, ok := s.readRecord()
		if !ok {
			return out
		}
		switch {
		case slot == t:
			out = append(out, p)
		case slot > t:
			s.pendingSlot, s.pending = slot, p
			return out
		default:
			s.fail(fmt.Errorf("traffic: record slot %d after slot %d (streaming requires non-decreasing slots)", slot, t))
			return nil
		}
	}
}

// Err implements Cursor.
func (s *binaryStream) Err() error { return s.err }

// Close implements Cursor.
func (s *binaryStream) Close() error { return nil }

// StreamAny sniffs the input and opens the matching streaming cursor
// (text or binary), returning it with the declared slot count.
func StreamAny(r io.Reader) (Cursor, int, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == string(binaryMagic) {
		return StreamBinary(br)
	}
	return StreamText(br)
}

// closingCursor attaches an owned resource (the backing file) to a
// streaming cursor.
type closingCursor struct {
	Cursor
	c io.Closer
}

// Close implements Cursor, releasing the stream's backing resource.
func (c closingCursor) Close() error {
	err := c.Cursor.Close()
	if cerr := c.c.Close(); err == nil {
		err = cerr
	}
	return err
}

// FileProvider streams a trace file (text or binary format) without
// materializing it: every Open re-opens the file and yields a fresh
// sequential cursor, so each replay reads the file independently in
// O(peak burst) memory regardless of the trace length.
type FileProvider struct {
	path  string
	slots int
}

// OpenFile sniffs the trace file's format and header and returns a
// Provider whose cursors stream the file record by record.
func OpenFile(path string) (*FileProvider, error) {
	p := &FileProvider{path: path}
	cur, slots, err := p.openCursor()
	if err != nil {
		return nil, err
	}
	cur.Close()
	p.slots = slots
	return p, nil
}

// Path returns the backing file path.
func (p *FileProvider) Path() string { return p.path }

// Slots implements Provider.
func (p *FileProvider) Slots() int { return p.slots }

// Open implements Provider: re-open the file and stream it.
func (p *FileProvider) Open() (Cursor, error) {
	cur, _, err := p.openCursor()
	return cur, err
}

// openCursor opens the file and builds the format-matched cursor.
func (p *FileProvider) openCursor() (Cursor, int, error) {
	f, err := os.Open(p.path)
	if err != nil {
		return nil, 0, fmt.Errorf("traffic: %w", err)
	}
	cur, slots, err := StreamAny(f)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return closingCursor{Cursor: cur, c: f}, slots, nil
}

// FileProvider conformance check.
var _ Provider = (*FileProvider)(nil)
