package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"smbm/internal/core"
)

func baseCfg() MMPPConfig {
	return MMPPConfig{
		Sources:  50,
		LambdaOn: 1.0,
		POnOff:   0.1,
		POffOn:   0.01,
		Label:    LabelValueUniform,
		Ports:    8,
		MaxLabel: 8,
		Seed:     1,
	}
}

func TestMMPPConfigValidate(t *testing.T) {
	mutate := func(f func(*MMPPConfig)) MMPPConfig {
		c := baseCfg()
		f(&c)
		return c
	}
	cases := []struct {
		name    string
		cfg     MMPPConfig
		wantErr bool
	}{
		{"valid", baseCfg(), false},
		{"zero sources", mutate(func(c *MMPPConfig) { c.Sources = 0 }), true},
		{"negative lambda", mutate(func(c *MMPPConfig) { c.LambdaOn = -1 }), true},
		{"NaN lambda", mutate(func(c *MMPPConfig) { c.LambdaOn = math.NaN() }), true},
		{"bad p on-off", mutate(func(c *MMPPConfig) { c.POnOff = 1.5 }), true},
		{"bad p off-on", mutate(func(c *MMPPConfig) { c.POffOn = -0.1 }), true},
		{"zero ports", mutate(func(c *MMPPConfig) { c.Ports = 0 }), true},
		{"zero max label", mutate(func(c *MMPPConfig) { c.MaxLabel = 0 }), true},
		{"bad label mode", mutate(func(c *MMPPConfig) { c.Label = 0 }), true},
		{"value by port needs n==k", mutate(func(c *MMPPConfig) { c.Label = LabelValueByPort; c.Ports = 4 }), true},
		{"portwork len mismatch", mutate(func(c *MMPPConfig) { c.PortWork = []int{1, 2} }), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.cfg.Validate(); (err != nil) != c.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, c.wantErr)
			}
		})
	}
}

func TestStationaryOnFraction(t *testing.T) {
	c := baseCfg()
	if got, want := c.StationaryOnFraction(), 0.01/0.11; math.Abs(got-want) > 1e-12 {
		t.Errorf("StationaryOnFraction = %v, want %v", got, want)
	}
	frozen := baseCfg()
	frozen.POnOff, frozen.POffOn = 0, 0
	if got := frozen.StationaryOnFraction(); got != 1 {
		t.Errorf("frozen chain fraction = %v, want 1", got)
	}
}

func TestLambdaForRate(t *testing.T) {
	c := baseCfg()
	c.LambdaOn = c.LambdaForRate(10)
	if got := c.MeanRate(); math.Abs(got-10) > 1e-9 {
		t.Errorf("MeanRate after calibration = %v, want 10", got)
	}
}

func TestMMPPDeterministicBySeed(t *testing.T) {
	g1, err := NewMMPP(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewMMPP(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	tr1 := Record(g1, 200)
	tr2 := Record(g2, 200)
	if tr1.Packets() != tr2.Packets() {
		t.Fatalf("same seed produced %d vs %d packets", tr1.Packets(), tr2.Packets())
	}
	for s := range tr1 {
		for i := range tr1[s] {
			if tr1[s][i] != tr2[s][i] {
				t.Fatalf("slot %d packet %d differs", s, i)
			}
		}
	}
	other := baseCfg()
	other.Seed = 99
	g3, err := NewMMPP(other)
	if err != nil {
		t.Fatal(err)
	}
	if tr3 := Record(g3, 200); tr3.Packets() == tr1.Packets() {
		t.Log("different seeds produced equal packet counts (possible but unlikely)")
	}
}

func TestMMPPMeanRateEmpirical(t *testing.T) {
	c := baseCfg()
	c.LambdaOn = c.LambdaForRate(20)
	g, err := NewMMPP(c)
	if err != nil {
		t.Fatal(err)
	}
	tr := Record(g, 20000)
	got := float64(tr.Packets()) / float64(len(tr))
	if got < 15 || got > 25 {
		t.Errorf("empirical rate %.2f, want within 25%% of 20", got)
	}
}

func TestMMPPLabelModes(t *testing.T) {
	t.Run("work by port", func(t *testing.T) {
		c := baseCfg()
		c.Label = LabelWorkByPort
		c.PortWork = core.ContiguousWorks(c.Ports)
		g, err := NewMMPP(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, slot := range Record(g, 500) {
			for _, p := range slot {
				if p.Work != p.Port+1 || p.Value != 1 {
					t.Fatalf("bad labeling: %+v", p)
				}
			}
		}
	})
	t.Run("value uniform covers the range", func(t *testing.T) {
		g, err := NewMMPP(baseCfg())
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, slot := range Record(g, 2000) {
			for _, p := range slot {
				if p.Work != 1 {
					t.Fatalf("value packet with work %d", p.Work)
				}
				if p.Value < 1 || p.Value > 8 {
					t.Fatalf("value %d out of range", p.Value)
				}
				seen[p.Value] = true
			}
		}
		if len(seen) != 8 {
			t.Errorf("only %d distinct values seen", len(seen))
		}
	})
	t.Run("value by port", func(t *testing.T) {
		c := baseCfg()
		c.Label = LabelValueByPort
		g, err := NewMMPP(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, slot := range Record(g, 500) {
			for _, p := range slot {
				if p.Value != p.Port+1 {
					t.Fatalf("value %d != port+1 %d", p.Value, p.Port+1)
				}
			}
		}
	})
}

func TestMMPPPortAffinity(t *testing.T) {
	c := baseCfg()
	c.Sources = 3
	c.PortAffinity = true
	c.LambdaOn = 2
	g, err := NewMMPP(c)
	if err != nil {
		t.Fatal(err)
	}
	ports := map[int]bool{}
	for _, slot := range Record(g, 3000) {
		for _, p := range slot {
			ports[p.Port] = true
		}
	}
	if len(ports) > 3 {
		t.Errorf("3 pinned sources hit %d ports", len(ports))
	}
}

func TestPortZipfSkew(t *testing.T) {
	c := baseCfg()
	c.PortZipf = 1.2
	c.LambdaOn = 2
	g, err := NewMMPP(c)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, c.Ports)
	for _, slot := range Record(g, 5000) {
		for _, p := range slot {
			counts[p.Port]++
		}
	}
	// Port 0 must dominate and popularity must broadly decay.
	if counts[0] <= counts[c.Ports-1] {
		t.Errorf("no skew: counts %v", counts)
	}
	if float64(counts[0]) < 1.5*float64(counts[1]) {
		t.Errorf("skew too weak for s=1.2: counts %v", counts)
	}
	// Affinity draws are skewed too.
	c.PortAffinity = true
	c.Sources = 400
	g, err = NewMMPP(c)
	if err != nil {
		t.Fatal(err)
	}
	pinned := make([]int, c.Ports)
	for _, p := range g.sourcePort {
		pinned[p]++
	}
	if pinned[0] <= pinned[c.Ports-1] {
		t.Errorf("affinity not skewed: %v", pinned)
	}
}

func TestPortZipfValidation(t *testing.T) {
	c := baseCfg()
	c.PortZipf = -1
	if err := c.Validate(); err == nil {
		t.Error("negative Zipf exponent accepted")
	}
	c.PortZipf = math.Inf(1)
	if err := c.Validate(); err == nil {
		t.Error("infinite Zipf exponent accepted")
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := poisson(rng, 0); got != 0 {
		t.Errorf("poisson(0) = %d", got)
	}
	if got := poisson(rng, -2); got != 0 {
		t.Errorf("poisson(-2) = %d", got)
	}
	for _, lambda := range []float64{0.5, 3, 12, 50} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.15*lambda {
			t.Errorf("poisson(λ=%v) empirical mean %v", lambda, mean)
		}
	}
}

func TestQuickPoissonNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(l float64) bool {
		lambda := math.Mod(math.Abs(l), 100)
		return poisson(rng, lambda) >= 0
	}
	if err := quick.Check(f, qcfg(200)); err != nil {
		t.Error(err)
	}
}

// qcfg returns a deterministic quick.Config so property tests are
// reproducible run to run.
func qcfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(7))}
}
