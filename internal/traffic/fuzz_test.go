package traffic

import (
	"bytes"
	"strings"
	"testing"

	"smbm/internal/pkt"
)

// FuzzReadTrace hardens the trace parser: arbitrary input must either
// fail cleanly or parse into a trace that round-trips through Write.
func FuzzReadTrace(f *testing.F) {
	f.Add("# smbm-trace v1 slots=2\n0 1 2 3\n1 0 1 1\n")
	f.Add("# smbm-trace v1 slots=0\n")
	f.Add("# smbm-trace v1 slots=1\n# comment\n\n0 0 1 1\n")
	f.Add("garbage")
	f.Add("# smbm-trace v1 slots=-3\n")
	f.Add("# smbm-trace v1 slots=1\n0 -1 0 99999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("Write after successful parse: %v", err)
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("round-trip re-parse: %v", err)
		}
		if len(back) != len(tr) || back.Packets() != tr.Packets() {
			t.Fatalf("round-trip changed shape: %d/%d slots, %d/%d packets",
				len(back), len(tr), back.Packets(), tr.Packets())
		}
	})
}

// FuzzTextRoundTrip drives the text serialization from the other
// direction: an arbitrary structured trace decoded from the fuzz bytes
// must survive Write → ReadTrace exactly, packet for packet, and the
// streaming reader must agree with the materializing one on the same
// bytes. (The binary format has the equivalent structured coverage in
// TestBinaryRoundTrip.)
func FuzzTextRoundTrip(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 2, 3, 1, 0, 1, 1})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(0), []byte{0, 0, 0, 0})
	f.Add(uint8(5), []byte{4, 255, 128, 7, 4, 1, 1, 1, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, nslots uint8, data []byte) {
		slots := int(nslots)
		tr := make(Trace, slots)
		// Decode 4-byte records (slot, port, work, value); the slot byte
		// is reduced modulo the slot count so every record is in range.
		for i := 0; i+4 <= len(data) && i < 4*256; i += 4 {
			if slots == 0 {
				break
			}
			s := int(data[i]) % slots
			tr[s] = append(tr[s], pkt.Packet{
				Port:  int(data[i+1]),
				Work:  int(data[i+2]),
				Value: int(data[i+3]),
			})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
		raw := buf.Bytes()
		back, err := ReadTrace(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("ReadTrace of Write output: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round-trip slots %d, want %d", len(back), len(tr))
		}
		for s := range tr {
			if len(back[s]) != len(tr[s]) {
				t.Fatalf("slot %d: %d packets, want %d", s, len(back[s]), len(tr[s]))
			}
			for j := range tr[s] {
				if back[s][j] != tr[s][j] {
					t.Fatalf("slot %d packet %d: %+v, want %+v", s, j, back[s][j], tr[s][j])
				}
			}
		}
		// Streaming reader must agree with the materializing one.
		cur, n, err := StreamText(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("StreamText of Write output: %v", err)
		}
		defer cur.Close()
		if n != slots {
			t.Fatalf("streamed slot count %d, want %d", n, slots)
		}
		for s := 0; s < n; s++ {
			burst := cur.Next()
			if len(burst) != len(tr[s]) {
				t.Fatalf("streamed slot %d: %d packets, want %d", s, len(burst), len(tr[s]))
			}
			for j := range burst {
				if burst[j] != tr[s][j] {
					t.Fatalf("streamed slot %d packet %d: %+v, want %+v", s, j, burst[j], tr[s][j])
				}
			}
		}
		if err := cur.Err(); err != nil {
			t.Fatalf("stream error on Write output: %v", err)
		}
	})
}
