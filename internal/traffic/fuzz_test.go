package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace hardens the trace parser: arbitrary input must either
// fail cleanly or parse into a trace that round-trips through Write.
func FuzzReadTrace(f *testing.F) {
	f.Add("# smbm-trace v1 slots=2\n0 1 2 3\n1 0 1 1\n")
	f.Add("# smbm-trace v1 slots=0\n")
	f.Add("# smbm-trace v1 slots=1\n# comment\n\n0 0 1 1\n")
	f.Add("garbage")
	f.Add("# smbm-trace v1 slots=-3\n")
	f.Add("# smbm-trace v1 slots=1\n0 -1 0 99999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("Write after successful parse: %v", err)
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("round-trip re-parse: %v", err)
		}
		if len(back) != len(tr) || back.Packets() != tr.Packets() {
			t.Fatalf("round-trip changed shape: %d/%d slots, %d/%d packets",
				len(back), len(tr), back.Packets(), tr.Packets())
		}
	})
}
