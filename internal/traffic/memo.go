package traffic

import (
	//smb:conc-ok memo cache install guard; replayed streams stay bit-identical
	"sync"

	"smbm/internal/pkt"
)

// packetBytes is the memory charged per recorded packet, and
// slotBytes the fixed charge per recorded slot (its slice header),
// when a memoizing provider accounts a stream against its byte
// budget. The figures are the in-memory sizes on 64-bit platforms;
// exactness does not matter, only that the budget scales with the
// materialized trace.
const (
	packetBytes = 24
	slotBytes   = 24
)

// Memoize wraps src so its slot stream is generated once and replayed
// from memory by later cursors. The first cursor streams from src
// while recording; once it has served the full stream cleanly and the
// materialized trace fits within maxBytes, every later Open replays
// the recording instead of regenerating. Streams that fail, are
// closed early, or blow the budget leave the wrapper transparent —
// later cursors regenerate from src exactly as before — so cursors
// are bit-identical to src's in every case and only memory is traded
// for speed. This is how a multi-replay simulation cell (the OPT
// proxy plus every roster policy over one arrival stream) amortizes
// generation cost across replays without giving up the streaming
// harness's bounded-memory property for paper-scale traces: a trace
// too large for the budget is simply never retained.
//
// A non-positive maxBytes disables recording entirely and returns src
// unchanged, as does a src that is already materialized (a Trace) or
// already memoizing. Safe for concurrent Opens; while a recording is
// in flight, other Opens stream straight from src.
func Memoize(src Provider, maxBytes int) Provider {
	if maxBytes <= 0 {
		return src
	}
	switch src.(type) {
	case Trace, *memoProvider:
		return src
	}
	return &memoProvider{src: src, maxBytes: maxBytes}
}

// memoProvider is the Memoize wrapper: src plus, eventually, the
// recorded trace.
type memoProvider struct {
	src      Provider
	maxBytes int

	mu        sync.Mutex
	trace     Trace // non-nil once a recording completed within budget
	recording bool  // a first cursor is currently recording
}

// Slots implements Provider.
func (m *memoProvider) Slots() int { return m.src.Slots() }

// Open implements Provider: a replay cursor once a recording is
// installed, a recording cursor for the first caller, and a plain
// pass-through cursor while a recording is already in flight.
func (m *memoProvider) Open() (Cursor, error) {
	m.mu.Lock()
	if m.trace != nil {
		tr := m.trace
		m.mu.Unlock()
		return tr.Open()
	}
	if m.recording {
		m.mu.Unlock()
		return m.src.Open()
	}
	m.recording = true
	m.mu.Unlock()

	cur, err := m.src.Open()
	if err != nil {
		m.abandon()
		return nil, err
	}
	return &recordingCursor{
		m:     m,
		cur:   cur,
		trace: make(Trace, 0, m.src.Slots()),
		left:  m.maxBytes,
	}, nil
}

// abandon releases the recording claim without installing a trace.
func (m *memoProvider) abandon() {
	m.mu.Lock()
	m.recording = false
	m.mu.Unlock()
}

// install publishes a completed recording.
func (m *memoProvider) install(tr Trace) {
	m.mu.Lock()
	if m.trace == nil {
		m.trace = tr
	}
	m.recording = false
	m.mu.Unlock()
}

// recordingCursor streams from the underlying cursor while copying
// each burst into a growing trace. It installs the trace on Close if
// the full stream was served cleanly within budget; any shortfall —
// early Close, a stream error, an exhausted budget — abandons the
// recording and the wrapper stays transparent.
type recordingCursor struct {
	m     *memoProvider
	cur   Cursor
	trace Trace // nil once recording is abandoned mid-stream
	left  int   // remaining byte budget
}

// Next implements Source: serve the underlying burst, retaining a
// copy while the recording is alive and within budget.
func (c *recordingCursor) Next() []pkt.Packet {
	burst := c.cur.Next()
	if c.trace != nil {
		c.left -= slotBytes + packetBytes*len(burst)
		if c.left < 0 {
			c.trace = nil // over budget: stop retaining
		} else {
			// Copy rather than retain: generators may reuse burst
			// storage between slots.
			var rec []pkt.Packet
			if len(burst) > 0 {
				rec = append(rec, burst...)
			}
			c.trace = append(c.trace, rec)
		}
	}
	return burst
}

// Err implements Cursor.
func (c *recordingCursor) Err() error { return c.cur.Err() }

// Close implements Cursor: install the recording when it covers the
// whole stream without error, abandon it otherwise.
func (c *recordingCursor) Close() error {
	err := c.cur.Close()
	if c.trace != nil && len(c.trace) == c.m.Slots() && c.cur.Err() == nil && err == nil {
		c.m.install(c.trace)
	} else {
		c.m.abandon()
	}
	c.trace = nil
	return err
}

var _ Provider = (*memoProvider)(nil)
