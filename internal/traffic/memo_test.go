package traffic

import (
	"reflect"
	"testing"

	"smbm/internal/pkt"
)

// memoMMPP builds a small MMPP provider for memoization tests.
func memoMMPP(t *testing.T, slots int) *MMPPProvider {
	t.Helper()
	cfg := MMPPConfig{
		Sources:  20,
		LambdaOn: 0.4,
		POnOff:   0.2,
		POffOn:   0.2,
		Ports:    4,
		MaxLabel: 4,
		Label:    LabelValueUniform,
		Seed:     7,
	}
	p, err := NewMMPPProvider(cfg, slots)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// memoDrain pulls the full stream off a fresh cursor.
func memoDrain(t *testing.T, p Provider) Trace {
	t.Helper()
	cur, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	out := make(Trace, 0, p.Slots())
	for i := 0; i < p.Slots(); i++ {
		burst := cur.Next()
		cp := make([]pkt.Packet, len(burst))
		copy(cp, burst)
		out = append(out, cp)
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMemoizeBitIdentical proves a memoized provider streams the same
// slots before and after the recording is installed, and that they
// match the unwrapped provider.
func TestMemoizeBitIdentical(t *testing.T) {
	src := memoMMPP(t, 200)
	want := memoDrain(t, src)

	m := Memoize(src, 1<<20)
	first := memoDrain(t, m)  // records
	second := memoDrain(t, m) // replays the recording
	if !reflect.DeepEqual(want, first) {
		t.Fatal("recording pass diverged from the unwrapped provider")
	}
	if !reflect.DeepEqual(want, second) {
		t.Fatal("replay pass diverged from the unwrapped provider")
	}
	mp, ok := m.(*memoProvider)
	if !ok {
		t.Fatalf("Memoize returned %T, want *memoProvider", m)
	}
	if mp.trace == nil {
		t.Fatal("full clean pass within budget did not install a recording")
	}
}

// TestMemoizeOverBudget proves an over-budget stream is never
// retained: the wrapper stays transparent and keeps regenerating.
func TestMemoizeOverBudget(t *testing.T) {
	src := memoMMPP(t, 200)
	want := memoDrain(t, src)

	m := Memoize(src, 64) // a few slots at most
	for pass := 0; pass < 2; pass++ {
		if got := memoDrain(t, m); !reflect.DeepEqual(want, got) {
			t.Fatalf("pass %d diverged from the unwrapped provider", pass)
		}
	}
	if mp := m.(*memoProvider); mp.trace != nil {
		t.Fatal("over-budget stream was retained")
	}
}

// TestMemoizeAbandonedOnEarlyClose proves a cursor closed mid-stream
// does not install a partial recording, and a later full pass still
// can.
func TestMemoizeAbandonedOnEarlyClose(t *testing.T) {
	src := memoMMPP(t, 100)
	m := Memoize(src, 1<<20).(*memoProvider)

	cur, err := m.Open()
	if err != nil {
		t.Fatal(err)
	}
	cur.Next()
	cur.Close()
	if m.trace != nil {
		t.Fatal("partial pass installed a recording")
	}
	if m.recording {
		t.Fatal("abandoned pass left the recording claim held")
	}
	memoDrain(t, m)
	if m.trace == nil {
		t.Fatal("full pass after an abandoned one did not install")
	}
}

// TestMemoizePassThrough pins the cases where Memoize must return its
// argument unchanged: a disabled budget, an already-materialized
// trace, and an already-memoized provider.
func TestMemoizePassThrough(t *testing.T) {
	src := memoMMPP(t, 10)
	if got := Memoize(src, 0); got != Provider(src) {
		t.Fatal("zero budget should disable memoization")
	}
	if got := Memoize(src, -1); got != Provider(src) {
		t.Fatal("negative budget should disable memoization")
	}
	tr := Trace{nil, nil}
	if got := Memoize(tr, 1<<20); !reflect.DeepEqual(got, Provider(tr)) {
		t.Fatal("a materialized trace should pass through")
	}
	m := Memoize(src, 1<<20)
	if got := Memoize(m, 1<<20); got != m {
		t.Fatal("double memoization should pass through")
	}
}

// TestMemoizeConcurrentOpens proves overlapping cursors are safe and
// bit-identical while a recording is in flight.
func TestMemoizeConcurrentOpens(t *testing.T) {
	src := memoMMPP(t, 50)
	want := memoDrain(t, src)
	m := Memoize(src, 1<<20)

	a, err := m.Open() // recording
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Open() // pass-through while a records
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < src.Slots(); i++ {
		ba := a.Next()
		bb := b.Next()
		if !reflect.DeepEqual(want[i], normalize(ba)) || !reflect.DeepEqual(want[i], normalize(bb)) {
			t.Fatalf("slot %d diverged across concurrent cursors", i)
		}
	}
	a.Close()
	b.Close()
	if m.(*memoProvider).trace == nil {
		t.Fatal("recording cursor did not install on close")
	}
}

// normalize maps a nil burst to the empty burst for comparison.
func normalize(b []pkt.Packet) []pkt.Packet {
	if b == nil {
		return []pkt.Packet{}
	}
	return b
}
