package traffic

import (
	"strings"
	"testing"

	"smbm/internal/pkt"
)

func TestConstant(t *testing.T) {
	c := &Constant{Burst: pkt.Burst(pkt.NewWork(0, 1), 3)}
	for i := 0; i < 5; i++ {
		got := c.Next()
		if len(got) != 3 {
			t.Fatalf("slot %d: %d packets", i, len(got))
		}
	}
	// Returned slices are copies.
	b := c.Next()
	b[0].Port = 99
	if c.Burst[0].Port == 99 {
		t.Error("Constant aliases its burst")
	}
}

func TestPeriodic(t *testing.T) {
	p := &Periodic{Burst: []pkt.Packet{pkt.NewWork(0, 1)}, Period: 3, Offset: 1}
	var pattern []int
	for i := 0; i < 8; i++ {
		pattern = append(pattern, len(p.Next()))
	}
	want := []int{0, 1, 0, 0, 1, 0, 0, 1}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("pattern %v, want %v", pattern, want)
		}
	}
	// Period < 1 is clamped to 1.
	every := &Periodic{Burst: []pkt.Packet{pkt.NewWork(0, 1)}, Period: 0}
	if len(every.Next()) != 1 || len(every.Next()) != 1 {
		t.Error("clamped period did not fire every slot")
	}
}

func TestMixOrdering(t *testing.T) {
	m := &Mix{Sources: []Source{
		&Constant{Burst: []pkt.Packet{pkt.NewWork(0, 1)}},
		&Constant{Burst: []pkt.Packet{pkt.NewWork(1, 2)}},
	}}
	got := m.Next()
	if len(got) != 2 || got[0].Port != 0 || got[1].Port != 1 {
		t.Errorf("mix order broken: %v", got)
	}
}

func TestLimit(t *testing.T) {
	l := &Limit{Source: &Constant{Burst: []pkt.Packet{pkt.New(0)}}, N: 2}
	counts := []int{len(l.Next()), len(l.Next()), len(l.Next())}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 0 {
		t.Errorf("limit pattern %v", counts)
	}
}

func TestOnOff(t *testing.T) {
	o := &OnOff{Source: &Constant{Burst: []pkt.Packet{pkt.New(0)}}, On: 2, Off: 3}
	var pattern []int
	for i := 0; i < 10; i++ {
		pattern = append(pattern, len(o.Next()))
	}
	want := []int{1, 1, 0, 0, 0, 1, 1, 0, 0, 0}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("duty cycle %v, want %v", pattern, want)
		}
	}
}

func TestDescribe(t *testing.T) {
	tr := Slots(
		pkt.Burst(pkt.New(0), 4),
		nil,
	)
	got := Describe(tr)
	for _, want := range []string{"2 slots", "4 packets", "2.00 pkts/slot", "4 peak"} {
		if !strings.Contains(got, want) {
			t.Errorf("Describe = %q missing %q", got, want)
		}
	}
	if got := Describe(nil); !strings.Contains(got, "0 slots") {
		t.Errorf("Describe(nil) = %q", got)
	}
}

// TestTrickleMatchesTheoremScripts: a Mix of Periodic sources reproduces
// the "every i-th slot, another [i]" adversarial trickle.
func TestTrickleMatchesTheoremScripts(t *testing.T) {
	trickle := &Mix{Sources: []Source{
		&Periodic{Burst: []pkt.Packet{pkt.NewWork(1, 2)}, Period: 2, Offset: 2},
		&Periodic{Burst: []pkt.Packet{pkt.NewWork(2, 3)}, Period: 3, Offset: 3},
	}}
	tr := Record(trickle, 7)
	wantCounts := []int{0, 0, 1, 1, 1, 0, 2}
	for s, want := range wantCounts {
		if len(tr[s]) != want {
			t.Fatalf("slot %d: %d packets, want %d (trace %v)", s, len(tr[s]), want, tr)
		}
	}
}
