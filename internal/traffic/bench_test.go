package traffic

import "testing"

func BenchmarkMMPPNext(b *testing.B) {
	c := baseCfg()
	c.Sources = 500 // paper scale
	c.LambdaOn = c.LambdaForRate(30)
	g, err := NewMMPP(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var pkts int
	for i := 0; i < b.N; i++ {
		pkts += len(g.Next())
	}
	b.ReportMetric(float64(pkts)/float64(b.N), "pkts/slot")
}
