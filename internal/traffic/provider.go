package traffic

import (
	"fmt"

	"smbm/internal/pkt"
)

// Provider is a re-derivable arrival sequence of known length: a seeded
// generator spec, a trace file, or a materialized Trace. Open returns a
// fresh, independent cursor positioned at slot zero; every cursor of
// one Provider streams the identical slot sequence, so concurrent
// replays are bit-identical without sharing any mutable state. The
// simulation harness (internal/sim) replays every system over its own
// cursor, which keeps per-replay arrival memory independent of the
// trace length for generator- and file-backed providers.
type Provider interface {
	// Slots is the stream length in slots.
	Slots() int
	// Open returns a new cursor over the stream, positioned at slot
	// zero. Cursors are independent of each other and of the Provider;
	// each must be Closed when the caller is done with it.
	Open() (Cursor, error)
}

// Cursor is an open read position over a Provider's slot stream: a
// Source that can additionally fail mid-stream (file-backed cursors)
// and hold resources until Closed. Next returns empty bursts once the
// stream is exhausted or after a failure.
type Cursor interface {
	Source
	// Err reports the first stream failure, or nil. A failed cursor
	// emits empty bursts from the failing slot on, so callers that
	// poll Err at slot granularity never consume corrupt arrivals.
	Err() error
	// Close releases the cursor's resources. Closing one cursor never
	// affects other cursors of the same Provider.
	Close() error
}

// nopCursor adapts an in-memory Source into a Cursor that cannot fail
// and holds no resources.
type nopCursor struct{ Source }

// Err implements Cursor: in-memory sources never fail.
func (nopCursor) Err() error { return nil }

// Close implements Cursor: nothing to release.
func (nopCursor) Close() error { return nil }

// AsCursor wraps an in-memory Source as a Cursor that never fails and
// needs no cleanup.
func AsCursor(src Source) Cursor { return nopCursor{src} }

// Slots implements Provider: a materialized trace's length.
func (tr Trace) Slots() int { return len(tr) }

// Open implements Provider: a replay cursor from slot zero. Trace is
// its own Provider — the adapter that lets every existing call site
// hand a materialized trace to the streaming harness unchanged.
func (tr Trace) Open() (Cursor, error) { return AsCursor(tr.Replay()), nil }

// MMPPProvider regenerates a seeded MMPP trace on every Open: each
// cursor is a fresh generator built from the same validated spec, so
// all cursors stream identical slots while holding O(Sources) state —
// the per-worker arrival memory is independent of the slot count. This
// is the paper-scale (2·10⁶ slots, 500 sources) workhorse.
type MMPPProvider struct {
	cfg   MMPPConfig
	slots int
}

// NewMMPPProvider validates the spec and wraps it as a Provider of the
// given length.
func NewMMPPProvider(cfg MMPPConfig, slots int) (*MMPPProvider, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if slots < 0 {
		return nil, fmt.Errorf("traffic: negative slot count %d", slots)
	}
	return &MMPPProvider{cfg: cfg, slots: slots}, nil
}

// Config returns the generator spec behind the provider.
func (p *MMPPProvider) Config() MMPPConfig { return p.cfg }

// Slots implements Provider.
func (p *MMPPProvider) Slots() int { return p.slots }

// Open implements Provider: a fresh deterministic generator seeded
// from the spec.
func (p *MMPPProvider) Open() (Cursor, error) {
	g, err := NewMMPP(p.cfg)
	if err != nil {
		return nil, err
	}
	return AsCursor(g), nil
}

// Repeat cycles a scripted round for a fixed number of rounds — the
// adversarial constructions' "then the process repeats" as a
// re-derivable Provider. An empty Round yields an empty stream.
type Repeat struct {
	// Round is one period of the repeating script.
	Round Trace
	// Rounds is how many times the round plays.
	Rounds int
}

// Slots implements Provider.
func (r Repeat) Slots() int {
	if r.Rounds < 0 {
		return 0
	}
	return len(r.Round) * r.Rounds
}

// Open implements Provider.
func (r Repeat) Open() (Cursor, error) {
	return AsCursor(&repeatCursor{round: r.Round, slots: r.Slots()}), nil
}

// repeatCursor replays the round cyclically for the stream length.
type repeatCursor struct {
	round Trace
	slots int
	pos   int
}

// Next implements Source.
func (c *repeatCursor) Next() []pkt.Packet {
	if c.pos >= c.slots || len(c.round) == 0 {
		return nil
	}
	slot := c.round[c.pos%len(c.round)]
	c.pos++
	out := make([]pkt.Packet, len(slot))
	copy(out, slot)
	return out
}

// Interface conformance checks.
var (
	_ Provider = Trace(nil)
	_ Provider = (*MMPPProvider)(nil)
	_ Provider = Repeat{}
)
