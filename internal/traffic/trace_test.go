package traffic

import (
	"bytes"
	"strings"
	"testing"

	"smbm/internal/pkt"
)

func sampleTrace() Trace {
	return Slots(
		[]pkt.Packet{pkt.NewWork(0, 1), pkt.NewWork(2, 3)},
		nil,
		[]pkt.Packet{pkt.NewValue(1, 5)},
	)
}

func TestTracePackets(t *testing.T) {
	if got := sampleTrace().Packets(); got != 3 {
		t.Errorf("Packets() = %d, want 3", got)
	}
	if got := (Trace{}).Packets(); got != 0 {
		t.Errorf("empty trace Packets() = %d", got)
	}
}

func TestReplay(t *testing.T) {
	tr := sampleTrace()
	src := tr.Replay()
	for s := range tr {
		got := src.Next()
		if len(got) != len(tr[s]) {
			t.Fatalf("slot %d: %d packets, want %d", s, len(got), len(tr[s]))
		}
		for i := range got {
			if got[i] != tr[s][i] {
				t.Fatalf("slot %d packet %d: %v != %v", s, i, got[i], tr[s][i])
			}
		}
	}
	if got := src.Next(); got != nil {
		t.Errorf("exhausted replay returned %v", got)
	}
	// The replayed slices are copies: mutating them must not corrupt
	// the source trace.
	src2 := tr.Replay()
	burst := src2.Next()
	burst[0].Port = 99
	if tr[0][0].Port == 99 {
		t.Error("replay aliases the underlying trace")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("slots %d, want %d", len(got), len(tr))
	}
	for s := range tr {
		if len(got[s]) != len(tr[s]) {
			t.Fatalf("slot %d: %d packets, want %d", s, len(got[s]), len(tr[s]))
		}
		for i := range tr[s] {
			if got[s][i] != tr[s][i] {
				t.Fatalf("slot %d packet %d differs", s, i)
			}
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "nope\n"},
		{"bad slot count", "# smbm-trace v1 slots=x\n"},
		{"negative slots", "# smbm-trace v1 slots=-1\n"},
		{"short line", "# smbm-trace v1 slots=1\n0 1\n"},
		{"non-numeric", "# smbm-trace v1 slots=1\n0 a 1 1\n"},
		{"slot out of range", "# smbm-trace v1 slots=1\n5 0 1 1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(c.input)); err == nil {
				t.Error("no error")
			}
		})
	}
}

func TestReadTraceSkipsCommentsAndBlanks(t *testing.T) {
	input := "# smbm-trace v1 slots=2\n\n# comment\n1 0 1 1\n"
	tr, err := ReadTrace(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 || len(tr[0]) != 0 || len(tr[1]) != 1 {
		t.Errorf("parsed %v", tr)
	}
}

func TestConcatAndSilence(t *testing.T) {
	a := Silence(2)
	b := sampleTrace()
	all := Concat(a, b)
	if len(all) != 5 {
		t.Fatalf("len = %d, want 5", len(all))
	}
	if all[0] != nil || len(all[2]) != 2 {
		t.Error("concat order broken")
	}
}
