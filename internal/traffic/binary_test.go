package traffic

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"smbm/internal/pkt"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) || got.Packets() != tr.Packets() {
		t.Fatalf("shape changed: %d/%d slots, %d/%d packets", len(got), len(tr), got.Packets(), tr.Packets())
	}
	for s := range tr {
		for i := range tr[s] {
			if got[s][i] != tr[s][i] {
				t.Fatalf("slot %d packet %d: %v != %v", s, i, got[s][i], tr[s][i])
			}
		}
	}
}

func TestBinaryRejects(t *testing.T) {
	t.Run("bad magic", func(t *testing.T) {
		if _, err := ReadBinaryTrace(strings.NewReader("NOPE!\nxxxx")); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := ReadBinaryTrace(strings.NewReader("SMBT1\n\x01")); err == nil {
			t.Error("truncated header accepted")
		}
	})
	t.Run("slot out of range", func(t *testing.T) {
		var buf bytes.Buffer
		tr := Slots([]pkt.Packet{pkt.New(0)})
		if err := tr.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		raw[len(raw)-8] = 9 // corrupt the record's slot index
		if _, err := ReadBinaryTrace(bytes.NewReader(raw)); err == nil {
			t.Error("out-of-range slot accepted")
		}
	})
	t.Run("oversized fields", func(t *testing.T) {
		tr := Slots([]pkt.Packet{{Port: 1 << 17, Work: 1, Value: 1}})
		if err := tr.WriteBinary(&bytes.Buffer{}); err == nil {
			t.Error("oversized port accepted")
		}
	})
	t.Run("truncated record", func(t *testing.T) {
		var buf bytes.Buffer
		tr := Slots([]pkt.Packet{pkt.New(0)})
		if err := tr.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadBinaryTrace(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
			t.Error("truncated record accepted")
		}
	})
}

func TestReadAnyTrace(t *testing.T) {
	tr := sampleTrace()
	var text, bin bytes.Buffer
	if err := tr.Write(&text); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"text": &text, "binary": &bin} {
		got, err := ReadAnyTrace(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Packets() != tr.Packets() {
			t.Errorf("%s: %d packets, want %d", name, got.Packets(), tr.Packets())
		}
	}
	if _, err := ReadAnyTrace(strings.NewReader("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func BenchmarkWriteText(b *testing.B)   { benchWrite(b, Trace.Write) }
func BenchmarkWriteBinary(b *testing.B) { benchWrite(b, Trace.WriteBinary) }

func benchWrite(b *testing.B, write func(Trace, io.Writer) error) {
	b.Helper()
	g, err := NewMMPP(baseCfg())
	if err != nil {
		b.Fatal(err)
	}
	tr := Record(g, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := write(tr, &buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkReadText(b *testing.B) {
	g, _ := NewMMPP(baseCfg())
	tr := Record(g, 2000)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadTrace(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	g, _ := NewMMPP(baseCfg())
	tr := Record(g, 2000)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinaryTrace(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
