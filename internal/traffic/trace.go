package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"smbm/internal/pkt"
)

// Trace is a materialized arrival sequence: one packet slice per slot.
type Trace [][]pkt.Packet

// Record materializes the next slots slots of src.
func Record(src Source, slots int) Trace {
	tr := make(Trace, slots)
	for t := range tr {
		tr[t] = src.Next()
	}
	return tr
}

// Packets returns the total number of arrivals in the trace.
func (tr Trace) Packets() int {
	var n int
	for _, slot := range tr {
		n += len(slot)
	}
	return n
}

// Replay returns a Source that plays the trace back from the beginning,
// returning empty bursts once exhausted.
func (tr Trace) Replay() Source { return &replay{trace: tr} }

type replay struct {
	trace Trace
	pos   int
}

// Next returns a copy of the next slot's burst, nil once the trace is
// exhausted.
func (r *replay) Next() []pkt.Packet {
	if r.pos >= len(r.trace) {
		return nil
	}
	slot := r.trace[r.pos]
	r.pos++
	out := make([]pkt.Packet, len(slot))
	copy(out, slot)
	return out
}

// traceHeader is the first line of the v1 text format.
const traceHeader = "# smbm-trace v1"

// Write serializes the trace in a line-oriented text format:
//
//	# smbm-trace v1 slots=<n>
//	<slot> <port> <work> <value>
//
// one line per packet, slots ascending.
func (tr Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s slots=%d\n", traceHeader, len(tr)); err != nil {
		return err
	}
	for t, slot := range tr {
		for _, p := range slot {
			if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", t, p.Port, p.Work, p.Value); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace parses the text format produced by Write.
func ReadTrace(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("traffic: empty trace input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, traceHeader) {
		return nil, fmt.Errorf("traffic: bad trace header %q", header)
	}
	var slots int
	if _, err := fmt.Sscanf(header[len(traceHeader):], " slots=%d", &slots); err != nil {
		return nil, fmt.Errorf("traffic: bad trace header %q: %v", header, err)
	}
	if slots < 0 {
		return nil, fmt.Errorf("traffic: negative slot count %d", slots)
	}
	tr := make(Trace, slots)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("traffic: line %d: want 4 fields, got %d", line, len(fields))
		}
		nums := make([]int, 4)
		for i, f := range fields {
			n, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("traffic: line %d: %v", line, err)
			}
			nums[i] = n
		}
		t := nums[0]
		if t < 0 || t >= slots {
			return nil, fmt.Errorf("traffic: line %d: slot %d out of [0,%d)", line, t, slots)
		}
		tr[t] = append(tr[t], pkt.Packet{Port: nums[1], Work: nums[2], Value: nums[3]})
	}
	return tr, sc.Err()
}

// Concat concatenates traces in time.
func Concat(traces ...Trace) Trace {
	var total int
	for _, tr := range traces {
		total += len(tr)
	}
	out := make(Trace, 0, total)
	for _, tr := range traces {
		out = append(out, tr...)
	}
	return out
}

// Slots builds a trace directly from per-slot bursts; nil slices are
// silent slots. Convenience for tests and adversarial constructions.
func Slots(bursts ...[]pkt.Packet) Trace { return Trace(bursts) }

// Silence returns a trace of n empty slots.
func Silence(n int) Trace { return make(Trace, n) }
