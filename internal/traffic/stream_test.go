package traffic

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"smbm/internal/pkt"
)

// streamTestTrace is a small trace exercising empty slots, multi-packet
// slots and a trailing silent slot.
func streamTestTrace() Trace {
	return Slots(
		[]pkt.Packet{{Port: 0, Work: 1, Value: 3}, {Port: 2, Work: 2, Value: 1}},
		nil,
		[]pkt.Packet{{Port: 1, Work: 4, Value: 7}},
		[]pkt.Packet{{Port: 3, Work: 1, Value: 1}, {Port: 3, Work: 1, Value: 2}, {Port: 0, Work: 2, Value: 5}},
		nil,
	)
}

// drainCursor replays cur for slots slots and returns the materialized
// result, failing the test on a cursor error.
func drainCursor(t *testing.T, cur Cursor, slots int) Trace {
	t.Helper()
	out := make(Trace, slots)
	for i := 0; i < slots; i++ {
		burst := cur.Next()
		if len(burst) > 0 {
			out[i] = burst
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return out
}

// equalTraces compares two traces slot by slot, treating nil and empty
// bursts as equal.
func equalTraces(a, b Trace) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestStreamTextRoundTrip(t *testing.T) {
	tr := streamTestTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	cur, slots, err := StreamText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if slots != len(tr) {
		t.Fatalf("slots %d, want %d", slots, len(tr))
	}
	if got := drainCursor(t, cur, slots); !equalTraces(got, tr) {
		t.Fatalf("streamed text trace diverged:\n got %v\nwant %v", got, tr)
	}
}

func TestStreamBinaryRoundTrip(t *testing.T) {
	tr := streamTestTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	cur, slots, err := StreamBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if slots != len(tr) {
		t.Fatalf("slots %d, want %d", slots, len(tr))
	}
	if got := drainCursor(t, cur, slots); !equalTraces(got, tr) {
		t.Fatalf("streamed binary trace diverged:\n got %v\nwant %v", got, tr)
	}
}

func TestStreamAnySniffsFormat(t *testing.T) {
	tr := streamTestTrace()
	for _, tc := range []struct {
		name  string
		write func(Trace, *bytes.Buffer) error
	}{
		{"text", func(tr Trace, b *bytes.Buffer) error { return tr.Write(b) }},
		{"binary", func(tr Trace, b *bytes.Buffer) error { return tr.WriteBinary(b) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.write(tr, &buf); err != nil {
				t.Fatal(err)
			}
			cur, slots, err := StreamAny(&buf)
			if err != nil {
				t.Fatal(err)
			}
			defer cur.Close()
			if got := drainCursor(t, cur, slots); !equalTraces(got, tr) {
				t.Fatalf("StreamAny(%s) diverged", tc.name)
			}
		})
	}
}

func TestStreamTextRejectsOutOfOrder(t *testing.T) {
	in := "# smbm-trace v1 slots=3\n2 0 1 1\n0 0 1 1\n"
	cur, slots, err := StreamText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; i < slots; i++ {
		cur.Next()
	}
	if cur.Err() == nil {
		t.Fatal("out-of-order record not reported")
	}
}

func TestStreamBinaryRejectsOutOfOrder(t *testing.T) {
	tr := Slots(
		[]pkt.Packet{{Port: 0, Work: 1, Value: 1}},
		[]pkt.Packet{{Port: 1, Work: 1, Value: 1}},
	)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	// Swap the two 8-byte records after the header so slots decrease.
	b := buf.Bytes()
	head := len(binaryMagic) + 4
	r0 := append([]byte(nil), b[head:head+8]...)
	copy(b[head:head+8], b[head+8:head+16])
	copy(b[head+8:head+16], r0)
	cur, slots, err := StreamBinary(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; i < slots; i++ {
		cur.Next()
	}
	if cur.Err() == nil {
		t.Fatal("out-of-order record not reported")
	}
}

func TestFileProviderStreamsIndependentCursors(t *testing.T) {
	tr := streamTestTrace()
	for _, tc := range []struct {
		name  string
		write func(Trace, *os.File) error
	}{
		{"text", func(tr Trace, f *os.File) error { return tr.Write(f) }},
		{"binary", func(tr Trace, f *os.File) error { return tr.WriteBinary(f) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "trace."+tc.name)
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.write(tr, f); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			p, err := OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if p.Slots() != len(tr) {
				t.Fatalf("Slots %d, want %d", p.Slots(), len(tr))
			}
			// Two interleaved cursors must not disturb each other.
			c1, err := p.Open()
			if err != nil {
				t.Fatal(err)
			}
			defer c1.Close()
			c2, err := p.Open()
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			got1 := make(Trace, 0, len(tr))
			got2 := make(Trace, 0, len(tr))
			for i := 0; i < len(tr); i++ {
				got1 = append(got1, c1.Next())
				got2 = append(got2, c2.Next())
			}
			if err := c1.Err(); err != nil {
				t.Fatal(err)
			}
			if err := c2.Err(); err != nil {
				t.Fatal(err)
			}
			if !equalTraces(got1, tr) || !equalTraces(got2, tr) {
				t.Fatal("interleaved file cursors diverged from the trace")
			}
		})
	}
}

func TestOpenFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("garbage file accepted")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMMPPProviderRegeneratesIdenticalStreams(t *testing.T) {
	cfg := MMPPConfig{
		Sources:      20,
		LambdaOn:     0.4,
		POnOff:       0.2,
		POffOn:       0.3,
		Label:        LabelValueUniform,
		Ports:        4,
		MaxLabel:     6,
		PortAffinity: true,
		Seed:         7,
	}
	const slots = 200
	p, err := NewMMPPProvider(cfg, slots)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots() != slots {
		t.Fatalf("Slots %d, want %d", p.Slots(), slots)
	}
	// Reference: a directly recorded trace of the same spec.
	gen, err := NewMMPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := Record(gen, slots)
	for i := 0; i < 2; i++ {
		cur, err := p.Open()
		if err != nil {
			t.Fatal(err)
		}
		got := drainCursor(t, cur, slots)
		cur.Close()
		if !equalTraces(got, want) {
			t.Fatalf("cursor %d diverged from the recorded spec", i)
		}
	}
	if _, err := NewMMPPProvider(MMPPConfig{}, 10); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := NewMMPPProvider(cfg, -1); err == nil {
		t.Fatal("negative slot count accepted")
	}
}

func TestTraceIsItsOwnProvider(t *testing.T) {
	tr := streamTestTrace()
	var p Provider = tr
	if p.Slots() != len(tr) {
		t.Fatalf("Slots %d, want %d", p.Slots(), len(tr))
	}
	cur, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if got := drainCursor(t, cur, len(tr)); !equalTraces(got, tr) {
		t.Fatal("trace replay cursor diverged")
	}
}

func TestRepeatProvider(t *testing.T) {
	round := Slots(
		[]pkt.Packet{{Port: 0, Work: 1, Value: 2}},
		nil,
		[]pkt.Packet{{Port: 1, Work: 2, Value: 1}},
	)
	r := Repeat{Round: round, Rounds: 3}
	want := Concat(round, round, round)
	if r.Slots() != len(want) {
		t.Fatalf("Slots %d, want %d", r.Slots(), len(want))
	}
	cur, err := r.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if got := drainCursor(t, cur, r.Slots()); !equalTraces(got, want) {
		t.Fatal("repeat cursor diverged from the concatenated rounds")
	}
	if (Repeat{Round: round, Rounds: -1}).Slots() != 0 {
		t.Fatal("negative rounds should yield an empty stream")
	}
	empty := Repeat{Rounds: 5}
	cur2, err := empty.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	if b := cur2.Next(); len(b) != 0 {
		t.Fatalf("empty round emitted %v", b)
	}
}

// TestStreamedEqualsMaterializedFormats is the format-level differential:
// for a seeded MMPP trace, the streaming readers must reproduce exactly
// what the materializing readers parse, over both serializations.
func TestStreamedEqualsMaterializedFormats(t *testing.T) {
	cfg := MMPPConfig{
		Sources:      30,
		LambdaOn:     0.5,
		POnOff:       0.2,
		POffOn:       0.3,
		Label:        LabelWorkByPort,
		Ports:        4,
		MaxLabel:     4,
		PortWork:     []int{1, 2, 3, 4},
		PortAffinity: true,
		Seed:         11,
	}
	gen, err := NewMMPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := Record(gen, 300)

	var text, bin bytes.Buffer
	if err := tr.Write(&text); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}

	mat, err := ReadTrace(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cur, slots, err := StreamText(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	streamed := drainCursor(t, cur, slots)
	cur.Close()
	if !reflect.DeepEqual(Trace(nilNormalize(mat)), Trace(nilNormalize(streamed))) {
		t.Fatal("text: streamed != materialized")
	}

	matB, err := ReadBinaryTrace(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	curB, slotsB, err := StreamBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	streamedB := drainCursor(t, curB, slotsB)
	curB.Close()
	if !equalTraces(matB, streamedB) {
		t.Fatal("binary: streamed != materialized")
	}
}

// nilNormalize maps empty bursts to nil so DeepEqual compares content,
// not allocation shape.
func nilNormalize(tr Trace) Trace {
	out := make(Trace, len(tr))
	for i, s := range tr {
		if len(s) > 0 {
			out[i] = s
		}
	}
	return out
}
