// Package traffic generates the synthetic workloads of the paper's
// simulation study: the interleaving of many independent on-off bursty
// sources, each modeled as a Markov-modulated Poisson process (MMPP) that
// emits at rate λ_on in the "on" state and is silent in the "off" state.
//
// All randomness flows from an explicit seed, so every experiment is
// replayable. The package also provides trace materialization, replay and
// a text serialization for cmd/tracegen.
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"smbm/internal/pkt"
)

// Source produces the arrival burst of successive time slots. Arrivals
// within a slot are ordered (the paper serves input ports in fixed
// order).
type Source interface {
	// Next returns the packets arriving in the next slot. The returned
	// slice is owned by the caller.
	Next() []pkt.Packet
}

// LabelMode selects how generated packets are labeled.
type LabelMode int

// Label modes for the three experiment families of Fig. 5.
const (
	// LabelWorkByPort generates processing-model packets: the port is
	// sampled and the packet's work is the port's configured
	// requirement (Fig. 5 panels 1–3).
	LabelWorkByPort LabelMode = iota + 1
	// LabelValueUniform generates value-model packets with value drawn
	// uniformly from [1,k], independent of the port (panels 4–6).
	LabelValueUniform
	// LabelValueByPort generates value-model packets whose value is
	// uniquely determined by the port: value = port+1. Requires
	// Ports == MaxLabel (panels 7–9).
	LabelValueByPort
	// LabelWorkValue generates combined-model packets: the port is
	// sampled, the packet's work is the port's configured requirement
	// and its value is drawn uniformly from [1,k] — the work×value
	// workload the paper never ran.
	LabelWorkValue
)

// MMPPConfig parameterizes an interleaving of independent on-off MMPP
// sources.
type MMPPConfig struct {
	// Sources is the number of independent on-off processes (paper: 500).
	Sources int
	// LambdaOn is the per-source Poisson packet rate while "on".
	LambdaOn float64
	// POnOff is the per-slot probability of an "on" source turning off.
	POnOff float64
	// POffOn is the per-slot probability of an "off" source turning on.
	POffOn float64
	// Label selects the packet labeling scheme.
	Label LabelMode
	// Ports is the number of output ports packets are destined to.
	Ports int
	// MaxLabel is k, the bound on work/value labels.
	MaxLabel int
	// PortWork is the per-port work configuration consulted by
	// LabelWorkByPort; nil means unit work.
	PortWork []int
	// PortAffinity pins each source to one uniformly chosen port,
	// concentrating bursts on single queues. When false every packet
	// picks a port uniformly at random.
	PortAffinity bool
	// PortZipf skews port popularity with a Zipf(s) law: weight of port
	// i is 1/(i+1)^s, so low-numbered (cheap, in the contiguous
	// configuration) ports are the most popular. Zero keeps the uniform
	// choice. Applies to both per-packet port draws and per-source
	// affinity assignment.
	PortZipf float64
	// Seed initializes the generator; equal seeds give equal traces.
	Seed int64
}

// Validate checks the configuration.
func (c MMPPConfig) Validate() error {
	switch {
	case c.Sources < 1:
		return fmt.Errorf("traffic: sources %d < 1", c.Sources)
	case c.LambdaOn < 0 || math.IsNaN(c.LambdaOn) || math.IsInf(c.LambdaOn, 0):
		return fmt.Errorf("traffic: bad lambda %v", c.LambdaOn)
	case c.POnOff < 0 || c.POnOff > 1 || c.POffOn < 0 || c.POffOn > 1:
		return fmt.Errorf("traffic: transition probabilities out of [0,1]: on->off %v, off->on %v", c.POnOff, c.POffOn)
	case c.Ports < 1:
		return fmt.Errorf("traffic: ports %d < 1", c.Ports)
	case c.MaxLabel < 1:
		return fmt.Errorf("traffic: max label %d < 1", c.MaxLabel)
	case c.Label < LabelWorkByPort || c.Label > LabelWorkValue:
		return fmt.Errorf("traffic: unknown label mode %d", int(c.Label))
	case c.Label == LabelValueByPort && c.Ports != c.MaxLabel:
		return fmt.Errorf("traffic: value-by-port labeling needs ports == k, got %d != %d", c.Ports, c.MaxLabel)
	case c.PortWork != nil && len(c.PortWork) != c.Ports:
		return fmt.Errorf("traffic: len(PortWork)=%d != ports %d", len(c.PortWork), c.Ports)
	case c.PortZipf < 0 || math.IsNaN(c.PortZipf) || math.IsInf(c.PortZipf, 0):
		return fmt.Errorf("traffic: bad Zipf exponent %v", c.PortZipf)
	}
	return nil
}

// StationaryOnFraction returns the long-run fraction of time a source
// spends "on" under the two-state chain.
func (c MMPPConfig) StationaryOnFraction() float64 {
	if c.POffOn+c.POnOff == 0 {
		return 1 // chain never moves; sources start per the stationary draw below, treat as always-on
	}
	return c.POffOn / (c.POffOn + c.POnOff)
}

// MeanRate returns the expected aggregate packet arrivals per slot.
func (c MMPPConfig) MeanRate() float64 {
	return float64(c.Sources) * c.LambdaOn * c.StationaryOnFraction()
}

// LambdaForRate returns the LambdaOn that makes MeanRate equal rate,
// keeping every other field of c fixed.
func (c MMPPConfig) LambdaForRate(rate float64) float64 {
	denom := float64(c.Sources) * c.StationaryOnFraction()
	if denom == 0 {
		return 0
	}
	return rate / denom
}

// MMPP is the interleaving of independent on-off sources.
type MMPP struct {
	cfg        MMPPConfig
	rng        *rand.Rand
	on         []bool
	sourcePort []int     // fixed port per source when PortAffinity is set
	portCDF    []float64 // cumulative Zipf weights when PortZipf > 0
}

// NewMMPP builds the generator. Source states are initialized from the
// stationary distribution so traces need no warm-up.
func NewMMPP(cfg MMPPConfig) (*MMPP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &MMPP{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		on:  make([]bool, cfg.Sources),
	}
	pOn := cfg.StationaryOnFraction()
	for i := range g.on {
		g.on[i] = g.rng.Float64() < pOn
	}
	if cfg.PortZipf > 0 {
		g.portCDF = make([]float64, cfg.Ports)
		var total float64
		for i := range g.portCDF {
			total += math.Pow(float64(i+1), -cfg.PortZipf)
			g.portCDF[i] = total
		}
		for i := range g.portCDF {
			g.portCDF[i] /= total
		}
	}
	if cfg.PortAffinity {
		g.sourcePort = make([]int, cfg.Sources)
		for i := range g.sourcePort {
			g.sourcePort[i] = g.drawPort()
		}
	}
	return g, nil
}

// drawPort samples a destination port (uniform or Zipf-skewed).
func (g *MMPP) drawPort() int {
	if g.portCDF == nil {
		return g.rng.Intn(g.cfg.Ports)
	}
	u := g.rng.Float64()
	lo, hi := 0, len(g.portCDF)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.portCDF[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Next implements Source.
func (g *MMPP) Next() []pkt.Packet {
	var out []pkt.Packet
	for i := 0; i < g.cfg.Sources; i++ {
		if g.on[i] {
			for n := poisson(g.rng, g.cfg.LambdaOn); n > 0; n-- {
				out = append(out, g.emit(i))
			}
			if g.rng.Float64() < g.cfg.POnOff {
				g.on[i] = false
			}
		} else if g.rng.Float64() < g.cfg.POffOn {
			g.on[i] = true
		}
	}
	return out
}

// emit labels one packet from source i.
func (g *MMPP) emit(i int) pkt.Packet {
	port := g.drawPort()
	if g.cfg.PortAffinity {
		port = g.sourcePort[i]
	}
	switch g.cfg.Label {
	case LabelWorkByPort:
		work := 1
		if g.cfg.PortWork != nil {
			work = g.cfg.PortWork[port]
		}
		return pkt.NewWork(port, work)
	case LabelValueUniform:
		return pkt.NewValue(port, 1+g.rng.Intn(g.cfg.MaxLabel))
	case LabelValueByPort:
		return pkt.NewValue(port, port+1)
	case LabelWorkValue:
		work := 1
		if g.cfg.PortWork != nil {
			work = g.cfg.PortWork[port]
		}
		return pkt.NewWorkValue(port, work, 1+g.rng.Intn(g.cfg.MaxLabel))
	default:
		panic(fmt.Sprintf("traffic: unreachable label mode %d", int(g.cfg.Label)))
	}
}

// poisson samples a Poisson variate by Knuth's product method for small
// means and a clipped normal approximation for large ones (λ in this
// package stays small; the fallback only guards against misuse).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(rng.NormFloat64()*math.Sqrt(lambda) + lambda))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
