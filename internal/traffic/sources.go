package traffic

import (
	"fmt"

	"smbm/internal/pkt"
)

// Constant emits the same burst every slot — constant-bit-rate traffic
// for calibration tests and steady-state experiments.
type Constant struct {
	// Burst is emitted (copied) each slot.
	Burst []pkt.Packet
}

// Next implements Source.
func (c *Constant) Next() []pkt.Packet {
	out := make([]pkt.Packet, len(c.Burst))
	copy(out, c.Burst)
	return out
}

// Periodic emits a burst every Period slots (first burst at slot Offset),
// and nothing otherwise — the paper's "every i-th time slot, another [i]
// arrives" trickles.
type Periodic struct {
	// Burst is emitted on firing slots.
	Burst []pkt.Packet
	// Period is the firing interval in slots (>= 1).
	Period int
	// Offset delays the first firing.
	Offset int

	slot int
}

// Next implements Source.
func (p *Periodic) Next() []pkt.Packet {
	s := p.slot
	p.slot++
	period := p.Period
	if period < 1 {
		period = 1
	}
	if s < p.Offset || (s-p.Offset)%period != 0 {
		return nil
	}
	out := make([]pkt.Packet, len(p.Burst))
	copy(out, p.Burst)
	return out
}

// Mix interleaves sources: each slot concatenates every source's burst
// in order, modeling independent input ports feeding one switch.
type Mix struct {
	// Sources are drained in order every slot.
	Sources []Source
}

// Next implements Source.
func (m *Mix) Next() []pkt.Packet {
	var out []pkt.Packet
	for _, s := range m.Sources {
		out = append(out, s.Next()...)
	}
	return out
}

// Limit truncates a source after N slots, then stays silent.
type Limit struct {
	// Source is the wrapped generator.
	Source Source
	// N is the number of live slots.
	N int

	used int
}

// Next implements Source.
func (l *Limit) Next() []pkt.Packet {
	if l.used >= l.N {
		return nil
	}
	l.used++
	return l.Source.Next()
}

// Validate-style interface checks.
var (
	_ Source = (*Constant)(nil)
	_ Source = (*Periodic)(nil)
	_ Source = (*Mix)(nil)
	_ Source = (*Limit)(nil)
)

// OnOff wraps a source with a deterministic duty cycle: On slots of
// pass-through followed by Off slots of silence, repeating. Useful for
// reproducible burst patterns in tests (the random counterpart is MMPP).
type OnOff struct {
	// Source is the wrapped generator (advanced only during on-phases).
	Source Source
	// On and Off are the phase lengths in slots.
	On, Off int

	slot int
}

// Next implements Source.
func (o *OnOff) Next() []pkt.Packet {
	on, off := o.On, o.Off
	if on < 1 {
		on = 1
	}
	if off < 0 {
		off = 0
	}
	pos := o.slot % (on + off)
	o.slot++
	if pos >= on {
		return nil
	}
	return o.Source.Next()
}

var _ Source = (*OnOff)(nil)

// Describe returns a one-line human-readable summary of a recorded
// trace, used by CLI tooling.
func Describe(tr Trace) string {
	var peak int
	for _, slot := range tr {
		if len(slot) > peak {
			peak = len(slot)
		}
	}
	rate := 0.0
	if len(tr) > 0 {
		rate = float64(tr.Packets()) / float64(len(tr))
	}
	return fmt.Sprintf("%d slots, %d packets, %.2f pkts/slot mean, %d peak",
		len(tr), tr.Packets(), rate, peak)
}
