package valpolicy

import (
	"smbm/internal/core"
	"smbm/internal/hmath"
	"smbm/internal/pkt"
)

// This file holds the value-model batch kernels (see
// internal/policy/batch.go for the processing-model set and the shared
// bit-identity contract). The value-model scans are the expensive ones
// — victim selection reads every queue's length, minimum and sum — so
// the kernels lean on the engine's drop memo: a congested burst that
// keeps offering the same (port, value) re-evaluates the O(n) scan
// only after the buffer actually changed.
//
// Each kernel mirrors its Admit FastView fast path expression for
// expression. Value-model policies driven against a processing-model
// switch (QueueMinValues() == nil) delegate to Batch.PerPacket so the
// plain-View fallback in Admit stays the single source of truth there.

// AdmitBatch implements core.BatchPolicy. H_k, the label ceiling and
// the buffer bound are hoisted once per burst.
//
//smb:hotpath
func (NHSTV) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	lens := f.QueueLens()
	k := f.MaxLabel()
	hk := hmath.Harmonic(k)
	bufF := float64(f.Buffer())
	free := b.Free()
	for i := range ps {
		if free == 0 {
			b.DropAll(ps[i:])
			return
		}
		p := ps[i]
		lhs := float64(lens[p.Port]) * float64(k-p.Value+1) * hk
		if lhs < bufF {
			b.Accept(p)
			free--
		} else {
			b.Drop(p)
		}
	}
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (LQD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	lens, mins := f.QueueLens(), f.QueueMinValues()
	if mins == nil {
		b.PerPacket(ps)
		return
	}
	free := b.Free()
	for x := range ps {
		p := ps[x]
		if free > 0 {
			b.Accept(p)
			free--
			continue
		}
		if b.KnownDrop(p) {
			b.Drop(p)
			continue
		}
		i := p.Port
		longest, longestLen := -1, -1
		for j, l := range lens {
			if j == i {
				l++ // virtually add p
			}
			switch {
			case l > longestLen:
				longest, longestLen = j, l
			case l == longestLen && mins[j] < mins[longest]:
				longest = j
			}
		}
		if longest != i {
			b.PushOut(longest, p)
		} else if lens[i] > 0 && mins[i] < p.Value {
			b.PushOut(i, p)
		} else {
			b.DropMemo(p)
		}
	}
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (MVD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	mvdBatch(b, ps, 1)
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (MVD1) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	mvdBatch(b, ps, 2)
}

// mvdBatch is the batched mvdAdmit (minimum victim-queue length 1 for
// MVD, 2 for MVD1).
//
//smb:hotpath
func mvdBatch(b *core.Batch, ps []pkt.Packet, minLen int) {
	f := b.View()
	lens, mins := f.QueueLens(), f.QueueMinValues()
	if mins == nil {
		b.PerPacket(ps)
		return
	}
	free := b.Free()
	for x := range ps {
		p := ps[x]
		if free > 0 {
			b.Accept(p)
			free--
			continue
		}
		if b.KnownDrop(p) {
			b.Drop(p)
			continue
		}
		victim, minVal := -1, 0
		for j, l := range lens {
			if l < minLen {
				continue
			}
			mv := mins[j]
			switch {
			case victim == -1 || mv < minVal:
				victim, minVal = j, mv
			case mv == minVal && l > lens[victim]:
				victim = j
			}
		}
		if victim >= 0 && minVal < p.Value {
			b.PushOut(victim, p)
		} else {
			b.DropMemo(p)
		}
	}
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (MRD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	lens, mins, sums := f.QueueLens(), f.QueueMinValues(), f.QueueSums()
	if mins == nil {
		b.PerPacket(ps)
		return
	}
	free := b.Free()
	for x := range ps {
		p := ps[x]
		if free > 0 {
			b.Accept(p)
			free--
			continue
		}
		if b.KnownDrop(p) {
			b.Drop(p)
			continue
		}
		victim := -1
		var bestNum, bestDen int64
		globalMin := 0
		for j := range lens {
			l, sum := int64(lens[j]), sums[j]
			if j == p.Port {
				l++ // virtually add p
				sum += int64(p.Value)
			}
			if l == 0 {
				continue
			}
			mv := mins[j] // 0 on an empty queue: only possible for j == p.Port
			if mv > 0 && (globalMin == 0 || mv < globalMin) {
				globalMin = mv
			}
			num, den := l*l, sum
			switch {
			case victim == -1 || num*bestDen > bestNum*den:
				victim, bestNum, bestDen = j, num, den
			case num*bestDen == bestNum*den && minOrInfSlices(lens, mins, j) < minOrInfSlices(lens, mins, victim):
				victim, bestNum, bestDen = j, num, den
			}
		}
		// mrdDecide, phrased against the batch operations.
		if victim != p.Port {
			if globalMin <= p.Value {
				b.PushOut(victim, p)
			} else {
				b.DropMemo(p)
			}
		} else if lens[p.Port] > 0 && mins[p.Port] < p.Value {
			b.PushOut(p.Port, p)
		} else {
			b.DropMemo(p)
		}
	}
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (TVD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	lens, mins, sums := f.QueueLens(), f.QueueMinValues(), f.QueueSums()
	if mins == nil {
		b.PerPacket(ps)
		return
	}
	free := b.Free()
	for x := range ps {
		p := ps[x]
		if free > 0 {
			b.Accept(p)
			free--
			continue
		}
		if b.KnownDrop(p) {
			b.Drop(p)
			continue
		}
		victim := -1
		var bestSum int64
		globalMin := 0
		for j, l := range lens {
			if l == 0 {
				continue
			}
			if mv := mins[j]; globalMin == 0 || mv < globalMin {
				globalMin = mv
			}
			if sum := sums[j]; victim == -1 || sum > bestSum {
				victim, bestSum = j, sum
			}
		}
		// tvdDecide, phrased against the batch operations.
		if victim != p.Port {
			if globalMin <= p.Value {
				b.PushOut(victim, p)
			} else {
				b.DropMemo(p)
			}
		} else if lens[p.Port] > 0 && mins[p.Port] < p.Value {
			b.PushOut(p.Port, p)
		} else {
			b.DropMemo(p)
		}
	}
}

var (
	_ core.BatchPolicy = NHSTV{}
	_ core.BatchPolicy = LQD{}
	_ core.BatchPolicy = MVD{}
	_ core.BatchPolicy = MVD1{}
	_ core.BatchPolicy = MRD{}
	_ core.BatchPolicy = TVD{}
)
