// Package valpolicy implements the buffer management policies of Section
// IV of the paper (heterogeneous packet values, unit work, priority-queue
// output queues). The objective is total transmitted value.
//
// Length-based policies that carry over unchanged from the processing
// model (Greedy, NEST, NHDT) live in package policy and are shared by the
// value-model experiments.
package valpolicy

import (
	"smbm/internal/core"
	"smbm/internal/policy"
)

// ForUniform returns the roster of Fig. 5 panels 4–6: the value model
// with both output port and value chosen uniformly at random.
func ForUniform() []core.Policy {
	return []core.Policy{
		policy.Greedy{},
		policy.NEST{},
		policy.NHDT{},
		LQD{},
		MVD{},
		MVD1{},
		MRD{},
	}
}

// ForValueByPort returns the roster of Fig. 5 panels 7–9: the special
// case where a packet's value is uniquely determined by its output port,
// which adds the reversed-threshold NHSTV.
func ForValueByPort() []core.Policy {
	return []core.Policy{
		policy.Greedy{},
		NHSTV{},
		policy.NEST{},
		policy.NHDT{},
		LQD{},
		MVD{},
		MVD1{},
		MRD{},
	}
}

// ByName returns the value-model policy with the given Name, or nil.
func ByName(name string) core.Policy {
	for _, p := range ForValueByPort() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}
