package valpolicy

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

// TestQuickMVDKeepsTopValues: absent transmissions, MVD's buffer always
// holds exactly the B most valuable packets offered so far (the greedy
// value-maximization property that defines the policy). LQD, by
// contrast, must violate this on value-skewed input.
func TestQuickMVDKeepsTopValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := valCfg(6)
		sw := core.MustNew(cfg, MVD{})
		var offered []int
		for i := 0; i < 30; i++ {
			p := pkt.NewValue(rng.Intn(cfg.Ports), 1+rng.Intn(cfg.MaxLabel))
			offered = append(offered, p.Value)
			if err := sw.Arrive(p); err != nil {
				t.Log(err)
				return false
			}
		}
		// The View exposes aggregates, which pin the multiset well
		// enough: buffered total value must equal the sum of the top-B
		// offered values, and the buffered minimum must be their
		// minimum.
		sort.Sort(sort.Reverse(sort.IntSlice(offered)))
		top := offered
		if len(top) > cfg.Buffer {
			top = top[:cfg.Buffer]
		}
		var wantSum int64
		wantMin := top[len(top)-1]
		for _, v := range top {
			wantSum += int64(v)
		}
		var gotSum int64
		gotMin := 0
		for q := 0; q < cfg.Ports; q++ {
			gotSum += sw.QueueValueSum(q)
			if mv := sw.QueueMinValue(q); mv > 0 && (gotMin == 0 || mv < gotMin) {
				gotMin = mv
			}
		}
		return gotSum == wantSum && gotMin == wantMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestMVDBeatsLQDOnBufferedValue is the deterministic counterpart: after
// a value-skewed burst, MVD's buffer is strictly richer than LQD's.
func TestMVDBeatsLQDOnBufferedValue(t *testing.T) {
	cfg := valCfg(4)
	burst := []pkt.Packet{
		pkt.NewValue(0, 1), pkt.NewValue(0, 1), pkt.NewValue(0, 1), pkt.NewValue(0, 1),
		pkt.NewValue(1, 8), pkt.NewValue(1, 8), pkt.NewValue(1, 8), pkt.NewValue(1, 8),
	}
	mvd := core.MustNew(cfg, MVD{})
	lqd := core.MustNew(cfg, LQD{})
	if err := mvd.ArriveBurst(burst); err != nil {
		t.Fatal(err)
	}
	if err := lqd.ArriveBurst(burst); err != nil {
		t.Fatal(err)
	}
	sum := func(sw *core.Switch) int64 {
		var s int64
		for q := 0; q < cfg.Ports; q++ {
			s += sw.QueueValueSum(q)
		}
		return s
	}
	if m, l := sum(mvd), sum(lqd); m != 32 || m <= l {
		t.Errorf("MVD buffered value %d (want 32), LQD %d", m, l)
	}
}
