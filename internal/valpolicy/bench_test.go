package valpolicy

import (
	"math/rand"
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/policy"
)

// benchAdmit measures one value policy's per-packet decision cost on a
// full 64-port switch.
func benchAdmit(b *testing.B, p core.Policy) {
	b.Helper()
	const n = 64
	cfg := core.Config{Model: core.ModelValue, Ports: n, Buffer: 4 * n, MaxLabel: n, Speedup: 1}
	sw := core.MustNew(cfg, policy.Greedy{})
	rng := rand.New(rand.NewSource(1))
	for sw.Free() > 0 {
		if err := sw.Arrive(pkt.NewValue(rng.Intn(n), 1+rng.Intn(n))); err != nil {
			b.Fatal(err)
		}
	}
	arrivals := make([]pkt.Packet, 1024)
	for i := range arrivals {
		arrivals[i] = pkt.NewValue(rng.Intn(n), 1+rng.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Admit(sw, arrivals[i%len(arrivals)])
	}
}

func BenchmarkAdmitValueLQD(b *testing.B) { benchAdmit(b, LQD{}) }
func BenchmarkAdmitMVD(b *testing.B)      { benchAdmit(b, MVD{}) }
func BenchmarkAdmitMVD1(b *testing.B)     { benchAdmit(b, MVD1{}) }
func BenchmarkAdmitMRD(b *testing.B)      { benchAdmit(b, MRD{}) }
func BenchmarkAdmitNHSTV(b *testing.B)    { benchAdmit(b, NHSTV{}) }
