// Package singleq implements the single-queue architecture the paper's
// introduction contrasts with the shared-memory switch (Fig. 1, top):
// one queue over the whole buffer, and a pool of cores each of which can
// process any traffic type. Cores run packets to completion ("run-for-
// completion" — no rescheduling), so the architectural choice is which
// waiting packet a freed core picks:
//
//   - OrderPQ: smallest required work first — the priority-queuing
//     policy with push-out that is throughput-optimal in the
//     single-queue model [Keslassy et al.], at the price of starving
//     expensive classes and of processing-order hardware;
//   - OrderFIFO: arrival order — the simple hardware, whose greedy
//     non-push-out variant is k-competitive.
//
// The package exists to reproduce the paper's motivation quantitatively:
// cmd/smbsim -experiment arch compares these against the shared-memory
// switch under LWD on identical traffic, reporting both throughput and
// per-class starvation.
package singleq

import (
	"fmt"

	"smbm/internal/core"
	"smbm/internal/deque"
	"smbm/internal/pkt"
)

// Order selects which waiting packet a freed core takes.
type Order int

// Processing orders.
const (
	// OrderPQ serves the smallest required work first.
	OrderPQ Order = iota + 1
	// OrderFIFO serves in arrival order.
	OrderFIFO
)

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case OrderPQ:
		return "PQ"
	case OrderFIFO:
		return "FIFO"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Config describes a single-queue switch.
type Config struct {
	// Buffer is B, in packets (waiting + in service).
	Buffer int
	// MaxWork is k, the bound on per-packet required work.
	MaxWork int
	// Cores is the number of run-to-completion cores.
	Cores int
	// Order selects the processing order.
	Order Order
	// PushOut enables evicting the worst waiting packet for a better
	// arrival when the buffer is full (PQ: largest work; FIFO:
	// youngest-of-larger-work).
	PushOut bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Buffer < 1:
		return fmt.Errorf("singleq: buffer %d < 1", c.Buffer)
	case c.MaxWork < 1:
		return fmt.Errorf("singleq: max work %d < 1", c.MaxWork)
	case c.MaxWork > 255:
		return fmt.Errorf("singleq: max work %d exceeds encoding limit 255", c.MaxWork)
	case c.Cores < 1:
		return fmt.Errorf("singleq: cores %d < 1", c.Cores)
	case c.Order != OrderPQ && c.Order != OrderFIFO:
		return fmt.Errorf("singleq: unknown order %d", int(c.Order))
	}
	return nil
}

// ClassCounters carries per-work-class statistics: the starvation
// evidence the paper's shared-memory design responds to.
type ClassCounters struct {
	// Arrived, Dropped, PushedOut and Transmitted count the class's
	// packets through the admission pipeline.
	Arrived, Dropped, PushedOut, Transmitted int64
	// LatencySlots sums transmitted packets' residence times.
	LatencySlots int64
	// MaxLatency is the largest single-packet residence observed.
	MaxLatency int64
}

// MeanLatency returns the class's average transmitted-packet latency.
func (c ClassCounters) MeanLatency() float64 {
	if c.Transmitted == 0 {
		return 0
	}
	return float64(c.LatencySlots) / float64(c.Transmitted)
}

// job is an in-service packet.
type job struct {
	residual int
	class    int
	arrived  int64
}

// Switch is a single-queue switch instance. It implements the
// sim.System contract.
type Switch struct {
	cfg  Config
	slot int64

	// waiting packets: per-class FIFO of arrival slots. FIFO order
	// additionally keeps the global arrival order in fifo (class
	// encoded alongside).
	byClass []deque.Deque // index 1..MaxWork
	fifo    deque.Deque   // encoded arrival<<8 | class
	waiting int

	cores []job // fixed length Cores; residual 0 = idle core

	stats    core.Stats
	perClass []ClassCounters
}

// New builds a single-queue switch.
func New(cfg Config) (*Switch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Switch{
		cfg:      cfg,
		byClass:  make([]deque.Deque, cfg.MaxWork+1),
		cores:    make([]job, cfg.Cores),
		perClass: make([]ClassCounters, cfg.MaxWork+1),
	}, nil
}

// Name implements the sim.System contract.
func (s *Switch) Name() string {
	mode := "greedy"
	if s.cfg.PushOut {
		mode = "pushout"
	}
	return fmt.Sprintf("1Q-%s-%s", s.cfg.Order, mode)
}

// Stats returns the accumulated counters.
func (s *Switch) Stats() core.Stats { return s.stats }

// ClassCounters returns a copy of the per-class counters (index = work).
func (s *Switch) ClassCounters() []ClassCounters {
	out := make([]ClassCounters, len(s.perClass))
	copy(out, s.perClass)
	return out
}

// Occupancy returns waiting plus in-service packets.
func (s *Switch) Occupancy() int {
	occ := s.waiting
	for _, j := range s.cores {
		if j.residual > 0 {
			occ++
		}
	}
	return occ
}

const encShift = 8

func encode(arrived int64, class int) int64 { return arrived<<encShift | int64(class) }

func decode(v int64) (arrived int64, class int) { return v >> encShift, int(v & 0xff) }

// Arrive admits or rejects one packet. Port labels are ignored: there is
// only one queue.
func (s *Switch) Arrive(p pkt.Packet) error {
	if p.Work < 1 || p.Work > s.cfg.MaxWork {
		return fmt.Errorf("singleq: work %d out of [1,%d]", p.Work, s.cfg.MaxWork)
	}
	s.stats.Arrived++
	s.perClass[p.Work].Arrived++
	if s.Occupancy() >= s.cfg.Buffer {
		if !s.cfg.PushOut || !s.evictFor(p.Work) {
			s.stats.Dropped++
			s.perClass[p.Work].Dropped++
			return nil
		}
	}
	s.byClass[p.Work].PushBack(s.slot)
	if s.cfg.Order == OrderFIFO {
		s.fifo.PushBack(encode(s.slot, p.Work))
	}
	s.waiting++
	s.stats.Accepted++
	if occ := s.Occupancy(); occ > s.stats.MaxOccupancy {
		s.stats.MaxOccupancy = occ
	}
	return nil
}

// evictFor removes the worst *waiting* packet strictly worse than the
// arriving class (in-service packets run to completion and cannot be
// evicted). Returns false when no such victim exists.
func (s *Switch) evictFor(class int) bool {
	victim := 0
	for w := s.cfg.MaxWork; w > class; w-- {
		if s.byClass[w].Len() > 0 {
			victim = w
			break
		}
	}
	if victim == 0 {
		return false
	}
	// Evict the youngest packet of the victim class; drop the matching
	// FIFO entry lazily (see fill).
	s.byClass[victim].PopBack()
	s.waiting--
	s.stats.PushedOut++
	s.perClass[victim].PushedOut++
	return true
}

// Transmit runs one transmission phase: fill idle cores from the waiting
// pool, then give every in-service packet one cycle; completions leave.
func (s *Switch) Transmit() {
	s.fill()
	for i := range s.cores {
		j := &s.cores[i]
		if j.residual == 0 {
			continue
		}
		j.residual--
		s.stats.CyclesUsed++
		if j.residual > 0 {
			continue
		}
		s.stats.Transmitted++
		s.stats.TransmittedValue++
		s.stats.TransmittedWork += int64(j.class)
		latency := s.slot - j.arrived
		s.stats.LatencySlots += latency
		cc := &s.perClass[j.class]
		cc.Transmitted++
		cc.LatencySlots += latency
		if latency > cc.MaxLatency {
			cc.MaxLatency = latency
		}
	}
	s.slot++
	s.stats.Slots++
}

// fill assigns waiting packets to idle cores per the configured order.
func (s *Switch) fill() {
	for i := range s.cores {
		if s.cores[i].residual > 0 {
			continue
		}
		arrived, class, ok := s.next()
		if !ok {
			return
		}
		s.cores[i] = job{residual: class, class: class, arrived: arrived}
	}
}

// next pops the next waiting packet per the order, or ok=false.
func (s *Switch) next() (arrived int64, class int, ok bool) {
	if s.waiting == 0 {
		return 0, 0, false
	}
	switch s.cfg.Order {
	case OrderPQ:
		for w := 1; w <= s.cfg.MaxWork; w++ {
			if s.byClass[w].Len() > 0 {
				s.waiting--
				return s.byClass[w].PopFront(), w, true
			}
		}
		return 0, 0, false
	default: // OrderFIFO
		// Skip FIFO entries whose packet was pushed out (lazy
		// deletion): an entry is live only while its class deque still
		// holds its arrival slot at the front.
		for s.fifo.Len() > 0 {
			arrived, class := decode(s.fifo.PopFront())
			if s.byClass[class].Len() > 0 && s.byClass[class].Front() == arrived {
				s.byClass[class].PopFront()
				s.waiting--
				return arrived, class, true
			}
		}
		return 0, 0, false
	}
}

// Step runs one slot: arrivals then transmission.
func (s *Switch) Step(arrivals []pkt.Packet) error {
	for _, p := range arrivals {
		if err := s.Arrive(p); err != nil {
			return err
		}
	}
	s.Transmit()
	return nil
}

// Drain transmits with no arrivals until empty, returning slots used.
func (s *Switch) Drain() int {
	var slots int
	for s.Occupancy() > 0 {
		s.Transmit()
		slots++
	}
	return slots
}

// Reset restores the initial empty state.
func (s *Switch) Reset() {
	s.slot = 0
	s.waiting = 0
	s.fifo.Clear()
	for i := range s.byClass {
		s.byClass[i].Clear()
	}
	for i := range s.cores {
		s.cores[i] = job{}
	}
	s.stats = core.Stats{}
	for i := range s.perClass {
		s.perClass[i] = ClassCounters{}
	}
}
