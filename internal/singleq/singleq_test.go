package singleq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smbm/internal/pkt"
)

func cfgPQ() Config {
	return Config{Buffer: 8, MaxWork: 4, Cores: 2, Order: OrderPQ, PushOut: true}
}

func cfgFIFO() Config {
	return Config{Buffer: 8, MaxWork: 4, Cores: 2, Order: OrderFIFO}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Config)
	}{
		{"zero buffer", func(c *Config) { c.Buffer = 0 }},
		{"zero work", func(c *Config) { c.MaxWork = 0 }},
		{"work over encoding", func(c *Config) { c.MaxWork = 300 }},
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"bad order", func(c *Config) { c.Order = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := cfgPQ()
			c.f(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if got := OrderPQ.String(); got != "PQ" {
		t.Errorf("OrderPQ.String() = %q", got)
	}
	if got := OrderFIFO.String(); got != "FIFO" {
		t.Errorf("OrderFIFO.String() = %q", got)
	}
}

func TestNames(t *testing.T) {
	pq, _ := New(cfgPQ())
	if pq.Name() != "1Q-PQ-pushout" {
		t.Errorf("name %q", pq.Name())
	}
	ff, _ := New(cfgFIFO())
	if ff.Name() != "1Q-FIFO-greedy" {
		t.Errorf("name %q", ff.Name())
	}
}

func TestPQOrderServesSmallestFirst(t *testing.T) {
	s, err := New(Config{Buffer: 8, MaxWork: 4, Cores: 1, Order: OrderPQ})
	if err != nil {
		t.Fatal(err)
	}
	// A 4 arrives first, then a 1: the core must take the 1 first.
	if err := s.Step([]pkt.Packet{pkt.NewWork(0, 4), pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Transmitted; got != 1 {
		t.Errorf("slot 0 transmitted %d, want 1 (the work-1 packet)", got)
	}
	if got := s.perClass[1].Transmitted; got != 1 {
		t.Errorf("class-1 transmitted %d", got)
	}
	s.Drain()
	if got := s.perClass[4].Transmitted; got != 1 {
		t.Errorf("class-4 transmitted %d after drain", got)
	}
}

func TestFIFOOrderServesArrivalOrder(t *testing.T) {
	s, err := New(Config{Buffer: 8, MaxWork: 4, Cores: 1, Order: OrderFIFO})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step([]pkt.Packet{pkt.NewWork(0, 4), pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	// The core took the 4; nothing has completed yet.
	if got := s.Stats().Transmitted; got != 0 {
		t.Errorf("slot 0 transmitted %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		s.Transmit()
	}
	if got := s.perClass[4].Transmitted; got != 1 {
		t.Errorf("class-4 transmitted %d after 4 cycles", got)
	}
	if got := s.perClass[1].Transmitted; got != 0 {
		t.Errorf("class-1 transmitted %d, want 0 (still waiting)", got)
	}
}

func TestRunToCompletionNoPreemption(t *testing.T) {
	// PQ order, one core: once the core starts a 4, a later 1 must wait
	// for completion (run-to-completion), unlike a preemptive SRPT.
	s, err := New(Config{Buffer: 8, MaxWork: 4, Cores: 1, Order: OrderPQ})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step([]pkt.Packet{pkt.NewWork(0, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Step([]pkt.Packet{pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	s.Transmit() // slot 2
	s.Transmit() // slot 3: the 4 completes
	if got := s.perClass[4].Transmitted; got != 1 {
		t.Errorf("class-4 transmitted %d, want 1", got)
	}
	if got := s.perClass[1].Transmitted; got != 0 {
		t.Errorf("class-1 jumped the running packet")
	}
	s.Transmit()
	if got := s.perClass[1].Transmitted; got != 1 {
		t.Errorf("class-1 not served after completion")
	}
}

func TestPushOutEvictsWorstWaiting(t *testing.T) {
	s, err := New(Config{Buffer: 3, MaxWork: 4, Cores: 1, Order: OrderPQ, PushOut: true})
	if err != nil {
		t.Fatal(err)
	}
	// Fill: works 4, 4, 2 (one of the 4s goes in service after a step).
	if err := s.Step([]pkt.Packet{pkt.NewWork(0, 4), pkt.NewWork(0, 4), pkt.NewWork(0, 2)}); err != nil {
		t.Fatal(err)
	}
	// Wait: the core holds the 2 (smallest), waiting = {4,4}. Buffer
	// occupancy 3. A work-1 arrival evicts a waiting 4.
	if err := s.Arrive(pkt.NewWork(0, 1)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PushedOut != 1 || st.Dropped != 0 {
		t.Errorf("pushed %d dropped %d, want 1/0", st.PushedOut, st.Dropped)
	}
	if got := s.perClass[4].PushedOut; got != 1 {
		t.Errorf("class-4 pushed %d", got)
	}
	// Another work-4 arrival cannot displace anything (worst waiting is
	// a 4, not strictly worse).
	if err := s.Arrive(pkt.NewWork(0, 4)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Dropped; got != 1 {
		t.Errorf("dropped %d, want 1", got)
	}
}

func TestGreedyDropsWhenFull(t *testing.T) {
	s, err := New(Config{Buffer: 2, MaxWork: 4, Cores: 1, Order: OrderFIFO})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Arrive(pkt.NewWork(0, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Dropped; got != 1 {
		t.Errorf("dropped %d, want 1", got)
	}
}

func TestFIFOLazyDeletionAfterEviction(t *testing.T) {
	s, err := New(Config{Buffer: 2, MaxWork: 4, Cores: 1, Order: OrderFIFO, PushOut: true})
	if err != nil {
		t.Fatal(err)
	}
	// Two 4s fill the buffer; a 1 evicts the younger 4. The stale FIFO
	// entry must be skipped when cores pull.
	if err := s.ArriveBurstForTest(t, []pkt.Packet{pkt.NewWork(0, 4), pkt.NewWork(0, 4), pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	s.Transmit() // core takes the older 4
	s.Drain()
	st := s.Stats()
	if st.Transmitted != 2 {
		t.Errorf("transmitted %d, want 2 (one 4 + the 1)", st.Transmitted)
	}
	if s.perClass[4].Transmitted != 1 || s.perClass[1].Transmitted != 1 {
		t.Errorf("per-class transmissions: %+v", s.ClassCounters())
	}
}

// ArriveBurstForTest mirrors core.Switch.ArriveBurst.
func (s *Switch) ArriveBurstForTest(t *testing.T, ps []pkt.Packet) error {
	t.Helper()
	for _, p := range ps {
		if err := s.Arrive(p); err != nil {
			return err
		}
	}
	return nil
}

func TestInvalidWork(t *testing.T) {
	s, err := New(cfgPQ())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Arrive(pkt.NewWork(0, 9)); err == nil {
		t.Error("work beyond MaxWork accepted")
	}
}

func TestResetAndReuse(t *testing.T) {
	s, err := New(cfgPQ())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step([]pkt.Packet{pkt.NewWork(0, 3)}); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Occupancy() != 0 || s.Stats().Arrived != 0 {
		t.Error("Reset left state behind")
	}
	if err := s.Step([]pkt.Packet{pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Transmitted; got != 1 {
		t.Errorf("post-reset transmitted %d", got)
	}
}

// TestQuickConservation: arrivals = accepted + dropped; accepted =
// transmitted + pushed out after a drain; occupancy never exceeds B.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64, pushOut bool, fifo bool) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Buffer: 2 + rng.Intn(8), MaxWork: 4, Cores: 1 + rng.Intn(3), PushOut: pushOut, Order: OrderPQ}
		if fifo {
			cfg.Order = OrderFIFO
		}
		s, err := New(cfg)
		if err != nil {
			return false
		}
		for slot := 0; slot < 60; slot++ {
			burst := make([]pkt.Packet, rng.Intn(5))
			for i := range burst {
				burst[i] = pkt.NewWork(0, 1+rng.Intn(cfg.MaxWork))
			}
			if err := s.Step(burst); err != nil {
				return false
			}
			if s.Occupancy() > cfg.Buffer {
				return false
			}
		}
		s.Drain()
		st := s.Stats()
		if st.Arrived != st.Accepted+st.Dropped {
			return false
		}
		if st.Accepted != st.Transmitted+st.PushedOut {
			return false
		}
		var perClass int64
		for _, c := range s.ClassCounters() {
			perClass += c.Transmitted
		}
		return perClass == st.Transmitted && s.Occupancy() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestPQStarvesHeavyClasses reproduces the paper's motivation: under
// sustained overload of light packets, single-queue PQ never serves the
// heavy class, while FIFO does.
func TestPQStarvesHeavyClasses(t *testing.T) {
	run := func(order Order) (heavy int64) {
		s, err := New(Config{Buffer: 16, MaxWork: 4, Cores: 1, Order: order, PushOut: false})
		if err != nil {
			t.Fatal(err)
		}
		// Light packets precede the heavy one, so a PQ core always has
		// a cheaper candidate when it frees.
		if err := s.Step([]pkt.Packet{pkt.NewWork(0, 1), pkt.NewWork(0, 1), pkt.NewWork(0, 4)}); err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < 200; slot++ {
			if err := s.Step([]pkt.Packet{pkt.NewWork(0, 1), pkt.NewWork(0, 1)}); err != nil {
				t.Fatal(err)
			}
		}
		return s.ClassCounters()[4].Transmitted
	}
	if got := run(OrderPQ); got != 0 {
		t.Errorf("PQ served %d heavy packets under light overload, want 0", got)
	}
	if got := run(OrderFIFO); got != 1 {
		t.Errorf("FIFO served %d heavy packets, want 1", got)
	}
}
