package singleq

import (
	"math/rand"
	"testing"

	"smbm/internal/pkt"
)

func benchOrder(b *testing.B, order Order) {
	b.Helper()
	s, err := New(Config{Buffer: 256, MaxWork: 16, Cores: 16, Order: order, PushOut: true})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	burst := make([]pkt.Packet, 32)
	for i := range burst {
		burst[i] = pkt.NewWork(0, 1+rng.Intn(16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(burst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleQueuePQStep(b *testing.B)   { benchOrder(b, OrderPQ) }
func BenchmarkSingleQueueFIFOStep(b *testing.B) { benchOrder(b, OrderFIFO) }
