package mapcheck

import (
	"math/rand"
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/traffic"
)

func cfg(k, b int) core.Config {
	return core.Config{
		Model:    core.ModelProcessing,
		Ports:    k,
		Buffer:   b,
		MaxLabel: k,
		Speedup:  1,
		PortWork: core.ContiguousWorks(k),
	}
}

func randomTrace(rng *rand.Rand, c core.Config, slots, maxBurst int) traffic.Trace {
	tr := make(traffic.Trace, slots)
	for s := range tr {
		burst := make([]pkt.Packet, rng.Intn(maxBurst+1))
		for i := range burst {
			port := rng.Intn(c.Ports)
			burst[i] = pkt.NewWork(port, c.PortWork[port])
		}
		tr[s] = burst
	}
	return tr
}

func TestRunRejectsWrongModel(t *testing.T) {
	bad := cfg(3, 6)
	bad.Speedup = 2
	if _, err := Run(bad, policy.Greedy{}, nil); err == nil {
		t.Error("speedup > 1 accepted")
	}
	val := core.Config{Model: core.ModelValue, Ports: 2, Buffer: 4, MaxLabel: 2, Speedup: 1}
	if _, err := Run(val, policy.Greedy{}, nil); err == nil {
		t.Error("value model accepted")
	}
}

func TestRejectsPushOutOpponent(t *testing.T) {
	c := cfg(2, 2)
	// Two port-0 packets fill the buffer; the port-1 arrival makes an
	// LQD opponent push out, which the proof's model forbids for OPT.
	tr := traffic.Slots([]pkt.Packet{
		pkt.NewWork(0, 1), pkt.NewWork(0, 1), pkt.NewWork(1, 2),
	})
	if _, err := Run(c, policy.LQD{}, tr); err == nil {
		t.Error("push-out opponent accepted")
	}
}

// TestLiteralRoutineGap pins the reproduction finding: the mapping
// routine exactly as written in the paper's Fig. 3 violates Lemma 8's
// latency claim. The minimal witness (found by randomized search and
// shrinking): LWD pushes out queue 2's partially processed singleton
// (the work-tie between queues 0 and 2 resolves to the larger index),
// and when queue 2 refills one slot later, step A3 maps OPT's
// half-processed head-of-line packet (latency 2) to LWD's fresh packet
// (latency 3). The repaired routine (Run) keeps the packet on its valid
// A1 mapping instead and survives the same instance.
func TestLiteralRoutineGap(t *testing.T) {
	c := cfg(3, 4) // ports with works {1,2,3}, B=4
	witness := traffic.Slots(
		[]pkt.Packet{pkt.NewWork(1, 2)},
		[]pkt.Packet{pkt.NewWork(2, 3), pkt.NewWork(0, 1), pkt.NewWork(0, 1), pkt.NewWork(0, 1)},
		[]pkt.Packet{pkt.NewWork(2, 3)},
	)
	_, err := RunLiteral(c, policy.Greedy{}, witness)
	if err == nil {
		t.Fatal("the literal Fig. 3 routine no longer fails on the pinned witness — update the finding")
	}
	t.Logf("literal routine: %v", err)

	rep, err := Run(c, policy.Greedy{}, witness)
	if err != nil {
		t.Fatalf("repaired routine failed on the witness: %v", err)
	}
	if rep.OptSent > 2*rep.LwdSent {
		t.Fatalf("accounting violated on the witness: %+v", rep)
	}
}

// TestMappingHoldsAgainstGreedy maintains the Fig. 3 mapping on random
// saturating traffic with a greedy opponent — the executable Lemma 8.
func TestMappingHoldsAgainstGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		c := cfg(2+rng.Intn(3), 4+rng.Intn(8))
		tr := randomTrace(rng, c, 30, 6)
		rep, err := Run(c, policy.Greedy{}, tr)
		if err != nil {
			t.Fatalf("trial %d (cfg %+v): %v", trial, c, err)
		}
		if rep.OptSent > 2*rep.LwdSent {
			t.Fatalf("trial %d: counts violate Theorem 7: %+v", trial, rep)
		}
	}
}

// TestMappingHoldsAgainstThresholdScripts pits LWD against the scripted
// clairvoyant strategies the lower-bound proofs use.
func TestMappingHoldsAgainstThresholdScripts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		c := cfg(3, 9)
		thr := []int{1 + rng.Intn(6), 1 + rng.Intn(4), 1 + rng.Intn(3)}
		tr := randomTrace(rng, c, 30, 6)
		rep, err := Run(c, policy.StaticThreshold{Label: "script", T: thr}, tr)
		if err != nil {
			t.Fatalf("trial %d (thr %v): %v", trial, thr, err)
		}
		if rep.OptSent > 2*rep.LwdSent {
			t.Fatalf("trial %d: %+v", trial, rep)
		}
	}
}

// TestMappingHoldsOnTheorem6Script runs the mapping on the very arrival
// script designed to hurt LWD (the 4/3 − 6/B lower bound): the proof's
// machinery must survive its own adversary.
func TestMappingHoldsOnTheorem6Script(t *testing.T) {
	c := core.Config{
		Model:    core.ModelProcessing,
		Ports:    4,
		Buffer:   48,
		MaxLabel: 6,
		Speedup:  1,
		PortWork: []int{1, 2, 3, 6},
	}
	round := make(traffic.Trace, 48)
	round[0] = pkt.Concat(
		pkt.Burst(pkt.NewWork(0, 1), 48),
		pkt.Burst(pkt.NewWork(1, 2), 12),
		pkt.Burst(pkt.NewWork(2, 3), 8),
		pkt.Burst(pkt.NewWork(3, 6), 4),
	)
	for t2 := 1; t2 < 48; t2++ {
		if t2%2 == 0 {
			round[t2] = append(round[t2], pkt.NewWork(1, 2))
		}
		if t2%3 == 0 {
			round[t2] = append(round[t2], pkt.NewWork(2, 3))
		}
		if t2%6 == 0 {
			round[t2] = append(round[t2], pkt.NewWork(3, 6))
		}
	}
	tr := traffic.Concat(round, round)
	rep, err := Run(c, policy.StaticThreshold{Label: "OPT(script)", T: []int{42, 2, 2, 2}}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OptSent > 2*rep.LwdSent {
		t.Fatalf("Theorem 7 accounting violated: %+v", rep)
	}
	t.Logf("theorem-6 script: LWD %d, OPT %d, max charge %d, events %d",
		rep.LwdSent, rep.OptSent, rep.MaxCharge, rep.Events)
}

// TestMappingBreaksForNonCompetitivePolicies is the negative control:
// substituting BPD for LWD in the same machinery must fail — BPD's
// ratio exceeds 2 on its adversarial script, so no Fig. 3 mapping can
// exist. (The checker is LWD-specific by construction; this test
// documents that the harness has teeth.)
func TestMappingBreaksForNonCompetitivePolicies(t *testing.T) {
	// Theorem 5's script: full sets of all works every slot; BPD keeps
	// only unit-work packets. Run the mapping machinery with the LWD
	// shadow swapped for BPD via a checker on a config where BPD
	// collapses. We emulate by wiring BPD into the LWD slot directly.
	k := 6
	c := cfg(k, 2*k*(k+1))
	var tr traffic.Trace
	round := make(traffic.Trace, 10*k)
	var first []pkt.Packet
	for w := 1; w <= k; w++ {
		first = append(first, pkt.Burst(pkt.NewWork(w-1, w), c.Buffer)...)
	}
	round[0] = first
	for s := 1; s < len(round); s++ {
		for w := 1; w <= k; w++ {
			round[s] = append(round[s], pkt.NewWork(w-1, w), pkt.NewWork(w-1, w))
		}
	}
	tr = traffic.Concat(round, round, round)

	thresholds := make([]int, k)
	for i := range thresholds {
		thresholds[i] = c.Buffer / k
	}
	err := runWithAlg(c, policy.BPD{}, policy.StaticThreshold{Label: "script", T: thresholds}, tr)
	if err == nil {
		t.Fatal("the mapping machinery certified BPD, which is not 2-competitive")
	}
	t.Logf("negative control failed as expected: %v", err)
}

// runWithAlg runs the checker with an arbitrary policy in the LWD slot
// (test-only hook).
func runWithAlg(c core.Config, alg, opponent core.Policy, tr traffic.Trace) error {
	ck := &checker{
		lwd:            newShadow(c, alg),
		opt:            newShadow(c, opponent),
		a0:             map[int]int{},
		a1:             map[int]int{},
		a0img:          map[int]int{},
		a1img:          map[int]int{},
		lwdTransmitted: map[int]bool{},
		charges:        map[int]int{},
	}
	for _, burst := range tr {
		for _, p := range burst {
			if err := ck.arrival(p.Port); err != nil {
				return err
			}
		}
		if err := ck.transmission(); err != nil {
			return err
		}
	}
	for ck.lwd.occ > 0 || ck.opt.occ > 0 {
		if err := ck.transmission(); err != nil {
			return err
		}
	}
	return nil
}
