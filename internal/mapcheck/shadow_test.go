package mapcheck

import (
	"math/rand"
	"testing"

	"smbm/internal/core"
	"smbm/internal/policy"
	"smbm/internal/traffic"
)

// TestShadowMatchesEngine differentially tests the checker's shadow
// simulator against the production engine: same policy, same trace, the
// per-slot transmission counts and final statistics must agree exactly.
// This validates both implementations of the model at once.
func TestShadowMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	policies := []core.Policy{policy.LWD{}, policy.LQD{}, policy.Greedy{}, policy.BPD{}}
	for trial := 0; trial < 30; trial++ {
		ports := 2 + rng.Intn(4)
		c := cfg(ports, ports+2+rng.Intn(12))
		tr := randomTrace(rng, c, 40, 6)
		for _, p := range policies {
			sh := newShadow(c, p)
			sw := core.MustNew(c, p)
			var shadowSent int64
			for s, burst := range tr {
				for _, pk := range burst {
					if _, err := sh.admit(packet{id: 0, port: pk.Port}, pk.Work); err != nil {
						t.Fatalf("shadow admit: %v", err)
					}
				}
				for j := 0; j < c.Ports; j++ {
					if tx := sh.serve(j); tx != nil {
						shadowSent++
					}
				}
				sh.slot++
				if err := sw.Step(burst); err != nil {
					t.Fatalf("engine step: %v", err)
				}
				if got, want := sh.occ, sw.Occupancy(); got != want {
					t.Fatalf("trial %d policy %s slot %d: shadow occ %d != engine %d",
						trial, p.Name(), s, got, want)
				}
				if shadowSent != sw.Stats().Transmitted {
					t.Fatalf("trial %d policy %s slot %d: shadow sent %d != engine %d",
						trial, p.Name(), s, shadowSent, sw.Stats().Transmitted)
				}
				for j := 0; j < c.Ports; j++ {
					if len(sh.queues[j]) != sw.QueueLen(j) {
						t.Fatalf("trial %d policy %s slot %d: queue %d lengths diverge",
							trial, p.Name(), s, j)
					}
					if sh.QueueWork(j) != sw.QueueWork(j) {
						t.Fatalf("trial %d policy %s slot %d: queue %d work diverges",
							trial, p.Name(), s, j)
					}
				}
			}
		}
	}
}

// TestShadowViewConformance: the shadow's core.View answers must agree
// with the engine's on identical state.
func TestShadowViewConformance(t *testing.T) {
	c := cfg(3, 6)
	sh := newShadow(c, policy.Greedy{})
	sw := core.MustNew(c, policy.Greedy{})
	tr := traffic.Trace{
		{{Port: 0, Work: 1, Value: 1}, {Port: 2, Work: 3, Value: 1}, {Port: 2, Work: 3, Value: 1}},
		{{Port: 1, Work: 2, Value: 1}},
	}
	for _, burst := range tr {
		for _, pk := range burst {
			if _, err := sh.admit(packet{port: pk.Port}, pk.Work); err != nil {
				t.Fatal(err)
			}
			if err := sw.Arrive(pk); err != nil {
				t.Fatal(err)
			}
		}
		for j := 0; j < c.Ports; j++ {
			sh.serve(j)
		}
		sw.Transmit()
	}
	if sh.Occupancy() != sw.Occupancy() || sh.Free() != sw.Free() {
		t.Errorf("occupancy views diverge: %d/%d vs %d/%d", sh.Occupancy(), sh.Free(), sw.Occupancy(), sw.Free())
	}
	for j := 0; j < c.Ports; j++ {
		if sh.QueueLen(j) != sw.QueueLen(j) || sh.QueueWork(j) != sw.QueueWork(j) {
			t.Errorf("queue %d views diverge", j)
		}
		if sh.QueueMinValue(j) != sw.QueueMinValue(j) {
			t.Errorf("queue %d min value diverges", j)
		}
	}
	if sh.Model() != core.ModelProcessing || sh.Ports() != 3 || sh.Buffer() != 6 || sh.MaxLabel() != 3 {
		t.Error("shadow config accessors broken")
	}
}
