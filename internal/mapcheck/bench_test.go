package mapcheck

import (
	"math/rand"
	"testing"

	"smbm/internal/policy"
)

// BenchmarkMappingRun tracks the cost of the per-event proof checking on
// a saturating trace.
func BenchmarkMappingRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := cfg(4, 16)
	tr := randomTrace(rng, c, 50, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, policy.Greedy{}, tr); err != nil {
			b.Fatal(err)
		}
	}
}
