package mapcheck

import (
	"fmt"

	"smbm/internal/core"
	"smbm/internal/policy"
	"smbm/internal/traffic"
)

// Report summarizes a successful mapping run.
type Report struct {
	// LwdSent and OptSent are the two systems' transmission counts.
	LwdSent, OptSent int64
	// MaxCharge is the largest number of OPT transmissions charged to
	// one LWD packet (Theorem 7 promises <= 2).
	MaxCharge int
	// Events counts checked events (arrivals + transmissions).
	Events int64
}

// checker holds the lockstep simulation and the Fig. 3 mapping.
type checker struct {
	lwd, opt *shadow

	// a0/a1 map a live OPT packet id to its LWD image id; a0img/a1img
	// are the inverses (per mode, each LWD packet holds at most one).
	a0, a1       map[int]int
	a0img, a1img map[int]int

	lwdTransmitted map[int]bool
	charges        map[int]int

	// literal follows Fig. 3 to the letter (unconditional A0/A3); the
	// default repaired routine upgrades to A0 only when the latency
	// constraint actually holds. See the package tests for the corner
	// where the literal routine breaks.
	literal bool

	report Report
	nextID int
}

// Run executes the repaired mapping routine for LWD against the given
// non-push-out opponent on the trace (plus a final drain), returning an
// error at the first invariant violation. The configuration must be a
// unit-speedup processing model, as in the proof.
//
// "Repaired": the paper's step A3 (and the positional step A0) upgrade
// an OPT packet to a same-queue positional mapping unconditionally, and
// their latency claim fails when LWD has pushed out a partially
// processed head-of-line packet and later refilled the queue with a
// fresh one while OPT kept processing (RunLiteral demonstrates the
// corner). This routine performs the upgrade only when the latency
// constraint actually holds, keeping the packet on its valid A1 mapping
// otherwise; the A1-capacity existence claims are then re-checked
// empirically on every event.
func Run(cfg core.Config, opponent core.Policy, trace traffic.Trace) (Report, error) {
	return run(cfg, opponent, trace, false)
}

// RunLiteral executes the mapping routine exactly as written in Fig. 3
// of the paper. It fails on instances exercising the A3 corner; the
// tests pin a minimal witness.
func RunLiteral(cfg core.Config, opponent core.Policy, trace traffic.Trace) (Report, error) {
	return run(cfg, opponent, trace, true)
}

func run(cfg core.Config, opponent core.Policy, trace traffic.Trace, literal bool) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	if cfg.Model != core.ModelProcessing || cfg.Speedup != 1 {
		return Report{}, fmt.Errorf("mapcheck: the proof's model is processing with unit speedup")
	}
	if cfg.PortWork == nil {
		cfg.PortWork = core.UniformWorks(cfg.Ports, 1)
	}
	c := &checker{
		lwd:            newShadow(cfg, policy.LWD{}),
		opt:            newShadow(cfg, opponent),
		a0:             map[int]int{},
		a1:             map[int]int{},
		a0img:          map[int]int{},
		a1img:          map[int]int{},
		lwdTransmitted: map[int]bool{},
		charges:        map[int]int{},
		literal:        literal,
	}
	for _, burst := range trace {
		for _, p := range burst {
			if err := c.arrival(p.Port); err != nil {
				return c.report, err
			}
		}
		if err := c.transmission(); err != nil {
			return c.report, err
		}
	}
	for c.lwd.occ > 0 || c.opt.occ > 0 {
		if err := c.transmission(); err != nil {
			return c.report, err
		}
	}
	if c.report.OptSent > 2*c.report.LwdSent {
		return c.report, fmt.Errorf("mapcheck: OPT sent %d > 2x LWD's %d despite a consistent mapping",
			c.report.OptSent, c.report.LwdSent)
	}
	return c.report, nil
}

// imageOf returns a live OPT packet's image and mode ("A0"/"A1").
func (c *checker) imageOf(optID int) (int, string, bool) {
	if q, ok := c.a0[optID]; ok {
		return q, "A0", true
	}
	if q, ok := c.a1[optID]; ok {
		return q, "A1", true
	}
	return 0, "", false
}

// eligible reports whether a live OPT packet's image is still buffered.
func (c *checker) eligible(optID int) bool {
	img, _, ok := c.imageOf(optID)
	return ok && !c.lwdTransmitted[img]
}

// eligibleInQueue returns queue j's eligible OPT packets in FIFO order.
func (c *checker) eligibleInQueue(j int) []packet {
	var out []packet
	for _, p := range c.opt.queues[j] {
		if c.eligible(p.id) {
			out = append(out, p)
		}
	}
	return out
}

// clearMapping removes a live OPT packet's mapping.
func (c *checker) clearMapping(optID int) {
	if q, ok := c.a0[optID]; ok {
		delete(c.a0, optID)
		delete(c.a0img, q)
	}
	if q, ok := c.a1[optID]; ok {
		delete(c.a1, optID)
		delete(c.a1img, q)
	}
}

// assignA1 maps the OPT packet to the highest-latency A1-free LWD packet
// satisfying the latency constraint (step A1 / the remap of A2).
func (c *checker) assignA1(optID int, why string) error {
	optLat := c.opt.latencyOf(optID)
	if optLat < 0 {
		return fmt.Errorf("mapcheck: %s: OPT packet %d not buffered", why, optID)
	}
	best, bestLat := -1, -1
	for j := range c.lwd.queues {
		for idx, q := range c.lwd.queues[j] {
			if _, taken := c.a1img[q.id]; taken {
				continue
			}
			if lat := c.lwd.latency(j, idx); lat <= optLat && lat > bestLat {
				best, bestLat = q.id, lat
			}
		}
	}
	if best < 0 {
		return fmt.Errorf("mapcheck: %s: no A1-free LWD packet with latency <= %d for OPT packet %d",
			why, optLat, optID)
	}
	c.a1[optID] = best
	c.a1img[best] = optID
	return nil
}

// arrival processes one packet arriving to both systems: the LWD side
// first (push-out bookkeeping A2, the A3 release), then the OPT side
// (A0/A1 mapping), then the full invariant.
func (c *checker) arrival(port int) error {
	work := c.lwd.cfg.PortWork[port]

	// --- LWD side ---
	lp := packet{id: c.nextID, port: port, arrived: c.lwd.slot}
	c.nextID++
	lres, err := c.lwd.admit(lp, work)
	if err != nil {
		return err
	}
	var orphans []int
	if lres.evicted != nil {
		// A2: collect the evicted packet's images for remapping.
		ev := lres.evicted.id
		if r, ok := c.a0img[ev]; ok {
			delete(c.a0img, ev)
			delete(c.a0, r)
			orphans = append(orphans, r)
		}
		if r, ok := c.a1img[ev]; ok {
			delete(c.a1img, ev)
			delete(c.a1, r)
			orphans = append(orphans, r)
		}
	}
	if lres.accepted {
		// A3: the new LWD packet sits at raw position l of Q_port; if
		// OPT's queue holds an l-th eligible packet it was necessarily
		// A1-mapped (no positional counterpart existed) — upgrade it
		// to a positional A0 mapping.
		l := lres.queuePos
		elig := c.eligibleInQueue(port)
		if len(elig) >= l {
			p := elig[l-1]
			_, wasA0 := c.a0[p.id]
			if c.literal && wasA0 {
				return fmt.Errorf("mapcheck: A3: OPT packet %d at eligible position %d of queue %d already A0-mapped",
					p.id, l, port)
			}
			upgrade := !wasA0
			if !c.literal && upgrade {
				// Repaired A3: only upgrade when the latency constraint
				// holds for the new pair; the existing A1 mapping
				// remains valid otherwise.
				upgrade = c.opt.latencyOf(p.id) >= c.lwd.latencyOf(lp.id)
			}
			if upgrade {
				c.clearMapping(p.id)
				c.a0[p.id] = lp.id
				c.a0img[lp.id] = p.id
			}
		}
	}
	for _, r := range orphans {
		if err := c.assignA1(r, "A2 remap"); err != nil {
			return err
		}
	}

	// --- OPT side ---
	op := packet{id: c.nextID, port: port, arrived: c.opt.slot}
	c.nextID++
	ores, err := c.opt.admit(op, work)
	if err != nil {
		return err
	}
	if ores.evicted != nil {
		return fmt.Errorf("mapcheck: opponent %s pushed out a packet; the proof assumes a non-push-out OPT",
			c.opt.pol.Name())
	}
	if ores.accepted {
		// A0: p lands at eligible position l of Q_port^OPT (it counts
		// itself: it is about to be mapped, and eligibleInQueue skips
		// it only because the mapping does not exist yet); map to the
		// LWD packet at raw position l if it exists, else A1.
		l := len(c.eligibleInQueue(port)) + 1
		mapped := false
		if len(c.lwd.queues[port]) >= l {
			q := c.lwd.queues[port][l-1]
			_, taken := c.a0img[q.id]
			if c.literal && taken {
				return fmt.Errorf("mapcheck: A0: LWD packet %d already carries an A0 image", q.id)
			}
			ok := !taken
			if !c.literal && ok {
				// Repaired A0: positional mapping only when the latency
				// constraint holds, else fall through to A1.
				ok = c.opt.latency(port, len(c.opt.queues[port])-1) >= c.lwd.latency(port, l-1)
			}
			if ok {
				c.a0[op.id] = q.id
				c.a0img[q.id] = op.id
				mapped = true
			}
		}
		if !mapped {
			if err := c.assignA1(op.id, "A1 accept"); err != nil {
				return err
			}
		}
	}

	c.report.Events++
	return c.verify("after arrival")
}

// transmission processes one transmission phase: LWD's ports first, then
// OPT's (the proof's event order), checking T0 at each OPT completion.
func (c *checker) transmission() error {
	for j := 0; j < c.lwd.cfg.Ports; j++ {
		if tx := c.lwd.serve(j); tx != nil {
			c.lwdTransmitted[tx.id] = true
			c.report.LwdSent++
		}
	}
	for j := 0; j < c.opt.cfg.Ports; j++ {
		tx := c.opt.serve(j)
		if tx == nil {
			continue
		}
		img, mode, ok := c.imageOf(tx.id)
		if !ok {
			return fmt.Errorf("mapcheck: OPT transmitted unmapped packet %d", tx.id)
		}
		if !c.lwdTransmitted[img] {
			return fmt.Errorf("mapcheck: T0 violated: OPT transmitted eligible packet %d (image %d via %s still buffered)",
				tx.id, img, mode)
		}
		c.charges[img]++
		if c.charges[img] > 2 {
			return fmt.Errorf("mapcheck: LWD packet %d charged %d times", img, c.charges[img])
		}
		if c.charges[img] > c.report.MaxCharge {
			c.report.MaxCharge = c.charges[img]
		}
		c.clearMapping(tx.id)
		c.report.OptSent++
	}
	c.lwd.slot++
	c.opt.slot++
	c.report.Events++
	return c.verify("after transmission")
}

// verify re-checks Lemma 8's standing invariant.
func (c *checker) verify(when string) error {
	seenA0 := map[int]bool{}
	seenA1 := map[int]bool{}
	for j := range c.opt.queues {
		for idx, p := range c.opt.queues[j] {
			img, mode, ok := c.imageOf(p.id)
			if !ok {
				return fmt.Errorf("mapcheck: %s: OPT packet %d (queue %d) unmapped", when, p.id, j)
			}
			if _, both := c.a0[p.id]; both {
				if _, alsoA1 := c.a1[p.id]; alsoA1 {
					return fmt.Errorf("mapcheck: %s: OPT packet %d mapped by both A0 and A1", when, p.id)
				}
			}
			if c.lwdTransmitted[img] {
				continue // ineligible: no latency constraint
			}
			lwdLat := c.lwd.latencyOf(img)
			if lwdLat < 0 {
				return fmt.Errorf("mapcheck: %s: image %d of OPT packet %d is neither buffered nor transmitted",
					when, img, p.id)
			}
			if optLat := c.opt.latency(j, idx); optLat < lwdLat {
				return fmt.Errorf("mapcheck: %s: latency constraint violated: OPT packet %d lat %d < image %d (%s) lat %d",
					when, p.id, optLat, img, mode, lwdLat)
			}
			switch mode {
			case "A0":
				if seenA0[img] {
					return fmt.Errorf("mapcheck: %s: LWD packet %d holds two A0 images", when, img)
				}
				seenA0[img] = true
			case "A1":
				if seenA1[img] {
					return fmt.Errorf("mapcheck: %s: LWD packet %d holds two A1 images", when, img)
				}
				seenA1[img] = true
			}
		}
	}
	return nil
}

// RunOnTraceSource is a convenience wrapper recording slots slots from a
// source first.
func RunOnTraceSource(cfg core.Config, opponent core.Policy, src traffic.Source, slots int) (Report, error) {
	return Run(cfg, opponent, traffic.Record(src, slots))
}
