// Package mapcheck executes the paper's Theorem 7 proof: it runs LWD and
// a non-push-out clairvoyant opponent ("OPT") in lockstep on the same
// arrival sequence while maintaining the mapping routine of Fig. 3
// (steps A0–A3 and the transmission rule T0), and checks Lemma 8's
// invariant after every event:
//
//   - every OPT-buffered packet is mapped to exactly one LWD packet;
//   - an eligible OPT packet (one mapped to a still-buffered LWD packet)
//     never has smaller latency than its image;
//   - every LWD packet carries at most one image by A0 and one by A1;
//   - OPT never transmits an eligible packet (T0's consequence).
//
// A successful run certifies, for that instance, the 2-competitiveness
// accounting of Theorem 7: every OPT transmission is charged to a
// transmitted LWD packet, at most two charges each. A policy that is
// not 2-competitive (e.g. BPD on the Theorem 5 script) must make the
// routine fail — the failure is the checker's negative control.
//
// The checker follows the proof's model exactly: unit speedup, packets
// processed one cycle per slot, LWD's ports served before OPT's within
// a transmission phase.
package mapcheck

import (
	"fmt"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

// packet is one identified packet inside a shadow switch.
type packet struct {
	id      int
	port    int
	arrived int64
}

// shadow is a minimal shared-memory switch with per-packet identity.
// It re-implements the core engine's processing-model semantics (which
// the core package's tests pin down) because the mapping needs stable
// packet IDs, positions and per-packet latencies.
type shadow struct {
	cfg    core.Config
	pol    core.Policy
	queues [][]packet
	hol    []int // residual work of each queue's head packet
	occ    int
	slot   int64
}

func newShadow(cfg core.Config, pol core.Policy) *shadow {
	return &shadow{
		cfg:    cfg,
		pol:    pol,
		queues: make([][]packet, cfg.Ports),
		hol:    make([]int, cfg.Ports),
	}
}

// --- core.View implementation over the shadow state ---

// Model reports the processing model (mapcheck verifies Section III).
func (s *shadow) Model() core.Model { return core.ModelProcessing }

// Ports returns the port count.
func (s *shadow) Ports() int { return s.cfg.Ports }

// Buffer returns the shared buffer size.
func (s *shadow) Buffer() int { return s.cfg.Buffer }

// MaxLabel returns the largest work label k.
func (s *shadow) MaxLabel() int { return s.cfg.MaxLabel }

// Occupancy returns the buffered packet count.
func (s *shadow) Occupancy() int { return s.occ }

// Free returns the remaining buffer space.
func (s *shadow) Free() int { return s.cfg.Buffer - s.occ }

// QueueLen returns queue i's packet count.
func (s *shadow) QueueLen(i int) int { return len(s.queues[i]) }

// PortWork returns port i's per-packet work.
func (s *shadow) PortWork(i int) int { return s.cfg.PortWork[i] }

// QueueWork returns the residual work buffered for port i.
func (s *shadow) QueueWork(i int) int {
	n := len(s.queues[i])
	if n == 0 {
		return 0
	}
	return (n-1)*s.cfg.PortWork[i] + s.hol[i]
}

// QueueMinValue returns the minimum buffered value in queue i (unit in
// the processing model).
func (s *shadow) QueueMinValue(i int) int {
	if len(s.queues[i]) == 0 {
		return 0
	}
	return 1
}

// QueueMaxValue returns the maximum buffered value in queue i.
func (s *shadow) QueueMaxValue(i int) int { return s.QueueMinValue(i) }

// QueueValueSum returns the summed value buffered in queue i.
func (s *shadow) QueueValueSum(i int) int64 { return int64(len(s.queues[i])) }

var _ core.View = (*shadow)(nil)

// latency returns the slots until the packet at raw position idx of
// queue j transmits, absent future push-outs (unit speedup).
func (s *shadow) latency(j, idx int) int {
	return s.hol[j] + idx*s.cfg.PortWork[j]
}

// latencyOf locates a packet by id and returns its latency, or -1 if it
// is no longer buffered.
func (s *shadow) latencyOf(id int) int {
	for j := range s.queues {
		for idx, p := range s.queues[j] {
			if p.id == id {
				return s.latency(j, idx)
			}
		}
	}
	return -1
}

// admit runs the policy on one arrival and applies the decision,
// returning what happened.
type admitResult struct {
	accepted bool
	evicted  *packet // non-nil if a push-out occurred
	queuePos int     // raw 1-based position of the accepted packet
}

func (s *shadow) admit(p packet, work int) (admitResult, error) {
	d := s.pol.Admit(s, pkt.NewWork(p.port, work))
	if !d.Accept {
		return admitResult{}, nil
	}
	var res admitResult
	res.accepted = true
	if d.Push {
		v := d.Victim
		q := s.queues[v]
		if len(q) == 0 {
			return res, fmt.Errorf("mapcheck: %s evicts from empty queue %d", s.pol.Name(), v)
		}
		ev := q[len(q)-1]
		s.queues[v] = q[:len(q)-1]
		if len(s.queues[v]) == 0 {
			s.hol[v] = 0
		}
		s.occ--
		res.evicted = &ev
	}
	if s.occ >= s.cfg.Buffer {
		return res, fmt.Errorf("mapcheck: %s accepted into a full buffer", s.pol.Name())
	}
	s.queues[p.port] = append(s.queues[p.port], p)
	if len(s.queues[p.port]) == 1 {
		s.hol[p.port] = s.cfg.PortWork[p.port]
	}
	s.occ++
	res.queuePos = len(s.queues[p.port])
	return res, nil
}

// serve applies one processing cycle to queue j's head; it returns the
// transmitted packet, if any.
func (s *shadow) serve(j int) *packet {
	if len(s.queues[j]) == 0 {
		return nil
	}
	s.hol[j]--
	if s.hol[j] > 0 {
		return nil
	}
	done := s.queues[j][0]
	s.queues[j] = s.queues[j][1:]
	s.occ--
	if len(s.queues[j]) > 0 {
		s.hol[j] = s.cfg.PortWork[j]
	}
	return &done
}
