// Package deque implements a growable ring-buffer double-ended queue of
// ints. It backs the FIFO output queues of the processing-model switch,
// where per-packet state reduces to the arrival slot (used for latency
// accounting): all packets admitted to a queue share the queue's work
// requirement, so the queue itself only needs order, not payload.
//
// All operations are O(1) amortized. The zero value is an empty deque
// ready for use.
package deque

// Deque is a double-ended queue of int64 values backed by a ring buffer.
type Deque struct {
	buf   []int64
	head  int // index of front element
	count int
}

const minCapacity = 8

// Len returns the number of elements.
func (d *Deque) Len() int { return d.count }

// Empty reports whether the deque holds no elements.
func (d *Deque) Empty() bool { return d.count == 0 }

// PushBack appends v at the back.
func (d *Deque) PushBack(v int64) {
	d.grow()
	d.buf[d.index(d.count)] = v
	d.count++
}

// PushFront prepends v at the front.
func (d *Deque) PushFront(v int64) {
	d.grow()
	d.head = d.index(len(d.buf) - 1)
	d.buf[d.head] = v
	d.count++
}

// PopFront removes and returns the front element. It panics on an empty
// deque: popping an empty queue is a programming error in the simulator,
// not a recoverable condition.
func (d *Deque) PopFront() int64 {
	if d.count == 0 {
		panic("deque: PopFront on empty deque")
	}
	v := d.buf[d.head]
	d.head = d.index(1)
	d.count--
	d.shrink()
	return v
}

// PopBack removes and returns the back element. It panics on an empty
// deque.
func (d *Deque) PopBack() int64 {
	if d.count == 0 {
		panic("deque: PopBack on empty deque")
	}
	d.count--
	v := d.buf[d.index(d.count)]
	d.shrink()
	return v
}

// Front returns the front element without removing it.
func (d *Deque) Front() int64 {
	if d.count == 0 {
		panic("deque: Front on empty deque")
	}
	return d.buf[d.head]
}

// Back returns the back element without removing it.
func (d *Deque) Back() int64 {
	if d.count == 0 {
		panic("deque: Back on empty deque")
	}
	return d.buf[d.index(d.count-1)]
}

// At returns the i-th element from the front, 0-based.
func (d *Deque) At(i int) int64 {
	if i < 0 || i >= d.count {
		panic("deque: At index out of range")
	}
	return d.buf[d.index(i)]
}

// Clear removes all elements, retaining capacity.
func (d *Deque) Clear() {
	d.head = 0
	d.count = 0
}

// index maps a logical offset from the head to a physical buffer index.
func (d *Deque) index(off int) int {
	if len(d.buf) == 0 {
		return 0
	}
	return (d.head + off) & (len(d.buf) - 1)
}

// grow ensures room for one more element. Capacity is always a power of
// two so index() can mask instead of mod.
func (d *Deque) grow() {
	if d.count < len(d.buf) {
		return
	}
	d.resize(max(minCapacity, len(d.buf)*2))
}

// shrink halves the buffer when it is at most a quarter full, bounding
// memory after bursts drain.
func (d *Deque) shrink() {
	if len(d.buf) > minCapacity && d.count <= len(d.buf)/4 {
		d.resize(len(d.buf) / 2)
	}
}

func (d *Deque) resize(capacity int) {
	buf := make([]int64, capacity)
	for i := 0; i < d.count; i++ {
		buf[i] = d.buf[d.index(i)]
	}
	d.buf = buf
	d.head = 0
}
