// Package deque implements a growable ring-buffer double-ended queue of
// ints. It backs the FIFO output queues of the processing-model switch,
// where per-packet state reduces to the arrival slot (used for latency
// accounting): all packets admitted to a queue share the queue's work
// requirement, so the queue itself only needs order, not payload.
//
// All operations are O(1) amortized. The zero value is an empty deque
// ready for use.
//
// # Capacity management
//
// The buffer grows by doubling and shrinks by halving with explicit
// hysteresis: a grow happens only when the deque is full, a shrink only
// when it is at most a quarter full, so at least cap/4 operations
// separate two opposite resizes and resize cost stays O(1) amortized.
//
// Two knobs bound memory behaviour for long-running simulations:
//
//   - Reserve pre-sizes the buffer and pins a floor under the shrink
//     hysteresis, so a queue sized for its worst case (e.g. the shared
//     buffer bound B) never allocates again on the hot path;
//   - Clear releases the backing array outright when its capacity
//     exceeds both the reserved floor and clearRetainLimit, so one
//     bursty queue cannot pin peak-burst memory for the rest of a
//     multi-hour sweep.
package deque

// Deque is a double-ended queue of int64 values backed by a ring buffer.
type Deque struct {
	buf      []int64
	head     int // index of front element
	count    int
	reserved int // capacity floor set by Reserve (0 = none)
	resFloor int // ceilPow2(reserved) cached for the hot shrink check
}

const (
	// minCapacity is the smallest non-empty buffer ever allocated.
	minCapacity = 8
	// clearRetainLimit bounds the capacity Clear retains for an
	// unreserved deque: a buffer larger than this is released so a past
	// burst does not pin memory forever. Reserve raises the bound.
	clearRetainLimit = 1024
)

// Len returns the number of elements.
func (d *Deque) Len() int { return d.count }

// Empty reports whether the deque holds no elements.
func (d *Deque) Empty() bool { return d.count == 0 }

// Cap returns the current capacity of the backing array.
func (d *Deque) Cap() int { return len(d.buf) }

// Reserve grows the backing array to hold at least n elements and pins
// that capacity as a floor: neither shrink nor Clear ever drops the
// buffer below it. Reserving the worst-case queue length up front makes
// every subsequent push allocation-free. A smaller n than a previous
// reservation lowers the floor but never discards the current buffer.
func (d *Deque) Reserve(n int) {
	if n < 0 {
		n = 0
	}
	d.reserved = n
	if n > minCapacity {
		d.resFloor = ceilPow2(n)
	} else {
		d.resFloor = 0
	}
	if n > len(d.buf) {
		d.resize(ceilPow2(n))
	}
}

// Reserved returns the capacity floor set by Reserve (0 when unset).
func (d *Deque) Reserved() int { return d.reserved }

// floor returns the smallest capacity shrink and Clear may leave behind.
// It is consulted on every pop (via shrink), so the power-of-two rounding
// is precomputed in Reserve rather than recomputed here.
func (d *Deque) floor() int {
	if d.resFloor > 0 {
		return d.resFloor
	}
	return minCapacity
}

// PushBack appends v at the back.
//
//smb:hotpath
func (d *Deque) PushBack(v int64) {
	d.grow()
	d.buf[d.index(d.count)] = v
	d.count++
}

// PushFront prepends v at the front.
//
//smb:hotpath
func (d *Deque) PushFront(v int64) {
	d.grow()
	d.head = d.index(len(d.buf) - 1)
	d.buf[d.head] = v
	d.count++
}

// PopFront removes and returns the front element. It panics on an empty
// deque: popping an empty queue is a programming error in the simulator,
// not a recoverable condition.
//
//smb:hotpath
func (d *Deque) PopFront() int64 {
	if d.count == 0 {
		//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
		panic("deque: PopFront on empty deque")
	}
	v := d.buf[d.head]
	d.head = d.index(1)
	d.count--
	d.shrink()
	return v
}

// PopBack removes and returns the back element. It panics on an empty
// deque.
//
//smb:hotpath
func (d *Deque) PopBack() int64 {
	if d.count == 0 {
		//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
		panic("deque: PopBack on empty deque")
	}
	d.count--
	v := d.buf[d.index(d.count)]
	d.shrink()
	return v
}

// Front returns the front element without removing it.
//
//smb:hotpath
func (d *Deque) Front() int64 {
	if d.count == 0 {
		//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
		panic("deque: Front on empty deque")
	}
	return d.buf[d.head]
}

// Back returns the back element without removing it.
//
//smb:hotpath
func (d *Deque) Back() int64 {
	if d.count == 0 {
		//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
		panic("deque: Back on empty deque")
	}
	return d.buf[d.index(d.count-1)]
}

// At returns the i-th element from the front, 0-based.
func (d *Deque) At(i int) int64 {
	if i < 0 || i >= d.count {
		panic("deque: At index out of range")
	}
	return d.buf[d.index(i)]
}

// Clear removes all elements. Capacity up to max(reserved, 1024) is
// retained for reuse; anything larger — the residue of a past burst — is
// released to the allocator so a single spike cannot pin peak memory for
// the remainder of a long run.
func (d *Deque) Clear() {
	d.head = 0
	d.count = 0
	limit := d.floor()
	if limit < clearRetainLimit {
		limit = clearRetainLimit
	}
	if len(d.buf) > limit {
		d.buf = nil
		if d.reserved > 0 {
			d.resize(ceilPow2(d.reserved))
		}
	}
}

// index maps a logical offset from the head to a physical buffer index.
func (d *Deque) index(off int) int {
	if len(d.buf) == 0 {
		return 0
	}
	return (d.head + off) & (len(d.buf) - 1)
}

// grow ensures room for one more element. Capacity is always a power of
// two so index() can mask instead of mod.
//
//smb:hotpath
func (d *Deque) grow() {
	if d.count < len(d.buf) {
		return
	}
	next := len(d.buf) * 2
	if next < minCapacity {
		next = minCapacity
	}
	if f := d.floor(); next < f {
		next = f
	}
	//smb:alloc-ok amortized ring growth, preallocated via Reserve in steady state
	d.resize(next)
}

// shrink halves the buffer when it is at most a quarter full, bounding
// memory after bursts drain. The quarter-full trigger (grow fires at
// full, shrink at 1/4) is the hysteresis that keeps alternating
// push/pop sequences from thrashing between resizes; the floor from
// Reserve (or minCapacity) is never crossed.
//
//smb:hotpath
func (d *Deque) shrink() {
	if len(d.buf) > d.floor() && d.count <= len(d.buf)/4 {
		//smb:alloc-ok amortized ring shrink after a burst drains, not the steady state
		d.resize(len(d.buf) / 2)
	}
}

func (d *Deque) resize(capacity int) {
	buf := make([]int64, capacity)
	for i := 0; i < d.count; i++ {
		buf[i] = d.buf[d.index(i)]
	}
	d.buf = buf
	d.head = 0
}

// ceilPow2 returns the smallest power of two >= n (minimum minCapacity).
func ceilPow2(n int) int {
	c := minCapacity
	for c < n {
		c *= 2
	}
	return c
}
