package deque

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueIsEmpty(t *testing.T) {
	var d Deque
	if !d.Empty() {
		t.Error("zero-value deque is not empty")
	}
	if d.Len() != 0 {
		t.Errorf("Len() = %d, want 0", d.Len())
	}
}

func TestPushBackPopFrontFIFO(t *testing.T) {
	var d Deque
	for i := int64(0); i < 100; i++ {
		d.PushBack(i)
	}
	if d.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", d.Len())
	}
	for i := int64(0); i < 100; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront() = %d, want %d", got, i)
		}
	}
	if !d.Empty() {
		t.Error("deque not empty after popping everything")
	}
}

func TestPushFrontPopBackFIFO(t *testing.T) {
	var d Deque
	for i := int64(0); i < 50; i++ {
		d.PushFront(i)
	}
	for i := int64(0); i < 50; i++ {
		if got := d.PopBack(); got != i {
			t.Fatalf("PopBack() = %d, want %d", got, i)
		}
	}
}

func TestFrontBackAt(t *testing.T) {
	var d Deque
	for i := int64(10); i <= 30; i += 10 {
		d.PushBack(i)
	}
	if got := d.Front(); got != 10 {
		t.Errorf("Front() = %d, want 10", got)
	}
	if got := d.Back(); got != 30 {
		t.Errorf("Back() = %d, want 30", got)
	}
	for i, want := range []int64{10, 20, 30} {
		if got := d.At(i); got != want {
			t.Errorf("At(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestClear(t *testing.T) {
	var d Deque
	for i := int64(0); i < 10; i++ {
		d.PushBack(i)
	}
	d.Clear()
	if !d.Empty() {
		t.Error("deque not empty after Clear")
	}
	d.PushBack(42)
	if got := d.Front(); got != 42 {
		t.Errorf("Front() after Clear+PushBack = %d, want 42", got)
	}
}

func TestWrapAround(t *testing.T) {
	// Force head to travel around the ring several times.
	var d Deque
	for i := int64(0); i < 6; i++ {
		d.PushBack(i)
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 5; i++ {
			v := d.PopFront()
			d.PushBack(v + 100)
		}
	}
	if d.Len() != 6 {
		t.Fatalf("Len() = %d, want 6", d.Len())
	}
}

func TestShrinkRetainsContent(t *testing.T) {
	var d Deque
	for i := int64(0); i < 1000; i++ {
		d.PushBack(i)
	}
	for i := int64(0); i < 990; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront() = %d, want %d", got, i)
		}
	}
	for i := int64(990); i < 1000; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("after shrink: PopFront() = %d, want %d", got, i)
		}
	}
}

func TestPopEmptyPanics(t *testing.T) {
	for name, op := range map[string]func(*Deque){
		"PopFront": func(d *Deque) { d.PopFront() },
		"PopBack":  func(d *Deque) { d.PopBack() },
		"Front":    func(d *Deque) { d.Front() },
		"Back":     func(d *Deque) { d.Back() },
		"At":       func(d *Deque) { d.At(0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty deque did not panic", name)
				}
			}()
			var d Deque
			op(&d)
		})
	}
}

// TestQuickMatchesReference drives random op sequences against a slice
// reference model.
func TestQuickMatchesReference(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var d Deque
		var ref []int64
		next := int64(0)
		for _, op := range ops {
			switch op % 5 {
			case 0: // PushBack
				d.PushBack(next)
				ref = append(ref, next)
				next++
			case 1: // PushFront
				d.PushFront(next)
				ref = append([]int64{next}, ref...)
				next++
			case 2: // PopFront
				if len(ref) == 0 {
					continue
				}
				if got := d.PopFront(); got != ref[0] {
					return false
				}
				ref = ref[1:]
			case 3: // PopBack
				if len(ref) == 0 {
					continue
				}
				if got := d.PopBack(); got != ref[len(ref)-1] {
					return false
				}
				ref = ref[:len(ref)-1]
			case 4: // At random index
				if len(ref) == 0 {
					continue
				}
				i := rng.Intn(len(ref))
				if d.At(i) != ref[i] {
					return false
				}
			}
			if d.Len() != len(ref) {
				return false
			}
		}
		// Drain and compare the full remaining content.
		for i := range ref {
			if d.PopFront() != ref[i] {
				return false
			}
		}
		return d.Empty()
	}
	if err := quick.Check(f, qcfg(200)); err != nil {
		t.Error(err)
	}
}

// qcfg returns a deterministic quick.Config so property tests are
// reproducible run to run.
func qcfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(7))}
}
