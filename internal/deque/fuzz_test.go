package deque

import (
	"testing"
)

// refDeque is the obviously correct reference model: a plain slice with
// the front at index 0.
type refDeque []int64

func (r *refDeque) pushBack(v int64)  { *r = append(*r, v) }
func (r *refDeque) pushFront(v int64) { *r = append([]int64{v}, *r...) }
func (r *refDeque) popFront() int64   { v := (*r)[0]; *r = (*r)[1:]; return v }
func (r *refDeque) popBack() int64    { v := (*r)[len(*r)-1]; *r = (*r)[:len(*r)-1]; return v }

// FuzzDequeVsSlice interprets the fuzz input as a program over the deque
// and replays it against the slice model, checking full observable state
// after every operation, plus the capacity-management contracts (power-of
// -two capacity, reserve floor, shrink hysteresis, Clear release bound).
//
// Opcode (b % 8): 0 PushBack, 1 PushFront, 2 PopFront, 3 PopBack,
// 4 Clear, 5 Reserve(b/8), 6 At(b/8 mod len), 7 Front/Back probe. The
// pushed value is the running operation index, so order bugs surface as
// value mismatches.
func FuzzDequeVsSlice(f *testing.F) {
	f.Add([]byte{0, 0, 8, 1, 3, 2, 0, 0})                               // pushes, reserve, pops
	f.Add([]byte{0, 0, 0, 0, 4, 0, 2, 2})                               // clear mid-stream
	f.Add([]byte{5 + 8*31, 0, 0, 2, 2, 4})                              // big reserve then clear
	f.Add([]byte{1, 1, 1, 7, 3, 3, 6})                                  // front-loaded
	f.Add([]byte{0, 1, 0, 1, 2, 3, 2, 3, 0, 1, 4, 5 + 8*3, 0, 0, 6, 7}) // mixed
	f.Fuzz(func(t *testing.T, program []byte) {
		var d Deque
		var ref refDeque
		for step, b := range program {
			op, arg := int(b%8), int(b/8)
			switch op {
			case 0:
				d.PushBack(int64(step))
				ref.pushBack(int64(step))
			case 1:
				d.PushFront(int64(step))
				ref.pushFront(int64(step))
			case 2:
				if len(ref) == 0 {
					continue
				}
				if got, want := d.PopFront(), ref.popFront(); got != want {
					t.Fatalf("step %d: PopFront = %d, want %d", step, got, want)
				}
			case 3:
				if len(ref) == 0 {
					continue
				}
				if got, want := d.PopBack(), ref.popBack(); got != want {
					t.Fatalf("step %d: PopBack = %d, want %d", step, got, want)
				}
			case 4:
				d.Clear()
				ref = ref[:0]
				// Clear must respect the release bound: capacity retained
				// beyond max(reserve floor, clearRetainLimit) is a leak.
				limit := d.floor()
				if limit < clearRetainLimit {
					limit = clearRetainLimit
				}
				if d.Cap() > limit {
					t.Fatalf("step %d: Clear retained cap %d > limit %d", step, d.Cap(), limit)
				}
			case 5:
				d.Reserve(arg)
				if d.Reserved() != arg {
					t.Fatalf("step %d: Reserved = %d, want %d", step, d.Reserved(), arg)
				}
				if arg > 0 && d.Cap() < arg {
					t.Fatalf("step %d: Reserve(%d) left cap %d", step, arg, d.Cap())
				}
			case 6:
				if len(ref) == 0 {
					continue
				}
				i := arg % len(ref)
				if got, want := d.At(i), ref[i]; got != want {
					t.Fatalf("step %d: At(%d) = %d, want %d", step, i, got, want)
				}
			case 7:
				if len(ref) == 0 {
					continue
				}
				if got, want := d.Front(), ref[0]; got != want {
					t.Fatalf("step %d: Front = %d, want %d", step, got, want)
				}
				if got, want := d.Back(), ref[len(ref)-1]; got != want {
					t.Fatalf("step %d: Back = %d, want %d", step, got, want)
				}
			}
			// Invariants after every operation.
			if d.Len() != len(ref) {
				t.Fatalf("step %d: Len = %d, want %d", step, d.Len(), len(ref))
			}
			if d.Empty() != (len(ref) == 0) {
				t.Fatalf("step %d: Empty = %v with %d elements", step, d.Empty(), len(ref))
			}
			if c := d.Cap(); c != 0 && c&(c-1) != 0 {
				t.Fatalf("step %d: cap %d not a power of two", step, c)
			}
			if d.Cap() < d.Len() {
				t.Fatalf("step %d: cap %d < len %d", step, d.Cap(), d.Len())
			}
			if d.Reserved() > minCapacity && d.Cap() < d.floor() && d.Cap() != 0 {
				t.Fatalf("step %d: cap %d below reserve floor %d", step, d.Cap(), d.floor())
			}
		}
		// Final deep equality via At.
		for i, want := range ref {
			if got := d.At(i); got != want {
				t.Fatalf("final At(%d) = %d, want %d", i, got, want)
			}
		}
	})
}
