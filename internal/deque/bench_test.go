package deque

import "testing"

func BenchmarkPushPopFIFO(b *testing.B) {
	var d Deque
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBack(int64(i))
		if d.Len() > 64 {
			d.PopFront()
		}
	}
}

func BenchmarkPushPopBothEnds(b *testing.B) {
	var d Deque
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch i % 4 {
		case 0:
			d.PushBack(int64(i))
		case 1:
			d.PushFront(int64(i))
		case 2:
			if !d.Empty() {
				d.PopFront()
			}
		default:
			if !d.Empty() {
				d.PopBack()
			}
		}
	}
}

// BenchmarkGrowShrinkCycle stresses the resize path with bursts.
func BenchmarkGrowShrinkCycle(b *testing.B) {
	var d Deque
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 256; j++ {
			d.PushBack(int64(j))
		}
		for !d.Empty() {
			d.PopFront()
		}
	}
}
