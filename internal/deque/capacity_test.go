package deque

import "testing"

// TestShrinkReleasesBurstCapacity asserts the memory bound that matters
// for multi-hour sweeps: after a burst drains, the backing array comes
// back down instead of pinning peak-burst capacity forever.
func TestShrinkReleasesBurstCapacity(t *testing.T) {
	var d Deque
	for i := int64(0); i < 1<<14; i++ {
		d.PushBack(i)
	}
	peak := d.Cap()
	if peak < 1<<14 {
		t.Fatalf("Cap() = %d after %d pushes", peak, 1<<14)
	}
	for !d.Empty() {
		d.PopFront()
	}
	if got := d.Cap(); got != minCapacity {
		t.Errorf("Cap() = %d after full drain, want %d (peak was %d)", got, minCapacity, peak)
	}
	// The deque is still usable after shrinking all the way down.
	d.PushBack(42)
	if got := d.PopFront(); got != 42 {
		t.Errorf("PopFront() = %d after shrink cycle, want 42", got)
	}
}

// TestShrinkHysteresis pins the explicit hysteresis contract: grow fires
// only at full, shrink only at quarter-full, so an alternating
// push/pop sequence at a fixed size never resizes.
func TestShrinkHysteresis(t *testing.T) {
	var d Deque
	for i := int64(0); i < 100; i++ {
		d.PushBack(i)
	}
	capAt100 := d.Cap() // 128
	// Pop down to just above the quarter-full threshold: no shrink yet.
	for d.Len() > capAt100/4+1 {
		d.PopFront()
	}
	if got := d.Cap(); got != capAt100 {
		t.Fatalf("Cap() = %d above quarter-full, want unchanged %d", got, capAt100)
	}
	// Alternating push/pop at this size must not thrash resizes.
	for i := 0; i < 1000; i++ {
		d.PushBack(int64(i))
		d.PopFront()
		if got := d.Cap(); got != capAt100 {
			t.Fatalf("Cap() = %d during alternation, want stable %d", got, capAt100)
		}
	}
	// Crossing the quarter-full threshold halves exactly once.
	d.PopFront()
	d.PopFront()
	if got := d.Cap(); got != capAt100/2 {
		t.Errorf("Cap() = %d after crossing quarter-full, want %d", got, capAt100/2)
	}
}

// TestClearReleasesLargeBuffer asserts Clear drops a beyond-threshold
// backing array instead of retaining it.
func TestClearReleasesLargeBuffer(t *testing.T) {
	var d Deque
	// PushFront exercises the wrapped layout too.
	for i := int64(0); i < 4*clearRetainLimit; i++ {
		if i%7 == 0 {
			d.PushFront(i)
		} else {
			d.PushBack(i)
		}
	}
	if d.Cap() <= clearRetainLimit {
		t.Fatalf("Cap() = %d, want > %d", d.Cap(), clearRetainLimit)
	}
	d.Clear()
	if got := d.Cap(); got != 0 {
		t.Errorf("Cap() = %d after Clear of oversized buffer, want 0 (released)", got)
	}
	if !d.Empty() {
		t.Error("deque not empty after Clear")
	}
	d.PushBack(7)
	if got := d.PopFront(); got != 7 {
		t.Errorf("PopFront() = %d after Clear, want 7", got)
	}
}

// TestClearRetainsSmallBuffer asserts Clear keeps a modest buffer for
// reuse (the common steady-state case).
func TestClearRetainsSmallBuffer(t *testing.T) {
	var d Deque
	for i := int64(0); i < 100; i++ {
		d.PushBack(i)
	}
	capBefore := d.Cap()
	d.Clear()
	if got := d.Cap(); got != capBefore {
		t.Errorf("Cap() = %d after Clear of small buffer, want retained %d", got, capBefore)
	}
}

// TestReservePinsCapacity asserts Reserve pre-sizes the buffer, that no
// later operation allocates below the floor, and that Clear keeps the
// reservation.
func TestReservePinsCapacity(t *testing.T) {
	var d Deque
	d.Reserve(300)
	if got := d.Cap(); got != 512 {
		t.Fatalf("Cap() = %d after Reserve(300), want 512", got)
	}
	if got := d.Reserved(); got != 300 {
		t.Fatalf("Reserved() = %d, want 300", got)
	}
	for i := int64(0); i < 300; i++ {
		d.PushBack(i)
	}
	for !d.Empty() {
		d.PopFront() // shrink must not cross the floor
	}
	if got := d.Cap(); got != 512 {
		t.Errorf("Cap() = %d after drain of reserved deque, want 512", got)
	}
	d.Clear()
	if got := d.Cap(); got != 512 {
		t.Errorf("Cap() = %d after Clear of reserved deque, want 512", got)
	}
	// FIFO order survives a reservation resize mid-stream.
	d.PushBack(1)
	d.Reserve(2000)
	d.PushBack(2)
	if a, b := d.PopFront(), d.PopFront(); a != 1 || b != 2 {
		t.Errorf("popped (%d, %d) after mid-stream Reserve, want (1, 2)", a, b)
	}
}

// TestReserveZeroAllocSteadyState asserts the engine-facing guarantee:
// once reserved to the worst case, pushes and pops never allocate.
func TestReserveZeroAllocSteadyState(t *testing.T) {
	var d Deque
	d.Reserve(256)
	allocs := testing.AllocsPerRun(100, func() {
		for i := int64(0); i < 256; i++ {
			d.PushBack(i)
		}
		for !d.Empty() {
			d.PopFront()
		}
	})
	if allocs != 0 {
		t.Errorf("reserved deque allocated %.1f times per fill/drain cycle, want 0", allocs)
	}
}
