package search

import (
	"testing"

	"smbm/internal/core"
	"smbm/internal/policy"
)

// exhaustiveCfg is the fully enumerable micro-instance space: two ports
// with works {1,3}, buffer 2.
func exhaustiveCfg() core.Config {
	return core.Config{
		Model:    core.ModelProcessing,
		Ports:    2,
		Buffer:   2,
		MaxLabel: 3,
		Speedup:  1,
		PortWork: []int{1, 3},
	}
}

// TestExhaustiveWorstCaseTable computes the *exact* worst-case ratio of
// each processing policy over every trace of 4 slots with bursts of up
// to 2 packets (6^4 = 1296 instances) — a fully verified miniature of
// the paper's competitive-ratio landscape. The assertions: LWD respects
// Theorem 7 on the complete space; greedy tail-drop has a genuinely bad
// instance; and LWD's verified worst case is no worse than LQD's.
func TestExhaustiveWorstCaseTable(t *testing.T) {
	spec := ExhaustiveSpec{Cfg: exhaustiveCfg(), Slots: 4, MaxBurst: 2}
	worst := map[string]Worst{}
	for _, p := range []core.Policy{policy.LWD{}, policy.LQD{}, policy.Greedy{}, policy.BPD{}} {
		w, err := Exhaustive(spec, p)
		if err != nil {
			t.Fatal(err)
		}
		worst[p.Name()] = w
		t.Logf("%-6s exact worst ratio %.4f over %d instances (witness %v)",
			p.Name(), w.Ratio, w.Evaluated, w.Trace)
	}
	if worst["LWD"].Ratio > 2.0 {
		t.Errorf("LWD verified worst %.4f > 2 — Theorem 7 violated on the complete space", worst["LWD"].Ratio)
	}
	if worst["LWD"].Ratio > worst["LQD"].Ratio+1e-9 {
		t.Errorf("LWD worst (%.4f) exceeds LQD's (%.4f) on the complete space",
			worst["LWD"].Ratio, worst["LQD"].Ratio)
	}
	if worst["Greedy"].Ratio < 1.15 {
		t.Errorf("greedy worst %.4f — expected a real adversarial instance in the space", worst["Greedy"].Ratio)
	}
	for name, w := range worst {
		if w.Evaluated != 1296 {
			t.Errorf("%s evaluated %d instances, want 1296", name, w.Evaluated)
		}
	}
}

func TestExhaustiveValidation(t *testing.T) {
	if _, err := Exhaustive(ExhaustiveSpec{Cfg: exhaustiveCfg(), Slots: 0, MaxBurst: 1}, policy.LWD{}); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := Exhaustive(ExhaustiveSpec{Cfg: exhaustiveCfg(), Slots: 2, MaxBurst: 2}, nil); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := Exhaustive(ExhaustiveSpec{Cfg: exhaustiveCfg(), Slots: 12, MaxBurst: 4, Limit: 100}, policy.LWD{}); err == nil {
		t.Error("oversized space accepted")
	}
	if _, err := Exhaustive(ExhaustiveSpec{Cfg: core.Config{}, Slots: 1, MaxBurst: 1}, policy.LWD{}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestExhaustiveValueModel runs the complete enumeration for MRD on a
// tiny value-model space and logs its verified worst case — the
// open-problem record at this scale.
func TestExhaustiveValueModel(t *testing.T) {
	spec := ExhaustiveSpec{
		Cfg: core.Config{
			Model:    core.ModelValue,
			Ports:    2,
			Buffer:   2,
			MaxLabel: 2,
			Speedup:  1,
		},
		Slots:    3,
		MaxBurst: 2,
	}
	w, err := Exhaustive(spec, policy.MRD{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MRD verified worst on the complete tiny space: %.4f over %d instances", w.Ratio, w.Evaluated)
	if w.Ratio > 2.0 {
		t.Errorf("MRD verified worst %.4f — record against the conjecture", w.Ratio)
	}
}
