package search

import (
	"fmt"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/traffic"
)

// ExhaustiveSpec bounds a complete enumeration of instances: every trace
// of exactly Slots slots whose per-slot bursts are multisets of at most
// MaxBurst packets drawn from the configuration's packet kinds.
type ExhaustiveSpec struct {
	// Cfg is the (tiny) switch configuration.
	Cfg core.Config
	// Slots and MaxBurst bound the enumerated traces.
	Slots, MaxBurst int
	// Limit aborts enumerations larger than this many traces
	// (default 1e6), guarding against accidental explosions.
	Limit int
}

// kinds enumerates the distinct packet kinds of the configuration: one
// per port in the processing model (the port fixes the work), one per
// (port, value) pair in the value model.
func (s ExhaustiveSpec) kinds() []pkt.Packet {
	var out []pkt.Packet
	if s.Cfg.Model == core.ModelValue {
		for p := 0; p < s.Cfg.Ports; p++ {
			for v := 1; v <= s.Cfg.MaxLabel; v++ {
				out = append(out, pkt.NewValue(p, v))
			}
		}
		return out
	}
	for p := 0; p < s.Cfg.Ports; p++ {
		work := 1
		if s.Cfg.PortWork != nil {
			work = s.Cfg.PortWork[p]
		}
		out = append(out, pkt.NewWork(p, work))
	}
	return out
}

// bursts enumerates every multiset of up to MaxBurst packets over the
// kinds, as sorted slices (order within a burst is fixed kind order,
// which loses no generality for the policies under test up to the
// adversary's choice — the enumeration covers the canonical order).
func (s ExhaustiveSpec) bursts() [][]pkt.Packet {
	kinds := s.kinds()
	var out [][]pkt.Packet
	var rec func(start int, cur []pkt.Packet)
	rec = func(start int, cur []pkt.Packet) {
		out = append(out, append([]pkt.Packet(nil), cur...))
		if len(cur) == s.MaxBurst {
			return
		}
		for i := start; i < len(kinds); i++ {
			rec(i, append(cur, kinds[i]))
		}
	}
	rec(0, nil)
	return out
}

// Exhaustive computes the exact worst-case ratio of the policy over the
// full bounded instance space, against the exact offline optimum. The
// returned Worst carries the witness trace.
func Exhaustive(spec ExhaustiveSpec, p core.Policy) (Worst, error) {
	if err := spec.Cfg.Validate(); err != nil {
		return Worst{}, err
	}
	if p == nil {
		return Worst{}, fmt.Errorf("search: nil policy")
	}
	if spec.Slots < 1 || spec.MaxBurst < 1 {
		return Worst{}, fmt.Errorf("search: need slots >= 1 and max burst >= 1")
	}
	limit := spec.Limit
	if limit == 0 {
		limit = 1_000_000
	}
	bursts := spec.bursts()
	total := 1
	for i := 0; i < spec.Slots; i++ {
		total *= len(bursts)
		if total > limit {
			return Worst{}, fmt.Errorf("search: %d^%d traces exceed the limit %d", len(bursts), spec.Slots, limit)
		}
	}

	runSpec := Spec{Cfg: spec.Cfg, Policy: p, Slots: spec.Slots, MaxBurst: spec.MaxBurst, Trials: 1}
	var worst Worst
	idx := make([]int, spec.Slots)
	tr := make(traffic.Trace, spec.Slots)
	for {
		arrivals := 0
		for s := range idx {
			tr[s] = bursts[idx[s]]
			arrivals += len(tr[s])
		}
		if arrivals <= 24 { // exact-solver cap
			w, err := score(runSpec, tr)
			if err != nil {
				return Worst{}, err
			}
			worst.Evaluated++
			if w.Ratio > worst.Ratio {
				witness := make(traffic.Trace, len(tr))
				for s := range tr {
					witness[s] = append([]pkt.Packet(nil), tr[s]...)
				}
				worst = Worst{Ratio: w.Ratio, Exact: w.Exact, Alg: w.Alg, Trace: witness, Evaluated: worst.Evaluated}
			}
		}
		// Advance the mixed-radix counter.
		pos := 0
		for pos < spec.Slots {
			idx[pos]++
			if idx[pos] < len(bursts) {
				break
			}
			idx[pos] = 0
			pos++
		}
		if pos == spec.Slots {
			return worst, nil
		}
	}
}
