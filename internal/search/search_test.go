package search

import (
	"testing"

	"smbm/internal/core"
	"smbm/internal/policy"
)

func procSpec(p core.Policy) Spec {
	return Spec{
		Cfg: core.Config{
			Model:    core.ModelProcessing,
			Ports:    3,
			Buffer:   4,
			MaxLabel: 3,
			Speedup:  1,
			PortWork: []int{1, 2, 3},
		},
		Policy:   p,
		Slots:    5,
		MaxBurst: 4,
		Trials:   60,
		Climb:    20,
		Seed:     1,
	}
}

func valSpec(p core.Policy) Spec {
	return Spec{
		Cfg: core.Config{
			Model:    core.ModelValue,
			Ports:    3,
			Buffer:   4,
			MaxLabel: 4,
			Speedup:  1,
		},
		Policy:   p,
		Slots:    5,
		MaxBurst: 4,
		Trials:   60,
		Climb:    20,
		Seed:     1,
	}
}

func TestSpecValidation(t *testing.T) {
	s := procSpec(policy.LWD{})
	s.Policy = nil
	if _, err := Run(s); err == nil {
		t.Error("nil policy accepted")
	}
	s = procSpec(policy.LWD{})
	s.Slots = 0
	if _, err := Run(s); err == nil {
		t.Error("zero slots accepted")
	}
	s = procSpec(policy.LWD{})
	s.Trials = 0
	if _, err := Run(s); err == nil {
		t.Error("zero trials accepted")
	}
	s = procSpec(policy.LWD{})
	s.MaxBurst = 0
	if _, err := Run(s); err == nil {
		t.Error("zero burst accepted")
	}
}

// TestHuntRespectsTheorem7: no instance the hunt constructs may push LWD
// above ratio 2 — the upper bound run as a falsification attempt. (At
// this instance scale the hunt in fact finds nothing above 1.0: LWD is
// empirically *optimal* on tiny instances, which the log records.)
func TestHuntRespectsTheorem7(t *testing.T) {
	w, err := Run(procSpec(policy.LWD{}))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LWD worst found: ratio %.3f over %d instances", w.Ratio, w.Evaluated)
	if w.Ratio > 2.0 {
		t.Errorf("found LWD ratio %.3f > 2 on %v — Theorem 7 violated", w.Ratio, w.Trace)
	}
	if w.Evaluated == 0 || len(w.Trace) == 0 {
		t.Errorf("empty hunt result: %+v", w)
	}
}

// TestHuntFindsGreedyCounterexamples is the search's canary: greedy
// tail-drop has known bad tiny instances (hoarding expensive packets
// blocks later cheap ones), so a working hunt must find a ratio well
// above 1.
func TestHuntFindsGreedyCounterexamples(t *testing.T) {
	spec := procSpec(policy.Greedy{})
	spec.Cfg = core.Config{
		Model:    core.ModelProcessing,
		Ports:    2,
		Buffer:   2,
		MaxLabel: 3,
		Speedup:  1,
		PortWork: []int{1, 3},
	}
	spec.Slots = 7
	w, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if w.Ratio < 1.15 {
		t.Errorf("hunt found only ratio %.3f for Greedy; search is broken", w.Ratio)
	}
}

// TestHuntFindsLQDWorseThanLWD: at equal budget, the hunt must certify a
// worse ratio for LQD than for LWD (Theorem 4 vs Theorem 7 in miniature).
func TestHuntFindsLQDWorseThanLWD(t *testing.T) {
	lwd, err := Run(procSpec(policy.LWD{}))
	if err != nil {
		t.Fatal(err)
	}
	lqd, err := Run(procSpec(policy.LQD{}))
	if err != nil {
		t.Fatal(err)
	}
	if lqd.Ratio < lwd.Ratio {
		t.Errorf("hunt rates LQD (%.3f) better than LWD (%.3f)", lqd.Ratio, lwd.Ratio)
	}
}

// TestHuntMRDConjecture: the empirical side of the paper's open problem.
// On the searchable instance space MRD must stay below a small constant;
// the found worst case is logged as the library's running record.
func TestHuntMRDConjecture(t *testing.T) {
	w, err := Run(valSpec(policy.MRD{}))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MRD worst found: ratio %.3f (exact %d vs MRD %d) over %d instances",
		w.Ratio, w.Exact, w.Alg, w.Evaluated)
	if w.Ratio > 3.0 {
		t.Errorf("MRD ratio %.3f — evidence against the constant-competitiveness conjecture worth recording: %v",
			w.Ratio, w.Trace)
	}
}

// TestHuntDeterministic: equal seeds find equal worst cases.
func TestHuntDeterministic(t *testing.T) {
	a, err := Run(procSpec(policy.LQD{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(procSpec(policy.LQD{}))
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio != b.Ratio || a.Exact != b.Exact {
		t.Errorf("hunt not deterministic: %+v vs %+v", a, b)
	}
}
