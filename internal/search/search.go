// Package search hunts for worst-case instances of a policy by
// randomized generation plus hill climbing against the exact offline
// optimum on tiny instances. It is the empirical tool for the paper's
// open problems:
//
//   - Theorem 7 says LWD never exceeds ratio 2 — the hunt must fail to
//     find anything above it (and how close it gets measures the bound's
//     tightness);
//   - the paper conjectures MRD is constant-competitive in the value
//     model — the hunt reports the largest ratio it can construct.
//
// Instances stay within the caps of internal/opt's exact solver, so
// every reported ratio is against the true optimum, not a proxy.
package search

import (
	"fmt"
	"math/rand"

	"smbm/internal/core"
	"smbm/internal/opt"
	"smbm/internal/pkt"
	"smbm/internal/traffic"
)

// Spec parameterizes a hunt.
type Spec struct {
	// Cfg is the (tiny) switch configuration; must satisfy the exact
	// solver's caps.
	Cfg core.Config
	// Policy is the online policy under attack.
	Policy core.Policy
	// Slots and MaxBurst bound generated traces.
	Slots, MaxBurst int
	// Trials is the number of random starting instances.
	Trials int
	// Climb is the number of mutation steps attempted from every
	// improving instance.
	Climb int
	// Seed makes the hunt reproducible.
	Seed int64
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if err := s.Cfg.Validate(); err != nil {
		return err
	}
	switch {
	case s.Policy == nil:
		return fmt.Errorf("search: nil policy")
	case s.Slots < 1:
		return fmt.Errorf("search: slots %d < 1", s.Slots)
	case s.MaxBurst < 1:
		return fmt.Errorf("search: max burst %d < 1", s.MaxBurst)
	case s.Trials < 1:
		return fmt.Errorf("search: trials %d < 1", s.Trials)
	}
	return nil
}

// Worst is the most adversarial instance a hunt found.
type Worst struct {
	// Ratio is ExactOpt/Alg, the certified competitive-ratio witness.
	Ratio float64
	// Exact and Alg are the two objective values.
	Exact, Alg int64
	// Trace is the witness arrival sequence.
	Trace traffic.Trace
	// Evaluated counts instances scored (random + climb steps).
	Evaluated int
}

// Run executes the hunt.
func Run(spec Spec) (Worst, error) {
	if err := spec.Validate(); err != nil {
		return Worst{}, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var worst Worst
	for trial := 0; trial < spec.Trials; trial++ {
		tr := randomTrace(rng, spec)
		w, err := score(spec, tr)
		if err != nil {
			return Worst{}, err
		}
		worst.Evaluated++
		if w.Ratio > worst.Ratio {
			worst = Worst{Ratio: w.Ratio, Exact: w.Exact, Alg: w.Alg, Trace: tr, Evaluated: worst.Evaluated}
		}
		// Hill climb from the current global worst.
		for step := 0; step < spec.Climb; step++ {
			mut := mutate(rng, spec, worst.Trace)
			w, err := score(spec, mut)
			if err != nil {
				return Worst{}, err
			}
			worst.Evaluated++
			if w.Ratio > worst.Ratio {
				worst = Worst{Ratio: w.Ratio, Exact: w.Exact, Alg: w.Alg, Trace: mut, Evaluated: worst.Evaluated}
			}
		}
	}
	return worst, nil
}

// score runs the policy and the exact optimum on one trace.
func score(spec Spec, tr traffic.Trace) (Worst, error) {
	var exact int64
	var err error
	if spec.Cfg.Model == core.ModelValue {
		exact, err = opt.ExactValue(spec.Cfg, tr)
	} else {
		exact, err = opt.ExactProcessing(spec.Cfg, tr)
	}
	if err != nil {
		return Worst{}, err
	}
	sw, err := core.New(spec.Cfg, spec.Policy)
	if err != nil {
		return Worst{}, err
	}
	for _, burst := range tr {
		if err := sw.Step(burst); err != nil {
			return Worst{}, err
		}
	}
	sw.Drain()
	alg := sw.Stats().Throughput(spec.Cfg.Model)
	w := Worst{Exact: exact, Alg: alg}
	switch {
	case alg > 0:
		w.Ratio = float64(exact) / float64(alg)
	case exact > 0:
		w.Ratio = float64(exact) // alg got nothing: treat as exact/1
	default:
		w.Ratio = 1
	}
	return w, nil
}

// randomTrace draws a legal instance within the exact solver's caps.
func randomTrace(rng *rand.Rand, spec Spec) traffic.Trace {
	tr := make(traffic.Trace, spec.Slots)
	budget := 24 // stay within the exact solver's arrival cap
	for s := range tr {
		n := rng.Intn(spec.MaxBurst + 1)
		if n > budget {
			n = budget
		}
		budget -= n
		burst := make([]pkt.Packet, n)
		for i := range burst {
			burst[i] = randomPacket(rng, spec.Cfg)
		}
		tr[s] = burst
	}
	return tr
}

func randomPacket(rng *rand.Rand, cfg core.Config) pkt.Packet {
	port := rng.Intn(cfg.Ports)
	if cfg.Model == core.ModelValue {
		return pkt.NewValue(port, 1+rng.Intn(cfg.MaxLabel))
	}
	work := 1
	if cfg.PortWork != nil {
		work = cfg.PortWork[port]
	}
	return pkt.NewWork(port, work)
}

// mutate returns a copy of tr with one random edit: add, delete, or
// relabel a packet.
func mutate(rng *rand.Rand, spec Spec, tr traffic.Trace) traffic.Trace {
	out := make(traffic.Trace, len(tr))
	total := 0
	for s := range tr {
		out[s] = append([]pkt.Packet(nil), tr[s]...)
		total += len(tr[s])
	}
	slot := rng.Intn(len(out))
	switch op := rng.Intn(3); {
	case op == 0 && total < 24: // add
		out[slot] = append(out[slot], randomPacket(rng, spec.Cfg))
	case op == 1 && len(out[slot]) > 0: // delete
		i := rng.Intn(len(out[slot]))
		out[slot] = append(out[slot][:i], out[slot][i+1:]...)
	case len(out[slot]) > 0: // relabel
		i := rng.Intn(len(out[slot]))
		out[slot][i] = randomPacket(rng, spec.Cfg)
	default:
		if total < 24 {
			out[slot] = append(out[slot], randomPacket(rng, spec.Cfg))
		}
	}
	return out
}
