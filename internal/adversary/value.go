package adversary

import (
	"fmt"
	"math"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/traffic"
)

// valueCfg builds a value-model configuration with n ports and labels up
// to k.
func valueCfg(n, k, b int) core.Config {
	return core.Config{
		Model:    core.ModelValue,
		Ports:    n,
		Buffer:   b,
		MaxLabel: k,
		Speedup:  1,
	}
}

// Theorem9 builds the value-model LQD counterexample (value ≡ port):
// bursts of values 1..a plus a burst of value k; LQD balances queue
// lengths and keeps only B/(a+1) of the value-k packets OPT hoards.
func Theorem9(p Params) (Construction, error) {
	p = p.withDefaults(27, 1080, 3, 2)
	k, b := p.K, p.B
	if k < 8 {
		return Construction{}, fmt.Errorf("adversary: theorem 9 needs k >= 8, got %d", k)
	}
	a := int(math.Round(math.Cbrt(float64(k))))
	if a < 1 {
		a = 1
	}
	if a > k-1 {
		a = k - 1
	}
	roundLen := b

	round := make(traffic.Trace, roundLen)
	var first []pkt.Packet
	for v := 1; v <= a; v++ {
		first = append(first, pkt.Burst(pkt.NewValue(v-1, v), b)...)
	}
	first = append(first, pkt.Burst(pkt.NewValue(k-1, k), b)...)
	round[0] = first
	for t := 1; t < roundLen; t++ {
		for v := 1; v <= a; v++ {
			round[t] = append(round[t], pkt.NewValue(v-1, v))
		}
	}

	thresholds := make([]int, k)
	for v := 1; v <= a; v++ {
		thresholds[v-1] = 2
	}
	thresholds[k-1] = b - 2*a

	fa, fk := float64(a), float64(k)
	predicted := (fa*(fa-1)/2 + fk) / (fa*(fa-1)/2 + fk/fa)
	return Construction{
		ID:              "thm9",
		Theorem:         "Theorem 9",
		Statement:       "value-model LQD is at least (∛k − o(∛k))-competitive",
		Cfg:             valueCfg(k, k, b),
		Policy:          policy.VLQD{},
		Opt:             policy.StaticThreshold{Label: "OPT(script)", T: thresholds},
		Round:           round,
		Warmup:          p.Warmup,
		Rounds:          p.Rounds,
		Predicted:       predicted,
		Asymptotic:      "∛k",
		AsymptoticValue: math.Cbrt(float64(k)),
	}, nil
}

// Theorem10 builds the MVD counterexample: a full set of values arrives
// every slot; MVD ends each slot holding only maximal-value packets and
// serves one port, while OPT partitions the buffer and serves all m.
func Theorem10(p Params) (Construction, error) {
	p = p.withDefaults(8, 64, 3, 1)
	k, b := p.K, p.B
	if k < 2 {
		return Construction{}, fmt.Errorf("adversary: theorem 10 needs k >= 2, got %d", k)
	}
	m := k
	if b < m {
		m = b
	}
	roundLen := 20 * b

	round := make(traffic.Trace, roundLen)
	var first []pkt.Packet
	for v := 1; v <= m; v++ {
		first = append(first, pkt.Burst(pkt.NewValue(v-1, v), b)...)
	}
	round[0] = first
	refill := make([]pkt.Packet, 0, 2*m)
	for v := 1; v <= m; v++ {
		refill = append(refill, pkt.NewValue(v-1, v), pkt.NewValue(v-1, v))
	}
	for t := 1; t < roundLen; t++ {
		round[t] = refill
	}

	thresholds := make([]int, k)
	for v := 1; v <= m; v++ {
		thresholds[v-1] = b / m
	}

	return Construction{
		ID:              "thm10",
		Theorem:         "Theorem 10",
		Statement:       "MVD is at least ((m−1)/2)-competitive, m = min{k,B}",
		Cfg:             valueCfg(k, k, b),
		Policy:          policy.MVD{},
		Opt:             policy.StaticThreshold{Label: "OPT(script)", T: thresholds},
		Round:           round,
		Warmup:          p.Warmup,
		Rounds:          p.Rounds,
		Predicted:       (float64(m) + 1) / 2, // per-slot accounting: OPT moves m(m+1)/2 value, MVD moves m
		Asymptotic:      "(m−1)/2",
		AsymptoticValue: (float64(m) - 1) / 2,
	}, nil
}

// Theorem11 builds the MRD counterexample on values {1,2,3,6} (value ≡
// port): MRD balances |Q|/avg and keeps only B/2 of the value-6 packets
// OPT hoards, costing a 4/3 factor.
func Theorem11(p Params) (Construction, error) {
	p = p.withDefaults(6, 1200, 3, 2)
	if p.K != 6 {
		return Construction{}, fmt.Errorf("adversary: theorem 11 is defined for k = 6, got %d", p.K)
	}
	b := p.B - p.B%12
	if b < 48 {
		return Construction{}, fmt.Errorf("adversary: theorem 11 needs B >= 48, got %d", p.B)
	}
	values := []int{1, 2, 3, 6}
	roundLen := b

	round := make(traffic.Trace, roundLen)
	var first []pkt.Packet
	for port, v := range values {
		first = append(first, pkt.Burst(pkt.NewValue(port, v), b)...)
	}
	round[0] = first
	for t := 1; t < roundLen; t++ {
		round[t] = []pkt.Packet{
			pkt.NewValue(0, 1),
			pkt.NewValue(1, 2),
			pkt.NewValue(2, 3),
		}
	}

	fb := float64(b)
	return Construction{
		ID:              "thm11",
		Theorem:         "Theorem 11",
		Statement:       "MRD is at least 4/3-competitive (value ≡ port)",
		Cfg:             valueCfg(4, 6, b),
		Policy:          policy.MRD{},
		Opt:             policy.StaticThreshold{Label: "OPT(script)", T: []int{2, 2, 2, b - 6}},
		Round:           round,
		Warmup:          p.Warmup,
		Rounds:          p.Rounds,
		Predicted:       12 * (fb - 3) / (9*fb - 18),
		Asymptotic:      "4/3",
		AsymptoticValue: 4.0 / 3,
	}, nil
}
