package adversary

import (
	"testing"

	"smbm/internal/pkt"
)

// TestTheorem6RoundStructure pins the construction to the proof's exact
// script: the first burst is B×[1], B/4×[2], B/6×[3], B/12×[6], and the
// trickle re-feeds each expensive class at exactly its service rate.
func TestTheorem6RoundStructure(t *testing.T) {
	c, err := Theorem6(Params{B: 1200})
	if err != nil {
		t.Fatal(err)
	}
	b := c.Cfg.Buffer
	if len(c.Round) != b {
		t.Fatalf("round length %d, want B=%d", len(c.Round), b)
	}
	counts := map[int]int{}
	for _, p := range c.Round[0] {
		counts[p.Work]++
	}
	want := map[int]int{1: b, 2: b / 4, 3: b / 6, 6: b / 12}
	for w, n := range want {
		if counts[w] != n {
			t.Errorf("first burst has %d packets of work %d, want %d", counts[w], w, n)
		}
	}
	// Trickle: over slots 1..B-1, work w arrives every w slots.
	trickle := map[int]int{}
	for _, slot := range c.Round[1:] {
		for _, p := range slot {
			trickle[p.Work]++
		}
	}
	for _, w := range []int{2, 3, 6} {
		want := (b - 1) / w
		if diff := trickle[w] - want; diff < -1 || diff > 1 {
			t.Errorf("trickle delivered %d work-%d packets, want ~%d", trickle[w], w, want)
		}
	}
	if trickle[1] != 0 {
		t.Errorf("trickle contains %d unit-work packets, want 0", trickle[1])
	}
}

// TestTheorem5RoundStructure: a full set of B packets per work kind in
// slot 0, then two of each kind per slot.
func TestTheorem5RoundStructure(t *testing.T) {
	c, err := Theorem5(Params{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, p := range c.Round[0] {
		counts[p.Work]++
	}
	for w := 1; w <= 5; w++ {
		if counts[w] != c.Cfg.Buffer {
			t.Errorf("slot 0 has %d work-%d packets, want B=%d", counts[w], w, c.Cfg.Buffer)
		}
	}
	for s := 1; s < len(c.Round); s++ {
		if len(c.Round[s]) != 2*5 {
			t.Fatalf("slot %d refill has %d packets, want 10", s, len(c.Round[s]))
		}
	}
}

// TestTheorem9ValueByPort: every packet's value equals its port label
// plus one — the special case all Section IV lower bounds live in.
func TestTheorem9ValueByPort(t *testing.T) {
	c, err := Theorem9(Params{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(p pkt.Packet) {
		if p.Value != p.Port+1 {
			t.Fatalf("packet %v breaks value=port+1", p)
		}
	}
	for _, slot := range c.Round {
		for _, p := range slot {
			check(p)
		}
	}
}

// TestTheorem1SilencePeriod: after the single burst, the round is silent
// long enough for the scripted OPT to drain B work-k packets through one
// port.
func TestTheorem1SilencePeriod(t *testing.T) {
	c, err := Theorem1(Params{K: 5, B: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Round) != 5*100 {
		t.Fatalf("round length %d, want k·B = 500", len(c.Round))
	}
	if len(c.Round[0]) != 100 {
		t.Fatalf("burst size %d, want B", len(c.Round[0]))
	}
	for s := 1; s < len(c.Round); s++ {
		if len(c.Round[s]) != 0 {
			t.Fatalf("slot %d not silent", s)
		}
	}
}

// TestAllPacketsLegal: every construction's script is legal for its own
// configuration (ports, labels, work assignments).
func TestAllPacketsLegal(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all {
		works := c.Cfg.PortWork
		for s, slot := range c.Round {
			for _, p := range slot {
				if err := p.Validate(c.Cfg.Ports, c.Cfg.MaxLabel); err != nil {
					t.Errorf("%s slot %d: %v", c.ID, s, err)
				}
				if works != nil && p.Work != works[p.Port] {
					t.Errorf("%s slot %d: packet %v violates the port configuration", c.ID, s, p)
				}
			}
		}
	}
}
