// Package adversary implements the arrival constructions behind the
// paper's lower-bound theorems, each packaged with the policy it defeats,
// a scripted clairvoyant OPT strategy (the proof's "OPT accepts ..."),
// the finite-parameter ratio the proof predicts, and the asymptotic bound
// it establishes.
//
// Each construction is a round that repeats ("then the process
// repeats"). The proofs account steady-state throughput, so Run measures
// a window of rounds after warm-up rounds, with no flushing or draining:
// buffered inventory is identical at the window's ends and cancels out.
//
// The measured ratio scripted-OPT / policy certifies "at least
// X-competitive" behaviour: the scripted OPT is itself a legal algorithm
// on the same shared-memory switch, so any throughput gap it demonstrates
// lower bounds the true competitive ratio.
package adversary

import (
	"fmt"

	"smbm/internal/core"
	"smbm/internal/traffic"
)

// Construction is one theorem's executable counterexample.
type Construction struct {
	// ID is the stable handle ("thm1" ... "thm11").
	ID string
	// Theorem is the paper reference ("Theorem 4").
	Theorem string
	// Statement summarizes the bound ("LQD is at least √k-competitive").
	Statement string
	// Cfg is the switch configuration both systems run.
	Cfg core.Config
	// Policy is the online policy under attack.
	Policy core.Policy
	// Opt is the scripted clairvoyant strategy from the proof.
	Opt core.Policy
	// Round is one period of the repeating adversarial arrival script.
	Round traffic.Trace
	// Warmup is the number of uncounted rounds driving both systems to
	// steady state.
	Warmup int
	// Rounds is the number of counted rounds.
	Rounds int
	// Predicted is the ratio the proof's accounting yields at these
	// finite parameters.
	Predicted float64
	// Asymptotic is the bound as stated ("½√(k ln k)").
	Asymptotic string
	// AsymptoticValue evaluates the stated bound at these parameters.
	AsymptoticValue float64
}

// Outcome is the result of executing a construction.
type Outcome struct {
	// ID, Theorem and PolicyName echo identity fields for reporting.
	ID, Theorem, PolicyName string
	// AlgThroughput and OptThroughput are the two systems' objectives
	// over the measured window.
	AlgThroughput, OptThroughput int64
	// Ratio is OptThroughput/AlgThroughput.
	Ratio float64
	// Predicted and AsymptoticValue echo the construction.
	Predicted, AsymptoticValue float64
}

// Run executes the construction: both systems replay Warmup uncounted
// rounds and then Rounds counted rounds of the same script.
func (c Construction) Run() (Outcome, error) {
	alg, err := c.measure(c.Policy)
	if err != nil {
		return Outcome{}, err
	}
	opt, err := c.measure(c.Opt)
	if err != nil {
		return Outcome{}, err
	}
	o := Outcome{
		ID:              c.ID,
		Theorem:         c.Theorem,
		PolicyName:      c.Policy.Name(),
		AlgThroughput:   alg,
		OptThroughput:   opt,
		Predicted:       c.Predicted,
		AsymptoticValue: c.AsymptoticValue,
	}
	if o.AlgThroughput > 0 {
		o.Ratio = float64(o.OptThroughput) / float64(o.AlgThroughput)
	}
	return o, nil
}

// measure returns the throughput p achieves during the counted window.
// The repeating script is streamed through a traffic.Repeat cursor —
// the "then the process repeats" of the proofs as a re-derivable
// Provider — with the throughput snapshot taken at the warm-up
// boundary.
func (c Construction) measure(p core.Policy) (int64, error) {
	sw, err := core.New(c.Cfg, p)
	if err != nil {
		return 0, fmt.Errorf("adversary %s: %w", c.ID, err)
	}
	prov := traffic.Repeat{Round: c.Round, Rounds: c.Warmup + c.Rounds}
	cur, err := prov.Open()
	if err != nil {
		return 0, fmt.Errorf("adversary %s: %w", c.ID, err)
	}
	defer cur.Close()
	warm := c.Warmup * len(c.Round)
	slots := prov.Slots()
	var before int64
	took := false
	for t := 0; t < slots; t++ {
		if t == warm {
			before = sw.Stats().Throughput(c.Cfg.Model)
			took = true
		}
		if err := sw.Step(cur.Next()); err != nil {
			return 0, fmt.Errorf("adversary %s: %s slot %d: %w", c.ID, p.Name(), t%max(len(c.Round), 1), err)
		}
	}
	if err := cur.Err(); err != nil {
		return 0, fmt.Errorf("adversary %s: %w", c.ID, err)
	}
	if !took {
		before = sw.Stats().Throughput(c.Cfg.Model)
	}
	return sw.Stats().Throughput(c.Cfg.Model) - before, nil
}

// Params tunes a construction. Zero fields take per-theorem defaults.
type Params struct {
	// K is the maximum work/value label.
	K int
	// B is the buffer size.
	B int
	// Rounds is the number of counted rounds.
	Rounds int
	// Warmup is the number of uncounted warm-up rounds.
	Warmup int
}

func (p Params) withDefaults(k, b, rounds, warmup int) Params {
	if p.K == 0 {
		p.K = k
	}
	if p.B == 0 {
		p.B = b
	}
	if p.Rounds == 0 {
		p.Rounds = rounds
	}
	if p.Warmup == 0 {
		p.Warmup = warmup
	}
	return p
}

// All returns every construction at its default parameters.
func All() ([]Construction, error) {
	builders := []func(Params) (Construction, error){
		Theorem1, Theorem2, Theorem3, Theorem4, Theorem5, Theorem6,
		Theorem9, Theorem10, Theorem11,
	}
	out := make([]Construction, 0, len(builders))
	for _, b := range builders {
		c, err := b(Params{})
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// ByID builds the construction with the given ID at the given parameters.
func ByID(id string, p Params) (Construction, error) {
	switch id {
	case "thm1":
		return Theorem1(p)
	case "thm2":
		return Theorem2(p)
	case "thm3":
		return Theorem3(p)
	case "thm4":
		return Theorem4(p)
	case "thm5":
		return Theorem5(p)
	case "thm6":
		return Theorem6(p)
	case "thm9":
		return Theorem9(p)
	case "thm10":
		return Theorem10(p)
	case "thm11":
		return Theorem11(p)
	default:
		return Construction{}, fmt.Errorf("adversary: unknown construction %q", id)
	}
}
