package adversary

import (
	"fmt"
	"math"

	"smbm/internal/core"
	"smbm/internal/hmath"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/traffic"
)

// contiguousCfg is the paper's canonical lower-bound configuration: k
// output ports with required work 1..k.
func contiguousCfg(k, b int) core.Config {
	return core.Config{
		Model:    core.ModelProcessing,
		Ports:    k,
		Buffer:   b,
		MaxLabel: k,
		Speedup:  1,
		PortWork: core.ContiguousWorks(k),
	}
}

// workPkt builds a processing-model packet of the contiguous
// configuration: required work w goes to port w-1.
func workPkt(w int) pkt.Packet { return pkt.NewWork(w-1, w) }

// Theorem1 builds the NHST counterexample: a burst of B packets of
// maximal work k, then silence until even OPT has drained. NHST admits
// only ~B/(k·H_k) of the burst while OPT takes all B, so the ratio
// approaches kZ = k·H_k.
func Theorem1(p Params) (Construction, error) {
	p = p.withDefaults(12, 1200, 3, 1)
	k, b := p.K, p.B
	if k < 2 {
		return Construction{}, fmt.Errorf("adversary: theorem 1 needs k >= 2, got %d", k)
	}
	round := make(traffic.Trace, k*b) // OPT drains B work-k packets through one port
	round[0] = pkt.Burst(workPkt(k), b)
	z := hmath.Harmonic(k)
	accepted := acceptedBelow(float64(b) / (float64(k) * z))
	return Construction{
		ID:              "thm1",
		Theorem:         "Theorem 1",
		Statement:       "NHST is at least kZ-competitive",
		Cfg:             contiguousCfg(k, b),
		Policy:          policy.NHST{},
		Opt:             policy.Greedy{},
		Round:           round,
		Warmup:          p.Warmup,
		Rounds:          p.Rounds,
		Predicted:       float64(b) / float64(accepted),
		Asymptotic:      "kZ = k·H_k",
		AsymptoticValue: float64(k) * z,
	}, nil
}

// Theorem2 builds the NEST counterexample: all traffic targets one port,
// so the equal thresholds waste (n-1)/n of the buffer and the ratio
// approaches n.
func Theorem2(p Params) (Construction, error) {
	p = p.withDefaults(8, 800, 3, 1)
	k, b := p.K, p.B
	if k < 2 {
		return Construction{}, fmt.Errorf("adversary: theorem 2 needs k >= 2, got %d", k)
	}
	round := make(traffic.Trace, b) // OPT drains B unit-work packets through one port
	round[0] = pkt.Burst(workPkt(1), b)
	accepted := acceptedBelow(float64(b) / float64(k))
	return Construction{
		ID:              "thm2",
		Theorem:         "Theorem 2",
		Statement:       "NEST is at least n-competitive",
		Cfg:             contiguousCfg(k, b),
		Policy:          policy.NEST{},
		Opt:             policy.Greedy{},
		Round:           round,
		Warmup:          p.Warmup,
		Rounds:          p.Rounds,
		Predicted:       float64(b) / float64(accepted),
		Asymptotic:      "n",
		AsymptoticValue: float64(k),
	}, nil
}

// Theorem3 builds the NHDT counterexample: bursts of the k−m largest
// works arrive in decreasing-work order followed by a burst of unit-work
// packets, so the harmonic thresholds spend the buffer on expensive
// packets; a trickle then keeps the expensive queues of both systems
// saturated while OPT rides its hoard of unit-work packets.
func Theorem3(p Params) (Construction, error) {
	p = p.withDefaults(64, 4096, 3, 2)
	k, b := p.K, p.B
	if k < 8 {
		return Construction{}, fmt.Errorf("adversary: theorem 3 needs k >= 8, got %d", k)
	}
	m := k - int(math.Round(math.Sqrt(float64(k)/math.Log(float64(k)))))
	if m < 2 {
		m = 2
	}
	if m > k-2 {
		m = k - 2
	}
	roundLen := b - k + m
	if roundLen < 2 {
		return Construction{}, fmt.Errorf("adversary: theorem 3 needs B > k-m+1 (B=%d, k=%d, m=%d)", b, k, m)
	}

	round := make(traffic.Trace, roundLen)
	var first []pkt.Packet
	for w := k; w > m; w-- { // the k−m most expensive kinds, largest first
		first = append(first, pkt.Burst(workPkt(w), b)...)
	}
	first = append(first, pkt.Burst(workPkt(1), b)...)
	round[0] = first
	for t := 1; t < roundLen; t++ {
		for w := m + 1; w <= k; w++ {
			if t%w == 0 {
				round[t] = append(round[t], workPkt(w))
			}
		}
	}

	thresholds := make([]int, k)
	thresholds[0] = b - 2*(k-m)
	for w := m + 1; w <= k; w++ {
		thresholds[w-1] = 2
	}

	hk, hm := hmath.Harmonic(k), hmath.Harmonic(m)
	a := float64(b) / math.Log(float64(k))
	predicted := (1 + hk - hm) / (hk - hm + a/(float64(b-k+m)*float64(k-m+1)))
	return Construction{
		ID:              "thm3",
		Theorem:         "Theorem 3",
		Statement:       "NHDT is at least ½√(k·ln k)-competitive",
		Cfg:             contiguousCfg(k, b),
		Policy:          policy.NHDT{},
		Opt:             policy.StaticThreshold{Label: "OPT(script)", T: thresholds},
		Round:           round,
		Warmup:          p.Warmup,
		Rounds:          p.Rounds,
		Predicted:       predicted,
		Asymptotic:      "½√(k·ln k)",
		AsymptoticValue: 0.5 * math.Sqrt(float64(k)*math.Log(float64(k))),
	}, nil
}

// Theorem4 builds the LQD counterexample: one burst of unit-work packets
// plus bursts of the m = √k largest works; LQD splits the buffer evenly
// over m+1 queues and starves the unit-work queue that OPT rides for the
// rest of the round, while a trickle keeps the expensive queues of both
// systems saturated.
func Theorem4(p Params) (Construction, error) {
	p = p.withDefaults(100, 2000, 3, 2)
	k, b := p.K, p.B
	if k < 4 {
		return Construction{}, fmt.Errorf("adversary: theorem 4 needs k >= 4, got %d", k)
	}
	m := int(math.Round(math.Sqrt(float64(k))))
	if m < 1 {
		m = 1
	}
	if m > k-1 {
		m = k - 1
	}
	roundLen := b

	round := make(traffic.Trace, roundLen)
	first := pkt.Burst(workPkt(1), b)
	for w := k; w > k-m; w-- {
		first = append(first, pkt.Burst(workPkt(w), b)...)
	}
	round[0] = first
	for t := 1; t < roundLen; t++ {
		for w := k - m + 1; w <= k; w++ {
			if t%w == 0 {
				round[t] = append(round[t], workPkt(w))
			}
		}
	}

	thresholds := make([]int, k)
	thresholds[0] = b - 2*m
	for w := k - m + 1; w <= k; w++ {
		thresholds[w-1] = 2
	}

	beta := hmath.HarmonicRange(k-m+1, k)
	fm, fb := float64(m), float64(b)
	predicted := 1 + ((fm-1)/fm-fm/fb)/(1/fm+(1-fm/fb)*beta)
	return Construction{
		ID:              "thm4",
		Theorem:         "Theorem 4",
		Statement:       "LQD is at least (√k − o(√k))-competitive",
		Cfg:             contiguousCfg(k, b),
		Policy:          policy.LQD{},
		Opt:             policy.StaticThreshold{Label: "OPT(script)", T: thresholds},
		Round:           round,
		Warmup:          p.Warmup,
		Rounds:          p.Rounds,
		Predicted:       predicted,
		Asymptotic:      "√k",
		AsymptoticValue: math.Sqrt(float64(k)),
	}, nil
}

// Theorem5 builds the BPD counterexample: a full set of works arrives
// every slot, BPD hoards unit-work packets and serves one port, while
// OPT partitions the buffer and serves all k ports for an H_k-fold gain.
func Theorem5(p Params) (Construction, error) {
	p = p.withDefaults(10, 0, 3, 1)
	k := p.K
	if k < 2 {
		return Construction{}, fmt.Errorf("adversary: theorem 5 needs k >= 2, got %d", k)
	}
	if p.B == 0 {
		p.B = 2 * k * (k + 1) // comfortably above the theorem's B >= k(k+1)/2
	}
	b := p.B
	roundLen := 20 * k

	round := make(traffic.Trace, roundLen)
	var first []pkt.Packet
	for w := 1; w <= k; w++ {
		first = append(first, pkt.Burst(workPkt(w), b)...)
	}
	round[0] = first
	refill := make([]pkt.Packet, 0, 2*k)
	for w := 1; w <= k; w++ {
		refill = append(refill, workPkt(w), workPkt(w))
	}
	for t := 1; t < roundLen; t++ {
		round[t] = refill
	}

	thresholds := make([]int, k)
	for i := range thresholds {
		thresholds[i] = b / k
	}

	return Construction{
		ID:              "thm5",
		Theorem:         "Theorem 5",
		Statement:       "BPD is at least (ln k + γ)-competitive",
		Cfg:             contiguousCfg(k, b),
		Policy:          policy.BPD{},
		Opt:             policy.StaticThreshold{Label: "OPT(script)", T: thresholds},
		Round:           round,
		Warmup:          p.Warmup,
		Rounds:          p.Rounds,
		Predicted:       hmath.Harmonic(k),
		Asymptotic:      "ln k + γ",
		AsymptoticValue: math.Log(float64(k)) + hmath.EulerGamma,
	}, nil
}

// Theorem6 builds the LWD counterexample on works {1,2,3,6}: LWD
// balances total work and keeps only B/2 unit-work packets where OPT
// keeps B-3, costing a 4/3 − 6/B factor.
func Theorem6(p Params) (Construction, error) {
	p = p.withDefaults(6, 1200, 3, 2)
	if p.K != 6 {
		return Construction{}, fmt.Errorf("adversary: theorem 6 is defined for k = 6, got %d", p.K)
	}
	b := p.B - p.B%12 // the construction divides B by 4, 6 and 12
	if b < 48 {
		return Construction{}, fmt.Errorf("adversary: theorem 6 needs B >= 48, got %d", p.B)
	}
	works := []int{1, 2, 3, 6}
	cfg := core.Config{
		Model:    core.ModelProcessing,
		Ports:    4,
		Buffer:   b,
		MaxLabel: 6,
		Speedup:  1,
		PortWork: works,
	}
	roundLen := b

	round := make(traffic.Trace, roundLen)
	round[0] = pkt.Concat(
		pkt.Burst(pkt.NewWork(0, 1), b),
		pkt.Burst(pkt.NewWork(1, 2), b/4),
		pkt.Burst(pkt.NewWork(2, 3), b/6),
		pkt.Burst(pkt.NewWork(3, 6), b/12),
	)
	for t := 1; t < roundLen; t++ {
		if t%2 == 0 {
			round[t] = append(round[t], pkt.NewWork(1, 2))
		}
		if t%3 == 0 {
			round[t] = append(round[t], pkt.NewWork(2, 3))
		}
		if t%6 == 0 {
			round[t] = append(round[t], pkt.NewWork(3, 6))
		}
	}

	fb := float64(b)
	return Construction{
		ID:              "thm6",
		Theorem:         "Theorem 6",
		Statement:       "LWD is at least (4/3 − 6/B)-competitive",
		Cfg:             cfg,
		Policy:          policy.LWD{},
		Opt:             policy.StaticThreshold{Label: "OPT(script)", T: []int{b - 6, 2, 2, 2}},
		Round:           round,
		Warmup:          p.Warmup,
		Rounds:          p.Rounds,
		Predicted:       (2*fb - 9) / (1.5 * fb),
		Asymptotic:      "4/3 − 6/B",
		AsymptoticValue: 4.0/3 - 6/fb,
	}, nil
}

// acceptedBelow returns how many packets a policy accepting "while
// |Q| < threshold" admits.
func acceptedBelow(threshold float64) int {
	n := int(threshold)
	if float64(n) < threshold {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}
