package adversary

import (
	"math"
	"testing"
)

// TestConstructionsMeetPredictions executes every lower-bound
// construction at its default parameters and checks the measured ratio
// against the proof's finite-parameter prediction. The tolerances are
// generous where the proof's accounting discards lower-order terms
// (Theorems 3, 4, 9) and tight where it is exact (Theorems 1, 2, 5, 6,
// 10, 11).
func TestConstructionsMeetPredictions(t *testing.T) {
	tolerances := map[string]float64{
		"thm1":  0.02,
		"thm2":  0.02,
		"thm3":  0.15,
		"thm4":  0.10,
		"thm5":  0.02,
		"thm6":  0.02,
		"thm9":  0.10,
		"thm10": 0.02,
		"thm11": 0.02,
	}
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 9 {
		t.Fatalf("got %d constructions, want 9", len(all))
	}
	for _, c := range all {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			t.Parallel()
			o, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if o.AlgThroughput <= 0 || o.OptThroughput <= 0 {
				t.Fatalf("degenerate throughputs: %+v", o)
			}
			tol := tolerances[c.ID]
			rel := math.Abs(o.Ratio-o.Predicted) / o.Predicted
			if rel > tol {
				t.Errorf("measured %.3f vs predicted %.3f (rel err %.3f > %.2f)",
					o.Ratio, o.Predicted, rel, tol)
			}
			// Every construction demonstrates a real gap: the attacked
			// policy must lose noticeably to the scripted OPT.
			if o.Ratio < 1.1 {
				t.Errorf("measured ratio %.3f shows no adversarial gap", o.Ratio)
			}
		})
	}
}

// TestConstructionMetadata checks the reporting fields are filled in.
func TestConstructionMetadata(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all {
		if c.Theorem == "" || c.Statement == "" || c.Asymptotic == "" {
			t.Errorf("%s: incomplete metadata %+v", c.ID, c)
		}
		if c.Predicted <= 1 || c.AsymptoticValue <= 0 {
			t.Errorf("%s: implausible bounds %v / %v", c.ID, c.Predicted, c.AsymptoticValue)
		}
		if err := c.Cfg.Validate(); err != nil {
			t.Errorf("%s: invalid config: %v", c.ID, err)
		}
		if len(c.Round) == 0 || c.Rounds < 1 {
			t.Errorf("%s: empty round structure", c.ID)
		}
	}
}

func TestByID(t *testing.T) {
	c, err := ByID("thm5", Params{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cfg.Ports != 6 {
		t.Errorf("K override ignored: ports %d", c.Cfg.Ports)
	}
	if _, err := ByID("thm7", Params{}); err == nil {
		t.Error("unknown id accepted") // Theorem 7 is an upper bound, not a construction
	}
}

func TestParameterValidation(t *testing.T) {
	cases := []struct {
		id string
		p  Params
	}{
		{"thm1", Params{K: 1}},
		{"thm2", Params{K: 1}},
		{"thm3", Params{K: 4}},
		{"thm4", Params{K: 2}},
		{"thm5", Params{K: 1}},
		{"thm6", Params{K: 5}},
		{"thm6", Params{K: 6, B: 24}},
		{"thm9", Params{K: 4}},
		{"thm10", Params{K: 1}},
		{"thm11", Params{K: 7}},
	}
	for _, c := range cases {
		if _, err := ByID(c.id, c.p); err == nil {
			t.Errorf("%s with %+v accepted", c.id, c.p)
		}
	}
}

// TestTheorem4GrowsWithK: the LQD gap must grow roughly like √k — check
// monotonicity over a small ladder (the shape reproduction for the bound
// table).
func TestTheorem4GrowsWithK(t *testing.T) {
	var prev float64
	for _, k := range []int{16, 64, 144} {
		c, err := Theorem4(Params{K: k, B: 40 * int(math.Sqrt(float64(k))), Rounds: 2, Warmup: 2})
		if err != nil {
			t.Fatal(err)
		}
		o, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if o.Ratio <= prev {
			t.Errorf("k=%d: ratio %.3f did not grow (prev %.3f)", k, o.Ratio, prev)
		}
		prev = o.Ratio
	}
}

// TestTheorem5TracksHarmonic: the BPD gap tracks H_k across k.
func TestTheorem5TracksHarmonic(t *testing.T) {
	for _, k := range []int{4, 8, 16} {
		c, err := Theorem5(Params{K: k})
		if err != nil {
			t.Fatal(err)
		}
		o, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(o.Ratio-o.Predicted)/o.Predicted > 0.05 {
			t.Errorf("k=%d: measured %.3f vs H_k %.3f", k, o.Ratio, o.Predicted)
		}
	}
}
