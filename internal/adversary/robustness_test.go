package adversary

import (
	"testing"

	"smbm/internal/core"
	"smbm/internal/policy"
)

// measureOn runs any policy through a construction's warm-up/measure
// protocol and returns scripted-OPT / policy.
func measureOn(t *testing.T, c Construction, p core.Policy) float64 {
	t.Helper()
	swap := c
	swap.Policy = p
	o, err := swap.Run()
	if err != nil {
		t.Fatalf("%s under %s: %v", c.ID, p.Name(), err)
	}
	if o.AlgThroughput == 0 {
		t.Fatalf("%s under %s: zero throughput", c.ID, p.Name())
	}
	return o.Ratio
}

// TestLWDRobustOnEveryAdversary is the flip side of the lower-bound
// table: each construction is tuned to break one specific policy, and
// Theorem 7 promises LWD survives them all. Run LWD through every
// processing-model adversary (including the ones built for NHST, NHDT,
// LQD and BPD) and check it never exceeds 2 against the scripted OPT —
// which is a legal algorithm, so the bound applies.
func TestLWDRobustOnEveryAdversary(t *testing.T) {
	for _, id := range []string{"thm1", "thm2", "thm3", "thm4", "thm5", "thm6"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			c, err := ByID(id, Params{})
			if err != nil {
				t.Fatal(err)
			}
			ratio := measureOn(t, c, policy.LWD{})
			if ratio > 2.0 {
				t.Errorf("LWD measured %.3f > 2 on %s — Theorem 7 violated", ratio, id)
			}
			t.Logf("LWD on %s: %.3f", id, ratio)
		})
	}
}

// TestMRDRobustOnValueAdversaries: MRD (conjectured constant-competitive)
// must stay bounded on the traces built against value-LQD and MVD, where
// those policies collapse to ~2.5 and ~4.5.
func TestMRDRobustOnValueAdversaries(t *testing.T) {
	for _, id := range []string{"thm9", "thm10", "thm11"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			c, err := ByID(id, Params{})
			if err != nil {
				t.Fatal(err)
			}
			ratio := measureOn(t, c, policy.MRD{})
			if ratio > 2.0 {
				t.Errorf("MRD measured %.3f on %s — worth recording against the conjecture", ratio, id)
			}
			t.Logf("MRD on %s: %.3f", id, ratio)
		})
	}
}

// TestAttackedPolicyIsTheSorestLoser: on each construction, the policy
// the proof targets must fare no better than LWD (processing) / MRD
// (value) fare on the same trace — the constructions really do isolate
// the targeted weakness rather than generic congestion.
func TestAttackedPolicyIsTheSorestLoser(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			t.Parallel()
			attacked, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			var reference core.Policy
			if c.Cfg.Model == core.ModelProcessing {
				reference = policy.LWD{}
			} else {
				reference = policy.MRD{}
			}
			refRatio := attacked.Ratio
			if c.Policy.Name() != reference.Name() {
				refRatio = measureOn(t, c, reference)
			}
			if attacked.Ratio < refRatio-1e-9 {
				t.Errorf("attacked %s (%.3f) beat the reference %s (%.3f) on its own adversary",
					c.Policy.Name(), attacked.Ratio, reference.Name(), refRatio)
			}
		})
	}
}
