package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{Width: 20, Height: 6, Title: "demo", XLabel: "k"}
	out := c.Render([]int{1, 2, 4}, map[string][]float64{
		"up":   {1, 2, 3},
		"flat": {2, 2, 2},
	}, []string{"up", "flat"})
	if !strings.Contains(out, "demo") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o flat") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "1 .. k = 4") {
		t.Errorf("missing x range:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// title + 6 canvas rows + axis + range + legend.
	if len(lines) < 9 {
		t.Errorf("only %d lines:\n%s", len(lines), out)
	}
}

func TestRenderOrientation(t *testing.T) {
	// A strictly increasing series must place its last point on a
	// higher row (smaller row index) than its first.
	c := Chart{Width: 30, Height: 10}
	out := c.Render([]int{1, 2, 3}, map[string][]float64{"s": {1, 2, 3}}, nil)
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for r, line := range lines {
		if i := strings.IndexByte(line, '*'); i >= 0 {
			if firstRow == -1 {
				firstRow = r
			}
			lastRow = r
		}
	}
	if firstRow == -1 || firstRow >= lastRow {
		t.Errorf("increasing series not rendered top-to-bottom correctly (rows %d..%d):\n%s", firstRow, lastRow, out)
	}
}

func TestRenderEdgeCases(t *testing.T) {
	c := Chart{}
	if out := c.Render(nil, map[string][]float64{"a": {1}}, nil); out != "" {
		t.Error("empty xs rendered something")
	}
	if out := c.Render([]int{1}, nil, nil); out != "" {
		t.Error("empty series rendered something")
	}
	// All-NaN series: nothing to scale.
	if out := c.Render([]int{1}, map[string][]float64{"a": {math.NaN()}}, nil); out != "" {
		t.Error("all-NaN rendered something")
	}
	// Constant series must not divide by zero.
	out := c.Render([]int{1, 2}, map[string][]float64{"a": {5, 5}}, nil)
	if !strings.Contains(out, "* a") {
		t.Errorf("constant series broke rendering:\n%s", out)
	}
	// Single x value centers.
	out = c.Render([]int{7}, map[string][]float64{"a": {1}}, nil)
	if !strings.Contains(out, "7 .. ") {
		t.Errorf("single-x render:\n%s", out)
	}
}

func TestNormalizeOrder(t *testing.T) {
	series := map[string][]float64{"b": nil, "a": nil, "c": nil}
	got := normalizeOrder(series, []string{"c", "missing", "c"})
	if len(got) != 3 || got[0] != "c" || got[1] != "a" || got[2] != "b" {
		t.Errorf("normalizeOrder = %v", got)
	}
}
