// Package plot renders parameter-sweep series as ASCII line charts, so
// cmd/smbsim can regenerate the paper's figures — not just their data —
// in a terminal.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// markers label series on the canvas, assigned in series order.
const markers = "*o+x#@%&=~"

// Chart renders named series sharing an integer x-axis onto a
// width×height character canvas with a y-axis scale and legend. Series
// order fixes marker assignment; series missing from order are appended
// alphabetically.
type Chart struct {
	// Width and Height are the canvas size in characters (excluding
	// axes); zero values get defaults (64×16).
	Width, Height int
	// Title is printed above the canvas.
	Title string
	// XLabel names the x-axis.
	XLabel string
}

// Render draws the chart. xs must be ascending; each series must have
// len(xs) points (NaN values are skipped).
func (c Chart) Render(xs []int, series map[string][]float64, order []string) string {
	if len(xs) == 0 || len(series) == 0 {
		return ""
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}

	names := normalizeOrder(series, order)

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ys := range series {
		for _, y := range ys {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	if hi == lo {
		hi = lo + 1
	}
	// Pad the range slightly so extreme points do not sit on the frame.
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(i int) int {
		if len(xs) == 1 {
			return width / 2
		}
		return int(float64(i) / float64(len(xs)-1) * float64(width-1))
	}
	row := func(y float64) int {
		frac := (y - lo) / (hi - lo)
		r := int(math.Round((1 - frac) * float64(height-1)))
		return min(max(r, 0), height-1)
	}
	for si, name := range names {
		mark := markers[si%len(markers)]
		ys := series[name]
		for i := range xs {
			if i >= len(ys) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
				continue
			}
			canvas[row(ys[i])][col(i)] = mark
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, line := range canvas {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3f ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.3f ", lo)
		case (height - 1) / 2:
			label = fmt.Sprintf("%7.3f ", (hi+lo)/2)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %s%d .. %s = %d\n", " ", xs[0], c.XLabel, xs[len(xs)-1])
	b.WriteString("        ")
	for si, name := range names {
		if si > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c %s", markers[si%len(markers)], name)
	}
	b.WriteByte('\n')
	return b.String()
}

// normalizeOrder returns order filtered to existing series plus any
// remaining series names sorted.
func normalizeOrder(series map[string][]float64, order []string) []string {
	seen := map[string]bool{}
	var names []string
	for _, n := range order {
		if _, ok := series[n]; ok && !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range series {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(names, rest...)
}
