package faults

import (
	"fmt"
	"math/rand"

	"smbm/internal/core"
	"smbm/internal/obs"
	"smbm/internal/pkt"
	"smbm/internal/sim"
)

// Throttled is the capability a System needs for CoreSlowdown and
// PortBlackout faults: per-port transmission-rate overrides.
// core.Switch, opt.SPQProc and opt.SPQVal all implement it.
type Throttled interface {
	// SetPortSpeedup overrides port i's per-slot speedup (0 = blacked
	// out, negative = restore nominal).
	SetPortSpeedup(i, c int)
	// ResetSpeedups restores every port to its configured speedup.
	ResetSpeedups()
}

// Squeezed is the capability a System needs for BufferSqueeze faults:
// transiently capping the effective shared buffer.
type Squeezed interface {
	// SetBufferLimit caps the effective buffer at b packets (<= 0
	// restores the configured size).
	SetBufferLimit(b int)
}

// amplifySalt separates the burst-amplification RNG stream from the
// schedule-generation streams.
const amplifySalt = 0x5eedfa17

// Injector wraps a sim.System with a deterministic fault schedule. It
// implements sim.System (and sim.BoundedDrainer), so it drops into
// RunTrace, Instance and Sweep unchanged; Name, Stats and Reset
// delegate to the wrapped system so reports are unaffected.
//
// The fault clock advances one tick per Step. Drains — the harness's
// periodic flushouts — do not advance it and run with all overrides
// cleared (a blacked-out port would otherwise never empty); overrides
// are re-applied on the next Step. A zero/empty Spec makes the
// Injector a strict pass-through.
type Injector struct {
	inner    sim.System
	ports    int
	seed     int64
	schedule []Event

	thr Throttled // non-nil iff the spec throttles ports
	sqz Squeezed  // non-nil iff the spec squeezes the buffer

	slot   int64
	next   int     // next schedule index to activate
	active []Event // windows covering the current slot
	dirty  bool    // overrides must be (re)applied before the next Step

	speedups []int // scratch: desired per-port speedup (-1 = nominal)

	// Optional observability recorder (see SetRecorder): counts each
	// fault-window activation in the KindFaultEvent lane, branch-on-nil.
	rec *obs.Recorder
}

var (
	_ sim.System         = (*Injector)(nil)
	_ sim.BoundedDrainer = (*Injector)(nil)
)

// New wraps sys with the spec's fault schedule for a switch with the
// given port count. It fails fast when the spec is invalid or when sys
// lacks a capability the spec needs (Throttled for slowdown/blackout,
// Squeezed for squeeze). Identical (spec, ports, seed) triples yield
// identical schedules regardless of the wrapped system.
func New(sys sim.System, spec Spec, ports int, seed int64) (*Injector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ports < 1 && !spec.Empty() {
		return nil, fmt.Errorf("faults: ports %d < 1", ports)
	}
	in := &Injector{
		inner:    sys,
		ports:    ports,
		seed:     seed,
		schedule: spec.Schedule(ports, seed),
	}
	var needThr, needSqz bool
	for _, f := range spec.Faults {
		switch f.Kind {
		case CoreSlowdown, PortBlackout:
			needThr = true
		case BufferSqueeze:
			needSqz = true
		}
	}
	if needThr {
		thr, ok := sys.(Throttled)
		if !ok {
			return nil, fmt.Errorf("faults: system %s does not support port throttling (Throttled)", sys.Name())
		}
		in.thr = thr
		in.speedups = make([]int, ports)
	}
	if needSqz {
		sqz, ok := sys.(Squeezed)
		if !ok {
			return nil, fmt.Errorf("faults: system %s does not support buffer squeezing (Squeezed)", sys.Name())
		}
		in.sqz = sqz
	}
	return in, nil
}

// Schedule returns a copy of the materialized fault schedule, so a
// degraded run can be explained window by window.
func (in *Injector) Schedule() []Event {
	out := make([]Event, len(in.schedule))
	copy(out, in.schedule)
	return out
}

// SetRecorder attaches an observability recorder (nil detaches),
// implementing obs.Target. Each fault-window activation is counted in
// the KindFaultEvent lane of the window's port (switch-wide windows are
// attributed to port 0) and traced when the recorder traces. The
// attachment propagates to the wrapped system when it records too, so
// one attach at the outermost wrapper instruments the whole stack.
func (in *Injector) SetRecorder(r *obs.Recorder) {
	in.rec = r
	if t, ok := in.inner.(obs.Target); ok {
		t.SetRecorder(r)
	}
}

// Name delegates to the wrapped system, keeping report labels stable.
func (in *Injector) Name() string { return in.inner.Name() }

// Stats delegates to the wrapped system.
func (in *Injector) Stats() core.Stats { return in.inner.Stats() }

// Step applies the fault windows covering the current fault-clock tick
// — port throttles, buffer squeeze, burst amplification — then steps
// the wrapped system and advances the clock.
func (in *Injector) Step(arrivals []pkt.Packet) error {
	t := in.slot
	in.advance(t)
	if in.dirty {
		in.apply()
		in.dirty = false
	}
	err := in.inner.Step(in.amplified(t, arrivals))
	in.slot++
	return err
}

// advance updates the active window set for slot t, marking overrides
// dirty when it changes.
func (in *Injector) advance(t int64) {
	for in.next < len(in.schedule) && in.schedule[in.next].Start <= t {
		e := in.schedule[in.next]
		in.active = append(in.active, e)
		in.next++
		in.dirty = true
		if in.rec != nil {
			port := e.Port
			if port < 0 {
				port = 0 // switch-wide window: attribute to port 0
			}
			in.rec.Inc(port, obs.KindFaultEvent)
			in.rec.Trace(t, port, obs.KindFaultEvent, e.Value, 0)
		}
	}
	kept := in.active[:0]
	for _, e := range in.active {
		if e.End > t {
			kept = append(kept, e)
		} else {
			in.dirty = true
		}
	}
	in.active = kept
}

// apply pushes the active windows' degradations into the wrapped
// system: per-port minimum speedup across slowdowns/blackouts, minimum
// buffer across squeezes.
func (in *Injector) apply() {
	if in.thr != nil {
		for i := range in.speedups {
			in.speedups[i] = -1
		}
		for _, e := range in.active {
			switch e.Kind {
			case CoreSlowdown:
				if in.speedups[e.Port] < 0 || e.Value < in.speedups[e.Port] {
					in.speedups[e.Port] = e.Value
				}
			case PortBlackout:
				in.speedups[e.Port] = 0
			}
		}
		in.thr.ResetSpeedups()
		for i, c := range in.speedups {
			if c >= 0 {
				in.thr.SetPortSpeedup(i, c)
			}
		}
	}
	if in.sqz != nil {
		limit := 0
		for _, e := range in.active {
			if e.Kind == BufferSqueeze && (limit == 0 || e.Value < limit) {
				limit = e.Value
			}
		}
		in.sqz.SetBufferLimit(limit)
	}
}

// amplified returns the burst for slot t under any active BurstAmplify
// window: each packet duplicated factor times, then deterministically
// reordered by a per-slot RNG derived from the injector seed. The
// caller's slice is never mutated.
func (in *Injector) amplified(t int64, arrivals []pkt.Packet) []pkt.Packet {
	factor := 0
	for _, e := range in.active {
		if e.Kind == BurstAmplify && e.Value > factor {
			factor = e.Value
		}
	}
	if factor == 0 || len(arrivals) == 0 {
		return arrivals
	}
	out := make([]pkt.Packet, 0, len(arrivals)*factor)
	for i := 0; i < factor; i++ {
		out = append(out, arrivals...)
	}
	rng := rand.New(rand.NewSource(mix(mix(in.seed, amplifySalt), t)))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// clearOverrides restores the wrapped system to nominal capacity and
// marks the overrides for re-application on the next Step.
func (in *Injector) clearOverrides() {
	if in.thr != nil {
		in.thr.ResetSpeedups()
	}
	if in.sqz != nil {
		in.sqz.SetBufferLimit(0)
	}
	in.dirty = true
}

// Drain clears all overrides (a blacked-out port would never empty)
// and delegates to the wrapped system. The fault clock does not
// advance: flushouts are measurement pauses, not simulated time, so
// every wrapped system sees the same schedule regardless of how long
// its drains take.
func (in *Injector) Drain() int {
	in.clearOverrides()
	return in.inner.Drain()
}

// DrainMax is Drain bounded to max slots, delegating to the wrapped
// system's own bound when it has one.
func (in *Injector) DrainMax(max int) (int, bool) {
	in.clearOverrides()
	if bd, ok := in.inner.(sim.BoundedDrainer); ok {
		return bd.DrainMax(max)
	}
	return in.inner.Drain(), true
}

// Reset restores the wrapped system and rewinds the fault clock to
// slot zero, so a reset run replays the identical schedule.
func (in *Injector) Reset() {
	in.inner.Reset()
	in.slot = 0
	in.next = 0
	in.active = in.active[:0]
	in.dirty = true
}

// Wrapper adapts a spec to sim.Instance.Wrap: every system of the
// instance (the OPT proxy and each policy switch) gets its own injector
// carrying the identical schedule, so all of them degrade in lockstep.
func Wrapper(spec Spec, ports int, seed int64) func(sim.System) (sim.System, error) {
	return func(sys sim.System) (sim.System, error) {
		if spec.Empty() {
			return sys, nil
		}
		return New(sys, spec, ports, seed)
	}
}
