package faults

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

func testCfg() core.Config {
	return core.Config{
		Model:    core.ModelProcessing,
		Ports:    4,
		Buffer:   16,
		MaxLabel: 4,
		Speedup:  2,
		PortWork: []int{1, 2, 3, 4},
	}
}

// testTrace builds a deterministic bursty trace for the testCfg switch.
func testTrace(slots int, seed int64) traffic.Trace {
	rng := rand.New(rand.NewSource(seed))
	works := []int{1, 2, 3, 4}
	tr := make(traffic.Trace, slots)
	for t := range tr {
		n := rng.Intn(8)
		burst := make([]pkt.Packet, 0, n)
		for j := 0; j < n; j++ {
			p := rng.Intn(len(works))
			burst = append(burst, pkt.NewWork(p, works[p]))
		}
		tr[t] = burst
	}
	return tr
}

// bareSystem implements sim.System without any fault capability.
type bareSystem struct{}

func (bareSystem) Name() string            { return "bare" }
func (bareSystem) Step([]pkt.Packet) error { return nil }
func (bareSystem) Drain() int              { return 0 }
func (bareSystem) Stats() core.Stats       { return core.Stats{} }
func (bareSystem) Reset()                  {}

func TestScheduleDeterministic(t *testing.T) {
	spec := CanonicalMix(4, 16, 2, 2_000)
	s1 := spec.Schedule(4, 7)
	s2 := spec.Schedule(4, 7)
	if len(s1) == 0 {
		t.Fatal("canonical mix produced an empty schedule")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("identical (spec, ports, seed) produced different schedules")
	}
	if s3 := spec.Schedule(4, 8); reflect.DeepEqual(s1, s3) {
		t.Error("different seeds produced identical schedules")
	}
	for i, e := range s1 {
		if e.Start < 0 || e.Start >= 2_000 || e.End <= e.Start {
			t.Errorf("event %d has bad window: %v", i, e)
		}
		if i > 0 && e.Start < s1[i-1].Start {
			t.Errorf("schedule not sorted at %d: %v after %v", i, e, s1[i-1])
		}
		switch e.Kind {
		case CoreSlowdown, PortBlackout:
			if e.Port < 0 || e.Port >= 4 {
				t.Errorf("event %d port %d out of range", i, e.Port)
			}
		default:
			if e.Port != -1 {
				t.Errorf("switch-wide event %d has port %d", i, e.Port)
			}
		}
		if got := e.String(); !strings.Contains(got, e.Kind.String()) {
			t.Errorf("event string %q missing kind", got)
		}
	}
}

func TestInjectorDeterministicRuns(t *testing.T) {
	cfg := testCfg()
	spec := CanonicalMix(cfg.Ports, cfg.Buffer, cfg.Speedup, 600)
	tr := testTrace(600, 9)
	run := func() core.Stats {
		sw := core.MustNew(cfg, policy.LWD{})
		in, err := New(sw, spec, cfg.Ports, 42)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := sim.RunTrace(in, tr, 100)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	s1, s2 := run(), run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("two identically faulted runs diverged:\n%+v\n%+v", s1, s2)
	}

	// Reset replays the identical schedule.
	sw := core.MustNew(cfg, policy.LWD{})
	in, err := New(sw, spec, cfg.Ports, 42)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sim.RunTrace(in, tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	in.Reset()
	second, err := sim.RunTrace(in, tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("a reset injector did not replay the identical run")
	}

	// Two injectors with the same parameters expose the same schedule.
	other, err := New(core.MustNew(cfg, policy.Greedy{}), spec, cfg.Ports, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Schedule(), other.Schedule()) {
		t.Error("schedule depends on the wrapped system")
	}
}

func TestZeroSpecIsPassThrough(t *testing.T) {
	cfg := testCfg()
	tr := testTrace(400, 3)

	plain, err := sim.RunTrace(core.MustNew(cfg, policy.LWD{}), tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(core.MustNew(cfg, policy.LWD{}), Spec{}, cfg.Ports, 1)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := sim.RunTrace(in, tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, wrapped) {
		t.Errorf("zero-spec injector changed the run:\nplain   %+v\nwrapped %+v", plain, wrapped)
	}

	// Wrapper short-circuits entirely on an empty spec.
	sys := core.MustNew(cfg, policy.LWD{})
	got, err := Wrapper(Spec{}, cfg.Ports, 1)(sys)
	if err != nil {
		t.Fatal(err)
	}
	if got != sim.System(sys) {
		t.Error("empty-spec Wrapper did not return the system unchanged")
	}
}

func TestInjectorDegradesThroughput(t *testing.T) {
	cfg := testCfg()
	cfg.Buffer = 8
	spec := Spec{
		Horizon: 500,
		Faults: []Fault{
			{Kind: PortBlackout, Port: -1, Period: 100, Duration: 80},
			{Kind: BufferSqueeze, Value: 4, Period: 120, Duration: 90},
		},
	}
	tr := testTrace(500, 11)
	nominal, err := sim.RunTrace(core.MustNew(cfg, policy.Greedy{}), tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(core.MustNew(cfg, policy.Greedy{}), spec, cfg.Ports, 5)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := sim.RunTrace(in, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Transmitted >= nominal.Transmitted {
		t.Errorf("faults did not degrade throughput: faulted %d >= nominal %d",
			faulted.Transmitted, nominal.Transmitted)
	}
	if faulted.Arrived != nominal.Arrived {
		t.Errorf("arrivals changed without amplification: %d vs %d",
			faulted.Arrived, nominal.Arrived)
	}
}

func TestInjectorCapabilityErrors(t *testing.T) {
	throttling := Spec{Horizon: 100, Faults: []Fault{{Kind: PortBlackout, Port: 0, Period: 10, Duration: 5}}}
	if _, err := New(bareSystem{}, throttling, 4, 1); err == nil ||
		!strings.Contains(err.Error(), "Throttled") {
		t.Errorf("blackout on bare system: got %v", err)
	}
	squeezing := Spec{Horizon: 100, Faults: []Fault{{Kind: BufferSqueeze, Value: 4, Period: 10, Duration: 5}}}
	if _, err := New(bareSystem{}, squeezing, 4, 1); err == nil ||
		!strings.Contains(err.Error(), "Squeezed") {
		t.Errorf("squeeze on bare system: got %v", err)
	}
	// Amplification needs no capability.
	amplifying := Spec{Horizon: 100, Faults: []Fault{{Kind: BurstAmplify, Value: 2, Period: 10, Duration: 5}}}
	if _, err := New(bareSystem{}, amplifying, 4, 1); err != nil {
		t.Errorf("amplify on bare system: %v", err)
	}
	// Invalid specs and port counts fail fast.
	bad := Spec{Horizon: 0, Faults: []Fault{{Kind: PortBlackout, Period: 10, Duration: 5}}}
	if _, err := New(bareSystem{}, bad, 4, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := New(bareSystem{}, amplifying, 0, 1); err == nil {
		t.Error("zero ports accepted")
	}
}

func TestAmplifyDuplicatesWithoutMutating(t *testing.T) {
	cfg := testCfg()
	spec := Spec{Horizon: 10, Faults: []Fault{{Kind: BurstAmplify, Value: 3, Period: 10, Duration: 10}}}
	in, err := New(core.MustNew(cfg, policy.Greedy{}), spec, cfg.Ports, 1)
	if err != nil {
		t.Fatal(err)
	}
	burst := []pkt.Packet{pkt.NewWork(0, 1), pkt.NewWork(1, 2)}
	orig := append([]pkt.Packet(nil), burst...)
	if err := in.Step(burst); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(burst, orig) {
		t.Errorf("Step mutated the caller's burst: %v", burst)
	}
	if got := in.Stats().Arrived; got != 6 {
		t.Errorf("amplified arrivals %d, want 6 (= 2 packets x factor 3)", got)
	}
}

func TestDrainClearsOverridesWithoutAdvancingClock(t *testing.T) {
	cfg := testCfg()
	// Port 0 is permanently dark within the horizon.
	spec := Spec{Horizon: 100, Faults: []Fault{{Kind: PortBlackout, Port: 0, Period: 100, Duration: 100}}}
	in, err := New(core.MustNew(cfg, policy.Greedy{}), spec, cfg.Ports, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := in.Step([]pkt.Packet{pkt.NewWork(0, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if tx := in.Stats().Transmitted; tx != 0 {
		t.Fatalf("blacked-out port transmitted %d packets", tx)
	}
	before := in.slot
	if _, drained := in.DrainMax(100); !drained {
		t.Error("drain under blackout did not clear the override")
	}
	if in.slot != before {
		t.Errorf("drain advanced the fault clock from %d to %d", before, in.slot)
	}
	if tx := in.Stats().Transmitted; tx != 3 {
		t.Errorf("drain transmitted %d packets, want 3", tx)
	}
	// The override is re-applied on the next Step.
	if err := in.Step([]pkt.Packet{pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if tx := in.Stats().Transmitted; tx != 3 {
		t.Errorf("blackout not re-applied after drain: transmitted %d", tx)
	}
}

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec("blackout;squeeze:b=32:period=500:dur=100")
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Faults) != 2 {
		t.Fatalf("%d faults, want 2", len(sp.Faults))
	}
	if f := sp.Faults[0]; f.Kind != PortBlackout || f.Port != -1 || f.Period != 1000 || f.Duration != 250 {
		t.Errorf("blackout defaults: %+v", f)
	}
	if f := sp.Faults[1]; f.Kind != BufferSqueeze || f.Value != 32 || f.Period != 500 || f.Duration != 100 {
		t.Errorf("squeeze fields: %+v", f)
	}
	sp, err = ParseSpec("slowdown:port=2:c=0:period=50:dur=10; amplify:factor=4")
	if err != nil {
		t.Fatal(err)
	}
	if f := sp.Faults[0]; f.Kind != CoreSlowdown || f.Port != 2 || f.Value != 0 {
		t.Errorf("slowdown fields: %+v", f)
	}
	if f := sp.Faults[1]; f.Kind != BurstAmplify || f.Value != 4 {
		t.Errorf("amplify fields: %+v", f)
	}

	for _, bad := range []string{
		"",
		";;",
		"bogus",
		"blackout:port",
		"blackout:port=abc",
		"blackout:nope=1",
		"squeeze:c=1",  // c is slowdown-only
		"slowdown:b=2", // b is squeeze-only
		"blackout:factor=2",
		"amplify:factor=0", // fails Fault.validate
		"squeeze:b=0",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
