package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the -faults CLI syntax: semicolon-separated fault
// descriptors, each a kind followed by colon-separated key=value
// fields. Kinds and their fields (all fields optional):
//
//	slowdown:port=2:c=1:period=400:dur=120   // CoreSlowdown to C'=c
//	blackout:port=-1:period=800:dur=60       // PortBlackout (port=-1 rotates)
//	squeeze:b=64:period=600:dur=150          // BufferSqueeze to B'=b
//	amplify:factor=2:period=500:dur=100      // BurstAmplify
//
// Defaults: port=-1 (rotate), period=1000, dur=250, c=1, b=16,
// factor=2. The caller sets Spec.Horizon (the CLI uses the run's slot
// count). Example:
//
//	-faults "blackout;squeeze:b=32:period=500:dur=100"
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return Spec{}, fmt.Errorf("faults: spec %q: %w", part, err)
		}
		sp.Faults = append(sp.Faults, f)
	}
	if sp.Empty() {
		return Spec{}, fmt.Errorf("faults: empty spec %q", s)
	}
	return sp, nil
}

// parseFault parses one "kind:key=value:..." descriptor.
func parseFault(s string) (Fault, error) {
	fields := strings.Split(s, ":")
	f := Fault{Port: -1, Period: 1000, Duration: 250}
	switch fields[0] {
	case "slowdown":
		f.Kind, f.Value = CoreSlowdown, 1
	case "blackout":
		f.Kind = PortBlackout
	case "squeeze":
		f.Kind, f.Value = BufferSqueeze, 16
	case "amplify":
		f.Kind, f.Value = BurstAmplify, 2
	default:
		return Fault{}, fmt.Errorf("unknown fault kind %q (want slowdown, blackout, squeeze or amplify)", fields[0])
	}
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Fault{}, fmt.Errorf("field %q is not key=value", kv)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return Fault{}, fmt.Errorf("field %q: %v", kv, err)
		}
		switch key {
		case "port":
			f.Port = int(n)
		case "period":
			f.Period = n
		case "dur":
			f.Duration = n
		case "c":
			if f.Kind != CoreSlowdown {
				return Fault{}, fmt.Errorf("field c is only valid for slowdown")
			}
			f.Value = int(n)
		case "b":
			if f.Kind != BufferSqueeze {
				return Fault{}, fmt.Errorf("field b is only valid for squeeze")
			}
			f.Value = int(n)
		case "factor":
			if f.Kind != BurstAmplify {
				return Fault{}, fmt.Errorf("field factor is only valid for amplify")
			}
			f.Value = int(n)
		default:
			return Fault{}, fmt.Errorf("unknown field %q", key)
		}
	}
	if err := f.validate(); err != nil {
		return Fault{}, err
	}
	return f, nil
}
