// Package faults provides deterministic, seeded fault injection for the
// simulation harness: reproducible schedules of core slowdowns, port
// blackouts, buffer squeezes and arrival-burst amplification that wrap
// any sim.System. The competitive analysis of the paper assumes a
// nominal switch — fixed B, constant speedup C, every port transmitting
// — and this package answers the sensitivity question the LQD line of
// work probes: how gracefully do LWD/LQD/threshold policies degrade off
// that nominal point?
//
// Two properties keep degraded ratios meaningful:
//
//   - Determinism: the same (Spec, ports, seed) always produces a
//     byte-identical fault schedule, introspectable via Schedule(), so
//     any degraded run can be explained and replayed.
//   - Symmetry: the policy under test and the OPT proxy are wrapped
//     with identical schedules (see sim.Instance.Wrap), so both sides
//     of the empirical ratio see the same degradations.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Kind enumerates the fault processes. Values start at 1 so the zero
// value is invalid and cannot be used by accident.
type Kind int

// Enum of fault kinds.
const (
	// CoreSlowdown drops a port's effective speedup to the fault's
	// Value for the window — a degraded processing core.
	CoreSlowdown Kind = iota + 1
	// PortBlackout stops a port from transmitting for the window — a
	// dead link or stalled core.
	PortBlackout
	// BufferSqueeze transiently caps the effective shared buffer at
	// the fault's Value, forcing push-out policies to evict via their
	// own rule and non-push-out policies to tail-drop — reclaimed
	// memory.
	BufferSqueeze
	// BurstAmplify duplicates every packet of a slot's arrival burst
	// Value times and reorders the burst deterministically — replay
	// and reordering upstream of the switch.
	BurstAmplify
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CoreSlowdown:
		return "slowdown"
	case PortBlackout:
		return "blackout"
	case BufferSqueeze:
		return "squeeze"
	case BurstAmplify:
		return "amplify"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// portScoped reports whether the kind targets a single port.
func (k Kind) portScoped() bool { return k == CoreSlowdown || k == PortBlackout }

// Fault describes one recurring fault process: within every Period
// slots, one window of Duration slots is placed uniformly at random
// (seeded, hence reproducibly).
type Fault struct {
	// Kind selects the fault process.
	Kind Kind
	// Port targets one port for CoreSlowdown/PortBlackout; a negative
	// Port draws a (seeded) port per window, rotating the fault across
	// the switch. Ignored by BufferSqueeze and BurstAmplify.
	Port int
	// Value is kind-specific: the degraded speedup C' (CoreSlowdown,
	// >= 0), the squeezed buffer B' (BufferSqueeze, >= 1), or the
	// duplication factor (BurstAmplify, >= 1; 1 reorders without
	// duplicating). Unused by PortBlackout.
	Value int
	// Period is the recurrence interval in slots (>= 1).
	Period int64
	// Duration is the window length in slots (>= 1).
	Duration int64
}

// String renders the fault in ParseSpec's descriptor syntax, with every
// field explicit so equal renderings mean equal processes — the
// canonical form checkpoint fingerprints hash.
func (f Fault) String() string {
	var b strings.Builder
	b.WriteString(f.Kind.String())
	if f.Kind.portScoped() {
		fmt.Fprintf(&b, ":port=%d", f.Port)
	}
	switch f.Kind {
	case CoreSlowdown:
		fmt.Fprintf(&b, ":c=%d", f.Value)
	case BufferSqueeze:
		fmt.Fprintf(&b, ":b=%d", f.Value)
	case BurstAmplify:
		fmt.Fprintf(&b, ":factor=%d", f.Value)
	}
	fmt.Fprintf(&b, ":period=%d:dur=%d", f.Period, f.Duration)
	return b.String()
}

// validate checks one fault process.
func (f Fault) validate() error {
	switch f.Kind {
	case CoreSlowdown:
		if f.Value < 0 {
			return fmt.Errorf("faults: slowdown speedup %d < 0", f.Value)
		}
	case PortBlackout:
		// no Value.
	case BufferSqueeze:
		if f.Value < 1 {
			return fmt.Errorf("faults: squeeze buffer %d < 1", f.Value)
		}
	case BurstAmplify:
		if f.Value < 1 {
			return fmt.Errorf("faults: amplify factor %d < 1", f.Value)
		}
	default:
		return fmt.Errorf("faults: unknown kind %d", int(f.Kind))
	}
	if f.Period < 1 {
		return fmt.Errorf("faults: %s period %d < 1", f.Kind, f.Period)
	}
	if f.Duration < 1 {
		return fmt.Errorf("faults: %s duration %d < 1", f.Kind, f.Duration)
	}
	if f.Port < -1 {
		return fmt.Errorf("faults: %s port %d < -1", f.Kind, f.Port)
	}
	return nil
}

// Spec is a composable fault plan: any number of fault processes over a
// common horizon. The zero Spec injects nothing and wraps any system as
// a strict pass-through.
type Spec struct {
	// Horizon is the number of slots the fault clock covers; windows
	// are drawn per period within it. Runs longer than Horizon see no
	// faults past it; drains never advance the fault clock.
	Horizon int64
	// Faults lists the concurrent fault processes; their windows may
	// overlap (the most degraded value wins per slot).
	Faults []Fault
}

// Empty reports whether the spec injects no faults at all.
func (sp Spec) Empty() bool { return len(sp.Faults) == 0 }

// String renders the spec canonically: the faults in ParseSpec syntax
// joined by ";" with the horizon appended, or "none" when empty. Equal
// strings mean equal specs, so sweep checkpoint fingerprints embed it
// in their cell-config digest.
func (sp Spec) String() string {
	if sp.Empty() {
		return "none"
	}
	parts := make([]string, 0, len(sp.Faults))
	for _, f := range sp.Faults {
		parts = append(parts, f.String())
	}
	return fmt.Sprintf("%s@horizon=%d", strings.Join(parts, ";"), sp.Horizon)
}

// Validate checks the spec.
func (sp Spec) Validate() error {
	if sp.Empty() {
		return nil
	}
	if sp.Horizon < 1 {
		return fmt.Errorf("faults: horizon %d < 1", sp.Horizon)
	}
	for i, f := range sp.Faults {
		if err := f.validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// Event is one concrete fault window of a generated schedule, active on
// slots in [Start, End).
type Event struct {
	// Kind is the fault process that generated the window.
	Kind Kind
	// Port is the affected port, or -1 for switch-wide kinds.
	Port int
	// Start and End delimit the active slots, half-open.
	Start, End int64
	// Value carries the kind-specific magnitude (see Fault.Value).
	Value int
}

// String renders the event compactly for logs and reports.
func (e Event) String() string {
	if e.Port >= 0 {
		return fmt.Sprintf("%s(port=%d,v=%d)@[%d,%d)", e.Kind, e.Port, e.Value, e.Start, e.End)
	}
	return fmt.Sprintf("%s(v=%d)@[%d,%d)", e.Kind, e.Value, e.Start, e.End)
}

// Schedule materializes the spec's full fault schedule for a switch
// with the given port count. Identical (spec, ports, seed) triples
// yield byte-identical schedules: every random draw comes from a
// per-fault RNG seeded by mixing seed with the fault's index.
func (sp Spec) Schedule(ports int, seed int64) []Event {
	var events []Event
	for fi, f := range sp.Faults {
		rng := rand.New(rand.NewSource(mix(seed, int64(fi))))
		for start := int64(0); start < sp.Horizon; start += f.Period {
			// Draw unconditionally so the stream is index-stable.
			var off int64
			if f.Period > f.Duration {
				off = rng.Int63n(f.Period - f.Duration + 1)
			}
			port := -1
			if f.Kind.portScoped() {
				port = f.Port
				if port < 0 {
					port = rng.Intn(ports)
				}
			}
			ws := start + off
			if ws >= sp.Horizon {
				continue
			}
			events = append(events, Event{
				Kind:  f.Kind,
				Port:  port,
				Start: ws,
				End:   ws + f.Duration,
				Value: f.Value,
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })
	return events
}

// CanonicalMix returns the benchmark fault mix used by the "faults"
// experiment panel and DegradationReport: a rotating core slowdown to
// half speed, a rotating port blackout, a squeeze to a quarter of the
// buffer, and 2x burst amplification — one of everything, at a cadence
// that keeps roughly a third of the run degraded.
func CanonicalMix(ports, buffer, speedup int, horizon int64) Spec {
	slow := speedup / 2
	if slow < 1 {
		slow = 1
	}
	squeezed := buffer / 4
	if squeezed < ports {
		squeezed = ports
	}
	return Spec{
		Horizon: horizon,
		Faults: []Fault{
			{Kind: CoreSlowdown, Port: -1, Value: slow, Period: 400, Duration: 120},
			{Kind: PortBlackout, Port: -1, Period: 800, Duration: 60},
			{Kind: BufferSqueeze, Value: squeezed, Period: 600, Duration: 150},
			{Kind: BurstAmplify, Value: 2, Period: 500, Duration: 100},
		},
	}
}

// mix derives a well-spread RNG seed from a base seed and a salt
// (splitmix64 finalizer).
func mix(seed, salt int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(salt+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
