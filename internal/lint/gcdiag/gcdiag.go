// Package gcdiag runs the Go compiler's escape-analysis and inlining
// diagnostics (`go build -gcflags=-m=2`) over one package directory
// and parses them into a position-indexed Report. It is the shared
// substrate of the compiler-verified analyzers: escapecheck consumes
// the heap-escape sites, hotcall the per-call-site inlining record.
//
// The package is always compiled from its explicit file list (the
// `command-line-arguments` pseudo-package), so the same invocation
// works inside the module tree and inside out-of-module linttest
// fixture directories; dependencies resolve through the normal build
// cache, and Go's build cache replays the diagnostic output of an
// unchanged compile, so repeated lint runs after a warm `go build
// ./...` cost milliseconds per package.
//
// The diagnostic text is an unstable compiler interface: the phrases
// matched here ("escapes to heap", "moved to heap", "inlining call
// to") are stable across recent releases but are not covered by the
// Go 1 compatibility promise, and inlining budgets shift between
// releases, so a toolchain upgrade can change which call sites report
// as inlined. DESIGN.md §16 records this sensitivity; the dynamic
// `benchjson -assert-zero-allocs` gate is the release-independent
// cross-check.
package gcdiag

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// A Site is one parsed compiler diagnostic position plus message.
type Site struct {
	// File is the base name of the source file.
	File string
	// Line is the 1-based source line.
	Line int
	// Col is the 1-based source column.
	Col int
	// Text is the diagnostic message after the position prefix.
	Text string
}

// A Report holds one package compile's parsed diagnostics.
type Report struct {
	// Escapes lists every heap-allocation site the escape analysis
	// reported ("… escapes to heap", "moved to heap: x"), deduplicated
	// by position (−m=2 restates each site once per explanation flow).
	Escapes []Site

	// inlined maps "file:line" to the callee names the compiler
	// reported inlining at that line ("inlining call to <name>").
	inlined map[string][]string
}

// InlinedAt reports whether the compiler inlined a call to callee at
// file:line. Matching is by line (the compiler's column for a call
// can differ from the AST's) and by callee base name: the diagnostic
// renders methods as `pkg.(*Recv).Name` or `Recv.Name` and generic
// instantiations as `Name[go.shape…]`, so the callee matches when its
// bare name appears as the final name element of the reported callee.
func (r *Report) InlinedAt(file string, line int, callee string) bool {
	for _, name := range r.inlined[file+":"+strconv.Itoa(line)] {
		if inlinedName(name) == callee {
			return true
		}
	}
	return false
}

// inlinedName extracts the bare function name from a compiler-rendered
// callee: "core.(*Batch).Accept" -> "Accept", "nhstRule.admit" ->
// "admit", "thresholdBatch[go.shape.struct { … }]" -> "thresholdBatch".
func inlinedName(name string) string {
	if i := strings.IndexByte(name, '['); i >= 0 {
		name = name[:i]
	}
	if i := strings.LastIndexByte(name, ')'); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return strings.TrimSpace(name)
}

// cache memoizes one Report per package directory: several analyzers
// (escapecheck, hotcall) consume the same compile, and the driver runs
// them back to back over the same package.
var cache = struct {
	sync.Mutex
	reports map[string]*Report
	errs    map[string]error
}{reports: map[string]*Report{}, errs: map[string]error{}}

// For compiles the named files of dir with -gcflags=-m=2 and returns
// the parsed diagnostics, memoized per directory.
func For(dir string, files []string) (*Report, error) {
	key, err := filepath.Abs(dir)
	if err != nil {
		key = dir
	}
	cache.Lock()
	defer cache.Unlock()
	if r, ok := cache.reports[key]; ok {
		return r, nil
	}
	if err, ok := cache.errs[key]; ok {
		return nil, err
	}
	r, err := compile(dir, files)
	if err != nil {
		cache.errs[key] = err
		return nil, err
	}
	cache.reports[key] = r
	return r, nil
}

// compile runs the diagnostic build and parses its stderr.
func compile(dir string, files []string) (*Report, error) {
	args := append([]string{"build", "-gcflags=-m=2"}, files...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	// go build of a non-main command-line-arguments package writes no
	// artifact; diagnostics arrive on stderr, one position per line.
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("gcdiag: go build -gcflags=-m=2 in %s: %v\n%s", dir, err, out.String())
	}
	return parse(out.String()), nil
}

// parse splits the -m=2 stream into escape sites and inlining records.
func parse(output string) *Report {
	r := &Report{inlined: map[string][]string{}}
	seen := map[string]bool{}
	for _, line := range strings.Split(output, "\n") {
		site, msg, ok := splitDiag(line)
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(msg, "inlining call to "):
			key := site.File + ":" + strconv.Itoa(site.Line)
			r.inlined[key] = append(r.inlined[key], strings.TrimPrefix(msg, "inlining call to "))
		case strings.HasSuffix(msg, "escapes to heap") ||
			strings.HasSuffix(msg, "escapes to heap:") ||
			strings.HasPrefix(msg, "moved to heap:"):
			key := fmt.Sprintf("%s:%d:%d", site.File, site.Line, site.Col)
			if !seen[key] {
				seen[key] = true
				site.Text = strings.TrimSuffix(msg, ":")
				r.Escapes = append(r.Escapes, site)
			}
		}
	}
	return r
}

// splitDiag parses one `path:line:col: message` diagnostic line,
// rejecting the indented -m=2 explanation continuations ("flow: …",
// "from … at …") that restate the same position.
func splitDiag(line string) (Site, string, bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return Site{}, "", false
	}
	l, err1 := strconv.Atoi(parts[1])
	c, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || len(parts[3]) < 2 || parts[3][0] != ' ' {
		return Site{}, "", false
	}
	msg := parts[3][1:]
	if strings.HasPrefix(msg, " ") { // indented continuation line
		return Site{}, "", false
	}
	return Site{File: filepath.Base(parts[0]), Line: l, Col: c}, msg, true
}
