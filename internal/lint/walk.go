package lint

import "go/ast"

// WalkStmts visits every statement reachable from body in source
// order. Each visit receives the statement lists that lexically follow
// the statement, innermost nesting level first — following[0] is the
// remainder of the statement's own list; later entries belong to
// enclosing constructs. Function literals are not descended into: their
// bodies run at an unknowable time, so "followed by" reasoning does not
// extend across them.
func WalkStmts(body *ast.BlockStmt, visit func(s ast.Stmt, following [][]ast.Stmt)) {
	if body == nil {
		return
	}
	walkStmtList(body.List, nil, visit)
}

// walkStmtList visits one statement list with the given outer
// follow-stack.
func walkStmtList(list []ast.Stmt, outer [][]ast.Stmt, visit func(s ast.Stmt, following [][]ast.Stmt)) {
	for i, s := range list {
		following := make([][]ast.Stmt, 0, len(outer)+1)
		following = append(following, list[i+1:])
		following = append(following, outer...)
		visit(s, following)
		descendStmt(s, following, visit)
	}
}

// descendStmt walks the statement lists nested inside s.
func descendStmt(s ast.Stmt, following [][]ast.Stmt, visit func(s ast.Stmt, following [][]ast.Stmt)) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		walkStmtList(s.List, following, visit)
	case *ast.IfStmt:
		walkStmtList(s.Body.List, following, visit)
		if s.Else != nil {
			descendStmt(s.Else, following, visit)
		}
	case *ast.ForStmt:
		walkStmtList(s.Body.List, following, visit)
	case *ast.RangeStmt:
		walkStmtList(s.Body.List, following, visit)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmtList(cc.Body, following, visit)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmtList(cc.Body, following, visit)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkStmtList(cc.Body, following, visit)
			}
		}
	case *ast.LabeledStmt:
		descendStmt(s.Stmt, following, visit)
	}
}
