// Package escapecheck implements the compiler-verified face of the
// hot-path allocation contract: every function whose doc comment
// carries //smb:hotpath is proven heap-allocation-free by the escape
// analysis of the compiler itself, not by pattern-matching source
// constructs. The analyzer is not an AST walker — it compiles the
// package with `go build -gcflags=-m=2` (via gcdiag), collects every
// "escapes to heap" / "moved to heap" site, and reports the ones that
// fall inside a //smb:hotpath function's body span.
//
// This closes the two holes the syntactic hotalloc gate leaves open:
// allocations hotalloc has no pattern for (append growth, string
// concatenation, make with non-constant size, boxing hidden behind
// type inference), and hot functions no benchmark exercises — the
// dynamic `benchjson -assert-zero-allocs` gate only covers the
// benched subset, while every annotated function compiles on every
// build. //smb:alloc-ok <reason> remains the cold-line escape hatch,
// shared with hotalloc.
//
// The compiler's -m output is versioned with the toolchain (DESIGN.md
// §16): inlining budgets and escape precision shift between releases,
// so a toolchain upgrade can surface new sites (escape analysis only
// gets more precise, so accepted code stays accepted; newly flagged
// sites are real allocations that were previously folded elsewhere).
package escapecheck

import (
	"go/ast"
	"path/filepath"

	"smbm/internal/lint"
	"smbm/internal/lint/gcdiag"
)

// Analyzer is the escapecheck analyzer instance.
var Analyzer = &lint.Analyzer{
	Name: "escapecheck",
	Doc: "prove //smb:hotpath functions heap-allocation-free with the " +
		"compiler's own escape analysis (go build -gcflags=-m=2)",
	Run: run,
}

// span is one hot function's source extent.
type span struct {
	file     string // base name
	from, to int    // inclusive line range
	name     string
}

// run applies escapecheck to one package.
func run(pass *lint.Pass) error {
	spans := hotSpans(pass)
	if len(spans) == 0 {
		return nil // nothing hot: skip the compile entirely
	}
	var files []string
	for _, f := range pass.Files {
		files = append(files, filepath.Base(pass.Fset.Position(f.Pos()).Filename))
	}
	report, err := gcdiag.For(pass.Dir, files)
	if err != nil {
		return err
	}
	for _, esc := range report.Escapes {
		fn := containing(spans, esc.File, esc.Line)
		if fn == nil {
			continue // a cold function may allocate freely
		}
		pos := lint.LinePos(pass, esc.File, esc.Line)
		if ann, ok := pass.AnnotationAtLine("alloc-ok", esc.File, esc.Line); ok {
			if ann.Reason == "" {
				pass.Reportf(pos, "//smb:alloc-ok requires a reason explaining why this line is cold")
			}
			continue
		}
		pass.Reportf(pos, "heap allocation in //smb:hotpath function %s: %s (compiler escape analysis)", fn.name, esc.Text)
	}
	return nil
}

// hotSpans indexes every //smb:hotpath function body by file and line
// range.
func hotSpans(pass *lint.Pass) []span {
	var spans []span
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !lint.FuncAnnotated("hotpath", fn) {
				continue
			}
			from := pass.Fset.Position(fn.Pos())
			to := pass.Fset.Position(fn.End())
			spans = append(spans, span{
				file: filepath.Base(from.Filename),
				from: from.Line,
				to:   to.Line,
				name: fn.Name.Name,
			})
		}
	}
	return spans
}

// containing returns the hot span covering file:line, or the zero name
// when the position is cold.
func containing(spans []span, file string, line int) *span {
	for i := range spans {
		s := &spans[i]
		if s.file == file && line >= s.from && line <= s.to {
			return s
		}
	}
	return nil
}
