// Package hotclean is an escapecheck fixture whose hot paths pass:
// stack-only work, a fixed-size buffer threaded in by the caller, and
// an annotated cold exit.
package hotclean

import "errors"

// Sum walks a caller-owned slice without allocating.
//
//smb:hotpath
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Fill writes into a caller-owned buffer.
//
//smb:hotpath
func Fill(buf []int, v int) {
	for i := range buf {
		buf[i] = v
	}
}

// ColdExit exempts a provably cold error branch with a reason.
//
//smb:hotpath
func ColdExit(n int) (int, error) {
	if n < 0 {
		//smb:alloc-ok once-per-run validation exit, not the steady state
		return 0, errors.New("negative input")
	}
	return n * n, nil
}

// Cold allocates freely: it is not annotated.
func Cold(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
