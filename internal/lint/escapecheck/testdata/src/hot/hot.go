// Package hot is an escapecheck fixture: the compiler's own escape
// analysis convicts every heap allocation inside //smb:hotpath
// functions, including the shapes hotalloc has no syntactic pattern
// for (runtime-sized make, string concatenation, address escape).
package hot

// Grow allocates a runtime-sized slice in the hot path.
//
//smb:hotpath
func Grow(n int) []int {
	return make([]int, n) // want `heap allocation in //smb:hotpath function Grow`
}

// Box boxes its argument into an interface on return.
//
//smb:hotpath
func Box(n int) any {
	return n // want `heap allocation in //smb:hotpath function Box`
}

// Leak forces its local to the heap by returning its address.
//
//smb:hotpath
func Leak() *int {
	x := 0 // want `heap allocation in //smb:hotpath function Leak`
	return &x
}

// Concat builds a fresh string in the hot path.
//
//smb:hotpath
func Concat(a, b string) string {
	return a + b // want `heap allocation in //smb:hotpath function Concat`
}

// BadAnnotation exempts an allocation without the mandatory reason.
//
//smb:hotpath
func BadAnnotation(n int) []int {
	//smb:alloc-ok
	return make([]int, n) // want `requires a reason`
}

// Cold is unannotated: the same allocations pass untouched.
func Cold(n int) []int {
	return make([]int, n)
}
