package escapecheck_test

import (
	"path/filepath"
	"strings"
	"testing"

	"smbm/internal/lint/gcdiag"
)

// TestParseGrammar pins the -m=2 message grammar gcdiag depends on
// against a live compile of the flagged fixture. The parser is
// deliberately conservative — unknown phrasings are dropped, which
// degrades escapecheck to missing escapes — so this test is what
// turns a toolchain grammar drift into a loud failure at the version
// bump instead of silent rot.
func TestParseGrammar(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "hot"))
	if err != nil {
		t.Fatal(err)
	}
	report, err := gcdiag.For(dir, []string{"hot.go"})
	if err != nil {
		t.Fatalf("compiling fixture: %v", err)
	}

	// One escape site per conviction shape the fixture stages, all in
	// hot.go. Lines must match the fixture's `// want` lines exactly —
	// that is the positional contract escapecheck builds on.
	wantEscapes := map[int]string{
		11: "escapes to heap", // make([]int, n) in Grow
		18: "escapes to heap", // boxing return in Box
		// The leak convicts twice at the same position — "x escapes to
		// heap" and "moved to heap: x" — and dedup keeps the first, so
		// the shared fragment is what's stable here.
		25: "heap",            // &x leak in Leak
		33: "escapes to heap", // string concatenation in Concat
		41: "escapes to heap", // make([]int, n) in BadAnnotation
		46: "escapes to heap", // make([]int, n) in (cold) Cold
	}
	seen := map[int]bool{}
	for _, esc := range report.Escapes {
		if esc.File != "hot.go" {
			t.Errorf("escape attributed to %s, want hot.go", esc.File)
			continue
		}
		frag, ok := wantEscapes[esc.Line]
		if !ok {
			t.Errorf("unexpected escape site hot.go:%d: %s", esc.Line, esc.Text)
			continue
		}
		if !strings.Contains(esc.Text, frag) {
			t.Errorf("escape at hot.go:%d: text %q does not contain %q", esc.Line, esc.Text, frag)
		}
		seen[esc.Line] = true
	}
	for line := range wantEscapes {
		if !seen[line] {
			t.Errorf("no escape parsed at hot.go:%d — the -m=2 grammar may have drifted", line)
		}
	}
}
