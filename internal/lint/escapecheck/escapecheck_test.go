package escapecheck_test

import (
	"testing"

	"smbm/internal/lint/escapecheck"
	"smbm/internal/lint/linttest"
)

// TestEscapecheck runs the analyzer over one flagged and one clean
// fixture package; the fixtures are compiled with -gcflags=-m=2, so
// the expectations pin the compiler-diagnostic plumbing end to end.
func TestEscapecheck(t *testing.T) {
	linttest.Run(t, "testdata", escapecheck.Analyzer, "hot", "hotclean")
}
