package detmap_test

import (
	"testing"

	"smbm/internal/lint/detmap"
	"smbm/internal/lint/linttest"
)

// TestDetmap runs the analyzer over one flagged engine-named fixture
// and one clean non-engine fixture.
func TestDetmap(t *testing.T) {
	linttest.Run(t, "testdata", detmap.Analyzer, "core", "cli")
}
