// Package detmap implements the determinism analyzer for map
// iteration: engine packages must not range over maps, because Go
// randomizes map iteration order and any order-dependent computation
// would break the bit-identical replay contract the differential tests
// pin (materialized vs streamed vs parallel engines, DESIGN.md §10).
//
// A map range is accepted in exactly two shapes:
//
//   - the sorted-keys idiom: a range whose body only collects the keys
//     into a slice that is sorted (package sort or slices) before any
//     later use;
//   - an explicit //smb:nondet-ok <reason> annotation on the range
//     line (or the line above) recording why iteration order provably
//     cannot leak into results. The reason is mandatory.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"

	"smbm/internal/lint"
)

// Analyzer is the detmap analyzer instance.
var Analyzer = &lint.Analyzer{
	Name: "detmap",
	Doc: "forbid map iteration in engine packages unless keys are sorted " +
		"first or the site is annotated //smb:nondet-ok <reason>",
	Run: run,
}

// run applies detmap to one package.
func run(pass *lint.Pass) error {
	if pass.NeedsTypes() || !lint.EnginePackage(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			lint.WalkStmts(body, func(s ast.Stmt, following [][]ast.Stmt) {
				rs, ok := s.(*ast.RangeStmt)
				if !ok || !isMap(pass.TypeOf(rs.X)) {
					return
				}
				check(pass, rs, following)
			})
		}
	}
	return nil
}

// functionBodies returns every function body in the file: declared
// functions plus function literals (whose bodies WalkStmts does not
// descend into).
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		}
		return true
	})
	return bodies
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// check validates one map range statement.
func check(pass *lint.Pass, rs *ast.RangeStmt, following [][]ast.Stmt) {
	if ann, ok := pass.AnnotationAt("nondet-ok", rs.Pos()); ok {
		if ann.Reason == "" {
			pass.Reportf(rs.Pos(), "//smb:nondet-ok requires a reason explaining why map order cannot leak into results")
		}
		return
	}
	if sortedKeysIdiom(pass, rs, following) {
		return
	}
	if appendsInBody(pass, rs) {
		pass.Reportf(rs.Pos(), "map iteration order leaks into an append in an engine package; collect and sort the keys first, or annotate //smb:nondet-ok <reason>")
		return
	}
	pass.Reportf(rs.Pos(), "non-deterministic map iteration in an engine package; collect and sort the keys first, or annotate //smb:nondet-ok <reason>")
}

// sortedKeysIdiom recognizes the canonical deterministic-iteration
// shape: the body is exactly `keys = append(keys, k)` for the range's
// key variable, and a later statement in scope sorts keys via package
// sort or slices.
func sortedKeysIdiom(pass *lint.Pass, rs *ast.RangeStmt, following [][]ast.Stmt) bool {
	if len(rs.Body.List) != 1 || rs.Value != nil {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst := identObject(pass, assign.Lhs[0])
	if dst == nil {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	if identObject(pass, call.Args[0]) != dst {
		return false
	}
	if identObject(pass, call.Args[1]) == nil || identObject(pass, call.Args[1]) != identObject(pass, rs.Key) {
		return false
	}
	// The collected keys must be sorted somewhere after the loop.
	for _, list := range following {
		for _, stmt := range list {
			if containsSortOf(pass, stmt, dst) {
				return true
			}
		}
	}
	return false
}

// identObject resolves expr to its object when it is a plain
// identifier (use or definition), nil otherwise.
func identObject(pass *lint.Pass, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// containsSortOf reports whether stmt contains a sort/slices call whose
// first argument is the given object.
func containsSortOf(pass *lint.Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
			if identObject(pass, call.Args[0]) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// appendsInBody reports whether the range body calls the append
// builtin — the shape where iteration order leaks directly into slice
// contents.
func appendsInBody(pass *lint.Pass, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "append" {
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
