// Package core is a detmap fixture standing in for an engine package
// (matched by its final import-path element).
package core

import (
	"slices"
	"sort"
)

// Flagged ranges over a map directly: iteration order is randomized.
func Flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want `non-deterministic map iteration`
		total += v
	}
	return total
}

// FlaggedAppend leaks iteration order into slice contents.
func FlaggedAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `order leaks into an append`
		out = append(out, k+"!")
	}
	return out
}

// CollectNoSort collects keys but never sorts them, so the idiom does
// not apply.
func CollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `order leaks into an append`
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the canonical deterministic iteration idiom and is
// accepted without annotation.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortedSlices is the same idiom via package slices.
func SortedSlices(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		_ = m[k]
	}
	return keys
}

// HelperSorted hides the sort behind a helper, so the idiom is not
// recognized and the loop must be annotated or rewritten.
func HelperSorted(m map[int]int) []int {
	var keys []int
	for k := range m { // want `order leaks into an append`
		keys = append(keys, k)
	}
	sortInts(keys)
	return keys
}

// sortInts sorts through an extra call layer the analyzer does not
// chase.
func sortInts(ks []int) { sort.Ints(ks) }

// Annotated documents why iteration order cannot leak into results.
func Annotated(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	//smb:nondet-ok map-to-map copy; destination order is irrelevant
	for k, v := range m {
		out[k] = v
	}
	return out
}

// AnnotatedTrailing uses the trailing-comment placement.
func AnnotatedTrailing(m map[string]int) int {
	n := 0
	for range m { //smb:nondet-ok pure count; order cannot matter
		n++
	}
	return n
}

// AnnotatedNoReason is missing the mandatory reason text.
func AnnotatedNoReason(m map[string]int) int {
	n := 0
	//smb:nondet-ok
	for range m { // want `requires a reason`
		n++
	}
	return n
}

// InClosure is flagged inside function literals too.
func InClosure(m map[string]int) func() int {
	return func() int {
		total := 0
		for _, v := range m { // want `non-deterministic map iteration`
			total += v
		}
		return total
	}
}
