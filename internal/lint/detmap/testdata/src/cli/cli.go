// Package cli is a detmap fixture for a non-engine package: map
// iteration is allowed outside the deterministic engine set.
package cli

// Report may iterate maps freely for human-facing output.
func Report(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
