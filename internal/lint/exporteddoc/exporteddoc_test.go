package exporteddoc_test

import (
	"testing"

	"smbm/internal/lint/exporteddoc"
	"smbm/internal/lint/linttest"
)

// TestExporteddoc runs the analyzer over one flagged and one clean
// fixture package.
func TestExporteddoc(t *testing.T) {
	linttest.Run(t, "testdata", exporteddoc.Analyzer, "undoc", "doc")
}
