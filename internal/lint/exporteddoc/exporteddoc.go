// Package exporteddoc enforces the "doc comments on every public
// item" deliverable mechanically: every exported function, type,
// struct field and value declaration must carry a doc comment (or, for
// specs and fields, a trailing line comment; for specs inside a
// documented group declaration, the group doc suffices). It is the
// analyzer form of the original doclint test walker and needs no type
// information, so it also runs in syntax-only mode.
package exporteddoc

import (
	"go/ast"

	"smbm/internal/lint"
)

// Analyzer is the exporteddoc analyzer instance.
var Analyzer = &lint.Analyzer{
	Name: "exporteddoc",
	Doc: "every exported function, type, struct field and value must " +
		"carry a doc comment",
	Run: run,
}

// run applies exporteddoc to one package.
func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					pass.Reportf(d.Pos(), "exported func %s lacks a doc comment", d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(pass, d)
			}
		}
	}
	return nil
}

// checkGenDecl checks the specs of one const/var/type declaration. A
// doc comment on the group covers all of its specs.
func checkGenDecl(pass *lint.Pass, d *ast.GenDecl) {
	groupDocumented := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDocumented && s.Doc == nil && s.Comment == nil {
				pass.Reportf(s.Pos(), "exported type %s lacks a doc comment", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				checkFields(pass, s.Name.Name, st)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && !groupDocumented && s.Doc == nil && s.Comment == nil {
					pass.Reportf(n.Pos(), "exported value %s lacks a doc comment", n.Name)
				}
			}
		}
	}
}

// checkFields checks the exported fields of one exported struct type.
func checkFields(pass *lint.Pass, typeName string, st *ast.StructType) {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.IsExported() && f.Doc == nil && f.Comment == nil {
				pass.Reportf(n.Pos(), "exported field %s.%s lacks a doc comment", typeName, n.Name)
			}
		}
	}
}
