// Package undoc is an exporteddoc fixture: every kind of undocumented
// exported declaration is flagged.
package undoc

func Exported() {} // want `exported func Exported lacks a doc comment`

// documented is unexported: no doc needed, but it has one anyway.
func documented() {}

type Config struct { // want `exported type Config lacks a doc comment`
	// Size is documented.
	Size int
	Name string // want `exported field Config.Name lacks a doc comment`
	note string
}

var Default = Config{} // want `exported value Default lacks a doc comment`

const Limit = 8 // want `exported value Limit lacks a doc comment`
