// Package doc is an exporteddoc fixture whose exported declarations
// are all documented, through every accepted channel.
package doc

// Exported has a doc comment.
func Exported() {}

func unexported() {}

// Config is documented; its exported fields are too.
type Config struct {
	// Size is documented above.
	Size int
	Name string // Name is documented by a trailing comment.
	note string
}

// Grouped declarations share the group doc.
var (
	Default = Config{}
	Limit   = 8
)

type (
	ID    int // ID is documented by a line comment.
	local int
)
