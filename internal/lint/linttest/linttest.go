// Package linttest runs a lint.Analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools analysistest contract: each `// want "regexp"`
// comment expects exactly one diagnostic on its line whose message
// matches the regexp, every diagnostic must be expected, and every
// expectation must be met. Fixtures live under
// <testdata>/src/<pkg>/*.go; the package's import path is its bare
// directory name, so fixtures named after engine packages (core,
// sim, …) exercise the package-scope predicates.
package linttest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"smbm/internal/lint"
)

// expectation is one parsed // want entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// wantRx extracts the payload of a // want comment.
var wantRx = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads each fixture package under testdata/src, applies the
// analyzer, and reports any mismatch between produced diagnostics and
// // want expectations as test errors.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := lint.LoadDir(dir, name)
		if err != nil {
			t.Errorf("loading fixture %s: %v", name, err)
			continue
		}
		stripWantAttachments(pkg)
		diags, err := lint.RunAnalyzer(a, pkg)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, name, err)
			continue
		}
		wants, err := parseWants(pkg)
		if err != nil {
			t.Errorf("fixture %s: %v", name, err)
			continue
		}
		for _, d := range diags {
			if !consume(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", name, d)
			}
		}
		for _, w := range wants {
			if !w.met {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
					name, filepath.Base(w.file), w.line, w.re)
			}
		}
	}
}

// stripWantAttachments detaches // want comments from the Doc and
// Comment fields of declarations and fields, so an expectation written
// as a trailing comment is metadata rather than source: without this, a
// `// want` on an undocumented field would itself satisfy analyzers
// (exporteddoc) that accept trailing comments as documentation.
func stripWantAttachments(pkg *lint.Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				n.Doc, n.Comment = stripWant(n.Doc), stripWant(n.Comment)
			case *ast.ValueSpec:
				n.Doc, n.Comment = stripWant(n.Doc), stripWant(n.Comment)
			case *ast.TypeSpec:
				n.Doc, n.Comment = stripWant(n.Doc), stripWant(n.Comment)
			case *ast.GenDecl:
				n.Doc = stripWant(n.Doc)
			case *ast.FuncDecl:
				n.Doc = stripWant(n.Doc)
			}
			return true
		})
	}
}

// stripWant nils out a comment group consisting solely of // want
// comments.
func stripWant(cg *ast.CommentGroup) *ast.CommentGroup {
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		if !wantRx.MatchString(c.Text) {
			return cg
		}
	}
	return nil
}

// consume marks the first unmet expectation matching the diagnostic.
func consume(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.met || w.line != line || filepath.Base(w.file) != filepath.Base(file) {
			continue
		}
		if w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}

// parseWants collects the // want expectations of every fixture file.
func parseWants(pkg *lint.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", filepath.Base(pos.Filename), pos.Line, err)
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %w", filepath.Base(pos.Filename), pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitPatterns parses a sequence of Go-quoted or backquoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want patterns must be quoted strings, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		lit := s[:end+2]
		pat, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %w", lit, err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}
