// Package leaseclock implements the wall-clock containment analyzer
// for the lease-ledger packages: lease deadlines and expiry are
// wall-clock by design (a crashed worker's lease must expire in real
// time, across machines), but that is the only legitimate reason for a
// lease package to observe real time. Inside a lease package,
// time.Now, time.Since and time.Until may appear only in functions
// whose doc comment carries //smb:leaseclock <reason> — the reason is
// mandatory — so every wall-clock read is a deliberate, documented
// deadline primitive and everything else stays on the injected clock.
//
// The wallclock analyzer delegates lease packages to this one; outside
// lease packages this analyzer is silent.
package leaseclock

import (
	"go/ast"
	"go/types"
	"strings"

	"smbm/internal/lint"
)

// Analyzer is the leaseclock analyzer instance.
var Analyzer = &lint.Analyzer{
	Name: "leaseclock",
	Doc: "restrict time.Now/time.Since/time.Until in lease packages to " +
		"functions annotated //smb:leaseclock <reason>",
	Run: run,
}

// annotation is the doc-comment tag that licenses a wall-clock read.
const annotation = "leaseclock"

// forbidden names the time package's wall-clock reads.
var forbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// annotated reports whether fn's doc comment carries //smb:leaseclock,
// and whether a reason follows the tag.
func annotated(fn *ast.FuncDecl) (tagged, hasReason bool) {
	if fn == nil || fn.Doc == nil {
		return false, false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		tag := "smb:" + annotation
		if text != tag && !strings.HasPrefix(text, tag+" ") {
			continue
		}
		reason := strings.TrimSpace(strings.TrimPrefix(text, tag))
		return true, reason != ""
	}
	return false, false
}

// run applies leaseclock to one package.
func run(pass *lint.Pass) error {
	if pass.NeedsTypes() || !lint.LeaseClockPackage(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, _ := decl.(*ast.FuncDecl)
			licensed, hasReason := annotated(fn)
			if licensed && !hasReason {
				pass.Reportf(fn.Pos(), "//smb:%s needs a reason: say why this function must read the wall clock", annotation)
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || f.Pkg() == nil || f.Pkg().Path() != "time" || !forbidden[f.Name()] {
					return true
				}
				if !licensed {
					pass.Reportf(call.Pos(), "time.%s reads the wall clock outside an //smb:%s function; lease deadline code must be annotated, everything else must use the injected clock", f.Name(), annotation)
				}
				return true
			})
		}
	}
	return nil
}
