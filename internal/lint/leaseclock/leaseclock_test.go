package leaseclock_test

import (
	"testing"

	"smbm/internal/lint/leaseclock"
	"smbm/internal/lint/linttest"
)

// TestLeaseClock runs the analyzer over one lease-named fixture mixing
// licensed, unlicensed and reason-less wall-clock reads, and one
// non-lease fixture where the analyzer must stay silent.
func TestLeaseClock(t *testing.T) {
	linttest.Run(t, "testdata", leaseclock.Analyzer, "lease", "sim")
}
