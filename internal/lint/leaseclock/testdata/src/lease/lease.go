// Package lease is a leaseclock fixture standing in for a lease-ledger
// package: wall-clock reads are legal only inside functions annotated
// //smb:leaseclock <reason>.
package lease

import "time"

// wallNow is the licensed deadline primitive and passes untouched.
//
//smb:leaseclock lease deadlines and expiry are wall-clock by design
func wallNow() time.Time { return time.Now() }

// deadline derives a lease deadline from the licensed clock: duration
// arithmetic on a time value is fine, only raw clock reads are not.
func deadline(ttl time.Duration) time.Time { return wallNow().Add(ttl) }

// sneakyScan reads the wall clock without a license and is flagged.
func sneakyScan() time.Time {
	return time.Now() // want `time.Now reads the wall clock outside an //smb:leaseclock function`
}

// remaining smuggles in two more unlicensed reads and is flagged twice.
func remaining(d time.Time) time.Duration {
	_ = time.Since(d)    // want `time.Since reads the wall clock outside an //smb:leaseclock function`
	return time.Until(d) // want `time.Until reads the wall clock outside an //smb:leaseclock function`
}

// lazyNow carries the tag but no reason and is flagged for it.
//
//smb:leaseclock
func lazyNow() time.Time { // want `//smb:leaseclock needs a reason`
	return time.Now()
}
