// Package sim is a leaseclock fixture standing in for a non-lease
// package: leaseclock is silent here — the wallclock analyzer owns
// everything outside the lease-ledger packages.
package sim

import "time"

// Run reads the wall clock; wallclock flags this, leaseclock does not.
func Run() time.Duration {
	start := time.Now()
	return time.Since(start)
}
