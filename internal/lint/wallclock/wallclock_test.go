package wallclock_test

import (
	"testing"

	"smbm/internal/lint/linttest"
	"smbm/internal/lint/wallclock"
)

// TestWallclock runs the analyzer over one flagged engine-named
// fixture and one allow-listed fixture.
func TestWallclock(t *testing.T) {
	linttest.Run(t, "testdata", wallclock.Analyzer, "sim", "cli")
}
