// Package sim is a wallclock fixture standing in for an engine
// package: wall-clock reads are flagged.
package sim

import "time"

// Run reads the wall clock twice and is flagged twice.
func Run() time.Duration {
	start := time.Now() // want `time.Now reads the wall clock`
	work()
	return time.Since(start) // want `time.Since reads the wall clock`
}

// Deadline derives a timeout and is flagged.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time.Until reads the wall clock`
}

// work burns deterministic time: duration values and arithmetic on
// them are fine, only clock reads are not.
func work() time.Duration {
	d := 3 * time.Second
	return d.Round(time.Millisecond)
}
