// Package cli is a wallclock fixture for an allow-listed reporting
// package: wall-clock reads are the point here and pass untouched.
package cli

import "time"

// Progress times an operation for operator-facing output.
func Progress() time.Duration {
	start := time.Now()
	return time.Since(start)
}
