// Package wallclock implements the determinism analyzer for real-time
// reads: simulation results must be pure functions of configuration
// and seed, so nothing outside the allow-listed reporting packages
// (cli, report, benchjson — where wall-clock timing is the point) may
// call time.Now, time.Since or time.Until. Lease-ledger packages are
// delegated to the leaseclock analyzer, which permits wall-clock reads
// only inside //smb:leaseclock-annotated deadline functions.
package wallclock

import (
	"go/ast"
	"go/types"

	"smbm/internal/lint"
)

// Analyzer is the wallclock analyzer instance.
var Analyzer = &lint.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/time.Until outside the allow-listed " +
		"reporting packages (cli, report, benchjson)",
	Run: run,
}

// forbidden names the time package's wall-clock reads.
var forbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// run applies wallclock to one package.
func run(pass *lint.Pass) error {
	if pass.NeedsTypes() || lint.WallclockExempt(pass.Path) || lint.LeaseClockPackage(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !forbidden[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(), "time.%s reads the wall clock in deterministic code; wall-clock timing belongs in cli/report/benchjson", fn.Name())
			return true
		})
	}
	return nil
}
