package suite_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"smbm/internal/lint/suite"
)

// wantRe matches a linttest expectation comment. A fixture directory
// containing at least one is a "flagged" fixture; one containing none
// is a "clean" fixture.
var wantRe = regexp.MustCompile(`// want ` + "`")

// TestEveryAnalyzerHasFixtures enforces the fixture contract on the
// roster itself: each registered analyzer ships a testdata/src tree
// with at least one flagged fixture package (so the diagnostic
// actually fires) and at least one clean fixture package (so the
// analyzer's negative space is pinned too). Registering an analyzer
// without both is how silent regressions start.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	for _, a := range suite.Analyzers() {
		root := filepath.Join("..", a.Name, "testdata", "src")
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Errorf("analyzer %s: no fixture tree at %s: %v", a.Name, root, err)
			continue
		}
		flagged, clean := 0, 0
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			has, err := dirHasWant(filepath.Join(root, e.Name()))
			if err != nil {
				t.Errorf("analyzer %s: reading fixture %s: %v", a.Name, e.Name(), err)
				continue
			}
			if has {
				flagged++
			} else {
				clean++
			}
		}
		if flagged == 0 {
			t.Errorf("analyzer %s: no flagged fixture (a package with // want expectations) under %s", a.Name, root)
		}
		if clean == 0 {
			t.Errorf("analyzer %s: no clean fixture (a package with zero // want expectations) under %s", a.Name, root)
		}
	}
}

// TestRosterSortedAndUnique pins the roster's determinism contract:
// alphabetical order, no duplicate names.
func TestRosterSortedAndUnique(t *testing.T) {
	analyzers := suite.Analyzers()
	if len(analyzers) == 0 {
		t.Fatal("empty analyzer roster")
	}
	for i := 1; i < len(analyzers); i++ {
		prev, cur := analyzers[i-1].Name, analyzers[i].Name
		if prev >= cur {
			t.Errorf("roster out of order: %q before %q", prev, cur)
		}
	}
}

// dirHasWant reports whether any .go file directly in dir contains a
// linttest expectation comment.
func dirHasWant(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return false, err
		}
		if wantRe.Match(data) {
			return true, nil
		}
	}
	return false, nil
}
