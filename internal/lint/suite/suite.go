// Package suite aggregates every smblint analyzer for the cmd/smblint
// driver, `make lint` and the CI lint job. It exists so the driver and
// tests share one roster without the framework package importing its
// own analyzers (which would cycle).
package suite

import (
	"smbm/internal/lint"
	"smbm/internal/lint/concfence"
	"smbm/internal/lint/cursorerr"
	"smbm/internal/lint/detmap"
	"smbm/internal/lint/escapecheck"
	"smbm/internal/lint/exporteddoc"
	"smbm/internal/lint/fastviewro"
	"smbm/internal/lint/hotalloc"
	"smbm/internal/lint/hotcall"
	"smbm/internal/lint/leaseclock"
	"smbm/internal/lint/seedrand"
	"smbm/internal/lint/wallclock"
)

// Analyzers returns the full roster in deterministic (alphabetical)
// order.
func Analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		concfence.Analyzer,
		cursorerr.Analyzer,
		detmap.Analyzer,
		escapecheck.Analyzer,
		exporteddoc.Analyzer,
		fastviewro.Analyzer,
		hotalloc.Analyzer,
		hotcall.Analyzer,
		leaseclock.Analyzer,
		seedrand.Analyzer,
		wallclock.Analyzer,
	}
}
