package hotalloc_test

import (
	"testing"

	"smbm/internal/lint/hotalloc"
	"smbm/internal/lint/linttest"
)

// TestHotalloc runs the analyzer over one flagged and one clean
// fixture package, including both annotation escape hatches.
func TestHotalloc(t *testing.T) {
	linttest.Run(t, "testdata", hotalloc.Analyzer, "hot", "hotclean")
}
