// Package hotclean is a hotalloc fixture whose hot paths pass: only
// non-allocating constructs, pointer-shaped boxing, and an annotated
// cold exit.
package hotclean

import "fmt"

// Sink consumes an interface value.
func Sink(v any) {}

// point is a small value type.
type point struct{ x, y int }

// helper is a concrete-typed callee.
func helper(n int) int { return n + 1 }

// Hot sticks to stack-friendly constructs: struct literals, arrays,
// arithmetic, concrete calls, and pointer-shaped interface conversions
// (which fit in the interface word without allocating).
//
//smb:hotpath
func Hot(n int, buf *[8]int) int {
	Sink(buf) // pointer-shaped: boxes for free
	p := point{n, n}
	var a [4]int
	a[0] = p.x
	if a[0] > 0 {
		a[1] = helper(p.y)
	}
	return a[0] + a[1]
}

// ColdExit exempts a provably cold error branch with a reason.
//
//smb:hotpath
func ColdExit(n int) error {
	if n < 0 {
		//smb:alloc-ok once-per-run validation exit, not the steady state
		return fmt.Errorf("negative %d", n)
	}
	return nil
}
