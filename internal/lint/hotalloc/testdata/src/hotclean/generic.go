package hotclean

// ordered mirrors the engine's generic rule constraints: a small
// method-set interface used only as a type-parameter bound.
type ordered interface {
	less(than int) bool
}

// intVal is a concrete instantiation argument.
type intVal int

// less implements ordered for intVal.
func (v intVal) less(than int) bool { return int(v) < than }

// kernel is a generic hot kernel in the shape of policy's
// thresholdBatch: the type-parameter argument is stenciled by GC
// shape, not boxed, so passing a concrete value to it must not be
// reported as an interface conversion.
//
//smb:hotpath
func kernel[R ordered](xs []int, r R) int {
	count := 0
	for _, x := range xs {
		if r.less(x) {
			count++
		}
	}
	return count
}

// passThrough forwards its type parameter to another generic —
// a type-param source into a type-param destination.
//
//smb:hotpath
func passThrough[R ordered](xs []int, r R) int {
	return kernel[R](xs, r)
}

// Explicit instantiates the kernel explicitly (IndexExpr callee) —
// both the instantiation and the concrete argument stay clean.
//
//smb:hotpath
func Explicit(xs []int) int {
	return kernel[intVal](xs, intVal(3))
}

// Inferred lets the compiler infer the instantiation.
//
//smb:hotpath
func Inferred(xs []int) int {
	return passThrough(xs, intVal(3))
}

// pair exercises two type parameters (IndexListExpr callee).
//
//smb:hotpath
func pair[A ordered, B ordered](x int, a A, b B) int {
	n := 0
	if a.less(x) {
		n++
	}
	if b.less(x) {
		n++
	}
	return n
}

// Both instantiates pair explicitly with two arguments.
//
//smb:hotpath
func Both(x int) int {
	return pair[intVal, intVal](x, intVal(1), intVal(2))
}
