package hot

// sinkAny is a generic-adjacent callee with a real interface
// parameter: boxing into it is still boxing even when the call site
// is an explicit instantiation.
func sinkAny[T any](label any, v T) {}

// HotGenericBox instantiates explicitly; the type-parameter argument
// is stenciled (clean) but the any-typed argument still boxes.
//
//smb:hotpath
func HotGenericBox(n int) {
	sinkAny[int](n, n) // want `implicit conversion of int to any at argument`
}

// HotGenericBody is a generic hot function whose body allocates: the
// map literal is flagged exactly as in non-generic code.
//
//smb:hotpath
func HotGenericBody[T comparable](k T) map[T]int {
	return map[T]int{k: 1} // want `map literal allocates`
}

// HotGenericDefer defers inside a two-parameter instantiation target.
//
//smb:hotpath
func HotGenericDefer[A any, B any](a A, b B) {
	defer release() // want `defer in hot path`
	_, _ = a, b
}
