// Package hot is a hotalloc fixture: every forbidden construct inside
// //smb:hotpath functions is flagged; unannotated functions are not.
package hot

import "fmt"

// Sink consumes an interface value.
func Sink(v any) {}

// release is a no-op helper.
func release() {}

// Hot carries one of each statement-level violation.
//
//smb:hotpath
func Hot(n int) int {
	defer release()              // want `defer in hot path`
	f := func() int { return n } // want `closure literal`
	m := map[int]int{}           // want `map literal allocates`
	s := []int{1, 2}             // want `slice literal allocates`
	Sink(n)                      // want `implicit conversion of int to any`
	_ = m
	_ = s
	return f()
}

// HotFmt formats in the hot path: the fmt call and the boxed argument
// are both flagged.
//
//smb:hotpath
func HotFmt(n int) {
	fmt.Println(n) // want `fmt.Println in hot path` `implicit conversion of int to any`
}

// HotGo launches a goroutine per call.
//
//smb:hotpath
func HotGo() {
	go release() // want `goroutine launch`
}

// HotReturn boxes at the return.
//
//smb:hotpath
func HotReturn(n int) any {
	return n // want `implicit conversion of int to any at return value`
}

// HotAssign boxes into an interface variable.
//
//smb:hotpath
func HotAssign(n int) {
	var v any
	v = n // want `implicit conversion of int to any at assignment`
	_ = v
}

// HotVarInit boxes in a var initializer.
//
//smb:hotpath
func HotVarInit(n int) {
	var v any = n // want `implicit conversion of int to any at initializer`
	_ = v
}

// HotConv boxes through an explicit conversion.
//
//smb:hotpath
func HotConv(n int) any {
	v := any(n) // want `implicit conversion of int to any at conversion`
	return v
}

// HotBadAnnotation exempts a line without the mandatory reason.
//
//smb:hotpath
func HotBadAnnotation(n int) {
	//smb:alloc-ok
	Sink(n) // want `requires a reason`
}

// Cold is unannotated: the same constructs pass untouched.
func Cold(n int) {
	defer release()
	fmt.Println(n)
	Sink(n)
}
