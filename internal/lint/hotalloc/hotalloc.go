// Package hotalloc implements the static hot-path allocation gate,
// complementing the dynamic 0 allocs/op benchmark contract (DESIGN.md
// §9): a function whose doc comment carries //smb:hotpath must stay
// free of the constructs that allocate or defeat inlining on every
// call:
//
//   - fmt.* calls (formatting allocates and boxes its arguments);
//   - defer statements and go statements;
//   - function literals (closure environments escape);
//   - map and slice composite literals;
//   - implicit interface conversions of non-pointer-shaped values at
//     call arguments, returns, assignments and var initializers
//     (boxing allocates; pointers, channels, maps and funcs are
//     pointer-shaped and box for free).
//
// A provably cold line inside a hot function (an error exit, a
// once-per-run fallback) can be exempted with //smb:alloc-ok <reason>;
// the reason is mandatory.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"smbm/internal/lint"
)

// Analyzer is the hotalloc analyzer instance.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocating constructs (fmt, defer, closures, map/slice " +
		"literals, interface boxing) in //smb:hotpath functions",
	Run: run,
}

// run applies hotalloc to one package.
func run(pass *lint.Pass) error {
	if pass.NeedsTypes() {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !lint.FuncAnnotated("hotpath", fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkFunc walks one hot function's body. Function literals are
// reported but not descended into: their bodies are separate
// (non-hot) functions once flagged.
func checkFunc(pass *lint.Pass, fn *ast.FuncDecl) {
	sig, _ := pass.TypeOf(fn.Name).(*types.Signature)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			reportAt(pass, n.Pos(), "closure literal in hot path: the environment escapes to the heap")
			return false
		case *ast.DeferStmt:
			reportAt(pass, n.Pos(), "defer in hot path: defer records allocate and defeat inlining")
		case *ast.GoStmt:
			reportAt(pass, n.Pos(), "goroutine launch in hot path")
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.ReturnStmt:
			checkReturn(pass, n, sig)
		case *ast.AssignStmt:
			checkAssign(pass, n)
		case *ast.ValueSpec:
			checkValueSpec(pass, n)
		}
		return true
	})
}

// checkCompositeLit flags map and slice literals, which always
// allocate their backing store.
func checkCompositeLit(pass *lint.Pass, lit *ast.CompositeLit) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		reportAt(pass, lit.Pos(), "map literal allocates in hot path")
	case *types.Slice:
		reportAt(pass, lit.Pos(), "slice literal allocates in hot path")
	}
}

// checkCall flags fmt calls and boxing at argument positions, and
// boxing through explicit conversions to interface types.
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x): boxing when T is an interface.
		if len(call.Args) == 1 {
			checkBoxing(pass, call.Args[0], tv.Type, "conversion")
		}
		return
	}
	if tv.IsBuiltin() {
		return
	}
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		reportAt(pass, call.Pos(), "fmt.%s in hot path: formatting allocates", fn.Name())
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a slice passed through as-is does not box per element
			}
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				dst = s.Elem()
			}
		case i < params.Len():
			dst = params.At(i).Type()
		}
		checkBoxing(pass, arg, dst, "argument")
	}
}

// checkReturn flags boxing at return positions of the hot function.
func checkReturn(pass *lint.Pass, ret *ast.ReturnStmt, sig *types.Signature) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return // naked return or single-call multi-value return
	}
	for i, res := range ret.Results {
		checkBoxing(pass, res, sig.Results().At(i).Type(), "return value")
	}
}

// checkAssign flags boxing when assigning into interface-typed
// destinations.
func checkAssign(pass *lint.Pass, assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		checkBoxing(pass, assign.Rhs[i], pass.TypeOf(lhs), "assignment")
	}
}

// checkValueSpec flags boxing in `var x Iface = expr` initializers.
func checkValueSpec(pass *lint.Pass, spec *ast.ValueSpec) {
	if len(spec.Values) != len(spec.Names) {
		return
	}
	for i, name := range spec.Names {
		checkBoxing(pass, spec.Values[i], pass.TypeOf(name), "initializer")
	}
}

// checkBoxing reports an implicit interface conversion that allocates:
// destination is an interface, source is a concrete type that is not
// pointer-shaped. A type-parameter destination is not an interface
// even though its underlying constraint is one: the compiler stencils
// the generic by GC shape and passes the value directly, so nothing
// boxes.
func checkBoxing(pass *lint.Pass, expr ast.Expr, dst types.Type, where string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	if _, isTypeParam := dst.(*types.TypeParam); isTypeParam {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil {
		return
	}
	src := tv.Type
	if types.IsInterface(src) || pointerShaped(src) {
		return
	}
	reportAt(pass, expr.Pos(), "implicit conversion of %s to %s at %s boxes on the heap in hot path", src, dst, where)
}

// pointerShaped reports whether values of t fit in an interface word
// without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// calleeFunc resolves the called function object, nil for builtins,
// conversions and anonymous function values. Explicit generic
// instantiations — f[T](…) as *ast.IndexExpr, f[K, V](…) as
// *ast.IndexListExpr — unwrap to the generic declaration; indexing
// into a container of function values unwraps to a non-Func object
// and resolves to nil like any other dynamic call.
func calleeFunc(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	fun := call.Fun
unwrap:
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
		case *ast.IndexExpr:
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		default:
			break unwrap
		}
	}
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// reportAt emits a diagnostic unless the line carries //smb:alloc-ok
// with a reason; an annotation without a reason is itself a violation.
func reportAt(pass *lint.Pass, pos token.Pos, format string, args ...any) {
	if ann, ok := pass.AnnotationAt("alloc-ok", pos); ok {
		if ann.Reason == "" {
			pass.Reportf(pos, "//smb:alloc-ok requires a reason explaining why this line is cold")
		}
		return
	}
	pass.Reportf(pos, format, args...)
}
