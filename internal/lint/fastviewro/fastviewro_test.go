package fastviewro_test

import (
	"testing"

	"smbm/internal/lint/fastviewro"
	"smbm/internal/lint/linttest"
)

func TestFastViewRO(t *testing.T) {
	linttest.Run(t, "testdata", fastviewro.Analyzer, "policy", "core")
}
