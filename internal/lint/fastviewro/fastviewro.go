// Package fastviewro implements the read-only FastView contract
// analyzer for the policy packages. core.FastView's slice-returning
// accessors (QueueLens, QueueTotalWorks, QueueMinValues, QueueSums,
// PortWorks) expose *live engine state* — the switch's own mirrors, not
// copies — so a policy that writes through one of them silently
// corrupts the engine: the aggregate caches, the configured work table,
// the invariant between occupancy and the length mirrors. The engine
// defends dynamically (a private work-table copy, CheckInvariants
// cross-checks — see core.TestFastViewAliasingDetected), but inside the
// policy packages the bug class is simply forbidden at the source
// level: no assignment, op-assignment, increment/decrement or copy
// destination may reach through a FastView slice, whether the slice is
// indexed directly off the accessor call or via a local variable the
// call's result was stored in (including re-slices and aliases).
//
// Outside the policy packages this analyzer is silent: engine code owns
// those slices and mutates them by design.
package fastviewro

import (
	"go/ast"
	"go/types"

	"smbm/internal/lint"
)

// Analyzer is the fastviewro analyzer instance.
var Analyzer = &lint.Analyzer{
	Name: "fastviewro",
	Doc: "forbid writes through FastView-returned slices in policy " +
		"packages: the slices are live engine state and strictly read-only",
	Run: run,
}

// accessors names the FastView methods that return live engine slices.
var accessors = map[string]bool{
	"QueueLens":       true,
	"QueueTotalWorks": true,
	"QueueMinValues":  true,
	"QueueSums":       true,
	"PortWorks":       true,
}

// run applies fastviewro to one package.
func run(pass *lint.Pass) error {
	if pass.NeedsTypes() || !lint.PolicyPackage(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkFunc flags writes through FastView slices within one function.
// Taint analysis is per function: accessor call results and every local
// alias of them (plain assignment, multi-assignment, re-slicing) are
// tracked to a fixpoint, then each write statement is tested against
// the tainted set.
func checkFunc(pass *lint.Pass, fn *ast.FuncDecl) {
	tainted := make(map[types.Object]string) // local var -> accessor it aliases

	// origin resolves the FastView accessor behind expr, "" when expr is
	// not (an alias of) an accessor result.
	origin := func(expr ast.Expr) string {
		for {
			switch e := expr.(type) {
			case *ast.ParenExpr:
				expr = e.X
			case *ast.SliceExpr:
				expr = e.X
			case *ast.Ident:
				if obj := pass.TypesInfo.ObjectOf(e); obj != nil {
					return tainted[obj]
				}
				return ""
			case *ast.CallExpr:
				sel, ok := e.Fun.(*ast.SelectorExpr)
				if !ok || !accessors[sel.Sel.Name] {
					return ""
				}
				if _, ok := pass.TypeOf(e).(*types.Slice); !ok {
					return ""
				}
				return sel.Sel.Name
			default:
				return ""
			}
		}
	}

	// Propagate taint to a fixpoint: `lens := f.QueueLens()` taints lens,
	// `a := lens` and `a := lens[1:]` taint a too, in whatever order the
	// statements appear.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			var names []ast.Expr
			var values []ast.Expr
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				names, values = s.Lhs, s.Rhs
			case *ast.ValueSpec:
				if len(s.Names) != len(s.Values) {
					return true
				}
				for _, id := range s.Names {
					names = append(names, id)
				}
				values = s.Values
			default:
				return true
			}
			for i, lhs := range names {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				src := origin(values[i])
				if src == "" {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil || tainted[obj] != "" {
					continue
				}
				tainted[obj] = src
				changed = true
			}
			return true
		})
	}

	// indexWrite resolves an assignment/IncDec target: a write lands on
	// a FastView slice when the target is an index expression whose base
	// resolves to an accessor.
	indexWrite := func(target ast.Expr) string {
		if ix, ok := target.(*ast.IndexExpr); ok {
			return origin(ix.X)
		}
		return ""
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// Taint-propagating aliases were handled above; here only the
			// write targets matter (=, +=, -=, …).
			for _, lhs := range s.Lhs {
				if src := indexWrite(lhs); src != "" {
					pass.Reportf(lhs.Pos(), "write through the read-only FastView slice %s(): policies are pure, the engine owns all mutation", src)
				}
			}
		case *ast.IncDecStmt:
			if src := indexWrite(s.X); src != "" {
				pass.Reportf(s.X.Pos(), "write through the read-only FastView slice %s(): policies are pure, the engine owns all mutation", src)
			}
		case *ast.CallExpr:
			// copy(dst, …) and append(dst[:…], …) mutate dst's backing
			// array just as surely as an index assignment.
			if id, ok := s.Fun.(*ast.Ident); ok && len(s.Args) > 0 {
				if id.Name == "copy" || id.Name == "append" {
					if src := origin(s.Args[0]); src != "" {
						pass.Reportf(s.Args[0].Pos(), "%s into the read-only FastView slice %s(): policies are pure, the engine owns all mutation", id.Name, src)
					}
				}
			}
		}
		return true
	})
}
