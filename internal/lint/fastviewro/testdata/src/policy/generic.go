package policy

// viewRule mirrors the PR 8 generic-kernel shape: type parameters
// constrained by the view interface, with the accessor call made on a
// type-param-typed receiver.

// genericDirect writes straight through the accessor of a type-param
// receiver and is flagged exactly as in monomorphic code.
func genericDirect[V fastView](f V) {
	f.QueueLens()[0] = 7 // want `write through the read-only FastView slice QueueLens\(\)`
}

// genericHoisted hoists through a local inside the generic body.
func genericHoisted[V fastView](f V) {
	works := f.PortWorks()
	works[1]++ // want `write through the read-only FastView slice PortWorks\(\)`
}

// genericReads is the legal generic kernel: reads, ranges, and copies
// out into policy-owned scratch.
func genericReads[V fastView](f V) int {
	lens := f.QueueLens()
	total := 0
	for _, l := range lens {
		total += l
	}
	scratch := make([]int, len(lens))
	copy(scratch, lens)
	return total + scratch[0]
}

// instantiate pins that explicit instantiation call sites stay legal
// reads and keep the generic bodies reachable for the type checker.
func instantiate(f fastView) int {
	genericDirect[fastView](f)
	genericHoisted(f)
	return genericReads[fastView](f)
}
