// Package policy is a fastviewro fixture standing in for a policy
// package: FastView-returned slices are live engine state and must
// never be written through.
package policy

// fastView mirrors the slice-returning accessors of core.FastView;
// matching is by method name so the fixture needs no engine import.
type fastView interface {
	QueueLens() []int
	QueueTotalWorks() []int
	QueueMinValues() []int
	QueueSums() []int64
	PortWorks() []int
	Free() int
}

// directWrite indexes straight off the accessor call and is flagged.
func directWrite(f fastView) {
	f.QueueLens()[0] = 7 // want `write through the read-only FastView slice QueueLens\(\)`
}

// hoistedWrite stores the slice in a local first, as the batch kernels
// do, and is still flagged.
func hoistedWrite(f fastView) {
	lens := f.QueueLens()
	lens[2]++ // want `write through the read-only FastView slice QueueLens\(\)`
}

// aliasedWrite launders the slice through a second variable and a
// re-slice; both writes are flagged.
func aliasedWrite(f fastView) {
	works := f.PortWorks()
	alias := works
	alias[0] = 99 // want `write through the read-only FastView slice PortWorks\(\)`
	tail := works[1:]
	tail[0] -= 3 // want `write through the read-only FastView slice PortWorks\(\)`
}

// bulkWrite mutates through the builtins rather than an index
// expression and is flagged for each.
func bulkWrite(f fastView) {
	mins := f.QueueMinValues()
	copy(mins, []int{1, 2, 3}) // want `copy into the read-only FastView slice QueueMinValues\(\)`
	sums := f.QueueSums()
	_ = append(sums[:0], 4) // want `append into the read-only FastView slice QueueSums\(\)`
}

// readsOnly exercises every legal use: indexing, ranging, hoisting,
// copying OUT of the engine slices into policy-owned scratch.
func readsOnly(f fastView) int {
	lens := f.QueueLens()
	works := f.QueueTotalWorks()
	total := lens[0]
	for i, l := range lens {
		total += l * works[i]
	}
	scratch := make([]int, len(lens))
	copy(scratch, lens) // policy-owned destination: fine
	scratch[0] = total  // policy-owned slice: fine
	return total
}
