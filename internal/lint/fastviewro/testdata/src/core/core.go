// Package core is a fastviewro fixture standing in for an engine
// package: the engine owns the mirror slices and mutates them by
// design, so the analyzer stays silent here even on writes that would
// be flagged in a policy package.
package core

// engineView mirrors the accessor names; in engine code writing
// through them is the point.
type engineView interface {
	QueueLens() []int
	PortWorks() []int
}

// insertBookkeeping is engine code: no diagnostics.
func insertBookkeeping(v engineView, port int) {
	lens := v.QueueLens()
	lens[port]++
	v.PortWorks()[port] = 5
}
