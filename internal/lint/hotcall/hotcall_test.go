package hotcall_test

import (
	"testing"

	"smbm/internal/lint/hotcall"
	"smbm/internal/lint/linttest"
)

// TestHotcall runs the analyzer over one flagged and one clean fixture
// package; the clean fixture mirrors the engine's generic admission
// kernels (explicit and inferred instantiations, type-parameter
// dispatch through an annotated constraint method).
func TestHotcall(t *testing.T) {
	linttest.Run(t, "testdata", hotcall.Analyzer, "hot", "hotclean")
}
