// Package hotcall closes the transitive hole in the hot-path
// allocation contract: hotalloc and escapecheck police the *body* of
// every //smb:hotpath function, but neither stops a hot function from
// calling an unchecked cold one. hotcall walks every call site inside
// a //smb:hotpath function and requires the callee to be one of:
//
//   - another //smb:hotpath-annotated function or method — same
//     package or any module-internal package (the annotation is read
//     from the callee package's source);
//   - an inlined leaf: the compiler's own `-m` record (via gcdiag)
//     shows "inlining call to <callee>" at this call site, so the
//     callee's body is already inside the caller's span where
//     escapecheck sees it;
//   - a standard-library (or otherwise extra-module) function —
//     treated as an intrinsic; actual allocations these introduce
//     still surface through escapecheck's argument-escape sites and
//     the dynamic zero-alloc benchmark gate;
//   - a builtin or a type conversion.
//
// Dynamic dispatch is resolved through the *declaration*: a call
// through an interface method (including methods on generic type
// parameters, which is how the thresholdBatch[R]/pushOutBatch[R]
// kernels invoke their rule structs) is hot when the interface method
// itself carries //smb:hotpath in its doc comment — the annotation on
// View.Free or thresholdRule.admit extends the hot contract to every
// implementation wired into the engine, and those implementations are
// in turn annotated and proven by escapecheck. A devirtualized and
// inlined dynamic call also passes, per the same -m record. Calls
// through bare function values cannot be verified and are flagged.
//
// //smb:alloc-ok <reason> on the call line exempts it, same as
// hotalloc: a provably cold line may call cold code.
package hotcall

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"smbm/internal/lint"
	"smbm/internal/lint/gcdiag"
)

// Analyzer is the hotcall analyzer instance.
var Analyzer = &lint.Analyzer{
	Name: "hotcall",
	Doc: "restrict //smb:hotpath functions to calling hotpath-annotated " +
		"functions, compiler-inlined leaves, or stdlib intrinsics",
	Run: run,
}

// run applies hotcall to one package.
func run(pass *lint.Pass) error {
	if pass.NeedsTypes() {
		return nil
	}
	var hot []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil && lint.FuncAnnotated("hotpath", fn) {
				hot = append(hot, fn)
			}
		}
	}
	if len(hot) == 0 {
		return nil
	}
	var files []string
	for _, f := range pass.Files {
		files = append(files, filepath.Base(pass.Fset.Position(f.Pos()).Filename))
	}
	report, err := gcdiag.For(pass.Dir, files)
	if err != nil {
		return err
	}
	own := buildIndex(pass.Files)
	c := &checker{pass: pass, report: report, own: own}
	for _, fn := range hot {
		c.checkFunc(fn)
	}
	return c.err
}

// checker carries one package's call-site verification state.
type checker struct {
	pass   *lint.Pass
	report *gcdiag.Report
	own    *index
	err    error
}

// checkFunc verifies every call site in one hot function.
func (c *checker) checkFunc(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // hotalloc already flags the closure itself
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.checkCall(fn, call)
		return true
	})
}

// checkCall verifies one call site.
func (c *checker) checkCall(hot *ast.FuncDecl, call *ast.CallExpr) {
	pass := c.pass
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if ok && (tv.IsType() || tv.IsBuiltin()) {
		return // conversion or builtin
	}
	obj := callee(pass, call)
	fnObj, isFunc := obj.(*types.Func)
	if obj != nil && !isFunc {
		if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
			return
		}
	}
	pos := call.Lparen
	line := pass.Fset.Position(pos).Line
	file := filepath.Base(pass.Fset.Position(pos).Filename)
	exempt := func() bool {
		ann, ok := pass.AnnotationAt("alloc-ok", call.Pos())
		if ok && ann.Reason == "" {
			pass.Reportf(call.Pos(), "//smb:alloc-ok requires a reason explaining why this line is cold")
		}
		return ok
	}

	if !isFunc {
		// A bare function value (variable, field, call result): nothing
		// to resolve an annotation against.
		if c.inlined(file, line, funValueName(call.Fun)) || exempt() {
			return
		}
		pass.Reportf(call.Pos(), "call through a function value in //smb:hotpath function %s cannot be statically verified", hot.Name.Name)
		return
	}

	key, dynamic := objKey(fnObj)
	pkg := fnObj.Pkg()
	if pkg == nil {
		return // error.Error, unsafe intrinsics and friends
	}
	switch {
	case pkg.Path() == pass.Path:
		if c.own.hot(key) || c.inlined(file, line, fnObj.Name()) || exempt() {
			return
		}
	case moduleInternal(pass.Path, pkg.Path()):
		idx, err := dirIndex(calleeDir(pass.Path, pass.Dir, pkg.Path()))
		if err != nil {
			if c.err == nil {
				c.err = fmt.Errorf("hotcall: indexing %s: %w", pkg.Path(), err)
			}
			return
		}
		if idx.hot(key) || c.inlined(file, line, fnObj.Name()) || exempt() {
			return
		}
	default:
		return // stdlib intrinsic
	}
	what := "function"
	if dynamic {
		what = "interface method"
	}
	pass.Reportf(call.Pos(), "hot path calls non-hotpath %s %s.%s: annotate it //smb:hotpath (or keep the call inlined) so the allocation proof covers it", what, pkg.Name(), key)
}

// inlined reports whether -m recorded an inline of callee on this line
// (or the line of the call's own position — multi-line calls can
// differ).
func (c *checker) inlined(file string, line int, calleeName string) bool {
	if calleeName == "" {
		return false
	}
	return c.report.InlinedAt(file, line, calleeName)
}

// callee resolves the called object behind Fun, unwrapping parens and
// the explicit instantiation forms f[T] / f[T1, T2] that generics
// introduced.
func callee(pass *lint.Pass, call *ast.CallExpr) types.Object {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
		case *ast.IndexExpr:
			// Either an explicit instantiation (base is the generic
			// function, signature-typed) or indexing into a container of
			// function values; only the former unwraps to a callee.
			if t := pass.TypeOf(f.X); t != nil {
				if _, ok := t.Underlying().(*types.Signature); !ok {
					return nil // container element: a function value
				}
			}
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		case *ast.Ident:
			return pass.TypesInfo.Uses[f]
		case *ast.SelectorExpr:
			return pass.TypesInfo.Uses[f.Sel]
		default:
			return nil
		}
	}
}

// funValueName names a function-value callee well enough for the
// inline record ("f" for f(), "" when anonymous).
func funValueName(fun ast.Expr) string {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	case *ast.ParenExpr:
		return funValueName(f.X)
	}
	return ""
}

// objKey renders a *types.Func as the index key ("Name" or
// "Recv.Name") and reports whether the call dispatches dynamically
// (interface or type-parameter receiver).
func objKey(fn *types.Func) (string, bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn.Name(), false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name() + "." + fn.Name(), types.IsInterface(t)
	case *types.TypeParam:
		if named, ok := t.Constraint().(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name(), true
		}
		return fn.Name(), true
	case *types.Interface:
		return fn.Name(), true // anonymous interface: unkeyable
	}
	return fn.Name(), false
}

// moduleInternal reports whether calleePath names a package of the
// same module as passPath (shared first path element; fixture
// packages have no slash and thus no module-internal callees).
func moduleInternal(passPath, calleePath string) bool {
	if !strings.Contains(passPath, "/") {
		return false
	}
	return firstElem(passPath) == firstElem(calleePath)
}

// firstElem returns the first element of an import path.
func firstElem(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// calleeDir maps a module-internal import path to its directory by
// rebasing against the current package's dir ↔ path correspondence.
func calleeDir(passPath, passDir, calleePath string) string {
	rel := strings.TrimPrefix(passPath, firstElem(passPath)) // "/internal/policy"
	dir := filepath.ToSlash(passDir)
	if root, ok := strings.CutSuffix(dir, rel); ok {
		return filepath.FromSlash(root + strings.TrimPrefix(calleePath, firstElem(calleePath)))
	}
	return ""
}

// index records which functions, methods and interface methods of one
// package carry //smb:hotpath.
type index struct {
	funcs map[string]bool // "Name" / "Recv.Name" / "Iface.Method" -> annotated
}

// hot reports whether key is annotated. Dynamic keys ("Iface.Method")
// resolve against interface-method entries exactly like static ones —
// the builder records both forms in one namespace.
func (ix *index) hot(key string) bool { return ix.funcs[key] }

// buildIndex scans parsed files for hotpath annotations on function
// declarations and interface method fields.
func buildIndex(files []*ast.File) *index {
	ix := &index{funcs: map[string]bool{}}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if lint.FuncAnnotated("hotpath", d) {
					ix.funcs[funcKey(d)] = true
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					iface, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range iface.Methods.List {
						if len(m.Names) == 0 {
							continue // embedded interface
						}
						if commentHas(m.Doc, "hotpath") || commentHas(m.Comment, "hotpath") {
							for _, name := range m.Names {
								ix.funcs[ts.Name.Name+"."+name.Name] = true
							}
						}
					}
				}
			}
		}
	}
	return ix
}

// funcKey renders a FuncDecl as its index key.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch r := t.(type) {
		case *ast.StarExpr:
			t = r.X
		case *ast.IndexExpr:
			t = r.X
		case *ast.IndexListExpr:
			t = r.X
		case *ast.Ident:
			return r.Name + "." + fn.Name.Name
		default:
			return fn.Name.Name
		}
	}
}

// commentHas reports whether a comment group carries //smb:<tag>.
func commentHas(cg *ast.CommentGroup, tag string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "smb:"+tag || strings.HasPrefix(text, "smb:"+tag+" ") {
			return true
		}
	}
	return false
}

// dirCache memoizes cross-package annotation indexes: the policy
// package resolves core's annotations once, not once per call site.
var dirCache = map[string]*index{}

// dirIndex parses the non-test Go files of dir and builds its
// annotation index, memoized.
func dirIndex(dir string) (*index, error) {
	if dir == "" {
		return nil, fmt.Errorf("cannot locate callee package directory")
	}
	if ix, ok := dirCache[dir]; ok {
		return ix, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	ix := buildIndex(files)
	dirCache[dir] = ix
	return ix, nil
}
