// Package hot is a hotcall fixture: inside a //smb:hotpath function,
// calls must resolve to hotpath-annotated callees, compiler-inlined
// leaves, or stdlib intrinsics — anything else is a hole in the
// transitive allocation proof and is flagged.
package hot

import "math"

// coldWalk is recursive, so the compiler can never inline it, and it
// is not annotated: calling it from a hot path is the exact hole
// hotcall exists to close.
func coldWalk(n int) int {
	if n <= 0 {
		return 0
	}
	return coldWalk(n-1) + 1
}

// hotHelper is annotated and callable from hot paths.
//
//smb:hotpath
func hotHelper(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

// tiny is small enough that every call site inlines it.
func tiny(n int) int { return n + 1 }

// Meter is the fixture's dynamic-dispatch surface.
type Meter interface {
	// Hot is part of the hot contract: implementations must be
	// allocation-free.
	//
	//smb:hotpath
	Hot() int

	// Cold is explicitly not part of the hot contract.
	Cold() int
}

// CallsCold calls a non-inlinable, unannotated function.
//
//smb:hotpath
func CallsCold(n int) int {
	return coldWalk(n) // want `hot path calls non-hotpath function hot.coldWalk`
}

// CallsHot calls an annotated function: fine.
//
//smb:hotpath
func CallsHot(n int) int {
	return hotHelper(n)
}

// CallsInlined calls an inlined leaf: fine per the compiler's -m
// record.
//
//smb:hotpath
func CallsInlined(n int) int {
	return tiny(n)
}

// CallsStdlib calls a standard-library intrinsic: fine.
//
//smb:hotpath
func CallsStdlib(x float64) float64 {
	return math.Sqrt(x)
}

// CallsIface dispatches through an annotated interface method (fine)
// and an unannotated one (flagged).
//
//smb:hotpath
func CallsIface(m Meter) int {
	a := m.Hot()
	b := m.Cold() // want `hot path calls non-hotpath interface method hot.Meter.Cold`
	return a + b
}

// CallsFuncValue calls through a bare function value, which cannot be
// statically verified.
//
//smb:hotpath
func CallsFuncValue(f func(int) int, n int) int {
	return f(n) // want `call through a function value`
}

// ColdLine exempts a cold call with a reason.
//
//smb:hotpath
func ColdLine(n int) int {
	if n < 0 {
		//smb:alloc-ok once-per-run fallback, not the steady state
		return coldWalk(n)
	}
	return hotHelper(n)
}

// Cold is unannotated: it may call anything.
func Cold(n int) int {
	return coldWalk(n)
}
