// Package hotclean is a hotcall fixture whose hot paths pass,
// modelled on the engine's generic admission kernels: a hot wrapper
// instantiates a generic hot kernel with a rule struct, the kernel
// dispatches through its type-parameter constraint, and every link in
// that chain carries the annotation.
package hotclean

// rule is the constraint interface of the fixture kernel; its method
// is part of the hot contract, like thresholdRule.admit.
type rule interface {
	// admit is the per-item predicate.
	//
	//smb:hotpath
	admit(x int) bool
}

// evenRule admits even items.
type evenRule struct{ parity int }

// admit implements rule.
//
//smb:hotpath
func (r evenRule) admit(x int) bool { return x%2 == r.parity }

// kernel is the generic hot loop, stencilled per rule like
// thresholdBatch[R].
//
//smb:hotpath
func kernel[R rule](xs []int, r R) int {
	count := 0
	for _, x := range xs {
		if r.admit(x) {
			count++
		}
	}
	return count
}

// CountEven drives the kernel through an explicit instantiation.
//
//smb:hotpath
func CountEven(xs []int) int {
	return kernel[evenRule](xs, evenRule{})
}

// CountInferred drives the kernel through an inferred instantiation.
//
//smb:hotpath
func CountInferred(xs []int, r evenRule) int {
	return kernel(xs, r)
}

// Builtins sticks to builtins and conversions, which are always fine.
//
//smb:hotpath
func Builtins(xs []int) int {
	return len(xs) + cap(xs) + int(int64(len(xs)))
}
