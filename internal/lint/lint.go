// Package lint is a self-contained static-analysis framework that
// mechanically enforces the engine's determinism, seeding and hot-path
// contracts (DESIGN.md §11). It mirrors the golang.org/x/tools
// go/analysis API shape — Analyzer, Pass, positional diagnostics —
// so the suite can migrate onto the real module with a mechanical
// rewrite once external dependencies are available; the build
// environment for this repository is fully offline, so the framework
// is implemented on the standard library alone (go/ast, go/types,
// go/importer) with package loading delegated to `go list -export`
// (see load.go).
//
// The analyzers themselves live in subpackages (detmap, seedrand,
// wallclock, leaseclock, hotalloc, cursorerr, exporteddoc);
// internal/lint/suite aggregates them for cmd/smblint, `make lint`
// and the CI lint job.
//
// Two source annotations steer the suite:
//
//   - //smb:hotpath — placed in a function's doc comment, marks the
//     function as an allocation-free hot path checked by hotalloc;
//   - //smb:nondet-ok <reason> — placed on (or immediately above) a map
//     range statement in an engine package, records why the iteration
//     order provably cannot leak into simulation results. The reason is
//     mandatory.
//   - //smb:alloc-ok <reason> — placed on (or immediately above) a line
//     inside a //smb:hotpath function, exempts that line from hotalloc
//     (for provably cold branches such as error exits). The reason is
//     mandatory.
//   - //smb:leaseclock <reason> — placed in a function's doc comment in
//     a lease-ledger package, licenses that function (and only it) to
//     read the wall clock; checked by leaseclock. The reason is
//     mandatory.
//   - //smb:conc-ok <reason> — placed on (or immediately above) a line
//     in a deterministic engine package, or in a function's doc
//     comment, exempts that line (or function) from the concfence
//     concurrency fence (go statements, channel operations,
//     sync/sync-atomic imports). The reason is mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer describes one static check: a name, what it enforces,
// and a Run function applied once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description of the enforced contract.
	Doc string
	// Run applies the check to one package via the Pass.
	Run func(*Pass) error
}

// A Diagnostic is one reported contract violation at a position.
type Diagnostic struct {
	// Pos locates the violation (file:line:column).
	Pos token.Position
	// Analyzer names the reporting analyzer.
	Analyzer string
	// Message describes the violation.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one package's syntax and type information to an
// analyzer's Run function, mirroring go/analysis.Pass. Types and
// TypesInfo are nil in syntax-only mode (LoadSyntax); analyzers that
// need type information must call NeedsTypes to degrade gracefully.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Fset maps positions for all Files.
	Fset *token.FileSet
	// Files holds the package's parsed, comment-bearing syntax trees.
	Files []*ast.File
	// Path is the package's import path ("smbm/internal/core"; fixture
	// packages use their bare directory name).
	Path string
	// Dir is the package directory on disk. Compiler-diagnostic
	// analyzers (escapecheck, hotcall) shell out to `go build` here.
	Dir string
	// Pkg is the type-checked package, nil in syntax-only mode.
	Pkg *types.Package
	// TypesInfo records type and object resolution for Files, nil in
	// syntax-only mode.
	TypesInfo *types.Info

	annots map[string]map[int][]Annotation // filename -> line -> annotations
	report func(Diagnostic)
}

// NeedsTypes reports whether the pass lacks type information that the
// analyzer requires; such passes should return without diagnostics.
func (p *Pass) NeedsTypes() bool { return p.TypesInfo == nil }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr, or nil when unknown or in
// syntax-only mode.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(expr)
}

// An Annotation is one parsed //smb:<tag> marker in a source comment.
type Annotation struct {
	// Tag is the marker name without the smb: prefix ("hotpath",
	// "nondet-ok", "alloc-ok").
	Tag string
	// Reason is the free text following the tag, "" when absent.
	Reason string
	// Line is the 1-based source line the comment sits on (its end
	// line, for multi-line comment groups).
	Line int
}

// annotationPrefix introduces all in-source lint markers.
const annotationPrefix = "smb:"

// parseAnnotations indexes every //smb:* marker of every file by
// filename and line.
func parseAnnotations(fset *token.FileSet, files []*ast.File) map[string]map[int][]Annotation {
	out := make(map[string]map[int][]Annotation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, annotationPrefix) {
					continue
				}
				body := strings.TrimPrefix(text, annotationPrefix)
				tag, reason, _ := strings.Cut(body, " ")
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]Annotation)
					out[pos.Filename] = byLine
				}
				a := Annotation{Tag: tag, Reason: strings.TrimSpace(reason), Line: pos.Line}
				byLine[a.Line] = append(byLine[a.Line], a)
			}
		}
	}
	return out
}

// AnnotationAt returns the //smb:<tag> annotation governing pos: one on
// the same source line (trailing comment) or on the line immediately
// above (preceding comment).
func (p *Pass) AnnotationAt(tag string, pos token.Pos) (Annotation, bool) {
	position := p.Fset.Position(pos)
	byLine := p.annots[position.Filename]
	if byLine == nil {
		return Annotation{}, false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, a := range byLine[line] {
			if a.Tag == tag {
				return a, true
			}
		}
	}
	return Annotation{}, false
}

// AnnotationAtLine is AnnotationAt for positions that arrive as a file
// base name plus line number instead of a token.Pos — the form
// compiler diagnostics (`go build -gcflags=-m=2`) report. Filenames
// are matched on their base name, which is unique within a package.
func (p *Pass) AnnotationAtLine(tag, fileBase string, line int) (Annotation, bool) {
	for filename, byLine := range p.annots {
		if filepath.Base(filename) != fileBase {
			continue
		}
		for _, l := range []int{line, line - 1} {
			for _, a := range byLine[l] {
				if a.Tag == tag {
					return a, true
				}
			}
		}
	}
	return Annotation{}, false
}

// LinePos converts a compiler-diagnostic position (file base name plus
// line) back into a token.Pos inside one of the pass's files, so
// diagnostics derived from `go build` output carry real positions. It
// returns token.NoPos when no parsed file matches.
func LinePos(p *Pass, fileBase string, line int) token.Pos {
	for _, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf == nil || filepath.Base(tf.Name()) != fileBase {
			continue
		}
		if line < 1 || line > tf.LineCount() {
			return token.NoPos
		}
		return tf.LineStart(line)
	}
	return token.NoPos
}

// FuncAnnotated reports whether fn's doc comment carries //smb:<tag>.
func FuncAnnotated(tag string, fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == annotationPrefix+tag || strings.HasPrefix(text, annotationPrefix+tag+" ") {
			return true
		}
	}
	return false
}

// enginePackages names the packages whose code feeds simulation
// results and must therefore stay bit-deterministic: the replay
// engines, the policies, the OPT proxies, the harness, the traffic
// and fault schedules, and the proof checkers. Matching is by final
// import-path element so analyzer fixtures (testdata/src/core) exercise
// the same predicate as the real tree (smbm/internal/core).
var enginePackages = map[string]bool{
	"core":      true,
	"policy":    true,
	"opt":       true,
	"sim":       true,
	"faults":    true,
	"traffic":   true,
	"adversary": true,
	"singleq":   true,
	"mapcheck":  true,
}

// wallclockExempt names the packages where reading the wall clock is
// the point: operator-facing progress reporting, benchmark
// timestamping, and the smbsimd selftest's throughput measurement.
// Everything else must not observe real time.
var wallclockExempt = map[string]bool{
	"cli":       true,
	"report":    true,
	"benchjson": true,
	"smbsimd":   true,
}

// policyPackages names the packages that hold buffer-management
// policies: pure functions over a read-only switch view. The fastviewro
// analyzer forbids writes through FastView-returned slices there.
var policyPackages = map[string]bool{
	"policy": true,
}

// concFencePackages names the packages inside the deterministic-engine
// fence checked by concfence: the bit-reproducible replay core and the
// pure data structures it is built from. No goroutines, channel
// operations or sync primitives may appear there without a
// //smb:conc-ok <reason> annotation — the fence is what keeps the
// sharded runtime's shard boundary auditable: each shard of
// internal/shard steps a fenced core.Switch single-threaded, and the
// deterministic engine stays the differential oracle. Concurrency
// lives outside, in shard/sim/lease/cli/obs and cmd/smbsimd, which
// are deliberately absent from this list.
var concFencePackages = map[string]bool{
	"core":    true,
	"policy":  true,
	"opt":     true,
	"pkt":     true,
	"traffic": true,
	"deque":   true,
	"bmset":   true,
	"singleq": true,
}

// EnginePackage reports whether the import path names one of the
// deterministic engine packages (matched on the final path element).
func EnginePackage(path string) bool { return enginePackages[PathBase(path)] }

// ConcFencePackage reports whether the import path names a package
// inside the deterministic-engine concurrency fence (matched on the
// final path element), where concfence forbids goroutines, channel
// operations and sync primitives without an annotation.
func ConcFencePackage(path string) bool { return concFencePackages[PathBase(path)] }

// ConcFencePackageList returns the sorted fenced package names, for
// documentation and tests.
func ConcFencePackageList() []string {
	out := make([]string, 0, len(concFencePackages))
	for name := range concFencePackages {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PolicyPackage reports whether the import path names a policy package
// (matched on the final path element), whose code is bound by the
// read-only FastView contract checked by fastviewro.
func PolicyPackage(path string) bool { return policyPackages[PathBase(path)] }

// WallclockExempt reports whether the import path is allow-listed for
// wall-clock reads (matched on the final path element).
func WallclockExempt(path string) bool { return wallclockExempt[PathBase(path)] }

// LeaseClockPackage reports whether the import path names a
// lease-ledger package (matched on the final path element). These
// packages are neither fully exempt from the wall-clock contract nor
// fully bound by it: wall-clock reads are legal there only inside
// functions annotated //smb:leaseclock <reason>, enforced by the
// leaseclock analyzer, to which wallclock delegates them.
func LeaseClockPackage(path string) bool { return PathBase(path) == "lease" }

// EnginePackageList returns the sorted engine package names, for
// documentation and tests.
func EnginePackageList() []string {
	out := make([]string, 0, len(enginePackages))
	for name := range enginePackages {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PathBase returns the final element of an import path.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// RunAnalyzer applies one analyzer to one loaded package and returns
// its diagnostics sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Path:      pkg.Path,
		Dir:       pkg.Dir,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		annots:    parseAnnotations(pkg.Fset, pkg.Files),
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
