// Package seedrand implements the seeding analyzer: all randomness in
// the repository must flow from an explicitly seeded *rand.Rand carried
// through a config or spec, so the MMPP traffic and fault schedules the
// Section V simulation study depends on are exactly reproducible from
// their recorded seeds.
//
// It forbids, in every package:
//
//   - the top-level convenience functions of math/rand and
//     math/rand/v2 (rand.Intn, rand.Float64, rand.Perm, …), which draw
//     from the process-global, unseeded source;
//   - constructing a source or generator from the wall clock
//     (rand.NewSource(time.Now().UnixNano()) and friends), which makes
//     every run different by design.
//
// Constructors (rand.New, rand.NewSource, rand.NewZipf, rand.NewPCG,
// rand.NewChaCha8) with explicit seeds and all methods on *rand.Rand
// remain available.
package seedrand

import (
	"go/ast"
	"go/types"

	"smbm/internal/lint"
)

// Analyzer is the seedrand analyzer instance.
var Analyzer = &lint.Analyzer{
	Name: "seedrand",
	Doc: "forbid top-level math/rand functions and wall-clock seeding; " +
		"randomness must flow from an explicitly seeded *rand.Rand",
	Run: run,
}

// constructors are the math/rand functions that build explicit
// generators rather than drawing from the global source.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// seedTaking are the constructors whose arguments are seeds, checked
// for wall-clock derivation. rand.New takes a Source, whose own
// construction is checked at its own call site.
var seedTaking = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// run applies seedrand to one package.
func run(pass *lint.Pass) error {
	if pass.NeedsTypes() {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on an explicit generator are fine
			}
			name := fn.Name()
			if !constructors[name] {
				pass.Reportf(call.Pos(), "top-level %s.%s draws from the process-global source; draw from an explicitly seeded *rand.Rand threaded through the config/spec", fn.Pkg().Path(), name)
				return true
			}
			if seedTaking[name] && argsReadWallClock(pass, call) {
				pass.Reportf(call.Pos(), "%s.%s seeded from the wall clock; thread an explicit seed through the config/spec so runs are reproducible", fn.Pkg().Path(), name)
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves the called function object, nil when the callee
// is not a named function (builtins, conversions, function values).
func calleeFunc(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// argsReadWallClock reports whether any argument subtree calls
// time.Now, time.Since or time.Until.
func argsReadWallClock(pass *lint.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, inner)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			switch fn.Name() {
			case "Now", "Since", "Until":
				found = true
				return false
			}
			return true
		})
	}
	return found
}
