package seedrand_test

import (
	"testing"

	"smbm/internal/lint/linttest"
	"smbm/internal/lint/seedrand"
)

// TestSeedrand runs the analyzer over one flagged and one clean
// fixture package.
func TestSeedrand(t *testing.T) {
	linttest.Run(t, "testdata", seedrand.Analyzer, "traffic", "clean")
}
