// Package traffic is a seedrand fixture: global-source draws and
// wall-clock seeding are flagged, explicit seeded generators pass.
package traffic

import (
	"math/rand"
	"time"
)

// GlobalDraws uses the process-global source and is flagged per call.
func GlobalDraws() (int, float64) {
	n := rand.Intn(10)                 // want `top-level math/rand.Intn`
	f := rand.Float64()                // want `top-level math/rand.Float64`
	rand.Shuffle(n, func(int, int) {}) // want `top-level math/rand.Shuffle`
	return n, f
}

// WallClockSeed constructs a generator whose seed changes every run.
func WallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock`
}

// Seeded threads an explicit seed and draws from the generator: the
// contract the rest of the repository follows.
func Seeded(seed int64) (int, float64) {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10), rng.Float64()
}
