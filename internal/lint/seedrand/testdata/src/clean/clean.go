// Package clean is a seedrand fixture with only compliant randomness.
package clean

import "math/rand"

// Roll draws from a caller-provided, explicitly seeded generator.
func Roll(rng *rand.Rand, sides int) int {
	return rng.Intn(sides) + 1
}

// Derive builds a sub-generator from a derived (still explicit) seed.
func Derive(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x7f4a7c15))
}
