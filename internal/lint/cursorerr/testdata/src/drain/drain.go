// Package drain is a cursorerr fixture: loops that drain a
// cursor-shaped value without a following Err() check are flagged.
package drain

// Cursor is cursor-shaped: niladic Next plus Err() error.
type Cursor struct{ n int }

// Next emits the next burst.
func (c *Cursor) Next() []int { c.n--; return nil }

// Err reports the sticky error.
func (c *Cursor) Err() error { return nil }

// Close releases the cursor.
func (c *Cursor) Close() error { return nil }

// Source has Next but no Err: not cursor-shaped.
type Source struct{}

// Next emits the next burst.
func (s *Source) Next() []int { return nil }

// Warm drains a fixed number of bursts and forgets the error.
func Warm(cur *Cursor, n int) {
	for t := 0; t < n; t++ { // want `loop drains cursor cur but is not followed by a cur.Err\(\) check`
		cur.Next()
	}
}

// RangeDrain drains inside a range loop and forgets the error.
func RangeDrain(cur *Cursor, xs []int) {
	for range xs { // want `loop drains cursor cur but is not followed by a cur.Err\(\) check`
		cur.Next()
	}
}

// WrongCursor checks Err on a different cursor.
func WrongCursor(a, b *Cursor) {
	for i := 0; i < 3; i++ { // want `loop drains cursor a but is not followed by a a.Err\(\) check`
		a.Next()
	}
	_ = b.Err()
}

// NotACursor drains a Source: no Err method, no contract.
func NotACursor(src *Source, n int) {
	for t := 0; t < n; t++ {
		src.Next()
	}
}
