// Package drainclean is a cursorerr fixture whose drain loops all
// honor the sticky-error contract.
package drainclean

// Cursor is cursor-shaped: niladic Next plus Err() error.
type Cursor struct{ n int }

// Next emits the next burst.
func (c *Cursor) Next() []int { c.n--; return nil }

// Err reports the sticky error.
func (c *Cursor) Err() error { return nil }

// After checks Err immediately after the loop.
func After(cur *Cursor, n int) error {
	for t := 0; t < n; t++ {
		cur.Next()
	}
	return cur.Err()
}

// Outer drains inside an if block; the Err check sits at the
// enclosing nesting level, which still follows the loop.
func Outer(cur *Cursor, warm bool) error {
	if warm {
		for t := 0; t < 4; t++ {
			cur.Next()
		}
	}
	return cur.Err()
}

// Branched checks Err in a following if statement.
func Branched(cur *Cursor, xs []int) int {
	total := 0
	for range xs {
		total += len(cur.Next())
	}
	if err := cur.Err(); err != nil {
		return -1
	}
	return total
}

// Inner performs a periodic Err poll inside the loop and a final one
// after it, mirroring the engine's drain loops.
func Inner(cur *Cursor, n int) error {
	for t := 0; t < n; t++ {
		cur.Next()
		if t%8 == 0 {
			if err := cur.Err(); err != nil {
				return err
			}
		}
	}
	return cur.Err()
}
