// Package cursorerr implements the sticky-error contract check for
// streaming cursors (DESIGN.md §10), modeled on the standard library's
// rows.Err vet check: a failed traffic.Cursor emits empty bursts from
// the failing slot on, so a loop that drains one and never polls Err
// would silently simulate a truncated stream. Every loop calling
// cur.Next() on a cursor-shaped value (method set with Next() and
// Err() error) must therefore be followed — at its own or any
// enclosing nesting level of the same function — by a cur.Err() call
// on the same cursor.
//
// Matching is structural rather than by import path, so any cursor
// implementing the Next/Err shape is covered and fixtures need not
// import the engine.
package cursorerr

import (
	"go/ast"
	"go/types"

	"smbm/internal/lint"
)

// Analyzer is the cursorerr analyzer instance.
var Analyzer = &lint.Analyzer{
	Name: "cursorerr",
	Doc: "every loop draining a cursor (Next()+Err() error method set) " +
		"must be followed by an Err() check on that cursor",
	Run: run,
}

// run applies cursorerr to one package.
func run(pass *lint.Pass) error {
	if pass.NeedsTypes() {
		return nil
	}
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			lint.WalkStmts(body, func(s ast.Stmt, following [][]ast.Stmt) {
				switch s.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
				default:
					return
				}
				for _, cur := range drainedCursors(pass, s) {
					if !errChecked(pass, cur, following) {
						pass.Reportf(s.Pos(), "loop drains cursor %s but is not followed by a %s.Err() check (sticky-error contract)", cur.text, cur.text)
					}
				}
			})
		}
	}
	return nil
}

// functionBodies returns every declared function and function literal
// body in the file.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		}
		return true
	})
	return bodies
}

// cursorRef identifies one drained cursor: the receiver's resolved
// object (for plain identifiers) or its textual rendering, plus the
// display text.
type cursorRef struct {
	obj  types.Object
	text string
}

// drainedCursors returns the distinct cursor-shaped receivers whose
// Next() is called directly inside the loop (nested loops drain on
// their own account and function literals run at another time).
func drainedCursors(pass *lint.Pass, loop ast.Stmt) []cursorRef {
	var out []cursorRef
	seen := map[string]bool{}
	first := true
	ast.Inspect(loop, func(n ast.Node) bool {
		if !first {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				return false
			}
		}
		first = false
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Next" {
			return true
		}
		if !cursorShaped(pass, pass.TypeOf(sel.X)) {
			return true
		}
		ref := resolve(pass, sel.X)
		if !seen[ref.text] {
			seen[ref.text] = true
			out = append(out, ref)
		}
		return true
	})
	return out
}

// cursorShaped reports whether t's method set (value or pointer) has
// both Next() with no parameters and Err() error.
func cursorShaped(pass *lint.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	return hasNiladic(pass, t, "Next", false) && hasNiladic(pass, t, "Err", true)
}

// hasNiladic reports whether t has a no-parameter method of the given
// name; wantErr additionally requires a single error result.
func hasNiladic(pass *lint.Pass, t types.Type, name string, wantErr bool) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 0 {
		return false
	}
	if !wantErr {
		return true
	}
	if sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// resolve renders the receiver expression into a comparable reference.
func resolve(pass *lint.Pass, expr ast.Expr) cursorRef {
	if id, ok := expr.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return cursorRef{obj: obj, text: id.Name}
		}
	}
	return cursorRef{text: types.ExprString(expr)}
}

// errChecked reports whether any statement following the loop (at any
// enclosing nesting level) calls Err() on the same cursor.
func errChecked(pass *lint.Pass, cur cursorRef, following [][]ast.Stmt) bool {
	for _, list := range following {
		for _, stmt := range list {
			if containsErrCall(pass, stmt, cur) {
				return true
			}
		}
	}
	return false
}

// containsErrCall reports whether stmt's subtree calls cur.Err().
func containsErrCall(pass *lint.Pass, stmt ast.Stmt, cur cursorRef) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Err" {
			return true
		}
		ref := resolve(pass, sel.X)
		if (cur.obj != nil && ref.obj == cur.obj) || (cur.obj == nil && ref.text == cur.text) {
			found = true
			return false
		}
		return true
	})
	return found
}
