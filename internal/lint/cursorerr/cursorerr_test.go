package cursorerr_test

import (
	"testing"

	"smbm/internal/lint/cursorerr"
	"smbm/internal/lint/linttest"
)

// TestCursorerr runs the analyzer over one flagged and one clean
// fixture package.
func TestCursorerr(t *testing.T) {
	linttest.Run(t, "testdata", cursorerr.Analyzer, "drain", "drainclean")
}
