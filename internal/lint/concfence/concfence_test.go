package concfence_test

import (
	"testing"

	"smbm/internal/lint/concfence"
	"smbm/internal/lint/linttest"
)

// TestConcfence runs the analyzer over a flagged engine-package
// fixture, a clean annotated engine-package fixture, and an exempt
// harness-package fixture.
func TestConcfence(t *testing.T) {
	linttest.Run(t, "testdata", concfence.Analyzer, "core", "traffic", "sim")
}
