// Package core is a concfence fixture named after a fenced engine
// package: every concurrency construct is flagged, and an annotation
// without a reason is itself a violation.
package core

import "sync" // want `import of sync in deterministic engine package`

// Guard wraps a mutex into engine state.
type Guard struct {
	// Mu is the offending primitive.
	Mu sync.Mutex
}

// Spawn launches a goroutine per step.
func Spawn(f func()) {
	go f() // want `go statement in deterministic engine package`
}

// Pipe builds and works a channel.
func Pipe(n int) int {
	ch := make(chan int, 1) // want `channel type in deterministic engine package`
	ch <- n                 // want `channel send in deterministic engine package`
	v := <-ch               // want `channel receive in deterministic engine package`
	close(ch)               // want `close of a channel in deterministic engine package`
	return v
}

// Wait selects over nothing.
func Wait() {
	select { // want `select statement in deterministic engine package`
	default:
	}
}

// DrainAll ranges over a channel.
func DrainAll(ch chan int) int { // want `channel type in deterministic engine package`
	total := 0
	for v := range ch { // want `range over a channel in deterministic engine package`
		total += v
	}
	return total
}

// BadAnnotation exempts a construct without the mandatory reason.
func BadAnnotation(f func()) {
	//smb:conc-ok
	go f() // want `//smb:conc-ok requires a reason`
}
