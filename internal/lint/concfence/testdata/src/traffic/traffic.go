// Package traffic is a concfence fixture named after a fenced engine
// package whose concurrency is deliberate and annotated: every
// construct carries //smb:conc-ok with a reason, on the line or on
// the function, so the fixture stays clean.
package traffic

//smb:conc-ok cross-replay memo guard, results replayed bit-identically
import "sync"

// Memo is a cross-replay cache in the style of traffic.Memoize: the
// mutex serializes installs but the recorded stream is bit-identical
// to the generator's, so no concurrency reaches results.
type Memo struct {
	mu sync.Mutex //smb:conc-ok guards the install race only, never ordering
	v  int
	ok bool
}

// Get returns the cached value, computing it once.
//
//smb:conc-ok double-checked install; every caller observes the same value
func (m *Memo) Get(compute func() int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.ok {
		m.v, m.ok = compute(), true
	}
	return m.v
}

// Pure is ordinary engine code: nothing to annotate, nothing flagged.
func Pure(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
