// Package sim is a concfence fixture named after a harness package
// outside the engine fence: goroutines, channels and sync primitives
// are its job and pass without annotation.
package sim

import "sync"

// FanOut runs workers concurrently and merges their results — exactly
// the shape the fence exists to keep out of the engine, legal here.
func FanOut(work []func() int) int {
	results := make(chan int, len(work))
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- w()
		}()
	}
	wg.Wait()
	close(results)
	total := 0
	for v := range results {
		total += v
	}
	return total
}
