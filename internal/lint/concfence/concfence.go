// Package concfence fences concurrency out of the deterministic
// engine. The packages inside the fence (core, policy, opt, pkt,
// traffic, deque, bmset, singleq — lint.ConcFencePackage) are the
// bit-reproducible replay engine the differential suites treat as an
// oracle; the planned sharded runtime (ROADMAP `smbsimd`) wraps
// concurrency *around* them, never inside. Until that boundary is
// load-bearing, nothing stops a PR from dropping a `go` statement or
// a mutex into internal/core and silently breaking bit reproduction —
// so the fence is enforced at the source level:
//
//   - no `go` statements;
//   - no channel operations: sends, receives, close, select, range
//     over a channel, channel types (including make(chan …));
//   - no imports of sync or sync/atomic.
//
// A deliberate exception carries //smb:conc-ok <reason> on the line
// (or the line above, or the enclosing function's doc comment); the
// reason is mandatory. The canonical example is traffic's Memoize
// provider, whose mutex guards a cross-replay cache that never
// influences the bit stream cursors observe. The harness packages
// (sim, lease, cli, obs) are outside the fence: orchestrating
// goroutines is their job.
package concfence

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"smbm/internal/lint"
)

// Analyzer is the concfence analyzer instance.
var Analyzer = &lint.Analyzer{
	Name: "concfence",
	Doc: "forbid goroutines, channel operations and sync primitives in " +
		"the deterministic engine packages without //smb:conc-ok <reason>",
	Run: run,
}

// fencedImports names the import paths the fence rejects.
var fencedImports = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
}

// run applies concfence to one package.
func run(pass *lint.Pass) error {
	if !lint.ConcFencePackage(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if fencedImports[path] {
				reportAt(pass, imp.Pos(), "import of %s in deterministic engine package: concurrency belongs outside the engine fence", path)
			}
		}
		for _, decl := range file.Decls {
			fn, isFunc := decl.(*ast.FuncDecl)
			if isFunc && fn.Body != nil {
				checkFunc(pass, fn)
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				checkNode(pass, n)
				return true
			})
		}
	}
	return nil
}

// checkFunc walks one function body; the declaration's doc-level
// //smb:conc-ok (with reason) licenses the whole function.
func checkFunc(pass *lint.Pass, fn *ast.FuncDecl) {
	if fnAnn, ok := funcConcOK(fn); ok {
		if fnAnn == "" {
			pass.Reportf(fn.Pos(), "//smb:conc-ok requires a reason explaining why this concurrency cannot reach simulation results")
		}
		return
	}
	if fn.Recv != nil {
		ast.Inspect(fn.Recv, func(n ast.Node) bool { checkNode(pass, n); return true })
	}
	ast.Inspect(fn.Type, func(n ast.Node) bool { checkNode(pass, n); return true })
	ast.Inspect(fn.Body, func(n ast.Node) bool { checkNode(pass, n); return true })
}

// checkNode flags one fenced construct.
func checkNode(pass *lint.Pass, n ast.Node) {
	switch n := n.(type) {
	case *ast.GoStmt:
		reportAt(pass, n.Pos(), "go statement in deterministic engine package: goroutines break bit reproduction")
	case *ast.SendStmt:
		reportAt(pass, n.Pos(), "channel send in deterministic engine package")
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			reportAt(pass, n.Pos(), "channel receive in deterministic engine package")
		}
	case *ast.SelectStmt:
		reportAt(pass, n.Pos(), "select statement in deterministic engine package")
	case *ast.ChanType:
		reportAt(pass, n.Pos(), "channel type in deterministic engine package")
	case *ast.RangeStmt:
		if t := pass.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				reportAt(pass, n.Pos(), "range over a channel in deterministic engine package")
			}
		}
	case *ast.CallExpr:
		if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
					reportAt(pass, n.Pos(), "close of a channel in deterministic engine package")
				}
			}
		}
	}
}

// funcConcOK reports whether fn's doc comment carries //smb:conc-ok,
// returning its reason.
func funcConcOK(fn *ast.FuncDecl) (reason string, ok bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "smb:conc-ok" {
			return "", true
		}
		if rest, found := strings.CutPrefix(text, "smb:conc-ok "); found {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// reportAt emits a diagnostic unless the line (or the line above)
// carries //smb:conc-ok with a reason; an annotation without a reason
// is itself a violation.
func reportAt(pass *lint.Pass, pos token.Pos, format string, args ...any) {
	if ann, ok := pass.AnnotationAt("conc-ok", pos); ok {
		if ann.Reason == "" {
			pass.Reportf(pos, "//smb:conc-ok requires a reason explaining why this concurrency cannot reach simulation results")
		}
		return
	}
	pass.Reportf(pos, format, args...)
}
