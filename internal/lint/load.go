package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded unit of analysis: parsed syntax plus (in
// full mode) type information. It is the input to RunAnalyzer.
type Package struct {
	// Path is the import path, or the bare directory name for fixture
	// and syntax-only packages.
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files holds the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package, nil in syntax-only mode.
	Types *types.Package
	// Info holds type and object resolution for Files, nil in
	// syntax-only mode.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -deps -export -json` over patterns in dir
// and decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer by reading the compiler's
// export data files recorded by `go list -export`, so dependencies are
// resolved without any network or GOPATH access.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// parseDirFiles parses the named files of dir into fset with comments
// retained.
func parseDirFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck type-checks one parsed package against the export-data
// importer. Hard type errors abort: the suite analyzes only code that
// already compiles, so an error here means the loader and the compiler
// disagree and diagnostics could not be trusted.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// Load loads and type-checks the packages matched by the go package
// patterns (e.g. "./...") relative to dir, resolving every dependency
// from the build cache's export data. Test files are not analyzed: the
// enforced contracts govern the code that produces results, while tests
// intentionally do wall-clock, map-order and allocation-heavy work.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var roots []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, root := range roots {
		if len(root.GoFiles) == 0 {
			continue
		}
		files, err := parseDirFiles(fset, root.Dir, root.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", root.ImportPath, err)
		}
		pkg, info, err := typeCheck(fset, root.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			Path:  root.ImportPath,
			Dir:   root.Dir,
			Fset:  fset,
			Files: files,
			Types: pkg,
			Info:  info,
		})
	}
	return out, nil
}

// LoadDir loads and type-checks the single package rooted at dir as
// import path path, resolving its imports from the build cache. It is
// the fixture loader behind linttest: fixture packages live outside the
// module (under testdata/) and import only the standard library.
func LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseDirFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}
	// Resolve the fixture's imports (and their transitive dependencies)
	// through one `go list -export` invocation.
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	pkg, info, err := typeCheck(fset, path, files, exportImporter(fset, exports))
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// LoadSyntax parses every non-test Go file under root into per-directory
// syntax-only packages (nil type information), skipping testdata and
// hidden directories. It is the cheap loader behind the doclint test
// wrapper: exporteddoc needs no type information, and parsing alone
// keeps `go test ./...` fast.
func LoadSyntax(root string) ([]*Package, error) {
	byDir := make(map[string][]string)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		byDir[dir] = append(byDir[dir], filepath.Base(path))
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	fset := token.NewFileSet()
	var out []*Package
	for _, dir := range dirs {
		names := byDir[dir]
		sort.Strings(names)
		files, err := parseDirFiles(fset, dir, names)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{Path: filepath.ToSlash(dir), Dir: dir, Fset: fset, Files: files})
	}
	return out, nil
}
