package cli

import (
	"fmt"
	"io"

	"smbm/internal/core"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

// GenerateOptions drives Generate (cmd/tracegen).
type GenerateOptions struct {
	// Slots, Ports, MaxLabel and Sources shape the trace.
	Slots, Ports, MaxLabel, Sources int
	// Rate is the mean packets per slot (0 = 1.5x ports).
	Rate float64
	// Mode selects labeling: "work", "value", "value-by-port" or
	// "work-value" (combined model).
	Mode string
	// Affinity pins each source to one port.
	Affinity bool
	// Seed makes the trace reproducible.
	Seed int64
	// Binary selects the compact binary trace format (default: text).
	Binary bool
}

// buildMMPP assembles the generator config for the options.
func (o GenerateOptions) buildMMPP() (traffic.MMPPConfig, error) {
	maxLabel := o.MaxLabel
	if maxLabel == 0 {
		maxLabel = o.Ports
	}
	rate := o.Rate
	if rate == 0 {
		rate = 1.5 * float64(o.Ports)
	}
	cfg := traffic.MMPPConfig{
		Sources:      o.Sources,
		POnOff:       0.1,
		POffOn:       0.01,
		Ports:        o.Ports,
		MaxLabel:     maxLabel,
		PortAffinity: o.Affinity,
		Seed:         o.Seed,
	}
	switch o.Mode {
	case "work":
		cfg.Label = traffic.LabelWorkByPort
		cfg.PortWork = core.ContiguousWorks(o.Ports)
		cfg.MaxLabel = o.Ports
	case "value":
		cfg.Label = traffic.LabelValueUniform
	case "value-by-port":
		cfg.Label = traffic.LabelValueByPort
	case "work-value":
		cfg.Label = traffic.LabelWorkValue
		cfg.PortWork = core.ContiguousWorks(o.Ports)
	default:
		return cfg, fmt.Errorf("unknown -mode %q", o.Mode)
	}
	cfg.LambdaOn = cfg.LambdaForRate(rate)
	return cfg, nil
}

// Generate writes a synthetic trace to w.
func Generate(w io.Writer, o GenerateOptions) error {
	cfg, err := o.buildMMPP()
	if err != nil {
		return err
	}
	gen, err := traffic.NewMMPP(cfg)
	if err != nil {
		return err
	}
	tr := traffic.Record(gen, o.Slots)
	if o.Binary {
		return tr.WriteBinary(w)
	}
	return tr.Write(w)
}

// Stats reads a trace (text or binary) from r and writes summary
// statistics to w. The trace is streamed in a single pass, so
// arbitrarily long files are summarized in O(peak burst) memory.
func Stats(w io.Writer, r io.Reader) error {
	cur, slots, err := traffic.StreamAny(r)
	if err != nil {
		return err
	}
	defer cur.Close()
	var (
		packets, work, value int
		peak                 int
	)
	for t := 0; t < slots; t++ {
		slot := cur.Next()
		packets += len(slot)
		if len(slot) > peak {
			peak = len(slot)
		}
		for _, p := range slot {
			work += p.Work
			value += p.Value
		}
	}
	if err := cur.Err(); err != nil {
		return err
	}
	rate := 0.0
	if slots > 0 {
		rate = float64(packets) / float64(slots)
	}
	_, err = fmt.Fprintf(w, `slots:        %d
packets:      %d
mean rate:    %.3f pkts/slot
peak burst:   %d pkts/slot
total work:   %d cycles
total value:  %d
`, slots, packets, rate, peak, work, value)
	return err
}

// ReplayOptions drives Replay (cmd/tracegen -replay).
type ReplayOptions struct {
	// Policy names the policy to replay under.
	Policy string
	// Ports, MaxLabel, Buffer and Flush shape the switch.
	Ports, MaxLabel, Buffer, Flush int
	// Mode matches GenerateOptions.Mode.
	Mode string
	// Input, when non-empty, streams the trace from this file path
	// instead of materializing r: each replay (policy and OPT proxy)
	// re-reads the file through its own cursor, so memory stays
	// O(peak burst) regardless of trace length.
	Input string
}

// Replay reads a trace from r — or streams it from o.Input when set —
// drives the named policy and the OPT proxy over it, and writes the
// outcome to w.
func Replay(w io.Writer, r io.Reader, o ReplayOptions) error {
	var src traffic.Provider
	if o.Input != "" {
		fp, err := traffic.OpenFile(o.Input)
		if err != nil {
			return err
		}
		src = fp
	} else {
		tr, err := traffic.ReadAnyTrace(r)
		if err != nil {
			return err
		}
		src = tr
	}
	maxLabel := o.MaxLabel
	if maxLabel == 0 {
		maxLabel = o.Ports
	}
	buffer := o.Buffer
	if buffer == 0 {
		buffer = 2 * o.Ports
	}
	cfg := core.Config{Ports: o.Ports, Buffer: buffer, MaxLabel: maxLabel, Speedup: 1}
	var pol core.Policy
	switch o.Mode {
	case "work":
		cfg.Model = core.ModelProcessing
		cfg.PortWork = core.ContiguousWorks(o.Ports)
		cfg.MaxLabel = o.Ports
		pol = policy.ByName(o.Policy)
	case "value", "value-by-port":
		cfg.Model = core.ModelValue
		pol = policy.ValueByName(o.Policy)
	case "work-value":
		cfg.Model = core.ModelCombined
		cfg.PortWork = core.ContiguousWorks(o.Ports)
		if cfg.MaxLabel < o.Ports {
			cfg.MaxLabel = o.Ports
		}
		pol = policy.CombinedByName(o.Policy)
	default:
		return fmt.Errorf("unknown -mode %q", o.Mode)
	}
	if pol == nil {
		return fmt.Errorf("unknown policy %q for mode %q", o.Policy, o.Mode)
	}
	sw, err := core.New(cfg, pol)
	if err != nil {
		return err
	}
	st, err := sim.RunTrace(sw, src, o.Flush)
	if err != nil {
		return err
	}
	opt, err := sim.NewOptProxy(cfg)
	if err != nil {
		return err
	}
	optStats, err := sim.RunTrace(opt, src, o.Flush)
	if err != nil {
		return err
	}
	obj, optObj := st.Throughput(cfg.Model), optStats.Throughput(cfg.Model)
	if _, err := fmt.Fprintf(w, `policy:       %s (%s model)
arrived:      %d
transmitted:  %d packets (objective %d)
dropped:      %d, pushed out: %d
opt proxy:    %d
`, pol.Name(), cfg.Model, st.Arrived, st.Transmitted, obj, st.Dropped, st.PushedOut, optObj); err != nil {
		return err
	}
	if obj > 0 {
		_, err = fmt.Fprintf(w, "ratio:        %.4f\n", float64(optObj)/float64(obj))
	}
	return err
}
