package cli

import (
	"fmt"
	"io"

	"smbm/internal/core"
	"smbm/internal/policy"
	"smbm/internal/search"
)

// ConjectureOptions drives Conjecture (cmd/conjecture).
type ConjectureOptions struct {
	// Policies names the policies to hunt (empty = LWD and MRD, the two
	// open-problem targets).
	Policies []string
	// Trials, Climb, Slots and Seed tune the search.
	Trials, Climb, Slots int
	// Seed seeds the hunt's random exploration.
	Seed int64
}

// Conjecture runs worst-case hunts and writes the certified worst ratios
// (with witness traces) to w.
func Conjecture(w io.Writer, o ConjectureOptions) error {
	names := o.Policies
	if len(names) == 0 {
		names = []string{"LWD", "MRD"}
	}
	for _, name := range names {
		spec, err := huntSpec(name)
		if err != nil {
			return err
		}
		spec.Trials = o.Trials
		spec.Climb = o.Climb
		spec.Slots = o.Slots
		spec.Seed = o.Seed
		worst, err := search.Run(spec)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s: worst certified ratio %.4f (exact %d vs %d) over %d instances\n",
			name, worst.Ratio, worst.Exact, worst.Alg, worst.Evaluated); err != nil {
			return err
		}
		if worst.Ratio > 1.0 {
			if _, err := fmt.Fprintln(w, "  witness trace:"); err != nil {
				return err
			}
			for s, burst := range worst.Trace {
				if len(burst) == 0 {
					continue
				}
				if _, err := fmt.Fprintf(w, "    slot %d: %v\n", s, burst); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// huntSpec maps a policy name to its tiny hunting ground.
func huntSpec(name string) (search.Spec, error) {
	procCfg := core.Config{
		Model:    core.ModelProcessing,
		Ports:    3,
		Buffer:   4,
		MaxLabel: 3,
		Speedup:  1,
		PortWork: []int{1, 2, 3},
	}
	valCfg := core.Config{
		Model:    core.ModelValue,
		Ports:    3,
		Buffer:   4,
		MaxLabel: 4,
		Speedup:  1,
	}
	if p := policy.ByName(name); p != nil {
		return search.Spec{Cfg: procCfg, Policy: p, MaxBurst: 4}, nil
	}
	if p := policy.ValueByName(name); p != nil {
		return search.Spec{Cfg: valCfg, Policy: p, MaxBurst: 4}, nil
	}
	return search.Spec{}, fmt.Errorf("unknown policy %q", name)
}
