// Package cli implements the bodies of the repository's commands with
// injectable I/O, so the CLIs stay thin and the command logic is tested
// like any other package.
package cli

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"time"

	"smbm/internal/adversary"
	"smbm/internal/experiments"
	"smbm/internal/faults"
	"smbm/internal/obs"
	"smbm/internal/sim"
	"smbm/internal/spec"
	"smbm/internal/tablefmt"
)

// PanelOptions drives Panels (cmd/smbsim).
type PanelOptions struct {
	// Experiment selects one panel, "arch", "latency" or "faults";
	// empty runs the nine Fig. 5 panels.
	Experiment string
	// Opts scales the runs.
	Opts experiments.Options
	// Plot appends an ASCII chart per panel; CSV replaces tables with
	// CSV blocks.
	Plot, CSV bool
	// Faults, when non-empty, wraps every sweep cell's systems (each
	// policy and the OPT proxy) with this fault plan; its Horizon
	// defaults to the run's slot count.
	Faults faults.Spec
	// CellTimeout bounds each sweep cell (0 = unbounded).
	CellTimeout time.Duration
	// Checkpoint journals completed sweep cells to this file and
	// resumes from it on a re-run (empty = no checkpointing).
	Checkpoint string
	// Ledger runs every sweep through the crash-safe work-leasing ledger
	// in this directory (internal/lease): several smbsim processes
	// sharing the directory divide each sweep's cells among themselves.
	// Mutually exclusive with Checkpoint.
	Ledger string
	// LedgerWorker is this process's worker identity in the ledger.
	LedgerWorker string
	// LeaseTTL bounds how long a crashed worker holds a cell before
	// reclamation (0 = lease.DefaultTTL).
	LeaseTTL time.Duration
	// CellRetries is the leased-mode per-cell retry budget before a cell
	// is reported degraded (0 = lease.DefaultRetries, negative = none).
	CellRetries int
	// WorkerMode suppresses report rendering: a fleet worker computes
	// cells and prints a one-line summary per sweep, leaving tables to
	// the coordinator (or a plain re-run over the same ledger).
	WorkerMode bool
	// Coordinator makes this process an observer: it claims no cells,
	// waits for the fleet to finish each sweep, and renders the merged
	// reports.
	Coordinator bool
	// Obs attaches decision-counter recorders to every policy replay
	// and appends the aggregated counter table to each report.
	Obs bool
	// TraceEvents, when positive, additionally rings the last that many
	// decision events per replay (implies Obs) and dumps each completed
	// cell's surviving events to TraceWriter in the obs text format.
	TraceEvents int
	// TraceWriter receives the event dumps (nil discards them).
	TraceWriter io.Writer
	// Progress, when non-nil, receives every sweep's per-cell progress
	// notifications — cmd/smbsim publishes them through expvar.
	Progress func(sim.SweepProgress)
}

// slots returns the effective trace length of the run.
func (o PanelOptions) slots() int {
	if o.Opts.Slots > 0 {
		return o.Opts.Slots
	}
	return experiments.Defaults().Slots
}

// Panels runs the requested evaluation experiments, writing reports to
// w. Canceling ctx stops the run gracefully: the in-flight sweep
// returns its completed points, which are rendered as a partial table
// before the context's error is returned.
func Panels(ctx context.Context, w io.Writer, o PanelOptions) error {
	ids := experiments.PanelIDs()
	if o.Experiment != "" {
		ids = []string{o.Experiment}
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		switch id {
		case "arch":
			err = archReport(w, o.Opts)
		case "latency":
			err = latencyReport(w, o.Opts)
		case "faults":
			err = faultsReport(w, o.Opts)
		default:
			err = panelReport(ctx, w, id, o)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// faultsReport runs the fault-degradation experiment.
func faultsReport(w io.Writer, opts experiments.Options) error {
	start := time.Now()
	rows, err := experiments.FaultDegradation(opts)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "== faults: graceful degradation under the canonical fault mix (%s) ==\n",
		time.Since(start).Round(time.Millisecond)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, experiments.FaultTable(rows)); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}

// latencyReport runs the buffer-size/latency trade-off experiment.
func latencyReport(w io.Writer, opts experiments.Options) error {
	start := time.Now()
	rows, err := experiments.Latency(opts)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "== latency: delay/throughput trade-off vs B (%s) ==\n",
		time.Since(start).Round(time.Millisecond)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, experiments.LatencyTable(rows)); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}

// RunSpec loads a JSON experiment spec from r, runs it, and renders the
// report like a panel.
func RunSpec(ctx context.Context, w io.Writer, r io.Reader, o PanelOptions) error {
	e, err := spec.Load(r)
	if err != nil {
		return err
	}
	sweep, err := e.ToSweep()
	if err != nil {
		return err
	}
	if o.Opts.Parallelism > 0 {
		sweep.Parallelism = o.Opts.Parallelism
	}
	return renderSweep(ctx, w, sweep, o)
}

func panelReport(ctx context.Context, w io.Writer, id string, o PanelOptions) error {
	sweep, err := experiments.Panel(id, o.Opts)
	if err != nil {
		return err
	}
	return renderSweep(ctx, w, sweep, o)
}

// harden applies the robustness and observability options — fault
// injection, per-cell deadline, checkpoint journal, decision counters,
// event tracing, progress publication — to a sweep before it runs.
func harden(sweep *sim.Sweep, o PanelOptions) {
	sweep.CellTimeout = o.CellTimeout
	sweep.Checkpoint = o.Checkpoint
	sweep.Ledger = o.Ledger
	sweep.LedgerWorker = o.LedgerWorker
	sweep.LeaseTTL = o.LeaseTTL
	sweep.CellRetries = o.CellRetries
	sweep.LedgerObserver = o.Coordinator
	if o.Obs || o.TraceEvents > 0 {
		sweep.Obs = &obs.Options{TraceEvents: o.TraceEvents}
	}
	if o.Progress != nil || (o.TraceEvents > 0 && o.TraceWriter != nil) {
		name, xlabel := sweep.Name, sweep.XLabel
		sweep.Progress = func(p sim.SweepProgress) {
			if o.TraceEvents > 0 && o.TraceWriter != nil {
				for _, r := range p.Results {
					if r.Obs == nil || len(r.Obs.Events) == 0 {
						continue
					}
					label := fmt.Sprintf("%s:%s=%d:seed%d:%s", name, xlabel, p.X, p.SeedIndex, r.Policy)
					// Best effort: a failing trace sink must not abort
					// the sweep that is being debugged through it.
					_ = obs.DumpEvents(o.TraceWriter, label, r.Obs.Events, r.Obs.DroppedEvents)
				}
			}
			if o.Progress != nil {
				o.Progress(p)
			}
		}
	}
	if o.Faults.Empty() {
		return
	}
	fs := o.Faults
	if fs.Horizon == 0 {
		fs.Horizon = int64(o.slots())
	}
	// The fault plan shapes every cell, so it belongs in the checkpoint
	// fingerprint: resuming a faulted journal without -faults (or vice
	// versa) must fail loudly.
	sweep.ConfigDigest += ";faults=" + fs.String()
	build := sweep.Build
	sweep.Build = func(x int, seed int64) (sim.Instance, error) {
		inst, err := build(x, seed)
		if err != nil {
			return inst, err
		}
		inst.Wrap = faults.Wrapper(fs, inst.Cfg.Ports, seed)
		return inst, nil
	}
}

// renderSweep runs the sweep and renders its report. On interruption
// or per-cell failures, any completed points are still rendered —
// marked partial — before the error is propagated.
func renderSweep(ctx context.Context, w io.Writer, sweep *sim.Sweep, o PanelOptions) error {
	harden(sweep, o)
	start := time.Now()
	result, err := sweep.RunContext(ctx)
	if result == nil {
		return err
	}
	if rerr := writeSweepReport(w, result, o, time.Since(start)); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// writeSweepReport renders one (possibly partial) sweep result:
// harness warnings first, then the ratio table (or CSV), then — when
// recorded — the aggregated decision counters.
func writeSweepReport(w io.Writer, result *sim.SweepResult, o PanelOptions, elapsed time.Duration) error {
	marker := ""
	if result.Partial {
		marker = ", partial"
	}
	warnPrefix := "warning: "
	if o.CSV {
		warnPrefix = "# warning: "
	}
	for _, warn := range result.Warnings {
		if _, err := fmt.Fprintf(w, "%s%s\n", warnPrefix, warn); err != nil {
			return err
		}
	}
	if o.WorkerMode {
		// A fleet worker prints only its contribution; tables are the
		// coordinator's job (or a plain re-run over the same ledger).
		var c obs.LeaseCounts
		if result.Lease != nil {
			c = *result.Lease
		}
		_, err := fmt.Fprintf(w, "== %s: worker %s done (%s%s): %d completed, %d abandoned, %d reclaimed, %d lease conflicts ==\n",
			result.Name, o.LedgerWorker, elapsed.Round(time.Millisecond), marker,
			c.Completes, c.Abandons, c.Reclaims, c.Conflicts)
		return err
	}
	if o.CSV {
		_, err := fmt.Fprintf(w, "# %s%s\n%s\n", result.Name, marker, result.CSV())
		return err
	}
	if _, err := fmt.Fprintf(w, "== %s: competitive ratio vs %s (%s%s) ==\n",
		result.Name, result.XLabel, elapsed.Round(time.Millisecond), marker); err != nil {
		return err
	}
	if _, err := io.WriteString(w, result.Table()); err != nil {
		return err
	}
	if t := result.ObsTable(); t != "" {
		if _, err := fmt.Fprintf(w, "-- decision counters (summed over cells) --\n%s", t); err != nil {
			return err
		}
	}
	if t := result.LeaseTable(); t != "" {
		if _, err := fmt.Fprintf(w, "-- lease ledger (this process) --\n%s", t); err != nil {
			return err
		}
	}
	if o.Plot && len(result.Points) > 0 {
		if _, err := fmt.Fprintf(w, "\n%s", result.Plot()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func archReport(w io.Writer, opts experiments.Options) error {
	start := time.Now()
	rows, err := experiments.Architectures(opts)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "== arch: single-queue vs shared-memory architectures (%s) ==\n",
		time.Since(start).Round(time.Millisecond)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, experiments.ArchTable(rows)); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}

// LowerBoundOptions drives LowerBounds (cmd/lowerbound).
type LowerBoundOptions struct {
	// Theorem selects one construction ("1".."11"); empty runs all.
	Theorem string
	// Params override the construction's defaults (require Theorem).
	Params adversary.Params
}

// LowerBounds runs the requested theorem constructions and writes the
// comparison table to w.
func LowerBounds(w io.Writer, o LowerBoundOptions) error {
	var constructions []adversary.Construction
	if o.Theorem == "" {
		if o.Params != (adversary.Params{}) {
			return fmt.Errorf("parameter overrides require -theorem")
		}
		all, err := adversary.All()
		if err != nil {
			return err
		}
		constructions = all
	} else {
		c, err := adversary.ByID("thm"+o.Theorem, o.Params)
		if err != nil {
			return err
		}
		constructions = []adversary.Construction{c}
	}

	headers := []string{"theorem", "policy", "alg", "opt(script)", "measured", "predicted", "asymptotic"}
	rows := make([][]string, 0, len(constructions))
	for _, c := range constructions {
		out, err := c.Run()
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			out.Theorem,
			out.PolicyName,
			strconv.FormatInt(out.AlgThroughput, 10),
			strconv.FormatInt(out.OptThroughput, 10),
			fmt.Sprintf("%.3f", out.Ratio),
			fmt.Sprintf("%.3f", out.Predicted),
			fmt.Sprintf("%s = %.3f", c.Asymptotic, out.AsymptoticValue),
		})
	}
	_, err := io.WriteString(w, tablefmt.Render(headers, rows))
	return err
}
