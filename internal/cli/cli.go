// Package cli implements the bodies of the repository's commands with
// injectable I/O, so the CLIs stay thin and the command logic is tested
// like any other package.
package cli

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"smbm/internal/adversary"
	"smbm/internal/experiments"
	"smbm/internal/sim"
	"smbm/internal/spec"
	"smbm/internal/tablefmt"
)

// PanelOptions drives Panels (cmd/smbsim).
type PanelOptions struct {
	// Experiment selects one panel or "arch"; empty runs the nine
	// Fig. 5 panels.
	Experiment string
	// Opts scales the runs.
	Opts experiments.Options
	// Plot appends an ASCII chart per panel; CSV replaces tables with
	// CSV blocks.
	Plot, CSV bool
}

// Panels runs the requested evaluation experiments, writing reports to w.
func Panels(w io.Writer, o PanelOptions) error {
	ids := experiments.PanelIDs()
	if o.Experiment != "" {
		ids = []string{o.Experiment}
	}
	for _, id := range ids {
		var err error
		switch id {
		case "arch":
			err = archReport(w, o.Opts)
		case "latency":
			err = latencyReport(w, o.Opts)
		default:
			err = panelReport(w, id, o)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// latencyReport runs the buffer-size/latency trade-off experiment.
func latencyReport(w io.Writer, opts experiments.Options) error {
	start := time.Now()
	rows, err := experiments.Latency(opts)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "== latency: delay/throughput trade-off vs B (%s) ==\n",
		time.Since(start).Round(time.Millisecond)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, experiments.LatencyTable(rows)); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}

// RunSpec loads a JSON experiment spec from r, runs it, and renders the
// report like a panel.
func RunSpec(w io.Writer, r io.Reader, o PanelOptions) error {
	e, err := spec.Load(r)
	if err != nil {
		return err
	}
	sweep, err := e.ToSweep()
	if err != nil {
		return err
	}
	if o.Opts.Parallelism > 0 {
		sweep.Parallelism = o.Opts.Parallelism
	}
	return renderSweep(w, sweep, o)
}

func panelReport(w io.Writer, id string, o PanelOptions) error {
	sweep, err := experiments.Panel(id, o.Opts)
	if err != nil {
		return err
	}
	return renderSweep(w, sweep, o)
}

func renderSweep(w io.Writer, sweep *sim.Sweep, o PanelOptions) error {
	start := time.Now()
	result, err := sweep.Run()
	if err != nil {
		return err
	}
	if o.CSV {
		_, err := fmt.Fprintf(w, "# %s\n%s\n", result.Name, result.CSV())
		return err
	}
	if _, err := fmt.Fprintf(w, "== %s: competitive ratio vs %s (%s) ==\n",
		result.Name, result.XLabel, time.Since(start).Round(time.Millisecond)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, result.Table()); err != nil {
		return err
	}
	if o.Plot {
		if _, err := fmt.Fprintf(w, "\n%s", result.Plot()); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintln(w)
	return err
}

func archReport(w io.Writer, opts experiments.Options) error {
	start := time.Now()
	rows, err := experiments.Architectures(opts)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "== arch: single-queue vs shared-memory architectures (%s) ==\n",
		time.Since(start).Round(time.Millisecond)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, experiments.ArchTable(rows)); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}

// LowerBoundOptions drives LowerBounds (cmd/lowerbound).
type LowerBoundOptions struct {
	// Theorem selects one construction ("1".."11"); empty runs all.
	Theorem string
	// Params override the construction's defaults (require Theorem).
	Params adversary.Params
}

// LowerBounds runs the requested theorem constructions and writes the
// comparison table to w.
func LowerBounds(w io.Writer, o LowerBoundOptions) error {
	var constructions []adversary.Construction
	if o.Theorem == "" {
		if o.Params != (adversary.Params{}) {
			return fmt.Errorf("parameter overrides require -theorem")
		}
		all, err := adversary.All()
		if err != nil {
			return err
		}
		constructions = all
	} else {
		c, err := adversary.ByID("thm"+o.Theorem, o.Params)
		if err != nil {
			return err
		}
		constructions = []adversary.Construction{c}
	}

	headers := []string{"theorem", "policy", "alg", "opt(script)", "measured", "predicted", "asymptotic"}
	rows := make([][]string, 0, len(constructions))
	for _, c := range constructions {
		out, err := c.Run()
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			out.Theorem,
			out.PolicyName,
			strconv.FormatInt(out.AlgThroughput, 10),
			strconv.FormatInt(out.OptThroughput, 10),
			fmt.Sprintf("%.3f", out.Ratio),
			fmt.Sprintf("%.3f", out.Predicted),
			fmt.Sprintf("%s = %.3f", c.Asymptotic, out.AsymptoticValue),
		})
	}
	_, err := io.WriteString(w, tablefmt.Render(headers, rows))
	return err
}
