package cli

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"smbm/internal/adversary"
	"smbm/internal/experiments"
)

func smallOpts() experiments.Options {
	return experiments.Options{
		Slots:      400,
		Seeds:      1,
		Sources:    30,
		FlushEvery: 200,
		BaseSeed:   1,
	}
}

func TestPanelsSingle(t *testing.T) {
	var buf bytes.Buffer
	err := Panels(context.Background(), &buf, PanelOptions{Experiment: "fig5.1", Opts: smallOpts()})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig5.1", "LWD", "Greedy", "competitive ratio vs k"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPanelsCSV(t *testing.T) {
	var buf bytes.Buffer
	err := Panels(context.Background(), &buf, PanelOptions{Experiment: "fig5.1", Opts: smallOpts(), CSV: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "k,Greedy_mean") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Errorf("CSV mode printed a table header:\n%s", out)
	}
}

func TestPanelsPlot(t *testing.T) {
	var buf bytes.Buffer
	err := Panels(context.Background(), &buf, PanelOptions{Experiment: "fig5.1", Opts: smallOpts(), Plot: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean competitive ratio vs k") {
		t.Errorf("plot missing:\n%s", buf.String())
	}
}

func TestPanelsArch(t *testing.T) {
	var buf bytes.Buffer
	err := Panels(context.Background(), &buf, PanelOptions{Experiment: "arch", Opts: smallOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1Q-PQ-pushout") {
		t.Errorf("arch table missing:\n%s", buf.String())
	}
}

func TestPanelsLatency(t *testing.T) {
	var buf bytes.Buffer
	if err := Panels(context.Background(), &buf, PanelOptions{Experiment: "latency", Opts: smallOpts()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "delay/throughput trade-off") {
		t.Errorf("latency output:\n%s", buf.String())
	}
}

func TestPanelsUnknown(t *testing.T) {
	if err := Panels(context.Background(), &bytes.Buffer{}, PanelOptions{Experiment: "fig9.9"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSpec(t *testing.T) {
	const specJSON = `{
	  "name": "cli-spec",
	  "model": "processing",
	  "sweep": "C",
	  "values": [1, 2],
	  "k": 4, "B": 32,
	  "policies": ["LWD", "Greedy"],
	  "slots": 300, "seeds": 1,
	  "traffic": {"sources": 10, "load": 2.0}
	}`
	var buf bytes.Buffer
	if err := RunSpec(context.Background(), &buf, strings.NewReader(specJSON), PanelOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cli-spec", "LWD", "Greedy", "competitive ratio vs C"} {
		if !strings.Contains(out, want) {
			t.Errorf("spec output missing %q:\n%s", want, out)
		}
	}
	if err := RunSpec(context.Background(), &bytes.Buffer{}, strings.NewReader("{"), PanelOptions{}); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestLowerBoundsSingle(t *testing.T) {
	var buf bytes.Buffer
	err := LowerBounds(&buf, LowerBoundOptions{
		Theorem: "2",
		Params:  adversary.Params{K: 4, B: 80, Rounds: 1, Warmup: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Theorem 2") || !strings.Contains(out, "NEST") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "4.000") { // n = 4 predicted and measured
		t.Errorf("expected ratio 4.000 in:\n%s", out)
	}
}

func TestLowerBoundsValidation(t *testing.T) {
	err := LowerBounds(&bytes.Buffer{}, LowerBoundOptions{Params: adversary.Params{K: 9}})
	if err == nil {
		t.Error("params without theorem accepted")
	}
	if err := LowerBounds(&bytes.Buffer{}, LowerBoundOptions{Theorem: "7"}); err == nil {
		t.Error("theorem 7 accepted (it is an upper bound)")
	}
}

func TestConjecture(t *testing.T) {
	var buf bytes.Buffer
	err := Conjecture(&buf, ConjectureOptions{
		Policies: []string{"Greedy"},
		Trials:   40, Climb: 10, Slots: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Greedy: worst certified ratio") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "witness trace:") {
		t.Errorf("greedy hunt found no witness:\n%s", out)
	}
	if err := Conjecture(&bytes.Buffer{}, ConjectureOptions{
		Policies: []string{"NOPE"}, Trials: 1, Slots: 2,
	}); err == nil {
		t.Error("unknown policy accepted")
	}
	// Default targets LWD and MRD.
	buf.Reset()
	if err := Conjecture(&buf, ConjectureOptions{Trials: 5, Climb: 2, Slots: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LWD:") || !strings.Contains(buf.String(), "MRD:") {
		t.Errorf("default hunt output:\n%s", buf.String())
	}
}

func TestGenerateStatsReplayPipeline(t *testing.T) {
	var trace bytes.Buffer
	gen := GenerateOptions{
		Slots: 500, Ports: 4, Sources: 20, Mode: "work", Affinity: true, Seed: 3,
	}
	if err := Generate(&trace, gen); err != nil {
		t.Fatal(err)
	}
	traceText := trace.String()

	var stats bytes.Buffer
	if err := Stats(&stats, strings.NewReader(traceText)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slots:        500", "packets:", "mean rate:"} {
		if !strings.Contains(stats.String(), want) {
			t.Errorf("stats missing %q:\n%s", want, stats.String())
		}
	}

	var replay bytes.Buffer
	err := Replay(&replay, strings.NewReader(traceText), ReplayOptions{
		Policy: "LWD", Ports: 4, Buffer: 32, Mode: "work",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"policy:       LWD", "ratio:"} {
		if !strings.Contains(replay.String(), want) {
			t.Errorf("replay missing %q:\n%s", want, replay.String())
		}
	}
}

func TestGenerateValueModes(t *testing.T) {
	for _, mode := range []string{"value", "value-by-port"} {
		var buf bytes.Buffer
		err := Generate(&buf, GenerateOptions{Slots: 50, Ports: 4, Sources: 10, Mode: mode, Seed: 1})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		var replay bytes.Buffer
		err = Replay(&replay, strings.NewReader(buf.String()), ReplayOptions{
			Policy: "MRD", Ports: 4, Mode: mode,
		})
		if err != nil {
			t.Fatalf("replay %s: %v", mode, err)
		}
	}
}

func TestGenerateRejectsBadMode(t *testing.T) {
	if err := Generate(&bytes.Buffer{}, GenerateOptions{Slots: 1, Ports: 2, Sources: 1, Mode: "bogus"}); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestReplayValidation(t *testing.T) {
	trace := "# smbm-trace v1 slots=1\n0 0 1 1\n"
	cases := []ReplayOptions{
		{Policy: "LWD", Ports: 2, Mode: "bogus"},
		{Policy: "NOPE", Ports: 2, Mode: "work"},
		{Policy: "MRD", Ports: 2, Mode: "work"}, // value policy in work mode
	}
	for _, o := range cases {
		if err := Replay(&bytes.Buffer{}, strings.NewReader(trace), o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if err := Stats(&bytes.Buffer{}, strings.NewReader("garbage")); err == nil {
		t.Error("stats on garbage accepted")
	}
}
