package cli

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smbm/internal/faults"
)

func TestPanelsFaultsExperiment(t *testing.T) {
	var buf bytes.Buffer
	opts := smallOpts()
	opts.Seeds = 1
	if err := Panels(context.Background(), &buf, PanelOptions{Experiment: "faults", Opts: opts}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graceful degradation", "penalty", "LWD", "Greedy"} {
		if !strings.Contains(out, want) {
			t.Errorf("faults report missing %q:\n%s", want, out)
		}
	}
}

func TestPanelsWithFaultInjection(t *testing.T) {
	spec, err := faults.ParseSpec("blackout:period=100:dur=40;amplify:factor=2:period=100:dur=30")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	o := PanelOptions{Experiment: "fig5.1", Opts: smallOpts(), Faults: spec}
	if err := Panels(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig5.1") {
		t.Errorf("faulted sweep output:\n%s", buf.String())
	}
	// The same panel without faults must not agree everywhere with the
	// degraded one on ratios — but both render; just sanity-check the
	// faulted run produced a complete, non-partial table.
	if strings.Contains(buf.String(), "partial") {
		t.Errorf("faulted sweep reported partial:\n%s", buf.String())
	}
}

func TestPanelsCanceledSweepRendersPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the sweep dispatches any cell
	var buf bytes.Buffer
	err := Panels(ctx, &buf, PanelOptions{Experiment: "fig5.1", Opts: smallOpts()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRunSpecCanceledRendersPartialTable(t *testing.T) {
	const specJSON = `{
	  "name": "cancel-spec",
	  "model": "processing",
	  "sweep": "C",
	  "values": [1, 2],
	  "k": 4, "B": 32,
	  "policies": ["LWD", "Greedy"],
	  "slots": 300, "seeds": 1,
	  "traffic": {"sources": 10, "load": 2.0}
	}`
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := RunSpec(ctx, &buf, strings.NewReader(specJSON), PanelOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The partial (here: empty) result is still rendered, marked as such,
	// instead of being discarded — the smbsim SIGINT path relies on this.
	out := buf.String()
	if !strings.Contains(out, "cancel-spec") || !strings.Contains(out, "partial") {
		t.Errorf("canceled sweep did not render a partial report:\n%s", out)
	}
}

func TestPanelsCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cli.ckpt")
	o := PanelOptions{Experiment: "fig5.1", Opts: smallOpts(), Checkpoint: path}
	var first bytes.Buffer
	if err := Panels(context.Background(), &first, o); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("checkpoint journal missing: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("checkpoint journal empty")
	}
	// The resumed run replays nothing and reproduces the identical table.
	var second bytes.Buffer
	if err := Panels(context.Background(), &second, o); err != nil {
		t.Fatal(err)
	}
	if first.String() == "" || stripTimings(first.String()) != stripTimings(second.String()) {
		t.Errorf("resumed table differs:\n%s\nvs\n%s", first.String(), second.String())
	}
}

func TestPanelsCellTimeoutFailsCells(t *testing.T) {
	var buf bytes.Buffer
	o := PanelOptions{Experiment: "fig5.1", Opts: smallOpts(), CellTimeout: time.Nanosecond}
	err := Panels(context.Background(), &buf, o)
	if err == nil || !strings.Contains(err.Error(), "cell deadline") {
		t.Fatalf("got %v, want cell-deadline failures", err)
	}
	if !strings.Contains(buf.String(), "partial") {
		t.Errorf("timed-out sweep did not render a partial report:\n%s", buf.String())
	}
}

// stripTimings removes the elapsed-time annotation from a report header
// so two runs of different wall-clock duration compare equal.
func stripTimings(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if i := strings.LastIndex(line, " ("); strings.HasPrefix(line, "==") && i >= 0 {
			line = line[:i]
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}
