package experiments

import (
	"testing"

	"smbm/internal/core"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

// TestAblationTVDVsMRD executes the paper's Section IV design argument:
// "the total value per queue constitutes a poor choice but normalized
// value can potentially achieve constant competitiveness". On the
// value≡port workload, Total-Value-Drop (the unnormalized ablation of
// MRD) must lose clearly to MRD: it raids the high-value queues simply
// because they are rich.
func TestAblationTVDVsMRD(t *testing.T) {
	o := smallOpts()
	o.Slots = 1500
	inst, err := valInstance(16, 200, 1, loadValue*16, traffic.LabelValueByPort, false, o, 5)
	if err != nil {
		t.Fatal(err)
	}
	inst.Policies = append([]core.Policy{policy.MRD{}, policy.VLQD{}}, policy.ValueExperimental()...)
	results, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]sim.Result{}
	for _, r := range results {
		byName[r.Policy] = r
	}
	mrd, tvd := byName["MRD"], byName["TVD"]
	t.Logf("value≡port: MRD %.3f, LQD %.3f, TVD %.3f", mrd.Ratio, byName["LQD"].Ratio, tvd.Ratio)
	if tvd.Ratio < mrd.Ratio*1.05 {
		t.Errorf("TVD (%.3f) not clearly worse than MRD (%.3f); the paper's normalization argument did not reproduce",
			tvd.Ratio, mrd.Ratio)
	}
}
