package experiments

import (
	"testing"

	"smbm/internal/adversary"
	"smbm/internal/core"
	"smbm/internal/policy"
	"smbm/internal/sim"
)

// TestNHDTWOnTheorem3Construction records a negative result on the
// paper's future-work question: ranking the dynamic thresholds by
// buffered work instead of length does NOT blunt the Theorem 3 attack —
// the adversary's queues are simultaneously the longest and the
// heaviest, so both rankings admit the same packets and measure the
// same ratio. The assertion pins this equivalence so the finding stays
// an executable record rather than lore.
func TestNHDTWOnTheorem3Construction(t *testing.T) {
	c, err := adversary.Theorem3(adversary.Params{})
	if err != nil {
		t.Fatal(err)
	}
	measure := func(p core.Policy) int64 {
		sw, err := core.New(c.Cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		run := func() {
			for _, burst := range c.Round {
				if err := sw.Step(burst); err != nil {
					t.Fatalf("%s: %v", p.Name(), err)
				}
			}
		}
		for r := 0; r < c.Warmup; r++ {
			run()
		}
		before := sw.Stats().Transmitted
		for r := 0; r < c.Rounds; r++ {
			run()
		}
		return sw.Stats().Transmitted - before
	}
	nhdt := measure(policy.NHDT{})
	nhdtw := measure(policy.NHDTW{})
	opt := measure(c.Opt)
	ratioNHDT := float64(opt) / float64(nhdt)
	ratioNHDTW := float64(opt) / float64(nhdtw)
	t.Logf("Theorem 3 trace: NHDT ratio %.2f, NHDTW ratio %.2f", ratioNHDT, ratioNHDTW)
	if diff := ratioNHDTW/ratioNHDT - 1; diff > 0.2 || diff < -0.2 {
		t.Errorf("NHDTW ratio %.2f diverges from NHDT's %.2f — the negative-result record is stale, update the analysis",
			ratioNHDTW, ratioNHDT)
	}
}

// TestNHDTWOnStochasticTraffic: on the Fig. 5(1) workload the
// generalization must not lose to NHDT.
func TestNHDTWOnStochasticTraffic(t *testing.T) {
	o := smallOpts()
	inst, err := procInstance(16, 200, 1, loadProcessing*procCapacity(16, 1), o, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst.Policies = append([]core.Policy{policy.NHDT{}}, policy.Experimental()...)
	results, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]sim.Result{}
	for _, r := range results {
		byName[r.Policy] = r
	}
	nhdt, nhdtw := byName["NHDT"], byName["NHDTW"]
	t.Logf("stochastic: NHDT %.3f, NHDTW %.3f", nhdt.Ratio, nhdtw.Ratio)
	if nhdtw.Ratio > nhdt.Ratio*1.05 {
		t.Errorf("NHDTW (%.3f) worse than NHDT (%.3f) on stochastic traffic", nhdtw.Ratio, nhdt.Ratio)
	}
}
