package experiments

import (
	"testing"
)

// TestPanel6MVDCrossover reproduces the paper's "one interesting case"
// from Fig. 5(6): under slot-scale megabursts, growing the speedup C
// flips the ordering — MVD overtakes LQD once a burst can be served
// almost entirely within a slot but cannot fit the buffer.
func TestPanel6MVDCrossover(t *testing.T) {
	o := smallOpts()
	o.Slots = 1500
	o.Seeds = 3
	sweep, err := Panel("fig5.6", o)
	if err != nil {
		t.Fatal(err)
	}
	sweep.Xs = []int{1, 8, 16}
	res, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	at := func(x int, policy string) float64 {
		for _, p := range res.Points {
			if p.X == x {
				return p.Ratio[policy].Mean
			}
		}
		t.Fatalf("missing point %d", x)
		return 0
	}
	// Low speedup: port diversity wins — LQD/MRD at or below MVD.
	if lqd, mvd := at(1, "LQD"), at(1, "MVD"); lqd > mvd+1e-9 {
		t.Errorf("C=1: LQD %.4f worse than MVD %.4f (no crossover regime)", lqd, mvd)
	}
	// High speedup: buffered value wins — MVD strictly ahead of LQD.
	for _, c := range []int{8, 16} {
		if lqd, mvd := at(c, "LQD"), at(c, "MVD"); mvd >= lqd {
			t.Errorf("C=%d: MVD %.4f did not overtake LQD %.4f", c, mvd, lqd)
		}
	}
}

// TestPanel2BPDRecovery reproduces Fig. 5(2)'s second qualitative claim:
// BPD is among the worst policies under tight buffers but overtakes the
// non-preemptive policies once the buffer is large enough that
// congestion (and hence its port starvation) fades.
func TestPanel2BPDRecovery(t *testing.T) {
	o := smallOpts()
	o.Slots = 1500
	sweep, err := Panel("fig5.2", o)
	if err != nil {
		t.Fatal(err)
	}
	sweep.Xs = []int{32, 2048}
	res, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	small, large := res.Points[0], res.Points[1]
	if small.X != 32 || large.X != 2048 {
		t.Fatalf("unexpected points %d/%d", small.X, large.X)
	}
	if bpd, nhdt := small.Ratio["BPD"].Mean, small.Ratio["NHDT"].Mean; bpd < nhdt {
		t.Errorf("B=32: BPD %.3f unexpectedly ahead of NHDT %.3f", bpd, nhdt)
	}
	if bpd, nhdt := large.Ratio["BPD"].Mean, large.Ratio["NHDT"].Mean; bpd > nhdt {
		t.Errorf("B=2048: BPD %.3f did not recover past NHDT %.3f", bpd, nhdt)
	}
}
