package experiments

import (
	"fmt"
	"strconv"

	"smbm/internal/faults"
	"smbm/internal/metrics"
	"smbm/internal/policy"
	"smbm/internal/tablefmt"
)

// FaultRow reports how one processing-model policy degrades when the
// canonical fault mix is injected into both the policy and the OPT
// proxy: the mean empirical competitive ratio on the nominal switch,
// the same under faults, and the multiplicative penalty.
type FaultRow struct {
	// Policy is the policy name.
	Policy string
	// Nominal is the mean competitive ratio without faults.
	Nominal float64
	// Faulted is the mean competitive ratio under the canonical mix.
	Faulted float64
	// Penalty is Faulted / Nominal: how much of the policy's
	// competitiveness the fault mix costs (1.0 = fully graceful).
	Penalty float64
}

// Fault-panel geometry: a mid-sized contiguous switch with speedup 2,
// so a CoreSlowdown to C'=1 is a genuine degradation.
const (
	faultPanelK = 8
	faultPanelB = 128
	faultPanelC = 2
)

// FaultDegradation runs the "faults" experiment panel: the full
// processing-model roster on identical MMPP traffic, once nominal and
// once under faults.CanonicalMix — rotating core slowdowns and port
// blackouts, transient buffer squeezes, and burst amplification —
// injected symmetrically into every policy and the OPT proxy. The gap
// between the two ratios is the sensitivity-to-faults answer the
// competitive analysis cannot give: how far off the nominal point each
// policy's guarantee erodes.
func FaultDegradation(o Options) ([]FaultRow, error) {
	o = o.withDefaults()
	mix := faults.CanonicalMix(faultPanelK, faultPanelB, faultPanelC, int64(o.Slots))

	nominal := map[string]*metrics.Welford{}
	faulted := map[string]*metrics.Welford{}
	var order []string
	for si := 0; si < o.Seeds; si++ {
		seed := o.BaseSeed + int64(si)*7_919
		rate := loadProcessing * procCapacity(faultPanelK, faultPanelC)
		inst, err := procInstance(faultPanelK, faultPanelB, faultPanelC, rate, o, seed)
		if err != nil {
			return nil, err
		}
		inst.Policies = policy.ForProcessing()

		base, err := inst.Run()
		if err != nil {
			return nil, err
		}
		inst.Wrap = faults.Wrapper(mix, faultPanelK, seed)
		degraded, err := inst.Run()
		if err != nil {
			return nil, err
		}
		if len(degraded) != len(base) {
			return nil, fmt.Errorf("experiments: fault run returned %d results, nominal %d", len(degraded), len(base))
		}
		for i, r := range base {
			if nominal[r.Policy] == nil {
				nominal[r.Policy] = &metrics.Welford{}
				faulted[r.Policy] = &metrics.Welford{}
				order = append(order, r.Policy)
			}
			nominal[r.Policy].Add(r.Ratio)
			faulted[r.Policy].Add(degraded[i].Ratio)
		}
	}

	rows := make([]FaultRow, 0, len(order))
	for _, name := range order {
		n := nominal[name].Summary().Mean
		f := faulted[name].Summary().Mean
		penalty := 0.0
		if n > 0 {
			penalty = f / n
		}
		rows = append(rows, FaultRow{Policy: name, Nominal: n, Faulted: f, Penalty: penalty})
	}
	return rows, nil
}

// FaultTable renders the fault-degradation rows as an aligned table.
func FaultTable(rows []FaultRow) string {
	headers := []string{"policy", "nominal", "faulted", "penalty"}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Policy,
			strconv.FormatFloat(r.Nominal, 'f', 3, 64),
			strconv.FormatFloat(r.Faulted, 'f', 3, 64),
			strconv.FormatFloat(r.Penalty, 'f', 3, 64) + "x",
		})
	}
	return tablefmt.Render(headers, out)
}

// CanonicalFaultMix exposes the panel's fault mix for the given run
// horizon, so callers can introspect the exact schedule behind the
// table (via faults.Spec.Schedule).
func CanonicalFaultMix(horizon int64) faults.Spec {
	return faults.CanonicalMix(faultPanelK, faultPanelB, faultPanelC, horizon)
}
