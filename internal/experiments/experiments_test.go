package experiments

import (
	"strings"
	"testing"

	"smbm/internal/core"
	"smbm/internal/traffic"
)

// smallOpts shrinks the panels to seconds-scale for tests.
func smallOpts() Options {
	return Options{
		Slots:      600,
		Seeds:      2,
		Sources:    40,
		FlushEvery: 300,
		BaseSeed:   1,
	}
}

func TestPanelIDs(t *testing.T) {
	ids := PanelIDs()
	if len(ids) != 9 {
		t.Fatalf("%d panels, want 9", len(ids))
	}
	for _, id := range ids {
		if _, err := Panel(id, smallOpts()); err != nil {
			t.Errorf("Panel(%q): %v", id, err)
		}
	}
	if _, err := Panel("fig5.10", smallOpts()); err == nil {
		t.Error("unknown panel accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	sweep, err := Panel("fig5.1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Seeds != Defaults().Seeds {
		t.Errorf("seeds %d, want default %d", sweep.Seeds, Defaults().Seeds)
	}
}

func TestProcInstanceShape(t *testing.T) {
	inst, err := procInstance(8, 100, 2, 10, smallOpts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Cfg.Model != core.ModelProcessing || inst.Cfg.Ports != 8 || inst.Cfg.Speedup != 2 {
		t.Errorf("config %+v", inst.Cfg)
	}
	if len(inst.Policies) != 8 {
		t.Errorf("%d policies, want 8", len(inst.Policies))
	}
	if inst.Provider.Slots() != smallOpts().Slots {
		t.Errorf("provider %d slots", inst.Provider.Slots())
	}
	// All packets legal for the config.
	cur, err := inst.Provider.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for t2 := 0; t2 < inst.Provider.Slots(); t2++ {
		for _, p := range cur.Next() {
			if p.Work != inst.Cfg.PortWork[p.Port] {
				t.Fatalf("packet %+v violates the configuration", p)
			}
		}
	}
}

func TestValInstanceShape(t *testing.T) {
	inst, err := valInstance(8, 100, 1, 12, traffic.LabelValueByPort, false, smallOpts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Cfg.Model != core.ModelValue {
		t.Errorf("model %v", inst.Cfg.Model)
	}
	if len(inst.Policies) != 8 { // by-port roster includes NHSTV
		t.Errorf("%d policies, want 8", len(inst.Policies))
	}
	cur, err := inst.Provider.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for t2 := 0; t2 < inst.Provider.Slots(); t2++ {
		for _, p := range cur.Next() {
			if p.Value != p.Port+1 {
				t.Fatalf("by-port packet %+v", p)
			}
		}
	}
}

// TestPanel1Shape is the headline qualitative reproduction: on Fig. 5(1)
// LWD beats LQD, LQD beats BPD, and the greedy baseline trails everyone,
// at every k.
func TestPanel1Shape(t *testing.T) {
	sweep, err := Panel("fig5.1", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	sweep.Xs = []int{8, 16, 24} // trim for test time
	res, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		lwd, lqd, bpd, grd := p.Ratio["LWD"].Mean, p.Ratio["LQD"].Mean, p.Ratio["BPD"].Mean, p.Ratio["Greedy"].Mean
		if !(lwd <= lqd+0.02) {
			t.Errorf("k=%d: LWD %.3f worse than LQD %.3f", p.X, lwd, lqd)
		}
		if !(lqd < bpd) {
			t.Errorf("k=%d: LQD %.3f not better than BPD %.3f", p.X, lqd, bpd)
		}
		if !(lwd < grd) {
			t.Errorf("k=%d: LWD %.3f not better than Greedy %.3f", p.X, lwd, grd)
		}
	}
}

// TestPanel7Shape: in the value≡port case MRD is never noticeably worse
// than LQD ("our experiments suggest that MRD is never explicitly worse
// than LQD") and MVD trails both.
func TestPanel7Shape(t *testing.T) {
	sweep, err := Panel("fig5.7", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	sweep.Xs = []int{8, 16}
	res, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		mrd, lqd, mvd := p.Ratio["MRD"].Mean, p.Ratio["LQD"].Mean, p.Ratio["MVD"].Mean
		if mrd > lqd*1.05 {
			t.Errorf("k=%d: MRD %.3f explicitly worse than LQD %.3f", p.X, mrd, lqd)
		}
		if !(mvd > mrd) {
			t.Errorf("k=%d: MVD %.3f not trailing MRD %.3f", p.X, mvd, mrd)
		}
	}
}

func TestSortedPolicyNames(t *testing.T) {
	sweep, err := Panel("fig5.1", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	sweep.Xs = []int{4}
	res, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	names := SortedPolicyNames(res)
	if len(names) != 8 {
		t.Fatalf("%d names: %v", len(names), names)
	}
	if !strings.HasPrefix(names[0], "BPD") {
		t.Errorf("not sorted: %v", names)
	}
}
