package experiments

import (
	"strings"
	"testing"
)

// TestArchitectures reproduces the paper's introductory narrative
// quantitatively: single-queue PQ maximizes throughput but starves the
// most expensive class; the shared-memory switch under LWD trades a
// bounded amount of throughput for bounded per-class latency; greedy
// FIFO single queue is far behind both.
func TestArchitectures(t *testing.T) {
	rows, err := Architectures(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]ArchRow{}
	for _, r := range rows {
		byName[r.System] = r
	}
	pq := byName["1Q-PQ-pushout"]
	lwd := byName["SM-LWD"]
	greedy := byName["1Q-FIFO-greedy"]
	smGreedy := byName["SM-Greedy"]

	if pq.Ratio != 1.0 {
		t.Errorf("single-queue PQ is not the throughput winner: %+v", pq)
	}
	if lwd.Ratio > 1.5 {
		t.Errorf("LWD not within 1.5x of single-queue PQ: %+v", lwd)
	}
	if !(lwd.Ratio < greedy.Ratio) {
		t.Errorf("LWD (%v) not ahead of greedy single queue (%v)", lwd.Ratio, greedy.Ratio)
	}
	if !(lwd.Ratio < smGreedy.Ratio) {
		t.Errorf("LWD (%v) not ahead of greedy shared memory (%v)", lwd.Ratio, smGreedy.Ratio)
	}
	// Starvation: PQ delivers almost none of the heaviest class during
	// congestion; LWD delivers a solid share.
	if pq.HeavyDelivery > 0.10 {
		t.Errorf("single-queue PQ heavy delivery %.3f, expected starvation", pq.HeavyDelivery)
	}
	if lwd.HeavyDelivery < 2*pq.HeavyDelivery+0.05 {
		t.Errorf("LWD heavy delivery %.3f does not beat PQ's %.3f", lwd.HeavyDelivery, pq.HeavyDelivery)
	}
}

func TestArchTable(t *testing.T) {
	rows, err := Architectures(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	table := ArchTable(rows)
	for _, want := range []string{"1Q-PQ-pushout", "SM-LWD", "heavy delivery"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
