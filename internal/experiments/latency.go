package experiments

import (
	"fmt"
	"strconv"

	"smbm/internal/core"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/tablefmt"
)

// LatencyRow reports one policy's delay profile at one buffer size.
type LatencyRow struct {
	// B is the buffer size.
	B int
	// Policy is the policy name.
	Policy string
	// Ratio is the empirical competitive ratio (throughput objective).
	Ratio float64
	// MeanLatency and HeavyMeanLatency are averages over all / the most
	// expensive port's transmitted packets, in slots.
	MeanLatency, HeavyMeanLatency float64
}

// Latency quantifies the paper's closing observation: "as buffers get
// smaller, the effect of processing delay becomes much more pronounced".
// It sweeps B on the processing model and reports, per policy, both the
// throughput ratio and the delay profile — showing the
// throughput/latency trade-off the admission policies navigate.
func Latency(o Options) ([]LatencyRow, error) {
	o = o.withDefaults()
	const k = 8
	policies := []core.Policy{policy.LWD{}, policy.LQD{}, policy.Greedy{}}
	var rows []LatencyRow
	for _, b := range []int{32, 64, 128, 256, 512} {
		inst, err := procInstance(k, b, 1, loadProcessing*procCapacity(k, 1), o, o.BaseSeed)
		if err != nil {
			return nil, err
		}
		optSys, err := sim.NewOptProxy(inst.Cfg)
		if err != nil {
			return nil, err
		}
		optStats, err := sim.RunTrace(optSys, inst.Provider, inst.FlushEvery)
		if err != nil {
			return nil, err
		}
		for _, p := range policies {
			sw, err := core.New(inst.Cfg, p)
			if err != nil {
				return nil, err
			}
			stats, err := sim.RunTrace(sw, inst.Provider, inst.FlushEvery)
			if err != nil {
				return nil, err
			}
			ratio := 0.0
			if stats.Transmitted > 0 {
				ratio = float64(optStats.Transmitted) / float64(stats.Transmitted)
			}
			rows = append(rows, LatencyRow{
				B:                b,
				Policy:           p.Name(),
				Ratio:            ratio,
				MeanLatency:      stats.MeanLatency(),
				HeavyMeanLatency: sw.PortCounters()[k-1].MeanLatency(),
			})
		}
	}
	return rows, nil
}

// LatencyTable renders the latency sweep.
func LatencyTable(rows []LatencyRow) string {
	headers := []string{"B", "policy", "ratio", "mean lat", "heavy mean lat"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.B),
			r.Policy,
			fmt.Sprintf("%.3f", r.Ratio),
			fmt.Sprintf("%.1f", r.MeanLatency),
			fmt.Sprintf("%.1f", r.HeavyMeanLatency),
		})
	}
	return tablefmt.Render(headers, cells)
}
