package experiments

import (
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/policy"
)

// lwdSmallTie is LWD with the opposite tie-break (smallest port index,
// i.e. smallest required processing, wins ties) — the ablation DESIGN.md
// calls out for the "choose maximal among those queues" reading of the
// paper.
var lwdSmallTie = core.PolicyFunc{PolicyName: "LWD-smalltie", Func: func(v core.View, p pkt.Packet) core.Decision {
	if v.Free() > 0 {
		return core.Accept()
	}
	i := p.Port
	heaviest, heaviestWork := -1, -1
	for j := 0; j < v.Ports(); j++ {
		w := v.QueueWork(j)
		if j == i {
			w += v.PortWork(i)
		}
		if w > heaviestWork { // strict: ties keep the smallest index
			heaviest, heaviestWork = j, w
		}
	}
	if heaviest != i {
		return core.PushOut(heaviest)
	}
	return core.Drop()
}}

// ablationCell runs the fig5.1 mid cell with extra policies appended.
func ablationCell(t testing.TB, extra ...core.Policy) map[string]float64 {
	o := smallOpts()
	inst, err := procInstance(16, 200, 1, loadProcessing*procCapacity(16, 1), o, 11)
	if err != nil {
		t.Fatal(err)
	}
	inst.Policies = append([]core.Policy{policy.LWD{}, policy.LQD{}}, extra...)
	results, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64, len(results))
	for _, r := range results {
		out[r.Policy] = r.Ratio
	}
	return out
}

// TestAblationLWDTieBreak: the tie-break direction must not change LWD's
// competitive behaviour materially — ties on *total work* are rare under
// stochastic traffic. A large gap would mean the policy's performance
// hinges on an under-specified detail of the paper.
func TestAblationLWDTieBreak(t *testing.T) {
	ratios := ablationCell(t, lwdSmallTie)
	big, small := ratios["LWD"], ratios["LWD-smalltie"]
	if small == 0 || big == 0 {
		t.Fatalf("missing ratios: %v", ratios)
	}
	if diff := small/big - 1; diff > 0.05 || diff < -0.05 {
		t.Errorf("tie-break changes LWD ratio by %.1f%% (%v vs %v)", diff*100, big, small)
	}
}

// BenchmarkAblationLWDTieBreak reports both ratios for the record.
func BenchmarkAblationLWDTieBreak(b *testing.B) {
	var big, small float64
	for i := 0; i < b.N; i++ {
		ratios := ablationCell(b, lwdSmallTie)
		big, small = ratios["LWD"], ratios["LWD-smalltie"]
	}
	b.ReportMetric(big, "ratio-maxtie")
	b.ReportMetric(small, "ratio-mintie")
}
