package experiments

import (
	"fmt"
	"strconv"

	"smbm/internal/core"
	"smbm/internal/metrics"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/singleq"
	"smbm/internal/tablefmt"
	"smbm/internal/traffic"
)

// ArchRow compares one buffer architecture on the shared traffic of the
// architecture experiment.
type ArchRow struct {
	// System names the architecture/policy combination.
	System string
	// Transmitted is total packets delivered.
	Transmitted int64
	// Ratio is best-transmitted / transmitted (1.0 = winner).
	Ratio float64
	// MeanLatency is the average packet residence in slots.
	MeanLatency float64
	// HeavyMean and HeavyMax are the mean and maximum latency of the
	// most expensive traffic class — the starvation evidence.
	HeavyMean float64
	// HeavyMax is the maximum heavy-class latency (see HeavyMean).
	HeavyMax int64
	// HeavyDelivery is transmitted/arrived for the most expensive
	// class.
	HeavyDelivery float64
	// Fairness is Jain's index over per-class delivery rates: 1 means
	// every traffic class gets the same share of its offered load.
	Fairness float64
}

// Architectures reproduces the paper's introductory comparison (Fig. 1):
// a single shared queue whose cores process any traffic type, against
// the shared-memory switch with one core per type, on identical MMPP
// traffic with the same total buffer and core count. The paper's
// narrative: single-queue PQ maximizes throughput but starves expensive
// classes and needs priority-order hardware; the shared-memory switch
// under LWD gets within a few percent with plain FIFO queues and no
// starvation.
func Architectures(o Options) ([]ArchRow, error) {
	o = o.withDefaults()
	const (
		k = 8
		b = 128
	)
	works := core.ContiguousWorks(k)

	mcfg := traffic.MMPPConfig{
		Sources:      o.Sources,
		POnOff:       pOnOff,
		POffOn:       pOffOn,
		Label:        traffic.LabelWorkByPort,
		Ports:        k,
		MaxLabel:     k,
		PortWork:     works,
		PortAffinity: true,
		Seed:         o.BaseSeed,
	}
	mcfg.LambdaOn = mcfg.LambdaForRate(2.0 * procCapacity(k, 1))
	prov, err := traffic.NewMMPPProvider(mcfg, o.Slots)
	if err != nil {
		return nil, err
	}

	sharedCfg := core.Config{
		Model:    core.ModelProcessing,
		Ports:    k,
		Buffer:   b,
		MaxLabel: k,
		Speedup:  1,
		PortWork: works,
	}
	singleCfg := func(order singleq.Order, pushOut bool) singleq.Config {
		return singleq.Config{Buffer: b, MaxWork: k, Cores: k, Order: order, PushOut: pushOut}
	}

	type entry struct {
		sys   sim.System
		heavy func() (mean float64, maxLat int64, delivery float64)
		rates func() []float64
	}
	var entries []entry

	addSingle := func(order singleq.Order, pushOut bool) error {
		s, err := singleq.New(singleCfg(order, pushOut))
		if err != nil {
			return err
		}
		entries = append(entries, entry{
			sys: s,
			heavy: func() (float64, int64, float64) {
				c := s.ClassCounters()[k]
				delivery := 1.0
				if c.Arrived > 0 {
					delivery = float64(c.Transmitted) / float64(c.Arrived)
				}
				return c.MeanLatency(), c.MaxLatency, delivery
			},
			rates: func() []float64 {
				cs := s.ClassCounters()
				rates := make([]float64, 0, k)
				for w := 1; w <= k; w++ {
					r := 1.0
					if cs[w].Arrived > 0 {
						r = float64(cs[w].Transmitted) / float64(cs[w].Arrived)
					}
					rates = append(rates, r)
				}
				return rates
			},
		})
		return nil
	}
	addShared := func(p core.Policy) error {
		sw, err := core.New(sharedCfg, p)
		if err != nil {
			return err
		}
		entries = append(entries, entry{
			sys: sw,
			heavy: func() (float64, int64, float64) {
				c := sw.PortCounters()[k-1]
				return c.MeanLatency(), c.MaxLatency, c.DeliveryRate()
			},
			rates: func() []float64 {
				rates := make([]float64, 0, k)
				for _, c := range sw.PortCounters() {
					rates = append(rates, c.DeliveryRate())
				}
				return rates
			},
		})
		return nil
	}

	if err := addSingle(singleq.OrderPQ, true); err != nil {
		return nil, err
	}
	if err := addSingle(singleq.OrderFIFO, true); err != nil {
		return nil, err
	}
	if err := addSingle(singleq.OrderFIFO, false); err != nil {
		return nil, err
	}
	for _, p := range []core.Policy{policy.LWD{}, policy.LQD{}, policy.Greedy{}} {
		if err := addShared(p); err != nil {
			return nil, err
		}
	}

	rows := make([]ArchRow, 0, len(entries))
	var best int64
	for _, e := range entries {
		stats, err := sim.RunTrace(e.sys, prov, o.FlushEvery)
		if err != nil {
			return nil, err
		}
		hm, hx, hd := e.heavy()
		name := e.sys.Name()
		if _, ok := e.sys.(*core.Switch); ok {
			name = "SM-" + name // shared-memory systems named by policy
		}
		rows = append(rows, ArchRow{
			System:        name,
			Transmitted:   stats.Transmitted,
			MeanLatency:   stats.MeanLatency(),
			HeavyMean:     hm,
			HeavyMax:      hx,
			HeavyDelivery: hd,
			Fairness:      metrics.JainIndex(e.rates()),
		})
		if stats.Transmitted > best {
			best = stats.Transmitted
		}
	}
	for i := range rows {
		if rows[i].Transmitted > 0 {
			rows[i].Ratio = float64(best) / float64(rows[i].Transmitted)
		}
	}
	return rows, nil
}

// ArchTable renders the architecture comparison.
func ArchTable(rows []ArchRow) string {
	headers := []string{"system", "transmitted", "ratio", "mean lat", "heavy mean lat", "heavy max lat", "heavy delivery", "fairness"}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			r.System,
			strconv.FormatInt(r.Transmitted, 10),
			fmt.Sprintf("%.3f", r.Ratio),
			fmt.Sprintf("%.1f", r.MeanLatency),
			fmt.Sprintf("%.1f", r.HeavyMean),
			strconv.FormatInt(r.HeavyMax, 10),
			fmt.Sprintf("%.2f", r.HeavyDelivery),
			fmt.Sprintf("%.3f", r.Fairness),
		})
	}
	return tablefmt.Render(headers, cells)
}
