// Package experiments defines the paper's evaluation as runnable
// artifacts: the nine panels of Fig. 5 as seeded parameter sweeps over
// MMPP traffic, and the theorem lower-bound constructions. cmd/smbsim,
// cmd/lowerbound and the benchmark harness are thin wrappers over this
// package.
//
// The paper's graph captions (and hence exact traffic parameters) are not
// part of the text, so the defaults here are chosen to reproduce the
// *shape* of each panel — who wins, growth trends, crossovers — under
// documented congestion levels. All parameters are overridable.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"smbm/internal/core"
	"smbm/internal/hmath"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

// Options tunes the scale of a panel run. Zero fields take defaults.
type Options struct {
	// Slots is the trace length per replication (paper: 2·10⁶; default
	// here is laptop-scale).
	Slots int
	// Seeds is the number of independent replications per point.
	Seeds int
	// Sources is the number of MMPP on-off sources (paper: 500).
	Sources int
	// FlushEvery drains all systems periodically (paper: "periodic
	// flushouts").
	FlushEvery int
	// BaseSeed makes the whole panel deterministic.
	BaseSeed int64
	// Parallelism bounds worker goroutines (0 = GOMAXPROCS).
	Parallelism int
}

// Defaults returns the laptop-scale default options.
func Defaults() Options {
	return Options{
		Slots:      4000,
		Seeds:      3,
		Sources:    100,
		FlushEvery: 1000,
		BaseSeed:   1,
	}
}

// PaperScale returns the paper's Section V evaluation scale: 2·10⁶
// slots and 500 MMPP on-off sources per replication, one seed. Panels
// built at this scale stream arrivals from seeded generator specs, so
// per-worker trace memory stays O(Sources) regardless of the slot
// count.
func PaperScale() Options {
	return Options{
		Slots:      2_000_000,
		Seeds:      1,
		Sources:    500,
		FlushEvery: 1000,
		BaseSeed:   1,
	}
}

// ScaleOptions resolves a named option preset: "" or "laptop" for
// Defaults, "paper" for PaperScale.
func ScaleOptions(name string) (Options, error) {
	switch name {
	case "", "laptop":
		return Defaults(), nil
	case "paper":
		return PaperScale(), nil
	default:
		return Options{}, fmt.Errorf("experiments: unknown scale %q (want laptop or paper)", name)
	}
}

func (o Options) withDefaults() Options {
	d := Defaults()
	if o.Slots == 0 {
		o.Slots = d.Slots
	}
	if o.Seeds == 0 {
		o.Seeds = d.Seeds
	}
	if o.Sources == 0 {
		o.Sources = d.Sources
	}
	if o.FlushEvery == 0 {
		o.FlushEvery = d.FlushEvery
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = d.BaseSeed
	}
	return o
}

// MMPP burstiness defaults: sources spend ~9% of slots "on" and emit in
// bursts roughly 10 slots long (1/pOnOff).
const (
	pOnOff = 0.1
	pOffOn = 0.01
)

// Congestion levels (offered load as a multiple of service capacity).
const (
	loadProcessing = 2.5 // panels 1–2
	loadSpeedupRef = 3.0 // panels 3, 6, 9: load 1 is crossed at C = 3
	loadValue      = 2.5 // panels 4–5, 7–8
	spikyLoad      = 4.0 // panels 6, 9: slot-scale megabursts, load 1 at C = 4
)

// PanelIDs lists the nine Fig. 5 panels in order.
func PanelIDs() []string {
	return []string{
		"fig5.1", "fig5.2", "fig5.3",
		"fig5.4", "fig5.5", "fig5.6",
		"fig5.7", "fig5.8", "fig5.9",
	}
}

// Panel builds the sweep for one Fig. 5 panel.
func Panel(id string, o Options) (*sim.Sweep, error) {
	o = o.withDefaults()
	switch id {
	case "fig5.1":
		return panelProcK(o), nil
	case "fig5.2":
		return panelProcB(o), nil
	case "fig5.3":
		return panelProcC(o), nil
	case "fig5.4":
		return panelValK(o, traffic.LabelValueUniform), nil
	case "fig5.5":
		return panelValB(o, traffic.LabelValueUniform), nil
	case "fig5.6":
		return panelValC(o, traffic.LabelValueUniform), nil
	case "fig5.7":
		return panelValK(o, traffic.LabelValueByPort), nil
	case "fig5.8":
		return panelValB(o, traffic.LabelValueByPort), nil
	case "fig5.9":
		return panelValC(o, traffic.LabelValueByPort), nil
	default:
		return nil, fmt.Errorf("experiments: unknown panel %q (want one of %v)", id, PanelIDs())
	}
}

// policyNames renders a roster compactly for config digests.
func policyNames(ps []core.Policy) string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name()
	}
	return strings.Join(names, ",")
}

// cellDigest canonically renders everything a panel's Build bakes into
// its cells — model, the fixed k/B/C dimensions (the swept one marked
// "swept" since the Xs are fingerprinted separately), the policy
// roster and the traffic scale — for sim.Sweep.ConfigDigest, so a
// checkpoint resume after any flag change is refused instead of
// silently merging stale cells.
func cellDigest(model, swept string, k, b, c int, policies string, o Options) string {
	dim := func(name string, v int) string {
		if name == swept {
			return name + "=swept"
		}
		return fmt.Sprintf("%s=%d", name, v)
	}
	return fmt.Sprintf("model=%s;%s;%s;%s;policies=%s;slots=%d;sources=%d;flush=%d",
		model, dim("k", k), dim("B", b), dim("C", c), policies, o.Slots, o.Sources, o.FlushEvery)
}

// procCapacity is the processing model's aggregate service rate in
// packets per slot under the contiguous configuration: Σ C/w_i = C·H_k.
func procCapacity(k, speedup int) float64 {
	return float64(speedup) * hmath.Harmonic(k)
}

// procInstance assembles one processing-model cell.
func procInstance(k, b, c int, rate float64, o Options, seed int64) (sim.Instance, error) {
	cfg := core.Config{
		Model:    core.ModelProcessing,
		Ports:    k,
		Buffer:   b,
		MaxLabel: k,
		Speedup:  c,
		PortWork: core.ContiguousWorks(k),
	}
	mcfg := traffic.MMPPConfig{
		Sources:      o.Sources,
		POnOff:       pOnOff,
		POffOn:       pOffOn,
		Label:        traffic.LabelWorkByPort,
		Ports:        k,
		MaxLabel:     k,
		PortWork:     cfg.PortWork,
		PortAffinity: true,
		Seed:         seed,
	}
	mcfg.LambdaOn = mcfg.LambdaForRate(rate)
	prov, err := traffic.NewMMPPProvider(mcfg, o.Slots)
	if err != nil {
		return sim.Instance{}, err
	}
	return sim.Instance{
		Cfg:        cfg,
		Policies:   policy.ForProcessing(),
		Provider:   prov,
		FlushEvery: o.FlushEvery,
	}, nil
}

// panelProcK is Fig. 5(1): processing model, ratio vs k at constant
// relative load.
func panelProcK(o Options) *sim.Sweep {
	return &sim.Sweep{
		Name:         "fig5.1",
		XLabel:       "k",
		Xs:           []int{2, 4, 8, 12, 16, 24, 32},
		Seeds:        o.Seeds,
		BaseSeed:     o.BaseSeed,
		Parallelism:  o.Parallelism,
		ConfigDigest: cellDigest("processing", "k", 0, 200, 1, policyNames(policy.ForProcessing()), o),
		Build: func(k int, seed int64) (sim.Instance, error) {
			return procInstance(k, 200, 1, loadProcessing*procCapacity(k, 1), o, seed)
		},
	}
}

// panelProcB is Fig. 5(2): processing model, ratio vs B from congested to
// uncongested.
func panelProcB(o Options) *sim.Sweep {
	const k = 16
	return &sim.Sweep{
		Name:         "fig5.2",
		XLabel:       "B",
		Xs:           []int{32, 64, 128, 256, 512, 1024, 2048},
		Seeds:        o.Seeds,
		BaseSeed:     o.BaseSeed,
		Parallelism:  o.Parallelism,
		ConfigDigest: cellDigest("processing", "B", k, 0, 1, policyNames(policy.ForProcessing()), o),
		Build: func(b int, seed int64) (sim.Instance, error) {
			return procInstance(k, b, 1, loadProcessing*procCapacity(k, 1), o, seed)
		},
	}
}

// panelProcC is Fig. 5(3): processing model, ratio vs per-queue speedup C
// at fixed offered rate (load crosses 1 at C = 3).
func panelProcC(o Options) *sim.Sweep {
	const k = 16
	return &sim.Sweep{
		Name:         "fig5.3",
		XLabel:       "C",
		Xs:           []int{1, 2, 3, 4, 5, 6, 8},
		Seeds:        o.Seeds,
		BaseSeed:     o.BaseSeed,
		Parallelism:  o.Parallelism,
		ConfigDigest: cellDigest("processing", "C", k, 200, 0, policyNames(policy.ForProcessing()), o),
		Build: func(c int, seed int64) (sim.Instance, error) {
			return procInstance(k, 200, c, loadSpeedupRef*procCapacity(k, 1), o, seed)
		},
	}
}

// valInstance assembles one value-model cell. In the value model n = k:
// the by-port special case identifies values with ports, and the uniform
// case keeps the same geometry for comparability. With spiky set, a few
// heavy sources emit slot-scale megabursts that exceed the buffer — the
// regime of Fig. 5(6) where large speedups let MVD shine.
func valInstance(k, b, c int, rate float64, label traffic.LabelMode, spiky bool, o Options, seed int64) (sim.Instance, error) {
	cfg := core.Config{
		Model:    core.ModelValue,
		Ports:    k,
		Buffer:   b,
		MaxLabel: k,
		Speedup:  c,
	}
	policies := policy.ForValueUniform()
	if label == traffic.LabelValueByPort {
		policies = policy.ForValueByPort()
	}
	mcfg := traffic.MMPPConfig{
		Sources:      o.Sources,
		POnOff:       pOnOff,
		POffOn:       pOffOn,
		Label:        label,
		Ports:        k,
		MaxLabel:     k,
		PortAffinity: true,
		Seed:         seed,
	}
	if spiky {
		// A handful of heavy sources, port-uniform in the uniform-value
		// case, so a megaburst floods the whole buffer at once.
		mcfg.Sources = max(4, o.Sources/5)
		mcfg.POnOff = 0.5
		mcfg.POffOn = 0.005
		mcfg.PortAffinity = label == traffic.LabelValueByPort
	}
	mcfg.LambdaOn = mcfg.LambdaForRate(rate)
	prov, err := traffic.NewMMPPProvider(mcfg, o.Slots)
	if err != nil {
		return sim.Instance{}, err
	}
	return sim.Instance{
		Cfg:        cfg,
		Policies:   policies,
		Provider:   prov,
		FlushEvery: o.FlushEvery,
	}, nil
}

// valDigestModel renders the value-model tag for cellDigest, folding in
// the label mode and the spiky-traffic switch.
func valDigestModel(label traffic.LabelMode, spiky bool) string {
	tag := fmt.Sprintf("value/%v", label)
	if spiky {
		tag += "/spiky"
	}
	return tag
}

// valRoster returns the competing roster for the label mode.
func valRoster(label traffic.LabelMode) []core.Policy {
	if label == traffic.LabelValueByPort {
		return policy.ForValueByPort()
	}
	return policy.ForValueUniform()
}

// panelValK is Fig. 5(4)/(7): value model, ratio vs k at a fixed offered
// rate, so growing k (= more ports) relieves congestion.
func panelValK(o Options, label traffic.LabelMode) *sim.Sweep {
	name := "fig5.4"
	if label == traffic.LabelValueByPort {
		name = "fig5.7"
	}
	const rate = loadValue * 16 // calibrated to load 1.5 at the middle point k=16
	return &sim.Sweep{
		Name:         name,
		XLabel:       "k",
		Xs:           []int{2, 4, 8, 16, 24, 32},
		Seeds:        o.Seeds,
		BaseSeed:     o.BaseSeed,
		Parallelism:  o.Parallelism,
		ConfigDigest: cellDigest(valDigestModel(label, false), "k", 0, 200, 1, policyNames(valRoster(label)), o),
		Build: func(k int, seed int64) (sim.Instance, error) {
			return valInstance(k, 200, 1, rate, label, false, o, seed)
		},
	}
}

// panelValB is Fig. 5(5)/(8): value model, ratio vs B.
func panelValB(o Options, label traffic.LabelMode) *sim.Sweep {
	name := "fig5.5"
	if label == traffic.LabelValueByPort {
		name = "fig5.8"
	}
	const k = 16
	return &sim.Sweep{
		Name:         name,
		XLabel:       "B",
		Xs:           []int{32, 64, 128, 256, 512, 1024, 2048},
		Seeds:        o.Seeds,
		BaseSeed:     o.BaseSeed,
		Parallelism:  o.Parallelism,
		ConfigDigest: cellDigest(valDigestModel(label, false), "B", k, 0, 1, policyNames(valRoster(label)), o),
		Build: func(b int, seed int64) (sim.Instance, error) {
			return valInstance(k, b, 1, loadValue*float64(k), label, false, o, seed)
		},
	}
}

// panelValC is Fig. 5(6)/(9): value model, ratio vs speedup C at fixed
// offered rate (load crosses 1 at C = 3); the regime where bursts fit in
// a slot's service but not in the buffer, letting MVD shine.
func panelValC(o Options, label traffic.LabelMode) *sim.Sweep {
	name := "fig5.6"
	if label == traffic.LabelValueByPort {
		name = "fig5.9"
	}
	const k = 16
	return &sim.Sweep{
		Name:         name,
		XLabel:       "C",
		Xs:           []int{1, 2, 4, 8, 12, 16},
		Seeds:        o.Seeds,
		BaseSeed:     o.BaseSeed,
		Parallelism:  o.Parallelism,
		ConfigDigest: cellDigest(valDigestModel(label, true), "C", k, 200, 0, policyNames(valRoster(label)), o),
		Build: func(c int, seed int64) (sim.Instance, error) {
			return valInstance(k, 200, c, spikyLoad*float64(k), label, true, o, seed)
		},
	}
}

// SortedPolicyNames returns the union of policy names across points, in
// stable order; convenient for report rendering.
func SortedPolicyNames(r *sim.SweepResult) []string {
	set := map[string]bool{}
	for _, p := range r.Points {
		for name := range p.Ratio {
			set[name] = true
		}
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
