package experiments

import (
	"strings"
	"testing"
)

func TestFaultDegradation(t *testing.T) {
	opts := smallOpts()
	opts.Seeds = 1
	rows, err := FaultDegradation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("%d rows, want the full processing roster", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Policy] {
			t.Errorf("duplicate policy %q", r.Policy)
		}
		seen[r.Policy] = true
		if r.Nominal <= 0 {
			t.Errorf("%s nominal ratio %v <= 0", r.Policy, r.Nominal)
		}
		if r.Faulted <= 0 {
			t.Errorf("%s faulted ratio %v <= 0", r.Policy, r.Faulted)
		}
		if r.Penalty <= 0 {
			t.Errorf("%s penalty %v <= 0", r.Policy, r.Penalty)
		}
	}
	for _, want := range []string{"LWD", "LQD", "Greedy"} {
		if !seen[want] {
			t.Errorf("roster missing %s", want)
		}
	}

	table := FaultTable(rows)
	for _, want := range []string{"policy", "nominal", "faulted", "penalty", "LWD"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestFaultDegradationDeterministic(t *testing.T) {
	opts := smallOpts()
	opts.Seeds = 1
	opts.Slots = 400
	a, err := FaultDegradation(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultDegradation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCanonicalFaultMixSchedule(t *testing.T) {
	mix := CanonicalFaultMix(2_000)
	if mix.Empty() {
		t.Fatal("canonical mix is empty")
	}
	if mix.Horizon != 2_000 {
		t.Errorf("horizon %d, want 2000", mix.Horizon)
	}
	if events := mix.Schedule(faultPanelK, 1); len(events) == 0 {
		t.Error("canonical mix materialized no events")
	}
}
