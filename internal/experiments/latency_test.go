package experiments

import (
	"strings"
	"testing"
)

// TestLatencySweep executes the paper's closing observation: smaller
// buffers sharpen the processing-delay effect. Mean latency must grow
// with B (more queueing headroom) while the ratio falls; and LWD's
// latency advantage over Greedy must be visible at every size.
func TestLatencySweep(t *testing.T) {
	rows, err := Latency(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*3 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]LatencyRow{}
	for _, r := range rows {
		byKey[r.Policy+"@"+itoa(r.B)] = r
	}
	// Throughput ratio falls (or holds) as B grows, for every policy.
	for _, p := range []string{"LWD", "LQD", "Greedy"} {
		small, large := byKey[p+"@32"], byKey[p+"@512"]
		if large.Ratio > small.Ratio+0.05 {
			t.Errorf("%s: ratio grew with buffer (%.3f -> %.3f)", p, small.Ratio, large.Ratio)
		}
		if large.MeanLatency <= small.MeanLatency {
			t.Errorf("%s: latency did not grow with buffer (%.1f -> %.1f)", p, small.MeanLatency, large.MeanLatency)
		}
	}
	// LWD delivers more than Greedy at a comparable or better delay.
	for _, b := range []string{"32", "512"} {
		lwd, grd := byKey["LWD@"+b], byKey["Greedy@"+b]
		if lwd.Ratio >= grd.Ratio {
			t.Errorf("B=%s: LWD ratio %.3f not ahead of Greedy %.3f", b, lwd.Ratio, grd.Ratio)
		}
	}

	table := LatencyTable(rows)
	for _, want := range []string{"heavy mean lat", "LWD", "512"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
