// Package metrics provides numerically stable streaming statistics for
// aggregating competitive ratios across seeds and parameter sweeps.
package metrics

import "math"

// Welford accumulates mean and variance in one pass using Welford's
// algorithm. The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// tTable95 holds two-sided 95% Student-t critical values t_{0.975,df}
// for df = 1..30 (index 0 unused). Sweeps replicate over a handful of
// seeds, exactly the regime where the normal z = 1.96 understates the
// interval badly (df=2: 4.30 vs 1.96).
var tTable95 = [31]float64{0,
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom: exact table values for df <= 30, the asymptotic
// approximation 1.96 + 2.4/df beyond (absolute error < 0.003 there,
// converging to the normal quantile as df grows).
func tCrit95(df int64) float64 {
	if df < 1 {
		return 0
	}
	if df <= 30 {
		return tTable95[df]
	}
	return 1.96 + 2.4/float64(df)
}

// CI95 returns a two-sided 95% Student-t confidence interval for the
// mean: mean ± t_{0.975,n-1}·stderr. With fewer than two observations
// the spread is undefined and the degenerate interval [mean, mean] is
// returned. For the small seed counts sweeps actually use, the t
// half-width is substantially wider — and honest — compared to the
// fixed z = 1.96 normal approximation it replaces.
func (w *Welford) CI95() (lo, hi float64) {
	if w.n < 2 {
		return w.mean, w.mean
	}
	half := tCrit95(w.n-1) * w.StdErr()
	return w.mean - half, w.mean + half
}

// Summary is an immutable snapshot of a Welford accumulator.
type Summary struct {
	// N is the number of observations.
	N int64
	// Mean and Std are the running mean and sample standard deviation.
	Mean, Std float64
	// Min and Max are the observed extremes.
	Min, Max float64
}

// Summary snapshots the accumulator.
func (w *Welford) Summary() Summary {
	return Summary{N: w.n, Mean: w.mean, Std: w.Std(), Min: w.min, Max: w.max}
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) over per-entity
// allocations: 1 means perfectly even service, 1/n means one entity
// monopolizes. Used to quantify the starvation behaviour that motivates
// the paper's shared-memory design. Empty or all-zero input yields 1.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
