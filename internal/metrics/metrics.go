// Package metrics provides numerically stable streaming statistics for
// aggregating competitive ratios across seeds and parameter sweeps.
package metrics

import "math"

// Welford accumulates mean and variance in one pass using Welford's
// algorithm. The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// CI95 returns a normal-approximation 95% confidence interval for the
// mean.
func (w *Welford) CI95() (lo, hi float64) {
	half := 1.96 * w.StdErr()
	return w.mean - half, w.mean + half
}

// Summary is an immutable snapshot of a Welford accumulator.
type Summary struct {
	N         int64
	Mean, Std float64
	Min, Max  float64
}

// Summary snapshots the accumulator.
func (w *Welford) Summary() Summary {
	return Summary{N: w.n, Mean: w.mean, Std: w.Std(), Min: w.min, Max: w.max}
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) over per-entity
// allocations: 1 means perfectly even service, 1/n means one entity
// monopolizes. Used to quantify the starvation behaviour that motivates
// the paper's shared-memory design. Empty or all-zero input yields 1.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
