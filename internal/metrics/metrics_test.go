package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyWelford(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.Std() != 0 || w.StdErr() != 0 {
		t.Errorf("empty accumulator not all-zero: %+v", w.Summary())
	}
	lo, hi := w.CI95()
	if lo != 0 || hi != 0 {
		t.Errorf("empty CI = [%v, %v]", lo, hi)
	}
}

func TestSingleObservation(t *testing.T) {
	var w Welford
	w.Add(4.2)
	if w.N() != 1 || w.Mean() != 4.2 || w.Variance() != 0 {
		t.Errorf("single obs: %+v", w.Summary())
	}
	if w.Min() != 4.2 || w.Max() != 4.2 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestKnownMoments(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if got := w.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance with n-1: sum sq dev = 32, / 7.
	if got, want := w.Variance(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
	lo, hi := w.CI95()
	if !(lo < 5 && 5 < hi) {
		t.Errorf("CI [%v, %v] excludes the mean", lo, hi)
	}
	s := w.Summary()
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("Summary = %+v", s)
	}
}

// TestCI95StudentT pins the Student-t half-width against hand-computed
// intervals for the small seed counts sweeps actually use.
func TestCI95StudentT(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, 2, 3} {
		w.Add(x)
	}
	// n=3: mean 1±... mean=2, std=1, stderr=1/sqrt(3), t_{0.975,2}=4.303.
	wantHalf := 4.303 / math.Sqrt(3)
	lo, hi := w.CI95()
	if math.Abs((hi-lo)/2-wantHalf) > 1e-9 {
		t.Errorf("n=3 half-width = %v, want %v", (hi-lo)/2, wantHalf)
	}
	if math.Abs((hi+lo)/2-2) > 1e-12 {
		t.Errorf("CI [%v, %v] not centered on the mean", lo, hi)
	}
	// The t interval must be strictly wider than the old z=1.96 one.
	if zHalf := 1.96 * w.StdErr(); (hi-lo)/2 <= zHalf {
		t.Errorf("t half-width %v not wider than z half-width %v", (hi-lo)/2, zHalf)
	}
}

// TestCI95DegenerateBelowTwo asserts the n<2 contract: no spread
// estimate exists, so the interval collapses to [mean, mean] instead of
// pretending z·0 confidence.
func TestCI95DegenerateBelowTwo(t *testing.T) {
	var w Welford
	if lo, hi := w.CI95(); lo != 0 || hi != 0 {
		t.Errorf("empty CI = [%v, %v], want [0, 0]", lo, hi)
	}
	w.Add(4.2)
	if lo, hi := w.CI95(); lo != 4.2 || hi != 4.2 {
		t.Errorf("n=1 CI = [%v, %v], want [4.2, 4.2]", lo, hi)
	}
}

// TestTCrit95 checks the table/approximation seam: exact values at the
// small-df end, a monotone decrease toward the normal quantile, and an
// accurate approximation just past the table boundary.
func TestTCrit95(t *testing.T) {
	cases := []struct {
		df   int64
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {5, 2.571}, {10, 2.228}, {30, 2.042},
	}
	for _, c := range cases {
		if got := tCrit95(c.df); got != c.want {
			t.Errorf("tCrit95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// Approximation region: reference values t_{0.975,40}=2.021,
	// t_{0.975,60}=2.000, t_{0.975,120}=1.980.
	approx := []struct {
		df   int64
		want float64
	}{{40, 2.021}, {60, 2.000}, {120, 1.980}}
	for _, c := range approx {
		if got := tCrit95(c.df); math.Abs(got-c.want) > 0.003 {
			t.Errorf("tCrit95(%d) = %v, want %v ± 0.003", c.df, got, c.want)
		}
	}
	for df := int64(1); df < 200; df++ {
		if tCrit95(df+1) >= tCrit95(df) {
			t.Fatalf("tCrit95 not strictly decreasing at df=%d: %v -> %v", df, tCrit95(df), tCrit95(df+1))
		}
	}
	if got := tCrit95(1 << 20); math.Abs(got-1.96) > 1e-2 {
		t.Errorf("tCrit95(large) = %v, want ~1.96", got)
	}
}

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"all zero", []float64{0, 0}, 1},
		{"perfectly fair", []float64{3, 3, 3}, 1},
		{"monopoly of one in four", []float64{1, 0, 0, 0}, 0.25},
		{"two of four", []float64{1, 1, 0, 0}, 0.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("JainIndex(%v) = %v, want %v", c.xs, got, c.want)
			}
		})
	}
	// Index is scale-invariant.
	a := JainIndex([]float64{1, 2, 3})
	b := JainIndex([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("not scale invariant: %v vs %v", a, b)
	}
}

// TestQuickMatchesNaive compares against two-pass formulas on random
// datasets.
func TestQuickMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		var w Welford
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
			w.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var sq float64
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			sq += (x - mean) * (x - mean)
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		naiveVar := sq / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-9*math.Abs(mean)+1e-9 &&
			math.Abs(w.Variance()-naiveVar) < 1e-6*naiveVar+1e-9 &&
			w.Min() == mn && w.Max() == mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}
