package core

import (
	"fmt"

	"smbm/internal/obs"
	"smbm/internal/pkt"
)

// BatchPolicy is optionally implemented by policies that can decide a
// whole slot's arrival burst through a Batch executor instead of one
// Admit call per packet. A batch kernel sees the burst up front, so it
// can hoist threshold computations, reuse argmax results across a
// burst prefix, and memoize drop decisions (see Batch.KnownDrop) —
// the per-burst evaluation the per-packet interface cannot express.
//
// The contract is bit-identity: AdmitBatch must execute exactly the
// decision sequence the policy's Admit would produce packet by packet,
// in arrival order, calling exactly one executor op (Accept, Drop,
// DropMemo, DropAll or PushOut) per packet. The differential and fuzz
// suites enforce this for every roster policy against the per-packet
// Arrive reference.
type BatchPolicy interface {
	Policy
	// AdmitBatch decides every packet of ps in arrival order via b.
	//smb:hotpath
	AdmitBatch(b *Batch, ps []pkt.Packet)
}

// Undo-log operation kinds: each records how to invert one structural
// mutation of the arrival phase.
const (
	opInsert = iota // a packet was inserted into port's queue
	opEvict         // a packet was evicted from port's queue
)

// Undo-log entries are packed into one word each — the log is appended
// to on every accept, so the hot path stores 8 bytes, not a struct:
// bit 0 is the op kind, bits 1..31 the port, bits 32..63 the value
// (both validated non-negative and far below 2³¹). Evictions carry
// their extra pre-mutation facts in a parallel side log (evictUndo),
// appended only when a push-out happens.
const undoKindMask = 1

// packUndo encodes one undo entry.
func packUndo(kind, port, val int) uint64 {
	return uint64(kind) | uint64(port)<<1 | uint64(val)<<32
}

// evictUndo carries the facts an eviction must restore beyond its
// packed log entry: the FIFO disciplines' head-of-line residual,
// queue work and evicted arrival slot. (The evicted value — the
// popped minimum in the value model, the popped tail value in the
// combined model — rides in the packed entry itself.)
type evictUndo struct {
	hol  int   // pre-eviction head-of-line residual
	wrk  int   // pre-eviction queue total work
	slot int64 // arrival slot of the evicted tail
}

// ArriveBatch runs one arrival phase over a whole burst, in order,
// through the policy's batch kernel when it implements BatchPolicy and
// through per-packet Admit calls otherwise. Unlike the sequential
// ArriveBurst reference it is transactional: every packet is validated
// up front, and a mid-batch failure (a malformed decision from the
// policy, an undecided packet, a CheckInvariants violation) rolls back
// every queue mutation, Stats and per-port counter movement, and obs
// counter of the batch, leaving the switch in its exact pre-batch
// state. The returned *BurstError then carries Applied == 0. Decision
// trace events are buffered and delivered to the recorder only on
// commit, preserving the per-packet event order.
//
// On success the resulting Stats, PortCounters and obs counters are
// bit-identical to ArriveBurst on the same burst — the differential
// contract the batch suites enforce for all roster policies.
//
//smb:hotpath
func (s *Switch) ArriveBatch(ps []pkt.Packet) error {
	if len(ps) == 0 {
		return nil
	}
	for i := range ps {
		if err := ps[i].Validate(s.cfg.Ports, s.cfg.MaxLabel); err != nil {
			//smb:alloc-ok validation failure path, never taken by well-formed input
			return &BurstError{Index: i, Err: err}
		}
		if s.fifo && ps[i].Work != s.works[ps[i].Port] {
			//smb:alloc-ok validation failure path, never taken by well-formed input
			return &BurstError{Index: i, Err: fmt.Errorf("core: packet work %d does not match port %d configuration %d", ps[i].Work, ps[i].Port, s.works[ps[i].Port])}
		}
	}
	s.beginBatch()
	b := &s.batch
	if s.batchPol != nil {
		s.batchPol.AdmitBatch(b, ps)
	} else {
		b.PerPacket(ps)
	}
	if b.err == nil && b.idx != len(ps) {
		//smb:alloc-ok kernel-contract failure path, never taken by a conforming policy
		b.err = fmt.Errorf("core: policy %s batch kernel decided %d of %d packets", s.policy.Name(), b.idx, len(ps))
		b.errIdx = b.idx
	}
	if b.err != nil {
		idx, err := b.errIdx, b.err
		s.rollbackBatch()
		//smb:alloc-ok burst rollback, error path only
		return &BurstError{Index: idx, Applied: 0, Err: err}
	}
	s.commitBatch()
	return nil
}

// beginBatch opens a transaction: it advances the batch serial and the
// drop-memo epoch, snapshots Stats and (when a recorder is attached)
// the obs counter slab, and rewinds the undo log, the dirty-port
// journal and the trace buffer. All scratch is preallocated or reused,
// so steady-state batches stay allocation-free.
//
//smb:hotpath
func (s *Switch) beginBatch() {
	s.batchSerial++
	s.memoEpoch++
	s.statsSnap = s.stats
	s.undo = s.undo[:0]
	s.undoEv = s.undoEv[:0]
	s.dirtyPorts = s.dirtyPorts[:0]
	s.evBuf = s.evBuf[:0]
	if s.rec != nil {
		//smb:alloc-ok checkpoint slab grows on first use, reused every batch after
		s.recSnap = s.rec.SaveCounts(s.recSnap)
	}
	s.batch.idx = 0
	s.batch.err = nil
	s.batch.errIdx = 0
}

// commitBatch closes a successful transaction. Counters were written
// in place, so the only remaining work is delivering the buffered
// trace events in decision order.
//
//smb:hotpath
func (s *Switch) commitBatch() {
	if s.rec != nil {
		for i := range s.evBuf {
			e := &s.evBuf[i]
			s.rec.Trace(e.Slot, e.Port, e.Kind, e.Work, e.Value)
		}
	}
	s.evBuf = s.evBuf[:0]
}

// rollbackBatch restores the exact pre-batch state: structural
// mutations are inverted by replaying the undo log backwards, Stats
// and the touched per-port counters are restored from their
// checkpoints, the obs counter slab is restored, and the buffered
// trace events are discarded. The argmax caches are force-invalidated
// instead of replayed — a rescan is behaviorally identical to any
// valid cache state.
//
//smb:hotpath
func (s *Switch) rollbackBatch() {
	ev := len(s.undoEv)
	for i := len(s.undo) - 1; i >= 0; i-- {
		u := s.undo[i]
		port, val := int(u>>1&0x7fffffff), int(u>>32)
		if u&undoKindMask == opInsert {
			s.undoInsert(port, val)
		} else {
			ev--
			s.undoEvict(port, val, s.undoEv[ev])
		}
	}
	s.undo = s.undo[:0]
	s.undoEv = s.undoEv[:0]
	s.lenMax.invalidate()
	s.workMax.invalidate()
	s.stats = s.statsSnap
	for _, i := range s.dirtyPorts {
		s.perPort[i] = s.savedPC[i]
	}
	s.dirtyPorts = s.dirtyPorts[:0]
	if s.rec != nil {
		//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
		s.rec.RestoreCounts(s.recSnap)
	}
	s.evBuf = s.evBuf[:0]
}

// undoInsert inverts one insert: the inserted packet is the newest in
// its queue (the FIFO tail / the recorded value), so popping it
// restores the previous queue exactly.
//
//smb:hotpath
func (s *Switch) undoInsert(i, val int) {
	s.qLen[i]--
	if s.fifo {
		s.arrivals[i].PopBack()
		if s.qLen[i] == 0 {
			s.holRes[i] = 0
			s.qWork[i] = 0
		} else {
			s.qWork[i] -= s.works[i]
		}
	} else {
		s.qWork[i]--
	}
	if s.valued {
		if s.vals != nil {
			s.vals[i].PopBack()
		}
		s.vq[i].Remove(val)
		s.vSum[i] -= int64(val)
		if s.qLen[i] == 0 {
			s.vMin[i] = 0
		} else {
			s.vMin[i] = s.vq[i].Min()
		}
	} else {
		s.vSum[i]--
		if s.qLen[i] == 0 {
			s.vMin[i] = 0
		}
	}
	s.occ--
}

// undoEvict inverts one eviction by re-adding the evicted packet with
// its recorded pre-eviction facts (arrival slot, head-of-line
// residual and queue work under the FIFO disciplines; the evicted
// value under the valued ones).
//
//smb:hotpath
func (s *Switch) undoEvict(i, val int, d evictUndo) {
	s.qLen[i]++
	if s.fifo {
		s.arrivals[i].PushBack(d.slot)
		s.holRes[i] = d.hol
		s.qWork[i] = d.wrk
	} else {
		s.qWork[i]++
	}
	if s.valued {
		if s.vals != nil {
			s.vals[i].PushBack(int64(val))
		}
		s.vq[i].Add(val)
		s.vSum[i] += int64(val)
		s.vMin[i] = s.vq[i].Min()
	} else {
		s.vSum[i]++
		s.vMin[i] = 1
	}
	s.occ++
}

// touchPort checkpoints one port's counters on its first mutation in
// the current batch, so rollback restores exactly the touched ports
// without a per-slot copy of the whole counter table.
//
//smb:hotpath
func (s *Switch) touchPort(i int) {
	if s.dirtyStamp[i] != s.batchSerial {
		s.dirtyStamp[i] = s.batchSerial
		s.savedPC[i] = s.perPort[i]
		s.dirtyPorts = append(s.dirtyPorts, i)
	}
}

// Batch executes one burst's admission decisions against the switch,
// inside the transaction ArriveBatch opened. Exactly one op — Accept,
// Drop, DropMemo, DropAll or PushOut — must be called per packet, in
// arrival order. Errors are sticky: after a failed op every further op
// is a no-op, Err reports the failure, and ArriveBatch rolls the whole
// batch back. A Batch is only valid inside the AdmitBatch call it is
// passed to; kernels must not retain it.
type Batch struct {
	s      *Switch
	idx    int // packets decided so far
	err    error
	errIdx int
}

// View returns the switch state as a FastView, live across ops: reads
// after an Accept or PushOut observe the mutated queues, exactly like
// consecutive per-packet Admit calls. The usual FastView contract
// applies — returned slices are read-only.
func (b *Batch) View() FastView { return b.s }

// Err returns the sticky failure, nil while the batch is healthy.
// Kernels may break out early when it is non-nil; every op no-ops once
// it is set.
func (b *Batch) Err() error { return b.err }

// Free returns the free space below the effective buffer, matching
// View.Free. Non-push-out kernels can drop an entire burst suffix once
// it reaches zero (free space never grows during an arrival phase).
//
//smb:hotpath
func (b *Batch) Free() int {
	if free := b.s.effBuf - b.s.occ; free > 0 {
		return free
	}
	return 0
}

// Accept admits the next packet into its destination queue without an
// eviction, executing the same sequence as the per-packet path: the
// arrival and acceptance counters move, the admit event records, and
// the occupancy high-water mark updates.
//
//smb:hotpath
func (b *Batch) Accept(p pkt.Packet) {
	if b.err != nil {
		return
	}
	s := b.s
	if s.occ >= s.effBuf {
		b.failFull(s.occ, s.effBuf)
		return
	}
	s.stats.Arrived++
	s.touchPort(p.Port)
	pc := &s.perPort[p.Port]
	pc.Arrived++
	s.insert(p)
	s.undo = append(s.undo, packUndo(opInsert, p.Port, p.Value))
	s.stats.Accepted++
	pc.Accepted++
	if s.rec != nil {
		s.rec.Inc(p.Port, obs.KindAdmit)
		if s.rec.Tracing() {
			b.traceEvent(p.Port, obs.KindAdmit, p.Work, p.Value)
		}
	}
	s.stats.observeOccupancy(s.occ)
	s.memoEpoch++
	b.idx++
	if s.cfg.CheckInvariants {
		b.checkInvariants()
	}
}

// Drop rejects the next packet: the arrival and drop counters move and
// the tail-drop event records, mutating no queue state.
//
//smb:hotpath
func (b *Batch) Drop(p pkt.Packet) {
	if b.err != nil {
		return
	}
	s := b.s
	s.stats.Arrived++
	s.stats.Dropped++
	s.touchPort(p.Port)
	pc := &s.perPort[p.Port]
	pc.Arrived++
	pc.Dropped++
	if s.rec != nil {
		s.rec.Inc(p.Port, obs.KindTailDrop)
		if s.rec.Tracing() {
			b.traceEvent(p.Port, obs.KindTailDrop, p.Work, p.Value)
		}
	}
	b.idx++
}

// DropAll rejects a whole burst suffix, packet by packet, in order.
// Kernels use it once a burst prefix has pinned the remaining
// decisions (e.g. Free() reached zero under a non-push-out policy).
//
//smb:hotpath
func (b *Batch) DropAll(ps []pkt.Packet) {
	for i := range ps {
		b.Drop(ps[i])
	}
}

// DropMemo is Drop plus memoization: it stamps (port, value) in the
// engine's drop-memo table so KnownDrop short-circuits an identical
// later arrival, as long as no state mutation intervened.
//
//smb:hotpath
func (b *Batch) DropMemo(p pkt.Packet) {
	if b.err != nil {
		return
	}
	s := b.s
	s.memoStamp[p.Port*s.memoStride+p.Value] = s.memoEpoch
	b.Drop(p)
}

// KnownDrop reports whether an identical packet was dropped via
// DropMemo with no state mutation since. The memo is sound because
// policies are pure functions of (View, Packet), a packet is fully
// determined by (port, value) given the switch configuration (work is
// per-port), and the memo epoch advances on every accept and push-out:
// a stamped drop therefore replays the exact same policy evaluation.
//
// The epoch is monotone over the switch's whole lifetime — Reset and
// SetPolicy leave it in place and the next batch advances past it, so
// a stamp from before a reset or policy swap can never validate — and
// its int64 width makes wraparound (the other way a stale stamp could
// alias a live epoch) infeasible even for an unbounded daemon; see the
// field docs in switch.go.
//
//smb:hotpath
func (b *Batch) KnownDrop(p pkt.Packet) bool {
	s := b.s
	return s.memoStamp[p.Port*s.memoStride+p.Value] == s.memoEpoch
}

// PushOut evicts one packet from queue victim (the FIFO tail in the
// processing and combined models, the minimum value in the value
// model) and admits p in its place, executing the same validation,
// counter and event sequence as the per-packet path.
//
//smb:hotpath
func (b *Batch) PushOut(victim int, p pkt.Packet) {
	if b.err != nil {
		return
	}
	s := b.s
	if err := s.canEvict(victim); err != nil {
		b.failEvict(err)
		return
	}
	if s.occ-1 >= s.cfg.Buffer {
		b.failFull(s.occ-1, s.cfg.Buffer)
		return
	}
	var (
		d    evictUndo
		eval int
	)
	if s.fifo {
		//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
		d.slot = s.arrivals[victim].Back()
		d.hol = s.holRes[victim]
		d.wrk = s.qWork[victim]
		if s.valued {
			//smb:alloc-ok panic on a violated invariant, unreachable in a correct simulator
			eval = int(s.vals[victim].Back())
		}
	} else {
		eval = s.vq[victim].Min()
	}
	remWork, remValue := s.evict(victim)
	s.undo = append(s.undo, packUndo(opEvict, victim, eval))
	s.undoEv = append(s.undoEv, d)
	s.stats.PushedOut++
	s.touchPort(victim)
	s.perPort[victim].PushedOut++
	if s.rec != nil {
		s.rec.Inc(victim, obs.KindPushOut)
		s.rec.Add(victim, obs.KindPushedOutWork, uint64(remWork))
		s.rec.Add(victim, obs.KindPushedOutValue, uint64(remValue))
		if s.rec.Tracing() {
			b.traceEvent(victim, obs.KindPushOut, remWork, remValue)
		}
	}
	s.stats.Arrived++
	s.touchPort(p.Port)
	pc := &s.perPort[p.Port]
	pc.Arrived++
	s.insert(p)
	s.undo = append(s.undo, packUndo(opInsert, p.Port, p.Value))
	s.stats.Accepted++
	pc.Accepted++
	if s.rec != nil {
		s.rec.Inc(p.Port, obs.KindAdmit)
		if s.rec.Tracing() {
			b.traceEvent(p.Port, obs.KindAdmit, p.Work, p.Value)
		}
	}
	s.stats.observeOccupancy(s.occ)
	s.memoEpoch++
	b.idx++
	if s.cfg.CheckInvariants {
		b.checkInvariants()
	}
}

// Apply executes one per-packet Decision through the batch ops,
// bridging Admit-style decisions into a transaction.
//
//smb:hotpath
func (b *Batch) Apply(d Decision, p pkt.Packet) {
	switch {
	case !d.Accept:
		b.Drop(p)
	case d.Push:
		b.PushOut(d.Victim, p)
	default:
		b.Accept(p)
	}
}

// PerPacket decides the burst with one policy.Admit call per packet —
// the fallback for policies without a batch kernel, still inside the
// batch transaction.
//
//smb:hotpath
func (b *Batch) PerPacket(ps []pkt.Packet) {
	for i := range ps {
		if b.err != nil {
			return
		}
		b.Apply(b.s.policy.Admit(b.s, ps[i]), ps[i])
	}
}

// traceEvent buffers one decision event for delivery on commit. Only
// called with tracing enabled; the buffer grows amortized to the
// largest traced burst.
func (b *Batch) traceEvent(port int, k obs.Kind, work, value int) {
	s := b.s
	s.evBuf = append(s.evBuf, obs.Event{Slot: s.slot, Port: port, Kind: k, Work: work, Value: value})
}

// checkInvariants runs verify after an applied packet (CheckInvariants
// mode), failing the batch on corruption. The failing index is the
// packet just applied.
func (b *Batch) checkInvariants() {
	if err := b.s.verify(); err != nil {
		b.err = err
		b.errIdx = b.idx - 1
	}
}

// failFull records the sticky full-buffer failure, matching the
// per-packet path's error text.
//
//smb:hotpath
func (b *Batch) failFull(occ, limit int) {
	//smb:alloc-ok policy-violation failure path, never taken by a correct policy
	b.fail(fmt.Errorf("core: policy %s accepted into a full buffer (occ=%d, B=%d)", b.s.policy.Name(), occ, limit))
}

// failEvict records the sticky eviction-validation failure, matching
// the per-packet path's error text.
//
//smb:hotpath
func (b *Batch) failEvict(err error) {
	//smb:alloc-ok policy-violation failure path, never taken by a correct policy
	b.fail(fmt.Errorf("core: policy %s: %w", b.s.policy.Name(), err))
}

// fail records the sticky failure at the current packet index.
func (b *Batch) fail(err error) {
	b.err = err
	b.errIdx = b.idx
}
