package core

import (
	"strings"
	"testing"

	"smbm/internal/pkt"
)

func overrideCfg() Config {
	return Config{
		Model:    ModelProcessing,
		Ports:    2,
		Buffer:   8,
		MaxLabel: 2,
		Speedup:  2,
		PortWork: []int{1, 2},
	}
}

func TestSetPortSpeedupBlackout(t *testing.T) {
	s := MustNew(overrideCfg(), greedy)
	s.SetPortSpeedup(0, 0)
	for i := 0; i < 3; i++ {
		if err := s.Step([]pkt.Packet{pkt.NewWork(0, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if tx := s.Stats().Transmitted; tx != 0 {
		t.Errorf("blacked-out port transmitted %d packets", tx)
	}
	if s.Occupancy() != 3 {
		t.Errorf("occupancy %d, want 3", s.Occupancy())
	}
	// DrainMax reports the stuck drain instead of looping forever.
	if slots, drained := s.DrainMax(16); drained {
		t.Errorf("drain under blackout claimed to empty in %d slots", slots)
	}
	// Restoring the nominal speedup lets the buffer empty.
	s.SetPortSpeedup(0, -1)
	if _, drained := s.DrainMax(16); !drained {
		t.Error("restored port did not drain")
	}
	if tx := s.Stats().Transmitted; tx != 3 {
		t.Errorf("transmitted %d after drain, want 3", tx)
	}
}

func TestSetPortSpeedupSlowdownAndReset(t *testing.T) {
	s := MustNew(overrideCfg(), greedy)
	// Port 1 needs 2 cycles per packet; at nominal speedup 2 it
	// transmits one packet per slot, at C'=1 one packet per two slots.
	s.SetPortSpeedup(1, 1)
	burst := pkt.Burst(pkt.NewWork(1, 2), 4)
	if err := s.Step(burst); err != nil {
		t.Fatal(err)
	}
	if tx := s.Stats().Transmitted; tx != 0 {
		t.Errorf("slowed port finished %d packets in one slot", tx)
	}
	if err := s.Step(nil); err != nil {
		t.Fatal(err)
	}
	if tx := s.Stats().Transmitted; tx != 1 {
		t.Errorf("slowed port transmitted %d packets in two slots, want 1", tx)
	}
	s.ResetSpeedups()
	if err := s.Step(nil); err != nil {
		t.Fatal(err)
	}
	if tx := s.Stats().Transmitted; tx != 2 {
		t.Errorf("restored port transmitted %d packets, want 2", tx)
	}
}

func TestSetPortSpeedupPanicsOutOfRange(t *testing.T) {
	s := MustNew(overrideCfg(), greedy)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("out-of-range port accepted")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "out of") {
			t.Errorf("panic %v does not name the range", r)
		}
	}()
	s.SetPortSpeedup(2, 1)
}

func TestSetBufferLimitSqueezesView(t *testing.T) {
	s := MustNew(overrideCfg(), greedy)
	if err := s.ArriveBurst(pkt.Burst(pkt.NewWork(0, 1), 6)); err != nil {
		t.Fatal(err)
	}
	s.SetBufferLimit(4)
	if got := s.Buffer(); got != 4 {
		t.Errorf("squeezed Buffer() = %d, want 4", got)
	}
	// Occupancy above the transient limit reads as full, never negative.
	if got := s.Free(); got != 0 {
		t.Errorf("squeezed Free() = %d, want 0", got)
	}
	// Greedy (non-push-out) tail-drops against the squeezed buffer.
	if err := s.Arrive(pkt.NewWork(0, 1)); err != nil {
		t.Fatal(err)
	}
	if d := s.Stats().Dropped; d != 1 {
		t.Errorf("dropped %d, want 1", d)
	}
	if s.Occupancy() != 6 {
		t.Errorf("occupancy %d changed by a squeezed drop", s.Occupancy())
	}
	// Lifting the squeeze restores the configured buffer.
	s.SetBufferLimit(0)
	if got := s.Buffer(); got != 8 {
		t.Errorf("restored Buffer() = %d, want 8", got)
	}
	if got := s.Free(); got != 2 {
		t.Errorf("restored Free() = %d, want 2", got)
	}
	// A limit at or above the configured B is a no-op.
	s.SetBufferLimit(100)
	if got := s.Buffer(); got != 8 {
		t.Errorf("oversized limit changed Buffer() to %d", got)
	}
}

func TestSqueezeAllowsPushOutAdmissions(t *testing.T) {
	// A push-out policy stays occupancy-neutral, so admissions remain
	// legal even when occupancy already exceeds the squeezed limit.
	s := MustNew(overrideCfg(), evictFrom(0))
	if err := s.ArriveBurst(pkt.Burst(pkt.NewWork(0, 1), 6)); err != nil {
		t.Fatal(err)
	}
	s.SetBufferLimit(2)
	if err := s.Arrive(pkt.NewWork(0, 1)); err != nil {
		t.Fatalf("push-out admission under squeeze rejected: %v", err)
	}
	if s.Occupancy() != 6 {
		t.Errorf("occupancy %d, want 6 (push-out is occupancy-neutral)", s.Occupancy())
	}
	if po := s.Stats().PushedOut; po != 1 {
		t.Errorf("pushed out %d, want 1", po)
	}
}

func TestResetClearsOverrides(t *testing.T) {
	s := MustNew(overrideCfg(), greedy)
	s.SetPortSpeedup(0, 0)
	s.SetBufferLimit(2)
	s.Reset()
	if got := s.Buffer(); got != 8 {
		t.Errorf("Reset left buffer limit: Buffer() = %d", got)
	}
	if err := s.Step([]pkt.Packet{pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if tx := s.Stats().Transmitted; tx != 1 {
		t.Errorf("Reset left speedup override: transmitted %d, want 1", tx)
	}
}
