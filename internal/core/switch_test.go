package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"smbm/internal/pkt"
)

// greedy is a minimal in-package test policy: accept while space remains.
var greedy = PolicyFunc{PolicyName: "greedy", Func: func(v View, _ pkt.Packet) Decision {
	if v.Free() > 0 {
		return Accept()
	}
	return Drop()
}}

// evictFrom returns a policy that always pushes out from the fixed queue.
func evictFrom(victim int) Policy {
	return PolicyFunc{PolicyName: "evictor", Func: func(v View, _ pkt.Packet) Decision {
		if v.Free() > 0 {
			return Accept()
		}
		return PushOut(victim)
	}}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(Config{}, greedy); err == nil {
		t.Error("New with zero config succeeded")
	}
	if _, err := New(validProcCfg(), nil); err == nil {
		t.Error("New with nil policy succeeded")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{}, greedy)
}

func TestArriveValidatesPackets(t *testing.T) {
	sw := MustNew(validProcCfg(), greedy)
	if err := sw.Arrive(pkt.NewWork(99, 1)); err == nil {
		t.Error("out-of-range port accepted")
	}
	// Port 1 is configured for work 2; a work-3 packet is inconsistent.
	if err := sw.Arrive(pkt.NewWork(1, 3)); err == nil {
		t.Error("work/port mismatch accepted")
	}
}

func TestProcessingTransmission(t *testing.T) {
	// One port with work 3, speedup 1: a packet takes 3 slots.
	cfg := Config{Model: ModelProcessing, Ports: 1, Buffer: 4, MaxLabel: 3, Speedup: 1, PortWork: []int{3}}
	sw := MustNew(cfg, greedy)
	if err := sw.Arrive(pkt.NewWork(0, 3)); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 2; slot++ {
		sw.Transmit()
		if got := sw.Stats().Transmitted; got != 0 {
			t.Fatalf("slot %d: transmitted %d, want 0", slot, got)
		}
	}
	sw.Transmit()
	if got := sw.Stats().Transmitted; got != 1 {
		t.Errorf("after 3 slots: transmitted %d, want 1", got)
	}
	if sw.Occupancy() != 0 {
		t.Errorf("occupancy %d, want 0", sw.Occupancy())
	}
}

func TestProcessingSpeedupChains(t *testing.T) {
	// Speedup 5 on a work-2 port: two packets complete in one slot and
	// the fifth cycle starts the third packet.
	cfg := Config{Model: ModelProcessing, Ports: 1, Buffer: 8, MaxLabel: 2, Speedup: 5, PortWork: []int{2}}
	sw := MustNew(cfg, greedy)
	for i := 0; i < 3; i++ {
		if err := sw.Arrive(pkt.NewWork(0, 2)); err != nil {
			t.Fatal(err)
		}
	}
	sw.Transmit()
	st := sw.Stats()
	if st.Transmitted != 2 {
		t.Errorf("transmitted %d, want 2", st.Transmitted)
	}
	if st.CyclesUsed != 5 {
		t.Errorf("cycles used %d, want 5", st.CyclesUsed)
	}
	if got := sw.QueueWork(0); got != 1 {
		t.Errorf("residual work %d, want 1 (third packet half done)", got)
	}
	sw.Transmit()
	if got := sw.Stats().Transmitted; got != 3 {
		t.Errorf("after second slot: transmitted %d, want 3", got)
	}
}

func TestProcessingFIFOLatency(t *testing.T) {
	cfg := Config{Model: ModelProcessing, Ports: 1, Buffer: 4, MaxLabel: 1, Speedup: 1, PortWork: []int{1}}
	sw := MustNew(cfg, greedy)
	// Two packets in slot 0: latencies 0 and 1. One packet in slot 1,
	// behind the second: latency 1.
	if err := sw.Step([]pkt.Packet{pkt.NewWork(0, 1), pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Step([]pkt.Packet{pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	sw.Drain()
	st := sw.Stats()
	if st.Transmitted != 3 {
		t.Fatalf("transmitted %d, want 3", st.Transmitted)
	}
	if st.LatencySlots != 0+1+1 {
		t.Errorf("latency sum %d, want 2", st.LatencySlots)
	}
}

func TestPushOutTailSemantics(t *testing.T) {
	// Two ports, buffer 2. Fill with port 0, then force eviction from
	// queue 0 when port 1 traffic arrives.
	cfg := Config{Model: ModelProcessing, Ports: 2, Buffer: 2, MaxLabel: 2, Speedup: 1, PortWork: []int{2, 2}}
	sw := MustNew(cfg, evictFrom(0))
	if err := sw.ArriveBurst(pkt.Burst(pkt.NewWork(0, 2), 2)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Arrive(pkt.NewWork(1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := sw.QueueLen(0); got != 1 {
		t.Errorf("queue 0 len %d, want 1 after tail push-out", got)
	}
	if got := sw.QueueLen(1); got != 1 {
		t.Errorf("queue 1 len %d, want 1", got)
	}
	if got := sw.Stats().PushedOut; got != 1 {
		t.Errorf("pushed out %d, want 1", got)
	}
}

func TestPushOutLastPacketResetsResidual(t *testing.T) {
	// A partially processed head-of-line packet is evicted; the cycles
	// spent are wasted and the queue's residual resets.
	cfg := Config{Model: ModelProcessing, Ports: 2, Buffer: 2, MaxLabel: 4, Speedup: 1, PortWork: []int{4, 4}}
	sw := MustNew(cfg, evictFrom(0))
	if err := sw.ArriveBurst([]pkt.Packet{pkt.NewWork(0, 4), pkt.NewWork(1, 4)}); err != nil {
		t.Fatal(err)
	}
	sw.Transmit() // both HOL packets now have residual 3
	if got := sw.QueueWork(0); got != 3 {
		t.Fatalf("queue 0 residual %d, want 3", got)
	}
	if err := sw.Arrive(pkt.NewWork(1, 4)); err != nil {
		t.Fatal(err)
	}
	if got := sw.QueueLen(0); got != 0 {
		t.Errorf("queue 0 len %d, want 0", got)
	}
	if got := sw.QueueWork(0); got != 0 {
		t.Errorf("queue 0 residual %d, want 0 after evicting its only packet", got)
	}
	if got := sw.QueueWork(1); got != 3+4 {
		t.Errorf("queue 1 residual %d, want 7", got)
	}
}

func TestPolicyErrorsSurface(t *testing.T) {
	t.Run("accept into full buffer", func(t *testing.T) {
		alwaysAccept := PolicyFunc{PolicyName: "bad", Func: func(View, pkt.Packet) Decision { return Accept() }}
		cfg := Config{Model: ModelProcessing, Ports: 1, Buffer: 1, MaxLabel: 1, Speedup: 1, PortWork: []int{1}}
		sw := MustNew(cfg, alwaysAccept)
		if err := sw.Arrive(pkt.NewWork(0, 1)); err != nil {
			t.Fatal(err)
		}
		if err := sw.Arrive(pkt.NewWork(0, 1)); err == nil {
			t.Error("accepting into a full buffer did not error")
		}
	})
	t.Run("evict from empty queue", func(t *testing.T) {
		cfg := Config{Model: ModelProcessing, Ports: 2, Buffer: 2, MaxLabel: 1, Speedup: 1, PortWork: []int{1, 1}}
		sw := MustNew(cfg, evictFrom(1)) // queue 1 stays empty
		if err := sw.ArriveBurst(pkt.Burst(pkt.NewWork(0, 1), 2)); err != nil {
			t.Fatal(err)
		}
		err := sw.Arrive(pkt.NewWork(0, 1))
		if err == nil {
			t.Fatal("eviction from empty queue did not error")
		}
		if !strings.Contains(err.Error(), "empty queue") {
			t.Errorf("error %q does not mention the empty queue", err)
		}
	})
	t.Run("victim out of range", func(t *testing.T) {
		cfg := Config{Model: ModelProcessing, Ports: 1, Buffer: 1, MaxLabel: 1, Speedup: 1, PortWork: []int{1}}
		sw := MustNew(cfg, evictFrom(7))
		if err := sw.Arrive(pkt.NewWork(0, 1)); err != nil {
			t.Fatal(err)
		}
		if err := sw.Arrive(pkt.NewWork(0, 1)); err == nil {
			t.Error("out-of-range victim did not error")
		}
	})
}

func TestValueModelTransmitsMaxFirst(t *testing.T) {
	cfg := Config{Model: ModelValue, Ports: 1, Buffer: 4, MaxLabel: 9, Speedup: 1}
	sw := MustNew(cfg, greedy)
	for _, v := range []int{3, 9, 1} {
		if err := sw.Arrive(pkt.NewValue(0, v)); err != nil {
			t.Fatal(err)
		}
	}
	sw.Transmit()
	if got := sw.Stats().TransmittedValue; got != 9 {
		t.Errorf("first transmission value %d, want 9", got)
	}
	if got := sw.QueueMaxValue(0); got != 3 {
		t.Errorf("remaining max %d, want 3", got)
	}
	if got := sw.QueueMinValue(0); got != 1 {
		t.Errorf("remaining min %d, want 1", got)
	}
	if got := sw.QueueValueSum(0); got != 4 {
		t.Errorf("remaining sum %d, want 4", got)
	}
}

func TestValueModelEvictsMin(t *testing.T) {
	cfg := Config{Model: ModelValue, Ports: 2, Buffer: 2, MaxLabel: 9, Speedup: 1}
	sw := MustNew(cfg, evictFrom(0))
	if err := sw.ArriveBurst([]pkt.Packet{pkt.NewValue(0, 5), pkt.NewValue(0, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Arrive(pkt.NewValue(1, 9)); err != nil {
		t.Fatal(err)
	}
	if got := sw.QueueMinValue(0); got != 5 {
		t.Errorf("queue 0 min after eviction = %d, want 5 (the 2 was evicted)", got)
	}
}

func TestValueModelSpeedup(t *testing.T) {
	cfg := Config{Model: ModelValue, Ports: 1, Buffer: 8, MaxLabel: 8, Speedup: 3}
	sw := MustNew(cfg, greedy)
	for v := 1; v <= 5; v++ {
		if err := sw.Arrive(pkt.NewValue(0, v)); err != nil {
			t.Fatal(err)
		}
	}
	sw.Transmit()
	st := sw.Stats()
	if st.Transmitted != 3 {
		t.Errorf("transmitted %d, want 3", st.Transmitted)
	}
	if st.TransmittedValue != 5+4+3 {
		t.Errorf("transmitted value %d, want 12", st.TransmittedValue)
	}
}

func TestDrainAndReset(t *testing.T) {
	cfg := validProcCfg()
	sw := MustNew(cfg, greedy)
	if err := sw.ArriveBurst([]pkt.Packet{pkt.NewWork(3, 6), pkt.NewWork(0, 1)}); err != nil {
		t.Fatal(err)
	}
	slots := sw.Drain()
	if slots != 6 {
		t.Errorf("drain took %d slots, want 6 (the IPsec packet)", slots)
	}
	if sw.Occupancy() != 0 {
		t.Errorf("occupancy %d after drain", sw.Occupancy())
	}
	sw.Reset()
	st := sw.Stats()
	if st.Arrived != 0 || st.Transmitted != 0 || sw.Slot() != 0 {
		t.Errorf("Reset left stats %+v slot %d", st, sw.Slot())
	}
	// The switch is reusable after Reset.
	if err := sw.Arrive(pkt.NewWork(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := sw.Occupancy(); got != 1 {
		t.Errorf("occupancy %d, want 1", got)
	}
}

func TestViewAccessors(t *testing.T) {
	cfg := validProcCfg()
	sw := MustNew(cfg, greedy)
	if sw.Model() != ModelProcessing || sw.Ports() != 4 || sw.Buffer() != 8 || sw.MaxLabel() != 6 {
		t.Error("view accessors disagree with config")
	}
	if err := sw.ArriveBurst([]pkt.Packet{pkt.NewWork(2, 3), pkt.NewWork(2, 3)}); err != nil {
		t.Fatal(err)
	}
	if got := sw.QueueLen(2); got != 2 {
		t.Errorf("QueueLen(2) = %d, want 2", got)
	}
	if got := sw.QueueWork(2); got != 6 {
		t.Errorf("QueueWork(2) = %d, want 6", got)
	}
	if got := sw.TotalWork(); got != 6 {
		t.Errorf("TotalWork() = %d, want 6", got)
	}
	if got := sw.Free(); got != 6 {
		t.Errorf("Free() = %d, want 6", got)
	}
	// Processing-model value accessors degrade to unit values.
	if got := sw.QueueMinValue(2); got != 1 {
		t.Errorf("QueueMinValue(2) = %d, want 1", got)
	}
	if got := sw.QueueMinValue(0); got != 0 {
		t.Errorf("QueueMinValue(0) on empty = %d, want 0", got)
	}
	if got := sw.QueueMaxValue(2); got != 1 {
		t.Errorf("QueueMaxValue(2) = %d, want 1", got)
	}
	if got := sw.QueueValueSum(2); got != 2 {
		t.Errorf("QueueValueSum(2) = %d, want 2", got)
	}
	if sw.Name() != "greedy" {
		t.Errorf("Name() = %q", sw.Name())
	}
	if sw.Policy().Name() != "greedy" || sw.Config().Ports != 4 {
		t.Error("Policy()/Config() accessors broken")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Transmitted: 10, TransmittedValue: 70, Arrived: 40, LatencySlots: 30}
	if got := s.Throughput(ModelProcessing); got != 10 {
		t.Errorf("Throughput(processing) = %d", got)
	}
	if got := s.Throughput(ModelValue); got != 70 {
		t.Errorf("Throughput(value) = %d", got)
	}
	if got := s.LossRate(); got != 0.75 {
		t.Errorf("LossRate() = %v, want 0.75", got)
	}
	if got := s.MeanLatency(); got != 3 {
		t.Errorf("MeanLatency() = %v, want 3", got)
	}
	var zero Stats
	if zero.LossRate() != 0 || zero.MeanLatency() != 0 {
		t.Error("zero stats helpers should return 0")
	}
}

func TestPortCountersProcessing(t *testing.T) {
	cfg := validProcCfg()
	sw := MustNew(cfg, greedy)
	if err := sw.Step([]pkt.Packet{pkt.NewWork(0, 1), pkt.NewWork(0, 1), pkt.NewWork(3, 6)}); err != nil {
		t.Fatal(err)
	}
	sw.Drain()
	pc := sw.PortCounters()
	if pc[0].Arrived != 2 || pc[0].Transmitted != 2 {
		t.Errorf("port 0 counters %+v", pc[0])
	}
	if pc[3].Transmitted != 1 || pc[3].LatencySlots != 5 || pc[3].MaxLatency != 5 {
		t.Errorf("port 3 counters %+v", pc[3])
	}
	if got := pc[0].MeanLatency(); got != 0.5 {
		t.Errorf("port 0 mean latency %v, want 0.5", got)
	}
	if got := pc[1].DeliveryRate(); got != 1 {
		t.Errorf("idle port delivery %v, want 1", got)
	}
	// The returned slice is a copy.
	pc[0].Arrived = 999
	if sw.PortCounters()[0].Arrived == 999 {
		t.Error("PortCounters aliases internal state")
	}
}

func TestPortCountersValueModel(t *testing.T) {
	cfg := validValCfg()
	sw := MustNew(cfg, evictFrom(0))
	if err := sw.ArriveBurst(pkt.Burst(pkt.NewValue(0, 2), 8)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Arrive(pkt.NewValue(1, 4)); err != nil {
		t.Fatal(err)
	}
	sw.Drain()
	pc := sw.PortCounters()
	if pc[0].PushedOut != 1 {
		t.Errorf("port 0 pushed out %d, want 1", pc[0].PushedOut)
	}
	if pc[0].Transmitted != 7 || pc[0].TransmittedValue != 14 {
		t.Errorf("port 0 counters %+v", pc[0])
	}
	if pc[1].TransmittedValue != 4 {
		t.Errorf("port 1 value %d, want 4", pc[1].TransmittedValue)
	}
	if got := pc[0].DeliveryRate(); got != 7.0/8 {
		t.Errorf("port 0 delivery %v, want 7/8", got)
	}
	sw.Reset()
	for _, c := range sw.PortCounters() {
		if c != (PortCounters{}) {
			t.Errorf("Reset left counters %+v", c)
		}
	}
}

// TestQuickConservation runs random traffic through both models with
// invariant checking enabled and verifies packet conservation end to end.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64, valueModel bool) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Ports:           1 + rng.Intn(4),
			MaxLabel:        4,
			Speedup:         1 + rng.Intn(2),
			CheckInvariants: true,
		}
		cfg.Buffer = cfg.Ports + rng.Intn(8)
		if valueModel {
			cfg.Model = ModelValue
		} else {
			cfg.Model = ModelProcessing
			works := make([]int, cfg.Ports)
			prev := 1
			for i := range works {
				prev += rng.Intn(2)
				if prev > cfg.MaxLabel {
					prev = cfg.MaxLabel
				}
				works[i] = prev
			}
			cfg.PortWork = works
		}
		// Alternate between greedy and an eviction-happy policy.
		pol := greedy
		sw := MustNew(cfg, pol)
		for slot := 0; slot < 50; slot++ {
			burst := make([]pkt.Packet, rng.Intn(5))
			for i := range burst {
				port := rng.Intn(cfg.Ports)
				if valueModel {
					burst[i] = pkt.NewValue(port, 1+rng.Intn(cfg.MaxLabel))
				} else {
					burst[i] = pkt.NewWork(port, cfg.PortWork[port])
				}
			}
			if err := sw.Step(burst); err != nil {
				t.Logf("step error: %v", err)
				return false
			}
		}
		sw.Drain()
		st := sw.Stats()
		return st.Arrived == st.Accepted+st.Dropped &&
			st.Accepted == st.Transmitted+st.PushedOut &&
			sw.Occupancy() == 0
	}
	if err := quick.Check(f, qcfg(60)); err != nil {
		t.Error(err)
	}
}

// qcfg returns a deterministic quick.Config so property tests are
// reproducible run to run.
func qcfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(7))}
}
