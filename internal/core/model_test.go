package core

import (
	"errors"
	"strings"
	"testing"
)

func validProcCfg() Config {
	return Config{
		Model:    ModelProcessing,
		Ports:    4,
		Buffer:   8,
		MaxLabel: 6,
		Speedup:  1,
		PortWork: []int{1, 2, 3, 6},
	}
}

func validValCfg() Config {
	return Config{
		Model:    ModelValue,
		Ports:    4,
		Buffer:   8,
		MaxLabel: 4,
		Speedup:  1,
	}
}

func TestConfigValidate(t *testing.T) {
	mutate := func(f func(*Config)) Config {
		c := validProcCfg()
		f(&c)
		return c
	}
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid processing", validProcCfg(), false},
		{"valid value", validValCfg(), false},
		{"valid nil PortWork", mutate(func(c *Config) { c.PortWork = nil }), false},
		{"zero model", mutate(func(c *Config) { c.Model = 0 }), true},
		{"unknown model", mutate(func(c *Config) { c.Model = 9 }), true},
		{"zero ports", mutate(func(c *Config) { c.Ports = 0 }), true},
		{"buffer below ports", mutate(func(c *Config) { c.Buffer = 3 }), true},
		{"zero max label", mutate(func(c *Config) { c.MaxLabel = 0 }), true},
		{"zero speedup", mutate(func(c *Config) { c.Speedup = 0 }), true},
		{"PortWork wrong len", mutate(func(c *Config) { c.PortWork = []int{1, 2} }), true},
		{"PortWork above max", mutate(func(c *Config) { c.PortWork = []int{1, 2, 3, 7} }), true},
		{"PortWork zero entry", mutate(func(c *Config) { c.PortWork = []int{0, 2, 3, 6} }), true},
		{"PortWork not sorted", mutate(func(c *Config) { c.PortWork = []int{2, 1, 3, 6} }), true},
		{"value model with PortWork", func() Config {
			c := validValCfg()
			c.PortWork = []int{1, 1, 1, 1}
			return c
		}(), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if (err != nil) != c.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, c.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadConfig) {
				t.Errorf("error %v does not wrap ErrBadConfig", err)
			}
		})
	}
}

func TestContiguousWorks(t *testing.T) {
	got := ContiguousWorks(4)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ContiguousWorks(4)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestUniformWorks(t *testing.T) {
	got := UniformWorks(3, 5)
	for i, w := range got {
		if w != 5 {
			t.Errorf("UniformWorks[%d] = %d, want 5", i, w)
		}
	}
	if len(got) != 3 {
		t.Errorf("len = %d, want 3", len(got))
	}
}

func TestModelString(t *testing.T) {
	if got := ModelProcessing.String(); got != "processing" {
		t.Errorf("ModelProcessing.String() = %q", got)
	}
	if got := ModelValue.String(); got != "value" {
		t.Errorf("ModelValue.String() = %q", got)
	}
	if got := Model(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown model String() = %q", got)
	}
}

func TestPortWorkDefaults(t *testing.T) {
	c := validProcCfg()
	c.PortWork = nil
	works := c.portWork()
	for i, w := range works {
		if w != 1 {
			t.Errorf("default work[%d] = %d, want 1", i, w)
		}
	}
	v := validValCfg()
	for i, w := range v.portWork() {
		if w != 1 {
			t.Errorf("value-model work[%d] = %d, want 1", i, w)
		}
	}
}
