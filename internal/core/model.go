// Package core implements the shared-memory switch model of the paper for
// both of its generalizations:
//
//   - the heterogeneous processing model (Section III): unit-sized packets
//     with an output port and required work, FIFO output queues, all
//     packets of a port sharing the port's work requirement;
//   - the heterogeneous value model (Section IV): unit-work packets with an
//     output port and intrinsic value, priority-queue output queues.
//
// Time is slotted. Each slot has an arrival phase, in which a buffer
// management policy decides per arriving packet whether to admit it and
// whether to push out an already-buffered packet, and a transmission
// phase, in which every non-empty output queue receives C processing
// cycles (processing model) or transmits up to C packets (value model).
//
// The engine owns all mutation; policies are pure functions from a
// read-only View and an arriving packet to a Decision. This keeps the
// model's invariants (occupancy bound, FIFO order, conservation) enforced
// in one place and makes policies independently testable.
package core

import (
	"errors"
	"fmt"
)

// Model selects which of the paper's two generalizations a Switch
// simulates.
type Model int

// Enum of switch models. Values start at 1 so the zero value is invalid
// and cannot be used by accident.
const (
	// ModelProcessing is the Section III model: heterogeneous required
	// work, unit values, FIFO queues, throughput = packets transmitted.
	ModelProcessing Model = iota + 1
	// ModelValue is the Section IV model: heterogeneous values, unit
	// work, priority queues, throughput = total value transmitted.
	ModelValue
	// ModelCombined is the combined work×value model the paper never
	// studied: packets carry both a required work (fixed per port, like
	// the processing model) and an intrinsic value drawn from [1,k].
	// Queues are FIFO and push-out evicts the tail, exactly like the
	// processing model, so every processing-style discipline carries
	// over; the objective is the total value transmitted (equivalently,
	// value per processing cycle — see Stats.ValuePerCycle).
	ModelCombined
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelProcessing:
		return "processing"
	case ModelValue:
		return "value"
	case ModelCombined:
		return "combined"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Config describes a shared-memory switch instance.
type Config struct {
	// Model selects the processing or the value generalization.
	Model Model
	// Ports is n, the number of output ports (= output queues).
	Ports int
	// Buffer is B, the shared buffer size in packets. The paper assumes
	// B >= n.
	Buffer int
	// MaxLabel is k: the upper bound on per-packet required work
	// (processing model) or intrinsic value (value model).
	MaxLabel int
	// Speedup is C, the number of processing cores attached to every
	// output queue. C cycles are applied per queue per slot (processing
	// model); C packets are transmitted per queue per slot (value model).
	Speedup int
	// PortWork gives w_i, the required work of packets destined to port
	// i (processing and combined models; the paper's "configuration").
	// A nil slice means unit work on every port, which recovers the
	// classical shared-memory switch of Aiello et al. Must be
	// non-decreasing: the paper sorts queues by processing requirement.
	PortWork []int
	// CheckInvariants enables per-slot internal consistency checks.
	// Expensive; intended for tests.
	CheckInvariants bool
}

// ContiguousWorks returns the paper's canonical lower-bound configuration:
// k ports with required work 1..k ("contiguous case").
func ContiguousWorks(k int) []int {
	works := make([]int, k)
	for i := range works {
		works[i] = i + 1
	}
	return works
}

// UniformWorks returns n ports that all require work w.
func UniformWorks(n, w int) []int {
	works := make([]int, n)
	for i := range works {
		works[i] = w
	}
	return works
}

// ErrBadConfig is wrapped by all Config validation failures.
var ErrBadConfig = errors.New("core: invalid config")

// Validate checks internal consistency of the configuration.
func (c Config) Validate() error {
	switch {
	case c.Model != ModelProcessing && c.Model != ModelValue && c.Model != ModelCombined:
		return fmt.Errorf("%w: unknown model %d", ErrBadConfig, int(c.Model))
	case c.Ports < 1:
		return fmt.Errorf("%w: ports %d < 1", ErrBadConfig, c.Ports)
	case c.Buffer < c.Ports:
		return fmt.Errorf("%w: buffer %d < ports %d (paper assumes B >= n)", ErrBadConfig, c.Buffer, c.Ports)
	case c.MaxLabel < 1:
		return fmt.Errorf("%w: max label %d < 1", ErrBadConfig, c.MaxLabel)
	case c.Speedup < 1:
		return fmt.Errorf("%w: speedup %d < 1", ErrBadConfig, c.Speedup)
	}
	if c.Model == ModelValue {
		if c.PortWork != nil {
			return fmt.Errorf("%w: PortWork is a processing-model parameter", ErrBadConfig)
		}
		return nil
	}
	if c.PortWork == nil {
		return nil
	}
	if len(c.PortWork) != c.Ports {
		return fmt.Errorf("%w: len(PortWork)=%d != ports %d", ErrBadConfig, len(c.PortWork), c.Ports)
	}
	prev := 1
	for i, w := range c.PortWork {
		if w < 1 || w > c.MaxLabel {
			return fmt.Errorf("%w: PortWork[%d]=%d out of [1,%d]", ErrBadConfig, i, w, c.MaxLabel)
		}
		if w < prev {
			return fmt.Errorf("%w: PortWork must be non-decreasing, got %d after %d", ErrBadConfig, w, prev)
		}
		prev = w
	}
	return nil
}

// portWork returns the effective per-port work slice (unit work when
// PortWork is nil).
func (c Config) portWork() []int {
	if c.Model == ModelValue || c.PortWork == nil {
		return UniformWorks(c.Ports, 1)
	}
	return c.PortWork
}
